package hierctl

import (
	"math"
	"strings"
	"testing"
)

// fastOpts keeps full-pipeline tests quick while still exercising every
// stage (learning, forecasting, three controller levels, plant).
func fastOpts() ExperimentOptions {
	return ExperimentOptions{Scale: 0.05, Seed: 1, Fast: true}
}

func TestFacadeConstructors(t *testing.T) {
	if _, err := StandardComputer(0, "c"); err != nil {
		t.Error(err)
	}
	if _, err := StandardComputer(9, "c"); err == nil {
		t.Error("bad kind: want error")
	}
	spec, err := StandardModuleCluster()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Computers() != 4 {
		t.Errorf("standard module cluster has %d computers, want 4", spec.Computers())
	}
	spec, err = ScaledModuleCluster(6)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Computers() != 6 {
		t.Errorf("scaled cluster has %d computers, want 6", spec.Computers())
	}
	spec, err = StandardCluster(5)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Computers() != 20 {
		t.Errorf("standard cluster(5) has %d computers, want 20", spec.Computers())
	}
	if _, err := NewStore(1, DefaultStoreConfig()); err != nil {
		t.Error(err)
	}
	if _, err := SyntheticTrace(DefaultSyntheticConfig()); err != nil {
		t.Error(err)
	}
	if _, err := WC98Trace(DefaultWC98Config()); err != nil {
		t.Error(err)
	}
	if _, err := StepTrace(10, 30, 1, 2, 5); err != nil {
		t.Error(err)
	}
}

func TestFacadePolicies(t *testing.T) {
	if AlwaysOnPolicy() == nil {
		t.Error("nil always-on policy")
	}
	if _, err := ThresholdPolicy(0.3, 0.8, 1); err != nil {
		t.Error(err)
	}
	if _, err := ThresholdPolicy(0.8, 0.3, 1); err == nil {
		t.Error("bad watermarks: want error")
	}
	if _, err := ThresholdDVFSPolicy(0.3, 0.8, 1, 0.8); err != nil {
		t.Error(err)
	}
}

func TestFig3Table(t *testing.T) {
	tab, err := Fig3Table()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"C1", "C2", "C3", "C4", "550", "2000"} {
		if !strings.Contains(tab, want) {
			t.Errorf("Fig. 3 table missing %q:\n%s", want, tab)
		}
	}
}

func TestExperimentOptionsValidation(t *testing.T) {
	bad := ExperimentOptions{Scale: 0}
	if _, err := RunFig4Fig5(bad); err == nil {
		t.Error("zero scale: want error")
	}
	bad = ExperimentOptions{Scale: 1.5}
	if _, err := RunFig6Fig7(bad); err == nil {
		t.Error("scale > 1: want error")
	}
}

func TestRunFig4Fig5Shape(t *testing.T) {
	rec, err := RunFig4Fig5(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if rec.Completed == 0 {
		t.Fatal("no requests completed")
	}
	// Fig. 4 series present and aligned.
	if rec.PredictedL1.Len() == 0 || rec.PredictedL1.Len() != rec.ActualL1.Len() {
		t.Errorf("prediction series %d/%d", rec.PredictedL1.Len(), rec.ActualL1.Len())
	}
	if rec.Operational.Len() == 0 {
		t.Error("no operational series")
	}
	if rec.Operational.Max() > 4 || rec.Operational.Min() < 1 {
		t.Errorf("operational range [%v, %v] outside [1, 4]", rec.Operational.Min(), rec.Operational.Max())
	}
	// Fig. 5 series: C4 frequencies recorded within its ladder.
	c4, ok := rec.FreqByComputer["M1-C4"]
	if !ok {
		t.Fatal("no frequency series for M1-C4")
	}
	for _, hz := range c4.Values {
		if hz != 0 && (hz < 600e6 || hz > 2000e6) {
			t.Errorf("C4 frequency %v outside its ladder", hz)
		}
	}
	// QoS: the mean response must respect the target.
	if rec.MeanResponse() > rec.TargetResponse {
		t.Errorf("mean response %v above target %v", rec.MeanResponse(), rec.TargetResponse)
	}
	// Forecast sanity: Kalman predictions track actuals within 30%.
	var mae, mean float64
	for i := range rec.PredictedL1.Values {
		mae += math.Abs(rec.PredictedL1.Values[i] - rec.ActualL1.Values[i])
		mean += rec.ActualL1.Values[i]
	}
	if mean > 0 && mae/mean > 0.3 {
		t.Errorf("forecast MAE fraction %v too high", mae/mean)
	}
}

func TestRunFig6Fig7Shape(t *testing.T) {
	rec, err := RunFig6Fig7(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if rec.Completed == 0 {
		t.Fatal("no requests completed")
	}
	if len(rec.GammaModules) != 4 {
		t.Fatalf("gamma series for %d modules, want 4", len(rec.GammaModules))
	}
	bins := rec.GammaModules[0].Len()
	if bins == 0 {
		t.Fatal("no γ_i samples")
	}
	for b := 0; b < bins; b++ {
		sum := 0.0
		for i := 0; i < 4; i++ {
			sum += rec.GammaModules[i].Values[b]
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("Σγ at bin %d = %v", b, sum)
		}
	}
	if rec.Operational.Max() > 16 {
		t.Errorf("operational %v exceeds cluster size", rec.Operational.Max())
	}
	if rec.L2Decisions == 0 {
		t.Error("L2 made no decisions")
	}
}

func TestOverheadRows(t *testing.T) {
	row, err := RunOverheadModule(4, 0.05, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if row.Computers != 4 {
		t.Errorf("computers = %d", row.Computers)
	}
	// The paper's overhead metric is O(10²–10³) states per L1 period.
	if row.ExploredPerL1 < 10 || row.ExploredPerL1 > 1e5 {
		t.Errorf("states per L1 = %v, implausible", row.ExploredPerL1)
	}
	if row.DecisionTime <= 0 {
		t.Error("decision time not recorded")
	}
	if _, err := RunOverheadModule(0, 0.05, fastOpts()); err == nil {
		t.Error("zero module size: want error")
	}
}

func TestEnergyComparisonOrdering(t *testing.T) {
	opts := fastOpts()
	opts.Scale = 0.1 // include some diurnal variation
	rows, err := RunEnergyComparison(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	byPolicy := map[string]EnergyRow{}
	for _, r := range rows {
		byPolicy[r.Policy] = r
	}
	llc, ok1 := byPolicy["hierarchical-llc"]
	alwaysOn, ok2 := byPolicy["always-on"]
	if !ok1 || !ok2 {
		t.Fatalf("missing policies in %v", rows)
	}
	// The headline claim: LLC spends materially less energy than the
	// static configuration while keeping the mean response under target.
	if llc.Energy >= alwaysOn.Energy {
		t.Errorf("LLC energy %v not below always-on %v", llc.Energy, alwaysOn.Energy)
	}
	if llc.MeanResponse > 4 {
		t.Errorf("LLC mean response %v above target", llc.MeanResponse)
	}
}

func TestAblationsRun(t *testing.T) {
	opts := fastOpts()
	opts.Scale = 0.03
	rows, err := RunAblations(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("got %d ablation rows, want 9", len(rows))
	}
	labels := map[string]bool{}
	for _, r := range rows {
		labels[r.Label] = true
		if r.Energy <= 0 {
			t.Errorf("%s: energy %v", r.Label, r.Energy)
		}
	}
	if !labels["N_L0=3 (paper)"] || !labels["no-chattering-mitigation"] ||
		!labels["oracle-forecast (not realizable)"] {
		t.Errorf("missing expected variants: %v", labels)
	}
}

func TestExperimentDeterminism(t *testing.T) {
	a, err := RunFig4Fig5(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFig4Fig5(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if a.Completed != b.Completed || a.Energy != b.Energy || a.Switches != b.Switches {
		t.Errorf("same options diverged: (%d, %v, %d) vs (%d, %v, %d)",
			a.Completed, a.Energy, a.Switches, b.Completed, b.Energy, b.Switches)
	}
}
