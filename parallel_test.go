package hierctl

import (
	"math"
	"testing"

	"hierctl/internal/central"
	"hierctl/internal/cluster"
	"hierctl/internal/series"
)

// The concurrent decision engine's contract: decisions are deterministic
// given observations, so fan-out/fan-in by index must preserve exact
// outputs. These tests pin a Parallelism: 8 run against the sequential
// Parallelism: 1 engine, comparing everything a run records except
// wall-clock durations (which legitimately vary).

func parOpts(p int) ExperimentOptions {
	o := fastOpts()
	o.Parallelism = p
	return o
}

func seriesEqual(t *testing.T, name string, a, b *series.Series) {
	t.Helper()
	if (a == nil) != (b == nil) {
		t.Fatalf("%s: nil mismatch", name)
	}
	if a == nil {
		return
	}
	if a.Len() != b.Len() {
		t.Fatalf("%s: length %d vs %d", name, a.Len(), b.Len())
	}
	for i := range a.Values {
		if a.Values[i] != b.Values[i] {
			t.Fatalf("%s: value %d diverged: %v vs %v", name, i, a.Values[i], b.Values[i])
		}
	}
}

func assertRecordsIdentical(t *testing.T, seq, par *Record) {
	t.Helper()
	if seq.Completed != par.Completed || seq.Dropped != par.Dropped {
		t.Errorf("requests diverged: (%d, %d) vs (%d, %d)", seq.Completed, seq.Dropped, par.Completed, par.Dropped)
	}
	if seq.Energy != par.Energy {
		t.Errorf("energy diverged: %v vs %v", seq.Energy, par.Energy)
	}
	if seq.Switches != par.Switches || seq.Misroutes != par.Misroutes {
		t.Errorf("switches/misroutes diverged: (%d, %d) vs (%d, %d)", seq.Switches, seq.Misroutes, par.Switches, par.Misroutes)
	}
	if seq.ViolationFrac != par.ViolationFrac {
		t.Errorf("violation fraction diverged: %v vs %v", seq.ViolationFrac, par.ViolationFrac)
	}
	if seq.ResponseP50 != par.ResponseP50 || seq.ResponseP95 != par.ResponseP95 ||
		seq.ResponseP99 != par.ResponseP99 || seq.ResponseMax != par.ResponseMax {
		t.Error("latency percentiles diverged")
	}
	if seq.MeanResponse() != par.MeanResponse() {
		t.Errorf("mean response diverged: %v vs %v", seq.MeanResponse(), par.MeanResponse())
	}
	if seq.L0Explored != par.L0Explored || seq.L1Explored != par.L1Explored || seq.L2Explored != par.L2Explored {
		t.Errorf("explored counts diverged: (%d, %d, %d) vs (%d, %d, %d)",
			seq.L0Explored, seq.L1Explored, seq.L2Explored, par.L0Explored, par.L1Explored, par.L2Explored)
	}
	if seq.L0Decisions != par.L0Decisions || seq.L1Decisions != par.L1Decisions || seq.L2Decisions != par.L2Decisions {
		t.Error("decision counts diverged")
	}
	seriesEqual(t, "PredictedL1", seq.PredictedL1, par.PredictedL1)
	seriesEqual(t, "ActualL1", seq.ActualL1, par.ActualL1)
	seriesEqual(t, "Operational", seq.Operational, par.Operational)
	seriesEqual(t, "ResponseMean", seq.ResponseMean, par.ResponseMean)
	if len(seq.GammaModules) != len(par.GammaModules) {
		t.Fatalf("gamma series count %d vs %d", len(seq.GammaModules), len(par.GammaModules))
	}
	for i := range seq.GammaModules {
		seriesEqual(t, "GammaModules", seq.GammaModules[i], par.GammaModules[i])
	}
	if len(seq.FreqByComputer) != len(par.FreqByComputer) {
		t.Fatalf("frequency series count %d vs %d", len(seq.FreqByComputer), len(par.FreqByComputer))
	}
	for name, s := range seq.FreqByComputer {
		seriesEqual(t, "FreqByComputer["+name+"]", s, par.FreqByComputer[name])
	}
}

// TestParallelClusterRunMatchesSequential pins the multi-module §5.2 run —
// parallel learning, the L1 fan-out, and the L2 loop all engaged — to the
// sequential engine, record field by record field.
func TestParallelClusterRunMatchesSequential(t *testing.T) {
	seq, err := RunFig6Fig7(parOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	par8, err := RunFig6Fig7(parOpts(8))
	if err != nil {
		t.Fatal(err)
	}
	assertRecordsIdentical(t, seq, par8)
}

// TestParallelScalabilityMatchesSequential pins the fanned-out EXT3 sweep
// (parallel sizes, sharded centralized search) to the sequential sweep.
func TestParallelScalabilityMatchesSequential(t *testing.T) {
	seqOpts, parOpts8 := parOpts(1), parOpts(8)
	seqOpts.Scale, parOpts8.Scale = 0.03, 0.03
	seq, err := RunScalability([]int{4, 8}, seqOpts)
	if err != nil {
		t.Fatal(err)
	}
	par8, err := RunScalability([]int{4, 8}, parOpts8)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par8) {
		t.Fatalf("row count %d vs %d", len(seq), len(par8))
	}
	for i := range seq {
		s, p := seq[i], par8[i]
		if s.Controller != p.Controller || s.Computers != p.Computers {
			t.Fatalf("row %d: ordering diverged: %+v vs %+v", i, s, p)
		}
		if s.ExploredPerPeriod != p.ExploredPerPeriod {
			t.Errorf("row %d (%s n=%d): explored %v vs %v", i, s.Controller, s.Computers, s.ExploredPerPeriod, p.ExploredPerPeriod)
		}
		if s.MeanResponse != p.MeanResponse || s.Energy != p.Energy {
			t.Errorf("row %d (%s n=%d): quality diverged: (%v, %v) vs (%v, %v)",
				i, s.Controller, s.Computers, s.MeanResponse, s.Energy, p.MeanResponse, p.Energy)
		}
	}
}

// TestParallelEnergyComparisonMatchesSequential pins the fanned-out EXT1
// policy comparison to the sequential one (no time fields, so rows must be
// exactly equal).
func TestParallelEnergyComparisonMatchesSequential(t *testing.T) {
	seqOpts, parOpts8 := parOpts(1), parOpts(8)
	seqOpts.Scale, parOpts8.Scale = 0.03, 0.03
	seq, err := RunEnergyComparison(seqOpts)
	if err != nil {
		t.Fatal(err)
	}
	par8, err := RunEnergyComparison(parOpts8)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par8) {
		t.Fatalf("row count %d vs %d", len(seq), len(par8))
	}
	for i := range seq {
		if seq[i] != par8[i] {
			t.Errorf("row %d diverged:\nseq %+v\npar %+v", i, seq[i], par8[i])
		}
	}
}

// TestCentralShardedDecideMatchesSequential drives the flat controller's
// Decide directly: the sharded candidate search must pick the same joint
// configuration and count the same explored states as the sequential
// search.
func TestCentralShardedDecideMatchesSequential(t *testing.T) {
	newCtl := func(parallelism int) (*central.Controller, error) {
		var specs []cluster.ComputerSpec
		for j := 0; j < 8; j++ {
			cs, err := cluster.StandardComputer(j%4, string(rune('A'+j)))
			if err != nil {
				return nil, err
			}
			specs = append(specs, cs)
		}
		cfg := central.DefaultConfig()
		cfg.Parallelism = parallelism
		return central.New(cfg, specs)
	}
	seqCtl, err := newCtl(1)
	if err != nil {
		t.Fatal(err)
	}
	parCtl, err := newCtl(8)
	if err != nil {
		t.Fatal(err)
	}
	// A few periods with varying load so the search moves through on/off
	// and frequency changes, not just the initial configuration.
	for step, lambda := range []float64{20, 180, 300, 40, 5} {
		obs := central.Observation{
			QueueLens: make([]float64, 8),
			LambdaHat: lambda,
			Delta:     0.1 * lambda,
			CHat:      0.0175,
		}
		for j := range obs.QueueLens {
			obs.QueueLens[j] = math.Mod(lambda*float64(j+1), 17)
		}
		seqDec, err := seqCtl.Decide(obs)
		if err != nil {
			t.Fatal(err)
		}
		parDec, err := parCtl.Decide(obs)
		if err != nil {
			t.Fatal(err)
		}
		if seqDec.Explored != parDec.Explored {
			t.Errorf("step %d: explored %d vs %d", step, seqDec.Explored, parDec.Explored)
		}
		for j := 0; j < 8; j++ {
			if seqDec.Alpha[j] != parDec.Alpha[j] || seqDec.Gamma[j] != parDec.Gamma[j] || seqDec.FreqIdx[j] != parDec.FreqIdx[j] {
				t.Fatalf("step %d computer %d: (%v, %v, %d) vs (%v, %v, %d)", step, j,
					seqDec.Alpha[j], seqDec.Gamma[j], seqDec.FreqIdx[j],
					parDec.Alpha[j], parDec.Gamma[j], parDec.FreqIdx[j])
			}
		}
	}
}

func TestParallelismValidation(t *testing.T) {
	bad := fastOpts()
	bad.Parallelism = -1
	if _, err := RunFig4Fig5(bad); err == nil {
		t.Error("negative parallelism: want error")
	}
	if _, err := RunScalability([]int{4}, bad); err == nil {
		t.Error("negative parallelism in scalability: want error")
	}
	cfg := DefaultConfig()
	cfg.Parallelism = -2
	if err := cfg.Validate(); err == nil {
		t.Error("negative config parallelism: want error")
	}
}
