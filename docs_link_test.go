package hierctl

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// markdownLink matches inline markdown links [text](target). Reference
// definitions and autolinks are out of scope — the repo's docs use the
// inline form.
var markdownLink = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// TestDocsRelativeLinks fails on broken relative links in README.md and
// everything under docs/ — the docs check CI runs. External links
// (schemes) and pure in-page anchors are skipped; anchors on relative
// targets are stripped before the existence check.
func TestDocsRelativeLinks(t *testing.T) {
	var files []string
	if _, err := os.Stat("README.md"); err == nil {
		files = append(files, "README.md")
	}
	_ = filepath.WalkDir("docs", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return nil
		}
		if !d.IsDir() && strings.HasSuffix(path, ".md") {
			files = append(files, path)
		}
		return nil
	})
	if len(files) == 0 {
		t.Fatal("no documentation files found")
	}
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range markdownLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue
			}
			if strings.HasPrefix(target, "#") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			resolved := filepath.Join(filepath.Dir(file), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken relative link %q (resolved %s)", file, m[1], resolved)
			}
		}
	}
}
