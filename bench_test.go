// Benchmarks regenerating every figure and table of the paper's
// evaluation (see DESIGN.md §4 for the experiment index) plus
// micro-benchmarks of the hot control paths. Closed-loop benches run at a
// reduced trace scale with coarse learning grids so one iteration stays in
// the hundreds of milliseconds; run cmd/hpmbench for paper-scale numbers.
//
// The decision engine's worker pools follow GOMAXPROCS when Parallelism
// is 0, so `go test -bench Sweep -cpu 1,4,8` measures the concurrent
// engine's speedup over the sequential one on the same workloads.
//
// Custom metrics reported per benchmark:
//
//	energy        total energy consumed (abstract units)
//	resp_ms       mean response time in milliseconds
//	viol_pct      percent of T_L0 intervals violating r*
//	states_per_L1 states examined per L1 period (§4.3's ≈858 metric)
package hierctl

import (
	"testing"

	"hierctl/internal/cluster"
	"hierctl/internal/controller"
	"hierctl/internal/forecast"
	"hierctl/internal/queue"
)

func benchOpts(seed int64) ExperimentOptions {
	return ExperimentOptions{Scale: 0.05, Seed: seed, Fast: true}
}

func reportRecord(b *testing.B, rec *Record) {
	b.Helper()
	b.ReportMetric(rec.Energy, "energy")
	b.ReportMetric(rec.MeanResponse()*1000, "resp_ms")
	b.ReportMetric(rec.ViolationFrac*100, "viol_pct")
	b.ReportMetric(rec.ExploredPerL1Decision(), "states_per_L1")
}

// BenchmarkFig3FrequencyTable regenerates the static Fig. 3 catalogue.
func BenchmarkFig3FrequencyTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Fig3Table(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4ModuleControl runs the §4.3 module experiment (Fig. 4):
// synthetic diurnal load, m = 4 module, full hierarchy.
func BenchmarkFig4ModuleControl(b *testing.B) {
	var rec *Record
	for i := 0; i < b.N; i++ {
		var err error
		rec, err = RunFig4Fig5(benchOpts(int64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
	}
	reportRecord(b, rec)
}

// BenchmarkFig5L0Control measures the L0 exhaustive search at paper
// settings (N_L0 = 3 over C4's eight frequencies) — the inner loop behind
// Fig. 5.
func BenchmarkFig5L0Control(b *testing.B) {
	spec, err := cluster.StandardComputer(3, "C4")
	if err != nil {
		b.Fatal(err)
	}
	l0, err := controller.NewL0(controller.DefaultL0Config(), spec)
	if err != nil {
		b.Fatal(err)
	}
	lambda := []float64{40, 45, 50}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l0.Decide(float64(i%200), lambda, 0.0175); err != nil {
			b.Fatal(err)
		}
	}
	explored, decisions, _ := l0.Overhead()
	b.ReportMetric(float64(explored)/float64(decisions), "states_per_decide")
}

// BenchmarkFig6ClusterControl runs the §5.2 cluster experiment (Fig. 6):
// WC'98-like day on 16 computers in 4 modules.
func BenchmarkFig6ClusterControl(b *testing.B) {
	var rec *Record
	for i := 0; i < b.N; i++ {
		var err error
		rec, err = RunFig6Fig7(benchOpts(int64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
	}
	reportRecord(b, rec)
}

// BenchmarkFig7LoadDistribution measures the L2 decision (Fig. 7's γ_i)
// over the quantized simplex with regression-tree cost lookups.
func BenchmarkFig7LoadDistribution(b *testing.B) {
	jt := make([]controller.JTilde, 4)
	for i := range jt {
		jt[i] = quadraticJTilde{scale: 100 + 20*float64(i)}
	}
	l2, err := controller.NewL2(controller.DefaultL2Config(), jt)
	if err != nil {
		b.Fatal(err)
	}
	obs := controller.L2Observation{
		QAvg:      []float64{5, 10, 0, 20},
		LambdaHat: 300,
		Delta:     20,
		CHat:      []float64{0.0175, 0.0175, 0.0175, 0.0175},
	}
	b.ResetTimer()
	var explored int
	for i := 0; i < b.N; i++ {
		dec, err := l2.Decide(obs)
		if err != nil {
			b.Fatal(err)
		}
		explored = dec.Explored
	}
	b.ReportMetric(float64(explored), "states_per_decide")
}

type quadraticJTilde struct{ scale float64 }

func (q quadraticJTilde) Predict(qAvg, lambda, c float64) (float64, error) {
	return (lambda/q.scale)*(lambda/q.scale) + 0.01*qAvg + 0.8, nil
}

// Overhead benches (OVH1): §4.3 module sizes m = 4, 6, 10.
func benchmarkOverheadModule(b *testing.B, m int, quantum float64) {
	var row OverheadRow
	for i := 0; i < b.N; i++ {
		var err error
		row, err = RunOverheadModule(m, quantum, benchOpts(int64(i+1)))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(row.ExploredPerL1, "states_per_L1")
	b.ReportMetric(float64(row.DecisionTime.Microseconds()), "decide_us_per_L1")
	b.ReportMetric(row.MeanResponse*1000, "resp_ms")
}

func BenchmarkOverheadModuleM4(b *testing.B)  { benchmarkOverheadModule(b, 4, 0.05) }
func BenchmarkOverheadModuleM6(b *testing.B)  { benchmarkOverheadModule(b, 6, 0.1) }
func BenchmarkOverheadModuleM10(b *testing.B) { benchmarkOverheadModule(b, 10, 0.1) }

// Overhead benches (OVH2): §5.2 cluster sizes 16 and 20 computers.
func benchmarkOverheadCluster(b *testing.B, p int) {
	var row OverheadRow
	for i := 0; i < b.N; i++ {
		var err error
		row, err = RunOverheadCluster(p, benchOpts(int64(i+1)))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(row.ExploredPerL1, "states_per_L1")
	b.ReportMetric(float64(row.DecisionTime.Microseconds()), "decide_us_per_L1")
	b.ReportMetric(row.MeanResponse*1000, "resp_ms")
}

func BenchmarkOverheadCluster16(b *testing.B) { benchmarkOverheadCluster(b, 4) }
func BenchmarkOverheadCluster20(b *testing.B) { benchmarkOverheadCluster(b, 5) }

// BenchmarkEnergyVsBaselines runs the EXT1 comparison (LLC vs always-on vs
// thresholds) and reports the LLC saving over the static configuration.
func BenchmarkEnergyVsBaselines(b *testing.B) {
	var rows []EnergyRow
	for i := 0; i < b.N; i++ {
		var err error
		opts := benchOpts(int64(i + 1))
		opts.Scale = 0.1
		rows, err = RunEnergyComparison(opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	var llcE, onE float64
	for _, r := range rows {
		switch r.Policy {
		case "hierarchical-llc":
			llcE = r.Energy
		case "always-on":
			onE = r.Energy
		}
	}
	if onE > 0 {
		b.ReportMetric(100*(1-llcE/onE), "saving_pct")
	}
}

// Ablation benches (EXT2): the design choices DESIGN.md calls out.
func benchmarkAblation(b *testing.B, mutate func(*Config)) {
	spec, err := StandardModuleCluster()
	if err != nil {
		b.Fatal(err)
	}
	synth := DefaultSyntheticConfig()
	trace, err := SyntheticTrace(synth)
	if err != nil {
		b.Fatal(err)
	}
	trace = trace.Slice(0, 320) // ~2.7 h
	var rec *Record
	for i := 0; i < b.N; i++ {
		opts := benchOpts(int64(i + 1))
		cfg := opts.Config()
		mutate(&cfg)
		mgr, err := NewManager(spec, cfg)
		if err != nil {
			b.Fatal(err)
		}
		store, err := NewStore(opts.Seed, DefaultStoreConfig())
		if err != nil {
			b.Fatal(err)
		}
		rec, err = mgr.Run(trace, store)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportRecord(b, rec)
}

func BenchmarkAblationHorizon1(b *testing.B) {
	benchmarkAblation(b, func(c *Config) { c.L0.Horizon = 1 })
}

func BenchmarkAblationHorizon3(b *testing.B) {
	benchmarkAblation(b, func(c *Config) { c.L0.Horizon = 3 })
}

func BenchmarkAblationNoChatteringMitigation(b *testing.B) {
	benchmarkAblation(b, func(c *Config) {
		c.L1.UncertaintySamples = false
		c.L2.UncertaintySamples = false
	})
}

func BenchmarkAblationCoarseQuantum(b *testing.B) {
	benchmarkAblation(b, func(c *Config) { c.L1.Quantum = 0.2 })
}

func BenchmarkAblationNoSwitchPenalty(b *testing.B) {
	benchmarkAblation(b, func(c *Config) { c.L1.SwitchWeight = 0 })
}

// BenchmarkScalabilityHierVsCentral runs the EXT3 study (hierarchical vs
// flat centralized control) at 4 and 8 computers and reports the explored
// state ratio — §3's dimensionality argument as a number.
func BenchmarkScalabilityHierVsCentral(b *testing.B) {
	var rows []ScalabilityRow
	for i := 0; i < b.N; i++ {
		opts := benchOpts(int64(i + 1))
		opts.Scale = 0.03
		var err error
		rows, err = RunScalability([]int{4, 8}, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	var h8, c8 float64
	for _, r := range rows {
		if r.Computers == 8 {
			if r.Controller == "hierarchical" {
				h8 = r.ExploredPerPeriod
			} else {
				c8 = r.ExploredPerPeriod
			}
		}
	}
	if h8 > 0 {
		b.ReportMetric(c8/h8, "central_vs_hier_states_x")
	}
}

// Parallel sweep benches: every level of the concurrent decision engine at
// once. Run with -cpu 1,4,8 — the worker pools inherit GOMAXPROCS, so the
// -cpu 1 column is the sequential engine and the others the speedup.

// BenchmarkScalabilitySweep is the Fig. 6/EXT3 sweep end-to-end: cluster
// sizes fan out, each hierarchy fans out its per-module L1 decisions and
// learning, and the centralized baseline shards its candidate search.
func BenchmarkScalabilitySweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := benchOpts(int64(i + 1))
		opts.Scale = 0.03
		if _, err := RunScalability([]int{4, 8}, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOverheadModuleSweep runs the three OVH1 module configurations
// as one fanned-out batch (vs the sequential per-size benches above).
func BenchmarkOverheadModuleSweep(b *testing.B) {
	var rows []OverheadRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = RunOverheadModules(DefaultOverheadCases(), benchOpts(int64(i+1)))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].ExploredPerL1, "states_per_L1")
}

// BenchmarkOverheadClusterSweep runs both OVH2 cluster sizes as one batch.
func BenchmarkOverheadClusterSweep(b *testing.B) {
	var rows []OverheadRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = RunOverheadClusters([]int{4, 5}, benchOpts(int64(i+1)))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].ExploredPerL1, "states_per_L1")
}

// BenchmarkAblationSweep fans the nine EXT2 variants across the pool.
func BenchmarkAblationSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := benchOpts(int64(i + 1))
		opts.Scale = 0.03
		if _, err := RunAblations(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// Tick benchmarks: the steady-state decision hot paths behind
// BENCH_tick.json (run with -benchmem; CI does). They share the
// driveTick* workload helpers with RunTickBench, so the snapshot and
// this alarm wire measure the same steady state by construction. Warm
// controllers must report 0 allocs/op for L0 and the table probe and 2
// allocs/op (the returned decision's slices) for L1/L2.

func tickGMaps(b *testing.B, n int) []*controller.GMap {
	b.Helper()
	gmaps, err := learnTickGMaps(n)
	if err != nil {
		b.Fatal(err)
	}
	return gmaps
}

func BenchmarkTickL0Decide(b *testing.B) {
	spec, err := cluster.StandardComputer(3, "C4")
	if err != nil {
		b.Fatal(err)
	}
	l0, err := controller.NewL0(controller.DefaultL0Config(), spec)
	if err != nil {
		b.Fatal(err)
	}
	lambda := make([]float64, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := driveTickL0(l0, lambda, i); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTickL1Decide(b *testing.B) {
	l1, err := controller.NewL1(controller.DefaultL1Config(), tickGMaps(b, 4))
	if err != nil {
		b.Fatal(err)
	}
	queues := make([]float64, 4)
	avail := []bool{true, true, true, true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := driveTickL1(l1, queues, avail, i); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTickL2Decide(b *testing.B) {
	gmaps := tickGMaps(b, 4)
	l0cfg := controller.DefaultL0Config()
	l0cfg.Horizon = 2
	tree, err := controller.LearnModuleTree(l0cfg, controller.DefaultL1Config(), gmaps, controller.DefaultModuleSimConfig())
	if err != nil {
		b.Fatal(err)
	}
	jts := make([]controller.JTilde, 4)
	for i := range jts {
		jts[i] = tree
	}
	l2, err := controller.NewL2(controller.DefaultL2Config(), jts)
	if err != nil {
		b.Fatal(err)
	}
	qavg := make([]float64, 4)
	chat := []float64{0.0175, 0.0175, 0.0175, 0.0175}
	avail := []bool{true, true, true, true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := driveTickL2(l2, qavg, chat, avail, i); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTickTableProbe(b *testing.B) {
	g := tickGMaps(b, 1)[0]
	scratch := make([]float64, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := driveTickProbe(g, scratch, i); err != nil {
			b.Fatal(err)
		}
	}
}

// Micro-benchmarks of the hot paths.

func BenchmarkLLCExhaustiveSearch(b *testing.B) {
	spec, err := cluster.StandardComputer(1, "C2") // 10 operating points
	if err != nil {
		b.Fatal(err)
	}
	l0, err := controller.NewL0(controller.DefaultL0Config(), spec)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l0.Decide(50, []float64{40}, 0.0175); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimplexNeighbourhood(b *testing.B) {
	gamma := []float64{0.25, 0.25, 0.25, 0.25}
	mask := []bool{true, true, true, true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		controller.SimplexNeighbours(gamma, mask, 0.05, 2)
	}
}

func BenchmarkFluidQueueStep(b *testing.B) {
	s := queue.State{Q: 50}
	p := queue.Params{Lambda: 40, C: 0.0175, Phi: 0.8, T: 30}
	for i := 0; i < b.N; i++ {
		next, err := queue.Step(s, p)
		if err != nil {
			b.Fatal(err)
		}
		s.R = next.R
	}
}

func BenchmarkKalmanObserveForecast(b *testing.B) {
	kf, err := forecast.NewKalman(1, 0.1, 10)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		kf.Observe(float64(i % 100))
		kf.Forecast(3)
	}
}

func BenchmarkPlantServeInterval(b *testing.B) {
	spec, err := cluster.StandardComputer(3, "C4")
	if err != nil {
		b.Fatal(err)
	}
	spec.BootDelaySeconds = 0
	comp, err := cluster.NewComputer(spec)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := comp.PowerOn(0); err != nil {
		b.Fatal(err)
	}
	if err := comp.SetFrequencyIndex(len(spec.FrequenciesHz) - 1); err != nil {
		b.Fatal(err)
	}
	t := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// 100 requests per 30 s interval at ~70% utilization.
		for r := 0; r < 100; r++ {
			comp.Enqueue(t+float64(r)*0.3, 0.0175)
		}
		t += 30
		if err := comp.Advance(t, nil); err != nil {
			b.Fatal(err)
		}
		comp.TakeIntervalStats()
	}
}
