package hierctl

import (
	"testing"
	"time"

	"hierctl/internal/econ"
)

func TestRunScalabilitySmall(t *testing.T) {
	opts := fastOpts()
	opts.Scale = 0.03
	rows, err := RunScalability([]int{4, 8}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4 (2 controllers × 2 sizes)", len(rows))
	}
	byKey := map[string]ScalabilityRow{}
	for _, r := range rows {
		byKey[r.Controller+string(rune('0'+r.Computers))] = r
		if r.ExploredPerPeriod <= 0 {
			t.Errorf("%s n=%d: no states explored", r.Controller, r.Computers)
		}
		if r.DecideTimePerPeriod <= 0 {
			t.Errorf("%s n=%d: no decide time", r.Controller, r.Computers)
		}
	}
	// §3's claim: the flat controller's search grows super-linearly with
	// cluster size; the hierarchy's per-module work stays near flat.
	c4 := byKey["centralized"+string(rune('0'+4))]
	c8 := byKey["centralized"+string(rune('0'+8))]
	if c8.ExploredPerPeriod <= 1.5*c4.ExploredPerPeriod {
		t.Errorf("centralized search did not grow: n=4 → %v, n=8 → %v",
			c4.ExploredPerPeriod, c8.ExploredPerPeriod)
	}
	h4 := byKey["hierarchical"+string(rune('0'+4))]
	h8 := byKey["hierarchical"+string(rune('0'+8))]
	growthH := h8.ExploredPerPeriod / h4.ExploredPerPeriod
	growthC := c8.ExploredPerPeriod / c4.ExploredPerPeriod
	if growthC <= growthH {
		t.Errorf("centralized growth %vx not above hierarchical %vx", growthC, growthH)
	}
}

func TestRunScalabilityValidation(t *testing.T) {
	if _, err := RunScalability([]int{5}, fastOpts()); err == nil {
		t.Error("non-multiple-of-4 size: want error")
	}
	bad := fastOpts()
	bad.Scale = 0
	if _, err := RunScalability([]int{4}, bad); err == nil {
		t.Error("bad scale: want error")
	}
}

func TestEnergyRowsArePriced(t *testing.T) {
	opts := fastOpts()
	rows, err := RunEnergyComparison(opts)
	if err != nil {
		t.Fatal(err)
	}
	// Profit must be consistent with the default tariff applied to the
	// row's own fields.
	for _, r := range rows {
		s, err := econ.DefaultTariff().Price(econ.Outcome{
			Completed:     r.Completed,
			Dropped:       r.Dropped,
			ViolationFrac: r.ViolationFrac,
			Energy:        r.Energy,
			Switches:      r.Switches,
		})
		if err != nil {
			t.Fatal(err)
		}
		if s.Profit != r.ProfitUSD {
			t.Errorf("%s: ProfitUSD %v != repriced %v", r.Policy, r.ProfitUSD, s.Profit)
		}
	}
}

func TestScalabilityRowDurationsSane(t *testing.T) {
	opts := fastOpts()
	opts.Scale = 0.03
	rows, err := RunScalability([]int{4}, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.DecideTimePerPeriod > time.Minute {
			t.Errorf("%s: implausible decide time %v", r.Controller, r.DecideTimePerPeriod)
		}
	}
}
