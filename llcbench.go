package hierctl

import (
	"fmt"
	"math"
	"time"

	"hierctl/internal/cluster"
	"hierctl/internal/controller"
	"hierctl/internal/llc"
	"hierctl/internal/queue"
)

// LLCBenchRow is one engine's measurement over the §4.3 decision workload:
// total states explored (the paper's controller-overhead metric) and mean
// wall-clock nanoseconds per receding-horizon decision.
type LLCBenchRow struct {
	// Engine identifies the search variant: "naive" (unpruned,
	// sequential — the original recursive engine's exploration),
	// "pruned" (branch-and-bound), or "pruned-parallel" (branch-and-
	// bound with level-0 fan-out).
	Engine        string  `json:"engine"`
	Explored      int     `json:"explored"`
	NsPerDecision float64 `json:"nsPerDecision"`
	// ExploredVsNaive and SpeedupVsNaive compare against the naive row
	// (1 for the naive row itself).
	ExploredVsNaive float64 `json:"exploredVsNaive"`
	SpeedupVsNaive  float64 `json:"speedupVsNaive"`
}

// LLCBenchSnapshot is the BENCH_llc.json payload: the §4.3 configuration
// the engines were driven over and one row per engine. Decisions are
// verified bit-identical across engines before the snapshot is returned.
type LLCBenchSnapshot struct {
	Computers   []string      `json:"computers"`
	Horizon     int           `json:"horizon"`
	Samples     int           `json:"samples"`
	Decisions   int           `json:"decisions"`
	Parallelism int           `json:"parallelism"`
	Rows        []LLCBenchRow `json:"rows"`
}

// RunLLCBench drives the naive, pruned, and pruned-parallel LLC engines
// over an identical sequence of decisions on the paper's §4.3 module
// (computers C1–C4, horizon 3, three uncertainty samples per step) and
// reports explored states and ns/decision per engine. It errors if any
// engine's decision sequence diverges from the naive engine's — the
// snapshot doubles as an equivalence check. parallelism sets the
// pruned-parallel engine's worker count (values < 2 are raised to 2 so
// the row actually exercises the fan-out).
func RunLLCBench(decisions, parallelism int) (LLCBenchSnapshot, error) {
	if decisions < 1 {
		return LLCBenchSnapshot{}, fmt.Errorf("hierctl: llc bench needs >= 1 decision, got %d", decisions)
	}
	if parallelism < 2 {
		parallelism = 2
	}
	cfg := controller.DefaultL0Config()
	names := []string{"C1", "C2", "C3", "C4"}
	models := make([]llc.Model[queue.State, int], len(names))
	for i, name := range names {
		spec, err := cluster.StandardComputer(i, name)
		if err != nil {
			return LLCBenchSnapshot{}, err
		}
		models[i], err = controller.NewL0Model(cfg, spec)
		if err != nil {
			return LLCBenchSnapshot{}, err
		}
	}

	// The decision workload sweeps queue lengths and a diurnal-ish
	// arrival forecast with the §4.2 uncertainty band, mirroring what
	// the L0 controllers see during the Fig. 4/5 runs.
	const cHat = 0.0175
	const delta = 8.0
	envsFor := func(d int) []([]llc.Env) {
		lam := 40 + 30*math.Sin(float64(d)/9)
		envs := make([]([]llc.Env), cfg.Horizon)
		for q := 0; q < cfg.Horizon; q++ {
			l := lam + 2*float64(q)
			lo := math.Max(0, l-delta)
			envs[q] = []llc.Env{{lo, cHat}, {l, cHat}, {l + delta, cHat}}
		}
		return envs
	}

	engines := []struct {
		name string
		opt  llc.Options
	}{
		{"naive", llc.Options{}},
		{"pruned", llc.Options{NonNegativeCosts: true}},
		{"pruned-parallel", llc.Options{NonNegativeCosts: true, Parallelism: parallelism}},
	}
	snap := LLCBenchSnapshot{
		Computers:   names,
		Horizon:     cfg.Horizon,
		Samples:     3,
		Decisions:   decisions * len(models),
		Parallelism: parallelism,
	}
	var reference []int
	for _, eng := range engines {
		explored := 0
		chosen := make([]int, 0, decisions*len(models))
		start := time.Now()
		for d := 0; d < decisions; d++ {
			envs := envsFor(d)
			x0 := queue.State{Q: float64((d * 7) % 200)}
			for _, m := range models {
				res, err := llc.Exhaustive[queue.State, int](m, x0, envs, eng.opt)
				if err != nil {
					return LLCBenchSnapshot{}, fmt.Errorf("hierctl: llc bench %s: %w", eng.name, err)
				}
				explored += res.Explored
				chosen = append(chosen, res.Inputs[0])
			}
		}
		elapsed := time.Since(start)
		if reference == nil {
			reference = chosen
		} else {
			for i := range reference {
				if chosen[i] != reference[i] {
					return LLCBenchSnapshot{}, fmt.Errorf("hierctl: llc bench %s: decision %d diverged from naive (%d vs %d)",
						eng.name, i, chosen[i], reference[i])
				}
			}
		}
		snap.Rows = append(snap.Rows, LLCBenchRow{
			Engine:        eng.name,
			Explored:      explored,
			NsPerDecision: float64(elapsed.Nanoseconds()) / float64(decisions*len(models)),
		})
	}
	naive := snap.Rows[0]
	for i := range snap.Rows {
		snap.Rows[i].ExploredVsNaive = float64(snap.Rows[i].Explored) / float64(naive.Explored)
		if snap.Rows[i].NsPerDecision > 0 {
			snap.Rows[i].SpeedupVsNaive = naive.NsPerDecision / snap.Rows[i].NsPerDecision
		}
	}
	return snap, nil
}
