package power

import (
	"math"
	"testing"
	"testing/quick"
)

func TestModelDraw(t *testing.T) {
	m := DefaultModel()
	if got := m.Draw(1, true); math.Abs(got-1.75) > 1e-12 {
		t.Errorf("Draw(1, on) = %v, want 1.75", got)
	}
	if got := m.Draw(0.5, true); math.Abs(got-(0.75+0.25)) > 1e-12 {
		t.Errorf("Draw(0.5, on) = %v, want 1.0", got)
	}
	if got := m.Draw(1, false); got != 0 {
		t.Errorf("Draw(off) = %v, want 0", got)
	}
	if got := m.Draw(0, true); got != 0.75 {
		t.Errorf("Draw(0, on) = %v, want base only", got)
	}
}

func TestModelValidate(t *testing.T) {
	if err := (Model{Base: -1}).Validate(); err == nil {
		t.Error("negative base: want error")
	}
	if err := (Model{Base: 1, SwitchCost: -1}).Validate(); err == nil {
		t.Error("negative switch cost: want error")
	}
	if err := DefaultModel().Validate(); err != nil {
		t.Errorf("default model: %v", err)
	}
}

func TestDrawMonotonicInPhi(t *testing.T) {
	m := DefaultModel()
	f := func(a, b float64) bool {
		pa := math.Abs(math.Mod(a, 1))
		pb := math.Abs(math.Mod(b, 1))
		if pa > pb {
			pa, pb = pb, pa
		}
		return m.Draw(pa, true) <= m.Draw(pb, true)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAccountantEnergy(t *testing.T) {
	a := NewAccountant()
	a.Observe("c1", 0, 2)  // 2 units from t=0
	a.Observe("c1", 10, 0) // 2*10 = 20
	a.Observe("c2", 0, 1)  // 1 unit from t=0
	a.FinishAt(20)         // c1: +0, c2: 1*20 = 20
	if got := a.Energy("c1"); got != 20 {
		t.Errorf("Energy(c1) = %v, want 20", got)
	}
	if got := a.Energy("c2"); got != 20 {
		t.Errorf("Energy(c2) = %v, want 20", got)
	}
	if got := a.TotalEnergy(); got != 40 {
		t.Errorf("TotalEnergy = %v, want 40", got)
	}
	if got := a.Energy("missing"); got != 0 {
		t.Errorf("Energy(missing) = %v, want 0", got)
	}
}

func TestAccountantSwitches(t *testing.T) {
	a := NewAccountant()
	a.RecordSwitch("c1", 8)
	a.RecordSwitch("c1", 8)
	a.RecordSwitch("c2", 8)
	if got := a.Switches("c1"); got != 2 {
		t.Errorf("Switches(c1) = %d, want 2", got)
	}
	if got := a.TotalSwitches(); got != 3 {
		t.Errorf("TotalSwitches = %d, want 3", got)
	}
	// Transient energy is charged even with no power observations.
	if got := a.Energy("c1"); got != 16 {
		t.Errorf("Energy(c1) = %v, want 16 (transients)", got)
	}
}

func TestAccountantComponentsOrder(t *testing.T) {
	a := NewAccountant()
	a.Observe("b", 0, 1)
	a.Observe("a", 0, 1)
	a.Observe("b", 1, 2)
	got := a.Components()
	if len(got) != 2 || got[0] != "b" || got[1] != "a" {
		t.Errorf("Components = %v, want [b a] (first-observed order)", got)
	}
	// Returned slice is a copy.
	got[0] = "mutated"
	if a.Components()[0] != "b" {
		t.Error("Components returned internal slice")
	}
}

func TestAccountantEnergyAdditivity(t *testing.T) {
	// Total energy equals the sum of per-component energies whatever the
	// observation pattern.
	f := func(powers []uint8) bool {
		a := NewAccountant()
		names := []string{"x", "y", "z"}
		for i, p := range powers {
			a.Observe(names[i%3], float64(i), float64(p%50))
		}
		a.FinishAt(float64(len(powers) + 1))
		sum := 0.0
		for _, n := range names {
			sum += a.Energy(n)
		}
		return math.Abs(sum-a.TotalEnergy()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
