// Package power implements the energy model of §4.1 of the paper: an
// operating computer draws a constant base cost a plus dynamic power
// φ² where φ = u/u_max is the frequency scaling factor (the model of Sinha
// and Chandrakasan adopted by the paper), and switching a computer on incurs
// a transient cost. The package also provides per-computer energy and
// switch accounting for experiment reports.
package power

import (
	"fmt"

	"hierctl/internal/metrics"
)

// Model holds the power-model parameters for one computer.
type Model struct {
	// Base is the constant cost a drawn whenever the computer is on
	// (power supply, disk, ...). The paper uses a = 0.75.
	Base float64
	// SwitchCost is the transient cost W charged when the computer powers
	// on, expressed in the same abstract units; the paper uses W = 8.
	SwitchCost float64
}

// DefaultModel returns the paper's parameters: a = 0.75, W = 8.
func DefaultModel() Model { return Model{Base: 0.75, SwitchCost: 8} }

// Validate reports whether the parameters are usable.
func (m Model) Validate() error {
	if m.Base < 0 {
		return fmt.Errorf("power: base cost %v < 0", m.Base)
	}
	if m.SwitchCost < 0 {
		return fmt.Errorf("power: switch cost %v < 0", m.SwitchCost)
	}
	return nil
}

// Draw returns the instantaneous power drawn at frequency scaling factor
// phi ∈ [0, 1]: a + φ² while on, 0 while off. Booting computers draw the
// base cost only (they serve nothing, so φ = 0).
func (m Model) Draw(phi float64, on bool) float64 {
	if !on {
		return 0
	}
	return m.Base + phi*phi
}

// Accountant integrates energy and counts power-state switches for a set of
// named components (computers). The zero value is not usable; construct
// with NewAccountant.
type Accountant struct {
	integrals map[string]*metrics.TimeWeighted
	switches  map[string]int
	transient map[string]float64
	order     []string
}

// NewAccountant returns an empty accountant.
func NewAccountant() *Accountant {
	return &Accountant{
		integrals: make(map[string]*metrics.TimeWeighted),
		switches:  make(map[string]int),
		transient: make(map[string]float64),
	}
}

func (a *Accountant) integral(name string) *metrics.TimeWeighted {
	tw, ok := a.integrals[name]
	if !ok {
		tw = &metrics.TimeWeighted{}
		a.integrals[name] = tw
		a.order = append(a.order, name)
	}
	return tw
}

// Observe records that component name draws power w from simulation time t
// onward (piecewise-constant). Calls per component must be in time order.
func (a *Accountant) Observe(name string, t, w float64) {
	a.integral(name).Observe(t, w)
}

// RecordSwitch counts one power-on of the component and charges its
// transient cost.
func (a *Accountant) RecordSwitch(name string, cost float64) {
	a.integral(name) // ensure component is registered
	a.switches[name]++
	a.transient[name] += cost
}

// FinishAt closes all integrals at time t.
func (a *Accountant) FinishAt(t float64) {
	for _, tw := range a.integrals {
		tw.FinishAt(t)
	}
}

// Energy returns the accumulated energy (power integral plus transient
// switching costs) of one component.
func (a *Accountant) Energy(name string) float64 {
	tw, ok := a.integrals[name]
	if !ok {
		return 0
	}
	return tw.Total() + a.transient[name]
}

// TotalEnergy sums energy across all components.
func (a *Accountant) TotalEnergy() float64 {
	sum := 0.0
	for _, name := range a.order {
		sum += a.Energy(name)
	}
	return sum
}

// Switches returns the number of power-ons recorded for the component.
func (a *Accountant) Switches(name string) int { return a.switches[name] }

// TotalSwitches sums power-ons across all components.
func (a *Accountant) TotalSwitches() int {
	sum := 0
	for _, n := range a.switches {
		sum += n
	}
	return sum
}

// Components returns component names in first-observed order.
func (a *Accountant) Components() []string {
	out := make([]string, len(a.order))
	copy(out, a.order)
	return out
}
