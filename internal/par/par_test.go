package par

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(5); got != 5 {
		t.Errorf("Workers(5) = %d", got)
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		n := 37
		hits := make([]int32, n)
		err := For(workers, n, func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Errorf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestForIndexedSlotsMatchSequential(t *testing.T) {
	n := 64
	want := make([]int, n)
	for i := range want {
		want[i] = i * i
	}
	got := make([]int, n)
	if err := For(8, n, func(i int) error {
		got[i] = i * i
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("slot %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestForReturnsLowestIndexError(t *testing.T) {
	// Sequential mode hits task 3 first, full stop.
	err := For(1, 10, func(i int) error {
		if i == 3 || i == 7 {
			return fmt.Errorf("task %d failed", i)
		}
		return nil
	})
	if err == nil || err.Error() != "task 3 failed" {
		t.Errorf("workers=1: got %v, want task 3's error", err)
	}
	// Parallel mode stops dispatching once a task fails; the error is the
	// lowest-index failure among the tasks that ran.
	err = For(4, 10, func(i int) error {
		if i == 3 || i == 7 {
			return fmt.Errorf("task %d failed", i)
		}
		return nil
	})
	if err == nil || !strings.HasSuffix(err.Error(), "failed") {
		t.Errorf("workers=4: got %v, want a task error", err)
	}
}

func TestForStopsDispatchingAfterFailure(t *testing.T) {
	// All tasks fail; with early exit far fewer than n should run. The
	// bound is loose (workers may each pull one more index before seeing
	// the flag) but distinguishes early exit from run-everything.
	var ran atomic.Int32
	err := For(2, 1000, func(i int) error {
		ran.Add(1)
		return fmt.Errorf("task %d failed", i)
	})
	if err == nil {
		t.Fatal("want error")
	}
	if n := ran.Load(); n > 10 {
		t.Errorf("%d tasks ran after first failure, want early exit", n)
	}
}

func TestForZeroTasks(t *testing.T) {
	if err := For(4, 0, func(int) error { return fmt.Errorf("must not run") }); err != nil {
		t.Error(err)
	}
}

func TestForSequentialStopsAtFirstError(t *testing.T) {
	ran := 0
	err := For(1, 10, func(i int) error {
		ran++
		if i == 2 {
			return fmt.Errorf("stop")
		}
		return nil
	})
	if err == nil || ran != 3 {
		t.Errorf("sequential mode ran %d tasks (err %v), want stop after 3", ran, err)
	}
}

func TestForCtxCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		n := 37
		hits := make([]int32, n)
		err := ForCtx(context.Background(), workers, n, func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Errorf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestForCtxStopsSchedulingOnCancel(t *testing.T) {
	// The first tasks cancel the context; far fewer than n tasks may run
	// afterwards (workers may each pull one more index before noticing).
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int32
		err := ForCtx(ctx, workers, 1000, func(i int) error {
			ran.Add(1)
			cancel()
			return nil
		})
		if err == nil || !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: got %v, want context.Canceled", workers, err)
		}
		if n := ran.Load(); n > 20 {
			t.Errorf("workers=%d: %d tasks ran after cancellation, want early exit", workers, n)
		}
		cancel()
	}
}

func TestForCtxTaskErrorBeatsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	err := ForCtx(ctx, 4, 100, func(i int) error {
		if i == 0 {
			cancel()
			return fmt.Errorf("task 0 failed")
		}
		return nil
	})
	cancel()
	if err == nil || err.Error() != "task 0 failed" {
		t.Errorf("got %v, want task 0's error", err)
	}
}

func TestForCtxCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var ran atomic.Int32
		err := ForCtx(ctx, workers, 8, func(i int) error {
			ran.Add(1)
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: got %v, want context.Canceled", workers, err)
		}
		// Parallel workers may each run at most one task before observing
		// the cancelled context; sequential mode must run none.
		if n := ran.Load(); workers == 1 && n != 0 {
			t.Errorf("workers=1: %d tasks ran under a cancelled context", n)
		}
	}
}

func TestForCtxCompletedRunReturnsNil(t *testing.T) {
	// Cancellation after every index completed is not an error: the work
	// is all done.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := ForCtx(ctx, 4, 64, func(int) error { return nil }); err != nil {
		t.Errorf("completed run: %v", err)
	}
}

func TestMapCtxCollectsInIndexOrder(t *testing.T) {
	out, err := MapCtx(context.Background(), 8, 32, func(i int) (int, error) {
		return i * 3, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*3 {
			t.Errorf("slot %d = %d, want %d", i, v, i*3)
		}
	}
}

func TestMapCtxDropsResultsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := MapCtx(ctx, 4, 16, func(i int) (int, error) { return i, nil })
	if err == nil {
		t.Fatal("want error from cancelled context")
	}
	if out != nil {
		t.Errorf("partial results returned: %v", out)
	}
}
