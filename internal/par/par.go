// Package par provides the bounded fan-out primitive the concurrent
// decision engine is built on. The hierarchy's structural parallelism
// (§3's dimensionality argument: module-level controllers decide
// independently) maps onto indexed task slots: workers pull task indices
// from a shared counter, write results into per-index slots, and the
// caller reduces the slots in index order — so a parallel run produces
// bit-identical output to the sequential loop it replaces, regardless of
// scheduling order. Workers == 1 degenerates to the plain inline loop.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a Parallelism setting to an effective worker count:
// values <= 0 mean "one worker per available CPU" (runtime.GOMAXPROCS).
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// For runs fn(i) for every i in [0, n) across at most workers goroutines.
// Task side effects must be confined to the task's own index (write into
// slot i of a pre-sized slice); under that contract the outcome is
// identical to the sequential loop. Once any task fails, workers stop
// pulling new indices (in-flight tasks finish) and the lowest-index error
// among the tasks that ran is returned — the error a sequential loop
// would have hit first among those. With workers <= 1 the tasks run
// inline in index order, stopping at the first error exactly like the
// pre-parallel code did.
func For(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if errs[i] = fn(i); errs[i] != nil {
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Map runs fn(i) for every i in [0, n) across at most workers goroutines
// and collects the results in index order — the indexed-slot fan-out
// pattern the experiment sweeps share. On error the partial results are
// dropped and the lowest-index error is returned, per For's contract.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := For(workers, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ForCtx is For with cooperative cancellation: once ctx is cancelled,
// workers stop pulling new indices (tasks already in flight finish).
// Errors keep For's contract — the lowest-index task error wins; when no
// task failed but cancellation kept some indices from ever running, the
// context's error is returned. A nil error therefore still means every
// task ran and succeeded. Long-running tasks that should stop mid-flight
// must watch ctx themselves.
func ForCtx(ctx context.Context, workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next, completed atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() && ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if errs[i] = fn(i); errs[i] != nil {
					failed.Store(true)
				}
				completed.Add(1)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if int(completed.Load()) < n {
		return ctx.Err()
	}
	return nil
}

// MapCtx is Map with ForCtx's cancellation semantics: results are only
// returned when every task ran and succeeded.
func MapCtx[T any](ctx context.Context, workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForCtx(ctx, workers, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
