package controller

import (
	"testing"

	"hierctl/internal/cluster"
	"hierctl/internal/power"
)

// ctrlSpec returns a computer with four operating points
// (φ = 0.25, 0.5, 0.75, 1.0) and nominal parameters.
func ctrlSpec(name string) cluster.ComputerSpec {
	return cluster.ComputerSpec{
		Name:             name,
		FrequenciesHz:    []float64{0.5e9, 1e9, 1.5e9, 2e9},
		SpeedFactor:      1,
		Power:            power.DefaultModel(),
		BootDelaySeconds: 120,
	}
}

func newTestL0(t *testing.T) *L0 {
	t.Helper()
	cfg := DefaultL0Config()
	l0, err := NewL0(cfg, ctrlSpec("c"))
	if err != nil {
		t.Fatal(err)
	}
	return l0
}

func TestL0ConfigValidation(t *testing.T) {
	base := DefaultL0Config()
	if err := base.Validate(); err != nil {
		t.Fatalf("default config: %v", err)
	}
	mutations := []func(*L0Config){
		func(c *L0Config) { c.Horizon = 0 },
		func(c *L0Config) { c.PeriodSeconds = 0 },
		func(c *L0Config) { c.TargetResponse = 0 },
		func(c *L0Config) { c.SlackWeight = -1 },
		func(c *L0Config) { c.PowerWeight = -1 },
	}
	for i, mutate := range mutations {
		cfg := base
		mutate(&cfg)
		if _, err := NewL0(cfg, ctrlSpec("c")); err == nil {
			t.Errorf("mutation %d: want error", i)
		}
	}
	bad := ctrlSpec("c")
	bad.FrequenciesHz = nil
	if _, err := NewL0(base, bad); err == nil {
		t.Error("bad spec: want error")
	}
}

func TestL0LowLoadPicksLowFrequency(t *testing.T) {
	l0 := newTestL0(t)
	// λ = 2 req/s, c = 17.5 ms → utilization at φ=0.25 is 0.14: the
	// lowest frequency meets r* easily, and power cost favours it.
	idx, err := l0.Decide(0, []float64{2}, 0.0175)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 0 {
		t.Errorf("freq index = %d, want 0 (lowest)", idx)
	}
}

func TestL0HighLoadPicksHighFrequency(t *testing.T) {
	l0 := newTestL0(t)
	// λ = 55 req/s, c = 17.5 ms → needs φ ≈ 0.96: only φ=1 is stable.
	idx, err := l0.Decide(0, []float64{55}, 0.0175)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 3 {
		t.Errorf("freq index = %d, want 3 (max)", idx)
	}
}

func TestL0BacklogForcesSpeedUp(t *testing.T) {
	l0 := newTestL0(t)
	// A backlog deep enough that the lowest frequency cannot clear it
	// within the horizon (capacity at φ=0.25 is ≈430 requests/period)
	// forces a speed-up even with negligible new arrivals.
	idxBacklog, err := l0.Decide(3000, []float64{1}, 0.0175)
	if err != nil {
		t.Fatal(err)
	}
	idxEmpty, err := l0.Decide(0, []float64{1}, 0.0175)
	if err != nil {
		t.Fatal(err)
	}
	if idxBacklog <= idxEmpty {
		t.Errorf("backlog freq %d not above empty-queue freq %d", idxBacklog, idxEmpty)
	}
	if idxBacklog != 3 {
		t.Errorf("deep backlog freq = %d, want max (3)", idxBacklog)
	}
}

func TestL0HorizonScalesExploration(t *testing.T) {
	// Horizon 1 explores |U| states, horizon 3 explores |U|+|U|²+|U|³;
	// on clear-cut loads both pick the same first action.
	short := DefaultL0Config()
	short.Horizon = 1
	l0Short, err := NewL0(short, ctrlSpec("c"))
	if err != nil {
		t.Fatal(err)
	}
	l0Long := newTestL0(t)
	for _, lam := range []float64{2, 55} {
		a, err := l0Short.Decide(0, []float64{lam}, 0.0175)
		if err != nil {
			t.Fatal(err)
		}
		b, err := l0Long.Decide(0, []float64{lam}, 0.0175)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("λ=%v: horizon-1 picked %d, horizon-3 picked %d", lam, a, b)
		}
	}
	eShort, _, _ := l0Short.Overhead()
	eLong, _, _ := l0Long.Overhead()
	if eShort != 2*4 {
		t.Errorf("horizon-1 explored %d, want 8", eShort)
	}
	// Branch-and-bound pruning keeps the horizon-3 count strictly below
	// the naive Σ|U|^q = 84 per decision while still above horizon 1.
	if eLong <= eShort || eLong > 2*84 {
		t.Errorf("horizon-3 explored %d, want in (%d, %d]", eLong, eShort, 2*84)
	}
}

func TestL0ShortForecastPadded(t *testing.T) {
	l0 := newTestL0(t)
	// A single-element forecast works with horizon 3.
	if _, err := l0.Decide(0, []float64{10}, 0.0175); err != nil {
		t.Errorf("short forecast: %v", err)
	}
}

func TestL0InputValidation(t *testing.T) {
	l0 := newTestL0(t)
	if _, err := l0.Decide(0, nil, 0.0175); err == nil {
		t.Error("empty forecast: want error")
	}
	if _, err := l0.Decide(0, []float64{1}, 0); err == nil {
		t.Error("zero c: want error")
	}
	// Negative forecasts are clamped, not an error.
	if _, err := l0.Decide(0, []float64{-5}, 0.0175); err != nil {
		t.Errorf("negative forecast: %v", err)
	}
}

func TestL0OverheadMetering(t *testing.T) {
	l0 := newTestL0(t)
	if _, err := l0.Decide(0, []float64{10}, 0.0175); err != nil {
		t.Fatal(err)
	}
	explored, decisions, compute := l0.Overhead()
	// |U| = 4, N = 3: the naive tree holds 4 + 16 + 64 = 84 states; the
	// branch-and-bound search must visit at least the root fan-out and
	// at most the naive count, and stay deterministic across decisions.
	if explored < 4 || explored > 84 {
		t.Errorf("explored = %d, want within [4, 84]", explored)
	}
	if decisions != 1 {
		t.Errorf("decisions = %d, want 1", decisions)
	}
	if compute <= 0 {
		t.Error("compute time not recorded")
	}
	if _, err := l0.Decide(0, []float64{10}, 0.0175); err != nil {
		t.Fatal(err)
	}
	explored2, _, _ := l0.Overhead()
	if explored2 != 2*explored {
		t.Errorf("explored after 2 identical decisions = %d, want %d", explored2, 2*explored)
	}
}
