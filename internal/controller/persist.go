package controller

import (
	"encoding/gob"
	"fmt"
	"io"

	"hierctl/internal/approx"
	"hierctl/internal/cluster"
)

// Artifact persistence: the offline simulation-based learning (maps g,
// trees J̃) is the expensive phase of bringing up the hierarchy, so both
// artifacts can be saved and reloaded. A loaded artifact is only valid for
// the exact configuration it was learned under; callers key artifact files
// by configuration fingerprints (see internal/core).

type gmapHeader struct {
	Version int
	Cfg     GMapConfig
	Spec    cluster.ComputerSpec
}

const gmapVersion = 1

// Save serializes the learned abstraction map.
func (g *GMap) Save(w io.Writer) error {
	enc := gob.NewEncoder(w)
	if err := enc.Encode(gmapHeader{Version: gmapVersion, Cfg: g.cfg, Spec: g.spec}); err != nil {
		return fmt.Errorf("controller: encode gmap header: %w", err)
	}
	return g.table.Save(w)
}

// ReadGMap deserializes an abstraction map written by Save.
func ReadGMap(r io.Reader) (*GMap, error) {
	dec := gob.NewDecoder(r)
	var h gmapHeader
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("controller: decode gmap header: %w", err)
	}
	if h.Version != gmapVersion {
		return nil, fmt.Errorf("controller: gmap artifact version %d, want %d", h.Version, gmapVersion)
	}
	if err := h.Cfg.Validate(); err != nil {
		return nil, fmt.Errorf("controller: gmap artifact config: %w", err)
	}
	if err := h.Spec.Validate(); err != nil {
		return nil, fmt.Errorf("controller: gmap artifact spec: %w", err)
	}
	table, err := approx.ReadTable(r)
	if err != nil {
		return nil, err
	}
	return &GMap{table: table, cfg: h.Cfg, spec: h.Spec}, nil
}

// Save serializes the module cost tree.
func (t *TreeJTilde) Save(w io.Writer) error {
	return t.tree.Save(w)
}

// ReadTreeJTilde deserializes a module cost tree written by Save.
func ReadTreeJTilde(r io.Reader) (*TreeJTilde, error) {
	tree, err := approx.ReadTree(r)
	if err != nil {
		return nil, err
	}
	return NewTreeJTilde(tree)
}
