package controller

import (
	"fmt"
	"math"
	"time"

	"hierctl/internal/llc"
	// Aliased: Decide's observation parameter is conventionally named obs.
	flight "hierctl/internal/obs"
)

// L1Config parameterizes a module-level L1 controller (§4.2).
type L1Config struct {
	// PeriodSeconds is the sampling time T_L1 (paper: 2 min, "the
	// typical time delay incurred in switching on a computer").
	PeriodSeconds float64
	// Quantum quantizes the load fractions γ_ij (paper: 0.05 for m = 4,
	// 0.1 for the m = 6 and m = 10 experiments).
	Quantum float64
	// SwitchWeight is W, the transient cost of powering a computer on
	// (paper: 8, "much higher than the base operating cost of 0.75").
	SwitchWeight float64
	// NeighbourDepth bounds the γ neighbourhood search: how many quanta
	// may move between computers relative to the seed allocations.
	NeighbourDepth int
	// Horizon selects the lookahead depth. 1 is the paper's N_L1 = 1
	// with the optimistic convention that a freshly switched-on computer
	// serves immediately. 2 prices the boot dead time explicitly
	// (§1's "control actions with dead times ... requiring proactive
	// control"): in the first period fresh computers only draw base
	// power and their load share falls on the surviving computers; in
	// the second they participate fully. 2 is the default because the
	// request-level plant in this library really does impose the dead
	// time.
	Horizon int
	// MinOn is the minimum number of operational computers (≥ 1 keeps
	// the module able to serve).
	MinOn int
	// StabilityUtil is the §4.2 queuing-stability limit on the load
	// fractions: a candidate that would push any computer's full-speed
	// utilization γ_j·λ̂·ĉ/speed_j beyond this bound is heavily
	// penalized ("we know the peak request arrival rate that can be
	// processed by a computer without queuing instability"). Must lie
	// in (0, 1].
	StabilityUtil float64
	// UncertaintySamples enables the §4.2 chattering mitigation: when
	// true the expected cost is averaged over {λ̂−δ, λ̂, λ̂+δ}; when
	// false only the nominal forecast is used (the EXT2 ablation).
	UncertaintySamples bool
	// NonNegativeCosts declares the per-sample candidate costs
	// non-negative — true for the learned abstraction maps, whose cells
	// store sums of slack and power terms — enabling branch-and-bound
	// pruning of the candidate × sample loop: a candidate whose partial
	// sample average already meets the incumbent best is abandoned
	// without evaluating its remaining samples. The selected (α, γ) is
	// bit-identical (a pruned candidate could at best tie, and ties
	// never displace the incumbent); only Explored shrinks, and it
	// remains deterministic. Disable for custom maps that can price
	// candidates negatively.
	NonNegativeCosts bool
	// MaxExplored caps the candidate-state evaluations one Decide may
	// perform — the deterministic per-tick decision deadline. A search
	// exhausting the budget fails with llc.ErrBudget; the caller applies
	// deterministic safe fallback settings for the tick and searches
	// again next period. 0 = unlimited.
	MaxExplored int
}

// DefaultL1Config returns the paper's §4.3 settings.
func DefaultL1Config() L1Config {
	return L1Config{
		PeriodSeconds:      120,
		Quantum:            0.05,
		SwitchWeight:       8,
		NeighbourDepth:     2,
		Horizon:            2,
		MinOn:              1,
		StabilityUtil:      0.85,
		UncertaintySamples: true,
		NonNegativeCosts:   true,
	}
}

// Validate reports whether the configuration is usable.
func (c L1Config) Validate() error {
	if c.PeriodSeconds <= 0 {
		return fmt.Errorf("controller: L1 period %v <= 0", c.PeriodSeconds)
	}
	units := math.Round(1 / c.Quantum)
	if c.Quantum <= 0 || c.Quantum > 1 || math.Abs(units*c.Quantum-1) > 1e-9 {
		return fmt.Errorf("controller: L1 quantum %v must evenly divide 1", c.Quantum)
	}
	if c.SwitchWeight < 0 {
		return fmt.Errorf("controller: L1 switch weight %v < 0", c.SwitchWeight)
	}
	if c.NeighbourDepth < 0 {
		return fmt.Errorf("controller: L1 neighbour depth %d < 0", c.NeighbourDepth)
	}
	if c.Horizon != 1 && c.Horizon != 2 {
		return fmt.Errorf("controller: L1 horizon %d must be 1 or 2", c.Horizon)
	}
	if c.MinOn < 1 {
		return fmt.Errorf("controller: L1 min-on %d < 1", c.MinOn)
	}
	if c.StabilityUtil <= 0 || c.StabilityUtil > 1 {
		return fmt.Errorf("controller: L1 stability utilization %v outside (0, 1]", c.StabilityUtil)
	}
	if c.MaxExplored < 0 {
		return fmt.Errorf("controller: L1 explored budget %d < 0", c.MaxExplored)
	}
	return nil
}

// L1Observation is the aggregated module state x_L1 (Eq. 9) plus the
// environment estimates ω̂_L1 (Eq. 11–12) the L1 controller consumes.
type L1Observation struct {
	// QueueLens holds the observed queue length of each computer.
	QueueLens []float64
	// LambdaHat is the forecast module arrival rate (requests/second)
	// over the next L1 period.
	LambdaHat float64
	// Delta is the forecast uncertainty band half-width δ (§4.2).
	Delta float64
	// CHat is the estimated mean full-speed processing time (seconds).
	CHat float64
	// Available marks computers that may be powered on (false = failed).
	Available []bool
}

// L1Decision is the controller's output: the operating state vector
// {α_ij} and the load fractions {γ_ij}.
type L1Decision struct {
	// Alpha[j] is true if computer j should be on.
	Alpha []bool
	// Gamma[j] is the fraction of module load dispatched to computer j;
	// zero wherever Alpha[j] is false, summing to 1.
	Gamma []float64
	// Explored counts candidate states evaluated (overhead metric).
	Explored int
}

// vecPool recycles candidate vectors across periods.
type vecPool[T any] struct {
	vecs [][]T
	used int
}

func (p *vecPool[T]) reset() { p.used = 0 }

func (p *vecPool[T]) get(n int) []T {
	if p.used < len(p.vecs) {
		v := p.vecs[p.used]
		p.used++
		return v
	}
	v := make([]T, n)
	p.vecs = append(p.vecs, v)
	p.used++
	return v
}

// packBools packs an on/off vector into a uint64 bitmask (len ≤ 64).
func packBools(a []bool) uint64 {
	k := uint64(0)
	for i, v := range a {
		if v {
			k |= 1 << uint(i)
		}
	}
	return k
}

// gammaMemoEntry caches the capacity-seeded γ neighbourhood of one α
// mask. The controller's capacity weights, quantum and neighbour depth
// are fixed at construction, so the (mask, quantum, depth) →
// neighbour-set computation that historically reran every period is
// memoized per mask.
type gammaMemoEntry struct {
	cands [][]float64
	keys  []uint64
}

// L1 is the module-level controller. Construct with NewL1.
//
// The controller owns candidate pools, dedup key slices, a per-α-mask
// memo of capacity-seeded γ neighbourhoods, and abstraction-map scratch,
// so a warm Decide allocates only the two slices of the returned
// decision (pinned by TestL1DecideSteadyStateAllocs). Not safe for
// concurrent use.
type L1 struct {
	cfg   L1Config
	gmaps []*GMap
	caps  []float64 // relative capacity weights for seed allocations

	prevAlpha []bool
	prevGamma []float64

	// fastPaths gates the pooled/packed candidate machinery: the module
	// must fit a 64-bit α mask and its γ vectors a packed uint64. Larger
	// modules keep the historical allocating generators (identical
	// candidate sets either way).
	fastPaths bool
	gammaPer  uint // packed-γ bits per entry (valid when fastPaths)

	snap         snapper
	samplesBuf   [3]float64
	evalBuf      [gColWidth]float64
	qEndBuf      []float64
	alphaBase    []bool
	alphaScr     []bool
	alphaPool    vecPool[bool]
	alphaCands   [][]bool
	alphaKeys    []uint64
	gammaMemo    map[uint64]*gammaMemoEntry
	gammaPool    vecPool[float64]
	gammaList    [][]float64
	gammaKeys    []uint64
	gammaScr     []float64
	prevSnap     []float64
	bestAlphaScr []bool
	bestGammaScr []float64

	explored    int
	decisions   int
	computeTime time.Duration

	// Flight recorder (nil = disabled) and the module index stamped onto
	// records.
	rec       *flight.Recorder
	recModule int16
}

// NewL1 builds an L1 controller over the module's learned abstraction
// maps (one per computer, in module order). The initial assumed state is
// all computers on with a capacity-proportional allocation.
func NewL1(cfg L1Config, gmaps []*GMap) (*L1, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(gmaps) == 0 {
		return nil, fmt.Errorf("controller: L1 needs at least one abstraction map")
	}
	for j, g := range gmaps {
		if g == nil {
			return nil, fmt.Errorf("controller: L1 abstraction map %d is nil", j)
		}
	}
	if cfg.MinOn > len(gmaps) {
		return nil, fmt.Errorf("controller: L1 min-on %d exceeds module size %d", cfg.MinOn, len(gmaps))
	}
	m := len(gmaps)
	l := &L1{cfg: cfg, gmaps: gmaps, caps: make([]float64, m)}
	for j, g := range gmaps {
		// Capacity proxy: service rate at full speed for a nominal
		// demand, used only to seed allocations.
		l.caps[j] = g.Spec().SpeedFactor
	}
	per, gammaOK := gammaBits(m, cfg.Quantum)
	l.fastPaths = m <= 64 && gammaOK
	l.gammaPer = per
	l.gammaMemo = make(map[uint64]*gammaMemoEntry)
	l.qEndBuf = make([]float64, m)
	l.alphaBase = make([]bool, m)
	l.alphaScr = make([]bool, m)
	l.gammaScr = make([]float64, m)
	l.prevSnap = make([]float64, m)
	l.bestAlphaScr = make([]bool, m)
	l.bestGammaScr = make([]float64, m)
	l.prevAlpha = make([]bool, m)
	allOn := make([]bool, m)
	for j := range allOn {
		l.prevAlpha[j] = true
		allOn[j] = true
	}
	var err error
	l.prevGamma, err = SnapSimplex(l.caps, allOn, cfg.Quantum)
	if err != nil {
		return nil, err
	}
	return l, nil
}

// Size returns the number of computers the controller manages.
func (l *L1) Size() int { return len(l.gmaps) }

// SetRecorder attaches a decision flight recorder (nil detaches) and
// names the module index stamped onto records. Each Decide writes one
// summary record (Comp == -1: packed α mask, explored count, incumbent
// cost, decide latency) followed by one detail record per computer
// (its On state and γ share). Recording is observe-only: decisions are
// identical with it on or off.
func (l *L1) SetRecorder(r *flight.Recorder, module int) {
	l.rec, l.recModule = r, int16(module)
}

// record writes the decision boundary to the flight recorder.
func (l *L1) record(dec L1Decision, cost float64, elapsed time.Duration) {
	l.rec.Record(flight.Record{
		Level:    flight.LevelL1,
		Module:   l.recModule,
		Comp:     -1,
		FreqIdx:  -1,
		Explored: int32(dec.Explored),
		DecideNs: elapsed.Nanoseconds(),
		Alpha:    packBools(dec.Alpha),
		Cost:     cost,
	})
	for j := range dec.Gamma {
		l.rec.Record(flight.Record{
			Level:   flight.LevelL1,
			Module:  l.recModule,
			Comp:    int16(j),
			FreqIdx: -1,
			On:      dec.Alpha[j],
			Gamma:   dec.Gamma[j],
		})
	}
}

// SetMaxExplored replaces the decision budget for subsequent searches
// (see L1Config.MaxExplored); n <= 0 removes it. It lets a runtime chaos
// plan squeeze the budget of an already-constructed controller.
func (l *L1) SetMaxExplored(n int) {
	if n < 0 {
		n = 0
	}
	l.cfg.MaxExplored = n
}

// SetState overrides the controller's notion of the previous decision —
// used when the manager forces a configuration (e.g. initial state).
func (l *L1) SetState(alpha []bool, gamma []float64) error {
	if len(alpha) != l.Size() || len(gamma) != l.Size() {
		return fmt.Errorf("controller: L1 state size mismatch")
	}
	l.prevAlpha = append([]bool(nil), alpha...)
	l.prevGamma = append([]float64(nil), gamma...)
	return nil
}

// Decide solves the L1 optimization (Eq. 14) by bounded search: candidate
// on/off vectors are the previous one and its single-computer toggles;
// candidate load fractions are the quantized neighbourhoods of
// capacity-proportional and previous allocations; the expected cost of
// each candidate is averaged over the forecast uncertainty band.
//
//hpm:hotpath
func (l *L1) Decide(obs L1Observation) (L1Decision, error) {
	m := l.Size()
	if len(obs.QueueLens) != m {
		return L1Decision{}, fmt.Errorf("controller: observation has %d queues, module has %d", len(obs.QueueLens), m)
	}
	if obs.Available == nil {
		obs.Available = make([]bool, m) //hpm:alloc nil-Available normalization; steady-state callers pass their scratch slice
		for j := range obs.Available {
			obs.Available[j] = true
		}
	}
	if len(obs.Available) != m {
		return L1Decision{}, fmt.Errorf("controller: observation has %d availability flags, module has %d", len(obs.Available), m)
	}
	if obs.CHat <= 0 {
		return L1Decision{}, fmt.Errorf("controller: L1 processing-time estimate %v <= 0", obs.CHat)
	}
	if obs.LambdaHat < 0 {
		obs.LambdaHat = 0
	}
	// A fully failed module cannot serve: degrade to the all-off
	// decision so the hierarchy keeps running (the L2 routes around the
	// module via its availability flag).
	if countTrue(obs.Available) == 0 {
		dec := L1Decision{Alpha: make([]bool, m), Gamma: make([]float64, m)} //hpm:alloc all-off degrade path; off the steady-state loop
		l.prevAlpha = dec.Alpha
		l.prevGamma = dec.Gamma
		l.decisions++
		if l.rec.Enabled() {
			l.record(dec, 0, 0)
		}
		return dec, nil
	}
	start := time.Now() //hpm:wallclock decide-latency for the §4.3 overhead metric; observe-only

	samples := l.samplesBuf[:1]
	samples[0] = obs.LambdaHat
	if l.cfg.UncertaintySamples && obs.Delta > 0 {
		samples = l.samplesBuf[:3]
		samples[0] = math.Max(0, obs.LambdaHat-obs.Delta)
		samples[1] = obs.LambdaHat
		samples[2] = obs.LambdaHat + obs.Delta
	}

	bestCost := math.Inf(1)
	bestSet := false
	explored := 0
	nSamples := float64(len(samples))
	for _, alpha := range l.alphaCandidates(obs.Available) {
		for _, gamma := range l.gammaCandidates(alpha) {
			sum := 0.0
			pruned := false
			for si, lam := range samples {
				c, err := l.evaluate(alpha, gamma, obs, lam)
				if err != nil {
					return L1Decision{}, err
				}
				sum += c
				explored++
				if l.cfg.MaxExplored > 0 && explored > l.cfg.MaxExplored {
					// Deterministic decision deadline (see
					// L1Config.MaxExplored): the counter is scheduling-free,
					// so the trip point is identical on every run.
					return L1Decision{}, fmt.Errorf("controller: L1 search: %w", llc.ErrBudget)
				}
				if l.cfg.NonNegativeCosts && llc.PrunePartialMean(sum, len(samples), si, bestCost) {
					pruned = true
					break
				}
			}
			if pruned {
				continue
			}
			cost := sum / nSamples
			if cost < bestCost {
				bestCost = cost
				bestSet = true
				// Candidate vectors live in pools recycled on the next
				// generator call, so the incumbent is copied out now.
				copy(l.bestAlphaScr, alpha)
				copy(l.bestGammaScr, gamma)
			}
		}
	}
	if !bestSet || math.IsInf(bestCost, 1) {
		return L1Decision{}, fmt.Errorf("controller: L1 found no candidate configuration")
	}
	best := L1Decision{
		Alpha:    append([]bool(nil), l.bestAlphaScr...),    //hpm:alloc decision copy-out; counted by the allocs/decision pin
		Gamma:    append([]float64(nil), l.bestGammaScr...), //hpm:alloc decision copy-out; counted by the allocs/decision pin
		Explored: explored,
	}
	elapsed := time.Since(start) //hpm:wallclock decide-latency for the §4.3 overhead metric; observe-only
	l.prevAlpha = best.Alpha
	l.prevGamma = best.Gamma
	l.explored += explored
	l.decisions++
	l.computeTime += elapsed
	if l.rec.Enabled() {
		l.record(best, bestCost, elapsed)
	}
	return best, nil
}

// evaluate prices one (α, γ) candidate under one sampled arrival rate
// following Eq. 14: Σ_j α_j·J̃(x, γ_j) + W·‖Δα‖, with J̃ from the
// abstraction maps.
//
// With Horizon = 1 a freshly switched-on computer is assumed to serve its
// share immediately (the paper's optimistic convention). With Horizon = 2
// the boot dead time is priced: during the first period fresh computers
// draw base power only and their load share is renormalized onto the
// already-serving computers — exactly what the dispatcher does in the
// plant — and during the second period the full configuration serves from
// the first period's predicted end queues.
func (l *L1) evaluate(alpha []bool, gamma []float64, obs L1Observation, lambda float64) (float64, error) {
	switchCost := 0.0
	for j := range alpha {
		if alpha[j] && !l.prevAlpha[j] {
			switchCost += l.cfg.SwitchWeight
		}
	}
	// Queuing-stability soft barrier (§4.2): penalize candidates whose
	// steady-state full-speed utilization exceeds the stability bound on
	// any computer. The penalty dwarfs power costs so a stable candidate
	// always wins when one exists, while overload still yields the
	// least-bad allocation.
	const stabilityPenalty = 1e4
	for j := range alpha {
		if !alpha[j] || gamma[j] == 0 {
			continue
		}
		util := gamma[j] * lambda * obs.CHat / l.gmaps[j].Spec().SpeedFactor
		if util > l.cfg.StabilityUtil {
			switchCost += stabilityPenalty * (util - l.cfg.StabilityUtil)
		}
	}
	if l.cfg.Horizon == 1 {
		total := switchCost
		for j := range alpha {
			if !alpha[j] {
				continue
			}
			cost, _, _, _, err := l.gmaps[j].EvaluateInto(l.evalBuf[:], obs.QueueLens[j], gamma[j]*lambda, obs.CHat)
			if err != nil {
				return 0, err
			}
			total += cost
		}
		return total, nil
	}

	// Horizon 2, boot-aware. Period 1: only computers already serving do
	// work; fresh boots draw base power.
	servingShare := 0.0
	anyServing := false
	for j := range alpha {
		if alpha[j] && l.prevAlpha[j] {
			servingShare += gamma[j]
			anyServing = true
		}
	}
	total := switchCost
	qEnd := l.qEndBuf
	for j := range alpha {
		qEnd[j] = obs.QueueLens[j]
		if !alpha[j] {
			continue
		}
		if !l.prevAlpha[j] {
			// Booting: base power for the period, no service.
			total += l.gmaps[j].Spec().Power.Base
			continue
		}
		share := gamma[j]
		if servingShare > 0 {
			share = gamma[j] / servingShare
		}
		cost, qe, _, _, err := l.gmaps[j].EvaluateInto(l.evalBuf[:], obs.QueueLens[j], share*lambda, obs.CHat)
		if err != nil {
			return 0, err
		}
		total += cost
		qEnd[j] = qe
	}
	if !anyServing && lambda > 0 {
		// Nothing serves during period 1: the whole period's demand
		// queues unserved. Penalize proportionally to the stranded work.
		total += lambda * l.cfg.PeriodSeconds
	}

	// Period 2: the full configuration serves from the predicted queues.
	for j := range alpha {
		if !alpha[j] {
			continue
		}
		cost, _, _, _, err := l.gmaps[j].EvaluateInto(l.evalBuf[:], qEnd[j], gamma[j]*lambda, obs.CHat)
		if err != nil {
			return 0, err
		}
		total += cost
	}
	return total, nil
}

// alphaCandidates returns the bounded on/off candidate set: the previous
// vector projected onto availability, every single-computer toggle of it,
// and the all-available-on vector, each with at least MinOn computers on
// (or as many as availability allows). Candidate vectors live in the
// controller's pool and are recycled on the next call.
func (l *L1) alphaCandidates(avail []bool) [][]bool {
	if !l.fastPaths {
		return l.alphaCandidatesLegacy(avail)
	}
	m := l.Size()
	minOn := l.cfg.MinOn
	if a := countTrue(avail); a < minOn {
		minOn = a
	}
	base := l.alphaBase
	for j := range base {
		base[j] = l.prevAlpha[j] && avail[j]
	}
	ensureMinOn(base, avail, minOn)

	l.alphaPool.reset()
	l.alphaCands = l.alphaCands[:0]
	l.alphaKeys = l.alphaKeys[:0]
	add := func(a []bool) {
		if countOn(a) < minOn {
			return
		}
		k := packBools(a)
		for _, ek := range l.alphaKeys {
			if ek == k {
				return
			}
		}
		l.alphaKeys = append(l.alphaKeys, k)
		cp := l.alphaPool.get(m)
		copy(cp, a)
		l.alphaCands = append(l.alphaCands, cp)
	}
	add(base)
	cand := l.alphaScr
	for j := 0; j < m; j++ {
		copy(cand, base)
		if cand[j] {
			cand[j] = false
		} else if avail[j] {
			cand[j] = true
		} else {
			continue
		}
		add(cand)
	}
	for j := range cand {
		cand[j] = avail[j]
	}
	add(cand)
	return l.alphaCands
}

// alphaCandidatesLegacy is the historical allocating generator, kept for
// modules too large for a 64-bit mask.
func (l *L1) alphaCandidatesLegacy(avail []bool) [][]bool {
	m := l.Size()
	minOn := l.cfg.MinOn
	if a := countTrue(avail); a < minOn {
		minOn = a
	}
	base := make([]bool, m)
	for j := range base {
		base[j] = l.prevAlpha[j] && avail[j]
	}
	ensureMinOn(base, avail, minOn)

	seen := map[string]bool{}
	var out [][]bool
	add := func(a []bool) {
		if countOn(a) < minOn {
			return
		}
		k := alphaKey(a)
		if !seen[k] {
			seen[k] = true
			out = append(out, append([]bool(nil), a...))
		}
	}
	add(base)
	for j := 0; j < m; j++ {
		cand := append([]bool(nil), base...)
		if cand[j] {
			cand[j] = false
		} else if avail[j] {
			cand[j] = true
		} else {
			continue
		}
		add(cand)
	}
	allOn := make([]bool, m)
	for j := range allOn {
		allOn[j] = avail[j]
	}
	add(allOn)
	return out
}

// gammaCandidates returns the bounded γ candidate set for a given α: the
// quantized neighbourhoods of the capacity-proportional seed and of the
// previous allocation projected onto α's support. The capacity-seeded
// part depends only on the α mask (capacities, quantum and depth are
// fixed), so it is memoized per mask; the previous-allocation part is
// regenerated each period into pooled vectors, deduped against the list
// by packed keys. Returned vectors are recycled on the next call.
func (l *L1) gammaCandidates(alpha []bool) [][]float64 {
	if !l.fastPaths {
		return l.gammaCandidatesLegacy(alpha)
	}
	// Bound the memo so long-lived controllers (daemon tenants under
	// rotating failure masks) cannot grow it toward 2^m entries; a miss
	// past the cap computes without storing, which is merely slower.
	const maxGammaMemoEntries = 256
	mask := packBools(alpha)
	entry := l.gammaMemo[mask]
	if entry == nil {
		seedCap, err := SnapSimplex(l.caps, alpha, l.cfg.Quantum)
		if err != nil {
			return nil
		}
		cands := SimplexNeighbours(seedCap, alpha, l.cfg.Quantum, l.cfg.NeighbourDepth)
		entry = &gammaMemoEntry{cands: cands, keys: make([]uint64, len(cands))}
		for i, g := range cands {
			entry.keys[i] = gammaPack(g, l.cfg.Quantum, l.gammaPer)
		}
		if len(l.gammaMemo) < maxGammaMemoEntries {
			l.gammaMemo[mask] = entry
		}
	}
	l.gammaPool.reset()
	l.gammaList = append(l.gammaList[:0], entry.cands...)
	l.gammaKeys = append(l.gammaKeys[:0], entry.keys...)

	// Previous-allocation neighbourhood (depth 1): prev snapped onto α's
	// support, then every single-quantum move — the same vectors, in the
	// same order, SimplexNeighbours(prev, α, quantum, 1) produces.
	prev, err := l.snap.snapInto(l.prevSnap, l.prevGamma, alpha, l.cfg.Quantum)
	if err != nil {
		return l.gammaList
	}
	l.prevSnap = prev
	l.addGammaIfNew(prev)
	cand := l.gammaScr
	for a := range prev {
		if !alpha[a] || prev[a] < l.cfg.Quantum-1e-9 {
			continue
		}
		for b := range prev {
			if b == a || !alpha[b] {
				continue
			}
			copy(cand, prev)
			cand[a] -= l.cfg.Quantum
			cand[b] += l.cfg.Quantum
			if cand[a] < -1e-9 {
				continue
			}
			if cand[a] < 0 {
				cand[a] = 0
			}
			l.addGammaIfNew(cand)
		}
	}
	return l.gammaList
}

// addGammaIfNew appends a copy of g to the candidate list unless its
// packed key is already present.
func (l *L1) addGammaIfNew(g []float64) {
	k := gammaPack(g, l.cfg.Quantum, l.gammaPer)
	for _, ek := range l.gammaKeys {
		if ek == k {
			return
		}
	}
	l.gammaKeys = append(l.gammaKeys, k)
	cp := l.gammaPool.get(len(g))
	copy(cp, g)
	l.gammaList = append(l.gammaList, cp)
}

// gammaCandidatesLegacy is the historical allocating generator, kept for
// modules whose γ vectors overflow the packed key.
func (l *L1) gammaCandidatesLegacy(alpha []bool) [][]float64 {
	seedCap, errCap := SnapSimplex(l.caps, alpha, l.cfg.Quantum)
	if errCap != nil {
		return nil
	}
	cands := SimplexNeighbours(seedCap, alpha, l.cfg.Quantum, l.cfg.NeighbourDepth)
	if prev, err := SnapSimplex(l.prevGamma, alpha, l.cfg.Quantum); err == nil {
		for _, g := range SimplexNeighbours(prev, alpha, l.cfg.Quantum, 1) {
			cands = appendUniqueGamma(cands, g, l.cfg.Quantum)
		}
	}
	return cands
}

func appendUniqueGamma(list [][]float64, g []float64, quantum float64) [][]float64 {
	k := gammaKey(g, quantum)
	for _, existing := range list {
		if gammaKey(existing, quantum) == k {
			return list
		}
	}
	return append(list, g)
}

// Overhead reports accumulated overhead counters.
func (l *L1) Overhead() (explored, decisions int, compute time.Duration) {
	return l.explored, l.decisions, l.computeTime
}

func countOn(a []bool) int {
	n := 0
	for _, v := range a {
		if v {
			n++
		}
	}
	return n
}

func countTrue(a []bool) int { return countOn(a) }

func ensureMinOn(a, avail []bool, minOn int) {
	for j := 0; countOn(a) < minOn && j < len(a); j++ {
		if avail[j] && !a[j] {
			a[j] = true
		}
	}
}

func alphaKey(a []bool) string {
	buf := make([]byte, len(a))
	for i, v := range a {
		if v {
			buf[i] = 1
		}
	}
	return string(buf)
}
