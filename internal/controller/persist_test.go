package controller

import (
	"bytes"
	"strings"
	"testing"

	"hierctl/internal/approx"
)

func TestGMapRoundTrip(t *testing.T) {
	g := testGMap(t, ctrlSpec("persist"))
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadGMap(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Cells() != g.Cells() {
		t.Fatalf("cells = %d, want %d", loaded.Cells(), g.Cells())
	}
	if loaded.Spec().Name != g.Spec().Name {
		t.Errorf("spec name = %s, want %s", loaded.Spec().Name, g.Spec().Name)
	}
	for _, probe := range [][3]float64{{0, 10, 0.018}, {100, 60, 0.018}, {200, 120, 0.022}} {
		c1, q1, r1, p1, err := g.Evaluate(probe[0], probe[1], probe[2])
		if err != nil {
			t.Fatal(err)
		}
		c2, q2, r2, p2, err := loaded.Evaluate(probe[0], probe[1], probe[2])
		if err != nil {
			t.Fatal(err)
		}
		if c1 != c2 || q1 != q2 || r1 != r2 || p1 != p2 {
			t.Errorf("probe %v diverged after round trip", probe)
		}
	}
}

func TestTreeJTildeRoundTrip(t *testing.T) {
	samples := []approx.Sample{
		{X: []float64{0, 0, 0.018}, Y: 1},
		{X: []float64{0, 100, 0.018}, Y: 50},
		{X: []float64{50, 0, 0.018}, Y: 5},
		{X: []float64{50, 100, 0.018}, Y: 70},
	}
	tree, err := approx.FitTree(samples, approx.TreeConfig{MaxDepth: 4, MinLeaf: 1})
	if err != nil {
		t.Fatal(err)
	}
	jt, err := NewTreeJTilde(tree)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := jt.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadTreeJTilde(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, probe := range [][3]float64{{0, 0, 0.018}, {50, 100, 0.018}, {25, 50, 0.018}} {
		a, err := jt.Predict(probe[0], probe[1], probe[2])
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.Predict(probe[0], probe[1], probe[2])
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("probe %v diverged: %v vs %v", probe, a, b)
		}
	}
}

func TestReadGMapGarbage(t *testing.T) {
	if _, err := ReadGMap(strings.NewReader("junk")); err == nil {
		t.Error("garbage gmap: want error")
	}
	if _, err := ReadTreeJTilde(strings.NewReader("junk")); err == nil {
		t.Error("garbage tree: want error")
	}
}
