package controller

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func sumsToOne(g []float64) bool {
	s := 0.0
	for _, v := range g {
		s += v
	}
	return math.Abs(s-1) < 1e-9
}

func isQuantized(g []float64, quantum float64) bool {
	for _, v := range g {
		u := v / quantum
		if math.Abs(u-math.Round(u)) > 1e-6 {
			return false
		}
	}
	return true
}

func TestSnapSimplexBasics(t *testing.T) {
	g, err := SnapSimplex([]float64{1, 1, 2}, []bool{true, true, true}, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if !sumsToOne(g) || !isQuantized(g, 0.25) {
		t.Errorf("snap = %v, want quantized simplex", g)
	}
	// Proportionality: the weight-2 entry gets the largest share.
	if g[2] < g[0] || g[2] < g[1] {
		t.Errorf("snap = %v, want largest share at index 2", g)
	}
}

func TestSnapSimplexMask(t *testing.T) {
	g, err := SnapSimplex([]float64{1, 1, 1}, []bool{true, false, true}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if g[1] != 0 {
		t.Errorf("masked entry = %v, want 0", g[1])
	}
	if !sumsToOne(g) {
		t.Errorf("snap = %v, want sum 1", g)
	}
}

func TestSnapSimplexZeroWeightsUniform(t *testing.T) {
	g, err := SnapSimplex([]float64{0, 0}, []bool{true, true}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if g[0] != 0.5 || g[1] != 0.5 {
		t.Errorf("zero weights snap = %v, want uniform", g)
	}
}

func TestSnapSimplexErrors(t *testing.T) {
	if _, err := SnapSimplex(nil, nil, 0.1); err == nil {
		t.Error("empty input: want error")
	}
	if _, err := SnapSimplex([]float64{1}, []bool{true}, 0.3); err == nil {
		t.Error("quantum 0.3 does not divide 1: want error")
	}
	if _, err := SnapSimplex([]float64{1}, []bool{false}, 0.5); err == nil {
		t.Error("empty mask: want error")
	}
	if _, err := SnapSimplex([]float64{1, 2}, []bool{true}, 0.5); err == nil {
		t.Error("length mismatch: want error")
	}
}

func TestSnapSimplexProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	quanta := []float64{0.05, 0.1, 0.2, 0.25, 0.5}
	f := func(n uint8, qSeed uint8) bool {
		size := int(n%6) + 1
		weights := make([]float64, size)
		mask := make([]bool, size)
		anyOn := false
		for i := range weights {
			weights[i] = rng.Float64() * 10
			mask[i] = rng.Intn(2) == 0
			anyOn = anyOn || mask[i]
		}
		if !anyOn {
			mask[0] = true
		}
		quantum := quanta[int(qSeed)%len(quanta)]
		g, err := SnapSimplex(weights, mask, quantum)
		if err != nil {
			return false
		}
		if !sumsToOne(g) || !isQuantized(g, quantum) {
			return false
		}
		for i := range g {
			if !mask[i] && g[i] != 0 {
				return false
			}
			if g[i] < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSimplexNeighboursValidity(t *testing.T) {
	gamma := []float64{0.5, 0.5, 0}
	mask := []bool{true, true, true}
	nbrs := SimplexNeighbours(gamma, mask, 0.25, 2)
	if len(nbrs) < 2 {
		t.Fatalf("neighbourhood too small: %d", len(nbrs))
	}
	// First entry is the input itself.
	if nbrs[0][0] != 0.5 || nbrs[0][1] != 0.5 {
		t.Errorf("first neighbour = %v, want input", nbrs[0])
	}
	for _, g := range nbrs {
		if !sumsToOne(g) || !isQuantized(g, 0.25) {
			t.Errorf("invalid neighbour %v", g)
		}
	}
}

func TestSimplexNeighboursMask(t *testing.T) {
	gamma := []float64{1, 0, 0}
	mask := []bool{true, true, false}
	for _, g := range SimplexNeighbours(gamma, mask, 0.5, 3) {
		if g[2] != 0 {
			t.Errorf("masked entry received mass: %v", g)
		}
	}
}

func TestSimplexNeighboursDepthGrows(t *testing.T) {
	gamma := []float64{1, 0, 0, 0}
	mask := []bool{true, true, true, true}
	d1 := SimplexNeighbours(gamma, mask, 0.05, 1)
	d3 := SimplexNeighbours(gamma, mask, 0.05, 3)
	if len(d3) <= len(d1) {
		t.Errorf("depth 3 (%d) not larger than depth 1 (%d)", len(d3), len(d1))
	}
}

func TestSimplexNeighboursNoDuplicates(t *testing.T) {
	gamma := []float64{0.5, 0.5}
	mask := []bool{true, true}
	nbrs := SimplexNeighbours(gamma, mask, 0.25, 4)
	seen := map[string]bool{}
	for _, g := range nbrs {
		k := gammaKey(g, 0.25)
		if seen[k] {
			t.Errorf("duplicate neighbour %v", g)
		}
		seen[k] = true
	}
}

func TestEnumerateSimplexMatchesCount(t *testing.T) {
	for _, tc := range []struct {
		k       int
		quantum float64
	}{
		{2, 0.5}, {3, 0.25}, {4, 0.1}, {1, 0.1},
	} {
		mask := make([]bool, tc.k)
		for i := range mask {
			mask[i] = true
		}
		got := EnumerateSimplex(tc.k, mask, tc.quantum)
		want := CountSimplex(tc.k, tc.quantum)
		if len(got) != want {
			t.Errorf("k=%d q=%v: enumerated %d, CountSimplex %d", tc.k, tc.quantum, len(got), want)
		}
		for _, g := range got {
			if !sumsToOne(g) || !isQuantized(g, tc.quantum) {
				t.Errorf("invalid vector %v", g)
			}
		}
	}
}

func TestEnumerateSimplexWithMask(t *testing.T) {
	mask := []bool{true, false, true}
	got := EnumerateSimplex(3, mask, 0.5)
	// Compositions of 2 units into 2 slots: 3 vectors.
	if len(got) != 3 {
		t.Fatalf("got %d vectors, want 3", len(got))
	}
	for _, g := range got {
		if g[1] != 0 {
			t.Errorf("masked slot has mass: %v", g)
		}
	}
}

func TestCountSimplexKnownValues(t *testing.T) {
	// 10 units into 4 slots: C(13,3) = 286.
	if got := CountSimplex(4, 0.1); got != 286 {
		t.Errorf("CountSimplex(4, 0.1) = %d, want 286", got)
	}
	// 20 units into 4 slots: C(23,3) = 1771.
	if got := CountSimplex(4, 0.05); got != 1771 {
		t.Errorf("CountSimplex(4, 0.05) = %d, want 1771", got)
	}
	if got := CountSimplex(0, 0.1); got != 0 {
		t.Errorf("CountSimplex(0) = %d, want 0", got)
	}
	if got := CountSimplex(1, 0.1); got != 1 {
		t.Errorf("CountSimplex(1) = %d, want 1", got)
	}
}
