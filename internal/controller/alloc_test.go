package controller

// Allocation pins for the decision tick (the §4.3 controller-overhead
// story): warm controllers must not allocate beyond the slices of the
// decisions they return, and the pooled/packed candidate generators must
// produce exactly the candidate sets of the historical allocating ones.

import (
	"math"
	"math/rand"
	"testing"
)

func TestGMapEvaluateIntoZeroAlloc(t *testing.T) {
	g := testGMap(t, ctrlSpec("alloc-gmap"))
	scratch := make([]float64, 4)
	allocs := testing.AllocsPerRun(200, func() {
		if _, _, _, _, err := g.EvaluateInto(scratch, 50, 40, 0.018); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("EvaluateInto allocated %v/op, want 0", allocs)
	}
}

func TestL0DecideZeroAlloc(t *testing.T) {
	l0, err := NewL0(DefaultL0Config(), ctrlSpec("alloc-l0"))
	if err != nil {
		t.Fatal(err)
	}
	lambda := make([]float64, 3)
	decide := func(i int) {
		lam := 40 + 30*math.Sin(float64(i)/9)
		lambda[0], lambda[1], lambda[2] = lam, lam+2, lam+4
		if _, err := l0.DecideBanded(float64((i*7)%200), lambda, 8, 0.0175); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		decide(i)
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		decide(i)
		i++
	})
	if allocs != 0 {
		t.Fatalf("warm L0 decide allocated %v/op, want 0", allocs)
	}
}

// TestL1DecideSteadyStateAllocs pins the warm L1 period at its small
// constant: the two slices of the returned decision and nothing else.
func TestL1DecideSteadyStateAllocs(t *testing.T) {
	l1 := newTestL1(t, 4)
	if !l1.fastPaths {
		t.Fatal("m=4 module should take the pooled candidate paths")
	}
	avail := []bool{true, true, true, true}
	queues := make([]float64, 4)
	decide := func(i int) {
		lam := 60 + 40*math.Sin(float64(i)/9)
		for j := range queues {
			queues[j] = float64((i * (3 + 2*j)) % 80)
		}
		if _, err := l1.Decide(L1Observation{
			QueueLens: queues, LambdaHat: lam, Delta: 8, CHat: 0.0175, Available: avail,
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		decide(i)
	}
	i := 0
	allocs := testing.AllocsPerRun(100, func() {
		decide(i)
		i++
	})
	// Exactly the returned L1Decision's Alpha and Gamma copies.
	if allocs > 2 {
		t.Fatalf("warm L1 decide allocated %v/op, want <= 2 (the returned decision's slices)", allocs)
	}
}

// TestL2DecideSteadyStateAllocs pins the warm L2 period (enumeration
// path, memo hot) at the returned decision's slices.
func TestL2DecideSteadyStateAllocs(t *testing.T) {
	jts := make([]JTilde, 4)
	for i := range jts {
		jts[i] = allocQuadJTilde{scale: 100 + 20*float64(i)}
	}
	l2, err := NewL2(DefaultL2Config(), jts)
	if err != nil {
		t.Fatal(err)
	}
	qavg := make([]float64, 4)
	chat := []float64{0.0175, 0.0175, 0.0175, 0.0175}
	avail := []bool{true, true, true, true}
	decide := func(i int) {
		lam := 200 + 100*math.Sin(float64(i)/9)
		for j := range qavg {
			qavg[j] = float64((i * (3 + 2*j)) % 40)
		}
		if _, err := l2.Decide(L2Observation{
			QAvg: qavg, LambdaHat: lam, Delta: 20, CHat: chat, Available: avail,
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		decide(i)
	}
	i := 0
	allocs := testing.AllocsPerRun(100, func() {
		decide(i)
		i++
	})
	// The returned Gamma copy plus the prevGamma copy.
	if allocs > 2 {
		t.Fatalf("warm L2 decide allocated %v/op, want <= 2 (the returned decision's slices)", allocs)
	}
}

type allocQuadJTilde struct{ scale float64 }

func (q allocQuadJTilde) Predict(qAvg, lambda, c float64) (float64, error) {
	return (lambda/q.scale)*(lambda/q.scale) + 0.01*qAvg + 0.8, nil
}

// TestL1CandidateGeneratorsMatchLegacy drives the pooled/packed candidate
// generators and the historical allocating ones through random
// availability masks and controller states and requires identical
// candidate lists, in order.
func TestL1CandidateGeneratorsMatchLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	l1 := newTestL1(t, 4)
	if !l1.fastPaths {
		t.Fatal("m=4 module should take the pooled candidate paths")
	}
	m := l1.Size()
	for trial := 0; trial < 200; trial++ {
		// Random controller state on the quantized simplex.
		alpha := make([]bool, m)
		on := 0
		for j := range alpha {
			alpha[j] = rng.Intn(3) > 0
			if alpha[j] {
				on++
			}
		}
		if on == 0 {
			alpha[rng.Intn(m)] = true
		}
		weights := make([]float64, m)
		for j := range weights {
			weights[j] = rng.Float64()
		}
		gamma, err := SnapSimplex(weights, alpha, l1.cfg.Quantum)
		if err != nil {
			t.Fatal(err)
		}
		if err := l1.SetState(alpha, gamma); err != nil {
			t.Fatal(err)
		}
		avail := make([]bool, m)
		up := 0
		for j := range avail {
			avail[j] = rng.Intn(4) > 0
			if avail[j] {
				up++
			}
		}
		if up == 0 {
			avail[rng.Intn(m)] = true
		}

		fastA := l1.alphaCandidates(avail)
		legacyA := l1.alphaCandidatesLegacy(avail)
		if len(fastA) != len(legacyA) {
			t.Fatalf("trial %d: %d alpha candidates, legacy %d", trial, len(fastA), len(legacyA))
		}
		for i := range legacyA {
			for j := range legacyA[i] {
				if fastA[i][j] != legacyA[i][j] {
					t.Fatalf("trial %d: alpha candidate %d diverged: %v vs %v", trial, i, fastA[i], legacyA[i])
				}
			}
		}
		for _, cand := range legacyA {
			fastG := l1.gammaCandidates(cand)
			legacyG := l1.gammaCandidatesLegacy(cand)
			if len(fastG) != len(legacyG) {
				t.Fatalf("trial %d: %d gamma candidates for %v, legacy %d", trial, len(fastG), cand, len(legacyG))
			}
			for i := range legacyG {
				for j := range legacyG[i] {
					if fastG[i][j] != legacyG[i][j] {
						t.Fatalf("trial %d: gamma candidate %d for %v diverged: %v vs %v",
							trial, i, cand, fastG[i], legacyG[i])
					}
				}
			}
		}
	}
}

// TestL1DecideLargeModuleLegacyPath exercises a quantum too fine to pack
// so the legacy generators drive the decision; the controller must still
// answer.
func TestGammaPackedKeyMatchesStringKey(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(6)
		quantum := []float64{0.05, 0.1, 0.2, 0.25, 0.5}[rng.Intn(5)]
		per, ok := gammaBits(n, quantum)
		if !ok {
			t.Fatalf("trial %d: (%d, %v) should pack", trial, n, quantum)
		}
		mask := make([]bool, n)
		mask[rng.Intn(n)] = true
		for j := range mask {
			if rng.Intn(2) == 0 {
				mask[j] = true
			}
		}
		weights := make([]float64, n)
		for j := range weights {
			weights[j] = rng.Float64()
		}
		a, err := SnapSimplex(weights, mask, quantum)
		if err != nil {
			t.Fatal(err)
		}
		for j := range weights {
			weights[j] = rng.Float64()
		}
		b, err := SnapSimplex(weights, mask, quantum)
		if err != nil {
			t.Fatal(err)
		}
		// Packed keys must induce exactly the string keys' equivalence.
		samePacked := gammaPack(a, quantum, per) == gammaPack(b, quantum, per)
		sameString := gammaKey(a, quantum) == gammaKey(b, quantum)
		if samePacked != sameString {
			t.Fatalf("trial %d: packed equality %v, string equality %v for %v / %v", trial, samePacked, sameString, a, b)
		}
	}
}
