package controller

import (
	"fmt"

	"hierctl/internal/approx"
	"hierctl/internal/cluster"
	"hierctl/internal/llc"
	"hierctl/internal/queue"
)

// GMapConfig parameterizes the learning grid of the abstraction map g
// (§4.2): the quantized domains of the computer state (queue length), the
// environment inputs (arrival rate, processing time), and the number of
// L0 periods per L1 period the closed loop is simulated for.
type GMapConfig struct {
	// QMax and QStep bound and quantize the queue-length dimension.
	QMax, QStep float64
	// LambdaMax and LambdaStep bound and quantize the per-computer
	// arrival-rate dimension (requests/second).
	LambdaMax, LambdaStep float64
	// CMin, CMax and CStep bound and quantize the processing-time
	// dimension (seconds at full speed).
	CMin, CMax, CStep float64
	// SubSteps is l = T_L1/T_L0, the number of L0 decisions simulated
	// per cell (paper: 4).
	SubSteps int
}

// DefaultGMapConfig returns a grid sized for the paper's workloads.
func DefaultGMapConfig() GMapConfig {
	return GMapConfig{
		QMax: 400, QStep: 20,
		LambdaMax: 300, LambdaStep: 15,
		CMin: 0.010, CMax: 0.026, CStep: 0.004,
		SubSteps: 4,
	}
}

// Validate reports whether the configuration is usable.
func (c GMapConfig) Validate() error {
	if c.QMax <= 0 || c.QStep <= 0 {
		return fmt.Errorf("controller: gmap queue grid (%v, %v) invalid", c.QMax, c.QStep)
	}
	if c.LambdaMax <= 0 || c.LambdaStep <= 0 {
		return fmt.Errorf("controller: gmap lambda grid (%v, %v) invalid", c.LambdaMax, c.LambdaStep)
	}
	if c.CMin <= 0 || c.CMax < c.CMin || c.CStep <= 0 {
		return fmt.Errorf("controller: gmap c grid (%v, %v, %v) invalid", c.CMin, c.CMax, c.CStep)
	}
	if c.SubSteps < 1 {
		return fmt.Errorf("controller: gmap substeps %d < 1", c.SubSteps)
	}
	return nil
}

// GMap is the learned abstraction map g of one computer under its L0
// controller (§4.2): a quantized hash table from (queue length, arrival
// rate, processing time) to the average closed-loop cost over one L1
// period, the end-of-period queue length, the average achieved response
// time, and the average power draw. Construct with LearnGMap.
type GMap struct {
	table *approx.Table
	cfg   GMapConfig
	spec  cluster.ComputerSpec
}

// gMap output columns.
const (
	gColCost = iota
	gColQEnd
	gColResp
	gColPower
	gColWidth
)

// LearnGMap performs the offline simulation-based learning of §4.2:
// for every grid cell it simulates the L0-controlled fluid model for
// SubSteps periods under constant environment inputs and stores the
// aggregate outcome.
func LearnGMap(l0cfg L0Config, spec cluster.ComputerSpec, cfg GMapConfig) (*GMap, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	l0, err := NewL0(l0cfg, spec)
	if err != nil {
		return nil, err
	}
	quant, err := approx.NewQuantizer(
		[]float64{0, 0, cfg.CMin},
		[]float64{cfg.QMax, cfg.LambdaMax, cfg.CMax},
		[]float64{cfg.QStep, cfg.LambdaStep, cfg.CStep},
	)
	if err != nil {
		return nil, err
	}
	table, err := approx.NewTable(quant, gColWidth)
	if err != nil {
		return nil, err
	}
	g := &GMap{table: table, cfg: cfg, spec: spec}

	levels := [][]float64{quant.Levels(0), quant.Levels(1), quant.Levels(2)}
	err = approx.Grid(levels, func(p []float64) error {
		q0, lambda, c := p[0], p[1], p[2]
		cost, qEnd, resp, pw, err := g.simulateCell(l0, l0cfg, q0, lambda, c)
		if err != nil {
			return err
		}
		return table.Add(p, []float64{cost, qEnd, resp, pw})
	})
	if err != nil {
		return nil, err
	}
	return g, nil
}

// simulateCell runs the closed L0 loop on the fluid model for one L1
// period with constant environment inputs.
func (g *GMap) simulateCell(l0 *L0, l0cfg L0Config, q0, lambda, c float64) (avgCost, qEnd, avgResp, avgPower float64, err error) {
	state := queue.State{Q: q0}
	var costSum, respSum, powerSum float64
	for step := 0; step < g.cfg.SubSteps; step++ {
		idx, err := l0.Decide(state.Q, []float64{lambda}, c)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		phi := g.spec.Phi(idx)
		next, err := queue.Step(state, queue.Params{
			Lambda: lambda,
			C:      c / g.spec.SpeedFactor,
			Phi:    phi,
			T:      l0cfg.PeriodSeconds,
		})
		if err != nil {
			return 0, 0, 0, 0, err
		}
		psi := g.spec.Power.Draw(phi, true)
		costSum += l0cfg.SlackWeight*llc.Slack(next.R, l0cfg.EffectiveTarget()) + l0cfg.PowerWeight*psi
		respSum += next.R
		powerSum += psi
		state = next
	}
	n := float64(g.cfg.SubSteps)
	return costSum / n, state.Q, respSum / n, powerSum / n, nil
}

// Evaluate looks up the learned outcome for the given (queue length,
// arrival rate, processing time). Points outside the grid are clamped to
// its boundary cells, so overload queries saturate rather than miss.
func (g *GMap) Evaluate(q0, lambda, c float64) (cost, qEnd, resp, power float64, err error) {
	return g.EvaluateInto(nil, q0, lambda, c)
}

// EvaluateInto is Evaluate probing the table through caller-owned scratch
// (capacity ≥ 4): with scratch supplied the probe performs no allocation —
// one hash probe on the packed cell key, no intermediate point or output
// slice (pinned by TestGMapEvaluateIntoZeroAlloc). The map itself is
// read-only here, so distinct callers may share one GMap as long as each
// brings its own scratch.
func (g *GMap) EvaluateInto(scratch []float64, q0, lambda, c float64) (cost, qEnd, resp, power float64, err error) {
	x := [3]float64{q0, lambda, c}
	out, ok, err := g.table.LookupInto(scratch, x[:])
	if err != nil {
		return 0, 0, 0, 0, err
	}
	if !ok {
		// The learning sweep populates every grid cell, so a miss means
		// the map was built with a different grid.
		return 0, 0, 0, 0, fmt.Errorf("controller: gmap cell missing for (%v, %v, %v)", q0, lambda, c)
	}
	return out[gColCost], out[gColQEnd], out[gColResp], out[gColPower], nil
}

// Cells returns the number of learned cells.
func (g *GMap) Cells() int { return g.table.Cells() }

// Spec returns the computer spec the map was learned for.
func (g *GMap) Spec() cluster.ComputerSpec { return g.spec }
