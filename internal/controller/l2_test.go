package controller

import (
	"math"
	"testing"

	"hierctl/internal/approx"
)

// funcJTilde adapts a closure to the JTilde interface for tests.
type funcJTilde func(q, lambda, c float64) float64

func (f funcJTilde) Predict(q, lambda, c float64) (float64, error) {
	return f(q, lambda, c), nil
}

// convexLoadCost is a well-behaved module cost: quadratic in load with a
// module-specific capacity scale.
func convexLoadCost(scale float64) funcJTilde {
	return func(q, lambda, c float64) float64 {
		return (lambda/scale)*(lambda/scale) + q*0.01
	}
}

func TestL2ConfigValidation(t *testing.T) {
	base := DefaultL2Config()
	if err := base.Validate(); err != nil {
		t.Fatalf("default config: %v", err)
	}
	mutations := []func(*L2Config){
		func(c *L2Config) { c.PeriodSeconds = 0 },
		func(c *L2Config) { c.Quantum = 0.3 },
		func(c *L2Config) { c.EnumLimit = 0 },
		func(c *L2Config) { c.NeighbourDepth = 0 },
	}
	for i, mutate := range mutations {
		cfg := base
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d: want error", i)
		}
	}
}

func TestNewL2Validation(t *testing.T) {
	if _, err := NewL2(DefaultL2Config(), nil); err == nil {
		t.Error("no models: want error")
	}
	if _, err := NewL2(DefaultL2Config(), []JTilde{nil}); err == nil {
		t.Error("nil model: want error")
	}
}

func TestL2BalancesIdenticalModules(t *testing.T) {
	models := []JTilde{
		convexLoadCost(100), convexLoadCost(100),
		convexLoadCost(100), convexLoadCost(100),
	}
	l2, err := NewL2(DefaultL2Config(), models)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := l2.Decide(L2Observation{
		QAvg:      []float64{0, 0, 0, 0},
		LambdaHat: 200,
		CHat:      []float64{0.018, 0.018, 0.018, 0.018},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Convex symmetric cost: optimum is uniform at 0.25 each (hits the
	// 0.1 quantization as 0.2/0.3 splits at worst).
	for i, g := range dec.Gamma {
		if math.Abs(g-0.25) > 0.051 {
			t.Errorf("γ[%d] = %v, want ≈0.25", i, g)
		}
	}
	sum := 0.0
	for _, g := range dec.Gamma {
		sum += g
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("Σγ = %v, want 1", sum)
	}
}

func TestL2ShiftsLoadToCheaperModule(t *testing.T) {
	// Module 0 is 4× the capacity of module 1.
	models := []JTilde{convexLoadCost(200), convexLoadCost(50)}
	l2, err := NewL2(DefaultL2Config(), models)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := l2.Decide(L2Observation{
		QAvg:      []float64{0, 0},
		LambdaHat: 100,
		CHat:      []float64{0.018, 0.018},
	})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Gamma[0] <= dec.Gamma[1] {
		t.Errorf("γ = %v, want most load on the big module", dec.Gamma)
	}
}

func TestL2UnavailableModuleGetsZero(t *testing.T) {
	models := []JTilde{convexLoadCost(100), convexLoadCost(100), convexLoadCost(100)}
	l2, err := NewL2(DefaultL2Config(), models)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := l2.Decide(L2Observation{
		QAvg:      []float64{0, 0, 0},
		LambdaHat: 100,
		CHat:      []float64{0.018, 0.018, 0.018},
		Available: []bool{true, false, true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Gamma[1] != 0 {
		t.Errorf("failed module received γ = %v", dec.Gamma[1])
	}
}

func TestL2NoAvailableModules(t *testing.T) {
	l2, err := NewL2(DefaultL2Config(), []JTilde{convexLoadCost(100)})
	if err != nil {
		t.Fatal(err)
	}
	_, err = l2.Decide(L2Observation{
		QAvg:      []float64{0},
		LambdaHat: 1,
		CHat:      []float64{0.018},
		Available: []bool{false},
	})
	if err == nil {
		t.Error("no available modules: want error")
	}
}

func TestL2ObservationValidation(t *testing.T) {
	l2, err := NewL2(DefaultL2Config(), []JTilde{convexLoadCost(100), convexLoadCost(100)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l2.Decide(L2Observation{QAvg: []float64{0}, LambdaHat: 1, CHat: []float64{0.018, 0.018}}); err == nil {
		t.Error("QAvg size mismatch: want error")
	}
	if _, err := l2.Decide(L2Observation{QAvg: []float64{0, 0}, LambdaHat: 1, CHat: []float64{0.018, 0.018}, Available: []bool{true}}); err == nil {
		t.Error("availability size mismatch: want error")
	}
}

func TestL2BoundedModeAboveEnumLimit(t *testing.T) {
	cfg := DefaultL2Config()
	cfg.EnumLimit = 10 // force the bounded path for 4 modules
	models := []JTilde{
		convexLoadCost(100), convexLoadCost(100),
		convexLoadCost(100), convexLoadCost(100),
	}
	l2, err := NewL2(cfg, models)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := l2.Decide(L2Observation{
		QAvg:      []float64{0, 0, 0, 0},
		LambdaHat: 100,
		CHat:      []float64{0.018, 0.018, 0.018, 0.018},
	})
	if err != nil {
		t.Fatal(err)
	}
	full := CountSimplex(4, cfg.Quantum)
	if dec.Explored >= full {
		t.Errorf("bounded mode explored %d, full enumeration is %d", dec.Explored, full)
	}
	sum := 0.0
	for _, g := range dec.Gamma {
		sum += g
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("Σγ = %v, want 1", sum)
	}
}

func TestL2UncertaintySamplesIncreaseExploration(t *testing.T) {
	models := []JTilde{convexLoadCost(100), convexLoadCost(100)}
	l2, err := NewL2(DefaultL2Config(), models)
	if err != nil {
		t.Fatal(err)
	}
	nominal, err := l2.Decide(L2Observation{
		QAvg: []float64{0, 0}, LambdaHat: 50, Delta: 0,
		CHat: []float64{0.018, 0.018},
	})
	if err != nil {
		t.Fatal(err)
	}
	banded, err := l2.Decide(L2Observation{
		QAvg: []float64{0, 0}, LambdaHat: 50, Delta: 20,
		CHat: []float64{0.018, 0.018},
	})
	if err != nil {
		t.Fatal(err)
	}
	// With branch-and-bound pruning a banded candidate may abandon its
	// remaining samples, so the ratio is bounded by 3×, not pinned to it.
	if banded.Explored <= nominal.Explored || banded.Explored > 3*nominal.Explored {
		t.Errorf("banded explored %d, want in (%d, %d]", banded.Explored, nominal.Explored, 3*nominal.Explored)
	}
}

// TestL2UncertaintySamplesExactWithoutPruning pins the unpruned
// accounting: with NonNegativeCosts off every candidate prices all three
// band samples, so exploration is exactly 3× the nominal run.
func TestL2UncertaintySamplesExactWithoutPruning(t *testing.T) {
	cfg := DefaultL2Config()
	cfg.NonNegativeCosts = false
	models := []JTilde{convexLoadCost(100), convexLoadCost(100)}
	l2, err := NewL2(cfg, models)
	if err != nil {
		t.Fatal(err)
	}
	nominal, err := l2.Decide(L2Observation{
		QAvg: []float64{0, 0}, LambdaHat: 50, Delta: 0,
		CHat: []float64{0.018, 0.018},
	})
	if err != nil {
		t.Fatal(err)
	}
	banded, err := l2.Decide(L2Observation{
		QAvg: []float64{0, 0}, LambdaHat: 50, Delta: 20,
		CHat: []float64{0.018, 0.018},
	})
	if err != nil {
		t.Fatal(err)
	}
	if banded.Explored != 3*nominal.Explored {
		t.Errorf("banded explored %d, want 3× nominal %d", banded.Explored, nominal.Explored)
	}
}

// TestL2PruningPreservesDecision pins the branch-and-bound contract at
// the L2 level: pruned and unpruned searches pick the identical γ while
// pruning never explores more.
func TestL2PruningPreservesDecision(t *testing.T) {
	obs := []L2Observation{
		{QAvg: []float64{5, 40, 0}, LambdaHat: 200, Delta: 30, CHat: []float64{0.018, 0.022, 0.015}},
		{QAvg: []float64{0, 0, 80}, LambdaHat: 90, Delta: 15, CHat: []float64{0.018, 0.022, 0.015}},
		{QAvg: []float64{12, 3, 7}, LambdaHat: 310, Delta: 45, CHat: []float64{0.018, 0.022, 0.015}},
	}
	mk := func(prune bool) *L2 {
		cfg := DefaultL2Config()
		cfg.NonNegativeCosts = prune
		models := []JTilde{convexLoadCost(90), convexLoadCost(120), convexLoadCost(150)}
		l2, err := NewL2(cfg, models)
		if err != nil {
			t.Fatal(err)
		}
		return l2
	}
	pruned, naive := mk(true), mk(false)
	for step, o := range obs {
		dp, err := pruned.Decide(o)
		if err != nil {
			t.Fatal(err)
		}
		dn, err := naive.Decide(o)
		if err != nil {
			t.Fatal(err)
		}
		for i := range dn.Gamma {
			if dp.Gamma[i] != dn.Gamma[i] {
				t.Fatalf("step %d: γ[%d] = %v pruned vs %v naive", step, i, dp.Gamma[i], dn.Gamma[i])
			}
		}
		if dp.Explored > dn.Explored {
			t.Errorf("step %d: pruned explored %d exceeds naive %d", step, dp.Explored, dn.Explored)
		}
	}
}

func TestTreeJTilde(t *testing.T) {
	samples := []approx.Sample{
		{X: []float64{0, 0, 0.018}, Y: 1},
		{X: []float64{0, 100, 0.018}, Y: 50},
		{X: []float64{10, 0, 0.018}, Y: 2},
		{X: []float64{10, 100, 0.018}, Y: 60},
	}
	tree, err := approx.FitTree(samples, approx.TreeConfig{MaxDepth: 4, MinLeaf: 1})
	if err != nil {
		t.Fatal(err)
	}
	jt, err := NewTreeJTilde(tree)
	if err != nil {
		t.Fatal(err)
	}
	lo, err := jt.Predict(0, 0, 0.018)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := jt.Predict(0, 100, 0.018)
	if err != nil {
		t.Fatal(err)
	}
	if hi <= lo {
		t.Errorf("tree J̃: high-load %v not above low-load %v", hi, lo)
	}
	if _, err := NewTreeJTilde(nil); err == nil {
		t.Error("nil tree: want error")
	}
}

func TestSimulateModulePeriodCostMonotoneInLoad(t *testing.T) {
	gmaps := testModuleGMaps(t, 2)
	lo, _, err := SimulateModulePeriod(fastL0Config(), DefaultL1Config(), gmaps, 0, 5, 0.018)
	if err != nil {
		t.Fatal(err)
	}
	hi, _, err := SimulateModulePeriod(fastL0Config(), DefaultL1Config(), gmaps, 50, 150, 0.018)
	if err != nil {
		t.Fatal(err)
	}
	if hi <= lo {
		t.Errorf("overloaded module cost %v not above idle %v", hi, lo)
	}
	if lo < 0 {
		t.Errorf("cost %v negative", lo)
	}
}

func TestLearnModuleTree(t *testing.T) {
	gmaps := testModuleGMaps(t, 2)
	cfg := ModuleSimConfig{
		QLevels:      []float64{0, 50},
		LambdaLevels: []float64{0, 40, 80, 120},
		CLevels:      []float64{0.018},
		Tree:         approx.TreeConfig{MaxDepth: 6, MinLeaf: 1},
	}
	jt, err := LearnModuleTree(fastL0Config(), DefaultL1Config(), gmaps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lo, err := jt.Predict(0, 0, 0.018)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := jt.Predict(50, 120, 0.018)
	if err != nil {
		t.Fatal(err)
	}
	if hi <= lo {
		t.Errorf("learned J̃: overload %v not above idle %v", hi, lo)
	}
	bad := cfg
	bad.QLevels = nil
	if _, err := LearnModuleTree(fastL0Config(), DefaultL1Config(), gmaps, bad); err == nil {
		t.Error("empty grid: want error")
	}
}
