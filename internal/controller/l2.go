package controller

import (
	"fmt"
	"math"
	"time"

	"hierctl/internal/approx"
	"hierctl/internal/llc"
	// Aliased: Decide's observation parameter is conventionally named obs.
	flight "hierctl/internal/obs"
)

// L2Config parameterizes the cluster-level L2 controller (§5.1).
type L2Config struct {
	// PeriodSeconds is the sampling time T_L2 (paper: 2 min).
	PeriodSeconds float64
	// Quantum quantizes the module fractions γ_i (paper: 0.1).
	Quantum float64
	// EnumLimit bounds full enumeration of the quantized simplex; above
	// it the controller falls back to a bounded neighbourhood of the
	// previous decision (scalable control for many modules).
	EnumLimit int
	// NeighbourDepth is the bounded-search depth used past EnumLimit.
	NeighbourDepth int
	// UncertaintySamples averages the cost over {λ̂−δ, λ̂, λ̂+δ} when
	// true, mirroring the L1 chattering mitigation.
	UncertaintySamples bool
	// NonNegativeCosts declares the per-sample candidate costs
	// non-negative — true for regression trees fitted to the module
	// costs, which are sums of slack and power terms — enabling
	// branch-and-bound pruning of the candidate × sample loop: a
	// candidate whose partial sample average already meets the incumbent
	// best is abandoned before its remaining samples (the reallocation
	// term ‖γ − γ_prev‖₁ only adds more). The selected γ is
	// bit-identical; only Explored shrinks, and it remains
	// deterministic. Disable for custom JTilde models that can return
	// negative costs.
	NonNegativeCosts bool
	// DeltaWeight is the S weight of Eq. 3 applied to ‖γ − γ_prev‖₁:
	// a small reallocation cost that stabilizes the distribution and
	// breaks ties between equally priced allocations toward the
	// incumbent (identical modules otherwise tie exactly and the
	// enumeration order would starve some of them).
	DeltaWeight float64
	// MaxExplored caps the candidate-state evaluations one Decide may
	// perform — the deterministic per-tick decision deadline. A search
	// exhausting the budget fails with llc.ErrBudget; the caller applies
	// deterministic safe fallback settings for the tick and searches
	// again next period. 0 = unlimited.
	MaxExplored int
}

// DefaultL2Config returns the paper's §5.2 settings.
func DefaultL2Config() L2Config {
	return L2Config{
		PeriodSeconds:      120,
		Quantum:            0.1,
		EnumLimit:          5000,
		NeighbourDepth:     3,
		UncertaintySamples: true,
		NonNegativeCosts:   true,
		DeltaWeight:        0.05,
	}
}

// Validate reports whether the configuration is usable.
func (c L2Config) Validate() error {
	if c.PeriodSeconds <= 0 {
		return fmt.Errorf("controller: L2 period %v <= 0", c.PeriodSeconds)
	}
	units := math.Round(1 / c.Quantum)
	if c.Quantum <= 0 || c.Quantum > 1 || math.Abs(units*c.Quantum-1) > 1e-9 {
		return fmt.Errorf("controller: L2 quantum %v must evenly divide 1", c.Quantum)
	}
	if c.EnumLimit < 1 {
		return fmt.Errorf("controller: L2 enum limit %d < 1", c.EnumLimit)
	}
	if c.NeighbourDepth < 1 {
		return fmt.Errorf("controller: L2 neighbour depth %d < 1", c.NeighbourDepth)
	}
	if c.DeltaWeight < 0 {
		return fmt.Errorf("controller: L2 delta weight %v < 0", c.DeltaWeight)
	}
	if c.MaxExplored < 0 {
		return fmt.Errorf("controller: L2 explored budget %d < 0", c.MaxExplored)
	}
	return nil
}

// JTilde approximates a module's cost J̃_i(x_L2, γ_i) (Eq. 15): the
// expected cost of module i over one L2 period given its average queue
// length, the arrival rate it would receive, and its processing-time
// estimate.
type JTilde interface {
	Predict(qAvg, lambda, c float64) (float64, error)
}

// TreeJTilde adapts a CART regression tree to the JTilde interface — the
// paper's "compact regression tree to store J̃ values" (§5.1).
type TreeJTilde struct {
	tree *approx.RegressionTree
}

// NewTreeJTilde wraps a fitted tree.
func NewTreeJTilde(tree *approx.RegressionTree) (*TreeJTilde, error) {
	if tree == nil {
		return nil, fmt.Errorf("controller: nil regression tree")
	}
	return &TreeJTilde{tree: tree}, nil
}

// Predict evaluates the tree at (qAvg, lambda, c). The probe point lives
// on the stack (the tree never retains it), so a prediction performs no
// allocation — part of the decision tick's allocation-free invariant.
func (t *TreeJTilde) Predict(qAvg, lambda, c float64) (float64, error) {
	x := [3]float64{qAvg, lambda, c}
	return t.tree.Predict(x[:])
}

var _ JTilde = (*TreeJTilde)(nil)

// L2Observation is the aggregated cluster state x_L2 and environment
// estimate ω̂_L2 = (λ̂_g, ĉ_L2).
type L2Observation struct {
	// QAvg[i] is the average queue length of module i.
	QAvg []float64
	// LambdaHat is the forecast cluster arrival rate (requests/second).
	LambdaHat float64
	// Delta is the forecast uncertainty band half-width.
	Delta float64
	// CHat[i] is module i's processing-time estimate (seconds).
	CHat []float64
	// Available marks modules that can currently serve (≥ 1 healthy
	// computer). Unavailable modules are forced to γ_i = 0.
	Available []bool
}

// L2Decision is the cluster controller's output.
type L2Decision struct {
	// Gamma[i] is the fraction of the global arrivals dispatched to
	// module i (Σ = 1, quantized).
	Gamma []float64
	// Explored counts candidate states evaluated.
	Explored int
}

// L2 is the cluster-level controller. Construct with NewL2.
//
// The full-enumeration candidate set depends only on the availability
// mask (module count and quantum are fixed), so it is memoized per mask;
// with the memo warm a Decide on the enumeration path allocates only the
// two slices of the returned decision (pinned by
// TestL2DecideSteadyStateAllocs). Not safe for concurrent use.
type L2 struct {
	cfg     L2Config
	jtildes []JTilde

	prevGamma []float64

	// enumMemo caches EnumerateSimplex per availability mask (modules
	// ≤ 64; larger clusters re-enumerate each period). Memoized vectors
	// are never mutated, so the incumbent may reference them directly.
	enumMemo   map[uint64][][]float64
	samplesBuf [3]float64

	explored    int
	decisions   int
	computeTime time.Duration

	// Flight recorder (nil = disabled).
	rec *flight.Recorder
}

// NewL2 builds an L2 controller over per-module cost approximations.
func NewL2(cfg L2Config, jtildes []JTilde) (*L2, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(jtildes) == 0 {
		return nil, fmt.Errorf("controller: L2 needs at least one module model")
	}
	for i, j := range jtildes {
		if j == nil {
			return nil, fmt.Errorf("controller: L2 module model %d is nil", i)
		}
	}
	p := len(jtildes)
	mask := make([]bool, p)
	weights := make([]float64, p)
	for i := range mask {
		mask[i] = true
		weights[i] = 1
	}
	prev, err := SnapSimplex(weights, mask, cfg.Quantum)
	if err != nil {
		return nil, err
	}
	return &L2{
		cfg: cfg, jtildes: jtildes, prevGamma: prev,
		enumMemo: make(map[uint64][][]float64),
	}, nil
}

// Modules returns the number of modules the controller manages.
func (l *L2) Modules() int { return len(l.jtildes) }

// SetRecorder attaches a decision flight recorder (nil detaches). Each
// Decide writes one summary record (Module == -1: explored count,
// incumbent cost, decide latency) followed by one detail record per
// module carrying its chosen γ share. Recording is observe-only:
// decisions are identical with it on or off.
func (l *L2) SetRecorder(r *flight.Recorder) { l.rec = r }

// SetMaxExplored replaces the decision budget for subsequent searches
// (see L2Config.MaxExplored); n <= 0 removes it. It lets a runtime chaos
// plan squeeze the budget of an already-constructed controller.
func (l *L2) SetMaxExplored(n int) {
	if n < 0 {
		n = 0
	}
	l.cfg.MaxExplored = n
}

// Decide solves the L2 optimization (Eq. 15): choose {γ_i} minimizing
// Σ_i J̃_i. The quantized simplex is enumerated exhaustively while small
// enough, otherwise a bounded neighbourhood of the previous decision is
// searched.
//
//hpm:hotpath
func (l *L2) Decide(obs L2Observation) (L2Decision, error) {
	p := l.Modules()
	if len(obs.QAvg) != p || len(obs.CHat) != p {
		return L2Decision{}, fmt.Errorf("controller: observation sizes %d/%d, modules %d", len(obs.QAvg), len(obs.CHat), p)
	}
	if obs.Available == nil {
		obs.Available = make([]bool, p) //hpm:alloc nil-Available normalization; steady-state callers pass their scratch slice
		for i := range obs.Available {
			obs.Available[i] = true
		}
	}
	if len(obs.Available) != p {
		return L2Decision{}, fmt.Errorf("controller: observation has %d availability flags, modules %d", len(obs.Available), p)
	}
	avail := 0
	for _, a := range obs.Available {
		if a {
			avail++
		}
	}
	if avail == 0 {
		return L2Decision{}, fmt.Errorf("controller: no available modules")
	}
	if obs.LambdaHat < 0 {
		obs.LambdaHat = 0
	}
	start := time.Now() //hpm:wallclock decide-latency for the §4.3 overhead metric; observe-only

	var candidates [][]float64
	if CountSimplex(avail, l.cfg.Quantum) <= l.cfg.EnumLimit {
		if p <= 64 {
			// The enumeration is a pure function of the mask; memoize it
			// so steady-state periods skip the combinatorial rebuild. The
			// memo is bounded (entries hold up to EnumLimit vectors) so a
			// long-lived controller under rotating availability masks
			// cannot grow it without limit; past the cap, misses compute
			// without storing.
			const maxEnumMemoEntries = 64
			mask := packBools(obs.Available)
			if cached, ok := l.enumMemo[mask]; ok {
				candidates = cached
			} else {
				candidates = EnumerateSimplex(p, obs.Available, l.cfg.Quantum)
				if len(l.enumMemo) < maxEnumMemoEntries {
					l.enumMemo[mask] = candidates
				}
			}
		} else {
			candidates = EnumerateSimplex(p, obs.Available, l.cfg.Quantum)
		}
	} else {
		seed, err := SnapSimplex(l.prevGamma, obs.Available, l.cfg.Quantum)
		if err != nil {
			return L2Decision{}, err
		}
		candidates = SimplexNeighbours(seed, obs.Available, l.cfg.Quantum, l.cfg.NeighbourDepth)
	}

	samples := l.samplesBuf[:1]
	samples[0] = obs.LambdaHat
	if l.cfg.UncertaintySamples && obs.Delta > 0 {
		samples = l.samplesBuf[:3]
		samples[0] = math.Max(0, obs.LambdaHat-obs.Delta)
		samples[1] = obs.LambdaHat
		samples[2] = obs.LambdaHat + obs.Delta
	}

	bestCost := math.Inf(1)
	var best []float64
	explored := 0
	nSamples := float64(len(samples))
	for _, gamma := range candidates {
		sum := 0.0
		pruned := false
		for si, lam := range samples {
			for i := range gamma {
				if !obs.Available[i] {
					continue
				}
				// Zero-share modules still cost their learned idle
				// floor (the L1 keeps MinOn computers powered), so
				// concentration is not falsely free.
				c, err := l.jtildes[i].Predict(obs.QAvg[i], gamma[i]*lam, obs.CHat[i])
				if err != nil {
					return L2Decision{}, err
				}
				sum += c
			}
			explored++
			if l.cfg.MaxExplored > 0 && explored > l.cfg.MaxExplored {
				// Deterministic decision deadline (see
				// L2Config.MaxExplored).
				return L2Decision{}, fmt.Errorf("controller: L2 search: %w", llc.ErrBudget)
			}
			// The reallocation term added below is non-negative, so the
			// partial-mean bound remains valid for the full cost.
			if l.cfg.NonNegativeCosts && llc.PrunePartialMean(sum, len(samples), si, bestCost) {
				pruned = true
				break
			}
		}
		if pruned {
			continue
		}
		cost := sum / nSamples
		// ‖Δu‖_S reallocation cost (Eq. 3).
		for i := range gamma {
			cost += l.cfg.DeltaWeight * math.Abs(gamma[i]-l.prevGamma[i])
		}
		if cost < bestCost {
			bestCost = cost
			best = gamma
		}
	}
	if best == nil {
		return L2Decision{}, fmt.Errorf("controller: L2 found no candidate allocation")
	}
	elapsed := time.Since(start)                  //hpm:wallclock decide-latency for the §4.3 overhead metric; observe-only
	l.prevGamma = append([]float64(nil), best...) //hpm:alloc decision copy-out; counted by the allocs/decision pin
	l.explored += explored
	l.decisions++
	l.computeTime += elapsed
	if l.rec.Enabled() {
		l.rec.Record(flight.Record{
			Level:    flight.LevelL2,
			Module:   -1,
			Comp:     -1,
			FreqIdx:  -1,
			Explored: int32(explored),
			DecideNs: elapsed.Nanoseconds(),
			Cost:     bestCost,
		})
		for i, g := range best {
			l.rec.Record(flight.Record{
				Level:   flight.LevelL2,
				Module:  int16(i),
				Comp:    -1,
				FreqIdx: -1,
				Gamma:   g,
			})
		}
	}
	return L2Decision{Gamma: append([]float64(nil), best...), Explored: explored}, nil //hpm:alloc decision copy-out; counted by the allocs/decision pin
}

// Overhead reports accumulated overhead counters.
func (l *L2) Overhead() (explored, decisions int, compute time.Duration) {
	return l.explored, l.decisions, l.computeTime
}
