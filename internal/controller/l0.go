package controller

import (
	"fmt"
	"time"

	"hierctl/internal/cluster"
	"hierctl/internal/llc"
	"hierctl/internal/obs"
	"hierctl/internal/queue"
)

// L0Config parameterizes a per-computer L0 controller (§4.1).
type L0Config struct {
	// Horizon is the prediction horizon N_L0 (paper: 3).
	Horizon int
	// PeriodSeconds is the sampling time T_L0 (paper: 30 s).
	PeriodSeconds float64
	// TargetResponse is the set-point r* in seconds (paper: 4 s).
	TargetResponse float64
	// TargetMargin tightens the controller-internal set-point to
	// TargetMargin·r* (constraint back-off, standard MPC practice under
	// model mismatch). The paper's plant *is* its fluid model, so it
	// needs no margin; this library's plant is a request-level
	// simulation with bursty arrivals and routing noise, and without
	// back-off the achieved response hovers at r* and violates it half
	// the time. Must lie in (0, 1]; 1 disables the margin.
	TargetMargin float64
	// SlackWeight is Q, the penalty on the response-time slack ε
	// (paper: 100).
	SlackWeight float64
	// PowerWeight is R, the weight on power ψ = a + φ² (paper: 1).
	PowerWeight float64
	// UncertaintySamples extends the paper's §4.2 uncertainty-band
	// treatment down to the frequency controller: when true and the
	// caller supplies a band half-width δ > 0, the stage cost is
	// averaged over {λ̂−δ, λ̂, λ̂+δ}, so the processor hedges against
	// arrival bursts instead of riding the queue at the set-point.
	UncertaintySamples bool
	// SearchParallelism fans the lookahead tree's level-0 candidates
	// (frequency indices) across that many workers inside each Decide.
	// 0 or 1 (the default) keeps the search sequential, which also keeps
	// the explored-state overhead counters deterministic; the hierarchy
	// normally leaves this off because its outer per-module pools
	// already own the CPUs, but standalone or few-module deployments can
	// turn it on. Decisions are bit-identical at any setting.
	SearchParallelism int
	// MaxExplored caps the states one Decide's lookahead search may
	// evaluate — the deterministic per-tick decision deadline. A search
	// exhausting it fails with llc.ErrBudget and the caller applies safe
	// fallback settings for the tick. 0 = unlimited. A positive budget
	// forces the sequential search (see llc.Options.MaxExplored).
	MaxExplored int
}

// EffectiveTarget returns the tightened internal set-point
// TargetMargin·TargetResponse the search optimizes against.
func (c L0Config) EffectiveTarget() float64 {
	return c.TargetMargin * c.TargetResponse
}

// DefaultL0Config returns the paper's §4.3 settings.
func DefaultL0Config() L0Config {
	return L0Config{
		Horizon:            3,
		PeriodSeconds:      30,
		TargetResponse:     4,
		TargetMargin:       0.8,
		SlackWeight:        100,
		PowerWeight:        1,
		UncertaintySamples: true,
	}
}

// Validate reports whether the configuration is usable.
func (c L0Config) Validate() error {
	if c.Horizon < 1 {
		return fmt.Errorf("controller: L0 horizon %d < 1", c.Horizon)
	}
	if c.PeriodSeconds <= 0 {
		return fmt.Errorf("controller: L0 period %v <= 0", c.PeriodSeconds)
	}
	if c.TargetResponse <= 0 {
		return fmt.Errorf("controller: L0 target response %v <= 0", c.TargetResponse)
	}
	if c.TargetMargin <= 0 || c.TargetMargin > 1 {
		return fmt.Errorf("controller: L0 target margin %v outside (0, 1]", c.TargetMargin)
	}
	if c.SlackWeight < 0 || c.PowerWeight < 0 {
		return fmt.Errorf("controller: L0 weights (%v, %v) negative", c.SlackWeight, c.PowerWeight)
	}
	if c.SearchParallelism < 0 {
		return fmt.Errorf("controller: L0 search parallelism %d < 0", c.SearchParallelism)
	}
	if c.MaxExplored < 0 {
		return fmt.Errorf("controller: L0 explored budget %d < 0", c.MaxExplored)
	}
	return nil
}

// l0Model adapts one computer's fluid queue dynamics (Eqs. 5–7) to the
// generic LLC framework. The state is the fluid queue state; the input is
// a frequency index; the environment vector is {λ, c}.
type l0Model struct {
	cfg     L0Config
	spec    cluster.ComputerSpec
	phis    []float64
	indices []int
}

func (m *l0Model) Step(s queue.State, u int, env llc.Env) queue.State {
	// Effective full-speed processing time folds in the computer's speed
	// factor; invalid parameters cannot arise here because inputs and
	// envs are validated upstream.
	next, err := queue.Step(s, queue.Params{
		Lambda: env[0],
		C:      env[1] / m.spec.SpeedFactor,
		Phi:    m.phis[u],
		T:      m.cfg.PeriodSeconds,
	})
	if err != nil {
		// Defensive: an invalid model parameterization yields a saturated
		// state rather than a panic inside the search.
		return queue.State{Q: s.Q, R: m.cfg.TargetResponse * 1e6}
	}
	return next
}

// Cost is the §4.1 stage cost Q·ε + R·ψ. Both terms are non-negative
// (the slack ε is clamped at zero and the power draw ψ = a + φ² is
// physical), so the search runs under the llc.Options.NonNegativeCosts
// branch-and-bound contract.
func (m *l0Model) Cost(next queue.State, u int, env llc.Env) float64 {
	eps := llc.Slack(next.R, m.cfg.EffectiveTarget())
	psi := m.spec.Power.Draw(m.phis[u], true)
	return m.cfg.SlackWeight*eps + m.cfg.PowerWeight*psi
}

func (m *l0Model) Feasible(queue.State) bool { return true }

func (m *l0Model) Inputs(queue.State) []int { return m.indices }

var _ llc.Model[queue.State, int] = (*l0Model)(nil)

// L0 is the per-computer frequency controller. Construct with NewL0.
//
// The controller owns a reusable llc.Searcher and its environment-forecast
// buffers, so a warm Decide performs no allocation (pinned by
// TestL0DecideZeroAlloc); like every controller here it is not safe for
// concurrent use.
type L0 struct {
	cfg      L0Config
	model    *l0Model
	searcher *llc.Searcher[queue.State, int]

	// Reused forecast buffers: envs[q] holds the uncertainty samples for
	// horizon step q, each an llc.Env view into envBacking.
	envs       []([]llc.Env)
	envBacking []float64
	envSamples int

	// Overhead metering (§4.3).
	explored    int
	decisions   int
	computeTime time.Duration

	// Flight recorder (nil = disabled) and this computer's coordinates
	// in its records.
	rec       *obs.Recorder
	recModule int16
	recComp   int16
}

// NewL0 builds an L0 controller for the given computer.
func NewL0(cfg L0Config, spec cluster.ComputerSpec) (*L0, error) {
	m, err := newL0Model(cfg, spec)
	if err != nil {
		return nil, err
	}
	sr, err := llc.NewSearcher[queue.State, int](m, llc.Options{
		NonNegativeCosts: true,
		Parallelism:      cfg.SearchParallelism,
		MaxExplored:      cfg.MaxExplored,
	})
	if err != nil {
		return nil, err
	}
	return &L0{cfg: cfg, model: m, searcher: sr}, nil
}

// ensureEnvs (re)shapes the reused forecast buffers for the given sample
// count per horizon step; the layout is rebuilt only when the shape
// changes (first call, or banded ↔ unbanded transitions).
func (l *L0) ensureEnvs(samples int) {
	if l.envSamples == samples && len(l.envs) == l.cfg.Horizon {
		return
	}
	h := l.cfg.Horizon
	l.envBacking = make([]float64, h*samples*2)
	store := make([]llc.Env, h*samples)
	l.envs = make([]([]llc.Env), h)
	for q := 0; q < h; q++ {
		for s := 0; s < samples; s++ {
			i := q*samples + s
			store[i] = l.envBacking[2*i : 2*i+2]
		}
		l.envs[q] = store[q*samples : (q+1)*samples]
	}
	l.envSamples = samples
}

// NewL0Model exposes the per-computer fluid-queue model the L0 controller
// searches over — state queue.State, input a frequency index, environment
// {λ, ĉ} — so benchmarks and custom engines can drive the llc search
// against the paper's §4.3 configuration directly. Its stage costs are
// non-negative, satisfying llc.Options.NonNegativeCosts.
func NewL0Model(cfg L0Config, spec cluster.ComputerSpec) (llc.Model[queue.State, int], error) {
	return newL0Model(cfg, spec)
}

func newL0Model(cfg L0Config, spec cluster.ComputerSpec) (*l0Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	m := &l0Model{cfg: cfg, spec: spec, phis: spec.PhiLadder()}
	m.indices = make([]int, len(m.phis))
	for i := range m.indices {
		m.indices[i] = i
	}
	return m, nil
}

// Config returns the controller's configuration.
func (l *L0) Config() L0Config { return l.cfg }

// SetMaxExplored replaces the decision budget for subsequent searches
// (see L0Config.MaxExplored); n <= 0 removes it. It lets a runtime chaos
// plan squeeze the budget of an already-constructed controller.
func (l *L0) SetMaxExplored(n int) {
	if n < 0 {
		n = 0
	}
	l.cfg.MaxExplored = n
	l.searcher.SetMaxExplored(n)
}

// SetRecorder attaches a decision flight recorder (nil detaches) and
// names the (module, computer) coordinates stamped onto records.
// Recording is observe-only: decisions are identical with it on or off.
func (l *L0) SetRecorder(r *obs.Recorder, module, comp int) {
	l.rec, l.recModule, l.recComp = r, int16(module), int16(comp)
}

// Decide selects the frequency index for the next period. queueLen is the
// observed queue length; lambda holds the forecast arrival rates
// (requests/second) for each horizon step (length ≥ 1 — shorter than the
// horizon is padded with the last value); cHat is the estimated full-speed
// processing time. It is equivalent to DecideBanded with δ = 0.
//
//hpm:hotpath
func (l *L0) Decide(queueLen float64, lambda []float64, cHat float64) (freqIdx int, err error) {
	return l.DecideBanded(queueLen, lambda, 0, cHat)
}

// DecideBanded is Decide with a forecast uncertainty band half-width
// delta (requests/second): when the configuration enables uncertainty
// sampling, each horizon step's cost averages the three sampled rates
// {λ̂−δ, λ̂, λ̂+δ}.
//
//hpm:hotpath
func (l *L0) DecideBanded(queueLen float64, lambda []float64, delta, cHat float64) (freqIdx int, err error) {
	if len(lambda) == 0 {
		return 0, fmt.Errorf("controller: L0 needs at least one arrival-rate forecast")
	}
	if cHat <= 0 {
		return 0, fmt.Errorf("controller: L0 processing-time estimate %v <= 0", cHat)
	}
	start := time.Now() //hpm:wallclock decide-latency for the §4.3 overhead metric; observe-only
	banded := l.cfg.UncertaintySamples && delta > 0
	samples := 1
	if banded {
		samples = 3
	}
	l.ensureEnvs(samples)
	for q := 0; q < l.cfg.Horizon; q++ {
		lam := lambda[min(q, len(lambda)-1)]
		if lam < 0 {
			lam = 0
		}
		if banded {
			lo := lam - delta
			if lo < 0 {
				lo = 0
			}
			l.envs[q][0][0], l.envs[q][0][1] = lo, cHat
			l.envs[q][1][0], l.envs[q][1][1] = lam, cHat
			l.envs[q][2][0], l.envs[q][2][1] = lam+delta, cHat
		} else {
			l.envs[q][0][0], l.envs[q][0][1] = lam, cHat
		}
	}
	res, err := l.searcher.Exhaustive(queue.State{Q: queueLen}, l.envs)
	if err != nil {
		return 0, fmt.Errorf("controller: L0 search: %w", err)
	}
	elapsed := time.Since(start) //hpm:wallclock decide-latency for the §4.3 overhead metric; observe-only
	l.explored += res.Explored
	l.decisions++
	l.computeTime += elapsed
	if l.rec.Enabled() {
		l.rec.Record(obs.Record{
			Level:    obs.LevelL0,
			Module:   l.recModule,
			Comp:     l.recComp,
			FreqIdx:  int16(res.Inputs[0]),
			Explored: int32(res.Explored),
			DecideNs: elapsed.Nanoseconds(),
			Cost:     res.Cost,
		})
	}
	return res.Inputs[0], nil
}

// Overhead reports the accumulated overhead counters: total states
// explored, number of decisions, and wall-clock compute time.
func (l *L0) Overhead() (explored, decisions int, compute time.Duration) {
	return l.explored, l.decisions, l.computeTime
}
