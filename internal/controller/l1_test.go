package controller

import (
	"fmt"
	"math"
	"testing"

	"hierctl/internal/cluster"
)

// coarseGMapConfig keeps offline learning fast in tests.
func coarseGMapConfig() GMapConfig {
	return GMapConfig{
		QMax: 200, QStep: 25,
		LambdaMax: 120, LambdaStep: 15,
		CMin: 0.014, CMax: 0.022, CStep: 0.004,
		SubSteps: 2,
	}
}

// fastL0Config shrinks the horizon for test-time learning sweeps.
func fastL0Config() L0Config {
	cfg := DefaultL0Config()
	cfg.Horizon = 2
	return cfg
}

var gmapCache = map[string]*GMap{}

func testGMap(t *testing.T, spec cluster.ComputerSpec) *GMap {
	t.Helper()
	key := spec.Name
	if g, ok := gmapCache[key]; ok {
		return g
	}
	g, err := LearnGMap(fastL0Config(), spec, coarseGMapConfig())
	if err != nil {
		t.Fatal(err)
	}
	gmapCache[key] = g
	return g
}

func testModuleGMaps(t *testing.T, m int) []*GMap {
	t.Helper()
	gmaps := make([]*GMap, m)
	for j := 0; j < m; j++ {
		gmaps[j] = testGMap(t, ctrlSpec(fmt.Sprintf("c%d", j)))
	}
	return gmaps
}

func newTestL1(t *testing.T, m int) *L1 {
	t.Helper()
	l1, err := NewL1(DefaultL1Config(), testModuleGMaps(t, m))
	if err != nil {
		t.Fatal(err)
	}
	return l1
}

func TestL1ConfigValidation(t *testing.T) {
	base := DefaultL1Config()
	if err := base.Validate(); err != nil {
		t.Fatalf("default config: %v", err)
	}
	mutations := []func(*L1Config){
		func(c *L1Config) { c.PeriodSeconds = 0 },
		func(c *L1Config) { c.Quantum = 0 },
		func(c *L1Config) { c.Quantum = 0.3 },
		func(c *L1Config) { c.SwitchWeight = -1 },
		func(c *L1Config) { c.NeighbourDepth = -1 },
		func(c *L1Config) { c.MinOn = 0 },
	}
	for i, mutate := range mutations {
		cfg := base
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d: want error", i)
		}
	}
}

func TestNewL1Validation(t *testing.T) {
	if _, err := NewL1(DefaultL1Config(), nil); err == nil {
		t.Error("no gmaps: want error")
	}
	if _, err := NewL1(DefaultL1Config(), []*GMap{nil}); err == nil {
		t.Error("nil gmap: want error")
	}
	cfg := DefaultL1Config()
	cfg.MinOn = 5
	if _, err := NewL1(cfg, testModuleGMaps(t, 2)); err == nil {
		t.Error("min-on > module size: want error")
	}
}

func TestGMapLearnAndEvaluate(t *testing.T) {
	g := testGMap(t, ctrlSpec("solo"))
	if g.Cells() == 0 {
		t.Fatal("no cells learned")
	}
	// Idle computer: cost is just power; overloaded computer: slack blows
	// the cost up.
	idle, _, _, _, err := g.Evaluate(0, 0, 0.018)
	if err != nil {
		t.Fatal(err)
	}
	overloaded, _, _, _, err := g.Evaluate(200, 120, 0.018)
	if err != nil {
		t.Fatal(err)
	}
	if overloaded <= idle {
		t.Errorf("overloaded cost %v not above idle cost %v", overloaded, idle)
	}
	// Clamping: queries beyond the grid saturate at the boundary cell.
	clamped, _, _, _, err := g.Evaluate(1e6, 1e6, 0.018)
	if err != nil {
		t.Fatal(err)
	}
	if clamped != overloaded {
		t.Errorf("out-of-grid query %v != boundary cell %v", clamped, overloaded)
	}
}

func TestGMapConfigValidation(t *testing.T) {
	base := coarseGMapConfig()
	mutations := []func(*GMapConfig){
		func(c *GMapConfig) { c.QStep = 0 },
		func(c *GMapConfig) { c.LambdaMax = 0 },
		func(c *GMapConfig) { c.CMin = 0 },
		func(c *GMapConfig) { c.CMax = c.CMin / 2 },
		func(c *GMapConfig) { c.SubSteps = 0 },
	}
	for i, mutate := range mutations {
		cfg := base
		mutate(&cfg)
		if _, err := LearnGMap(fastL0Config(), ctrlSpec("x"), cfg); err == nil {
			t.Errorf("mutation %d: want error", i)
		}
	}
}

func validateDecision(t *testing.T, dec L1Decision, quantum float64) {
	t.Helper()
	sum := 0.0
	for j := range dec.Gamma {
		if !dec.Alpha[j] && dec.Gamma[j] != 0 {
			t.Errorf("γ[%d] = %v on an off computer", j, dec.Gamma[j])
		}
		if dec.Gamma[j] < 0 {
			t.Errorf("γ[%d] = %v negative", j, dec.Gamma[j])
		}
		sum += dec.Gamma[j]
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("Σγ = %v, want 1", sum)
	}
	if !isQuantized(dec.Gamma, quantum) {
		t.Errorf("γ = %v not quantized at %v", dec.Gamma, quantum)
	}
}

func TestL1ScalesDownAtLowLoad(t *testing.T) {
	l1 := newTestL1(t, 4)
	obs := L1Observation{
		QueueLens: []float64{0, 0, 0, 0},
		LambdaHat: 2, // trivially served by one computer
		CHat:      0.018,
	}
	on := 4
	for i := 0; i < 4; i++ {
		dec, err := l1.Decide(obs)
		if err != nil {
			t.Fatal(err)
		}
		validateDecision(t, dec, l1.cfg.Quantum)
		on = countOn(dec.Alpha)
	}
	if on != 1 {
		t.Errorf("computers on after repeated low load = %d, want 1", on)
	}
}

func TestL1ScalesUpUnderHighLoad(t *testing.T) {
	l1 := newTestL1(t, 4)
	// Start from a single computer.
	alpha := []bool{true, false, false, false}
	gamma := []float64{1, 0, 0, 0}
	if err := l1.SetState(alpha, gamma); err != nil {
		t.Fatal(err)
	}
	obs := L1Observation{
		QueueLens: []float64{150, 0, 0, 0},
		LambdaHat: 150, // far beyond one computer's ~55 req/s capacity
		CHat:      0.018,
	}
	dec, err := l1.Decide(obs)
	if err != nil {
		t.Fatal(err)
	}
	validateDecision(t, dec, l1.cfg.Quantum)
	if countOn(dec.Alpha) <= 1 {
		t.Errorf("computers on under overload = %d, want > 1", countOn(dec.Alpha))
	}
}

func TestL1SwitchPenaltyDiscouragesPowerOn(t *testing.T) {
	// At a load marginally above one computer's comfort, a huge W keeps
	// the second computer off while W = 0 brings it on.
	decide := func(w float64) int {
		cfg := DefaultL1Config()
		cfg.SwitchWeight = w
		l1, err := NewL1(cfg, testModuleGMaps(t, 2))
		if err != nil {
			t.Fatal(err)
		}
		if err := l1.SetState([]bool{true, false}, []float64{1, 0}); err != nil {
			t.Fatal(err)
		}
		dec, err := l1.Decide(L1Observation{
			QueueLens: []float64{10, 0},
			LambdaHat: 40,
			CHat:      0.018,
		})
		if err != nil {
			t.Fatal(err)
		}
		return countOn(dec.Alpha)
	}
	withoutPenalty := decide(0)
	withPenalty := decide(500)
	if withoutPenalty < 2 {
		t.Skipf("load not high enough to trigger power-on even free (on=%d)", withoutPenalty)
	}
	if withPenalty != 1 {
		t.Errorf("on with huge W = %d, want 1 (penalty suppresses switch)", withPenalty)
	}
}

func TestL1RespectsAvailability(t *testing.T) {
	l1 := newTestL1(t, 3)
	obs := L1Observation{
		QueueLens: []float64{50, 50, 50},
		LambdaHat: 200,
		CHat:      0.018,
		Available: []bool{true, false, true}, // computer 1 failed
	}
	dec, err := l1.Decide(obs)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Alpha[1] {
		t.Error("failed computer was powered on")
	}
	if dec.Gamma[1] != 0 {
		t.Error("failed computer received load")
	}
	validateDecision(t, dec, l1.cfg.Quantum)
}

func TestL1MinOnEnforced(t *testing.T) {
	cfg := DefaultL1Config()
	cfg.MinOn = 2
	l1, err := NewL1(cfg, testModuleGMaps(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	obs := L1Observation{
		QueueLens: []float64{0, 0, 0, 0},
		LambdaHat: 0,
		CHat:      0.018,
	}
	for i := 0; i < 5; i++ {
		dec, err := l1.Decide(obs)
		if err != nil {
			t.Fatal(err)
		}
		if countOn(dec.Alpha) < 2 {
			t.Fatalf("on = %d, want >= MinOn 2", countOn(dec.Alpha))
		}
	}
}

func TestL1ObservationValidation(t *testing.T) {
	l1 := newTestL1(t, 2)
	if _, err := l1.Decide(L1Observation{QueueLens: []float64{1}, LambdaHat: 1, CHat: 0.018}); err == nil {
		t.Error("queue size mismatch: want error")
	}
	if _, err := l1.Decide(L1Observation{QueueLens: []float64{1, 1}, LambdaHat: 1, CHat: 0}); err == nil {
		t.Error("zero c: want error")
	}
	if _, err := l1.Decide(L1Observation{QueueLens: []float64{1, 1}, LambdaHat: 1, CHat: 0.018, Available: []bool{true}}); err == nil {
		t.Error("availability size mismatch: want error")
	}
}

func TestL1OverheadMetering(t *testing.T) {
	l1 := newTestL1(t, 4)
	dec, err := l1.Decide(L1Observation{
		QueueLens: []float64{5, 5, 5, 5},
		LambdaHat: 60,
		Delta:     10,
		CHat:      0.018,
	})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Explored == 0 {
		t.Error("decision explored no states")
	}
	explored, decisions, compute := l1.Overhead()
	if explored != dec.Explored || decisions != 1 || compute <= 0 {
		t.Errorf("overhead = (%d, %d, %v), want (%d, 1, >0)", explored, decisions, compute, dec.Explored)
	}
	// The paper's m = 4 L1 examines O(10²–10³) states per period.
	if dec.Explored < 50 || dec.Explored > 20000 {
		t.Errorf("explored = %d, want O(10²–10³)", dec.Explored)
	}
}

func TestL1UncertaintyBandUsesThreeSamples(t *testing.T) {
	l1 := newTestL1(t, 2)
	base, err := l1.Decide(L1Observation{
		QueueLens: []float64{0, 0}, LambdaHat: 30, Delta: 0, CHat: 0.018,
	})
	if err != nil {
		t.Fatal(err)
	}
	banded, err := l1.Decide(L1Observation{
		QueueLens: []float64{0, 0}, LambdaHat: 30, Delta: 10, CHat: 0.018,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Same candidate set, 3× the evaluations.
	if banded.Explored <= base.Explored {
		t.Errorf("banded explored %d not above nominal %d", banded.Explored, base.Explored)
	}
}

func TestL1SetStateValidation(t *testing.T) {
	l1 := newTestL1(t, 2)
	if err := l1.SetState([]bool{true}, []float64{1}); err == nil {
		t.Error("size mismatch: want error")
	}
}

// TestL1PruningPreservesDecision pins the branch-and-bound contract at
// the L1 level: with NonNegativeCosts on (the default — abstraction-map
// costs are sums of slack and power terms) the selected (α, γ) is
// bit-identical to the unpruned search across a varied observation
// sequence, while exploration never grows.
func TestL1PruningPreservesDecision(t *testing.T) {
	mk := func(prune bool) *L1 {
		cfg := DefaultL1Config()
		cfg.NonNegativeCosts = prune
		l1, err := NewL1(cfg, testModuleGMaps(t, 4))
		if err != nil {
			t.Fatal(err)
		}
		return l1
	}
	pruned, naive := mk(true), mk(false)
	obs := []L1Observation{
		{QueueLens: []float64{0, 0, 0, 0}, LambdaHat: 20, Delta: 5, CHat: 0.0175},
		{QueueLens: []float64{40, 10, 0, 0}, LambdaHat: 140, Delta: 30, CHat: 0.0175},
		{QueueLens: []float64{5, 5, 5, 5}, LambdaHat: 60, Delta: 10, CHat: 0.0175},
		{QueueLens: []float64{0, 80, 0, 20}, LambdaHat: 200, Delta: 40, CHat: 0.0175},
	}
	for step, o := range obs {
		dp, err := pruned.Decide(o)
		if err != nil {
			t.Fatal(err)
		}
		dn, err := naive.Decide(o)
		if err != nil {
			t.Fatal(err)
		}
		for j := range dn.Alpha {
			if dp.Alpha[j] != dn.Alpha[j] || dp.Gamma[j] != dn.Gamma[j] {
				t.Fatalf("step %d computer %d: pruned (%v, %v) vs naive (%v, %v)",
					step, j, dp.Alpha[j], dp.Gamma[j], dn.Alpha[j], dn.Gamma[j])
			}
		}
		if dp.Explored > dn.Explored {
			t.Errorf("step %d: pruned explored %d exceeds naive %d", step, dp.Explored, dn.Explored)
		}
	}
}
