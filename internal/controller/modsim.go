package controller

import (
	"fmt"

	"hierctl/internal/approx"
	"hierctl/internal/llc"
	"hierctl/internal/queue"
)

// ModuleSimConfig parameterizes the simulation-based learning of a
// module's cost approximation J̃ (§5.1): "the behavior of module M_i is
// learned by simulating the control structure in Fig. 2(b) with a large
// number of training inputs".
type ModuleSimConfig struct {
	// QLevels, LambdaLevels and CLevels are the training grids over the
	// module's average queue length, offered arrival rate
	// (requests/second), and processing time (seconds).
	QLevels, LambdaLevels, CLevels []float64
	// Tree bounds the fitted regression tree.
	Tree approx.TreeConfig
}

// DefaultModuleSimConfig returns a training grid sized for the paper's
// cluster experiments (module loads up to several hundred req/s).
func DefaultModuleSimConfig() ModuleSimConfig {
	return ModuleSimConfig{
		QLevels:      []float64{0, 20, 40, 80, 160, 320},
		LambdaLevels: []float64{0, 10, 25, 50, 75, 100, 150, 200, 250, 300, 400},
		CLevels:      []float64{0.012, 0.0175, 0.023},
		Tree:         approx.TreeConfig{MaxDepth: 10, MinLeaf: 2},
	}
}

// Validate reports whether the configuration is usable.
func (c ModuleSimConfig) Validate() error {
	if len(c.QLevels) == 0 || len(c.LambdaLevels) == 0 || len(c.CLevels) == 0 {
		return fmt.Errorf("controller: module sim grid has empty dimension")
	}
	return nil
}

// SimulateModulePeriod runs the closed L1+L0 loop of one module on the
// fluid model for one L1 period: the L1 picks (α, γ) for the offered load,
// then each on computer's L0 controller runs SubSteps periods. It returns
// the total cost accumulated (response slack + power + switching),
// normalized per L0 step, and the resulting average queue length.
//
// The module starts with qAvg queued requests per computer and a fresh
// all-on L1 state, so the sampled cost reflects the module's intrinsic
// response to (q, λ, c) rather than a particular control history.
func SimulateModulePeriod(l0cfg L0Config, l1cfg L1Config, gmaps []*GMap, qAvg, lambda, c float64) (cost, qEndAvg float64, err error) {
	l1, err := NewL1(l1cfg, gmaps)
	if err != nil {
		return 0, 0, err
	}
	m := len(gmaps)
	queues := make([]float64, m)
	for j := range queues {
		queues[j] = qAvg
	}
	obs := L1Observation{
		QueueLens: queues,
		LambdaHat: lambda,
		CHat:      c,
	}
	dec, err := l1.Decide(obs)
	if err != nil {
		return 0, 0, err
	}

	subSteps := int(l1cfg.PeriodSeconds / l0cfg.PeriodSeconds)
	if subSteps < 1 {
		subSteps = 1
	}
	states := make([]queue.State, m)
	for j := range states {
		states[j] = queue.State{Q: queues[j]}
	}
	l0s := make([]*L0, m)
	for j := range l0s {
		l0s[j], err = NewL0(l0cfg, gmaps[j].Spec())
		if err != nil {
			return 0, 0, err
		}
	}
	total := 0.0
	for j := range gmaps {
		if dec.Alpha[j] {
			continue
		}
		// Off computers contribute no running cost; queued work is
		// redistributed by the dispatcher in the real plant, modelled
		// here by dropping it from the fluid state.
		states[j] = queue.State{}
	}
	for step := 0; step < subSteps; step++ {
		for j := range gmaps {
			if !dec.Alpha[j] {
				continue
			}
			spec := gmaps[j].Spec()
			lamJ := dec.Gamma[j] * lambda
			idx, err := l0s[j].Decide(states[j].Q, []float64{lamJ}, c)
			if err != nil {
				return 0, 0, err
			}
			phi := spec.Phi(idx)
			next, err := queue.Step(states[j], queue.Params{
				Lambda: lamJ,
				C:      c / spec.SpeedFactor,
				Phi:    phi,
				T:      l0cfg.PeriodSeconds,
			})
			if err != nil {
				return 0, 0, err
			}
			psi := spec.Power.Draw(phi, true)
			total += l0cfg.SlackWeight*llc.Slack(next.R, l0cfg.EffectiveTarget()) + l0cfg.PowerWeight*psi
			states[j] = next
		}
	}
	qEnd := 0.0
	for j := range states {
		qEnd += states[j].Q
	}
	return total / float64(subSteps), qEnd / float64(m), nil
}

// LearnModuleTree performs the full §5.1 pipeline for one module: sweep
// the training grid, simulate the closed-loop module at every point to
// build the lookup table, and fit the compact regression tree over
// features (qAvg, λ, c).
func LearnModuleTree(l0cfg L0Config, l1cfg L1Config, gmaps []*GMap, cfg ModuleSimConfig) (*TreeJTilde, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	levels := [][]float64{cfg.QLevels, cfg.LambdaLevels, cfg.CLevels}
	samples, err := approx.Learn(levels, func(p []float64) (float64, error) {
		cost, _, err := SimulateModulePeriod(l0cfg, l1cfg, gmaps, p[0], p[1], p[2])
		return cost, err
	})
	if err != nil {
		return nil, err
	}
	tree, err := approx.FitTree(samples, cfg.Tree)
	if err != nil {
		return nil, err
	}
	return NewTreeJTilde(tree)
}
