// Package controller implements the three levels of the paper's control
// hierarchy for the cluster case study (Fig. 2):
//
//   - L0 (§4.1): per-computer DVFS frequency selection by exhaustive
//     lookahead over the fluid queue model;
//   - L1 (§4.2): per-module on/off vector {α_ij} and load-fraction vector
//     {γ_ij} by bounded neighbourhood search over an offline-learned
//     abstraction map g, with uncertainty-band chattering mitigation;
//   - L2 (§5.1): cluster-level module fractions {γ_i} minimizing the sum
//     of regression-tree cost approximations J̃_i.
//
// Invariants: every controller's Decide is a pure function of its
// observation and its own prior decision (for the bounded neighbourhood),
// so decisions are reproducible given the observation stream; the learned
// artifacts (GMap, TreeJTilde) are keyed by configuration fingerprints and
// are read-only during decision making, which is what lets managers share
// them across identical hardware and lets snapshots skip relearning.
//
// This file provides the quantized-simplex machinery the L1 and L2
// controllers share: load-fraction vectors must satisfy Σγ = 1, γ ≥ 0,
// quantized to a fixed step (the paper quantizes γ_ij at 0.05 and γ_i at
// 0.1).
package controller

import (
	"fmt"
	"math"
	"sort"
)

// SnapSimplex quantizes weights onto the simplex grid with the given
// quantum: the result has entries that are non-negative multiples of
// quantum summing exactly to 1 (within floating point), distributed by the
// largest-remainder method, and zero wherever mask is false. It returns an
// error if quantum does not divide 1 within tolerance, or the mask admits
// no entries.
func SnapSimplex(weights []float64, mask []bool, quantum float64) ([]float64, error) {
	if len(weights) == 0 || len(weights) != len(mask) {
		return nil, fmt.Errorf("controller: weights/mask lengths %d/%d", len(weights), len(mask))
	}
	units := int(math.Round(1 / quantum))
	if units < 1 || math.Abs(float64(units)*quantum-1) > 1e-9 {
		return nil, fmt.Errorf("controller: quantum %v does not divide 1", quantum)
	}
	active := 0
	total := 0.0
	for i, w := range weights {
		if mask[i] && w > 0 {
			total += w
		}
		if mask[i] {
			active++
		}
	}
	if active == 0 {
		return nil, fmt.Errorf("controller: empty mask")
	}
	out := make([]float64, len(weights))
	type rem struct {
		idx  int
		frac float64
	}
	var rems []rem
	assigned := 0
	for i, w := range weights {
		if !mask[i] {
			continue
		}
		share := 0.0
		if total > 0 {
			share = math.Max(w, 0) / total * float64(units)
		} else {
			share = float64(units) / float64(active)
		}
		fl := math.Floor(share)
		out[i] = fl
		assigned += int(fl)
		rems = append(rems, rem{idx: i, frac: share - fl})
	}
	sort.Slice(rems, func(a, b int) bool {
		if rems[a].frac != rems[b].frac {
			return rems[a].frac > rems[b].frac
		}
		return rems[a].idx < rems[b].idx
	})
	for k := 0; assigned < units; k++ {
		out[rems[k%len(rems)].idx]++
		assigned++
	}
	for assigned > units {
		// Possible only under floating-point pathologies; trim from the
		// largest entry.
		maxI := -1
		for i := range out {
			if mask[i] && out[i] > 0 && (maxI < 0 || out[i] > out[maxI]) {
				maxI = i
			}
		}
		out[maxI]--
		assigned--
	}
	for i := range out {
		out[i] *= quantum
	}
	return out, nil
}

// SimplexNeighbours generates the quantized-simplex neighbourhood of gamma:
// all vectors obtained by moving up to depth quanta from one masked entry
// to another, each still summing to 1. The input vector itself is included
// first. Entries outside the mask stay zero. Duplicate vectors are removed.
func SimplexNeighbours(gamma []float64, mask []bool, quantum float64, depth int) [][]float64 {
	seen := make(map[string]bool)
	var out [][]float64
	add := func(g []float64) {
		k := gammaKey(g, quantum)
		if !seen[k] {
			seen[k] = true
			cp := make([]float64, len(g))
			copy(cp, g)
			out = append(out, cp)
		}
	}
	add(gamma)
	frontier := [][]float64{gamma}
	for d := 0; d < depth; d++ {
		var next [][]float64
		for _, g := range frontier {
			for a := range g {
				if !mask[a] || g[a] < quantum-1e-9 {
					continue
				}
				for b := range g {
					if b == a || !mask[b] {
						continue
					}
					cand := make([]float64, len(g))
					copy(cand, g)
					cand[a] -= quantum
					cand[b] += quantum
					if cand[a] < -1e-9 {
						continue
					}
					if cand[a] < 0 {
						cand[a] = 0
					}
					k := gammaKey(cand, quantum)
					if !seen[k] {
						seen[k] = true
						cp := make([]float64, len(cand))
						copy(cp, cand)
						out = append(out, cp)
						next = append(next, cp)
					}
				}
			}
		}
		frontier = next
	}
	return out
}

// EnumerateSimplex lists every quantized simplex vector over the masked
// entries (compositions of 1/quantum units). The count grows
// combinatorially; callers should check CountSimplex first.
func EnumerateSimplex(n int, mask []bool, quantum float64) [][]float64 {
	units := int(math.Round(1 / quantum))
	var active []int
	for i := 0; i < n; i++ {
		if mask == nil || mask[i] {
			active = append(active, i)
		}
	}
	var out [][]float64
	if len(active) == 0 {
		return out
	}
	comp := make([]int, len(active))
	var rec func(pos, remaining int)
	rec = func(pos, remaining int) {
		if pos == len(active)-1 {
			comp[pos] = remaining
			g := make([]float64, n)
			for k, idx := range active {
				g[idx] = float64(comp[k]) * quantum
			}
			out = append(out, g)
			return
		}
		for u := 0; u <= remaining; u++ {
			comp[pos] = u
			rec(pos+1, remaining-u)
		}
	}
	rec(0, units)
	return out
}

// CountSimplex returns the number of vectors EnumerateSimplex would
// produce for k active entries: C(units+k-1, k-1).
func CountSimplex(k int, quantum float64) int {
	if k <= 0 {
		return 0
	}
	units := int(math.Round(1 / quantum))
	// Compute the binomial coefficient iteratively.
	n := units + k - 1
	r := k - 1
	if r > n-r {
		r = n - r
	}
	acc := 1
	for i := 1; i <= r; i++ {
		acc = acc * (n - r + i) / i
	}
	return acc
}

func gammaKey(g []float64, quantum float64) string {
	buf := make([]byte, 0, len(g)*2)
	for _, v := range g {
		u := uint16(int(math.Round(v / quantum)))
		buf = append(buf, byte(u), byte(u>>8))
	}
	return string(buf)
}
