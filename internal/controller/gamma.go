// Package controller implements the three levels of the paper's control
// hierarchy for the cluster case study (Fig. 2):
//
//   - L0 (§4.1): per-computer DVFS frequency selection by exhaustive
//     lookahead over the fluid queue model;
//   - L1 (§4.2): per-module on/off vector {α_ij} and load-fraction vector
//     {γ_ij} by bounded neighbourhood search over an offline-learned
//     abstraction map g, with uncertainty-band chattering mitigation;
//   - L2 (§5.1): cluster-level module fractions {γ_i} minimizing the sum
//     of regression-tree cost approximations J̃_i.
//
// Invariants: every controller's Decide is a pure function of its
// observation and its own prior decision (for the bounded neighbourhood),
// so decisions are reproducible given the observation stream; the learned
// artifacts (GMap, TreeJTilde) are keyed by configuration fingerprints and
// are read-only during decision making, which is what lets managers share
// them across identical hardware and lets snapshots skip relearning.
//
// Invariant: the steady-state decision tick is allocation-free up to a
// small pinned constant (see alloc_test.go) — candidate vectors live in
// per-controller pools, dedup runs on packed integer keys, neighbour sets
// are memoized per on/off mask, and abstraction-map probes go through the
// approx *Into APIs with controller-owned scratch.
//
// This file provides the quantized-simplex machinery the L1 and L2
// controllers share: load-fraction vectors must satisfy Σγ = 1, γ ≥ 0,
// quantized to a fixed step (the paper quantizes γ_ij at 0.05 and γ_i at
// 0.1).
package controller

import (
	"fmt"
	"math"
	"math/bits"
)

// simplexRem is one largest-remainder entry during snapping.
type simplexRem struct {
	idx  int
	frac float64
}

// snapper owns the scratch a repeated SnapSimplex needs, so controllers
// can quantize seed allocations every period without allocating.
type snapper struct {
	rems []simplexRem
}

// snapInto quantizes weights onto the simplex grid exactly like
// SnapSimplex, writing into dst when it has capacity. The result is
// bit-identical to SnapSimplex: same largest-remainder distribution, same
// (frac desc, idx asc) total order — the insertion sort below sorts a
// strict total order, so it yields the same permutation any comparison
// sort would.
func (sn *snapper) snapInto(dst, weights []float64, mask []bool, quantum float64) ([]float64, error) {
	if len(weights) == 0 || len(weights) != len(mask) {
		return nil, fmt.Errorf("controller: weights/mask lengths %d/%d", len(weights), len(mask))
	}
	units := int(math.Round(1 / quantum))
	if units < 1 || math.Abs(float64(units)*quantum-1) > 1e-9 {
		return nil, fmt.Errorf("controller: quantum %v does not divide 1", quantum)
	}
	active := 0
	total := 0.0
	for i, w := range weights {
		if mask[i] && w > 0 {
			total += w
		}
		if mask[i] {
			active++
		}
	}
	if active == 0 {
		return nil, fmt.Errorf("controller: empty mask")
	}
	if cap(dst) < len(weights) {
		dst = make([]float64, len(weights))
	}
	dst = dst[:len(weights)]
	for i := range dst {
		dst[i] = 0
	}
	rems := sn.rems[:0]
	assigned := 0
	for i, w := range weights {
		if !mask[i] {
			continue
		}
		share := 0.0
		if total > 0 {
			share = math.Max(w, 0) / total * float64(units)
		} else {
			share = float64(units) / float64(active)
		}
		fl := math.Floor(share)
		dst[i] = fl
		assigned += int(fl)
		rems = append(rems, simplexRem{idx: i, frac: share - fl})
	}
	// Insertion sort on (frac desc, idx asc): allocation-free and, being
	// a strict total order, identical to any other comparison sort.
	for i := 1; i < len(rems); i++ {
		r := rems[i]
		j := i - 1
		for j >= 0 && (rems[j].frac < r.frac || (rems[j].frac == r.frac && rems[j].idx > r.idx)) {
			rems[j+1] = rems[j]
			j--
		}
		rems[j+1] = r
	}
	sn.rems = rems[:0] // keep grown capacity
	for k := 0; assigned < units; k++ {
		dst[rems[k%len(rems)].idx]++
		assigned++
	}
	for assigned > units {
		// Possible only under floating-point pathologies; trim from the
		// largest entry.
		maxI := -1
		for i := range dst {
			if mask[i] && dst[i] > 0 && (maxI < 0 || dst[i] > dst[maxI]) {
				maxI = i
			}
		}
		dst[maxI]--
		assigned--
	}
	for i := range dst {
		dst[i] *= quantum
	}
	return dst, nil
}

// SnapSimplex quantizes weights onto the simplex grid with the given
// quantum: the result has entries that are non-negative multiples of
// quantum summing exactly to 1 (within floating point), distributed by the
// largest-remainder method, and zero wherever mask is false. It returns an
// error if quantum does not divide 1 within tolerance, or the mask admits
// no entries.
func SnapSimplex(weights []float64, mask []bool, quantum float64) ([]float64, error) {
	var sn snapper
	return sn.snapInto(nil, weights, mask, quantum)
}

// gammaBits returns the packed-key layout for γ vectors of length n at the
// given quantum: bits per entry and whether n entries fit a uint64. Each
// entry holds its unit count (0..1/quantum).
func gammaBits(n int, quantum float64) (perEntry uint, ok bool) {
	units := int(math.Round(1 / quantum))
	if units < 1 {
		return 0, false
	}
	perEntry = uint(bits.Len(uint(units)))
	return perEntry, uint(n)*perEntry <= 64
}

// gammaPack packs g's unit counts into a uint64. Only valid when
// gammaBits reported ok for (len(g), quantum).
func gammaPack(g []float64, quantum float64, perEntry uint) uint64 {
	k := uint64(0)
	at := uint(0)
	for _, v := range g {
		k |= uint64(int(math.Round(v/quantum))) << at
		at += perEntry
	}
	return k
}

// gammaKey is the historical string dedup key, kept for vectors too long
// to pack (and as the oracle the packed key is tested against).
func gammaKey(g []float64, quantum float64) string {
	buf := make([]byte, 0, len(g)*2)
	for _, v := range g {
		u := uint16(int(math.Round(v / quantum)))
		buf = append(buf, byte(u), byte(u>>8))
	}
	return string(buf)
}

// gammaSeen is a dedup set over γ vectors that uses packed uint64 keys
// whenever the (length, quantum) pair fits one, falling back to the
// historical string keys otherwise.
type gammaSeen struct {
	quantum  float64
	perEntry uint
	packed   bool
	u        map[uint64]bool
	s        map[string]bool
}

func newGammaSeen(n int, quantum float64) *gammaSeen {
	g := &gammaSeen{quantum: quantum}
	if per, ok := gammaBits(n, quantum); ok {
		g.packed, g.perEntry = true, per
		g.u = make(map[uint64]bool)
	} else {
		g.s = make(map[string]bool)
	}
	return g
}

// insert reports whether g was new, adding it if so.
func (gs *gammaSeen) insert(g []float64) bool {
	if gs.packed {
		k := gammaPack(g, gs.quantum, gs.perEntry)
		if gs.u[k] {
			return false
		}
		gs.u[k] = true
		return true
	}
	k := gammaKey(g, gs.quantum)
	if gs.s[k] {
		return false
	}
	gs.s[k] = true
	return true
}

// SimplexNeighbours generates the quantized-simplex neighbourhood of gamma:
// all vectors obtained by moving up to depth quanta from one masked entry
// to another, each still summing to 1. The input vector itself is included
// first. Entries outside the mask stay zero. Duplicate vectors are removed
// (packed-integer keys when the vector fits a uint64, string keys
// otherwise — identical sets either way).
func SimplexNeighbours(gamma []float64, mask []bool, quantum float64, depth int) [][]float64 {
	seen := newGammaSeen(len(gamma), quantum)
	var out [][]float64
	add := func(g []float64) bool {
		if !seen.insert(g) {
			return false
		}
		cp := make([]float64, len(g))
		copy(cp, g)
		out = append(out, cp)
		return true
	}
	add(gamma)
	frontier := [][]float64{gamma}
	cand := make([]float64, len(gamma))
	for d := 0; d < depth; d++ {
		var next [][]float64
		for _, g := range frontier {
			for a := range g {
				if !mask[a] || g[a] < quantum-1e-9 {
					continue
				}
				for b := range g {
					if b == a || !mask[b] {
						continue
					}
					copy(cand, g)
					cand[a] -= quantum
					cand[b] += quantum
					if cand[a] < -1e-9 {
						continue
					}
					if cand[a] < 0 {
						cand[a] = 0
					}
					if add(cand) {
						next = append(next, out[len(out)-1])
					}
				}
			}
		}
		frontier = next
	}
	return out
}

// EnumerateSimplex lists every quantized simplex vector over the masked
// entries (compositions of 1/quantum units). The count grows
// combinatorially; callers should check CountSimplex first.
func EnumerateSimplex(n int, mask []bool, quantum float64) [][]float64 {
	units := int(math.Round(1 / quantum))
	var active []int
	for i := 0; i < n; i++ {
		if mask == nil || mask[i] {
			active = append(active, i)
		}
	}
	var out [][]float64
	if len(active) == 0 {
		return out
	}
	comp := make([]int, len(active))
	var rec func(pos, remaining int)
	rec = func(pos, remaining int) {
		if pos == len(active)-1 {
			comp[pos] = remaining
			g := make([]float64, n)
			for k, idx := range active {
				g[idx] = float64(comp[k]) * quantum
			}
			out = append(out, g)
			return
		}
		for u := 0; u <= remaining; u++ {
			comp[pos] = u
			rec(pos+1, remaining-u)
		}
	}
	rec(0, units)
	return out
}

// CountSimplex returns the number of vectors EnumerateSimplex would
// produce for k active entries: C(units+k-1, k-1).
func CountSimplex(k int, quantum float64) int {
	if k <= 0 {
		return 0
	}
	units := int(math.Round(1 / quantum))
	// Compute the binomial coefficient iteratively.
	n := units + k - 1
	r := k - 1
	if r > n-r {
		r = n - r
	}
	acc := 1
	for i := 1; i <= r; i++ {
		acc = acc * (n - r + i) / i
	}
	return acc
}
