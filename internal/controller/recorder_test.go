package controller

// Flight-recorder pins for the controllers: recording must not change
// decisions (telemetry observes, never steers), the recorder-enabled
// warm paths must hold the same allocation budgets as the disabled ones
// (the ring is preallocated; writing is a struct copy), and each level
// must emit the documented record shapes.

import (
	"math"
	"testing"

	flight "hierctl/internal/obs"
)

func newCtrlRecorder(t *testing.T) *flight.Recorder {
	t.Helper()
	r, err := flight.NewRecorder(256)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestL0DecideZeroAllocWithRecorder(t *testing.T) {
	l0, err := NewL0(DefaultL0Config(), ctrlSpec("alloc-l0-rec"))
	if err != nil {
		t.Fatal(err)
	}
	l0.SetRecorder(newCtrlRecorder(t), 0, 1)
	lambda := make([]float64, 3)
	decide := func(i int) {
		lam := 40 + 30*math.Sin(float64(i)/9)
		lambda[0], lambda[1], lambda[2] = lam, lam+2, lam+4
		if _, err := l0.DecideBanded(float64((i*7)%200), lambda, 8, 0.0175); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		decide(i)
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		decide(i)
		i++
	})
	if allocs != 0 {
		t.Fatalf("warm recorded L0 decide allocated %v/op, want 0", allocs)
	}
}

func TestL1DecideSteadyStateAllocsWithRecorder(t *testing.T) {
	l1 := newTestL1(t, 4)
	l1.SetRecorder(newCtrlRecorder(t), 0)
	avail := []bool{true, true, true, true}
	queues := make([]float64, 4)
	decide := func(i int) {
		lam := 60 + 40*math.Sin(float64(i)/9)
		for j := range queues {
			queues[j] = float64((i * (3 + 2*j)) % 80)
		}
		if _, err := l1.Decide(L1Observation{
			QueueLens: queues, LambdaHat: lam, Delta: 8, CHat: 0.0175, Available: avail,
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		decide(i)
	}
	i := 0
	allocs := testing.AllocsPerRun(100, func() {
		decide(i)
		i++
	})
	if allocs > 2 {
		t.Fatalf("warm recorded L1 decide allocated %v/op, want <= 2", allocs)
	}
}

func TestL2DecideSteadyStateAllocsWithRecorder(t *testing.T) {
	jts := make([]JTilde, 4)
	for i := range jts {
		jts[i] = allocQuadJTilde{scale: 100 + 20*float64(i)}
	}
	l2, err := NewL2(DefaultL2Config(), jts)
	if err != nil {
		t.Fatal(err)
	}
	l2.SetRecorder(newCtrlRecorder(t))
	qavg := make([]float64, 4)
	chat := []float64{0.0175, 0.0175, 0.0175, 0.0175}
	avail := []bool{true, true, true, true}
	decide := func(i int) {
		lam := 200 + 100*math.Sin(float64(i)/9)
		for j := range qavg {
			qavg[j] = float64((i * (3 + 2*j)) % 40)
		}
		if _, err := l2.Decide(L2Observation{
			QAvg: qavg, LambdaHat: lam, Delta: 20, CHat: chat, Available: avail,
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		decide(i)
	}
	i := 0
	allocs := testing.AllocsPerRun(100, func() {
		decide(i)
		i++
	})
	if allocs > 2 {
		t.Fatalf("warm recorded L2 decide allocated %v/op, want <= 2", allocs)
	}
}

// TestControllerRecorderEquivalence drives identical twin controllers —
// one recording, one not — through the same observation sequence and
// requires bit-identical decisions at every level.
func TestControllerRecorderEquivalence(t *testing.T) {
	l0a, err := NewL0(DefaultL0Config(), ctrlSpec("rec-eq-l0"))
	if err != nil {
		t.Fatal(err)
	}
	l0b, err := NewL0(DefaultL0Config(), ctrlSpec("rec-eq-l0"))
	if err != nil {
		t.Fatal(err)
	}
	l0b.SetRecorder(newCtrlRecorder(t), 0, 0)
	lambda := make([]float64, 3)
	for i := 0; i < 40; i++ {
		lam := 40 + 30*math.Sin(float64(i)/7)
		lambda[0], lambda[1], lambda[2] = lam, lam+2, lam+4
		q := float64((i * 11) % 150)
		fa, err := l0a.DecideBanded(q, lambda, 8, 0.0175)
		if err != nil {
			t.Fatal(err)
		}
		fb, err := l0b.DecideBanded(q, lambda, 8, 0.0175)
		if err != nil {
			t.Fatal(err)
		}
		if fa != fb {
			t.Fatalf("L0 step %d: freq %d without recorder, %d with", i, fa, fb)
		}
	}

	l1a := newTestL1(t, 4)
	l1b := newTestL1(t, 4)
	l1b.SetRecorder(newCtrlRecorder(t), 0)
	queues := make([]float64, 4)
	avail := []bool{true, true, true, true}
	for i := 0; i < 40; i++ {
		lam := 60 + 40*math.Sin(float64(i)/7)
		for j := range queues {
			queues[j] = float64((i * (5 + 3*j)) % 90)
		}
		avail[i%4] = i%5 != 0
		if countTrue(avail) == 0 {
			avail[0] = true
		}
		o := L1Observation{QueueLens: queues, LambdaHat: lam, Delta: 8, CHat: 0.0175, Available: avail}
		da, err := l1a.Decide(o)
		if err != nil {
			t.Fatal(err)
		}
		db, err := l1b.Decide(o)
		if err != nil {
			t.Fatal(err)
		}
		for j := range da.Alpha {
			if da.Alpha[j] != db.Alpha[j] || da.Gamma[j] != db.Gamma[j] {
				t.Fatalf("L1 step %d computer %d: (%v,%v) without recorder, (%v,%v) with",
					i, j, da.Alpha[j], da.Gamma[j], db.Alpha[j], db.Gamma[j])
			}
		}
	}

	mkL2 := func() *L2 {
		jts := make([]JTilde, 4)
		for i := range jts {
			jts[i] = allocQuadJTilde{scale: 100 + 20*float64(i)}
		}
		l2, err := NewL2(DefaultL2Config(), jts)
		if err != nil {
			t.Fatal(err)
		}
		return l2
	}
	l2a, l2b := mkL2(), mkL2()
	l2b.SetRecorder(newCtrlRecorder(t))
	qavg := make([]float64, 4)
	chat := []float64{0.0175, 0.0175, 0.0175, 0.0175}
	availM := []bool{true, true, true, true}
	for i := 0; i < 40; i++ {
		lam := 200 + 100*math.Sin(float64(i)/7)
		for j := range qavg {
			qavg[j] = float64((i * (3 + 2*j)) % 40)
		}
		o := L2Observation{QAvg: qavg, LambdaHat: lam, Delta: 20, CHat: chat, Available: availM}
		da, err := l2a.Decide(o)
		if err != nil {
			t.Fatal(err)
		}
		db, err := l2b.Decide(o)
		if err != nil {
			t.Fatal(err)
		}
		for j := range da.Gamma {
			if da.Gamma[j] != db.Gamma[j] {
				t.Fatalf("L2 step %d module %d: γ %v without recorder, %v with", i, j, da.Gamma[j], db.Gamma[j])
			}
		}
	}
}

// TestControllerRecordShapes checks the documented record layout: L0
// emits one record per decision; L1 and L2 emit a summary followed by
// per-target detail records that reproduce the returned decision.
func TestControllerRecordShapes(t *testing.T) {
	rec := newCtrlRecorder(t)
	rec.SetTick(9)

	l0, err := NewL0(DefaultL0Config(), ctrlSpec("rec-shape-l0"))
	if err != nil {
		t.Fatal(err)
	}
	l0.SetRecorder(rec, 2, 3)
	freq, err := l0.Decide(10, []float64{50}, 0.0175)
	if err != nil {
		t.Fatal(err)
	}
	recs := rec.Window(nil, 0)
	if len(recs) != 1 {
		t.Fatalf("L0 decide wrote %d records, want 1", len(recs))
	}
	r0 := recs[0]
	if r0.Level != flight.LevelL0 || r0.Tick != 9 || r0.Module != 2 || r0.Comp != 3 ||
		r0.FreqIdx != int16(freq) || r0.Explored <= 0 || r0.DecideNs <= 0 {
		t.Fatalf("L0 record = %+v (freq %d)", r0, freq)
	}

	l1 := newTestL1(t, 4)
	l1.SetRecorder(rec, 5)
	before := rec.Total()
	dec, err := l1.Decide(L1Observation{
		QueueLens: []float64{1, 2, 3, 4}, LambdaHat: 80, CHat: 0.0175,
	})
	if err != nil {
		t.Fatal(err)
	}
	recs = rec.Window(nil, 0)
	l1Recs := recs[int(before):]
	if len(l1Recs) != 5 {
		t.Fatalf("L1 decide wrote %d records, want 1 summary + 4 details", len(l1Recs))
	}
	sum := l1Recs[0]
	if sum.Level != flight.LevelL1 || sum.Module != 5 || sum.Comp != -1 ||
		sum.Alpha != packBools(dec.Alpha) || sum.Explored != int32(dec.Explored) || sum.DecideNs <= 0 {
		t.Fatalf("L1 summary = %+v", sum)
	}
	for j, d := range l1Recs[1:] {
		if d.Comp != int16(j) || d.On != dec.Alpha[j] || d.Gamma != dec.Gamma[j] {
			t.Fatalf("L1 detail %d = %+v, decision (%v, %v)", j, d, dec.Alpha[j], dec.Gamma[j])
		}
	}

	// A fully failed module records the degraded all-off decision too.
	before = rec.Total()
	if _, err := l1.Decide(L1Observation{
		QueueLens: []float64{1, 2, 3, 4}, LambdaHat: 80, CHat: 0.0175,
		Available: []bool{false, false, false, false},
	}); err != nil {
		t.Fatal(err)
	}
	recs = rec.Window(nil, 0)
	degraded := recs[int(before):]
	if len(degraded) != 5 || degraded[0].Alpha != 0 {
		t.Fatalf("degraded L1 decide wrote %+v", degraded)
	}

	jts := make([]JTilde, 3)
	for i := range jts {
		jts[i] = allocQuadJTilde{scale: 100 + 20*float64(i)}
	}
	l2, err := NewL2(DefaultL2Config(), jts)
	if err != nil {
		t.Fatal(err)
	}
	l2.SetRecorder(rec)
	before = rec.Total()
	d2, err := l2.Decide(L2Observation{
		QAvg: []float64{1, 2, 3}, LambdaHat: 250, CHat: []float64{0.0175, 0.0175, 0.0175},
	})
	if err != nil {
		t.Fatal(err)
	}
	recs = rec.Window(nil, 0)
	l2Recs := recs[int(before):]
	if len(l2Recs) != 4 {
		t.Fatalf("L2 decide wrote %d records, want 1 summary + 3 details", len(l2Recs))
	}
	if l2Recs[0].Level != flight.LevelL2 || l2Recs[0].Module != -1 ||
		l2Recs[0].Explored != int32(d2.Explored) || l2Recs[0].DecideNs <= 0 {
		t.Fatalf("L2 summary = %+v", l2Recs[0])
	}
	for i, d := range l2Recs[1:] {
		if d.Module != int16(i) || d.Gamma != d2.Gamma[i] {
			t.Fatalf("L2 detail %d = %+v, γ %v", i, d, d2.Gamma[i])
		}
	}
}
