package cluster

import (
	"math"
	"math/rand"
	"testing"

	"hierctl/internal/workload"
)

func twoModuleSpec() Spec {
	return Spec{Modules: []ModuleSpec{
		{Name: "M1", Computers: []ComputerSpec{testSpec("m1c1"), testSpec("m1c2")}},
		{Name: "M2", Computers: []ComputerSpec{testSpec("m2c1"), testSpec("m2c2")}},
	}}
}

func newPlant(t *testing.T, spec Spec) *Plant {
	t.Helper()
	p, err := NewPlant(spec, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func allOn(t *testing.T, p *Plant) {
	t.Helper()
	for i := 0; i < p.Modules(); i++ {
		for j := 0; j < p.ModuleSize(i); j++ {
			if err := p.PowerOn(i, j); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := p.Advance(120); err != nil { // past boot
		t.Fatal(err)
	}
	// Clear boot-interval stats.
	for i := 0; i < p.Modules(); i++ {
		if _, _, err := p.ModuleIntervalStats(i); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSpecValidation(t *testing.T) {
	if err := twoModuleSpec().Validate(); err != nil {
		t.Fatalf("valid spec: %v", err)
	}
	bad := Spec{}
	if err := bad.Validate(); err == nil {
		t.Error("empty spec: want error")
	}
	dupModule := Spec{Modules: []ModuleSpec{
		{Name: "M", Computers: []ComputerSpec{testSpec("a")}},
		{Name: "M", Computers: []ComputerSpec{testSpec("b")}},
	}}
	if err := dupModule.Validate(); err == nil {
		t.Error("duplicate module name: want error")
	}
	dupComputer := Spec{Modules: []ModuleSpec{
		{Name: "M1", Computers: []ComputerSpec{testSpec("a")}},
		{Name: "M2", Computers: []ComputerSpec{testSpec("a")}},
	}}
	if err := dupComputer.Validate(); err == nil {
		t.Error("duplicate computer name across modules: want error")
	}
	dupWithin := Spec{Modules: []ModuleSpec{
		{Name: "M1", Computers: []ComputerSpec{testSpec("a"), testSpec("a")}},
	}}
	if err := dupWithin.Validate(); err == nil {
		t.Error("duplicate computer within module: want error")
	}
	if twoModuleSpec().Computers() != 4 {
		t.Error("Computers() != 4")
	}
}

func TestNewPlantValidation(t *testing.T) {
	if _, err := NewPlant(Spec{}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("invalid spec: want error")
	}
	if _, err := NewPlant(twoModuleSpec(), nil); err == nil {
		t.Error("nil rng: want error")
	}
}

func TestDispatchFractionsRespected(t *testing.T) {
	p := newPlant(t, twoModuleSpec())
	allOn(t, p)
	const n = 20000
	reqs := make([]workload.Request, n)
	for i := range reqs {
		reqs[i] = workload.Request{Arrival: 120, Demand: 0.001}
	}
	// 80/20 across modules; uneven within modules.
	err := p.Dispatch(reqs, []float64{0.8, 0.2}, [][]float64{{0.5, 0.5}, {1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	c00, _ := p.Computer(0, 0)
	c01, _ := p.Computer(0, 1)
	c10, _ := p.Computer(1, 0)
	c11, _ := p.Computer(1, 1)
	m1 := c00.QueueLen() + c01.QueueLen()
	m2 := c10.QueueLen() + c11.QueueLen()
	if frac := float64(m1) / n; math.Abs(frac-0.8) > 0.02 {
		t.Errorf("module 1 fraction = %v, want ≈0.8", frac)
	}
	if c11.QueueLen() != 0 {
		t.Errorf("computer with γ=0 received %d requests", c11.QueueLen())
	}
	if frac := float64(m2) / n; math.Abs(frac-0.2) > 0.02 {
		t.Errorf("module 2 fraction = %v, want ≈0.2", frac)
	}
}

func TestDispatchValidation(t *testing.T) {
	p := newPlant(t, twoModuleSpec())
	reqs := []workload.Request{{Arrival: 0, Demand: 1}}
	if err := p.Dispatch(reqs, []float64{1}, [][]float64{{1, 0}, {1, 0}}); err == nil {
		t.Error("wrong module fraction count: want error")
	}
	if err := p.Dispatch(reqs, []float64{0.5, 0.5}, [][]float64{{1, 0}}); err == nil {
		t.Error("wrong computer vector count: want error")
	}
	if err := p.Dispatch(reqs, []float64{0.5, 0.5}, [][]float64{{1}, {1, 0}}); err == nil {
		t.Error("wrong computer fraction count: want error")
	}
}

func TestDispatchFallbackOnNotAccepting(t *testing.T) {
	p := newPlant(t, twoModuleSpec())
	// Only m1c2 on; everything else off.
	if err := p.PowerOn(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := p.Advance(120); err != nil {
		t.Fatal(err)
	}
	reqs := []workload.Request{{Arrival: 120, Demand: 1}, {Arrival: 120, Demand: 1}}
	// Fractions all point at the off computer m1c1.
	if err := p.Dispatch(reqs, []float64{1, 0}, [][]float64{{1, 0}, {1, 0}}); err != nil {
		t.Fatal(err)
	}
	c01, _ := p.Computer(0, 1)
	if c01.QueueLen() != 2 {
		t.Errorf("fallback target queue = %d, want 2", c01.QueueLen())
	}
	if p.Misroutes() != 2 {
		t.Errorf("Misroutes = %d, want 2", p.Misroutes())
	}
}

func TestDispatchZeroFractionsFallsBackToUniform(t *testing.T) {
	p := newPlant(t, twoModuleSpec())
	allOn(t, p)
	reqs := make([]workload.Request, 1000)
	for i := range reqs {
		reqs[i] = workload.Request{Arrival: 120, Demand: 0.001}
	}
	// All-zero fractions: requests still land somewhere.
	if err := p.Dispatch(reqs, []float64{0, 0}, [][]float64{{0, 0}, {0, 0}}); err != nil {
		t.Fatal(err)
	}
	total := 0
	for i := 0; i < p.Modules(); i++ {
		for j := 0; j < p.ModuleSize(i); j++ {
			c, _ := p.Computer(i, j)
			total += c.QueueLen()
		}
	}
	if total != 1000 {
		t.Errorf("requests lost: %d of 1000 queued", total)
	}
}

func TestOperationalComputers(t *testing.T) {
	p := newPlant(t, twoModuleSpec())
	if got := p.OperationalComputers(); got != 0 {
		t.Errorf("initial operational = %d, want 0", got)
	}
	if err := p.PowerOn(0, 0); err != nil {
		t.Fatal(err)
	}
	if got := p.OperationalComputers(); got != 1 { // booting counts
		t.Errorf("operational = %d, want 1 (booting counts)", got)
	}
	if err := p.Advance(120); err != nil {
		t.Fatal(err)
	}
	if err := p.PowerOff(0, 0); err != nil {
		t.Fatal(err)
	}
	if got := p.OperationalComputers(); got != 0 {
		t.Errorf("operational after off = %d, want 0", got)
	}
}

func TestModuleIntervalStatsAggregation(t *testing.T) {
	p := newPlant(t, twoModuleSpec())
	allOn(t, p)
	for j := 0; j < 2; j++ {
		if err := p.SetFrequency(0, j, 1); err != nil {
			t.Fatal(err)
		}
	}
	reqs := []workload.Request{
		{Arrival: 120, Demand: 10},
		{Arrival: 120, Demand: 10},
	}
	if err := p.Dispatch(reqs, []float64{1, 0}, [][]float64{{0.5, 0.5}, {1, 0}}); err != nil {
		t.Fatal(err)
	}
	if err := p.Advance(240); err != nil {
		t.Fatal(err)
	}
	agg, per, err := p.ModuleIntervalStats(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(per) != 2 {
		t.Fatalf("per-computer stats = %d entries, want 2", len(per))
	}
	if agg.Arrived != 2 || agg.Completed != 2 {
		t.Errorf("agg arrived/completed = %d/%d, want 2/2", agg.Arrived, agg.Completed)
	}
	if agg.MeanDemand != 10 {
		t.Errorf("agg MeanDemand = %v, want 10", agg.MeanDemand)
	}
	if _, _, err := p.ModuleIntervalStats(5); err == nil {
		t.Error("bad module index: want error")
	}
}

func TestPlantEnergyAccumulates(t *testing.T) {
	p := newPlant(t, twoModuleSpec())
	if err := p.PowerOn(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := p.Advance(1000); err != nil {
		t.Fatal(err)
	}
	p.FinishAccounting()
	acct := p.Accountant()
	if acct.Switches("m1c1") != 1 {
		t.Errorf("switches = %d, want 1", acct.Switches("m1c1"))
	}
	// Boot 120 s at 0.75 + 880 s at 0.75+0.25 (φ=0.5 idle draw) + switch 8.
	want := 120*0.75 + 880*(0.75+0.25) + 8
	if got := acct.Energy("m1c1"); math.Abs(got-want) > 1e-6 {
		t.Errorf("Energy = %v, want %v", got, want)
	}
	if got := acct.Energy("m2c2"); got != 0 {
		t.Errorf("off computer energy = %v, want 0", got)
	}
}

func TestPlantFailRepair(t *testing.T) {
	p := newPlant(t, twoModuleSpec())
	allOn(t, p)
	if err := p.Fail(0, 0); err != nil {
		t.Fatal(err)
	}
	c, _ := p.Computer(0, 0)
	if c.State() != Failed {
		t.Errorf("state = %v, want failed", c.State())
	}
	if got := p.OperationalComputers(); got != 3 {
		t.Errorf("operational = %d, want 3", got)
	}
	if err := p.Repair(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := p.PowerOn(0, 0); err != nil {
		t.Errorf("power on after repair: %v", err)
	}
}

func TestPlantIndexErrors(t *testing.T) {
	p := newPlant(t, twoModuleSpec())
	if _, err := p.Computer(9, 0); err == nil {
		t.Error("bad module: want error")
	}
	if _, err := p.Computer(0, 9); err == nil {
		t.Error("bad computer: want error")
	}
	if err := p.PowerOn(9, 0); err == nil {
		t.Error("PowerOn bad index: want error")
	}
	if err := p.SetFrequency(0, 9, 0); err == nil {
		t.Error("SetFrequency bad index: want error")
	}
	if err := p.Advance(-1); err == nil {
		t.Error("backwards advance: want error")
	}
}

func TestWeightedPick(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	counts := make([]int, 3)
	for i := 0; i < 30000; i++ {
		k := weightedPick(rng, []float64{1, 3, 0})
		if k < 0 || k == 2 {
			t.Fatalf("picked %d with zero weight", k)
		}
		counts[k]++
	}
	frac := float64(counts[1]) / 30000
	if math.Abs(frac-0.75) > 0.02 {
		t.Errorf("weight-3 fraction = %v, want ≈0.75", frac)
	}
	if got := weightedPick(rng, []float64{0, 0}); got != -1 {
		t.Errorf("all-zero weights = %d, want -1", got)
	}
	if got := weightedPick(rng, []float64{-1, -2}); got != -1 {
		t.Errorf("negative weights = %d, want -1", got)
	}
}

func TestStandardSpecs(t *testing.T) {
	for kind := 0; kind < 4; kind++ {
		cs, err := StandardComputer(kind, "x")
		if err != nil {
			t.Fatalf("kind %d: %v", kind, err)
		}
		if err := cs.Validate(); err != nil {
			t.Errorf("kind %d invalid: %v", kind, err)
		}
	}
	if _, err := StandardComputer(7, "x"); err == nil {
		t.Error("unknown kind: want error")
	}
	m, err := StandardModule("M1", "M1")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Errorf("standard module invalid: %v", err)
	}
	if len(m.Computers) != 4 {
		t.Errorf("standard module size = %d, want 4", len(m.Computers))
	}
	for _, size := range []int{6, 10} {
		sm, err := ScaledModule("M", "M", size)
		if err != nil {
			t.Fatal(err)
		}
		if err := sm.Validate(); err != nil {
			t.Errorf("scaled module %d invalid: %v", size, err)
		}
		if len(sm.Computers) != size {
			t.Errorf("scaled module size = %d, want %d", len(sm.Computers), size)
		}
	}
	if _, err := ScaledModule("M", "M", 0); err == nil {
		t.Error("zero size: want error")
	}
	for _, p := range []int{4, 5} {
		cl, err := StandardCluster(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.Validate(); err != nil {
			t.Errorf("standard cluster %d invalid: %v", p, err)
		}
		if cl.Computers() != p*4 {
			t.Errorf("cluster computers = %d, want %d", cl.Computers(), p*4)
		}
	}
	if _, err := StandardCluster(0); err == nil {
		t.Error("zero modules: want error")
	}
	// Modules are heterogeneous: different first computer kinds.
	cl, err := StandardCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	f1 := cl.Modules[0].Computers[0].FrequenciesHz
	f2 := cl.Modules[1].Computers[0].FrequenciesHz
	if len(f1) == len(f2) && f1[0] == f2[0] {
		t.Error("modules are not heterogeneous")
	}
}

func TestConservationNoControlLoss(t *testing.T) {
	// Every dispatched request eventually completes when computers stay
	// on — conservation under drain/boot but no failures.
	p := newPlant(t, twoModuleSpec())
	allOn(t, p)
	rng := rand.New(rand.NewSource(9))
	total := 0
	timeNow := 120.0
	for step := 0; step < 20; step++ {
		n := rng.Intn(50)
		reqs := make([]workload.Request, n)
		for i := range reqs {
			reqs[i] = workload.Request{
				Arrival: timeNow + rng.Float64()*30,
				Demand:  0.01 + rng.Float64()*0.015,
			}
		}
		total += n
		if err := p.Dispatch(reqs, []float64{0.5, 0.5}, [][]float64{{0.5, 0.5}, {0.5, 0.5}}); err != nil {
			t.Fatal(err)
		}
		timeNow += 30
		if err := p.Advance(timeNow); err != nil {
			t.Fatal(err)
		}
	}
	// Long quiescent tail to finish everything.
	if err := p.Advance(timeNow + 3600); err != nil {
		t.Fatal(err)
	}
	completed := int64(0)
	for i := 0; i < p.Modules(); i++ {
		for j := 0; j < p.ModuleSize(i); j++ {
			c, _ := p.Computer(i, j)
			completed += c.TotalCompleted()
		}
	}
	if completed != int64(total) {
		t.Errorf("completed %d of %d dispatched", completed, total)
	}
}
