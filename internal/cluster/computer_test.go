package cluster

import (
	"math"
	"testing"

	"hierctl/internal/power"
)

// testSpec returns a simple computer: two frequencies (φ = 0.5, 1.0),
// nominal speed, base power 0.75, switch cost 8, 120 s boot.
func testSpec(name string) ComputerSpec {
	return ComputerSpec{
		Name:             name,
		FrequenciesHz:    []float64{1e9, 2e9},
		SpeedFactor:      1,
		Power:            power.DefaultModel(),
		BootDelaySeconds: 120,
	}
}

func newOn(t *testing.T, spec ComputerSpec) *Computer {
	t.Helper()
	c, err := NewComputer(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.PowerOn(0); err != nil {
		t.Fatal(err)
	}
	if err := c.Advance(spec.BootDelaySeconds, nil); err != nil {
		t.Fatal(err)
	}
	if c.State() != PowerOn {
		t.Fatalf("state after boot = %v, want on", c.State())
	}
	c.TakeIntervalStats() // reset accumulators so tests observe post-boot intervals
	return c
}

func TestComputerSpecValidation(t *testing.T) {
	base := testSpec("ok")
	if err := base.Validate(); err != nil {
		t.Fatalf("valid spec: %v", err)
	}
	cases := []func(*ComputerSpec){
		func(s *ComputerSpec) { s.Name = "" },
		func(s *ComputerSpec) { s.FrequenciesHz = nil },
		func(s *ComputerSpec) { s.FrequenciesHz = []float64{2e9, 1e9} },
		func(s *ComputerSpec) { s.FrequenciesHz = []float64{0, 1e9} },
		func(s *ComputerSpec) { s.SpeedFactor = 0 },
		func(s *ComputerSpec) { s.BootDelaySeconds = -1 },
		func(s *ComputerSpec) { s.Power = power.Model{Base: -1} },
	}
	for i, mutate := range cases {
		spec := base
		mutate(&spec)
		if err := spec.Validate(); err == nil {
			t.Errorf("mutation %d: want error", i)
		}
	}
}

func TestPhiLadder(t *testing.T) {
	spec := testSpec("c")
	if got := spec.Phi(0); got != 0.5 {
		t.Errorf("Phi(0) = %v, want 0.5", got)
	}
	if got := spec.Phi(1); got != 1 {
		t.Errorf("Phi(1) = %v, want 1", got)
	}
	ladder := spec.PhiLadder()
	if len(ladder) != 2 || ladder[0] != 0.5 || ladder[1] != 1 {
		t.Errorf("PhiLadder = %v", ladder)
	}
}

func TestFCFSResponseTimes(t *testing.T) {
	c := newOn(t, testSpec("c"))
	if err := c.SetFrequencyIndex(1); err != nil { // full speed
		t.Fatal(err)
	}
	// Two requests of 10 s demand arriving back to back at t=120.
	c.Enqueue(120, 10)
	c.Enqueue(120, 10)
	if err := c.Advance(220, nil); err != nil {
		t.Fatal(err)
	}
	st := c.TakeIntervalStats()
	if st.Completed != 2 {
		t.Fatalf("Completed = %d, want 2", st.Completed)
	}
	// First responds at 10, second waits 10 then serves 10 → 20. Mean 15.
	if math.Abs(st.MeanResponse-15) > 1e-9 {
		t.Errorf("MeanResponse = %v, want 15", st.MeanResponse)
	}
	if math.Abs(st.MaxResponse-20) > 1e-9 {
		t.Errorf("MaxResponse = %v, want 20", st.MaxResponse)
	}
	if st.MeanDemand != 10 {
		t.Errorf("MeanDemand = %v, want 10", st.MeanDemand)
	}
}

func TestFrequencyScalesService(t *testing.T) {
	c := newOn(t, testSpec("c"))
	if err := c.SetFrequencyIndex(0); err != nil { // φ = 0.5 → 2× slower
		t.Fatal(err)
	}
	c.Enqueue(120, 10)
	if err := c.Advance(220, nil); err != nil {
		t.Fatal(err)
	}
	st := c.TakeIntervalStats()
	if st.Completed != 1 || math.Abs(st.MeanResponse-20) > 1e-9 {
		t.Errorf("completed=%d resp=%v, want 1 completed at 20 s", st.Completed, st.MeanResponse)
	}
}

func TestSpeedFactorScalesService(t *testing.T) {
	spec := testSpec("fast")
	spec.SpeedFactor = 2
	c := newOn(t, spec)
	if err := c.SetFrequencyIndex(1); err != nil {
		t.Fatal(err)
	}
	c.Enqueue(120, 10)
	if err := c.Advance(220, nil); err != nil {
		t.Fatal(err)
	}
	st := c.TakeIntervalStats()
	if st.Completed != 1 || math.Abs(st.MeanResponse-5) > 1e-9 {
		t.Errorf("resp = %v, want 5 (2× speed)", st.MeanResponse)
	}
}

func TestPartialServiceAcrossIntervals(t *testing.T) {
	c := newOn(t, testSpec("c"))
	if err := c.SetFrequencyIndex(1); err != nil {
		t.Fatal(err)
	}
	c.Enqueue(120, 50)                          // 50 s of work
	if err := c.Advance(150, nil); err != nil { // 30 s served
		t.Fatal(err)
	}
	st := c.TakeIntervalStats()
	if st.Completed != 0 || st.QueueLen != 1 {
		t.Fatalf("mid-service: completed=%d queue=%d, want 0/1", st.Completed, st.QueueLen)
	}
	if math.Abs(st.Busy-0.3/0.3*(30.0/30.0)) > 1e-9 && st.Busy != 1 {
		t.Errorf("Busy = %v, want 1.0", st.Busy)
	}
	if err := c.Advance(200, nil); err != nil { // finishes at 170
		t.Fatal(err)
	}
	st = c.TakeIntervalStats()
	if st.Completed != 1 {
		t.Fatalf("Completed = %d, want 1", st.Completed)
	}
	if math.Abs(st.MeanResponse-50) > 1e-9 {
		t.Errorf("MeanResponse = %v, want 50", st.MeanResponse)
	}
	// Busy fraction of the second interval: 20 s of 50.
	if math.Abs(st.Busy-0.4) > 1e-9 {
		t.Errorf("Busy = %v, want 0.4", st.Busy)
	}
}

func TestFrequencyChangeMidService(t *testing.T) {
	c := newOn(t, testSpec("c"))
	if err := c.SetFrequencyIndex(0); err != nil { // half speed
		t.Fatal(err)
	}
	c.Enqueue(120, 20)                          // at φ=0.5 would take 40 s
	if err := c.Advance(140, nil); err != nil { // serves 10 demand-units
		t.Fatal(err)
	}
	if err := c.SetFrequencyIndex(1); err != nil { // full speed for the rest
		t.Fatal(err)
	}
	if err := c.Advance(160, nil); err != nil { // 10 remaining at φ=1 → done at 150
		t.Fatal(err)
	}
	st := c.TakeIntervalStats()
	if st.Completed != 1 || math.Abs(st.MeanResponse-30) > 1e-9 {
		t.Errorf("completed=%d resp=%v, want 1 at 30 s", st.Completed, st.MeanResponse)
	}
}

func TestBootDeadTime(t *testing.T) {
	c, err := NewComputer(testSpec("c"))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetFrequencyIndex(1); err != nil { // full speed once booted
		t.Fatal(err)
	}
	fresh, err := c.PowerOn(0)
	if err != nil || !fresh {
		t.Fatalf("PowerOn: fresh=%v err=%v, want true nil", fresh, err)
	}
	if c.State() != Booting {
		t.Fatalf("state = %v, want booting", c.State())
	}
	if !c.Accepting() {
		t.Error("booting computer should accept (anticipatory routing)")
	}
	c.Enqueue(10, 5)
	if err := c.Advance(100, nil); err != nil { // still booting (done at 120)
		t.Fatal(err)
	}
	st := c.TakeIntervalStats()
	if st.Completed != 0 || st.QueueLen != 1 {
		t.Fatalf("served during boot: completed=%d queue=%d", st.Completed, st.QueueLen)
	}
	if err := c.Advance(200, nil); err != nil { // boot at 120, serve 5 s → done 125
		t.Fatal(err)
	}
	st = c.TakeIntervalStats()
	if st.Completed != 1 {
		t.Fatalf("Completed = %d, want 1 after boot", st.Completed)
	}
	// Response includes the boot wait: 125 − 10 = 115.
	if math.Abs(st.MeanResponse-115) > 1e-9 {
		t.Errorf("MeanResponse = %v, want 115", st.MeanResponse)
	}
}

func TestZeroBootDelayIsImmediate(t *testing.T) {
	spec := testSpec("c")
	spec.BootDelaySeconds = 0
	c, err := NewComputer(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.PowerOn(0); err != nil {
		t.Fatal(err)
	}
	if c.State() != PowerOn {
		t.Errorf("state = %v, want on immediately", c.State())
	}
}

func TestPowerOnIdempotentAndRedundant(t *testing.T) {
	c := newOn(t, testSpec("c"))
	fresh, err := c.PowerOn(130)
	if err != nil || fresh {
		t.Errorf("redundant PowerOn: fresh=%v err=%v, want false nil", fresh, err)
	}
}

func TestDrainSemantics(t *testing.T) {
	c := newOn(t, testSpec("c"))
	if err := c.SetFrequencyIndex(1); err != nil {
		t.Fatal(err)
	}
	c.Enqueue(120, 30)
	if err := c.PowerOff(); err != nil {
		t.Fatal(err)
	}
	if c.State() != Draining {
		t.Fatalf("state = %v, want draining", c.State())
	}
	if c.Accepting() {
		t.Error("draining computer must not accept")
	}
	if !c.Serving() {
		t.Error("draining computer must keep serving")
	}
	if err := c.Advance(200, nil); err != nil { // drains at 150
		t.Fatal(err)
	}
	if c.State() != PowerOff {
		t.Errorf("state after drain = %v, want off", c.State())
	}
	st := c.TakeIntervalStats()
	if st.Completed != 1 {
		t.Errorf("Completed = %d, want 1 (drained request)", st.Completed)
	}
	// Powering off an empty computer goes straight to Off.
	c2 := newOn(t, testSpec("c2"))
	if err := c2.PowerOff(); err != nil {
		t.Fatal(err)
	}
	if c2.State() != PowerOff {
		t.Errorf("empty PowerOff: state = %v, want off", c2.State())
	}
}

func TestDrainingResumesOnPowerOn(t *testing.T) {
	c := newOn(t, testSpec("c"))
	c.Enqueue(120, 1000)
	if err := c.PowerOff(); err != nil {
		t.Fatal(err)
	}
	fresh, err := c.PowerOn(125)
	if err != nil {
		t.Fatal(err)
	}
	if fresh {
		t.Error("resuming from drain must not charge a boot transient")
	}
	if c.State() != PowerOn {
		t.Errorf("state = %v, want on (no re-boot)", c.State())
	}
}

func TestFailDropsQueueAndRepairRestores(t *testing.T) {
	c := newOn(t, testSpec("c"))
	c.Enqueue(120, 5)
	c.Enqueue(121, 5)
	c.Fail()
	if c.State() != Failed {
		t.Fatalf("state = %v, want failed", c.State())
	}
	if c.QueueLen() != 0 {
		t.Error("failed computer kept its queue")
	}
	if c.TotalDropped() != 2 {
		t.Errorf("TotalDropped = %d, want 2", c.TotalDropped())
	}
	if _, err := c.PowerOn(130); err == nil {
		t.Error("PowerOn on failed computer: want error")
	}
	if err := c.PowerOff(); err == nil {
		t.Error("PowerOff on failed computer: want error")
	}
	c.Repair()
	if c.State() != PowerOff {
		t.Errorf("state after repair = %v, want off", c.State())
	}
	if _, err := c.PowerOn(200); err != nil {
		t.Errorf("PowerOn after repair: %v", err)
	}
}

func TestEnergyAccountingStates(t *testing.T) {
	acct := power.NewAccountant()
	c, err := NewComputer(testSpec("c"))
	if err != nil {
		t.Fatal(err)
	}
	// Off for 100 s: 0 energy.
	if err := c.Advance(100, acct); err != nil {
		t.Fatal(err)
	}
	// Boot 120 s: base power 0.75 → 90 units.
	if _, err := c.PowerOn(100); err != nil {
		t.Fatal(err)
	}
	if err := c.Advance(220, acct); err != nil {
		t.Fatal(err)
	}
	// On at φ=1 for 100 s idle: (0.75 + 1) × 100 = 175.
	if err := c.SetFrequencyIndex(1); err != nil {
		t.Fatal(err)
	}
	if err := c.Advance(320, acct); err != nil {
		t.Fatal(err)
	}
	acct.FinishAt(320)
	want := 90.0 + 175.0
	if got := acct.Energy("c"); math.Abs(got-want) > 1e-6 {
		t.Errorf("Energy = %v, want %v", got, want)
	}
}

func TestAdvanceBackwardsRejected(t *testing.T) {
	c := newOn(t, testSpec("c"))
	if err := c.Advance(50, nil); err == nil {
		t.Error("backwards advance: want error")
	}
}

func TestSetFrequencyIndexBounds(t *testing.T) {
	c := newOn(t, testSpec("c"))
	if err := c.SetFrequencyIndex(-1); err == nil {
		t.Error("negative index: want error")
	}
	if err := c.SetFrequencyIndex(2); err == nil {
		t.Error("out-of-range index: want error")
	}
}

func TestIdleGapsBetweenArrivals(t *testing.T) {
	c := newOn(t, testSpec("c"))
	if err := c.SetFrequencyIndex(1); err != nil {
		t.Fatal(err)
	}
	c.Enqueue(130, 5) // served 130–135
	c.Enqueue(160, 5) // idle 135–160, served 160–165
	if err := c.Advance(200, nil); err != nil {
		t.Fatal(err)
	}
	st := c.TakeIntervalStats()
	if st.Completed != 2 || math.Abs(st.MeanResponse-5) > 1e-9 {
		t.Errorf("completed=%d resp=%v, want 2 at 5 s each", st.Completed, st.MeanResponse)
	}
	// Busy: 10 s of the 80 s interval.
	if math.Abs(st.Busy-0.125) > 1e-9 {
		t.Errorf("Busy = %v, want 0.125", st.Busy)
	}
}

func TestLifetimeCounters(t *testing.T) {
	c := newOn(t, testSpec("c"))
	if err := c.SetFrequencyIndex(1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		c.Enqueue(120+float64(i), 1)
	}
	if err := c.Advance(300, nil); err != nil {
		t.Fatal(err)
	}
	if c.TotalCompleted() != 5 {
		t.Errorf("TotalCompleted = %d, want 5", c.TotalCompleted())
	}
	if c.LifetimeResponse().Count() != 5 {
		t.Errorf("LifetimeResponse count = %d, want 5", c.LifetimeResponse().Count())
	}
	// Interval stats reset on Take; lifetime persists.
	c.TakeIntervalStats()
	st := c.TakeIntervalStats()
	if st.Completed != 0 {
		t.Error("interval stats not reset")
	}
	if c.TotalCompleted() != 5 {
		t.Error("lifetime counter was reset")
	}
}
