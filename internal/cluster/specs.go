package cluster

import (
	"fmt"

	"hierctl/internal/power"
)

// The standard computer catalogue reproduces Fig. 3: four heterogeneous
// computers with distinct discrete frequency ladders, in the spirit of the
// mobile AMD-K6-2+ (8 operating points) and Pentium M (up to 10 points)
// parts the paper cites. Speed factors and power bases differ per machine
// to exercise the "different power-consumption and processing profiles" of
// §4.1.

// StandardComputerNames lists the catalogue entries C1..C4 of Fig. 3.
var StandardComputerNames = []string{"C1", "C2", "C3", "C4"}

// StandardComputer returns catalogue computer kind ∈ {0..3} (C1..C4) with
// the given unique instance name. The boot delay is the paper's two
// minutes for every kind.
func StandardComputer(kind int, name string) (ComputerSpec, error) {
	base := power.DefaultModel()
	const boot = 120.0
	switch kind {
	case 0: // C1 — AMD-K6-2+-like: 8 points, 550..990 MHz, slowest machine.
		return ComputerSpec{
			Name:             name,
			FrequenciesHz:    mhz(550, 605, 660, 715, 770, 825, 880, 990),
			SpeedFactor:      0.8,
			Power:            base,
			BootDelaySeconds: boot,
		}, nil
	case 1: // C2 — Pentium-M-like: 10 points, 600..1800 MHz.
		return ComputerSpec{
			Name:             name,
			FrequenciesHz:    mhz(600, 733, 866, 1000, 1133, 1266, 1400, 1533, 1667, 1800),
			SpeedFactor:      1.0,
			Power:            base,
			BootDelaySeconds: boot,
		}, nil
	case 2: // C3 — 6 coarse points, 800..1800 MHz, cheaper base power.
		return ComputerSpec{
			Name:             name,
			FrequenciesHz:    mhz(800, 1000, 1200, 1400, 1600, 1800),
			SpeedFactor:      0.9,
			Power:            power.Model{Base: 0.6, SwitchCost: base.SwitchCost},
			BootDelaySeconds: boot,
		}, nil
	case 3: // C4 — fastest: 8 points up to 2.0 GHz (Fig. 5 plots this one).
		return ComputerSpec{
			Name:             name,
			FrequenciesHz:    mhz(600, 800, 1000, 1200, 1400, 1600, 1800, 2000),
			SpeedFactor:      1.2,
			Power:            power.Model{Base: 0.9, SwitchCost: base.SwitchCost},
			BootDelaySeconds: boot,
		}, nil
	default:
		return ComputerSpec{}, fmt.Errorf("cluster: unknown standard computer kind %d", kind)
	}
}

func mhz(vals ...float64) []float64 {
	out := make([]float64, len(vals))
	for i, v := range vals {
		out[i] = v * 1e6
	}
	return out
}

// StandardModule returns the §4.3 module: one of each catalogue computer
// C1..C4, named <prefix>-C1 .. <prefix>-C4.
func StandardModule(name, prefix string) (ModuleSpec, error) {
	m := ModuleSpec{Name: name}
	for kind := 0; kind < 4; kind++ {
		cs, err := StandardComputer(kind, fmt.Sprintf("%s-%s", prefix, StandardComputerNames[kind]))
		if err != nil {
			return ModuleSpec{}, err
		}
		m.Computers = append(m.Computers, cs)
	}
	return m, nil
}

// ScaledModule returns a module with size computers cycling through the
// catalogue kinds — the m = 6 and m = 10 module variants of §4.3.
func ScaledModule(name, prefix string, size int) (ModuleSpec, error) {
	if size < 1 {
		return ModuleSpec{}, fmt.Errorf("cluster: module size %d < 1", size)
	}
	m := ModuleSpec{Name: name}
	for j := 0; j < size; j++ {
		kind := j % 4
		cs, err := StandardComputer(kind, fmt.Sprintf("%s-%d%s", prefix, j, StandardComputerNames[kind]))
		if err != nil {
			return ModuleSpec{}, err
		}
		m.Computers = append(m.Computers, cs)
	}
	return m, nil
}

// StandardCluster returns the §5.2 cluster: p heterogeneous modules of
// four computers each (16 computers at p = 4, 20 at p = 5). Modules are
// heterogeneous: module i rotates the catalogue so different sets of
// computers appear in each.
func StandardCluster(p int) (Spec, error) {
	if p < 1 {
		return Spec{}, fmt.Errorf("cluster: module count %d < 1", p)
	}
	var spec Spec
	for i := 0; i < p; i++ {
		m := ModuleSpec{Name: fmt.Sprintf("M%d", i+1)}
		for j := 0; j < 4; j++ {
			kind := (i + j) % 4 // rotate the catalogue per module
			name := fmt.Sprintf("M%d-%s", i+1, StandardComputerNames[kind])
			cs, err := StandardComputer(kind, name)
			if err != nil {
				return Spec{}, err
			}
			m.Computers = append(m.Computers, cs)
		}
		spec.Modules = append(spec.Modules, m)
	}
	return spec, nil
}
