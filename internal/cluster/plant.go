package cluster

import (
	"fmt"
	"math/rand"

	"hierctl/internal/metrics"
	"hierctl/internal/power"
	"hierctl/internal/workload"
)

// ModuleSpec groups computers into one module M_i of the hierarchy.
type ModuleSpec struct {
	// Name identifies the module.
	Name string
	// Computers lists the module's member machines.
	Computers []ComputerSpec
}

// Validate reports whether the module spec is usable.
func (m ModuleSpec) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("cluster: module with empty name")
	}
	if len(m.Computers) == 0 {
		return fmt.Errorf("cluster: module %s has no computers", m.Name)
	}
	seen := make(map[string]bool, len(m.Computers))
	for _, c := range m.Computers {
		if err := c.Validate(); err != nil {
			return fmt.Errorf("cluster: module %s: %w", m.Name, err)
		}
		if seen[c.Name] {
			return fmt.Errorf("cluster: module %s has duplicate computer %s", m.Name, c.Name)
		}
		seen[c.Name] = true
	}
	return nil
}

// Spec describes a whole cluster: the modules of Fig. 2(a).
type Spec struct {
	// Modules lists the cluster's modules.
	Modules []ModuleSpec
}

// Validate reports whether the cluster spec is usable.
func (s Spec) Validate() error {
	if len(s.Modules) == 0 {
		return fmt.Errorf("cluster: no modules")
	}
	seenM := make(map[string]bool, len(s.Modules))
	seenC := make(map[string]bool)
	for _, m := range s.Modules {
		if err := m.Validate(); err != nil {
			return err
		}
		if seenM[m.Name] {
			return fmt.Errorf("cluster: duplicate module %s", m.Name)
		}
		seenM[m.Name] = true
		for _, c := range m.Computers {
			if seenC[c.Name] {
				return fmt.Errorf("cluster: duplicate computer name %s across modules", c.Name)
			}
			seenC[c.Name] = true
		}
	}
	return nil
}

// Computers returns the total computer count.
func (s Spec) Computers() int {
	n := 0
	for _, m := range s.Modules {
		n += len(m.Computers)
	}
	return n
}

// Plant is the simulated cluster: all computers, the dispatcher, and the
// energy accounting. Construct with NewPlant.
type Plant struct {
	spec      Spec
	modules   [][]*Computer
	acct      *power.Accountant
	rng       *rand.Rand
	now       float64
	misroute  int64
	latencies *metrics.Histogram
}

// NewPlant builds the cluster in the all-off state at time 0. rng drives
// probabilistic request routing.
func NewPlant(spec Spec, rng *rand.Rand) (*Plant, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, fmt.Errorf("cluster: nil rng")
	}
	p := &Plant{
		spec:      spec,
		modules:   make([][]*Computer, len(spec.Modules)),
		acct:      power.NewAccountant(),
		rng:       rng,
		latencies: metrics.DefaultLatencyHistogram(),
	}
	for i, m := range spec.Modules {
		p.modules[i] = make([]*Computer, len(m.Computers))
		for j, cs := range m.Computers {
			c, err := NewComputer(cs)
			if err != nil {
				return nil, err
			}
			c.SetResponseSink(p.latencies)
			p.modules[i][j] = c
		}
	}
	return p, nil
}

// Latencies exposes the plant-wide response-time histogram (one sample
// per completed request).
func (p *Plant) Latencies() *metrics.Histogram { return p.latencies }

// Spec returns the plant's cluster specification.
func (p *Plant) Spec() Spec { return p.spec }

// Now returns the plant's current simulation time.
func (p *Plant) Now() float64 { return p.now }

// Modules returns the number of modules.
func (p *Plant) Modules() int { return len(p.modules) }

// ModuleSize returns the number of computers in module i.
func (p *Plant) ModuleSize(i int) int { return len(p.modules[i]) }

// Computer returns the computer j of module i for observation and control.
func (p *Plant) Computer(i, j int) (*Computer, error) {
	if i < 0 || i >= len(p.modules) {
		return nil, fmt.Errorf("cluster: module index %d outside [0, %d)", i, len(p.modules))
	}
	if j < 0 || j >= len(p.modules[i]) {
		return nil, fmt.Errorf("cluster: computer index %d outside [0, %d) in module %d", j, len(p.modules[i]), i)
	}
	return p.modules[i][j], nil
}

// Accountant exposes the plant's energy accounting.
func (p *Plant) Accountant() *power.Accountant { return p.acct }

// Misroutes returns how many requests could not be routed per the supplied
// fractions (their targets were not accepting) and fell back to another
// accepting computer.
func (p *Plant) Misroutes() int64 { return p.misroute }

// PowerOn commands computer j of module i on, charging the transient
// switching cost if a fresh boot starts (the ‖Δα‖_W term of Eq. 14).
func (p *Plant) PowerOn(i, j int) error {
	c, err := p.Computer(i, j)
	if err != nil {
		return err
	}
	fresh, err := c.PowerOn(p.now)
	if err != nil {
		return err
	}
	if fresh {
		p.acct.RecordSwitch(c.spec.Name, c.spec.Power.SwitchCost)
	}
	return nil
}

// PowerOff commands computer j of module i off (drain semantics).
func (p *Plant) PowerOff(i, j int) error {
	c, err := p.Computer(i, j)
	if err != nil {
		return err
	}
	return c.PowerOff()
}

// SetFrequency selects DVFS operating point idx on computer j of module i.
func (p *Plant) SetFrequency(i, j, idx int) error {
	c, err := p.Computer(i, j)
	if err != nil {
		return err
	}
	return c.SetFrequencyIndex(idx)
}

// Fail crashes computer j of module i (failure injection).
func (p *Plant) Fail(i, j int) error {
	c, err := p.Computer(i, j)
	if err != nil {
		return err
	}
	c.Fail()
	return nil
}

// Repair restores a failed computer to Off.
func (p *Plant) Repair(i, j int) error {
	c, err := p.Computer(i, j)
	if err != nil {
		return err
	}
	c.Repair()
	return nil
}

// Dispatch routes a batch of requests. gammaModules[i] is the fraction of
// requests sent to module i ({γ_i} of the L2 controller); gammaComputers[i][j]
// is the within-module fraction for computer j ({γ_ij} of the L1
// controller). Fractions are normalized internally; a request whose chosen
// target is not accepting falls back to any accepting computer (counted in
// Misroutes); if nothing accepts, the request queues on the target anyway
// — the global buffer never drops work.
func (p *Plant) Dispatch(reqs []workload.Request, gammaModules []float64, gammaComputers [][]float64) error {
	if len(gammaModules) != len(p.modules) {
		return fmt.Errorf("cluster: %d module fractions for %d modules", len(gammaModules), len(p.modules))
	}
	if len(gammaComputers) != len(p.modules) {
		return fmt.Errorf("cluster: %d computer fraction vectors for %d modules", len(gammaComputers), len(p.modules))
	}
	for i := range p.modules {
		if len(gammaComputers[i]) != len(p.modules[i]) {
			return fmt.Errorf("cluster: module %d has %d fractions for %d computers", i, len(gammaComputers[i]), len(p.modules[i]))
		}
	}
	for _, r := range reqs {
		i := weightedPick(p.rng, gammaModules)
		if i < 0 {
			i = p.rng.Intn(len(p.modules))
		}
		j := weightedPick(p.rng, gammaComputers[i])
		if j < 0 {
			j = p.rng.Intn(len(p.modules[i]))
		}
		c := p.modules[i][j]
		if !c.Accepting() {
			if alt := p.fallback(i); alt != nil {
				c = alt
				p.misroute++
			}
		}
		c.Enqueue(r.Arrival, r.Demand)
	}
	return nil
}

// fallback finds an accepting computer, preferring the module the request
// was destined for, then scanning the whole cluster.
func (p *Plant) fallback(module int) *Computer {
	for _, c := range p.modules[module] {
		if c.Accepting() {
			return c
		}
	}
	for i := range p.modules {
		for _, c := range p.modules[i] {
			if c.Accepting() {
				return c
			}
		}
	}
	return nil
}

// weightedPick samples an index proportional to weights; it returns -1 if
// all weights are zero or negative.
func weightedPick(rng *rand.Rand, weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return -1
	}
	x := rng.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		x -= w
		if x <= 0 {
			return i
		}
	}
	// Floating-point tail: return the last positive weight.
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return i
		}
	}
	return -1
}

// Advance simulates all computers to absolute time t1.
func (p *Plant) Advance(t1 float64) error {
	if t1 < p.now {
		return fmt.Errorf("cluster: advance to %v before now %v", t1, p.now)
	}
	for i := range p.modules {
		for _, c := range p.modules[i] {
			if err := c.Advance(t1, p.acct); err != nil {
				return err
			}
		}
	}
	p.now = t1
	return nil
}

// FinishAccounting closes the energy integrals at the current time; call
// once at the end of a run before reading energies.
func (p *Plant) FinishAccounting() { p.acct.FinishAt(p.now) }

// OperationalComputers counts computers currently On or Booting — the
// "number of operational computers" series of Figs. 4 and 6.
func (p *Plant) OperationalComputers() int {
	n := 0
	for i := range p.modules {
		for _, c := range p.modules[i] {
			if c.State() == PowerOn || c.State() == Booting {
				n++
			}
		}
	}
	return n
}

// ModuleIntervalStats harvests and aggregates the interval statistics of
// module i's computers. The per-computer stats are returned alongside the
// aggregate (Eq. 9's abstraction map Ψ inputs).
func (p *Plant) ModuleIntervalStats(i int) (agg IntervalStats, per []IntervalStats, err error) {
	if i < 0 || i >= len(p.modules) {
		return IntervalStats{}, nil, fmt.Errorf("cluster: module index %d outside [0, %d)", i, len(p.modules))
	}
	per = make([]IntervalStats, len(p.modules[i]))
	var respSum, demandSum float64
	var respN, demandN int
	for j, c := range p.modules[i] {
		st := c.TakeIntervalStats()
		per[j] = st
		agg.Arrived += st.Arrived
		agg.Completed += st.Completed
		agg.Dropped += st.Dropped
		agg.QueueLen += st.QueueLen
		if st.Completed > 0 {
			respSum += st.MeanResponse * float64(st.Completed)
			respN += st.Completed
			demandSum += st.MeanDemand * float64(st.Completed)
			demandN += st.Completed
			if st.MaxResponse > agg.MaxResponse {
				agg.MaxResponse = st.MaxResponse
			}
		}
		agg.Busy += st.Busy
	}
	if respN > 0 {
		agg.MeanResponse = respSum / float64(respN)
		agg.MeanDemand = demandSum / float64(demandN)
	}
	agg.Busy /= float64(len(p.modules[i]))
	return agg, per, nil
}
