// Package cluster implements the plant of Fig. 1(a): a cluster of
// heterogeneous DVFS-capable computers organized into modules, fed by a
// dispatcher from a global request buffer. Unlike the controllers' fluid
// model (internal/queue), the plant is a request-level simulation: every
// request is individually queued, served FCFS at the computer's current
// frequency, and timed, so controller decisions are evaluated under real
// model mismatch.
//
// Power-state semantics (DESIGN.md §6): powering on takes BootDelay
// seconds (the control dead time of §1) during which the computer draws
// base power and serves nothing; powering off stops new routing
// immediately but the computer drains its local queue before going dark,
// so requests are never dropped by control actions (failures do drop).
package cluster

import (
	"fmt"
	"math"

	"hierctl/internal/metrics"
	"hierctl/internal/power"
)

// PowerState enumerates a computer's power states.
type PowerState int

// Power states. Off computers draw nothing; Booting computers draw base
// power but serve nothing; On computers serve and draw a + φ²; Draining
// computers refuse new work but serve their backlog at a + φ²; Failed
// computers are dark and have lost their queue.
const (
	PowerOff PowerState = iota + 1
	Booting
	PowerOn
	Draining
	Failed
)

// String returns the state name.
func (s PowerState) String() string {
	switch s {
	case PowerOff:
		return "off"
	case Booting:
		return "booting"
	case PowerOn:
		return "on"
	case Draining:
		return "draining"
	case Failed:
		return "failed"
	default:
		return fmt.Sprintf("PowerState(%d)", int(s))
	}
}

// ComputerSpec describes one computer's hardware.
type ComputerSpec struct {
	// Name identifies the computer in reports and energy accounting.
	Name string
	// FrequenciesHz lists the discrete DVFS operating points in
	// ascending order (Fig. 3). The scaling factor of the i-th point is
	// FrequenciesHz[i]/FrequenciesHz[len-1].
	FrequenciesHz []float64
	// SpeedFactor scales this computer's service rate relative to the
	// store's nominal demands: effective full-speed processing time is
	// demand/SpeedFactor. It models the heterogeneous "processing
	// profiles" of §4.1. Must be > 0; 1 is nominal.
	SpeedFactor float64
	// Power is the computer's power model (base cost and switch cost).
	Power power.Model
	// BootDelaySeconds is the dead time between a power-on command and
	// the computer serving requests (§4.3 uses ≈2 min).
	BootDelaySeconds float64
}

// Validate reports whether the spec is usable.
func (s ComputerSpec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("cluster: computer with empty name")
	}
	if len(s.FrequenciesHz) == 0 {
		return fmt.Errorf("cluster: computer %s has no frequencies", s.Name)
	}
	prev := 0.0
	for i, f := range s.FrequenciesHz {
		if f <= prev {
			return fmt.Errorf("cluster: computer %s frequency %d (%v Hz) not ascending and positive", s.Name, i, f)
		}
		prev = f
	}
	if s.SpeedFactor <= 0 {
		return fmt.Errorf("cluster: computer %s speed factor %v <= 0", s.Name, s.SpeedFactor)
	}
	if err := s.Power.Validate(); err != nil {
		return fmt.Errorf("cluster: computer %s: %w", s.Name, err)
	}
	if s.BootDelaySeconds < 0 {
		return fmt.Errorf("cluster: computer %s boot delay %v < 0", s.Name, s.BootDelaySeconds)
	}
	return nil
}

// Phi returns the scaling factor of frequency index i.
func (s ComputerSpec) Phi(i int) float64 {
	return s.FrequenciesHz[i] / s.FrequenciesHz[len(s.FrequenciesHz)-1]
}

// PhiLadder returns all scaling factors in ascending order.
func (s ComputerSpec) PhiLadder() []float64 {
	out := make([]float64, len(s.FrequenciesHz))
	for i := range out {
		out[i] = s.Phi(i)
	}
	return out
}

type job struct {
	arrival float64
	demand  float64 // remaining full-speed seconds (at SpeedFactor 1)
}

// IntervalStats summarizes one observation interval on one computer — the
// local state the L0/L1 controllers sample.
type IntervalStats struct {
	// Arrived counts requests routed to the computer in the interval.
	Arrived int
	// Completed counts requests finished in the interval.
	Completed int
	// Dropped counts requests lost to failures in the interval.
	Dropped int
	// MeanResponse is the mean response time (queueing + service) of
	// completed requests, seconds; 0 if none completed.
	MeanResponse float64
	// MaxResponse is the worst response among completed requests.
	MaxResponse float64
	// MeanDemand is the mean observed full-speed processing time of
	// completed requests, seconds — the controllers' c measurement.
	MeanDemand float64
	// QueueLen is the queue length at the end of the interval.
	QueueLen int
	// Busy is the fraction of the interval spent serving.
	Busy float64
}

// Computer is the request-level simulation of one cluster node. Construct
// with NewComputer; the zero value is not usable.
type Computer struct {
	spec  ComputerSpec
	state PowerState
	// bootDoneAt is the absolute time the current boot completes
	// (meaningful in state Booting).
	bootDoneAt float64
	freqIdx    int

	queue      []job
	head       int
	headServed float64 // full-speed seconds already served on queue[head]

	now float64

	// Interval accumulators, harvested by TakeIntervalStats.
	arrived     int
	completed   int
	dropped     int
	respWelford metrics.Welford
	maxResp     float64
	demandSum   float64
	busySeconds float64
	intervalLen float64

	// Lifetime counters.
	totalCompleted int64
	totalDropped   int64
	totalResponse  metrics.Welford

	// sink receives every completed response time (optional).
	sink *metrics.Histogram
}

// NewComputer builds a computer in the PowerOff state at time 0 with the
// lowest frequency selected.
func NewComputer(spec ComputerSpec) (*Computer, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &Computer{spec: spec, state: PowerOff}, nil
}

// Spec returns the computer's hardware description.
func (c *Computer) Spec() ComputerSpec { return c.spec }

// State returns the current power state.
func (c *Computer) State() PowerState { return c.state }

// FrequencyIndex returns the current DVFS operating point index.
func (c *Computer) FrequencyIndex() int { return c.freqIdx }

// Phi returns the current frequency scaling factor.
func (c *Computer) Phi() float64 { return c.spec.Phi(c.freqIdx) }

// QueueLen returns the number of queued (incl. in-service) requests.
func (c *Computer) QueueLen() int { return len(c.queue) - c.head }

// Accepting reports whether the dispatcher may route new requests here:
// true while On or Booting (work queues behind the boot, §4.2's
// anticipatory provisioning), false while Off, Draining, or Failed.
func (c *Computer) Accepting() bool { return c.state == PowerOn || c.state == Booting }

// Serving reports whether the computer is currently able to process work.
func (c *Computer) Serving() bool { return c.state == PowerOn || c.state == Draining }

// TotalCompleted returns the lifetime number of completed requests.
func (c *Computer) TotalCompleted() int64 { return c.totalCompleted }

// TotalDropped returns the lifetime number of requests lost to failures.
func (c *Computer) TotalDropped() int64 { return c.totalDropped }

// LifetimeResponse returns the accumulator of all completed response times.
func (c *Computer) LifetimeResponse() *metrics.Welford { return &c.totalResponse }

// SetResponseSink registers a histogram that receives every completed
// response time — the plant shares one across its computers so runs can
// report latency percentiles.
func (c *Computer) SetResponseSink(h *metrics.Histogram) { c.sink = h }

// SetFrequencyIndex selects a DVFS operating point. Changing frequency is
// immediate and costless (§4.1: "switching between different operating
// frequencies incurs negligible power-consumption overhead").
func (c *Computer) SetFrequencyIndex(i int) error {
	if i < 0 || i >= len(c.spec.FrequenciesHz) {
		return fmt.Errorf("cluster: %s frequency index %d outside [0, %d)", c.spec.Name, i, len(c.spec.FrequenciesHz))
	}
	c.freqIdx = i
	return nil
}

// PowerOn commands the computer on at time now. From Off it starts a boot
// that completes after BootDelaySeconds; from Draining it resumes
// accepting immediately (the hardware never went down); On and Booting are
// no-ops. Powering on a Failed computer is an error; Repair it first.
// It reports whether a fresh boot (with its transient cost) was started.
func (c *Computer) PowerOn(now float64) (freshBoot bool, err error) {
	switch c.state {
	case PowerOff:
		c.state = Booting
		c.bootDoneAt = now + c.spec.BootDelaySeconds
		if c.spec.BootDelaySeconds == 0 {
			c.state = PowerOn
		}
		return true, nil
	case Draining:
		c.state = PowerOn
		return false, nil
	case PowerOn, Booting:
		return false, nil
	case Failed:
		return false, fmt.Errorf("cluster: %s is failed; repair before power-on", c.spec.Name)
	default:
		return false, fmt.Errorf("cluster: %s in unknown state %v", c.spec.Name, c.state)
	}
}

// PowerOff commands the computer off. From On with backlog it drains
// first; with an empty queue it goes straight to Off. From Booting the
// boot is simply abandoned. Off/Draining are no-ops; Failed is an error.
func (c *Computer) PowerOff() error {
	switch c.state {
	case PowerOn:
		if c.QueueLen() > 0 {
			c.state = Draining
		} else {
			c.state = PowerOff
		}
		return nil
	case Booting:
		// Abandon the boot. Any queued work must be re-dispatched by the
		// caller; keep it and drain if present.
		if c.QueueLen() > 0 {
			c.state = Draining
		} else {
			c.state = PowerOff
		}
		return nil
	case PowerOff, Draining:
		return nil
	case Failed:
		return fmt.Errorf("cluster: %s is failed; cannot power off", c.spec.Name)
	default:
		return fmt.Errorf("cluster: %s in unknown state %v", c.spec.Name, c.state)
	}
}

// Fail crashes the computer at time now: the queue is lost (counted as
// drops) and the node goes dark until Repair.
func (c *Computer) Fail() {
	lost := c.QueueLen()
	c.dropped += lost
	c.totalDropped += int64(lost)
	c.queue = c.queue[:0]
	c.head = 0
	c.headServed = 0
	c.state = Failed
}

// Repair returns a Failed computer to Off so it can be powered on again.
// Repairing a healthy computer is a no-op.
func (c *Computer) Repair() {
	if c.state == Failed {
		c.state = PowerOff
	}
}

// Enqueue adds a request (arrival time, full-speed demand in seconds).
// Requests may be enqueued in any state — the dispatcher is responsible
// for routing only to Accepting computers; a guard here would hide
// dispatcher bugs.
func (c *Computer) Enqueue(arrival, demand float64) {
	c.queue = append(c.queue, job{arrival: arrival, demand: demand})
	c.arrived++
}

// effectiveRate returns demand-units served per second at the current
// operating point.
func (c *Computer) effectiveRate() float64 {
	return c.Phi() * c.spec.SpeedFactor
}

// Advance simulates the computer from its current time to t1, serving the
// queue FCFS, and records power draw into acct (which may be nil for
// tests that don't need energy accounting).
func (c *Computer) Advance(t1 float64, acct *power.Accountant) error {
	if t1 < c.now {
		return fmt.Errorf("cluster: %s advance to %v before now %v", c.spec.Name, t1, c.now)
	}
	c.intervalLen += t1 - c.now
	for c.now < t1 {
		switch c.state {
		case PowerOff, Failed:
			c.observePower(acct, 0)
			c.now = t1
		case Booting:
			c.observePower(acct, c.spec.Power.Base)
			if c.bootDoneAt > t1 {
				c.now = t1
			} else {
				c.now = math.Max(c.now, c.bootDoneAt)
				c.state = PowerOn
			}
		case PowerOn, Draining:
			c.observePower(acct, c.spec.Power.Draw(c.Phi(), true))
			c.serve(t1)
			if c.state == Draining && c.QueueLen() == 0 {
				c.state = PowerOff
				continue // account the off stretch
			}
			c.now = t1
		default:
			return fmt.Errorf("cluster: %s in unknown state %v", c.spec.Name, c.state)
		}
	}
	return nil
}

func (c *Computer) observePower(acct *power.Accountant, w float64) {
	if acct != nil {
		acct.Observe(c.spec.Name, c.now, w)
	}
}

// serve processes the FCFS queue from c.now to t1 at the current rate.
// On return c.now is the time service stopped (t1, or earlier if the
// queue drained).
func (c *Computer) serve(t1 float64) {
	rate := c.effectiveRate()
	for c.head < len(c.queue) {
		j := &c.queue[c.head]
		start := c.now
		if j.arrival > start {
			if j.arrival >= t1 {
				break // nothing more arrives before t1
			}
			start = j.arrival
		}
		remaining := (j.demand - c.headServed) / rate
		if start+remaining <= t1 {
			done := start + remaining
			c.busySeconds += done - start
			c.recordCompletion(done-j.arrival, j.demand)
			c.now = done
			c.head++
			c.headServed = 0
		} else {
			served := (t1 - start) * rate
			if served > 0 {
				c.headServed += served
				c.busySeconds += t1 - start
			}
			c.now = t1
			return
		}
	}
	// Queue drained (or nothing arrives before t1).
	if c.now < t1 {
		c.now = t1
	}
	c.compact()
}

func (c *Computer) recordCompletion(response, demand float64) {
	c.completed++
	c.respWelford.Add(response)
	c.totalResponse.Add(response)
	if c.sink != nil {
		c.sink.Observe(response)
	}
	if response > c.maxResp {
		c.maxResp = response
	}
	c.demandSum += demand
	c.totalCompleted++
}

// compact reclaims served queue prefix storage.
func (c *Computer) compact() {
	if c.head == 0 {
		return
	}
	if c.head == len(c.queue) {
		c.queue = c.queue[:0]
		c.head = 0
		return
	}
	if c.head > 1024 && c.head > len(c.queue)/2 {
		n := copy(c.queue, c.queue[c.head:])
		c.queue = c.queue[:n]
		c.head = 0
	}
}

// TakeIntervalStats returns the statistics accumulated since the previous
// call and resets the accumulators.
func (c *Computer) TakeIntervalStats() IntervalStats {
	st := IntervalStats{
		Arrived:   c.arrived,
		Completed: c.completed,
		Dropped:   c.dropped,
		QueueLen:  c.QueueLen(),
	}
	if c.completed > 0 {
		st.MeanResponse = c.respWelford.Mean()
		st.MaxResponse = c.maxResp
		st.MeanDemand = c.demandSum / float64(c.completed)
	}
	if c.intervalLen > 0 {
		st.Busy = c.busySeconds / c.intervalLen
	}
	c.arrived, c.completed, c.dropped = 0, 0, 0
	c.respWelford = metrics.Welford{}
	c.maxResp = 0
	c.demandSum = 0
	c.busySeconds = 0
	c.intervalLen = 0
	return st
}
