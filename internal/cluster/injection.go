package cluster

import (
	"math"

	"hierctl/internal/workload"
)

// FailureSteps quantizes a scenario failure plan onto a runner's control
// grid: entry i of the result is the step index (ceil(At/period)) at which
// plan[i] fires. Runners call ApplyPlannedFailures with the result at each
// step boundary, and once more at the final boundary so events quantized
// exactly to the run's end still fire before the drain — the same ordering
// the hierarchical engine uses in internal/core.
func FailureSteps(plan []workload.FailureEvent, periodSeconds float64) []int {
	at := make([]int, len(plan))
	for i, f := range plan {
		at[i] = int(math.Ceil(f.At / periodSeconds))
	}
	return at
}

// ApplyPlannedFailures fires the plan entries scheduled for step k, in
// plan order. Entries addressing a (Module, Comp) slot the plant does not
// have are skipped, so one scenario plan serves clusters of any shape.
func (p *Plant) ApplyPlannedFailures(plan []workload.FailureEvent, failAt []int, k int) error {
	for i, f := range plan {
		if failAt[i] != k {
			continue
		}
		if f.Module < 0 || f.Module >= len(p.modules) {
			continue
		}
		if f.Comp < 0 || f.Comp >= len(p.modules[f.Module]) {
			continue
		}
		var err error
		if f.Repair {
			err = p.Repair(f.Module, f.Comp)
		} else {
			err = p.Fail(f.Module, f.Comp)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
