package queue

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParamsValidate(t *testing.T) {
	valid := Params{Lambda: 10, C: 0.02, Phi: 0.5, T: 30}
	if err := valid.Validate(); err != nil {
		t.Errorf("valid params: %v", err)
	}
	cases := []Params{
		{Lambda: -1, C: 0.02, Phi: 0.5, T: 30},
		{Lambda: 10, C: 0, Phi: 0.5, T: 30},
		{Lambda: 10, C: 0.02, Phi: 0, T: 30},
		{Lambda: 10, C: 0.02, Phi: 1.1, T: 30},
		{Lambda: 10, C: 0.02, Phi: 0.5, T: 0},
		{Lambda: math.NaN(), C: 0.02, Phi: 0.5, T: 30},
	}
	for i, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d (%+v): want error", i, p)
		}
	}
}

func TestStepGrowsWhenOverloaded(t *testing.T) {
	// λ = 100 req/s, capacity = φ/c = 0.5/0.02 = 25 req/s → +75 req/s.
	s, err := Step(State{Q: 10}, Params{Lambda: 100, C: 0.02, Phi: 0.5, T: 1})
	if err != nil {
		t.Fatal(err)
	}
	if want := 10 + 75.0; math.Abs(s.Q-want) > 1e-9 {
		t.Errorf("Q = %v, want %v", s.Q, want)
	}
	if want := (1 + 85.0) * 0.02 / 0.5; math.Abs(s.R-want) > 1e-9 {
		t.Errorf("R = %v, want %v", s.R, want)
	}
}

func TestStepDrainsWhenUnderloaded(t *testing.T) {
	// capacity 50 req/s vs λ = 10 → queue drains 40/s, clamped at 0.
	s, err := Step(State{Q: 20}, Params{Lambda: 10, C: 0.02, Phi: 1, T: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.Q != 0 {
		t.Errorf("Q = %v, want clamp to 0", s.Q)
	}
	if want := 0.02; math.Abs(s.R-want) > 1e-9 {
		t.Errorf("R = %v, want bare processing time %v", s.R, want)
	}
}

func TestStepEquilibrium(t *testing.T) {
	// λ exactly equal to capacity: queue unchanged.
	s, err := Step(State{Q: 5}, Params{Lambda: 25, C: 0.04, Phi: 1, T: 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Q-5) > 1e-9 {
		t.Errorf("Q = %v, want 5", s.Q)
	}
}

func TestStepRejectsBadParams(t *testing.T) {
	if _, err := Step(State{}, Params{Lambda: 1, C: 0.02, Phi: 2, T: 1}); err == nil {
		t.Error("phi > 1: want error")
	}
}

func TestQueueNeverNegativeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := func(steps uint8) bool {
		s := State{}
		for i := 0; i < int(steps%50)+1; i++ {
			p := Params{
				Lambda: rng.Float64() * 100,
				C:      0.01 + rng.Float64()*0.05,
				Phi:    0.1 + rng.Float64()*0.9,
				T:      30,
			}
			next, err := Step(s, p)
			if err != nil || next.Q < 0 || next.R < 0 {
				return false
			}
			s = next
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestResponseTimeMonotonicInQueue(t *testing.T) {
	if ResponseTime(10, 0.02, 1) <= ResponseTime(5, 0.02, 1) {
		t.Error("response time should grow with queue length")
	}
	if got := ResponseTime(0, 0.02, 0); !math.IsInf(got, 1) {
		t.Errorf("phi=0: got %v, want +Inf", got)
	}
	if got := ResponseTime(0, 0, 1); !math.IsInf(got, 1) {
		t.Errorf("c=0: got %v, want +Inf", got)
	}
}

func TestHigherFrequencyNeverHurts(t *testing.T) {
	// For the same state/inputs, a higher φ yields shorter or equal
	// response time and lower or equal queue.
	rng := rand.New(rand.NewSource(7))
	f := func() bool {
		q0 := rng.Float64() * 50
		lambda := rng.Float64() * 80
		c := 0.01 + rng.Float64()*0.04
		pa := 0.1 + rng.Float64()*0.8
		pb := pa + rng.Float64()*(1-pa)
		sa, errA := Step(State{Q: q0}, Params{Lambda: lambda, C: c, Phi: pa, T: 30})
		sb, errB := Step(State{Q: q0}, Params{Lambda: lambda, C: c, Phi: pb, T: 30})
		if errA != nil || errB != nil {
			return false
		}
		return sb.Q <= sa.Q+1e-9 && sb.R <= sa.R+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestUtilizationAndServiceRate(t *testing.T) {
	if got := ServiceRate(0.02, 1); math.Abs(got-50) > 1e-9 {
		t.Errorf("ServiceRate = %v, want 50", got)
	}
	if got := ServiceRate(0, 1); got != 0 {
		t.Errorf("ServiceRate(c=0) = %v, want 0", got)
	}
	if got := Utilization(25, 0.02, 1); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("Utilization = %v, want 0.5", got)
	}
	if got := Utilization(25, 0, 1); !math.IsInf(got, 1) {
		t.Errorf("Utilization(c=0) = %v, want +Inf", got)
	}
}

func TestStablePhi(t *testing.T) {
	candidates := []float64{0.25, 0.5, 0.75, 1.0}
	// λ=20, c=0.02 → utilization at φ: 0.4/φ. Need util < 0.9 → φ > 0.444.
	phi, ok := StablePhi(20, 0.02, 0.9, candidates)
	if !ok || phi != 0.5 {
		t.Errorf("StablePhi = %v,%v, want 0.5,true", phi, ok)
	}
	// Impossible load.
	if _, ok := StablePhi(1000, 0.02, 0.9, candidates); ok {
		t.Error("overload: want ok=false")
	}
	// Bad candidates are skipped.
	phi, ok = StablePhi(20, 0.02, 0.9, []float64{-1, 0, 2, 1})
	if !ok || phi != 1 {
		t.Errorf("StablePhi with junk candidates = %v,%v, want 1,true", phi, ok)
	}
}
