// Package queue implements the fluid queueing model the paper's controllers
// use to predict computer behaviour (Eqs. 5–7 of §4.1):
//
//	q̂(k+1) = q(k) + (λ̂(k) − φ(k)/ĉ(k)) · T          (queue length)
//	r̂(k+1) = (1 + q̂(k+1)) · ĉ(k)/φ(k)               (response time)
//	ψ̂(k+1) = a + φ²(k)                               (power)
//
// where λ is the request arrival rate, ĉ the estimated processing time per
// request at full speed, and φ = u/u_max the frequency scaling factor.
// The model is deliberately simple — it is the controller's internal model,
// not the plant; the plant in internal/cluster is a request-level
// discrete-event simulation.
package queue

import (
	"fmt"
	"math"
)

// State is the modelled state of one computer's queue.
type State struct {
	// Q is the queue length in requests (fluid, may be fractional).
	Q float64
	// R is the predicted average response time in seconds for requests
	// arriving in the last step.
	R float64
}

// Params bundles the per-step model inputs.
type Params struct {
	// Lambda is the request arrival rate, requests/second.
	Lambda float64
	// C is the processing time per request at full speed, seconds.
	C float64
	// Phi is the frequency scaling factor u/u_max in (0, 1].
	Phi float64
	// T is the step length in seconds.
	T float64
}

// Validate reports whether the parameters are physically meaningful.
func (p Params) Validate() error {
	if p.Lambda < 0 || math.IsNaN(p.Lambda) {
		return fmt.Errorf("queue: lambda %v < 0", p.Lambda)
	}
	if p.C <= 0 {
		return fmt.Errorf("queue: processing time %v <= 0", p.C)
	}
	if p.Phi <= 0 || p.Phi > 1 {
		return fmt.Errorf("queue: phi %v outside (0, 1]", p.Phi)
	}
	if p.T <= 0 {
		return fmt.Errorf("queue: step %v <= 0", p.T)
	}
	return nil
}

// Step advances the fluid model one step of length p.T from state s and
// returns the predicted next state. The queue length is clamped at zero
// (the fluid model otherwise goes negative when capacity exceeds arrivals).
func Step(s State, p Params) (State, error) {
	if err := p.Validate(); err != nil {
		return State{}, err
	}
	q := s.Q + (p.Lambda-p.Phi/p.C)*p.T
	if q < 0 {
		q = 0
	}
	r := (1 + q) * p.C / p.Phi
	return State{Q: q, R: r}, nil
}

// ResponseTime returns the predicted average response time for a queue of
// length q at processing time c and scaling factor phi (Eq. 6).
func ResponseTime(q, c, phi float64) float64 {
	if phi <= 0 || c <= 0 {
		return math.Inf(1)
	}
	return (1 + q) * c / phi
}

// ServiceRate returns the modelled service rate φ/c in requests/second.
func ServiceRate(c, phi float64) float64 {
	if c <= 0 {
		return 0
	}
	return phi / c
}

// Utilization returns λ·c/φ, the offered load relative to capacity; values
// ≥ 1 mean the queue is unstable at these settings.
func Utilization(lambda, c, phi float64) float64 {
	rate := ServiceRate(c, phi)
	if rate <= 0 {
		return math.Inf(1)
	}
	return lambda / rate
}

// StablePhi returns the smallest scaling factor from the candidate set that
// keeps utilization below the given target (< 1), or false if none does.
// Controllers use it to prune infeasible branches early.
func StablePhi(lambda, c, target float64, candidates []float64) (float64, bool) {
	best := math.Inf(1)
	found := false
	for _, phi := range candidates {
		if phi <= 0 || phi > 1 {
			continue
		}
		if Utilization(lambda, c, phi) < target && phi < best {
			best, found = phi, true
		}
	}
	if !found {
		return 0, false
	}
	return best, true
}
