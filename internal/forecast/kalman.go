// Package forecast implements the workload-estimation substrate of the
// framework: a Kalman filter over a local linear trend structural model
// (the ARIMA-style predictor of §4.1 of the paper), an exponentially
// weighted moving-average (EWMA) filter for request processing times, a
// running uncertainty band |actual − forecast| used by the L1 controller's
// chattering mitigation, and a grid tuner that fits filter noise parameters
// on a workload prefix as §4.3 prescribes.
package forecast

import (
	"fmt"
	"math"
)

// Kalman is a two-state Kalman filter over the local linear trend model
//
//	level(k+1) = level(k) + trend(k) + w_l,   w_l ~ N(0, QLevel)
//	trend(k+1) = trend(k)            + w_t,   w_t ~ N(0, QTrend)
//	obs(k)     = level(k)            + v,     v   ~ N(0, RObs)
//
// which is the structural-time-series equivalent of the ARIMA forecasting
// set-up the paper implements with a Kalman filter. Construct with
// NewKalman; the zero value is not usable.
type Kalman struct {
	// Model noise parameters.
	qLevel, qTrend, rObs float64

	// State estimate [level, trend] and covariance.
	level, trend float64
	p            [2][2]float64

	steps int
}

// NewKalman returns a filter with the given process noise variances
// (qLevel, qTrend) and observation noise variance (rObs). Non-positive
// variances are an error except qTrend, which may be zero for a local level
// model.
func NewKalman(qLevel, qTrend, rObs float64) (*Kalman, error) {
	if qLevel <= 0 {
		return nil, fmt.Errorf("forecast: qLevel %v must be > 0", qLevel)
	}
	if qTrend < 0 {
		return nil, fmt.Errorf("forecast: qTrend %v must be >= 0", qTrend)
	}
	if rObs <= 0 {
		return nil, fmt.Errorf("forecast: rObs %v must be > 0", rObs)
	}
	k := &Kalman{qLevel: qLevel, qTrend: qTrend, rObs: rObs}
	// Diffuse-ish prior: large uncertainty so early observations dominate.
	k.p = [2][2]float64{{1e6, 0}, {0, 1e6}}
	return k, nil
}

// Observe folds a new measurement into the filter (predict + update) and
// returns the one-step-ahead forecast made *before* this observation, which
// is what forecast-error tracking needs.
func (k *Kalman) Observe(y float64) (priorForecast float64) {
	priorForecast = k.level + k.trend

	if k.steps == 0 {
		// First observation: anchor the state directly instead of
		// running the gain update against the diffuse prior. The
		// covariance must be reset consistently with the anchored state:
		// one observation pins the level to within the observation noise
		// (variance rObs) but carries no information about the trend,
		// whose prior (plus process noise) survives untouched, with no
		// level/trend cross-covariance. Running the gain update and then
		// overwriting the state would leave p as if the filter had
		// converged through the gain — in particular a roughly halved
		// trend variance — making the next few forecasts under-react to
		// the emerging trend.
		k.level = y
		k.trend = 0
		k.p = [2][2]float64{{k.rObs, 0}, {0, k.p[1][1] + k.qTrend}}
		k.steps++
		return priorForecast
	}

	// Predict.
	level := k.level + k.trend
	trend := k.trend
	var p [2][2]float64
	p[0][0] = k.p[0][0] + k.p[0][1] + k.p[1][0] + k.p[1][1] + k.qLevel
	p[0][1] = k.p[0][1] + k.p[1][1]
	p[1][0] = k.p[1][0] + k.p[1][1]
	p[1][1] = k.p[1][1] + k.qTrend

	// Update with H = [1 0].
	s := p[0][0] + k.rObs
	k0 := p[0][0] / s
	k1 := p[1][0] / s
	innov := y - level
	k.level = level + k0*innov
	k.trend = trend + k1*innov
	k.p[0][0] = (1 - k0) * p[0][0]
	k.p[0][1] = (1 - k0) * p[0][1]
	k.p[1][0] = p[1][0] - k1*p[0][0]
	k.p[1][1] = p[1][1] - k1*p[0][1]

	k.steps++
	return priorForecast
}

// Forecast returns the h-step-ahead prediction (h ≥ 1) from the current
// state: level + h·trend. Before any observation it returns 0.
func (k *Kalman) Forecast(h int) float64 {
	if k.steps == 0 {
		return 0
	}
	if h < 1 {
		h = 1
	}
	return k.level + float64(h)*k.trend
}

// Level returns the current level estimate.
func (k *Kalman) Level() float64 { return k.level }

// Trend returns the current trend estimate.
func (k *Kalman) Trend() float64 { return k.trend }

// Steps returns the number of observations folded in so far.
func (k *Kalman) Steps() int { return k.steps }

// Params returns the filter's noise parameters (qLevel, qTrend, rObs),
// e.g. to instantiate fresh filters with tuned settings.
func (k *Kalman) Params() (qLevel, qTrend, rObs float64) {
	return k.qLevel, k.qTrend, k.rObs
}

// Reset clears the filter state but keeps the noise parameters.
func (k *Kalman) Reset() {
	k.level, k.trend, k.steps = 0, 0, 0
	k.p = [2][2]float64{{1e6, 0}, {0, 1e6}}
}

// TuneKalman grid-searches (qLevel, qTrend, rObs) multipliers around the
// signal's variance to minimize one-step-ahead RMSE on the training series,
// mirroring the paper's "parameters of the Kalman filter were first tuned
// using an initial portion of the workload". It returns the fitted filter
// (already warmed on train) and the achieved RMSE.
func TuneKalman(train []float64) (*Kalman, float64, error) {
	if len(train) < 8 {
		return nil, 0, fmt.Errorf("forecast: need >= 8 training points, got %d", len(train))
	}
	mean, varr := 0.0, 0.0
	for _, v := range train {
		mean += v
	}
	mean /= float64(len(train))
	for _, v := range train {
		varr += (v - mean) * (v - mean)
	}
	varr /= float64(len(train))
	if varr <= 0 {
		varr = 1
	}

	grid := []float64{1e-4, 1e-3, 1e-2, 1e-1, 1}
	bestRMSE := math.Inf(1)
	var bestQ, bestT, bestR float64
	for _, ql := range grid {
		for _, qt := range grid {
			for _, r := range []float64{1e-2, 1e-1, 1, 10} {
				kf, err := NewKalman(ql*varr, qt*varr*0.1, r*varr)
				if err != nil {
					return nil, 0, err
				}
				sse := 0.0
				n := 0
				for i, y := range train {
					pred := kf.Observe(y)
					if i >= 4 { // skip burn-in
						d := pred - y
						sse += d * d
						n++
					}
				}
				rmse := math.Sqrt(sse / float64(n))
				if rmse < bestRMSE {
					bestRMSE, bestQ, bestT, bestR = rmse, ql*varr, qt*varr*0.1, r*varr
				}
			}
		}
	}
	kf, err := NewKalman(bestQ, bestT, bestR)
	if err != nil {
		return nil, 0, err
	}
	for _, y := range train {
		kf.Observe(y)
	}
	return kf, bestRMSE, nil
}
