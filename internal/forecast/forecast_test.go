package forecast

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewKalmanValidation(t *testing.T) {
	cases := []struct {
		ql, qt, r float64
		ok        bool
	}{
		{1, 1, 1, true},
		{1, 0, 1, true}, // local level model
		{0, 1, 1, false},
		{1, -1, 1, false},
		{1, 1, 0, false},
		{-1, 1, 1, false},
	}
	for _, c := range cases {
		_, err := NewKalman(c.ql, c.qt, c.r)
		if (err == nil) != c.ok {
			t.Errorf("NewKalman(%v,%v,%v) err = %v, want ok=%v", c.ql, c.qt, c.r, err, c.ok)
		}
	}
}

func TestKalmanConvergesToConstant(t *testing.T) {
	kf, err := NewKalman(0.01, 0.001, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		kf.Observe(50)
	}
	if got := kf.Forecast(1); math.Abs(got-50) > 0.5 {
		t.Errorf("Forecast after constant stream = %v, want ≈50", got)
	}
	if math.Abs(kf.Trend()) > 0.1 {
		t.Errorf("Trend = %v, want ≈0", kf.Trend())
	}
}

func TestKalmanTracksLinearTrend(t *testing.T) {
	kf, err := NewKalman(0.1, 0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		kf.Observe(10 + 2*float64(i))
	}
	// Next value should be ≈ 10 + 2*300.
	if got, want := kf.Forecast(1), 610.0; math.Abs(got-want) > 5 {
		t.Errorf("Forecast = %v, want ≈%v", got, want)
	}
	if got := kf.Trend(); math.Abs(got-2) > 0.2 {
		t.Errorf("Trend = %v, want ≈2", got)
	}
	// Multi-step forecast extrapolates the trend.
	if got, want := kf.Forecast(5), kf.Level()+5*kf.Trend(); got != want {
		t.Errorf("Forecast(5) = %v, want %v", got, want)
	}
}

func TestKalmanForecastBeforeData(t *testing.T) {
	kf, err := NewKalman(1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if kf.Forecast(1) != 0 {
		t.Error("Forecast before data should be 0")
	}
	if kf.Steps() != 0 {
		t.Error("Steps before data should be 0")
	}
}

func TestKalmanFirstObservationAnchors(t *testing.T) {
	kf, err := NewKalman(1, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	kf.Observe(1000)
	if got := kf.Level(); math.Abs(got-1000) > 1e-9 {
		t.Errorf("Level after first obs = %v, want 1000", got)
	}
}

func TestKalmanForecastClampsHorizon(t *testing.T) {
	kf, _ := NewKalman(1, 0.1, 1)
	kf.Observe(5)
	kf.Observe(6)
	if kf.Forecast(0) != kf.Forecast(1) {
		t.Error("Forecast(0) should behave as Forecast(1)")
	}
}

func TestKalmanReset(t *testing.T) {
	kf, _ := NewKalman(1, 0.1, 1)
	kf.Observe(5)
	kf.Reset()
	if kf.Steps() != 0 || kf.Level() != 0 || kf.Forecast(1) != 0 {
		t.Error("Reset did not clear state")
	}
}

func TestKalmanBeatsNaiveOnNoisyTrend(t *testing.T) {
	// One-step RMSE of the tuned filter should beat the naive
	// "tomorrow = today" predictor on a noisy trending signal.
	rng := rand.New(rand.NewSource(4))
	n := 400
	signal := make([]float64, n)
	for i := range signal {
		signal[i] = 100 + 3*float64(i) + rng.NormFloat64()*5
	}
	kf, _, err := TuneKalman(signal[:120])
	if err != nil {
		t.Fatal(err)
	}
	var sseK, sseN float64
	prev := signal[119]
	for _, y := range signal[120:] {
		pk := kf.Forecast(1)
		kf.Observe(y)
		dk, dn := pk-y, prev-y
		sseK += dk * dk
		sseN += dn * dn
		prev = y
	}
	if sseK >= sseN {
		t.Errorf("Kalman SSE %v not better than naive %v on trending signal", sseK, sseN)
	}
}

func TestTuneKalmanValidation(t *testing.T) {
	if _, _, err := TuneKalman([]float64{1, 2, 3}); err == nil {
		t.Error("short training set: want error")
	}
	// Constant series must not error out (variance guard).
	kf, rmse, err := TuneKalman(make([]float64, 50))
	if err != nil {
		t.Fatalf("constant series: %v", err)
	}
	if kf == nil || rmse < 0 {
		t.Error("constant series: want valid filter and rmse >= 0")
	}
}

func TestObserveReturnsPriorForecast(t *testing.T) {
	kf, _ := NewKalman(0.1, 0.01, 1)
	kf.Observe(10)
	kf.Observe(12)
	before := kf.Forecast(1)
	prior := kf.Observe(14)
	if prior != before {
		t.Errorf("Observe returned %v, want prior forecast %v", prior, before)
	}
}

func TestEWMAValidation(t *testing.T) {
	for _, pi := range []float64{-0.1, 0, 1.01} {
		if _, err := NewEWMA(pi); err == nil {
			t.Errorf("NewEWMA(%v): want error", pi)
		}
	}
	if _, err := NewEWMA(1); err != nil {
		t.Errorf("NewEWMA(1): %v", err)
	}
}

func TestEWMARecurrence(t *testing.T) {
	e, err := NewEWMA(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if e.Started() {
		t.Error("Started before observation")
	}
	e.Observe(10) // initializes
	if got := e.Value(); got != 10 {
		t.Errorf("initial Value = %v, want 10", got)
	}
	got := e.Observe(20) // 0.1*20 + 0.9*10 = 11
	if math.Abs(got-11) > 1e-12 {
		t.Errorf("Value = %v, want 11", got)
	}
}

func TestEWMABoundedByInputRange(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	f := func(n uint8) bool {
		e, err := NewEWMA(0.3)
		if err != nil {
			return false
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < int(n%100)+1; i++ {
			x := rng.Float64()*200 - 100
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
			e.Observe(x)
		}
		return e.Value() >= lo-1e-9 && e.Value() <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBandTracksAbsoluteError(t *testing.T) {
	b, err := NewBand(1) // pi=1: band equals last |error|
	if err != nil {
		t.Fatal(err)
	}
	b.Observe(10, 13)
	if got := b.Delta(); got != 3 {
		t.Errorf("Delta = %v, want 3", got)
	}
	b.Observe(10, 6)
	if got := b.Delta(); got != 4 {
		t.Errorf("Delta = %v, want 4", got)
	}
}

func TestBandNonNegative(t *testing.T) {
	b, err := NewBand(0.5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		b.Observe(rng.NormFloat64()*10, rng.NormFloat64()*10)
		if b.Delta() < 0 {
			t.Fatalf("Delta went negative: %v", b.Delta())
		}
	}
}

func TestBandValidation(t *testing.T) {
	if _, err := NewBand(0); err == nil {
		t.Error("NewBand(0): want error")
	}
}
