package forecast

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewKalmanValidation(t *testing.T) {
	cases := []struct {
		ql, qt, r float64
		ok        bool
	}{
		{1, 1, 1, true},
		{1, 0, 1, true}, // local level model
		{0, 1, 1, false},
		{1, -1, 1, false},
		{1, 1, 0, false},
		{-1, 1, 1, false},
	}
	for _, c := range cases {
		_, err := NewKalman(c.ql, c.qt, c.r)
		if (err == nil) != c.ok {
			t.Errorf("NewKalman(%v,%v,%v) err = %v, want ok=%v", c.ql, c.qt, c.r, err, c.ok)
		}
	}
}

func TestKalmanConvergesToConstant(t *testing.T) {
	kf, err := NewKalman(0.01, 0.001, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		kf.Observe(50)
	}
	if got := kf.Forecast(1); math.Abs(got-50) > 0.5 {
		t.Errorf("Forecast after constant stream = %v, want ≈50", got)
	}
	if math.Abs(kf.Trend()) > 0.1 {
		t.Errorf("Trend = %v, want ≈0", kf.Trend())
	}
}

func TestKalmanTracksLinearTrend(t *testing.T) {
	kf, err := NewKalman(0.1, 0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		kf.Observe(10 + 2*float64(i))
	}
	// Next value should be ≈ 10 + 2*300.
	if got, want := kf.Forecast(1), 610.0; math.Abs(got-want) > 5 {
		t.Errorf("Forecast = %v, want ≈%v", got, want)
	}
	if got := kf.Trend(); math.Abs(got-2) > 0.2 {
		t.Errorf("Trend = %v, want ≈2", got)
	}
	// Multi-step forecast extrapolates the trend.
	if got, want := kf.Forecast(5), kf.Level()+5*kf.Trend(); got != want {
		t.Errorf("Forecast(5) = %v, want %v", got, want)
	}
}

func TestKalmanForecastBeforeData(t *testing.T) {
	kf, err := NewKalman(1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if kf.Forecast(1) != 0 {
		t.Error("Forecast before data should be 0")
	}
	if kf.Steps() != 0 {
		t.Error("Steps before data should be 0")
	}
}

func TestKalmanFirstObservationAnchors(t *testing.T) {
	kf, err := NewKalman(1, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	kf.Observe(1000)
	if got := kf.Level(); math.Abs(got-1000) > 1e-9 {
		t.Errorf("Level after first obs = %v, want 1000", got)
	}
}

// refKalman is a plain textbook predict/update recursion with explicit
// initial state and covariance — the oracle for pinning the anchored
// first-observation semantics.
type refKalman struct {
	qLevel, qTrend, rObs float64
	level, trend         float64
	p                    [2][2]float64
}

func (k *refKalman) observe(y float64) {
	level := k.level + k.trend
	trend := k.trend
	var p [2][2]float64
	p[0][0] = k.p[0][0] + k.p[0][1] + k.p[1][0] + k.p[1][1] + k.qLevel
	p[0][1] = k.p[0][1] + k.p[1][1]
	p[1][0] = k.p[1][0] + k.p[1][1]
	p[1][1] = k.p[1][1] + k.qTrend
	s := p[0][0] + k.rObs
	k0 := p[0][0] / s
	k1 := p[1][0] / s
	innov := y - level
	k.level = level + k0*innov
	k.trend = trend + k1*innov
	k.p[0][0] = (1 - k0) * p[0][0]
	k.p[0][1] = (1 - k0) * p[0][1]
	k.p[1][0] = p[1][0] - k1*p[0][0]
	k.p[1][1] = p[1][1] - k1*p[0][1]
}

// TestKalmanFirstObservationCovarianceConsistent is the regression test
// for the anchored-start bug: the first observation used to overwrite
// level/trend *after* the gain update, leaving the covariance as if the
// filter had converged through the gain (notably a halved trend
// variance), so early forecasts under-reacted to an emerging trend. The
// filter must now behave exactly like a textbook recursion initialized
// from the anchored state (level = y₀, trend = 0) with the consistent
// covariance diag(rObs, P_trend + qTrend).
func TestKalmanFirstObservationCovarianceConsistent(t *testing.T) {
	for _, params := range [][3]float64{
		{1, 0.1, 10},
		{4, 0.4, 1e5}, // observation noise comparable to the diffuse prior
		{0.5, 0, 2},   // local level model
	} {
		kf, err := NewKalman(params[0], params[1], params[2])
		if err != nil {
			t.Fatal(err)
		}
		obs := []float64{10, 30, 50, 70, 90, 110}
		ref := &refKalman{
			qLevel: params[0], qTrend: params[1], rObs: params[2],
			level: obs[0], trend: 0,
			p: [2][2]float64{{params[2], 0}, {0, 1e6 + params[1]}},
		}
		kf.Observe(obs[0])
		if kf.Level() != ref.level || kf.Trend() != ref.trend {
			t.Fatalf("params %v: anchored state (%v, %v), want (%v, 0)", params, kf.Level(), kf.Trend(), obs[0])
		}
		for step, y := range obs[1:] {
			kf.Observe(y)
			ref.observe(y)
			if kf.Level() != ref.level || kf.Trend() != ref.trend {
				t.Errorf("params %v step %d: state (%v, %v) diverged from consistent recursion (%v, %v)",
					params, step+2, kf.Level(), kf.Trend(), ref.level, ref.trend)
			}
		}
	}
}

// TestKalmanEarlyTrendPickupOnRamp checks the user-visible symptom: on a
// noiseless ramp the filter's trend information is all in the first few
// steps, and with the consistent covariance the two-observation forecast
// must already extrapolate the ramp closely.
func TestKalmanEarlyTrendPickupOnRamp(t *testing.T) {
	kf, err := NewKalman(1, 0.1, 10)
	if err != nil {
		t.Fatal(err)
	}
	kf.Observe(100)
	kf.Observe(120)
	// Third point of the ramp is 140; the trend prior is still diffuse
	// after one observation, so the second must transfer nearly the full
	// +20 step into the trend estimate.
	if got := kf.Forecast(1); math.Abs(got-140) > 1 {
		t.Errorf("Forecast after two ramp points = %v, want ≈140", got)
	}
	if trend := kf.Trend(); math.Abs(trend-20) > 1 {
		t.Errorf("Trend after two ramp points = %v, want ≈20", trend)
	}
}

func TestKalmanForecastClampsHorizon(t *testing.T) {
	kf, _ := NewKalman(1, 0.1, 1)
	kf.Observe(5)
	kf.Observe(6)
	if kf.Forecast(0) != kf.Forecast(1) {
		t.Error("Forecast(0) should behave as Forecast(1)")
	}
}

func TestKalmanReset(t *testing.T) {
	kf, _ := NewKalman(1, 0.1, 1)
	kf.Observe(5)
	kf.Reset()
	if kf.Steps() != 0 || kf.Level() != 0 || kf.Forecast(1) != 0 {
		t.Error("Reset did not clear state")
	}
}

func TestKalmanBeatsNaiveOnNoisyTrend(t *testing.T) {
	// One-step RMSE of the tuned filter should beat the naive
	// "tomorrow = today" predictor on a noisy trending signal.
	rng := rand.New(rand.NewSource(4))
	n := 400
	signal := make([]float64, n)
	for i := range signal {
		signal[i] = 100 + 3*float64(i) + rng.NormFloat64()*5
	}
	kf, _, err := TuneKalman(signal[:120])
	if err != nil {
		t.Fatal(err)
	}
	var sseK, sseN float64
	prev := signal[119]
	for _, y := range signal[120:] {
		pk := kf.Forecast(1)
		kf.Observe(y)
		dk, dn := pk-y, prev-y
		sseK += dk * dk
		sseN += dn * dn
		prev = y
	}
	if sseK >= sseN {
		t.Errorf("Kalman SSE %v not better than naive %v on trending signal", sseK, sseN)
	}
}

func TestTuneKalmanValidation(t *testing.T) {
	if _, _, err := TuneKalman([]float64{1, 2, 3}); err == nil {
		t.Error("short training set: want error")
	}
	// Constant series must not error out (variance guard).
	kf, rmse, err := TuneKalman(make([]float64, 50))
	if err != nil {
		t.Fatalf("constant series: %v", err)
	}
	if kf == nil || rmse < 0 {
		t.Error("constant series: want valid filter and rmse >= 0")
	}
}

func TestObserveReturnsPriorForecast(t *testing.T) {
	kf, _ := NewKalman(0.1, 0.01, 1)
	kf.Observe(10)
	kf.Observe(12)
	before := kf.Forecast(1)
	prior := kf.Observe(14)
	if prior != before {
		t.Errorf("Observe returned %v, want prior forecast %v", prior, before)
	}
}

func TestEWMAValidation(t *testing.T) {
	for _, pi := range []float64{-0.1, 0, 1.01} {
		if _, err := NewEWMA(pi); err == nil {
			t.Errorf("NewEWMA(%v): want error", pi)
		}
	}
	if _, err := NewEWMA(1); err != nil {
		t.Errorf("NewEWMA(1): %v", err)
	}
}

func TestEWMARecurrence(t *testing.T) {
	e, err := NewEWMA(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if e.Started() {
		t.Error("Started before observation")
	}
	e.Observe(10) // initializes
	if got := e.Value(); got != 10 {
		t.Errorf("initial Value = %v, want 10", got)
	}
	got := e.Observe(20) // 0.1*20 + 0.9*10 = 11
	if math.Abs(got-11) > 1e-12 {
		t.Errorf("Value = %v, want 11", got)
	}
}

func TestEWMABoundedByInputRange(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	f := func(n uint8) bool {
		e, err := NewEWMA(0.3)
		if err != nil {
			return false
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < int(n%100)+1; i++ {
			x := rng.Float64()*200 - 100
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
			e.Observe(x)
		}
		return e.Value() >= lo-1e-9 && e.Value() <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBandTracksAbsoluteError(t *testing.T) {
	b, err := NewBand(1) // pi=1: band equals last |error|
	if err != nil {
		t.Fatal(err)
	}
	b.Observe(10, 13)
	if got := b.Delta(); got != 3 {
		t.Errorf("Delta = %v, want 3", got)
	}
	b.Observe(10, 6)
	if got := b.Delta(); got != 4 {
		t.Errorf("Delta = %v, want 4", got)
	}
}

func TestBandNonNegative(t *testing.T) {
	b, err := NewBand(0.5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		b.Observe(rng.NormFloat64()*10, rng.NormFloat64()*10)
		if b.Delta() < 0 {
			t.Fatalf("Delta went negative: %v", b.Delta())
		}
	}
}

func TestBandValidation(t *testing.T) {
	if _, err := NewBand(0); err == nil {
		t.Error("NewBand(0): want error")
	}
}
