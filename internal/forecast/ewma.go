package forecast

import "fmt"

// EWMA is the exponentially weighted moving-average filter the paper uses
// for processing-time estimation: ĉ(k+1) = π·c(k) + (1−π)·ĉ(k−1) with
// smoothing constant π (the paper uses π = 0.1). Construct with NewEWMA.
type EWMA struct {
	pi      float64
	value   float64
	started bool
}

// NewEWMA returns an EWMA filter with smoothing constant pi in (0, 1].
func NewEWMA(pi float64) (*EWMA, error) {
	if pi <= 0 || pi > 1 {
		return nil, fmt.Errorf("forecast: EWMA smoothing %v outside (0, 1]", pi)
	}
	return &EWMA{pi: pi}, nil
}

// Observe folds a new sample in and returns the updated estimate. The first
// sample initializes the estimate directly.
func (e *EWMA) Observe(x float64) float64 {
	if !e.started {
		e.value, e.started = x, true
		return e.value
	}
	e.value = e.pi*x + (1-e.pi)*e.value
	return e.value
}

// Value returns the current estimate (0 before any observation).
func (e *EWMA) Value() float64 { return e.value }

// Started reports whether at least one sample has been observed.
func (e *EWMA) Started() bool { return e.started }

// Band tracks the running mean absolute one-step forecast error δ, the
// "uncertainty band" λ̂ ± δ of §4.2 used for chattering mitigation. It is an
// EWMA over |error| so recent accuracy dominates. The zero value is not
// usable; construct with NewBand.
type Band struct {
	ewma *EWMA
}

// NewBand returns an uncertainty-band tracker with the given smoothing
// constant (0 < pi ≤ 1); larger pi adapts faster.
func NewBand(pi float64) (*Band, error) {
	e, err := NewEWMA(pi)
	if err != nil {
		return nil, err
	}
	return &Band{ewma: e}, nil
}

// Observe records a forecast/actual pair and returns the updated δ.
func (b *Band) Observe(forecast, actual float64) float64 {
	err := forecast - actual
	if err < 0 {
		err = -err
	}
	return b.ewma.Observe(err)
}

// Delta returns the current band half-width δ.
func (b *Band) Delta() float64 { return b.ewma.Value() }
