// Package hpmdirective is the suite's self-check: every `//hpm:`
// comment in the tree must be a directive the parser recognizes, with a
// justification where one is required.
//
// Without this, a typo'd annotation (`//hpm:wallclok`) would silently
// fail to escape its site — or worse, sit as dead documentation while
// the analyzer it was meant to satisfy never sees it. Running the check
// as an analyzer means CI gets it for free from the hpmvet step.
package hpmdirective

import (
	"hierctl/internal/analysis"
	"hierctl/internal/analysis/directive"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "hpmdirective",
	Doc:  "flag unknown or malformed //hpm: directives (no typo'd dead annotations)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		_, problems := directive.ParseFile(pass.Fset, file)
		for _, p := range problems {
			pass.Report(analysis.Diagnostic{Pos: p.Pos, Message: p.Message})
		}
	}
	return nil
}
