package core

// Well-formed directives parse silently.
func sanctioned() int {
	x := 1 //hpm:wallclock observe-only overhead metric
	return x
}

// A typo'd kind is a diagnostic, not a silently dead annotation.
func typod() int {
	x := 2 //hpm:walclock observe-only // want `unknown //hpm: directive walclock`
	return x
}

// Escape kinds require a justification.
func unjustified() int {
	x := 3 //hpm:wallclock // want `//hpm:wallclock needs a justification`
	return x
}

var _, _, _ = sanctioned, typod, unjustified
