package hpmdirective_test

import (
	"testing"

	"hierctl/internal/analysis/analysistest"
	"hierctl/internal/analysis/hpmdirective"
)

func TestDirectiveSelfCheck(t *testing.T) {
	analysistest.Run(t, "testdata", hpmdirective.Analyzer, "hierctl/internal/core")
}
