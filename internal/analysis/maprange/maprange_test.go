package maprange_test

import (
	"testing"

	"hierctl/internal/analysis/analysistest"
	"hierctl/internal/analysis/maprange"
)

func TestMapRange(t *testing.T) {
	analysistest.Run(t, "testdata", maprange.Analyzer, "hierctl/internal/core")
}
