// Package maprange flags `for range` over maps in the deterministic
// simulation packages unless the loop is provably order-insensitive.
//
// Go randomizes map iteration order per iteration, so any map range
// whose effect depends on visit order is nondeterminism waiting for a
// replay test to find it. Two body shapes are recognized as safe:
//
//   - collect-then-sort: the body only appends into slices and a sort.*
//     call follows the loop in the same function;
//   - commutative accumulation: the body only performs order-insensitive
//     updates — `+=`, `|=`, counters, stores into another map, or
//     guarded max/min updates.
//
// Anything else needs an `//hpm:orderfree <justification>` directive on
// the `for` line (or the line above). The audit that introduced this
// analyzer found two real violations of the convention — approx.Table
// Save and Samples serialized cells in map order — fixed by sorting
// (see TestTableSaveDeterministic).
package maprange

import (
	"go/ast"
	"go/token"
	"go/types"

	"hierctl/internal/analysis"
	"hierctl/internal/analysis/directive"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "maprange",
	Doc:  "flag order-sensitive map iteration in deterministic simulation packages",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !analysis.IsDeterministic(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		dirs, _ := directive.ParseFile(pass.Fset, file)
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := pass.TypesInfo.Types[rng.X].Type
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				if len(rng.Body.List) == 0 {
					return true
				}
				if dirs.EscapedAt(pass.Fset, rng.Pos(), directive.Orderfree) {
					return true
				}
				if commutativeBody(rng.Body.List) {
					return true
				}
				if collectBody(rng.Body.List) && sortsAfter(fn.Body, rng.End()) {
					return true
				}
				pass.Reportf(rng.Pos(), "map iteration order is randomized: collect keys and sort, accumulate commutatively, or annotate //hpm:orderfree with a justification")
				return true
			})
		}
	}
	return nil
}

// commutativeBody reports whether every statement is an
// order-insensitive update: += / -= / |= / &= / ^= / *=, ++/--, a store
// into another map, a guarded max/min-style update, or continue.
func commutativeBody(stmts []ast.Stmt) bool {
	for _, st := range stmts {
		switch s := st.(type) {
		case *ast.IncDecStmt:
		case *ast.BranchStmt:
			if s.Tok != token.CONTINUE {
				return false
			}
		case *ast.AssignStmt:
			if !commutativeAssign(s) {
				return false
			}
		case *ast.IfStmt:
			// A guarded update (e.g. `if v > max { max = v }`) is safe as
			// long as the branches themselves are commutative; the
			// condition is assumed side-effect-free.
			if s.Init != nil || !commutativeBody(s.Body.List) {
				return false
			}
			if s.Else != nil {
				blk, ok := s.Else.(*ast.BlockStmt)
				if !ok || !commutativeBody(blk.List) {
					return false
				}
			}
		default:
			return false
		}
	}
	return true
}

// commutativeAssign accepts compound arithmetic/bitwise assignments and
// plain stores whose target is an index expression (writing into
// another map or a keyed slot — position determined by the key, not the
// visit order).
func commutativeAssign(s *ast.AssignStmt) bool {
	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
		token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		return true
	case token.ASSIGN:
		for _, lhs := range s.Lhs {
			if _, ok := lhs.(*ast.IndexExpr); !ok {
				return false
			}
		}
		return true
	}
	return false
}

// collectBody reports whether every statement only gathers elements:
// self-appends (`x = append(x, ...)`) or continue, possibly under an if.
func collectBody(stmts []ast.Stmt) bool {
	for _, st := range stmts {
		switch s := st.(type) {
		case *ast.BranchStmt:
			if s.Tok != token.CONTINUE {
				return false
			}
		case *ast.AssignStmt:
			if !isSelfAppend(s) {
				return false
			}
		case *ast.IfStmt:
			if s.Init != nil || !collectBody(s.Body.List) {
				return false
			}
			if s.Else != nil {
				blk, ok := s.Else.(*ast.BlockStmt)
				if !ok || !collectBody(blk.List) {
					return false
				}
			}
		default:
			return false
		}
	}
	return true
}

// isSelfAppend matches `x = append(x, ...)`.
func isSelfAppend(s *ast.AssignStmt) bool {
	if s.Tok != token.ASSIGN || len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return false
	}
	call, ok := s.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
		return false
	}
	lhs := exprString(s.Lhs[0])
	return lhs != "" && lhs == exprString(call.Args[0])
}

// sortsAfter reports whether a sort.* call appears after pos in body.
func sortsAfter(body *ast.BlockStmt, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == "sort" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// exprString renders simple expressions (identifiers and selector
// chains) for structural comparison.
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprString(x.X) + "[" + exprString(x.Index) + "]"
	case *ast.BasicLit:
		return x.Value
	}
	return ""
}
