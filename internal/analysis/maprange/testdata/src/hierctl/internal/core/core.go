package core

import "sort"

// An order-dependent fold over a map is flagged.
func hash(m map[string]int) int {
	h := 0
	for k, v := range m { // want `map iteration order is randomized`
		h = h*31 + len(k) + v
	}
	return h
}

// Commutative accumulation is order-insensitive: legal.
func total(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

// Collect-then-sort is order-insensitive: legal.
func keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Guarded writes into distinct map slots stay commutative: legal.
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		if v >= 0 {
			out[v] = k
		}
	}
	return out
}

// Min-tracking is order-insensitive but uses a guarded plain assignment
// the heuristics cannot prove; the annotation sanctions it. Deleting the
// directive re-surfaces the diagnostic.
func minVal(m map[string]int) int {
	best := 1 << 62
	//hpm:orderfree min over values is commutative
	for _, v := range m {
		if v < best {
			best = v
		}
	}
	return best
}
