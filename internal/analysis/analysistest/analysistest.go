// Package analysistest runs an analyzer over a golden testdata package
// and checks its diagnostics against `// want "regexp"` comments — a
// minimal offline analogue of golang.org/x/tools/go/analysis/analysistest.
//
// Testdata lives GOPATH-style under testdata/src/<import-path>/*.go.
// Imports of other packages under testdata/src are type-checked from
// source (so a suite can ship stub dependencies under the import paths
// the analyzers key on); all other imports resolve to standard-library
// export data via `go list -export`.
//
// A `// want` comment expects one diagnostic per quoted regexp on its
// line:
//
//	x := time.Now() // want `time\.Now`
//
// Unmatched expectations and unexpected diagnostics both fail the test.
package analysistest

import (
	"fmt"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"hierctl/internal/analysis"
	"hierctl/internal/analysis/load"
)

// Run loads the package rooted at dir/src/<pkgPath>, applies the
// analyzer, and matches diagnostics against the package's want
// comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgPath string) {
	t.Helper()
	ld, err := newLoader(dir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	pkg, err := ld.load(pkgPath)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	var got []analysis.Diagnostic
	pass := &analysis.Pass{
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Pkg,
		TypesInfo: pkg.Info,
		Report:    func(d analysis.Diagnostic) { got = append(got, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("analysistest: analyzer %s: %v", a.Name, err)
	}
	checkExpectations(t, pkg, got)
}

// loader resolves testdata-local packages from source and everything
// else from stdlib export data.
type loader struct {
	src     string
	fset    *token.FileSet
	pkgs    map[string]*load.Package
	stdlib  types.ImporterFrom
	loading map[string]bool
}

func newLoader(dir string) (*loader, error) {
	src := filepath.Join(dir, "src")
	ld := &loader{
		src:     src,
		fset:    token.NewFileSet(),
		pkgs:    map[string]*load.Package{},
		loading: map[string]bool{},
	}
	// Batch-resolve every non-testdata import reachable from testdata in
	// one `go list` run.
	ext, err := ld.externalImports()
	if err != nil {
		return nil, err
	}
	exports, err := load.StdlibExports(ext)
	if err != nil {
		return nil, err
	}
	ld.stdlib = load.ExportImporter(ld.fset, exports)
	return ld, nil
}

// externalImports scans every .go file under src for imports that do
// not resolve inside the testdata tree.
func (ld *loader) externalImports() ([]string, error) {
	seen := map[string]bool{}
	var out []string
	err := filepath.Walk(ld.src, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := parser.ParseFile(ld.fset, path, nil, parser.ImportsOnly)
		if err != nil {
			return fmt.Errorf("scan %s: %v", path, err)
		}
		for _, imp := range f.Imports {
			p, _ := strconv.Unquote(imp.Path.Value)
			if p == "" || seen[p] || ld.isLocal(p) {
				continue
			}
			seen[p] = true
			out = append(out, p)
		}
		return nil
	})
	return out, err
}

func (ld *loader) isLocal(path string) bool {
	st, err := os.Stat(filepath.Join(ld.src, filepath.FromSlash(path)))
	return err == nil && st.IsDir()
}

// Import implements types.Importer over the two-tier resolution.
func (ld *loader) Import(path string) (*types.Package, error) {
	return ld.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom.
func (ld *loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if ld.isLocal(path) {
		pkg, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Pkg, nil
	}
	return ld.stdlib.ImportFrom(path, dir, mode)
}

// load type-checks one testdata package (memoized).
func (ld *loader) load(pkgPath string) (*load.Package, error) {
	if pkg, ok := ld.pkgs[pkgPath]; ok {
		return pkg, nil
	}
	if ld.loading[pkgPath] {
		return nil, fmt.Errorf("import cycle through %s", pkgPath)
	}
	ld.loading[pkgPath] = true
	defer delete(ld.loading, pkgPath)
	dir := filepath.Join(ld.src, filepath.FromSlash(pkgPath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("testdata package %s: %v", pkgPath, err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, e.Name())
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("testdata package %s: no .go files", pkgPath)
	}
	pkg, err := load.File(ld.fset, pkgPath, dir, files, ld)
	if err != nil {
		return nil, err
	}
	ld.pkgs[pkgPath] = pkg
	return pkg, nil
}

// expectation is one `// want` regexp at a file line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	met  bool
}

var wantRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// checkExpectations matches diagnostics against want comments.
func checkExpectations(t *testing.T, pkg *load.Package, got []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				// Like x/tools analysistest, `// want` may be embedded in a
				// larger comment, so a directive under test can carry its own
				// expectation: `//hpm:walclock x // want "unknown"`.
				i := strings.Index(c.Text, "// want ")
				if i < 0 {
					continue
				}
				rest := c.Text[i+len("// want "):]
				pos := pkg.Fset.Position(c.Pos())
				for _, q := range wantRE.FindAllString(rest, -1) {
					pattern, err := unquote(q)
					if err != nil {
						t.Errorf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, q, err)
						continue
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pattern, err)
						continue
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: pattern})
				}
			}
		}
	}
	for _, d := range got {
		pos := pkg.Fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.met && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
}

func unquote(q string) (string, error) {
	if strings.HasPrefix(q, "`") {
		return strings.Trim(q, "`"), nil
	}
	return strconv.Unquote(q)
}
