// Package load type-checks Go packages for the hpmvet analyzers using
// only the standard library: package metadata and export data come from
// `go list -export -json`, sources are parsed with go/parser, and
// dependencies are imported through the compiler ("gc") export-data
// importer. It is a small offline stand-in for x/tools/go/packages.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the package's import path.
	Path string
	// Fset positions every file below.
	Fset *token.FileSet
	// Files are the parsed non-test sources.
	Files []*ast.File
	// Pkg is the type-checked package object.
	Pkg *types.Package
	// Info holds expression types and identifier resolutions.
	Info *types.Info
}

// listPkg is the subset of `go list -json` output the loader needs.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// goList runs `go list -deps -export -json patterns...` in dir and
// decodes the JSON stream.
func goList(dir string, patterns []string) ([]*listPkg, error) {
	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("load: go list: %v\n%s", err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*listPkg
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decode go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter resolves imports from a path → export-data-file map
// using the standard library's gc importer.
type exportImporter struct {
	base    types.ImporterFrom
	exports map[string]string
}

func newExportImporter(fset *token.FileSet, exports map[string]string) *exportImporter {
	ei := &exportImporter{exports: exports}
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := ei.exports[path]
		if !ok {
			return nil, fmt.Errorf("load: no export data for %q", path)
		}
		return os.Open(f)
	}
	ei.base = importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom)
	return ei
}

func (ei *exportImporter) Import(path string) (*types.Package, error) {
	return ei.base.Import(path)
}

func (ei *exportImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	return ei.base.ImportFrom(path, dir, mode)
}

// Packages loads and type-checks the packages matching the patterns
// (e.g. "./...") relative to dir, excluding dependencies outside the
// main module. Test files are not loaded: the invariants the analyzers
// enforce apply to production code, and tests legitimately read clocks
// and environments.
func Packages(dir string, patterns []string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	for _, lp := range listed {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
	}
	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports)
	var out []*Package
	for _, lp := range listed {
		if lp.DepOnly || lp.Standard || lp.Module == nil {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("load: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		pkg, err := typecheck(fset, lp, imp)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// File loads and type-checks a single package given its directory,
// import path, file list, and an export map for its dependencies. This
// is the entry point the unitchecker (vettool) mode and the analysistest
// harness share with Packages.
func File(fset *token.FileSet, importPath, dir string, goFiles []string, imp types.ImporterFrom) (*Package, error) {
	return typecheck(fset, &listPkg{ImportPath: importPath, Dir: dir, GoFiles: goFiles}, imp)
}

// ExportImporter builds a dependency importer over a path → export-data
// file map (as produced by `go list -export`).
func ExportImporter(fset *token.FileSet, exports map[string]string) types.ImporterFrom {
	return newExportImporter(fset, exports)
}

// StdlibExports resolves export-data files for the named standard
// library packages (plus their dependencies) — used by the analysistest
// harness to type-check testdata that imports the standard library.
func StdlibExports(paths []string) (map[string]string, error) {
	if len(paths) == 0 {
		return map[string]string{}, nil
	}
	listed, err := goList("", paths)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	for _, lp := range listed {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
	}
	return exports, nil
}

func typecheck(fset *token.FileSet, lp *listPkg, imp types.ImporterFrom) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(lp.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("load: parse %s: %v", path, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("load: typecheck %s: %v", lp.ImportPath, err)
	}
	return &Package{Path: lp.ImportPath, Fset: fset, Files: files, Pkg: tpkg, Info: info}, nil
}
