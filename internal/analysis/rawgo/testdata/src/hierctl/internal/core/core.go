package core

func work() {}

// Bare goroutines outside internal/par and cmd/ are flagged.
func spawn() {
	go work() // want `bare go statement outside internal/par and cmd/`
}

// A long-lived supervisor escapes with a justification; deleting the
// directive re-surfaces the diagnostic.
func supervise() {
	go work() //hpm:goroutine single long-lived supervisor
}

var _, _ = spawn, supervise
