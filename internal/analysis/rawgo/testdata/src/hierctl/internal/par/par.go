package par

func work() {}

// internal/par owns the goroutine fan-out: bare go statements are legal.
func fan() {
	go work()
}

var _ = fan
