package main

func work() {}

// cmd/ binaries may spawn goroutines freely (serving, signal handling).
func main() {
	go work()
}
