package rawgo_test

import (
	"testing"

	"hierctl/internal/analysis/analysistest"
	"hierctl/internal/analysis/rawgo"
)

func TestRawGo(t *testing.T) {
	analysistest.Run(t, "testdata", rawgo.Analyzer, "hierctl/internal/core")
}

func TestParIsExempt(t *testing.T) {
	analysistest.Run(t, "testdata", rawgo.Analyzer, "hierctl/internal/par")
}

func TestCmdIsExempt(t *testing.T) {
	analysistest.Run(t, "testdata", rawgo.Analyzer, "hierctl/cmd/app")
}
