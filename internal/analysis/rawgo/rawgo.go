// Package rawgo forbids bare `go` statements outside internal/par and
// the cmd/ entry points.
//
// All library-level fan-out goes through the internal/par worker pool:
// that is what keeps parallelism bounded (Workers caps goroutines at
// the configured width), cancellable (ForCtx stops scheduling), and —
// because pool results merge in index order — deterministic. A raw
// goroutine in library code escapes all three properties. Daemon
// plumbing in cmd/ (HTTP serve loops, signal handlers) legitimately
// spawns goroutines, as does the pool itself; a sanctioned long-lived
// supervisor elsewhere (the fleet's shard-loop starter) carries
// `//hpm:goroutine <why>`.
package rawgo

import (
	"go/ast"
	"strings"

	"hierctl/internal/analysis"
	"hierctl/internal/analysis/directive"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "rawgo",
	Doc:  "forbid bare go statements outside internal/par and cmd/ (fan-out goes through the pool)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	path := pass.Pkg.Path()
	if path == "hierctl/internal/par" || strings.HasPrefix(path, "hierctl/cmd/") {
		return nil
	}
	for _, file := range pass.Files {
		dirs, _ := directive.ParseFile(pass.Fset, file)
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !dirs.EscapedAt(pass.Fset, g.Pos(), directive.Goroutine) {
				pass.Reportf(g.Pos(), "bare go statement outside internal/par and cmd/ (fan out through the par pool, or annotate a long-lived supervisor with //hpm:goroutine)")
			}
			return true
		})
	}
	return nil
}
