// Package recordernil enforces the internal/obs nil-receiver contract:
// a nil *Recorder is a valid, disabled recorder, so every exported
// pointer-receiver method on the package's recorder (struct) types must
// begin with a nil-receiver guard.
//
// Instrumented code across the engine, controllers, and fleet calls
// recorder methods unconditionally (`l.rec.Record(...)` after a single
// Enabled() branch, or not even that); a method missing its guard turns
// "telemetry off" into a panic on the decide path. Accepted guard
// shapes:
//
//	func (r *Recorder) M(...) { if r == nil { return ... } ... }
//	func (r *Recorder) M(...) bool { return r != nil }
//
// i.e. the first statement is an if testing the receiver against nil,
// or the body is a single return whose expression contains such a test.
package recordernil

import (
	"go/ast"
	"go/token"
	"go/types"

	"hierctl/internal/analysis"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "recordernil",
	Doc:  "require nil-receiver guards on exported pointer-receiver methods of internal/obs recorder types",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Path() != "hierctl/internal/obs" {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || !fn.Name.IsExported() || fn.Body == nil {
				continue
			}
			recv := receiverVar(pass, fn)
			if recv == nil {
				continue // value receiver or non-struct type
			}
			if guardsNil(pass, fn.Body, recv) {
				continue
			}
			pass.Reportf(fn.Pos(), "exported method %s must begin with a nil-receiver guard (a nil recorder is the disabled recorder)", fn.Name.Name)
		}
	}
	return nil
}

// receiverVar returns the receiver variable when fn has a pointer
// receiver over a named struct type, else nil.
func receiverVar(pass *analysis.Pass, fn *ast.FuncDecl) *types.Var {
	if len(fn.Recv.List) != 1 || len(fn.Recv.List[0].Names) != 1 {
		return nil
	}
	id := fn.Recv.List[0].Names[0]
	obj, ok := pass.TypesInfo.Defs[id].(*types.Var)
	if !ok {
		return nil
	}
	ptr, ok := obj.Type().(*types.Pointer)
	if !ok {
		return nil
	}
	if _, ok := ptr.Elem().Underlying().(*types.Struct); !ok {
		return nil
	}
	return obj
}

// guardsNil reports whether the body starts with a nil test of recv.
func guardsNil(pass *analysis.Pass, body *ast.BlockStmt, recv *types.Var) bool {
	if len(body.List) == 0 {
		return false
	}
	switch first := body.List[0].(type) {
	case *ast.IfStmt:
		return first.Init == nil && isNilTest(pass, first.Cond, recv)
	case *ast.ReturnStmt:
		for _, res := range first.Results {
			found := false
			ast.Inspect(res, func(n ast.Node) bool {
				if b, ok := n.(*ast.BinaryExpr); ok && isNilTest(pass, b, recv) {
					found = true
					return false
				}
				return true
			})
			if found {
				return true
			}
		}
	}
	return false
}

// isNilTest matches `recv == nil` / `recv != nil` (either operand
// order).
func isNilTest(pass *analysis.Pass, cond ast.Expr, recv *types.Var) bool {
	b, ok := cond.(*ast.BinaryExpr)
	if !ok || (b.Op != token.EQL && b.Op != token.NEQ) {
		return false
	}
	isRecv := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && pass.TypesInfo.Uses[id] == recv
	}
	isNil := func(e ast.Expr) bool {
		tv, ok := pass.TypesInfo.Types[e]
		return ok && tv.IsNil()
	}
	return (isRecv(b.X) && isNil(b.Y)) || (isNil(b.X) && isRecv(b.Y))
}
