package obs

// Recorder mirrors the production flight recorder: a nil *Recorder is
// the valid, disabled recorder.
type Recorder struct{ n int }

// Enabled's single return contains the nil test: legal.
func (r *Recorder) Enabled() bool { return r != nil }

// Count begins with the guard statement: legal.
func (r *Recorder) Count() int {
	if r == nil {
		return 0
	}
	return r.n
}

// Bump is missing its guard.
func (r *Recorder) Bump() { // want `exported method Bump must begin with a nil-receiver guard`
	r.n++
}

// reset is unexported: internal callers already hold a checked receiver.
func (r *Recorder) reset() { r.n = 0 }

// Snapshot has a value receiver: it can never be nil.
func (r Recorder) Snapshot() int { return r.n }

var _ = (*Recorder)(nil).reset
