package recordernil_test

import (
	"testing"

	"hierctl/internal/analysis/analysistest"
	"hierctl/internal/analysis/recordernil"
)

func TestRecorderNil(t *testing.T) {
	analysistest.Run(t, "testdata", recordernil.Analyzer, "hierctl/internal/obs")
}
