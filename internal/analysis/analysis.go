// Package analysis is a minimal, dependency-free analogue of
// golang.org/x/tools/go/analysis: just enough driver surface to run the
// repo's invariant checkers (cmd/hpmvet) over type-checked packages.
//
// The x/tools module is deliberately not vendored — the reproduction
// builds offline from the standard library alone — so this package
// defines the Analyzer/Pass/Diagnostic vocabulary itself. The shapes
// mirror x/tools closely enough that the analyzers would port to a real
// multichecker by swapping imports.
//
// Each analyzer encodes one of the repo's cross-cutting conventions
// (determinism, hot-path allocation discipline, telemetry hygiene) as a
// machine-checkable rule; see the sibling packages and the invariants
// index in docs/ARCHITECTURE.md.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one static check: a name, a documentation string, and a
// Run function applied to every package under analysis.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and CLI flags. It must
	// be a valid Go identifier.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run performs the check, reporting findings via Pass.Report. The
	// returned error aborts the whole run (reserved for internal
	// malfunctions, not findings).
	Run func(*Pass) error
}

// Pass carries one package's parsed and type-checked representation to
// an analyzer.
type Pass struct {
	// Fset maps token positions for every file in the pass.
	Fset *token.FileSet
	// Files are the package's parsed source files (tests excluded).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds expression types and identifier resolutions.
	TypesInfo *types.Info
	// Report records one finding.
	Report func(Diagnostic)
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Reportf formats and reports a finding at pos. The analyzer name is
// stamped by the driver wrapper around Pass.Report.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// DeterministicPkgs lists the import paths whose code must be a pure
// function of its inputs: no wall clock, no ambient randomness, no
// environment reads, no order-dependent map iteration. These are the
// packages on the bit-identical replay path — every equivalence pin in
// the test suite (parallelism independence, snapshot/restore replay,
// byte-identical BENCH_scenarios.json) assumes them.
var DeterministicPkgs = map[string]bool{
	"hierctl/internal/approx":     true,
	"hierctl/internal/baseline":   true,
	"hierctl/internal/central":    true,
	"hierctl/internal/chaos":      true,
	"hierctl/internal/cluster":    true,
	"hierctl/internal/controller": true,
	"hierctl/internal/core":       true,
	"hierctl/internal/des":        true,
	"hierctl/internal/engine":     true,
	"hierctl/internal/llc":        true,
	"hierctl/internal/series":     true,
	"hierctl/internal/workload":   true,
}

// IsDeterministic reports whether the package at path carries the
// determinism contract.
func IsDeterministic(path string) bool { return DeterministicPkgs[path] }
