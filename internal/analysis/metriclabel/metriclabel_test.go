package metriclabel_test

import (
	"testing"

	"hierctl/internal/analysis/analysistest"
	"hierctl/internal/analysis/metriclabel"
)

func TestMetricLabel(t *testing.T) {
	analysistest.Run(t, "testdata", metriclabel.Analyzer, "hierctl/cmd/app")
}
