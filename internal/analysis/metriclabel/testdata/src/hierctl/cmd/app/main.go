package main

import "hierctl/internal/metrics"

// Direct registration sites: names, help strings, and label keys must be
// constant and well-formed.
func direct(r *metrics.Registry, dyn string) {
	r.Counter("decisions_total", "decisions taken", "level")
	r.Counter("bad-name", "help")                                              // want `metric name "bad-name" does not match the Prometheus name grammar`
	r.Counter("ok_total", "")                                                  // want `help string must be non-empty at metrics registration`
	r.Counter(dyn+"_total", "help")                                            // want `metric name must be a constant string at metrics registration`
	r.Gauge("queue_depth", "queue depth", "bad-label")                         // want `label key "bad-label" does not match the Prometheus label grammar`
	r.Histogram("latency_seconds", "latency", []float64{0.1, 1}, "__reserved") // want `label key "__reserved" uses the reserved __ prefix`
}

// Wrapper registration: a closure forwarding its parameters into
// registration positions is checked at its own call sites.
func wrapped(r *metrics.Registry) {
	mustCounter := func(name, help string, labels ...string) *metrics.CounterVec {
		c, err := r.Counter(name, help, labels...)
		if err != nil {
			panic(err)
		}
		return c
	}
	mustCounter("wrapped_total", "wrapped counter", "node")
	mustCounter("wrapped-bad", "wrapped counter") // want `metric name "wrapped-bad" does not match the Prometheus name grammar`
}

func main() {
	direct(&metrics.Registry{}, "computed_name")
	wrapped(&metrics.Registry{})
}
