// Package metrics stubs the production registration surface: the
// analyzer keys on the Registry type name, the package-path suffix, and
// the Counter/Gauge/Histogram method names.
package metrics

type Registry struct{}

type CounterVec struct{}
type GaugeVec struct{}
type HistogramVec struct{}

func (r *Registry) Counter(name, help string, labels ...string) (*CounterVec, error) {
	return &CounterVec{}, nil
}

func (r *Registry) Gauge(name, help string, labels ...string) (*GaugeVec, error) {
	return &GaugeVec{}, nil
}

func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) (*HistogramVec, error) {
	return &HistogramVec{}, nil
}
