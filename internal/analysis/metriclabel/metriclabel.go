// Package metriclabel enforces Prometheus registration hygiene at
// internal/metrics call sites: metric names must be compile-time
// constants matching the Prometheus name grammar, help strings must be
// constant and non-empty, and label-key sets must be constant, valid,
// and non-reserved.
//
// The registry validates these at runtime too — but a runtime failure
// surfaces on the first scrape of a rarely-hit code path, while this
// analyzer surfaces it at build time, and constancy (which the runtime
// cannot check) is what keeps the exposition's family set stable across
// builds and greppable from CI.
//
// Registration calls are the Counter/Gauge/Histogram methods on
// metrics.Registry. Thin wrappers are followed one level at a time: a
// call that forwards its own string parameter into a registration
// position (e.g. hpmserve's mustCounter helper) marks that parameter's
// position, and the wrapper's call sites are then checked under the
// same rules, to a fixpoint.
package metriclabel

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"strings"

	"hierctl/internal/analysis"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "metriclabel",
	Doc:  "require constant, well-formed metric names, help strings, and label keys at metrics registration sites",
	Run:  run,
}

// role is what a registration argument position means.
type role int

const (
	roleName role = iota
	roleHelp
	roleLabel
)

func (r role) String() string {
	switch r {
	case roleName:
		return "metric name"
	case roleHelp:
		return "help string"
	default:
		return "label key"
	}
}

var (
	metricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRE  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// wrapper records which parameters of a callable forward into
// registration positions. variadicLabels marks a trailing ...string
// parameter forwarded as the label set.
type wrapper struct {
	params         map[int]role
	variadicLabels int // parameter index, -1 if none
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:     pass,
		paramIdx: map[types.Object]paramRef{},
		wrappers: map[types.Object]*wrapper{},
	}
	c.indexParams()
	// Pass 1: direct registration calls — validates constants and seeds
	// wrappers. Passes 2..n: wrapper call sites, to a fixpoint (wrappers
	// of wrappers).
	c.walkCalls(c.checkRegistration)
	for prev := -1; prev != len(c.wrappers); {
		prev = len(c.wrappers)
		c.walkCalls(c.checkWrapperCall)
	}
	return nil
}

// paramRef locates one parameter within its callable.
type paramRef struct {
	callable types.Object
	idx      int
}

type checker struct {
	pass     *analysis.Pass
	paramIdx map[types.Object]paramRef
	wrappers map[types.Object]*wrapper
	// reported de-duplicates findings across the fixpoint passes.
	reported map[token]bool
}

type token = int // token.Pos as comparable key

// indexParams maps every function/func-literal parameter object to its
// callable and position. Func literals count only when bound to a
// variable (`f := func(...)`) so call sites can be resolved.
func (c *checker) indexParams() {
	for _, file := range c.pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncDecl:
				if obj := c.pass.TypesInfo.Defs[x.Name]; obj != nil {
					c.indexFieldList(obj, x.Type.Params)
				}
			case *ast.AssignStmt:
				for i, rhs := range x.Rhs {
					lit, ok := rhs.(*ast.FuncLit)
					if !ok || i >= len(x.Lhs) {
						continue
					}
					if id, ok := x.Lhs[i].(*ast.Ident); ok {
						obj := c.pass.TypesInfo.Defs[id]
						if obj == nil {
							obj = c.pass.TypesInfo.Uses[id]
						}
						if obj != nil {
							c.indexFieldList(obj, lit.Type.Params)
						}
					}
				}
			case *ast.ValueSpec:
				for i, v := range x.Values {
					lit, ok := v.(*ast.FuncLit)
					if !ok || i >= len(x.Names) {
						continue
					}
					if obj := c.pass.TypesInfo.Defs[x.Names[i]]; obj != nil {
						c.indexFieldList(obj, lit.Type.Params)
					}
				}
			}
			return true
		})
	}
}

func (c *checker) indexFieldList(callable types.Object, params *ast.FieldList) {
	if params == nil {
		return
	}
	idx := 0
	for _, field := range params.List {
		for _, name := range field.Names {
			if obj := c.pass.TypesInfo.Defs[name]; obj != nil {
				c.paramIdx[obj] = paramRef{callable: callable, idx: idx}
			}
			idx++
		}
		if len(field.Names) == 0 {
			idx++
		}
	}
}

func (c *checker) walkCalls(visit func(*ast.CallExpr)) {
	for _, file := range c.pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				visit(call)
			}
			return true
		})
	}
}

// checkRegistration handles direct calls to Registry.Counter/Gauge/
// Histogram.
func (c *checker) checkRegistration(call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || !strings.HasSuffix(fn.Pkg().Path(), "internal/metrics") {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !isRegistry(sig.Recv().Type()) {
		return
	}
	var labelStart int
	switch fn.Name() {
	case "Counter", "Gauge":
		labelStart = 2
	case "Histogram":
		labelStart = 3 // (name, help, bounds, labels...)
	default:
		return
	}
	if len(call.Args) < 2 {
		return
	}
	c.checkArg(call.Args[0], roleName)
	c.checkArg(call.Args[1], roleHelp)
	for i := labelStart; i < len(call.Args); i++ {
		if call.Ellipsis.IsValid() && i == len(call.Args)-1 {
			c.forwardSlice(call.Args[i])
			continue
		}
		c.checkArg(call.Args[i], roleLabel)
	}
}

// checkWrapperCall applies the registration rules at call sites of
// known wrappers.
func (c *checker) checkWrapperCall(call *ast.CallExpr) {
	obj := calleeObject(c.pass, call)
	if obj == nil {
		return
	}
	w, ok := c.wrappers[obj]
	if !ok {
		return
	}
	for i, arg := range call.Args {
		if call.Ellipsis.IsValid() && i == len(call.Args)-1 && w.variadicLabels >= 0 && i >= w.variadicLabels {
			c.forwardSlice(arg)
			continue
		}
		if r, ok := w.params[i]; ok {
			c.checkArg(arg, r)
		} else if w.variadicLabels >= 0 && i >= w.variadicLabels {
			c.checkArg(arg, roleLabel)
		}
	}
}

// checkArg validates one argument in a role: a constant is checked
// against the role's grammar; an identifier bound to a function
// parameter marks the enclosing callable as a wrapper; anything else is
// a non-constant diagnostic.
func (c *checker) checkArg(arg ast.Expr, r role) {
	tv, ok := c.pass.TypesInfo.Types[arg]
	if ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		c.checkConstant(arg, constant.StringVal(tv.Value), r)
		return
	}
	if id, ok := arg.(*ast.Ident); ok {
		if obj := c.pass.TypesInfo.Uses[id]; obj != nil {
			if ref, ok := c.paramIdx[obj]; ok {
				w := c.wrapper(ref.callable)
				if w.params == nil {
					w.params = map[int]role{}
				}
				w.params[ref.idx] = r
				return
			}
		}
	}
	c.reportOnce(arg, "%s must be a constant string at metrics registration (got a computed value)", r)
}

// forwardSlice handles `labels...` forwarding: when the slice is itself
// a variadic parameter, the enclosing callable becomes a wrapper whose
// trailing parameters are labels; otherwise the label set is not
// constant.
func (c *checker) forwardSlice(arg ast.Expr) {
	if id, ok := arg.(*ast.Ident); ok {
		if obj := c.pass.TypesInfo.Uses[id]; obj != nil {
			if ref, ok := c.paramIdx[obj]; ok {
				w := c.wrapper(ref.callable)
				w.variadicLabels = ref.idx
				return
			}
		}
	}
	c.reportOnce(arg, "label keys forwarded from a non-parameter slice are not constant at metrics registration")
}

func (c *checker) wrapper(callable types.Object) *wrapper {
	w, ok := c.wrappers[callable]
	if !ok {
		w = &wrapper{variadicLabels: -1}
		c.wrappers[callable] = w
	}
	return w
}

func (c *checker) checkConstant(arg ast.Expr, s string, r role) {
	switch r {
	case roleName:
		if !metricNameRE.MatchString(s) {
			c.reportOnce(arg, "metric name %q does not match the Prometheus name grammar [a-zA-Z_:][a-zA-Z0-9_:]*", s)
		}
	case roleHelp:
		if strings.TrimSpace(s) == "" {
			c.reportOnce(arg, "help string must be non-empty at metrics registration")
		}
	case roleLabel:
		if !labelNameRE.MatchString(s) {
			c.reportOnce(arg, "label key %q does not match the Prometheus label grammar [a-zA-Z_][a-zA-Z0-9_]*", s)
		} else if strings.HasPrefix(s, "__") {
			c.reportOnce(arg, "label key %q uses the reserved __ prefix", s)
		}
	}
}

func (c *checker) reportOnce(arg ast.Expr, format string, args ...any) {
	if c.reported == nil {
		c.reported = map[token]bool{}
	}
	k := token(arg.Pos())
	if c.reported[k] {
		return
	}
	c.reported[k] = true
	c.pass.Reportf(arg.Pos(), format, args...)
}

// calleeObject resolves the called object for plain and selector calls.
func calleeObject(pass *analysis.Pass, call *ast.CallExpr) types.Object {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[f]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[f.Sel]
	}
	return nil
}

// isRegistry matches *metrics.Registry receivers.
func isRegistry(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Name() == "Registry"
}
