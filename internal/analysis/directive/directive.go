// Package directive parses the repo's `//hpm:` source annotations — the
// escape hatches and markers the hpmvet analyzers honor. Following the
// Go toolchain's directive convention, a directive is a `//`-comment
// with no space before the `hpm:` prefix:
//
//	//hpm:wallclock <justification>  — sanctioned wall-clock read in a
//	    deterministic package (simdeterminism); the site must be
//	    observe-only (an overhead metric, never a decision input).
//	//hpm:orderfree <justification>  — map iteration whose body is
//	    order-insensitive for a reason the maprange analyzer's
//	    heuristics cannot prove.
//	//hpm:hotpath [note]             — marks a function as a zero-alloc
//	    decide path; the hotalloc analyzer checks its body.
//	//hpm:alloc <justification>      — sanctioned allocation site inside
//	    a hotpath function (warm-up, cold subpath, or a copy-out counted
//	    by the AllocsPerRun pins).
//	//hpm:goroutine <justification>  — sanctioned bare `go` statement
//	    outside internal/par and cmd/ (rawgo).
//
// Line-level directives (wallclock, orderfree, alloc, goroutine) apply
// to the line they sit on or the line immediately below — i.e. write
// them at the end of the offending line or on their own line directly
// above it. hotpath lives in the function's doc comment.
//
// Every `//hpm:` comment in the tree must parse: unknown kinds and
// missing justifications are themselves diagnostics (the hpmdirective
// analyzer), so a typo'd annotation fails the build instead of silently
// disabling a check.
package directive

import (
	"go/ast"
	"go/token"
	"strings"
)

// Kind is a recognized directive kind.
type Kind string

// The recognized kinds.
const (
	Wallclock Kind = "wallclock"
	Orderfree Kind = "orderfree"
	Hotpath   Kind = "hotpath"
	Alloc     Kind = "alloc"
	Goroutine Kind = "goroutine"
)

// needsArg reports whether the kind requires a justification argument.
func needsArg(k Kind) bool { return k != Hotpath }

var known = map[Kind]bool{
	Wallclock: true,
	Orderfree: true,
	Hotpath:   true,
	Alloc:     true,
	Goroutine: true,
}

// Directive is one parsed `//hpm:` annotation.
type Directive struct {
	Kind Kind
	// Arg is the justification text after the kind (may be empty for
	// hotpath).
	Arg string
	// Pos is the comment's position.
	Pos token.Pos
	// Line is the comment's 1-based source line.
	Line int
}

// Problem is a malformed or unknown annotation.
type Problem struct {
	Pos     token.Pos
	Message string
}

// Map holds a file's directives indexed by source line.
type Map struct {
	byLine map[int][]Directive
}

// prefix is the comment prefix shared by all directives.
const prefix = "//hpm:"

// ParseFile scans every comment in f, returning the file's directive map
// and any problems (unknown kinds, missing justifications).
func ParseFile(fset *token.FileSet, f *ast.File) (Map, []Problem) {
	m := Map{byLine: map[int][]Directive{}}
	var problems []Problem
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, prefix) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, prefix)
			kindStr, arg, _ := strings.Cut(rest, " ")
			kind := Kind(kindStr)
			// An embedded `// ...` (analysistest want expectations in golden
			// files) is not part of the justification.
			arg, _, _ = strings.Cut(arg, "//")
			arg = strings.TrimSpace(arg)
			if !known[kind] {
				problems = append(problems, Problem{
					Pos:     c.Pos(),
					Message: "unknown //hpm: directive " + strings.TrimSpace(kindStr) + " (recognized: wallclock, orderfree, hotpath, alloc, goroutine)",
				})
				continue
			}
			if needsArg(kind) && arg == "" {
				problems = append(problems, Problem{
					Pos:     c.Pos(),
					Message: "//hpm:" + string(kind) + " needs a justification (why is this site exempt?)",
				})
				continue
			}
			line := fset.Position(c.Pos()).Line
			m.byLine[line] = append(m.byLine[line], Directive{Kind: kind, Arg: arg, Pos: c.Pos(), Line: line})
		}
	}
	return m, problems
}

// EscapedAt reports whether a node starting at pos is covered by a
// directive of the given kind: on the same source line or on the line
// immediately above.
func (m Map) EscapedAt(fset *token.FileSet, pos token.Pos, kind Kind) bool {
	line := fset.Position(pos).Line
	for _, d := range m.byLine[line] {
		if d.Kind == kind {
			return true
		}
	}
	for _, d := range m.byLine[line-1] {
		if d.Kind == kind {
			return true
		}
	}
	return false
}

// HotpathFunc reports whether fn is marked `//hpm:hotpath` — in its doc
// comment or on the `func` line itself.
func (m Map) HotpathFunc(fset *token.FileSet, fn *ast.FuncDecl) bool {
	if fn.Doc != nil {
		for _, c := range fn.Doc.List {
			if strings.HasPrefix(c.Text, prefix+string(Hotpath)) {
				return true
			}
		}
	}
	line := fset.Position(fn.Pos()).Line
	for _, d := range m.byLine[line] {
		if d.Kind == Hotpath {
			return true
		}
	}
	return false
}
