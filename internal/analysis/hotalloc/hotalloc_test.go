package hotalloc_test

import (
	"testing"

	"hierctl/internal/analysis/analysistest"
	"hierctl/internal/analysis/hotalloc"
)

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, "testdata", hotalloc.Analyzer, "hierctl/internal/llc")
}
