package llc

import "fmt"

type pool struct {
	scratch []float64
	seq     *pool
}

func consume(v interface{}) { _ = v }

// Non-hotpath functions may allocate freely: no diagnostics.
func cold(n int) []int {
	return make([]int, n)
}

// Every known allocation source is flagged inside a hotpath function.
//
//hpm:hotpath
func (p *pool) hot(xs []float64, name string) string {
	s := fmt.Sprintf("n=%d", len(xs)) // want `fmt\.Sprintf builds a string in hot path`
	s = s + name                      // want `string concatenation allocates in hot path`
	m := map[string]int{}             // want `map literal allocates in hot path`
	m[name] = len(xs)
	lit := []float64{1} // want `slice literal allocates in hot path`
	lit = append(lit, xs...)
	grown := append(xs, 1)             // want `append grows a fresh slice in hot path`
	q := make([]float64, 8)            // want `make allocates in hot path`
	box := new(pool)                   // want `new allocates in hot path`
	ref := &pool{}                     // want `&composite literal allocates in hot path`
	f := func() int { return len(xs) } // want `closure captures outer variables and allocates in hot path`
	consume(len(xs))                   // want `implicit interface conversion boxes a value in hot path`
	_ = f()
	_, _, _, _ = grown, q, box, ref
	return s
}

// Sanctioned allocations escape with a justification; deleting any one
// directive re-surfaces its diagnostic.
//
//hpm:hotpath
func (p *pool) warm(xs []float64) []float64 {
	if p.seq == nil {
		p.seq = &pool{} //hpm:alloc one-time warm-up reused across calls
	}
	out := make([]float64, len(xs)) //hpm:alloc copy-out counted by the bench pin
	copy(out, xs)
	return out
}

// The pooled-buffer idioms and cold error construction stay legal.
//
//hpm:hotpath
func (p *pool) legal(xs []float64) (float64, error) {
	if xs == nil {
		return 0, fmt.Errorf("llc: nil input %v", xs)
	}
	p.scratch = append(p.scratch[:0], xs...)
	p.scratch = append(p.scratch, 1)
	acc := 0.0
	for _, v := range p.scratch {
		acc += v
	}
	g := func(a float64) float64 { return a + 1 }
	consume(nil)
	consume(&p.scratch)
	return g(acc), nil
}
