// Package hotalloc is the static complement of the AllocsPerRun runtime
// pins: inside functions marked `//hpm:hotpath`, it flags the known
// allocation sources that would silently break the zero-allocation
// decision tick (PR 5's L0 = 0, L1/L2 ≤ 2, table probe = 0 steady-state
// budgets):
//
//   - fmt.Sprint* and strings.Join calls;
//   - string concatenation (+ / +=) with non-constant operands;
//   - map and slice composite literals, &T{...}, make, and new;
//   - append that grows a fresh slice (self-extension `x = append(x, ...)`
//     and scratch reuse `append(buf[:0], ...)` stay legal — those are the
//     pooled-buffer idioms);
//   - function literals that capture outer variables (escaping closures);
//   - implicit concrete-value → interface conversions at call arguments
//     (boxing).
//
// Error construction is exempt: fmt.Errorf and errors.New calls (and
// their arguments) are by repo convention cold failure paths, and the
// runtime pins never exercise them. A deliberate allocation inside a hot
// function — a warm-up, a documented cold fallback, or a copy-out the
// AllocsPerRun budget already counts — carries `//hpm:alloc <why>` on
// its line.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"hierctl/internal/analysis"
	"hierctl/internal/analysis/directive"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "flag allocating constructs inside //hpm:hotpath functions",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		dirs, _ := directive.ParseFile(pass.Fset, file)
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !dirs.HotpathFunc(pass.Fset, fn) {
				continue
			}
			c := &checker{pass: pass, dirs: dirs, handled: map[*ast.CallExpr]bool{}}
			c.check(fn.Body)
		}
	}
	return nil
}

type checker struct {
	pass *analysis.Pass
	dirs directive.Map
	// handled marks append calls already validated with their assignment
	// context, so the bare CallExpr visit does not re-check them without
	// the left-hand side (which would flag legal self-extension).
	handled map[*ast.CallExpr]bool
}

// report flags pos unless the line carries an //hpm:alloc escape.
func (c *checker) report(pos token.Pos, format string, args ...any) {
	if c.dirs.EscapedAt(c.pass.Fset, pos, directive.Alloc) {
		return
	}
	c.pass.Reportf(pos, format, args...)
}

func (c *checker) check(body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			return c.checkCall(x)
		case *ast.AssignStmt:
			c.checkAssign(x)
		case *ast.BinaryExpr:
			c.checkConcat(x)
		case *ast.CompositeLit:
			c.checkComposite(x)
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := x.X.(*ast.CompositeLit); ok {
					c.report(x.Pos(), "&composite literal allocates in hot path (hoist to a reused field or annotate //hpm:alloc)")
				}
			}
		case *ast.FuncLit:
			if capturesOuter(c.pass, x) {
				c.report(x.Pos(), "closure captures outer variables and allocates in hot path (use a method or annotate //hpm:alloc)")
			}
		}
		return true
	})
}

// checkCall handles builtin allocators, formatting calls, and interface
// boxing at argument positions. Returns false to skip the subtree (error
// construction is exempt wholesale).
func (c *checker) checkCall(call *ast.CallExpr) bool {
	if isErrorCtor(c.pass, call) {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		switch fun.Name {
		case "make":
			if isBuiltin(c.pass, fun) {
				c.report(call.Pos(), "make allocates in hot path (preallocate in the constructor or annotate //hpm:alloc)")
			}
		case "new":
			if isBuiltin(c.pass, fun) {
				c.report(call.Pos(), "new allocates in hot path (hoist to a reused field or annotate //hpm:alloc)")
			}
		case "append":
			if isBuiltin(c.pass, fun) && !c.handled[call] {
				c.checkAppend(call, nil)
			}
		}
	case *ast.SelectorExpr:
		if fn, ok := c.pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok && fn.Pkg() != nil {
			qualified := fn.Pkg().Path() + "." + fn.Name()
			switch qualified {
			case "fmt.Sprintf", "fmt.Sprint", "fmt.Sprintln", "strings.Join":
				c.report(call.Pos(), "%s builds a string in hot path (precompute or annotate //hpm:alloc)", qualified)
				return false
			}
		}
	}
	c.checkBoxing(call)
	return true
}

// checkAssign validates appends in context: `x = append(x, ...)` is
// scratch reuse, anything else grows a fresh slice.
func (c *checker) checkAssign(s *ast.AssignStmt) {
	for i, rhs := range s.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok {
			continue
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" && isBuiltin(c.pass, id) {
			var lhs ast.Expr
			if i < len(s.Lhs) {
				lhs = s.Lhs[i]
			}
			c.handled[call] = true
			c.checkAppend(call, lhs)
		}
	}
}

// checkAppend flags appends whose base is neither the assignment target
// (self-extension) nor a re-sliced scratch buffer (`buf[:0]`).
func (c *checker) checkAppend(call *ast.CallExpr, lhs ast.Expr) {
	if len(call.Args) == 0 {
		return
	}
	base := call.Args[0]
	if _, ok := base.(*ast.SliceExpr); ok {
		return // append(buf[:0], ...) — scratch reuse
	}
	if lhs != nil {
		l, b := exprString(lhs), exprString(base)
		if l != "" && l == b {
			return // x = append(x, ...) — amortized self-extension
		}
	}
	c.report(call.Pos(), "append grows a fresh slice in hot path (reuse scratch via x = append(x[:0], ...) or annotate //hpm:alloc)")
}

// checkConcat flags non-constant string concatenation.
func (c *checker) checkConcat(b *ast.BinaryExpr) {
	if b.Op != token.ADD {
		return
	}
	tv, ok := c.pass.TypesInfo.Types[b]
	if !ok || tv.Value != nil { // constant-folded: free
		return
	}
	if basic, ok := tv.Type.Underlying().(*types.Basic); ok && basic.Info()&types.IsString != 0 {
		c.report(b.Pos(), "string concatenation allocates in hot path (precompute or annotate //hpm:alloc)")
	}
}

// checkComposite flags map and slice literals (struct literals are
// stack values and stay legal).
func (c *checker) checkComposite(lit *ast.CompositeLit) {
	tv, ok := c.pass.TypesInfo.Types[lit]
	if !ok {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Map:
		c.report(lit.Pos(), "map literal allocates in hot path (hoist to a reused field or annotate //hpm:alloc)")
	case *types.Slice:
		c.report(lit.Pos(), "slice literal allocates in hot path (hoist to a reused field or annotate //hpm:alloc)")
	}
}

// checkBoxing flags call arguments that implicitly convert a concrete
// non-pointer value to an interface parameter.
func (c *checker) checkBoxing(call *ast.CallExpr) {
	sigTv, ok := c.pass.TypesInfo.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := sigTv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at, ok := c.pass.TypesInfo.Types[arg]
		if !ok || at.Type == nil {
			continue
		}
		if at.IsNil() {
			continue
		}
		switch at.Type.Underlying().(type) {
		case *types.Interface, *types.Pointer, *types.TypeParam:
			continue // no boxing: already boxed, or pointer-shaped
		}
		c.report(arg.Pos(), "implicit interface conversion boxes a value in hot path (pass a pointer, restructure, or annotate //hpm:alloc)")
	}
}

// capturesOuter reports whether lit references variables declared
// outside the literal (a capturing closure, which escapes).
func capturesOuter(pass *analysis.Pass, lit *ast.FuncLit) bool {
	inside := map[types.Object]bool{}
	ast.Inspect(lit, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				inside[obj] = true
			}
		}
		return true
	})
	captures := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captures {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || inside[obj] || obj.IsField() {
			return true
		}
		// Package-level variables are not captures.
		if obj.Parent() == pass.Pkg.Scope() || obj.Parent() == types.Universe {
			return true
		}
		captures = true
		return false
	})
	return captures
}

// isBuiltin reports whether id resolves to the builtin of that name
// (go/types records builtin uses as *types.Builtin; a shadowing
// declaration resolves to something else).
func isBuiltin(pass *analysis.Pass, id *ast.Ident) bool {
	_, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}

// exprString renders simple expressions for structural comparison.
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprString(x.X) + "[" + exprString(x.Index) + "]"
	case *ast.BasicLit:
		return x.Value
	}
	return ""
}

// isErrorCtor matches fmt.Errorf and errors.New — error construction on
// cold failure paths.
func isErrorCtor(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	q := fn.Pkg().Path() + "." + fn.Name()
	return q == "fmt.Errorf" || q == "errors.New"
}
