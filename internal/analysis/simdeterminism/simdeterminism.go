// Package simdeterminism forbids ambient-state reads — wall clock,
// global math/rand, environment variables, sleeps — inside the
// deterministic simulation packages (analysis.DeterministicPkgs).
//
// Those packages must be pure functions of their inputs: every
// equivalence pin in the suite (bit-identical decisions at any
// parallelism, snapshot→restore replay, byte-identical
// BENCH_scenarios.json) assumes a run can be replayed exactly. A clock
// read or a draw from the process-global RNG breaks replay silently;
// this analyzer turns the convention into a build failure.
//
// Seeded randomness stays legal: rand.New, rand.NewSource, and
// rand.NewZipf construct explicitly-seeded generators and are allowed —
// it is the package-level convenience functions (rand.Intn, rand.Float64,
// ...) drawing from the shared global source that are forbidden.
//
// The sanctioned exception is decide-latency measurement: controllers
// time their own searches to report the paper's §4.3 overhead metric.
// Those sites are observe-only (the duration feeds telemetry, never a
// decision) and carry a `//hpm:wallclock <why>` directive, which escapes
// time.Now/time.Since on that line. os.Getenv and time.Sleep have no
// escape.
package simdeterminism

import (
	"go/ast"
	"go/types"

	"hierctl/internal/analysis"
	"hierctl/internal/analysis/directive"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "simdeterminism",
	Doc:  "forbid wall-clock, global math/rand, env reads, and sleeps in deterministic simulation packages",
	Run:  run,
}

// wallclockFuncs are the time functions escapable via //hpm:wallclock.
var wallclockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// seededRandFuncs are the math/rand constructors that take explicit
// seeds or sources and are therefore deterministic.
var seededRandFuncs = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

func run(pass *analysis.Pass) error {
	if !analysis.IsDeterministic(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		dirs, _ := directive.ParseFile(pass.Fset, file)
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			// Only package-level functions matter here; methods (e.g. on
			// a seeded *rand.Rand or a time.Duration) are fine.
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				switch {
				case wallclockFuncs[fn.Name()]:
					if !dirs.EscapedAt(pass.Fset, call.Pos(), directive.Wallclock) {
						pass.Reportf(call.Pos(), "time.%s in deterministic package %s (wall clock breaks replay; annotate an observe-only overhead measurement with //hpm:wallclock)", fn.Name(), pass.Pkg.Path())
					}
				case fn.Name() == "Sleep":
					pass.Reportf(call.Pos(), "time.Sleep in deterministic package %s (simulated time advances via the engine clock, never by sleeping)", pass.Pkg.Path())
				}
			case "math/rand", "math/rand/v2":
				if !seededRandFuncs[fn.Name()] {
					pass.Reportf(call.Pos(), "global rand.%s in deterministic package %s (draws from the process-wide source; use an explicitly seeded *rand.Rand)", fn.Name(), pass.Pkg.Path())
				}
			case "os":
				if fn.Name() == "Getenv" || fn.Name() == "LookupEnv" {
					pass.Reportf(call.Pos(), "os.%s in deterministic package %s (environment reads make runs machine-dependent; thread configuration through Config structs)", fn.Name(), pass.Pkg.Path())
				}
			}
			return true
		})
	}
	return nil
}

// calleeFunc resolves the called function object, or nil.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch f := call.Fun.(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}
