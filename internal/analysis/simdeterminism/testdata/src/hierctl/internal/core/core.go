package core

import (
	"math/rand"
	"os"
	"time"
)

// Wall-clock and sleep reads in a deterministic package are flagged.
func clocky() time.Duration {
	t0 := time.Now()             // want `time\.Now in deterministic package hierctl/internal/core`
	time.Sleep(time.Millisecond) // want `time\.Sleep in deterministic package`
	return time.Since(t0)        // want `time\.Since in deterministic package`
}

// Draws from the process-wide source are flagged.
func randy() float64 {
	return rand.Float64() // want `global rand\.Float64 in deterministic package`
}

// Environment reads are flagged.
func envy() string {
	return os.Getenv("HOME") // want `os\.Getenv in deterministic package`
}

// Observe-only overhead measurement, sanctioned by the escape — deleting
// either directive re-surfaces its diagnostic.
func measured() time.Duration {
	start := time.Now()      //hpm:wallclock observe-only overhead metric
	return time.Since(start) //hpm:wallclock observe-only overhead metric
}

// An explicitly seeded source is the sanctioned way to draw randomness;
// rand.New/NewSource and methods on the seeded source are legal.
func seeded() float64 {
	r := rand.New(rand.NewSource(42))
	return r.Float64()
}
