package obs

import "time"

// internal/obs is not a deterministic package: wall-clock reads here are
// legal and produce no diagnostics.
func stamp() time.Time { return time.Now() }

var _ = stamp
