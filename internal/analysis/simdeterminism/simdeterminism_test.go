package simdeterminism_test

import (
	"testing"

	"hierctl/internal/analysis/analysistest"
	"hierctl/internal/analysis/simdeterminism"
)

func TestDeterministicPackage(t *testing.T) {
	analysistest.Run(t, "testdata", simdeterminism.Analyzer, "hierctl/internal/core")
}

func TestNonDeterministicPackageIsExempt(t *testing.T) {
	analysistest.Run(t, "testdata", simdeterminism.Analyzer, "hierctl/internal/obs")
}
