package econ

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultTariffValid(t *testing.T) {
	if err := DefaultTariff().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsNegative(t *testing.T) {
	bad := DefaultTariff()
	bad.RevenuePerRequest = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative revenue: want error")
	}
	if _, err := bad.Price(Outcome{}); err == nil {
		t.Error("Price with bad tariff: want error")
	}
}

func TestPriceArithmetic(t *testing.T) {
	tariff := Tariff{
		RevenuePerRequest:         0.01,
		PenaltyPerViolatedRequest: 0.02,
		PenaltyPerDroppedRequest:  0.1,
		PricePerEnergyUnit:        0.001,
		PricePerSwitch:            0.5,
	}
	o := Outcome{
		Completed:     1000,
		Dropped:       10,
		ViolationFrac: 0.1,
		Energy:        500,
		Switches:      4,
	}
	s, err := tariff.Price(o)
	if err != nil {
		t.Fatal(err)
	}
	if want := 900 * 0.01; math.Abs(s.Revenue-want) > 1e-9 {
		t.Errorf("Revenue = %v, want %v", s.Revenue, want)
	}
	if want := 100 * 0.02; math.Abs(s.SLAPenalty-want) > 1e-9 {
		t.Errorf("SLAPenalty = %v, want %v", s.SLAPenalty, want)
	}
	if want := 10 * 0.1; math.Abs(s.DropPenalty-want) > 1e-9 {
		t.Errorf("DropPenalty = %v, want %v", s.DropPenalty, want)
	}
	if want := 500 * 0.001; math.Abs(s.EnergyCost-want) > 1e-9 {
		t.Errorf("EnergyCost = %v, want %v", s.EnergyCost, want)
	}
	if want := 4 * 0.5; math.Abs(s.SwitchCost-want) > 1e-9 {
		t.Errorf("SwitchCost = %v, want %v", s.SwitchCost, want)
	}
	wantProfit := s.Revenue - s.SLAPenalty - s.DropPenalty - s.EnergyCost - s.SwitchCost
	if math.Abs(s.Profit-wantProfit) > 1e-9 {
		t.Errorf("Profit = %v, want %v", s.Profit, wantProfit)
	}
	if want := s.Profit / 1000 * 1000; math.Abs(s.ProfitPerK-want) > 1e-9 {
		t.Errorf("ProfitPerK = %v, want %v", s.ProfitPerK, want)
	}
}

func TestPriceRejectsInvalidOutcome(t *testing.T) {
	tariff := DefaultTariff()
	for _, o := range []Outcome{
		{Completed: -1},
		{Dropped: -1},
		{ViolationFrac: -0.1},
		{ViolationFrac: 1.1},
	} {
		if _, err := tariff.Price(o); err == nil {
			t.Errorf("outcome %+v: want error", o)
		}
	}
}

func TestMoreViolationsNeverRaiseProfit(t *testing.T) {
	tariff := DefaultTariff()
	f := func(completedSeed uint16, vA, vB uint8) bool {
		completed := int64(completedSeed) + 1
		fa := float64(vA%101) / 100
		fb := float64(vB%101) / 100
		if fa > fb {
			fa, fb = fb, fa
		}
		sa, errA := tariff.Price(Outcome{Completed: completed, ViolationFrac: fa, Energy: 100})
		sb, errB := tariff.Price(Outcome{Completed: completed, ViolationFrac: fb, Energy: 100})
		if errA != nil || errB != nil {
			return false
		}
		return sa.Profit >= sb.Profit-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestZeroOutcome(t *testing.T) {
	s, err := DefaultTariff().Price(Outcome{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Profit != 0 || s.ProfitPerK != 0 {
		t.Errorf("zero outcome priced as %+v", s)
	}
}
