// Package econ implements the cost "scalarization" sketched at the end of
// §4.3: "these cost functions can be 'scalarized' by assigning an actual
// dollar amount to each term; for example, dollars earned by achieving the
// desired response time and the cost of operating the cluster (dollars per
// Watts consumed)". It turns a run's QoS and energy aggregates into a
// single profit-and-loss figure so operators can compare policies in money
// rather than abstract weights.
package econ

import "fmt"

// Tariff prices the terms of the cost function.
type Tariff struct {
	// RevenuePerRequest is earned for every completed request whose
	// interval met the response-time target.
	RevenuePerRequest float64
	// PenaltyPerViolatedRequest is paid for requests completed in
	// intervals that violated the target (SLA penalty).
	PenaltyPerViolatedRequest float64
	// PenaltyPerDroppedRequest is paid for every lost request.
	PenaltyPerDroppedRequest float64
	// PricePerEnergyUnit converts the simulator's abstract energy units
	// into money (the "dollars per Watts consumed").
	PricePerEnergyUnit float64
	// PricePerSwitch prices the reliability wear of power cycling.
	PricePerSwitch float64
}

// DefaultTariff returns an illustrative e-commerce tariff: requests are
// worth a tenth of a cent and violations cost double that. Energy is
// priced so that running the §4.3 module always-on for the synthetic day
// costs roughly 40% of its peak revenue — the regime the paper's premise
// assumes (energy as a first-order operating expense, consistent with
// datacenter TCO breakdowns). Under a tariff where energy is negligible,
// no power management can pay for any QoS risk, so comparisons would be
// vacuous.
func DefaultTariff() Tariff {
	return Tariff{
		RevenuePerRequest:         0.001,
		PenaltyPerViolatedRequest: 0.002,
		PenaltyPerDroppedRequest:  0.01,
		PricePerEnergyUnit:        0.005,
		PricePerSwitch:            0.01,
	}
}

// Validate reports whether the tariff is usable.
func (t Tariff) Validate() error {
	if t.RevenuePerRequest < 0 || t.PenaltyPerViolatedRequest < 0 ||
		t.PenaltyPerDroppedRequest < 0 || t.PricePerEnergyUnit < 0 || t.PricePerSwitch < 0 {
		return fmt.Errorf("econ: negative tariff terms")
	}
	return nil
}

// Outcome is the policy-independent summary of a run the tariff prices.
type Outcome struct {
	// Completed counts finished requests.
	Completed int64
	// Dropped counts lost requests.
	Dropped int64
	// ViolationFrac is the fraction of intervals (≈ requests) violating
	// the response-time target.
	ViolationFrac float64
	// Energy is the total energy in the simulator's units.
	Energy float64
	// Switches counts power-on transitions.
	Switches int
}

// Statement is the priced result.
type Statement struct {
	Revenue     float64
	SLAPenalty  float64
	DropPenalty float64
	EnergyCost  float64
	SwitchCost  float64
	Profit      float64
	ProfitPerK  float64 // profit per thousand completed requests
}

// Price applies the tariff to an outcome.
func (t Tariff) Price(o Outcome) (Statement, error) {
	if err := t.Validate(); err != nil {
		return Statement{}, err
	}
	if o.Completed < 0 || o.Dropped < 0 || o.ViolationFrac < 0 || o.ViolationFrac > 1 {
		return Statement{}, fmt.Errorf("econ: invalid outcome %+v", o)
	}
	good := float64(o.Completed) * (1 - o.ViolationFrac)
	bad := float64(o.Completed) * o.ViolationFrac
	s := Statement{
		Revenue:     good * t.RevenuePerRequest,
		SLAPenalty:  bad * t.PenaltyPerViolatedRequest,
		DropPenalty: float64(o.Dropped) * t.PenaltyPerDroppedRequest,
		EnergyCost:  o.Energy * t.PricePerEnergyUnit,
		SwitchCost:  float64(o.Switches) * t.PricePerSwitch,
	}
	s.Profit = s.Revenue - s.SLAPenalty - s.DropPenalty - s.EnergyCost - s.SwitchCost
	if o.Completed > 0 {
		s.ProfitPerK = s.Profit / float64(o.Completed) * 1000
	}
	return s, nil
}
