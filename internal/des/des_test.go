package des

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	s := New()
	var got []float64
	times := []float64{5, 1, 3, 2, 4}
	for _, tm := range times {
		tm := tm
		if _, err := s.Schedule(tm, func(sim *Simulator) {
			got = append(got, sim.Now())
		}); err != nil {
			t.Fatal(err)
		}
	}
	s.Run(10)
	if !sort.Float64sAreSorted(got) {
		t.Errorf("events out of order: %v", got)
	}
	if len(got) != 5 {
		t.Errorf("fired %d events, want 5", len(got))
	}
}

func TestTieBreakByInsertionOrder(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		if _, err := s.Schedule(1, func(*Simulator) { got = append(got, i) }); err != nil {
			t.Fatal(err)
		}
	}
	s.Run(2)
	for i, v := range got {
		if v != i {
			t.Fatalf("tie order = %v, want insertion order", got)
		}
	}
}

func TestSchedulePastRejected(t *testing.T) {
	s := New()
	if _, err := s.Schedule(5, func(*Simulator) {}); err != nil {
		t.Fatal(err)
	}
	s.Run(10)
	if _, err := s.Schedule(3, func(*Simulator) {}); err == nil {
		t.Error("scheduling in the past: want error")
	}
}

func TestCancel(t *testing.T) {
	s := New()
	ran := false
	ev, err := s.Schedule(1, func(*Simulator) { ran = true })
	if err != nil {
		t.Fatal(err)
	}
	ev.Cancel()
	s.Run(5)
	if ran {
		t.Error("cancelled event ran")
	}
	if s.Fired() != 0 {
		t.Errorf("Fired = %d, want 0", s.Fired())
	}
}

func TestHorizonStopsAndAdvancesClock(t *testing.T) {
	s := New()
	ran := false
	if _, err := s.Schedule(100, func(*Simulator) { ran = true }); err != nil {
		t.Fatal(err)
	}
	s.Run(50)
	if ran {
		t.Error("event past horizon ran")
	}
	if s.Now() != 50 {
		t.Errorf("Now = %v, want horizon 50", s.Now())
	}
	s.Run(150)
	if !ran {
		t.Error("event within second horizon did not run")
	}
	if s.Pending() != 0 {
		t.Errorf("Pending = %d, want 0", s.Pending())
	}
}

func TestEventAtExactHorizonRuns(t *testing.T) {
	s := New()
	ran := false
	if _, err := s.Schedule(10, func(*Simulator) { ran = true }); err != nil {
		t.Fatal(err)
	}
	s.Run(10)
	if !ran {
		t.Error("event at exact horizon did not run")
	}
}

func TestStop(t *testing.T) {
	s := New()
	count := 0
	for i := 1; i <= 5; i++ {
		i := i
		if _, err := s.Schedule(float64(i), func(sim *Simulator) {
			count++
			if i == 2 {
				sim.Stop()
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	s.Run(100)
	if count != 2 {
		t.Errorf("ran %d events, want 2 (stopped after second)", count)
	}
	if s.Pending() != 3 {
		t.Errorf("Pending = %d, want 3", s.Pending())
	}
}

func TestScheduleDuringRun(t *testing.T) {
	s := New()
	var got []float64
	if _, err := s.Schedule(1, func(sim *Simulator) {
		got = append(got, sim.Now())
		if _, err := sim.ScheduleAfter(2, func(sim2 *Simulator) {
			got = append(got, sim2.Now())
		}); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	s.Run(10)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("times = %v, want [1 3]", got)
	}
}

func TestRNGDeterministicAndDistinct(t *testing.T) {
	a1 := RNG(42, "computer-0")
	a2 := RNG(42, "computer-0")
	b := RNG(42, "computer-1")
	c := RNG(43, "computer-0")
	sameAsA1 := true
	diffB, diffC := false, false
	for i := 0; i < 32; i++ {
		v1, v2 := a1.Int63(), a2.Int63()
		if v1 != v2 {
			sameAsA1 = false
		}
		if v1 != b.Int63() {
			diffB = true
		}
		if v1 != c.Int63() {
			diffC = true
		}
	}
	if !sameAsA1 {
		t.Error("same (seed,name) produced different streams")
	}
	if !diffB {
		t.Error("different names produced identical streams")
	}
	if !diffC {
		t.Error("different seeds produced identical streams")
	}
}

// Property: whatever the schedule, execution order is non-decreasing in time
// and every non-cancelled event within the horizon fires exactly once.
func TestRunOrderProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := func(n uint8) bool {
		s := New()
		count := int(n%50) + 1
		fired := 0
		last := -1.0
		ok := true
		for i := 0; i < count; i++ {
			tm := rng.Float64() * 100
			if _, err := s.Schedule(tm, func(sim *Simulator) {
				fired++
				if sim.Now() < last {
					ok = false
				}
				last = sim.Now()
			}); err != nil {
				return false
			}
		}
		s.Run(100)
		return ok && fired == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
