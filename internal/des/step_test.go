package des

import (
	"math/rand"
	"testing"
)

// A peeked event that is cancelled before ProcessNextEvent must be skipped:
// the cancellation contract does not depend on whether a shared-clock
// driver already looked at the event's timestamp.
func TestCancelAfterPeekSkipsEvent(t *testing.T) {
	s := New()
	ran := false
	ev, err := s.Schedule(2, func(*Simulator) { ran = true })
	if err != nil {
		t.Fatal(err)
	}
	after := false
	if _, err := s.Schedule(3, func(*Simulator) { after = true }); err != nil {
		t.Fatal(err)
	}
	tm, ok := s.PeekNextEventTime()
	if !ok || tm != 2 {
		t.Fatalf("PeekNextEventTime = %v, %v; want 2, true", tm, ok)
	}
	ev.Cancel()
	if !s.ProcessNextEvent() {
		t.Fatal("ProcessNextEvent = false with a live event pending")
	}
	if ran {
		t.Error("cancelled event ran")
	}
	if !after {
		t.Error("live event after the cancelled one did not run")
	}
	if s.Now() != 3 {
		t.Errorf("Now = %v, want 3 (cancelled event must not advance the clock)", s.Now())
	}
	if s.Fired() != 1 {
		t.Errorf("Fired = %d, want 1", s.Fired())
	}
}

// HasPendingEvents must see through a calendar holding only cancelled
// events, and the step primitives must report an empty calendar.
func TestStepPrimitivesOnCancelledOnlyCalendar(t *testing.T) {
	s := New()
	ev1, err := s.Schedule(1, func(*Simulator) {})
	if err != nil {
		t.Fatal(err)
	}
	ev2, err := s.Schedule(2, func(*Simulator) {})
	if err != nil {
		t.Fatal(err)
	}
	ev1.Cancel()
	ev2.Cancel()
	if s.HasPendingEvents() {
		t.Error("HasPendingEvents = true with only cancelled events")
	}
	if _, ok := s.PeekNextEventTime(); ok {
		t.Error("PeekNextEventTime ok = true with only cancelled events")
	}
	if s.ProcessNextEvent() {
		t.Error("ProcessNextEvent = true with only cancelled events")
	}
	if s.Fired() != 0 {
		t.Errorf("Fired = %d, want 0", s.Fired())
	}
}

// Same-timestamp events must fire in insertion order when driven one
// ProcessNextEvent call at a time — the tie-break that keeps stepped
// execution identical to Run.
func TestStepTieBreakByInsertionOrder(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 8; i++ {
		i := i
		if _, err := s.Schedule(5, func(*Simulator) { got = append(got, i) }); err != nil {
			t.Fatal(err)
		}
	}
	for s.HasPendingEvents() {
		if !s.ProcessNextEvent() {
			t.Fatal("ProcessNextEvent = false with pending events")
		}
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("stepped tie order = %v, want insertion order", got)
		}
	}
}

// Run and the stepped loop must agree on Fired, Now, and the exact event
// order under randomized schedules, including events that schedule further
// events and random cancellations.
func TestRunVersusSteppedEquivalence(t *testing.T) {
	const trials = 50
	for trial := 0; trial < trials; trial++ {
		build := func(order *[]int) *Simulator {
			rng := rand.New(rand.NewSource(int64(1000 + trial)))
			s := New()
			n := 5 + rng.Intn(40)
			var events []*Event
			for i := 0; i < n; i++ {
				i := i
				tm := rng.Float64() * 90
				chain := rng.Intn(3) == 0
				ev, err := s.Schedule(tm, func(sim *Simulator) {
					*order = append(*order, i)
					if chain {
						if _, err := sim.ScheduleAfter(rng.Float64()*10, func(*Simulator) {
							*order = append(*order, -i-1)
						}); err != nil {
							t.Error(err)
						}
					}
				})
				if err != nil {
					t.Fatal(err)
				}
				events = append(events, ev)
			}
			for _, ev := range events {
				if rng.Intn(4) == 0 {
					ev.Cancel()
				}
			}
			return s
		}

		var orderRun []int
		ran := build(&orderRun)
		ran.Run(100)

		var orderStep []int
		stepped := build(&orderStep)
		for {
			tm, ok := stepped.PeekNextEventTime()
			if !ok || tm > 100 {
				break
			}
			stepped.ProcessNextEvent()
		}

		if ran.Fired() != stepped.Fired() {
			t.Fatalf("trial %d: Fired: Run %d vs stepped %d", trial, ran.Fired(), stepped.Fired())
		}
		if len(orderRun) != len(orderStep) {
			t.Fatalf("trial %d: order length: Run %d vs stepped %d", trial, len(orderRun), len(orderStep))
		}
		for i := range orderRun {
			if orderRun[i] != orderStep[i] {
				t.Fatalf("trial %d: event order diverges at %d: Run %v vs stepped %v", trial, i, orderRun, orderStep)
			}
		}
		// Run advances the clock to the horizon on exit; the stepped loop
		// leaves it at the last processed event. Both must agree on the
		// last event time, which is the stepped clock.
		if stepped.Now() > ran.Now() {
			t.Fatalf("trial %d: stepped clock %v passed Run clock %v", trial, stepped.Now(), ran.Now())
		}
	}
}
