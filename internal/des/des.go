// Package des implements a minimal discrete-event simulation kernel: a
// simulation clock, an event calendar backed by container/heap, and
// deterministic per-component RNG streams. The cluster plant in
// internal/cluster is built on it.
//
// Events are plain callbacks scheduled at absolute simulation times.
// Ties are broken by insertion order so runs are fully deterministic.
//
// Invariant: RNG(seed, name) derives an independent, reproducible stream
// per (seed, component-name) pair, so adding a consumer of randomness to
// one component never perturbs another's stream — the property that keeps
// run records stable across refactors and makes the determinism pins
// throughout the test suites possible.
package des

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Event is a scheduled callback. The callback receives the simulator so it
// can schedule further events.
type Event struct {
	time   float64
	seq    uint64
	fn     func(*Simulator)
	index  int // heap index; -1 once popped or cancelled
	cancel bool
}

// Time returns the simulation time the event is scheduled at.
func (e *Event) Time() float64 { return e.time }

// Cancel marks the event so its callback will not run. Cancelling an
// already-fired event is a no-op.
func (e *Event) Cancel() { e.cancel = true }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Simulator owns the clock and the event calendar. Construct with New.
type Simulator struct {
	now     float64
	queue   eventQueue
	seq     uint64
	fired   uint64
	stopped bool
}

// New returns a simulator with the clock at 0.
func New() *Simulator {
	return &Simulator{}
}

// Now returns the current simulation time in seconds.
func (s *Simulator) Now() float64 { return s.now }

// Fired returns the number of events executed so far.
func (s *Simulator) Fired() uint64 { return s.fired }

// Pending returns the number of events still scheduled (including
// cancelled events not yet discarded).
func (s *Simulator) Pending() int { return len(s.queue) }

// Schedule registers fn to run at absolute time t and returns the event so
// the caller can cancel it. Scheduling in the past (t < Now) is an error.
func (s *Simulator) Schedule(t float64, fn func(*Simulator)) (*Event, error) {
	if t < s.now {
		return nil, fmt.Errorf("des: schedule at %v before now %v", t, s.now)
	}
	ev := &Event{time: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, ev)
	return ev, nil
}

// ScheduleAfter registers fn to run delay seconds from now.
func (s *Simulator) ScheduleAfter(delay float64, fn func(*Simulator)) (*Event, error) {
	return s.Schedule(s.now+delay, fn)
}

// Stop halts the run loop after the current event completes.
func (s *Simulator) Stop() { s.stopped = true }

// purgeCancelled discards cancelled events sitting at the head of the
// calendar so the step primitives observe only live events. Cancelled
// events deeper in the heap are discarded lazily once they surface.
func (s *Simulator) purgeCancelled() {
	for len(s.queue) > 0 && s.queue[0].cancel {
		heap.Pop(&s.queue)
	}
}

// HasPendingEvents reports whether any live (non-cancelled) event remains
// on the calendar.
func (s *Simulator) HasPendingEvents() bool {
	s.purgeCancelled()
	return len(s.queue) > 0
}

// PeekNextEventTime returns the scheduled time of the next live event
// without executing it, and ok=false when the calendar is empty. The clock
// does not move. An event cancelled after being peeked will still be
// skipped by ProcessNextEvent.
func (s *Simulator) PeekNextEventTime() (t float64, ok bool) {
	s.purgeCancelled()
	if len(s.queue) == 0 {
		return 0, false
	}
	return s.queue[0].time, true
}

// ProcessNextEvent pops the next live event, advances the clock to its
// time, and runs its callback. It reports whether an event executed (false
// on an empty calendar). Unlike Run it enforces no horizon: callers
// sequencing multiple simulators against a shared clock peek first and
// decide which one advances.
func (s *Simulator) ProcessNextEvent() bool {
	s.purgeCancelled()
	if len(s.queue) == 0 {
		return false
	}
	next := heap.Pop(&s.queue).(*Event)
	s.now = next.time
	s.fired++
	next.fn(s)
	return true
}

// Run executes events in time order until the calendar is empty, Stop is
// called, or the clock would pass horizon (events at exactly horizon run).
// It returns the number of events executed during the call.
//
// Run is a thin loop over the step primitives (PeekNextEventTime /
// ProcessNextEvent); shared-clock drivers such as engine.MultiCluster use
// the primitives directly to interleave several simulations in global
// timestamp order.
func (s *Simulator) Run(horizon float64) uint64 {
	s.stopped = false
	start := s.fired
	for !s.stopped {
		t, ok := s.PeekNextEventTime()
		if !ok || t > horizon {
			break
		}
		s.ProcessNextEvent()
	}
	if s.now < horizon && !s.stopped {
		// Advance the clock to the horizon so repeated Run calls observe
		// contiguous time even across empty stretches.
		s.now = horizon
	}
	return s.fired - start
}

// RNG derives a deterministic random stream for the named component from
// the given master seed. Streams for distinct names are independent; the
// same (seed, name) pair always yields an identical stream.
func RNG(seed int64, name string) *rand.Rand {
	h := uint64(1469598103934665603) // FNV-1a offset basis
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	h ^= uint64(seed)
	h *= 1099511628211
	return rand.New(rand.NewSource(int64(h)))
}
