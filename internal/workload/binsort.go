package workload

// binScratch holds the reusable buffers of the per-bin arrival sort. Each
// Generator/Feed owns one, so concurrent tenants never share scratch.
type binScratch struct {
	heads []int32
	tmp   []Request
}

// sortByArrival sorts reqs ascending by Arrival and returns the sorted
// slice (which may be the scratch buffer — callers must adopt the return
// value, mirroring append semantics). Arrival offsets are uniform over
// [start, start+step), so a single distribution pass into ~one-per-request
// buckets followed by an insertion cleanup of the nearly sorted result
// runs in expected linear time — this replaced a reflection-based
// sort.Slice that dominated the fleet's per-tick profile.
//
// The sort is stable, and for the distinct keys the generator draws
// (continuous uniforms) any comparison sort yields the same permutation,
// so replacing the previous unstable sort leaves every committed run
// byte-identical.
func sortByArrival(reqs []Request, start, step float64, s *binScratch) []Request {
	n := len(reqs)
	if n < 2 {
		return reqs
	}
	if n < 16 || step <= 0 {
		insertionByArrival(reqs)
		return reqs
	}
	if cap(s.heads) < n+1 {
		s.heads = make([]int32, n+1)
	}
	if cap(s.tmp) < n {
		s.tmp = make([]Request, n)
	}
	heads := s.heads[: n+1 : n+1]
	for i := range heads {
		heads[i] = 0
	}
	tmp := s.tmp[:n:n]
	inv := float64(n) / step
	// Count bucket occupancy, then prefix-sum into scatter offsets.
	for i := range reqs {
		heads[bucketOf(reqs[i].Arrival, start, inv, n)+1]++
	}
	for b := 1; b <= n; b++ {
		heads[b] += heads[b-1]
	}
	for i := range reqs {
		b := bucketOf(reqs[i].Arrival, start, inv, n)
		tmp[heads[b]] = reqs[i]
		heads[b]++
	}
	insertionByArrival(tmp)
	// Ping-pong the buffers: the sorted scratch becomes the caller's
	// batch, the old batch becomes next bin's scratch.
	s.tmp = reqs[:0]
	return tmp
}

// bucketOf maps an arrival in [start, start+step) to one of n buckets,
// clamping draws that land outside the bin (possible only through
// non-generator callers) into the edge buckets.
func bucketOf(arrival, start, inv float64, n int) int {
	b := int((arrival - start) * inv)
	if b < 0 {
		return 0
	}
	if b >= n {
		return n - 1
	}
	return b
}

// insertionByArrival is the stable cleanup pass: linear on the
// nearly sorted scatter output, and the full sort for tiny bins.
func insertionByArrival(reqs []Request) {
	for i := 1; i < len(reqs); i++ {
		r := reqs[i]
		j := i - 1
		for j >= 0 && reqs[j].Arrival > r.Arrival {
			reqs[j+1] = reqs[j]
			j--
		}
		reqs[j+1] = r
	}
}
