// Package workload implements the paper's workload substrate: binned
// arrival traces (the §4.3 synthetic trace and a World-Cup-98-like diurnal
// day), a virtual object store with Zipf popularity and lognormal temporal
// locality, a per-bin request generator that turns trace counts into
// individual requests with arrival offsets and service demands, and the
// named Scenario registry (scenario.go) through which experiments, CLIs,
// and the control-plane daemon select workloads — including stress
// profiles beyond the paper's two (flash crowds, multiplicative noise,
// heavy-tailed service times, correlated failure storms, recorded-trace
// replay).
//
// Invariants the rest of the system relies on:
//
//   - Generator and Feed share one bin-synthesis code path (synthBin),
//     including the exact RNG call sequence, so a Feed pushed a trace's
//     counts reproduces a pre-materialized Generator run bit-for-bit —
//     the foundation of the online-equals-batch equivalence pinned in
//     internal/fleet.
//   - Every registered Scenario's trace builder is deterministic per
//     seed: same seed, bin-for-bin identical series (pinned by
//     TestScenarioDeterminismPerSeed). The robustness-matrix snapshot
//     (BENCH_scenarios.json) is byte-reproducible because of it.
//   - Store demand draws with TailFrac == 0 preserve the historical RNG
//     call sequence, so pre-scenario runs stay bit-identical.
//
// Substitution note (see DESIGN.md §3): the real WC'98 and ISP traces are
// not redistributable; the profiles here reproduce the published shapes
// (time-of-day nonstationarity, noise bands, peak/trough ratios), which is
// what the controllers respond to.
package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// Store is the virtual object store of §4.3: Objects objects whose
// individual processing times are drawn uniformly from [MinDemand,
// MaxDemand]; a "popular" prefix of PopularCount objects receives
// PopularShare of all requests (popularity follows Zipf's law within each
// partition); and temporal locality re-requests recently seen objects with
// lognormally distributed stack distances.
//
// Construct with NewStore.
type Store struct {
	demands []float64

	popularCount int
	popularShare float64

	popZipf  *rand.Zipf
	rareZipf *rand.Zipf

	// Temporal locality parameters.
	localProb  float64
	logMu      float64
	logSigma   float64
	history    []int
	historyCap int
}

// StoreConfig parameterizes NewStore. The zero value is not valid; use
// DefaultStoreConfig for the paper's settings.
type StoreConfig struct {
	// Objects is the total number of objects (paper: 10 000).
	Objects int
	// PopularCount is the size of the popular partition (paper: 1000).
	PopularCount int
	// PopularShare is the fraction of requests served by the popular
	// partition (paper: 0.9).
	PopularShare float64
	// MinDemand and MaxDemand bound per-object full-speed processing
	// times in seconds (paper: 10–25 ms).
	MinDemand, MaxDemand float64
	// ZipfS is the Zipf exponent used within each partition (> 1 as
	// required by math/rand; web workloads are near 1).
	ZipfS float64
	// LocalityProb is the probability a request re-references a recently
	// requested object instead of sampling by popularity.
	LocalityProb float64
	// LogMu and LogSigma parameterize the lognormal stack distance of
	// temporal locality (§4.3 cites Barford & Crovella).
	LogMu, LogSigma float64
	// HistoryCap bounds the locality history length.
	HistoryCap int
	// TailFrac, when positive, mixes a heavy tail into the demand draws:
	// each object independently has its full-speed processing time drawn
	// from a truncated Pareto distribution (scale MaxDemand, shape
	// TailAlpha, capped at TailCap seconds) with probability TailFrac
	// instead of the uniform body. Zero (the default) preserves the
	// paper's uniform demands and the exact historical RNG call
	// sequence, so existing runs stay bit-identical.
	TailFrac float64
	// TailAlpha is the Pareto shape (smaller = heavier tail; web service
	// times are typically 1-1.5).
	TailAlpha float64
	// TailCap truncates tail draws, in seconds.
	TailCap float64
}

// DefaultStoreConfig returns the paper's virtual-store parameters.
func DefaultStoreConfig() StoreConfig {
	return StoreConfig{
		Objects:      10000,
		PopularCount: 1000,
		PopularShare: 0.9,
		MinDemand:    0.010,
		MaxDemand:    0.025,
		ZipfS:        1.1,
		LocalityProb: 0.3,
		LogMu:        math.Log(50),
		LogSigma:     1.5,
		HistoryCap:   4096,
	}
}

// Validate reports whether the configuration is usable.
func (c StoreConfig) Validate() error {
	if c.Objects <= 0 {
		return fmt.Errorf("workload: objects %d <= 0", c.Objects)
	}
	if c.PopularCount <= 0 || c.PopularCount > c.Objects {
		return fmt.Errorf("workload: popular count %d outside (0, %d]", c.PopularCount, c.Objects)
	}
	if c.PopularShare < 0 || c.PopularShare > 1 {
		return fmt.Errorf("workload: popular share %v outside [0, 1]", c.PopularShare)
	}
	if c.MinDemand <= 0 || c.MaxDemand < c.MinDemand {
		return fmt.Errorf("workload: demand range [%v, %v] invalid", c.MinDemand, c.MaxDemand)
	}
	if c.ZipfS <= 1 {
		return fmt.Errorf("workload: zipf exponent %v must be > 1", c.ZipfS)
	}
	if c.LocalityProb < 0 || c.LocalityProb >= 1 {
		return fmt.Errorf("workload: locality probability %v outside [0, 1)", c.LocalityProb)
	}
	if c.LogSigma < 0 {
		return fmt.Errorf("workload: lognormal sigma %v < 0", c.LogSigma)
	}
	if c.HistoryCap < 1 {
		return fmt.Errorf("workload: history cap %d < 1", c.HistoryCap)
	}
	if c.TailFrac < 0 || c.TailFrac >= 1 {
		return fmt.Errorf("workload: tail fraction %v outside [0, 1)", c.TailFrac)
	}
	if c.TailFrac > 0 {
		if c.TailAlpha <= 0 {
			return fmt.Errorf("workload: tail alpha %v <= 0", c.TailAlpha)
		}
		if c.TailCap < c.MaxDemand {
			return fmt.Errorf("workload: tail cap %v below max demand %v", c.TailCap, c.MaxDemand)
		}
	}
	return nil
}

// NewStore builds a store using rng for the per-object demand draws and the
// popularity samplers.
func NewStore(rng *rand.Rand, cfg StoreConfig) (*Store, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Store{
		demands:      make([]float64, cfg.Objects),
		popularCount: cfg.PopularCount,
		popularShare: cfg.PopularShare,
		localProb:    cfg.LocalityProb,
		logMu:        cfg.LogMu,
		logSigma:     cfg.LogSigma,
		historyCap:   cfg.HistoryCap,
	}
	for i := range s.demands {
		s.demands[i] = cfg.MinDemand + rng.Float64()*(cfg.MaxDemand-cfg.MinDemand)
		if cfg.TailFrac > 0 && rng.Float64() < cfg.TailFrac {
			// Truncated Pareto tail: scale MaxDemand, shape TailAlpha.
			// (1 - U) is in (0, 1], so the draw is finite; U = 0 lands
			// exactly on the scale.
			d := cfg.MaxDemand * math.Pow(1-rng.Float64(), -1/cfg.TailAlpha)
			if d > cfg.TailCap {
				d = cfg.TailCap
			}
			s.demands[i] = d
		}
	}
	s.popZipf = rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.PopularCount-1))
	rare := cfg.Objects - cfg.PopularCount
	if rare > 0 {
		s.rareZipf = rand.NewZipf(rng, cfg.ZipfS, 1, uint64(rare-1))
	}
	return s, nil
}

// Objects returns the number of objects in the store.
func (s *Store) Objects() int { return len(s.demands) }

// Demand returns the full-speed processing time of object id in seconds.
func (s *Store) Demand(id int) float64 { return s.demands[id] }

// MeanDemand returns the average full-speed processing time across objects.
func (s *Store) MeanDemand() float64 {
	sum := 0.0
	for _, d := range s.demands {
		sum += d
	}
	return sum / float64(len(s.demands))
}

// Sample draws the next requested object id, honouring temporal locality
// and the popular/rare partition split.
func (s *Store) Sample(rng *rand.Rand) int {
	if len(s.history) > 0 && rng.Float64() < s.localProb {
		// Lognormal stack distance into the recent-history buffer.
		d := int(math.Exp(s.logMu + s.logSigma*rng.NormFloat64()))
		if d < len(s.history) {
			id := s.history[len(s.history)-1-d]
			s.remember(id)
			return id
		}
	}
	var id int
	if s.rareZipf == nil || rng.Float64() < s.popularShare {
		id = int(s.popZipf.Uint64())
	} else {
		id = s.popularCount + int(s.rareZipf.Uint64())
	}
	s.remember(id)
	return id
}

func (s *Store) remember(id int) {
	s.history = append(s.history, id)
	if len(s.history) > s.historyCap {
		// Drop the oldest half to amortize the copy.
		keep := s.historyCap / 2
		copy(s.history, s.history[len(s.history)-keep:])
		s.history = s.history[:keep]
	}
}
