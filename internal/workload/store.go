// Package workload implements the paper's workload substrate: binned
// arrival traces (the §4.3 synthetic trace and a World-Cup-98-like diurnal
// day), a virtual object store with Zipf popularity and lognormal temporal
// locality, and a per-bin request generator that turns trace counts into
// individual requests with arrival offsets and service demands.
//
// Substitution note (see DESIGN.md §3): the real WC'98 and ISP traces are
// not redistributable; the profiles here reproduce the published shapes
// (time-of-day nonstationarity, noise bands, peak/trough ratios), which is
// what the controllers respond to.
package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// Store is the virtual object store of §4.3: Objects objects whose
// individual processing times are drawn uniformly from [MinDemand,
// MaxDemand]; a "popular" prefix of PopularCount objects receives
// PopularShare of all requests (popularity follows Zipf's law within each
// partition); and temporal locality re-requests recently seen objects with
// lognormally distributed stack distances.
//
// Construct with NewStore.
type Store struct {
	demands []float64

	popularCount int
	popularShare float64

	popZipf  *rand.Zipf
	rareZipf *rand.Zipf

	// Temporal locality parameters.
	localProb  float64
	logMu      float64
	logSigma   float64
	history    []int
	historyCap int
}

// StoreConfig parameterizes NewStore. The zero value is not valid; use
// DefaultStoreConfig for the paper's settings.
type StoreConfig struct {
	// Objects is the total number of objects (paper: 10 000).
	Objects int
	// PopularCount is the size of the popular partition (paper: 1000).
	PopularCount int
	// PopularShare is the fraction of requests served by the popular
	// partition (paper: 0.9).
	PopularShare float64
	// MinDemand and MaxDemand bound per-object full-speed processing
	// times in seconds (paper: 10–25 ms).
	MinDemand, MaxDemand float64
	// ZipfS is the Zipf exponent used within each partition (> 1 as
	// required by math/rand; web workloads are near 1).
	ZipfS float64
	// LocalityProb is the probability a request re-references a recently
	// requested object instead of sampling by popularity.
	LocalityProb float64
	// LogMu and LogSigma parameterize the lognormal stack distance of
	// temporal locality (§4.3 cites Barford & Crovella).
	LogMu, LogSigma float64
	// HistoryCap bounds the locality history length.
	HistoryCap int
}

// DefaultStoreConfig returns the paper's virtual-store parameters.
func DefaultStoreConfig() StoreConfig {
	return StoreConfig{
		Objects:      10000,
		PopularCount: 1000,
		PopularShare: 0.9,
		MinDemand:    0.010,
		MaxDemand:    0.025,
		ZipfS:        1.1,
		LocalityProb: 0.3,
		LogMu:        math.Log(50),
		LogSigma:     1.5,
		HistoryCap:   4096,
	}
}

// Validate reports whether the configuration is usable.
func (c StoreConfig) Validate() error {
	if c.Objects <= 0 {
		return fmt.Errorf("workload: objects %d <= 0", c.Objects)
	}
	if c.PopularCount <= 0 || c.PopularCount > c.Objects {
		return fmt.Errorf("workload: popular count %d outside (0, %d]", c.PopularCount, c.Objects)
	}
	if c.PopularShare < 0 || c.PopularShare > 1 {
		return fmt.Errorf("workload: popular share %v outside [0, 1]", c.PopularShare)
	}
	if c.MinDemand <= 0 || c.MaxDemand < c.MinDemand {
		return fmt.Errorf("workload: demand range [%v, %v] invalid", c.MinDemand, c.MaxDemand)
	}
	if c.ZipfS <= 1 {
		return fmt.Errorf("workload: zipf exponent %v must be > 1", c.ZipfS)
	}
	if c.LocalityProb < 0 || c.LocalityProb >= 1 {
		return fmt.Errorf("workload: locality probability %v outside [0, 1)", c.LocalityProb)
	}
	if c.LogSigma < 0 {
		return fmt.Errorf("workload: lognormal sigma %v < 0", c.LogSigma)
	}
	if c.HistoryCap < 1 {
		return fmt.Errorf("workload: history cap %d < 1", c.HistoryCap)
	}
	return nil
}

// NewStore builds a store using rng for the per-object demand draws and the
// popularity samplers.
func NewStore(rng *rand.Rand, cfg StoreConfig) (*Store, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Store{
		demands:      make([]float64, cfg.Objects),
		popularCount: cfg.PopularCount,
		popularShare: cfg.PopularShare,
		localProb:    cfg.LocalityProb,
		logMu:        cfg.LogMu,
		logSigma:     cfg.LogSigma,
		historyCap:   cfg.HistoryCap,
	}
	for i := range s.demands {
		s.demands[i] = cfg.MinDemand + rng.Float64()*(cfg.MaxDemand-cfg.MinDemand)
	}
	s.popZipf = rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.PopularCount-1))
	rare := cfg.Objects - cfg.PopularCount
	if rare > 0 {
		s.rareZipf = rand.NewZipf(rng, cfg.ZipfS, 1, uint64(rare-1))
	}
	return s, nil
}

// Objects returns the number of objects in the store.
func (s *Store) Objects() int { return len(s.demands) }

// Demand returns the full-speed processing time of object id in seconds.
func (s *Store) Demand(id int) float64 { return s.demands[id] }

// MeanDemand returns the average full-speed processing time across objects.
func (s *Store) MeanDemand() float64 {
	sum := 0.0
	for _, d := range s.demands {
		sum += d
	}
	return sum / float64(len(s.demands))
}

// Sample draws the next requested object id, honouring temporal locality
// and the popular/rare partition split.
func (s *Store) Sample(rng *rand.Rand) int {
	if len(s.history) > 0 && rng.Float64() < s.localProb {
		// Lognormal stack distance into the recent-history buffer.
		d := int(math.Exp(s.logMu + s.logSigma*rng.NormFloat64()))
		if d < len(s.history) {
			id := s.history[len(s.history)-1-d]
			s.remember(id)
			return id
		}
	}
	var id int
	if s.rareZipf == nil || rng.Float64() < s.popularShare {
		id = int(s.popZipf.Uint64())
	} else {
		id = s.popularCount + int(s.rareZipf.Uint64())
	}
	s.remember(id)
	return id
}

func (s *Store) remember(id int) {
	s.history = append(s.history, id)
	if len(s.history) > s.historyCap {
		// Drop the oldest half to amortize the copy.
		keep := s.historyCap / 2
		copy(s.history, s.history[len(s.history)-keep:])
		s.history = s.history[:keep]
	}
}
