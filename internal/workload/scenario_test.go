package workload

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestScenarioRegistryContents(t *testing.T) {
	want := []string{"synthetic", "wc98", "step", "flashcrowd", "diurnal-noisy", "heavytail", "failstorm", "sawtooth", "tracefile"}
	have := map[string]bool{}
	for _, s := range Scenarios() {
		have[s.Name] = true
		if s.Description == "" {
			t.Errorf("scenario %q has no description", s.Name)
		}
	}
	for _, n := range want {
		if !have[n] {
			t.Errorf("scenario %q not registered", n)
		}
	}
	if len(have) < len(want) {
		t.Errorf("registry has %d scenarios, want >= %d", len(have), len(want))
	}
}

func TestLookupScenarioUnknownListsNames(t *testing.T) {
	_, err := LookupScenario("nope")
	if err == nil {
		t.Fatal("want error for unknown scenario")
	}
	for _, frag := range []string{`"nope"`, "flashcrowd", "synthetic", "tracefile:<path>"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("error %q does not mention %q", err, frag)
		}
	}
}

func TestLookupScenarioArgHandling(t *testing.T) {
	if _, err := LookupScenario("tracefile"); err == nil || !strings.Contains(err.Error(), "tracefile:<path>") {
		t.Errorf("bare tracefile lookup: got %v, want arg hint", err)
	}
	if _, err := LookupScenario("synthetic:extra"); err == nil || !strings.Contains(err.Error(), "takes no argument") {
		t.Errorf("argument on plain scenario: got %v, want rejection", err)
	}
}

func TestRegisterScenarioRejectsBadNames(t *testing.T) {
	for _, s := range []Scenario{
		{Name: "", Trace: syntheticScenarioTrace},
		{Name: "has:colon", Trace: syntheticScenarioTrace},
		{Name: "has space", Trace: syntheticScenarioTrace},
		{Name: "notrace"},
		{Name: "synthetic", Trace: syntheticScenarioTrace}, // duplicate
	} {
		if err := RegisterScenario(s); err == nil {
			t.Errorf("RegisterScenario(%q) accepted an invalid scenario", s.Name)
		}
	}
}

// TestScenarioDeterminismPerSeed pins the registry invariant every
// consumer (matrix snapshot, CLIs, tenant seeding) relies on: building a
// registered scenario twice with the same seed yields bin-for-bin
// identical traces with a positive bin width that divides into the
// hierarchy's T_L0 grid.
func TestScenarioDeterminismPerSeed(t *testing.T) {
	for _, sc := range Scenarios() {
		if sc.NeedsArg {
			continue
		}
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			a, err := sc.Trace(7)
			if err != nil {
				t.Fatal(err)
			}
			b, err := sc.Trace(7)
			if err != nil {
				t.Fatal(err)
			}
			if a.Len() == 0 || a.Step <= 0 {
				t.Fatalf("trace has %d bins at step %v", a.Len(), a.Step)
			}
			if rem := a.Step / 30; rem != float64(int(rem)) {
				t.Errorf("bin width %v s is not a multiple of T_L0 = 30 s", a.Step)
			}
			if a.Len() != b.Len() || a.Start != b.Start || a.Step != b.Step {
				t.Fatalf("shape differs across builds: (%d,%v,%v) vs (%d,%v,%v)",
					a.Len(), a.Start, a.Step, b.Len(), b.Start, b.Step)
			}
			for i := range a.Values {
				if a.Values[i] != b.Values[i] {
					t.Fatalf("bin %d differs: %v vs %v", i, a.Values[i], b.Values[i])
				}
			}
			if err := sc.StoreConfig().Validate(); err != nil {
				t.Errorf("store config invalid: %v", err)
			}
		})
	}
}

func TestScenarioSeedSensitivity(t *testing.T) {
	for _, name := range []string{"flashcrowd", "diurnal-noisy", "sawtooth"} {
		sc, err := LookupScenario(name)
		if err != nil {
			t.Fatal(err)
		}
		a, err := sc.Trace(1)
		if err != nil {
			t.Fatal(err)
		}
		b, err := sc.Trace(2)
		if err != nil {
			t.Fatal(err)
		}
		same := true
		for i := range a.Values {
			if a.Values[i] != b.Values[i] {
				same = false
				break
			}
		}
		if same {
			t.Errorf("scenario %q identical across seeds 1 and 2", name)
		}
	}
}

func TestTracefileRoundTrip(t *testing.T) {
	sc, err := LookupScenario("synthetic")
	if err != nil {
		t.Fatal(err)
	}
	orig, err := sc.Trace(3)
	if err != nil {
		t.Fatal(err)
	}
	orig = orig.Slice(0, 64)
	path := filepath.Join(t.TempDir(), "day.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := orig.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	replay, err := LookupScenario("tracefile:" + path)
	if err != nil {
		t.Fatal(err)
	}
	if replay.Arg != path {
		t.Errorf("bound arg %q, want %q", replay.Arg, path)
	}
	got, err := replay.Trace(99) // seed must not matter for a recorded trace
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != orig.Len() || got.Step != orig.Step || got.Start != orig.Start {
		t.Fatalf("shape (%d,%v,%v), want (%d,%v,%v)", got.Len(), got.Start, got.Step, orig.Len(), orig.Start, orig.Step)
	}
	for i := range orig.Values {
		if got.Values[i] != orig.Values[i] {
			t.Fatalf("bin %d: %v != %v", i, got.Values[i], orig.Values[i])
		}
	}
}

func TestTracefileMissingAndEmpty(t *testing.T) {
	if sc, err := LookupScenario("tracefile:" + filepath.Join(t.TempDir(), "absent.csv")); err != nil {
		t.Fatalf("lookup should bind lazily: %v", err)
	} else if _, err := sc.Trace(1); err == nil {
		t.Error("want error for missing trace file")
	}
	empty := filepath.Join(t.TempDir(), "empty.csv")
	if err := os.WriteFile(empty, []byte("time_s,value\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	sc, err := LookupScenario("tracefile:" + empty)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Trace(1); err == nil {
		t.Error("want error for empty trace file")
	}
}

func TestHeavyTailStore(t *testing.T) {
	sc, err := LookupScenario("heavytail")
	if err != nil {
		t.Fatal(err)
	}
	cfg := sc.StoreConfig()
	if cfg.TailFrac <= 0 {
		t.Fatalf("heavytail scenario has no tail mix: %+v", cfg)
	}
	s, err := NewStore(rand.New(rand.NewSource(5)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	tail := 0
	for i := 0; i < s.Objects(); i++ {
		d := s.Demand(i)
		if d > cfg.TailCap {
			t.Fatalf("object %d demand %v exceeds cap %v", i, d, cfg.TailCap)
		}
		if d > cfg.MaxDemand {
			tail++
		}
	}
	frac := float64(tail) / float64(s.Objects())
	if frac < cfg.TailFrac/3 || frac > cfg.TailFrac*3 {
		t.Errorf("tail fraction %.4f far from configured %.4f", frac, cfg.TailFrac)
	}
	// Determinism per seed.
	s2, err := NewStore(rand.New(rand.NewSource(5)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < s.Objects(); i++ {
		if s.Demand(i) != s2.Demand(i) {
			t.Fatalf("demand %d differs across same-seed stores", i)
		}
	}
}

func TestStoreConfigTailValidation(t *testing.T) {
	base := DefaultStoreConfig()
	bad := base
	bad.TailFrac = 0.1 // alpha and cap unset
	if err := bad.Validate(); err == nil {
		t.Error("tail mix without alpha/cap should not validate")
	}
	bad = base
	bad.TailFrac = 0.1
	bad.TailAlpha = 1.3
	bad.TailCap = base.MaxDemand / 2
	if err := bad.Validate(); err == nil {
		t.Error("tail cap below max demand should not validate")
	}
	bad = base
	bad.TailFrac = 1
	if err := bad.Validate(); err == nil {
		t.Error("tail fraction 1 should not validate")
	}
}

func TestFailstormPlanShape(t *testing.T) {
	sc, err := LookupScenario("failstorm")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sc.Trace(1)
	if err != nil {
		t.Fatal(err)
	}
	plan := sc.FailurePlan(tr)
	if len(plan) == 0 {
		t.Fatal("failstorm has an empty failure plan")
	}
	span := tr.End() - tr.Start
	fails, repairs := 0, 0
	for _, f := range plan {
		if f.At < 0 || f.At > span {
			t.Errorf("event at %v outside trace span %v", f.At, span)
		}
		if f.Repair {
			repairs++
		} else {
			fails++
		}
	}
	if fails < 2 {
		t.Errorf("failstorm injects %d failures, want >= 2 (correlated)", fails)
	}
	if repairs != fails {
		t.Errorf("failstorm has %d repairs for %d failures", repairs, fails)
	}
	// Plans of failure-free scenarios are nil.
	plain, err := LookupScenario("synthetic")
	if err != nil {
		t.Fatal(err)
	}
	if got := plain.FailurePlan(tr); got != nil {
		t.Errorf("synthetic has a failure plan: %v", got)
	}
}
