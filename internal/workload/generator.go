package workload

import (
	"fmt"
	"math/rand"

	"hierctl/internal/series"
)

// Request is one generated service request.
type Request struct {
	// Arrival is the absolute arrival time in simulation seconds.
	Arrival float64
	// Object is the requested object's id in the store.
	Object int
	// Demand is the full-speed processing time in seconds.
	Demand float64
}

// Generator turns a binned arrival trace and a store into per-bin batches
// of individual requests. Batches are generated lazily so multi-million
// request traces never exist in memory at once. Construct with NewGenerator.
type Generator struct {
	trace   *series.Series
	store   *Store
	rng     *rand.Rand
	next    int
	buf     []Request
	scratch binScratch
}

// NewGenerator returns a generator over the trace using the store for
// object sampling and rng for arrival-offset and routing randomness.
func NewGenerator(trace *series.Series, store *Store, rng *rand.Rand) (*Generator, error) {
	if trace == nil || trace.Len() == 0 {
		return nil, fmt.Errorf("workload: empty trace")
	}
	if store == nil {
		return nil, fmt.Errorf("workload: nil store")
	}
	if rng == nil {
		return nil, fmt.Errorf("workload: nil rng")
	}
	return &Generator{trace: trace, store: store, rng: rng}, nil
}

// Bins returns the number of bins in the underlying trace.
func (g *Generator) Bins() int { return g.trace.Len() }

// BinSeconds returns the trace bin width in seconds.
func (g *Generator) BinSeconds() float64 { return g.trace.Step }

// Trace returns the underlying arrival-count series.
func (g *Generator) Trace() *series.Series { return g.trace }

// NextBin generates the requests of the next bin, sorted by arrival time,
// and reports the bin index. It returns ok=false once the trace is
// exhausted. The returned slice is reused by subsequent calls; callers that
// retain requests must copy them.
func (g *Generator) NextBin() (bin int, reqs []Request, ok bool) {
	if g.next >= g.trace.Len() {
		return 0, nil, false
	}
	bin = g.next
	g.next++
	n := int(g.trace.Values[bin] + 0.5)
	g.buf = synthBin(g.buf, &g.scratch, n, g.trace.TimeAt(bin), g.trace.Step, g.store, g.rng)
	return bin, g.buf, true
}

// Reset rewinds the generator to the first bin. The RNG stream is not
// rewound; use a fresh generator for bit-identical replay.
func (g *Generator) Reset() { g.next = 0 }

// synthBin fills buf with n requests for the bin starting at start: object
// draws honour the store's popularity and locality state, arrival offsets
// are uniform over the bin, and the batch is sorted by arrival. Generator
// and Feed share this one code path — including the exact RNG call
// sequence — which is what makes a pushed count stream reproduce a
// pre-materialized trace bit-for-bit.
func synthBin(buf []Request, scratch *binScratch, n int, start, step float64, store *Store, rng *rand.Rand) []Request {
	if cap(buf) < n {
		buf = make([]Request, 0, n)
	}
	buf = buf[:0]
	for i := 0; i < n; i++ {
		obj := store.Sample(rng)
		buf = append(buf, Request{
			Arrival: start + rng.Float64()*step,
			Object:  obj,
			Demand:  store.Demand(obj),
		})
	}
	return sortByArrival(buf, start, step, scratch)
}

// Feed is the push-driven counterpart of Generator for online operation:
// instead of walking a pre-materialized trace, callers stream arrival
// counts one bin at a time (e.g. from live observations) and the feed
// synthesizes that bin's requests on the spot. A Feed pushed the values of
// a trace produces the same request stream as a Generator over that trace
// under the same store and RNG. Construct with NewFeed.
type Feed struct {
	store   *Store
	rng     *rand.Rand
	start   float64
	step    float64
	next    int
	buf     []Request
	scratch binScratch
}

// NewFeed returns a feed whose bin i covers [start+i*binSeconds,
// start+(i+1)*binSeconds).
func NewFeed(start, binSeconds float64, store *Store, rng *rand.Rand) (*Feed, error) {
	if binSeconds <= 0 {
		return nil, fmt.Errorf("workload: bin width %v <= 0", binSeconds)
	}
	if store == nil {
		return nil, fmt.Errorf("workload: nil store")
	}
	if rng == nil {
		return nil, fmt.Errorf("workload: nil rng")
	}
	return &Feed{store: store, rng: rng, start: start, step: binSeconds}, nil
}

// Bins returns the number of bins pushed so far.
func (f *Feed) Bins() int { return f.next }

// BinSeconds returns the bin width in seconds.
func (f *Feed) BinSeconds() float64 { return f.step }

// Push ingests the next bin's arrival count and returns the bin index and
// its synthesized requests, sorted by arrival time. The returned slice is
// reused by subsequent calls; callers that retain requests must copy them.
func (f *Feed) Push(count float64) (bin int, reqs []Request) {
	bin = f.next
	f.next++
	n := int(count + 0.5)
	if n < 0 {
		n = 0
	}
	f.buf = synthBin(f.buf, &f.scratch, n, f.start+float64(bin)*f.step, f.step, f.store, f.rng)
	return bin, f.buf
}
