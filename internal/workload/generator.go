package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"hierctl/internal/series"
)

// Request is one generated service request.
type Request struct {
	// Arrival is the absolute arrival time in simulation seconds.
	Arrival float64
	// Object is the requested object's id in the store.
	Object int
	// Demand is the full-speed processing time in seconds.
	Demand float64
}

// Generator turns a binned arrival trace and a store into per-bin batches
// of individual requests. Batches are generated lazily so multi-million
// request traces never exist in memory at once. Construct with NewGenerator.
type Generator struct {
	trace *series.Series
	store *Store
	rng   *rand.Rand
	next  int
	buf   []Request
}

// NewGenerator returns a generator over the trace using the store for
// object sampling and rng for arrival-offset and routing randomness.
func NewGenerator(trace *series.Series, store *Store, rng *rand.Rand) (*Generator, error) {
	if trace == nil || trace.Len() == 0 {
		return nil, fmt.Errorf("workload: empty trace")
	}
	if store == nil {
		return nil, fmt.Errorf("workload: nil store")
	}
	if rng == nil {
		return nil, fmt.Errorf("workload: nil rng")
	}
	return &Generator{trace: trace, store: store, rng: rng}, nil
}

// Bins returns the number of bins in the underlying trace.
func (g *Generator) Bins() int { return g.trace.Len() }

// BinSeconds returns the trace bin width in seconds.
func (g *Generator) BinSeconds() float64 { return g.trace.Step }

// Trace returns the underlying arrival-count series.
func (g *Generator) Trace() *series.Series { return g.trace }

// NextBin generates the requests of the next bin, sorted by arrival time,
// and reports the bin index. It returns ok=false once the trace is
// exhausted. The returned slice is reused by subsequent calls; callers that
// retain requests must copy them.
func (g *Generator) NextBin() (bin int, reqs []Request, ok bool) {
	if g.next >= g.trace.Len() {
		return 0, nil, false
	}
	bin = g.next
	g.next++
	n := int(g.trace.Values[bin] + 0.5)
	if cap(g.buf) < n {
		g.buf = make([]Request, 0, n)
	}
	g.buf = g.buf[:0]
	start := g.trace.TimeAt(bin)
	for i := 0; i < n; i++ {
		obj := g.store.Sample(g.rng)
		g.buf = append(g.buf, Request{
			Arrival: start + g.rng.Float64()*g.trace.Step,
			Object:  obj,
			Demand:  g.store.Demand(obj),
		})
	}
	sort.Slice(g.buf, func(i, j int) bool { return g.buf[i].Arrival < g.buf[j].Arrival })
	return bin, g.buf, true
}

// Reset rewinds the generator to the first bin. The RNG stream is not
// rewound; use a fresh generator for bit-identical replay.
func (g *Generator) Reset() { g.next = 0 }
