package workload

import (
	"fmt"
	"math"
	"math/rand"

	"hierctl/internal/series"
)

// SyntheticConfig parameterizes the §4.3 synthetic trace: a smooth diurnal
// base structure (standing in for the Arlitt/Williamson ISP trace the paper
// denoised), scaled by ScaleFactor, with segment-wise Gaussian noise added
// per 30-second bin.
type SyntheticConfig struct {
	// Bins is the number of 30-second bins (paper: 1600 L1 periods of
	// 2 min = 6400 bins).
	Bins int
	// BinSeconds is the bin width (paper: 30 s).
	BinSeconds float64
	// BaseMin and BaseMax bound the *unscaled* diurnal structure in
	// requests per bin.
	BaseMin, BaseMax float64
	// ScaleFactor multiplies the structure ("scaled by a factor of four").
	ScaleFactor float64
	// NoiseSigma holds one noise standard deviation (requests per bin)
	// per segment; NoiseBounds holds the segment end bins (exclusive).
	// The paper's segments are [0,300], [301,1025], [1026,1600] in 2-min
	// samples with max noise 200/300/500 arrivals per 30-s interval.
	NoiseSigma  []float64
	NoiseBounds []int
	// Seed drives the noise stream.
	Seed int64
}

// DefaultSyntheticConfig returns the paper's §4.3 trace parameters. The
// base range is chosen so the scaled peak matches Fig. 4 (≈2×10⁴ requests
// per 2-minute sample, i.e. ≈5×10³ per 30-s bin).
func DefaultSyntheticConfig() SyntheticConfig {
	return SyntheticConfig{
		Bins:        6400,
		BinSeconds:  30,
		BaseMin:     150,
		BaseMax:     1250,
		ScaleFactor: 4,
		NoiseSigma:  []float64{200, 300, 500},
		NoiseBounds: []int{1200, 4100, 6400}, // 2-min samples 300/1025/1600 ×4
		Seed:        1,
	}
}

// Validate reports whether the configuration is usable.
func (c SyntheticConfig) Validate() error {
	if c.Bins <= 0 {
		return fmt.Errorf("workload: bins %d <= 0", c.Bins)
	}
	if c.BinSeconds <= 0 {
		return fmt.Errorf("workload: bin seconds %v <= 0", c.BinSeconds)
	}
	if c.BaseMin < 0 || c.BaseMax < c.BaseMin {
		return fmt.Errorf("workload: base range [%v, %v] invalid", c.BaseMin, c.BaseMax)
	}
	if c.ScaleFactor <= 0 {
		return fmt.Errorf("workload: scale factor %v <= 0", c.ScaleFactor)
	}
	if len(c.NoiseSigma) != len(c.NoiseBounds) {
		return fmt.Errorf("workload: %d noise sigmas but %d bounds", len(c.NoiseSigma), len(c.NoiseBounds))
	}
	prev := 0
	for i, b := range c.NoiseBounds {
		if b <= prev {
			return fmt.Errorf("workload: noise bound %d (%d) not increasing", i, b)
		}
		prev = b
	}
	return nil
}

// Synthetic builds the §4.3 trace: requests per bin, following the paper's
// recipe — extract a smooth diurnal structure, scale it, then add
// segment-wise Gaussian noise — with counts clamped non-negative.
func Synthetic(cfg SyntheticConfig) (*series.Series, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := series.New(0, cfg.BinSeconds, cfg.Bins)
	// Diurnal structure: raised-cosine day profile with a secondary
	// afternoon bump, the characteristic shape of the ISP/web traces the
	// paper references.
	binsPerDay := int(math.Round(24 * 3600 / cfg.BinSeconds))
	for i := range s.Values {
		frac := float64(i%binsPerDay) / float64(binsPerDay)
		diurnal := 0.5 - 0.5*math.Cos(2*math.Pi*frac)           // 0 at midnight, 1 midday
		bump := 0.25 * math.Exp(-math.Pow((frac-0.75)/0.08, 2)) // evening bump
		shape := math.Pow(diurnal, 1.4) + bump
		if shape > 1 {
			shape = 1
		}
		s.Values[i] = (cfg.BaseMin + (cfg.BaseMax-cfg.BaseMin)*shape) * cfg.ScaleFactor
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	prev := 0
	for i, bound := range cfg.NoiseBounds {
		if bound > cfg.Bins {
			bound = cfg.Bins
		}
		s.AddGaussianNoise(rng, cfg.NoiseSigma[i], prev, bound)
		prev = bound
	}
	s.ClampMin(0)
	return s, nil
}

// WC98Config parameterizes the World-Cup-98-like day trace of §5.2 (Fig. 6):
// 600 two-minute samples whose shape follows the published figure.
type WC98Config struct {
	// Bins is the number of 2-minute samples (paper plots 600).
	Bins int
	// BinSeconds is the bin width (paper: 120 s).
	BinSeconds float64
	// Peak is the maximum requests per bin (paper: ≈6×10⁴).
	Peak float64
	// NoiseSigma is the Gaussian noise per bin.
	NoiseSigma float64
	// Seed drives the noise stream.
	Seed int64
}

// DefaultWC98Config returns parameters matching Fig. 6.
func DefaultWC98Config() WC98Config {
	return WC98Config{Bins: 600, BinSeconds: 120, Peak: 60000, NoiseSigma: 1500, Seed: 2}
}

// Validate reports whether the configuration is usable.
func (c WC98Config) Validate() error {
	if c.Bins <= 0 {
		return fmt.Errorf("workload: bins %d <= 0", c.Bins)
	}
	if c.BinSeconds <= 0 {
		return fmt.Errorf("workload: bin seconds %v <= 0", c.BinSeconds)
	}
	if c.Peak <= 0 {
		return fmt.Errorf("workload: peak %v <= 0", c.Peak)
	}
	if c.NoiseSigma < 0 {
		return fmt.Errorf("workload: noise sigma %v < 0", c.NoiseSigma)
	}
	return nil
}

// wc98ControlPoints encodes Fig. 6's shape as (sample fraction, load
// fraction of peak) control points: a moderate start, an early-morning
// trough, a steep rise to the match-time plateau, a peak, and an
// end-of-day decline.
var wc98ControlPoints = [][2]float64{
	{0.00, 0.20}, {0.08, 0.14}, {0.15, 0.12}, {0.25, 0.30},
	{0.35, 0.55}, {0.45, 0.75}, {0.55, 0.85}, {0.65, 1.00},
	{0.72, 0.95}, {0.80, 0.70}, {0.90, 0.50}, {1.00, 0.35},
}

// WorldCup98Like builds a WC'98-shaped day trace: requests per 2-minute
// bin following the Fig. 6 profile with Gaussian noise, clamped
// non-negative.
func WorldCup98Like(cfg WC98Config) (*series.Series, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := series.New(0, cfg.BinSeconds, cfg.Bins)
	for i := range s.Values {
		f := float64(i) / float64(cfg.Bins-1)
		if cfg.Bins == 1 {
			f = 0
		}
		s.Values[i] = cfg.Peak * interpolate(wc98ControlPoints, f)
	}
	// Smooth the piecewise-linear skeleton, then add noise.
	s = s.Smooth(9)
	rng := rand.New(rand.NewSource(cfg.Seed))
	s.AddGaussianNoise(rng, cfg.NoiseSigma, 0, s.Len())
	s.ClampMin(0)
	return s, nil
}

// interpolate linearly interpolates the control-point polyline at x ∈ [0,1].
func interpolate(points [][2]float64, x float64) float64 {
	if x <= points[0][0] {
		return points[0][1]
	}
	for i := 1; i < len(points); i++ {
		if x <= points[i][0] {
			x0, y0 := points[i-1][0], points[i-1][1]
			x1, y1 := points[i][0], points[i][1]
			if x1 == x0 {
				return y1
			}
			t := (x - x0) / (x1 - x0)
			return y0 + t*(y1-y0)
		}
	}
	return points[len(points)-1][1]
}

// StepLoad builds a square-wave trace alternating between lo and hi
// requests per bin every period bins. Integration tests use it to check
// scale-up/scale-down behaviour on an unambiguous signal.
func StepLoad(bins int, binSeconds, lo, hi float64, period int) (*series.Series, error) {
	if bins <= 0 || binSeconds <= 0 || period <= 0 {
		return nil, fmt.Errorf("workload: invalid step load (bins=%d, binSeconds=%v, period=%d)", bins, binSeconds, period)
	}
	if lo < 0 || hi < lo {
		return nil, fmt.Errorf("workload: invalid step range [%v, %v]", lo, hi)
	}
	s := series.New(0, binSeconds, bins)
	for i := range s.Values {
		if (i/period)%2 == 0 {
			s.Values[i] = lo
		} else {
			s.Values[i] = hi
		}
	}
	return s, nil
}
