package workload

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func newTestStore(t *testing.T, cfg StoreConfig) *Store {
	t.Helper()
	s, err := NewStore(rand.New(rand.NewSource(1)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStoreConfigValidation(t *testing.T) {
	base := DefaultStoreConfig()
	if err := base.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mutations := []func(*StoreConfig){
		func(c *StoreConfig) { c.Objects = 0 },
		func(c *StoreConfig) { c.PopularCount = 0 },
		func(c *StoreConfig) { c.PopularCount = c.Objects + 1 },
		func(c *StoreConfig) { c.PopularShare = 1.5 },
		func(c *StoreConfig) { c.MinDemand = 0 },
		func(c *StoreConfig) { c.MaxDemand = c.MinDemand / 2 },
		func(c *StoreConfig) { c.ZipfS = 1.0 },
		func(c *StoreConfig) { c.LocalityProb = 1.0 },
		func(c *StoreConfig) { c.LogSigma = -1 },
		func(c *StoreConfig) { c.HistoryCap = 0 },
	}
	for i, mutate := range mutations {
		cfg := base
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d: want validation error", i)
		}
	}
}

func TestStoreDemandsInRange(t *testing.T) {
	cfg := DefaultStoreConfig()
	s := newTestStore(t, cfg)
	if s.Objects() != cfg.Objects {
		t.Fatalf("Objects = %d, want %d", s.Objects(), cfg.Objects)
	}
	for id := 0; id < s.Objects(); id++ {
		d := s.Demand(id)
		if d < cfg.MinDemand || d > cfg.MaxDemand {
			t.Fatalf("Demand(%d) = %v outside [%v, %v]", id, d, cfg.MinDemand, cfg.MaxDemand)
		}
	}
	mean := s.MeanDemand()
	want := (cfg.MinDemand + cfg.MaxDemand) / 2
	if math.Abs(mean-want) > 0.002 {
		t.Errorf("MeanDemand = %v, want ≈%v", mean, want)
	}
}

func TestStorePopularPartitionDominates(t *testing.T) {
	cfg := DefaultStoreConfig()
	cfg.LocalityProb = 0 // isolate the partition split
	s := newTestStore(t, cfg)
	rng := rand.New(rand.NewSource(2))
	const n = 200000
	popular := 0
	for i := 0; i < n; i++ {
		if s.Sample(rng) < cfg.PopularCount {
			popular++
		}
	}
	frac := float64(popular) / n
	if math.Abs(frac-cfg.PopularShare) > 0.02 {
		t.Errorf("popular fraction = %v, want ≈%v", frac, cfg.PopularShare)
	}
}

func TestStoreZipfSkewWithinPopular(t *testing.T) {
	cfg := DefaultStoreConfig()
	cfg.LocalityProb = 0
	s := newTestStore(t, cfg)
	rng := rand.New(rand.NewSource(3))
	counts := make(map[int]int)
	const n = 100000
	for i := 0; i < n; i++ {
		id := s.Sample(rng)
		if id < cfg.PopularCount {
			counts[id]++
		}
	}
	// Rank 0 should dominate: far more requests than the median popular
	// object — the Zipf skew the paper relies on.
	var freqs []int
	for _, c := range counts {
		freqs = append(freqs, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(freqs)))
	if len(freqs) < 10 {
		t.Fatalf("too few distinct popular objects sampled: %d", len(freqs))
	}
	if freqs[0] < 10*freqs[len(freqs)/2] {
		t.Errorf("top object %d not ≫ median %d: popularity not Zipf-skewed", freqs[0], freqs[len(freqs)/2])
	}
}

func TestStoreTemporalLocalityIncreasesRepeats(t *testing.T) {
	repeatRate := func(localityProb float64, seed int64) float64 {
		cfg := DefaultStoreConfig()
		cfg.LocalityProb = localityProb
		s := newTestStore(t, cfg)
		rng := rand.New(rand.NewSource(seed))
		recent := make(map[int]bool)
		var window []int
		repeats, total := 0, 0
		for i := 0; i < 50000; i++ {
			id := s.Sample(rng)
			if recent[id] {
				repeats++
			}
			total++
			window = append(window, id)
			recent[id] = true
			if len(window) > 100 {
				old := window[0]
				window = window[1:]
				stillThere := false
				for _, w := range window {
					if w == old {
						stillThere = true
						break
					}
				}
				if !stillThere {
					delete(recent, old)
				}
			}
		}
		return float64(repeats) / float64(total)
	}
	withLocality := repeatRate(0.5, 4)
	withoutLocality := repeatRate(0, 4)
	if withLocality <= withoutLocality {
		t.Errorf("locality did not increase repeat rate: %v <= %v", withLocality, withoutLocality)
	}
}

func TestSyntheticTraceShape(t *testing.T) {
	cfg := DefaultSyntheticConfig()
	tr, err := Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != cfg.Bins {
		t.Fatalf("Len = %d, want %d", tr.Len(), cfg.Bins)
	}
	if tr.Min() < 0 {
		t.Errorf("negative arrivals: %v", tr.Min())
	}
	// Scaled peak should approach BaseMax*ScaleFactor (Fig. 4: ≈5000/bin).
	if max := tr.Max(); max < 3000 || max > 8000 {
		t.Errorf("peak = %v, want within [3000, 8000] (Fig. 4 shape)", max)
	}
	// Diurnal variation: max/min of the smoothed structure is large.
	smooth := tr.Smooth(101)
	if ratio := smooth.Max() / math.Max(smooth.Min(), 1); ratio < 3 {
		t.Errorf("peak/trough ratio = %v, want >= 3 (time-of-day variation)", ratio)
	}
}

func TestSyntheticNoiseSegmentsEscalate(t *testing.T) {
	cfg := DefaultSyntheticConfig()
	tr, err := Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	noiseStd := func(from, to int) float64 {
		seg := tr.Slice(from, to)
		smooth := seg.Smooth(21)
		var sum float64
		for i := range seg.Values {
			d := seg.Values[i] - smooth.Values[i]
			sum += d * d
		}
		return math.Sqrt(sum / float64(seg.Len()))
	}
	s1 := noiseStd(100, 1100)
	s3 := noiseStd(4200, 6300)
	if s3 <= s1 {
		t.Errorf("noise did not escalate across segments: seg1 %v, seg3 %v", s1, s3)
	}
}

func TestSyntheticDeterministicPerSeed(t *testing.T) {
	cfg := DefaultSyntheticConfig()
	a, err := Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Values {
		if a.Values[i] != b.Values[i] {
			t.Fatalf("same seed diverged at bin %d", i)
		}
	}
	cfg.Seed = 99
	c, err := Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Values {
		if a.Values[i] != c.Values[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestSyntheticConfigValidation(t *testing.T) {
	base := DefaultSyntheticConfig()
	mutations := []func(*SyntheticConfig){
		func(c *SyntheticConfig) { c.Bins = 0 },
		func(c *SyntheticConfig) { c.BinSeconds = 0 },
		func(c *SyntheticConfig) { c.BaseMax = c.BaseMin - 1 },
		func(c *SyntheticConfig) { c.ScaleFactor = 0 },
		func(c *SyntheticConfig) { c.NoiseSigma = []float64{1} },
		func(c *SyntheticConfig) { c.NoiseBounds = []int{500, 400, 6400} },
	}
	for i, mutate := range mutations {
		cfg := base
		mutate(&cfg)
		if _, err := Synthetic(cfg); err == nil {
			t.Errorf("mutation %d: want error", i)
		}
	}
}

func TestWC98Shape(t *testing.T) {
	cfg := DefaultWC98Config()
	tr, err := WorldCup98Like(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != cfg.Bins {
		t.Fatalf("Len = %d, want %d", tr.Len(), cfg.Bins)
	}
	if tr.Min() < 0 {
		t.Error("negative arrivals")
	}
	// Peak near configured peak, in the later middle of the day (Fig. 6).
	maxIdx, maxVal := 0, 0.0
	for i, v := range tr.Values {
		if v > maxVal {
			maxIdx, maxVal = i, v
		}
	}
	if maxVal < 0.85*cfg.Peak {
		t.Errorf("peak %v too low, want ≈%v", maxVal, cfg.Peak)
	}
	if frac := float64(maxIdx) / float64(cfg.Bins); frac < 0.5 || frac > 0.85 {
		t.Errorf("peak at fraction %v, want within [0.5, 0.85]", frac)
	}
	// Early trough well below the peak.
	early := tr.Slice(0, cfg.Bins/5)
	if early.Min() > 0.35*maxVal {
		t.Errorf("early trough %v not ≪ peak %v", early.Min(), maxVal)
	}
}

func TestWC98Validation(t *testing.T) {
	cfg := DefaultWC98Config()
	cfg.Peak = 0
	if _, err := WorldCup98Like(cfg); err == nil {
		t.Error("zero peak: want error")
	}
	cfg = DefaultWC98Config()
	cfg.NoiseSigma = -1
	if _, err := WorldCup98Like(cfg); err == nil {
		t.Error("negative noise: want error")
	}
}

func TestStepLoad(t *testing.T) {
	tr, err := StepLoad(10, 30, 5, 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 5, 5, 50, 50, 50, 5, 5, 5, 50}
	for i, w := range want {
		if tr.Values[i] != w {
			t.Errorf("bin %d = %v, want %v", i, tr.Values[i], w)
		}
	}
	if _, err := StepLoad(0, 30, 5, 50, 3); err == nil {
		t.Error("zero bins: want error")
	}
	if _, err := StepLoad(10, 30, 50, 5, 3); err == nil {
		t.Error("hi < lo: want error")
	}
}

func TestGeneratorProducesTraceCounts(t *testing.T) {
	tr, err := StepLoad(5, 30, 10, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	store := newTestStore(t, DefaultStoreConfig())
	gen, err := NewGenerator(tr, store, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if gen.Bins() != 5 || gen.BinSeconds() != 30 {
		t.Fatalf("Bins/BinSeconds = %d/%v", gen.Bins(), gen.BinSeconds())
	}
	total := 0
	for {
		bin, reqs, ok := gen.NextBin()
		if !ok {
			break
		}
		want := int(tr.Values[bin])
		if len(reqs) != want {
			t.Errorf("bin %d: %d requests, want %d", bin, len(reqs), want)
		}
		total += len(reqs)
		lo, hi := tr.TimeAt(bin), tr.TimeAt(bin)+tr.Step
		prev := lo
		for _, r := range reqs {
			if r.Arrival < lo || r.Arrival >= hi {
				t.Fatalf("bin %d: arrival %v outside [%v, %v)", bin, r.Arrival, lo, hi)
			}
			if r.Arrival < prev {
				t.Fatal("arrivals not sorted")
			}
			prev = r.Arrival
			if r.Demand <= 0 {
				t.Fatal("non-positive demand")
			}
			if r.Object < 0 || r.Object >= store.Objects() {
				t.Fatalf("object id %d out of range", r.Object)
			}
		}
	}
	if total != int(tr.Sum()) {
		t.Errorf("total requests %d, want %v", total, tr.Sum())
	}
	// Exhausted generator keeps returning ok=false.
	if _, _, ok := gen.NextBin(); ok {
		t.Error("exhausted generator returned ok=true")
	}
	gen.Reset()
	if _, reqs, ok := gen.NextBin(); !ok || len(reqs) != 10 {
		t.Error("Reset did not rewind generator")
	}
}

func TestGeneratorValidation(t *testing.T) {
	store := newTestStore(t, DefaultStoreConfig())
	rng := rand.New(rand.NewSource(1))
	if _, err := NewGenerator(nil, store, rng); err == nil {
		t.Error("nil trace: want error")
	}
	tr, _ := StepLoad(3, 30, 1, 2, 1)
	if _, err := NewGenerator(tr, nil, rng); err == nil {
		t.Error("nil store: want error")
	}
	if _, err := NewGenerator(tr, store, nil); err == nil {
		t.Error("nil rng: want error")
	}
}

func TestFeedMatchesGeneratorBitForBit(t *testing.T) {
	// The online feed pushed a trace's counts must reproduce the batch
	// generator's request stream exactly: same objects, demands, and
	// arrival times, bin by bin.
	cfg := DefaultStoreConfig()
	cfg.Objects = 400
	cfg.PopularCount = 40
	trace, err := StepLoad(12, 30, 50, 200, 4)
	if err != nil {
		t.Fatal(err)
	}
	trace.Start = 90 // non-zero start must not break the alignment
	genStore := newTestStore(t, cfg)
	feedStore := newTestStore(t, cfg)
	gen, err := NewGenerator(trace, genStore, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	feed, err := NewFeed(trace.Start, trace.Step, feedStore, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	for {
		wantBin, want, ok := gen.NextBin()
		if !ok {
			break
		}
		gotBin, got := feed.Push(trace.Values[wantBin])
		if gotBin != wantBin {
			t.Fatalf("bin index %d, want %d", gotBin, wantBin)
		}
		if len(got) != len(want) {
			t.Fatalf("bin %d: %d requests, want %d", wantBin, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("bin %d request %d: %+v, want %+v", wantBin, i, got[i], want[i])
			}
		}
	}
	if feed.Bins() != trace.Len() {
		t.Errorf("feed ingested %d bins, want %d", feed.Bins(), trace.Len())
	}
}

func TestFeedValidation(t *testing.T) {
	store := newTestStore(t, DefaultStoreConfig())
	rng := rand.New(rand.NewSource(1))
	if _, err := NewFeed(0, 0, store, rng); err == nil {
		t.Error("zero bin width: want error")
	}
	if _, err := NewFeed(0, 30, nil, rng); err == nil {
		t.Error("nil store: want error")
	}
	if _, err := NewFeed(0, 30, store, nil); err == nil {
		t.Error("nil rng: want error")
	}
	feed, err := NewFeed(0, 30, store, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, reqs := feed.Push(-5); len(reqs) != 0 {
		t.Errorf("negative count produced %d requests", len(reqs))
	}
	if feed.BinSeconds() != 30 {
		t.Errorf("bin seconds = %v, want 30", feed.BinSeconds())
	}
}
