package workload

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"

	"hierctl/internal/series"
)

// FailureEvent is one entry of a scenario's failure plan: computer Comp of
// module Module fails (or, with Repair set, returns to the Off state) at
// workload-clock time At seconds past the trace start. Runners quantize
// the time to their next control boundary and skip events whose (Module,
// Comp) indices do not exist in the cluster under test, so one plan serves
// clusters of any shape.
type FailureEvent struct {
	At     float64
	Module int
	Comp   int
	Repair bool
}

// Scenario is one named workload scenario: an arrival-trace builder, the
// service-time mix it runs against, and an optional failure plan. The
// scenario registry is how experiments, CLIs, and the control-plane daemon
// select workloads by name.
//
// Invariant: Trace must be deterministic per seed — two calls with the
// same seed return bin-for-bin identical series. Everything downstream
// (the robustness matrix snapshot, the CLI runs, fleet tenant seeding)
// relies on it.
type Scenario struct {
	// Name is the registry key (lowercase, no spaces or colons).
	Name string
	// Description is a one-line summary for listings and docs.
	Description string
	// NeedsArg marks parameterized scenarios that cannot be built from
	// the bare name; they are selected as "name:arg" (e.g.
	// "tracefile:day.csv") and skipped by whole-registry sweeps.
	NeedsArg bool
	// Arg carries the parameter Lookup parsed from a "name:arg"
	// selection; empty for plain scenarios.
	Arg string
	// Computers is the cluster size the trace amplitude is designed for
	// (4 for the §4.3 module-scale scenarios, 16 for the §5.2 wc98 day);
	// 0 means unknown (recorded traces). ScaleToCluster uses it to drive
	// differently sized clusters at comparable per-computer load.
	Computers int
	// Trace builds the arrival trace (requests per bin) for the seed.
	Trace func(seed int64) (*series.Series, error)
	// Store returns the service-time mix; nil means the paper's
	// DefaultStoreConfig.
	Store func() StoreConfig
	// Failures returns the failure plan for the (possibly trimmed) trace
	// the run will actually use; nil means no injected failures.
	Failures func(tr *series.Series) []FailureEvent
}

// StoreConfig resolves the scenario's service-time mix, falling back to
// the paper's default store.
func (s Scenario) StoreConfig() StoreConfig {
	if s.Store == nil {
		return DefaultStoreConfig()
	}
	return s.Store()
}

// FailurePlan resolves the scenario's failure plan for the given trace
// (nil when the scenario injects none).
func (s Scenario) FailurePlan(tr *series.Series) []FailureEvent {
	if s.Failures == nil {
		return nil
	}
	return s.Failures(tr)
}

// ScaleToCluster rescales the trace amplitude in place by
// computers/s.Computers — the paper's §4.3 recipe ("after appropriately
// scaling the original workload") for driving a cluster of a different
// size with the same workload shape. It is a no-op when either size is
// unknown (<= 0) or the sizes match, and returns the trace for chaining.
func (s Scenario) ScaleToCluster(tr *series.Series, computers int) *series.Series {
	if s.Computers <= 0 || computers <= 0 || computers == s.Computers {
		return tr
	}
	return tr.Scale(float64(computers) / float64(s.Computers))
}

var (
	scenarioMu  sync.RWMutex
	scenarioReg = map[string]Scenario{}
)

// RegisterScenario adds a scenario to the registry. Names must be unique,
// non-empty, and free of the ':' separator reserved for parameterized
// selections.
func RegisterScenario(s Scenario) error {
	if s.Name == "" {
		return fmt.Errorf("workload: scenario with empty name")
	}
	if strings.ContainsAny(s.Name, ": \t\n") {
		return fmt.Errorf("workload: scenario name %q contains reserved characters", s.Name)
	}
	if s.Trace == nil {
		return fmt.Errorf("workload: scenario %q has no trace builder", s.Name)
	}
	scenarioMu.Lock()
	defer scenarioMu.Unlock()
	if _, dup := scenarioReg[s.Name]; dup {
		return fmt.Errorf("workload: scenario %q already registered", s.Name)
	}
	scenarioReg[s.Name] = s
	return nil
}

// mustRegisterScenario registers the built-in scenarios at init time.
func mustRegisterScenario(s Scenario) {
	if err := RegisterScenario(s); err != nil {
		panic(err)
	}
}

// Scenarios returns every registered scenario sorted by name.
func Scenarios() []Scenario {
	scenarioMu.RLock()
	defer scenarioMu.RUnlock()
	out := make([]Scenario, 0, len(scenarioReg))
	for _, s := range scenarioReg {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ScenarioNames returns the sorted registered names; parameterized
// scenarios are listed with their argument hint (e.g. "tracefile:<path>").
func ScenarioNames() []string {
	scs := Scenarios()
	names := make([]string, 0, len(scs))
	for _, s := range scs {
		if s.NeedsArg {
			names = append(names, s.Name+":<path>")
		} else {
			names = append(names, s.Name)
		}
	}
	return names
}

// LookupScenario resolves a scenario selection by name. Parameterized
// scenarios take their argument after a colon ("tracefile:day.csv").
// Unknown names error with the full registered list so CLI and API callers
// get an actionable message.
func LookupScenario(name string) (Scenario, error) {
	base, arg := name, ""
	if i := strings.IndexByte(name, ':'); i >= 0 {
		base, arg = name[:i], name[i+1:]
	}
	scenarioMu.RLock()
	s, ok := scenarioReg[base]
	scenarioMu.RUnlock()
	if !ok {
		return Scenario{}, fmt.Errorf("workload: unknown scenario %q (registered: %s)",
			name, strings.Join(ScenarioNames(), ", "))
	}
	if s.NeedsArg && arg == "" {
		return Scenario{}, fmt.Errorf("workload: scenario %q needs an argument, select it as %q", base, base+":<path>")
	}
	if !s.NeedsArg && arg != "" {
		return Scenario{}, fmt.Errorf("workload: scenario %q takes no argument (got %q)", base, arg)
	}
	if s.NeedsArg {
		s = s.bind(arg)
	}
	return s, nil
}

// bind specializes a parameterized scenario to its argument. Today only
// tracefile is parameterized; its builder replays the CSV at Arg.
func (s Scenario) bind(arg string) Scenario {
	s.Arg = arg
	s.Trace = func(int64) (*series.Series, error) { return readTraceFile(arg) }
	return s
}

// readTraceFile loads a CSV trace written by series.WriteCSV / hpmgen.
func readTraceFile(path string) (*series.Series, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("workload: tracefile: %w", err)
	}
	defer f.Close()
	tr, err := series.ReadCSV(f)
	if err != nil {
		return nil, fmt.Errorf("workload: tracefile %s: %w", path, err)
	}
	if tr.Len() == 0 {
		return nil, fmt.Errorf("workload: tracefile %s is empty", path)
	}
	return tr, nil
}

// Built-in scenario constructors. Each is deterministic per seed; the new
// stress scenarios are natively short (a few hundred 30-second bins) so
// whole-registry sweeps stay affordable at full scale, while the paper's
// synthetic/wc98 day traces keep their published lengths.

func syntheticScenarioTrace(seed int64) (*series.Series, error) {
	cfg := DefaultSyntheticConfig()
	cfg.Seed = seed
	return Synthetic(cfg)
}

func wc98ScenarioTrace(seed int64) (*series.Series, error) {
	cfg := DefaultWC98Config()
	cfg.Seed = seed
	return WorldCup98Like(cfg)
}

// FlashCrowd builds the flashcrowd trace: a moderate noisy base load hit
// by a sudden arrival spike of 5-10x (drawn from the seed) that decays
// exponentially — the slashdot/news-event profile. bins is the trace
// length at 30-second bins; the spike lands at 15% of the trace with a
// decay constant of ~8% of the trace, so even trimmed runs see the crowd
// arrive and drain.
func FlashCrowd(bins int, seed int64) (*series.Series, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("workload: flashcrowd bins %d <= 0", bins)
	}
	rng := rand.New(rand.NewSource(seed))
	peak := 5 + 5*rng.Float64() // 5-10x spike
	s := series.New(0, 30, bins)
	base := 900.0
	spikeAt := float64(bins) * 0.15
	tau := math.Max(1, float64(bins)*0.08)
	for i := range s.Values {
		v := base * (1 + 0.05*rng.NormFloat64())
		if f := float64(i); f >= spikeAt {
			v *= 1 + (peak-1)*math.Exp(-(f-spikeAt)/tau)
		}
		s.Values[i] = v
	}
	s.ClampMin(0)
	return s, nil
}

// DiurnalNoisy builds the diurnal-noisy trace: the paper's synthetic day
// modulated by multiplicative lognormal noise (sigma in log space), so the
// controller sees the published structure under per-bin burstiness the
// additive-noise model cannot produce.
func DiurnalNoisy(sigma float64, seed int64) (*series.Series, error) {
	if sigma < 0 {
		return nil, fmt.Errorf("workload: diurnal-noisy sigma %v < 0", sigma)
	}
	cfg := DefaultSyntheticConfig()
	cfg.Seed = seed
	s, err := Synthetic(cfg)
	if err != nil {
		return nil, err
	}
	// A distinct stream from the additive-noise one: derive it from the
	// seed so the scenario stays deterministic per seed.
	rng := rand.New(rand.NewSource(seed ^ 0x6e6f697379)) // "noisy"
	for i := range s.Values {
		s.Values[i] *= math.Exp(sigma * rng.NormFloat64())
	}
	s.ClampMin(0)
	return s, nil
}

// Sawtooth builds ramp-and-drop cycles: load climbs linearly from lo to hi
// over period bins, then collapses back to lo — the scale-down chattering
// probe (square waves test reaction; sawtooths test tracking).
func Sawtooth(bins int, lo, hi float64, period int, seed int64) (*series.Series, error) {
	if bins <= 0 || period <= 0 {
		return nil, fmt.Errorf("workload: sawtooth bins %d / period %d must be positive", bins, period)
	}
	if lo < 0 || hi < lo {
		return nil, fmt.Errorf("workload: sawtooth range [%v, %v] invalid", lo, hi)
	}
	rng := rand.New(rand.NewSource(seed))
	s := series.New(0, 30, bins)
	for i := range s.Values {
		frac := float64(i%period) / float64(period)
		s.Values[i] = (lo + (hi-lo)*frac) * (1 + 0.03*rng.NormFloat64())
	}
	s.ClampMin(0)
	return s, nil
}

// heavyTailStoreConfig is the heavytail service-time mix: 5% of objects
// draw their full-speed demand from a truncated Pareto tail (alpha 1.3,
// capped at 1 s) instead of the uniform 10-25 ms body.
func heavyTailStoreConfig() StoreConfig {
	cfg := DefaultStoreConfig()
	cfg.TailFrac = 0.05
	cfg.TailAlpha = 1.3
	cfg.TailCap = 1.0
	return cfg
}

// failstormPlan is the failstorm failure plan: a correlated storm taking
// out computers 0-2 of module 0 (three of the §4.3 module's four) and
// computer 0 of module 1 when it exists, at 50% of the trace — mid-peak
// for the diurnal day — all repaired at 80%. Taking most of the module
// down guarantees the storm bites every policy regardless of which subset
// it keeps powered. Runners skip entries whose indices are not in the
// cluster.
func failstormPlan(tr *series.Series) []FailureEvent {
	span := tr.End() - tr.Start
	fail := 0.50 * span
	repair := 0.80 * span
	return []FailureEvent{
		{At: fail, Module: 0, Comp: 0},
		{At: fail, Module: 0, Comp: 1},
		{At: fail, Module: 0, Comp: 2},
		{At: fail, Module: 1, Comp: 0},
		{At: repair, Module: 0, Comp: 0, Repair: true},
		{At: repair, Module: 0, Comp: 1, Repair: true},
		{At: repair, Module: 0, Comp: 2, Repair: true},
		{At: repair, Module: 1, Comp: 0, Repair: true},
	}
}

func init() {
	mustRegisterScenario(Scenario{
		Name:        "synthetic",
		Computers:   4,
		Description: "the paper's §4.3 synthetic diurnal day (6400 30-s bins, segment-wise Gaussian noise)",
		Trace:       syntheticScenarioTrace,
	})
	mustRegisterScenario(Scenario{
		Name:        "wc98",
		Computers:   16,
		Description: "World-Cup-98-like day of §5.2 Fig. 6 (600 2-min bins, match-time plateau)",
		Trace:       wc98ScenarioTrace,
	})
	mustRegisterScenario(Scenario{
		Name:        "step",
		Computers:   4,
		Description: "square wave alternating 150/3600 requests per bin every 20 bins (scale-up/down probe)",
		Trace: func(int64) (*series.Series, error) {
			return StepLoad(480, 30, 150, 3600, 20)
		},
	})
	mustRegisterScenario(Scenario{
		Name:        "flashcrowd",
		Computers:   4,
		Description: "sudden 5-10x arrival spike with exponential decay over a moderate base (news-event burst)",
		Trace: func(seed int64) (*series.Series, error) {
			return FlashCrowd(480, seed)
		},
	})
	mustRegisterScenario(Scenario{
		Name:        "diurnal-noisy",
		Computers:   4,
		Description: "the §4.3 synthetic day under multiplicative lognormal noise (sigma 0.3 per bin)",
		Trace: func(seed int64) (*series.Series, error) {
			return DiurnalNoisy(0.3, seed)
		},
	})
	mustRegisterScenario(Scenario{
		Name:        "heavytail",
		Computers:   4,
		Description: "synthetic day against a Pareto-mixed service-time store (5% of objects, alpha 1.3, 1 s cap)",
		Trace:       syntheticScenarioTrace,
		Store:       heavyTailStoreConfig,
	})
	mustRegisterScenario(Scenario{
		Name:        "failstorm",
		Computers:   4,
		Description: "synthetic day with correlated computer failures at mid-peak (50% of trace), repaired at 80%",
		Trace:       syntheticScenarioTrace,
		Failures:    failstormPlan,
	})
	mustRegisterScenario(Scenario{
		Name:        "sawtooth",
		Computers:   4,
		Description: "linear ramp 150->3600 per 80-bin cycle with instant drop (tracking/chattering probe)",
		Trace: func(seed int64) (*series.Series, error) {
			return Sawtooth(480, 150, 3600, 80, seed)
		},
	})
	mustRegisterScenario(Scenario{
		Name:        "tracefile",
		Description: "replay a recorded CSV trace (hpmgen format) as a first-class scenario: tracefile:<path>",
		NeedsArg:    true,
		Trace: func(int64) (*series.Series, error) {
			return nil, fmt.Errorf("workload: tracefile scenario needs a path, select it as \"tracefile:<path>\"")
		},
	})
}
