package workload

import (
	"math/rand"
	"sort"
	"testing"
)

// TestSortByArrivalMatchesStableSort pins the bucket sort against the
// stdlib stable sort over random batches, including tiny bins, skewed
// (non-uniform) keys, and duplicate keys — the bucket scatter plus
// insertion cleanup must be a stable by-Arrival sort in every case.
func TestSortByArrivalMatchesStableSort(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var scratch binScratch
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(600)
		start := rng.Float64() * 1000
		step := 30.0
		reqs := make([]Request, n)
		for i := range reqs {
			arrival := start + rng.Float64()*step
			switch trial % 3 {
			case 1: // skewed: mass piled near the bin start
				arrival = start + rng.Float64()*rng.Float64()*step
			case 2: // coarse: duplicate keys across distinct payloads
				arrival = start + float64(rng.Intn(8))*step/8
			}
			reqs[i] = Request{Arrival: arrival, Object: i, Demand: rng.Float64()}
		}
		want := append([]Request(nil), reqs...)
		sort.SliceStable(want, func(i, j int) bool { return want[i].Arrival < want[j].Arrival })
		got := sortByArrival(reqs, start, step, &scratch)
		if len(got) != len(want) {
			t.Fatalf("trial %d: length %d, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: index %d: got %+v, want %+v", trial, i, got[i], want[i])
			}
		}
	}
}

// TestSortByArrivalOutOfBinKeys: keys outside [start, start+step) (not
// produced by the generator, but legal inputs) clamp into the edge
// buckets and still sort correctly.
func TestSortByArrivalOutOfBinKeys(t *testing.T) {
	var scratch binScratch
	reqs := make([]Request, 64)
	rng := rand.New(rand.NewSource(3))
	for i := range reqs {
		reqs[i] = Request{Arrival: -50 + rng.Float64()*200, Object: i}
	}
	got := sortByArrival(reqs, 0, 30, &scratch)
	for i := 1; i < len(got); i++ {
		if got[i-1].Arrival > got[i].Arrival {
			t.Fatalf("unsorted at %d: %v > %v", i, got[i-1].Arrival, got[i].Arrival)
		}
	}
}

func BenchmarkSortByArrival400(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var scratch binScratch
	reqs := make([]Request, 400)
	for i := 0; i < b.N; i++ {
		for j := range reqs {
			reqs[j] = Request{Arrival: rng.Float64() * 30, Object: j}
		}
		reqs = sortByArrival(reqs, 0, 30, &scratch)
	}
}
