package approx

import "fmt"

// Grid enumerates the cartesian product of the given per-dimension levels,
// calling visit with each point. The point slice is reused across calls;
// visit must copy it if it retains it. This is the sweep driver of the
// simulation-based learning step: "simulating the L0 controller using
// various values from the input set … and a quantized approximation of the
// domain of ω" (§4.2).
func Grid(levels [][]float64, visit func(point []float64) error) error {
	if len(levels) == 0 {
		return fmt.Errorf("approx: empty grid")
	}
	for d, l := range levels {
		if len(l) == 0 {
			return fmt.Errorf("approx: grid dimension %d has no levels", d)
		}
	}
	point := make([]float64, len(levels))
	var rec func(d int) error
	rec = func(d int) error {
		if d == len(levels) {
			return visit(point)
		}
		for _, v := range levels[d] {
			point[d] = v
			if err := rec(d + 1); err != nil {
				return err
			}
		}
		return nil
	}
	return rec(0)
}

// GridSize returns the number of points Grid will visit.
func GridSize(levels [][]float64) int {
	if len(levels) == 0 {
		return 0
	}
	n := 1
	for _, l := range levels {
		n *= len(l)
	}
	return n
}

// Learn sweeps the grid, evaluates f at every point, and returns the
// resulting samples — the "large lookup table" of §5.1 ready for FitTree.
// f returns the target value for the point (e.g. simulated module cost).
func Learn(levels [][]float64, f func(point []float64) (float64, error)) ([]Sample, error) {
	samples := make([]Sample, 0, GridSize(levels))
	err := Grid(levels, func(p []float64) error {
		y, err := f(p)
		if err != nil {
			return err
		}
		x := make([]float64, len(p))
		copy(x, p)
		samples = append(samples, Sample{X: x, Y: y})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return samples, nil
}
