package approx

// Equivalence and allocation pins for the packed-uint64 table rework: the
// flat-keyed table must answer bit-identically to the historical
// string-keyed implementation on any grid (including the 64-bit packing
// boundary where it falls back to string keys), and the steady-state
// lookup path must not allocate.

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// refTable is the pre-rework implementation: two string-keyed maps
// (sums, counts), kept as the test oracle.
type refTable struct {
	quant  *Quantizer
	sums   map[string][]float64
	counts map[string]int
	width  int
}

func newRefTable(q *Quantizer, width int) *refTable {
	return &refTable{quant: q, sums: map[string][]float64{}, counts: map[string]int{}, width: width}
}

func (t *refTable) add(x, outputs []float64) error {
	cellIdx, err := t.quant.Cell(x)
	if err != nil {
		return err
	}
	k := cellKey(cellIdx)
	sum, ok := t.sums[k]
	if !ok {
		sum = make([]float64, t.width)
		t.sums[k] = sum
	}
	for i, v := range outputs {
		sum[i] += v
	}
	t.counts[k]++
	return nil
}

func (t *refTable) lookup(x []float64) ([]float64, bool, error) {
	cellIdx, err := t.quant.Cell(x)
	if err != nil {
		return nil, false, err
	}
	k := cellKey(cellIdx)
	n := t.counts[k]
	if n == 0 {
		return nil, false, nil
	}
	out := make([]float64, t.width)
	for i, v := range t.sums[k] {
		out[i] = v / float64(n)
	}
	return out, true, nil
}

// randomGrid builds a random quantizer with 1-4 dimensions, occasionally
// with negative minima and fractional steps.
func randomGrid(rng *rand.Rand) *Quantizer {
	dims := 1 + rng.Intn(4)
	min := make([]float64, dims)
	max := make([]float64, dims)
	step := make([]float64, dims)
	for d := range min {
		min[d] = float64(rng.Intn(21) - 10)
		max[d] = min[d] + 1 + rng.Float64()*50
		step[d] = []float64{0.25, 0.5, 1, 2.5, 5}[rng.Intn(5)]
	}
	q, err := NewQuantizer(min, max, step)
	if err != nil {
		panic(err)
	}
	return q
}

func randomPoint(rng *rand.Rand, q *Quantizer) []float64 {
	x := make([]float64, q.Dims())
	for d := range x {
		// Spread probes well beyond the grid so clamping is exercised.
		span := q.Max[d] - q.Min[d]
		x[d] = q.Min[d] - span/4 + rng.Float64()*span*1.5
	}
	return x
}

// TestTablePackedEquivalenceRandom drives the packed table and the
// string-keyed oracle through identical Add/Lookup sequences over 300
// random grids and checks every answer bit-identically.
func TestTablePackedEquivalenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		q := randomGrid(rng)
		width := 1 + rng.Intn(3)
		tab, err := NewTable(q, width)
		if err != nil {
			t.Fatal(err)
		}
		if !tab.Packed() {
			t.Fatalf("trial %d: small random grid should pack", trial)
		}
		ref := newRefTable(q, width)
		for i := 0; i < 40; i++ {
			x := randomPoint(rng, q)
			outs := make([]float64, width)
			for j := range outs {
				outs[j] = rng.NormFloat64() * 100
			}
			if err := tab.Add(x, outs); err != nil {
				t.Fatal(err)
			}
			if err := ref.add(x, outs); err != nil {
				t.Fatal(err)
			}
		}
		if tab.Cells() != len(ref.counts) {
			t.Fatalf("trial %d: cells %d vs oracle %d", trial, tab.Cells(), len(ref.counts))
		}
		for i := 0; i < 60; i++ {
			x := randomPoint(rng, q)
			got, okG, err := tab.Lookup(x)
			if err != nil {
				t.Fatal(err)
			}
			want, okW, err := ref.lookup(x)
			if err != nil {
				t.Fatal(err)
			}
			if okG != okW {
				t.Fatalf("trial %d probe %v: hit %v vs oracle %v", trial, x, okG, okW)
			}
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("trial %d probe %v: output %d = %v, oracle %v", trial, x, j, got[j], want[j])
				}
			}
		}
	}
}

// hugeDim returns (min, max, step) for a dimension whose index range needs
// the given number of bits exactly.
func hugeDim(bits uint) (float64, float64, float64) {
	maxIdx := float64(uint64(1)<<bits - 1)
	return 0, maxIdx, 1
}

// TestTableOverflowFallbackBoundary pins the 64-bit packing boundary: a
// grid needing exactly 64 bits packs, one bit more falls back to string
// keys, and both representations answer identically to the oracle.
func TestTableOverflowFallbackBoundary(t *testing.T) {
	// Two 31-bit dimensions plus a 2-bit one hit the 64-bit budget
	// exactly; widening the third to 3 bits crosses it. (Per-dimension
	// indices stay within int32 — the persisted key format's own bound.)
	min31, max31, step31 := hugeDim(31)
	cases := []struct {
		name   string
		min    []float64
		max    []float64
		step   []float64
		packed bool
	}{
		{"exactly-64-bits", []float64{min31, min31, 0}, []float64{max31, max31, 3}, []float64{step31, step31, 1}, true},
		{"65-bits-falls-back", []float64{min31, min31, 0}, []float64{max31, max31, 7}, []float64{step31, step31, 1}, false},
	}
	rng := rand.New(rand.NewSource(7))
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q, err := NewQuantizer(tc.min, tc.max, tc.step)
			if err != nil {
				t.Fatal(err)
			}
			tab, err := NewTable(q, 2)
			if err != nil {
				t.Fatal(err)
			}
			if tab.Packed() != tc.packed {
				t.Fatalf("Packed() = %v, want %v", tab.Packed(), tc.packed)
			}
			ref := newRefTable(q, 2)
			for i := 0; i < 50; i++ {
				x := randomPoint(rng, q)
				outs := []float64{rng.NormFloat64(), rng.NormFloat64()}
				if err := tab.Add(x, outs); err != nil {
					t.Fatal(err)
				}
				if err := ref.add(x, outs); err != nil {
					t.Fatal(err)
				}
			}
			if tab.Cells() != len(ref.counts) {
				t.Fatalf("cells %d vs oracle %d", tab.Cells(), len(ref.counts))
			}
			for i := 0; i < 80; i++ {
				x := randomPoint(rng, q)
				got, okG, err := tab.Lookup(x)
				if err != nil {
					t.Fatal(err)
				}
				want, okW, err := ref.lookup(x)
				if err != nil {
					t.Fatal(err)
				}
				if okG != okW {
					t.Fatalf("probe %v: hit %v vs oracle %v", x, okG, okW)
				}
				for j := range want {
					if got[j] != want[j] {
						t.Fatalf("probe %v: output %d = %v, oracle %v", x, j, got[j], want[j])
					}
				}
			}
			// Round-trip through the persisted format preserves answers on
			// both sides of the boundary.
			var buf bytes.Buffer
			if err := tab.Save(&buf); err != nil {
				t.Fatal(err)
			}
			loaded, err := ReadTable(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if loaded.Cells() != tab.Cells() {
				t.Fatalf("round trip cells %d, want %d", loaded.Cells(), tab.Cells())
			}
			for i := 0; i < 40; i++ {
				x := randomPoint(rng, q)
				a, okA, _ := tab.Lookup(x)
				b, okB, _ := loaded.Lookup(x)
				if okA != okB {
					t.Fatalf("round trip probe %v: hit %v vs %v", x, okA, okB)
				}
				for j := range a {
					if a[j] != b[j] {
						t.Fatalf("round trip probe %v diverged", x)
					}
				}
			}
		})
	}
}

// TestTableCellMigration pins the sums/counts → single-cell-map migration:
// an artifact written in the historical DTO layout (string keys, parallel
// Sums/Counts arrays) reloads with identical Cells() and averages, and a
// rewritten artifact keeps the same DTO shape.
func TestTableCellMigration(t *testing.T) {
	q, err := NewQuantizer([]float64{0, 0}, []float64{10, 10}, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	// Hand-build the historical on-disk form.
	dto := tableDTO{
		Version: persistVersion,
		Min:     q.Min, Max: q.Max, Step: q.Step,
		Width:  2,
		Keys:   []string{cellKey([]int{3, 2}), cellKey([]int{7, 4})},
		Sums:   [][]float64{{30, 6}, {5, 6}},
		Counts: []int{3, 1},
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(dto); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Cells() != 2 {
		t.Fatalf("Cells = %d, want 2", loaded.Cells())
	}
	got, ok, err := loaded.Lookup([]float64{3, 4})
	if err != nil || !ok {
		t.Fatalf("lookup: ok=%v err=%v", ok, err)
	}
	if got[0] != 10 || got[1] != 2 {
		t.Fatalf("averages = %v, want [10 2]", got)
	}
	// Rewriting keeps the same DTO layout (keys/sums/counts, modulo map
	// iteration order).
	var buf2 bytes.Buffer
	if err := loaded.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	var dto2 tableDTO
	if err := gob.NewDecoder(&buf2).Decode(&dto2); err != nil {
		t.Fatal(err)
	}
	sort.Strings(dto2.Keys)
	want := append([]string(nil), dto.Keys...)
	sort.Strings(want)
	if fmt.Sprint(dto2.Keys) != fmt.Sprint(want) {
		t.Fatalf("rewritten keys %q, want %q", dto2.Keys, want)
	}
	if dto2.Width != 2 || len(dto2.Sums) != 2 || len(dto2.Counts) != 2 {
		t.Fatalf("rewritten DTO shape changed: %+v", dto2)
	}
}

// TestTableLookupIntoZeroAlloc pins the steady-state lookup at zero
// allocations per probe on a packed grid.
func TestTableLookupIntoZeroAlloc(t *testing.T) {
	q, err := NewQuantizer([]float64{0, 0, 0.01}, []float64{400, 300, 0.026}, []float64{20, 15, 0.004})
	if err != nil {
		t.Fatal(err)
	}
	tab, err := NewTable(q, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !tab.Packed() {
		t.Fatal("gmap-sized grid should pack")
	}
	if err := tab.Add([]float64{100, 50, 0.018}, []float64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, 4)
	x := make([]float64, 3)
	allocs := testing.AllocsPerRun(200, func() {
		x[0], x[1], x[2] = 100, 50, 0.018
		out, ok, err := tab.LookupInto(dst, x)
		if err != nil || !ok || out[0] != 1 {
			t.Fatal("lookup failed")
		}
	})
	if allocs != 0 {
		t.Fatalf("LookupInto allocated %v/op, want 0", allocs)
	}
	// Misses are allocation-free too.
	allocs = testing.AllocsPerRun(200, func() {
		x[0], x[1], x[2] = 0, 0, 0.01
		if _, ok, err := tab.LookupInto(dst, x); err != nil || ok {
			t.Fatal("want clean miss")
		}
	})
	if allocs != 0 {
		t.Fatalf("LookupInto miss allocated %v/op, want 0", allocs)
	}
}

// TestQuantizerCellIntoZeroAlloc pins CellInto at zero allocations when
// the destination has capacity.
func TestQuantizerCellIntoZeroAlloc(t *testing.T) {
	q, err := NewQuantizer([]float64{0, 0}, []float64{100, 100}, []float64{5, 5})
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]int, 2)
	x := []float64{12, 37}
	allocs := testing.AllocsPerRun(200, func() {
		out, err := q.CellInto(dst, x)
		if err != nil || out[0] != 2 || out[1] != 7 {
			t.Fatal("cell failed")
		}
	})
	if allocs != 0 {
		t.Fatalf("CellInto allocated %v/op, want 0", allocs)
	}
}
