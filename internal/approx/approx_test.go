package approx

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQuantizerValidation(t *testing.T) {
	if _, err := NewQuantizer(nil, nil, nil); err == nil {
		t.Error("empty quantizer: want error")
	}
	if _, err := NewQuantizer([]float64{0}, []float64{1, 2}, []float64{1}); err == nil {
		t.Error("dim mismatch: want error")
	}
	if _, err := NewQuantizer([]float64{5}, []float64{1}, []float64{1}); err == nil {
		t.Error("max < min: want error")
	}
	if _, err := NewQuantizer([]float64{0}, []float64{1}, []float64{0}); err == nil {
		t.Error("zero step: want error")
	}
}

func TestQuantizerCellAndCentroid(t *testing.T) {
	q, err := NewQuantizer([]float64{0, 10}, []float64{1, 20}, []float64{0.25, 5})
	if err != nil {
		t.Fatal(err)
	}
	cell, err := q.Cell([]float64{0.3, 14})
	if err != nil {
		t.Fatal(err)
	}
	if cell[0] != 1 || cell[1] != 1 {
		t.Errorf("Cell = %v, want [1 1]", cell)
	}
	cent := q.Centroid(cell)
	if cent[0] != 0.25 || cent[1] != 15 {
		t.Errorf("Centroid = %v, want [0.25 15]", cent)
	}
	// Clamping.
	cell, err = q.Cell([]float64{-5, 100})
	if err != nil {
		t.Fatal(err)
	}
	if cell[0] != 0 || cell[1] != 2 {
		t.Errorf("clamped Cell = %v, want [0 2]", cell)
	}
	if _, err := q.Cell([]float64{1}); err == nil {
		t.Error("wrong dims: want error")
	}
}

func TestQuantizerLevels(t *testing.T) {
	q, err := NewQuantizer([]float64{0}, []float64{1}, []float64{0.25})
	if err != nil {
		t.Fatal(err)
	}
	levels := q.Levels(0)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	if len(levels) != len(want) {
		t.Fatalf("Levels = %v, want %v", levels, want)
	}
	for i := range want {
		if math.Abs(levels[i]-want[i]) > 1e-9 {
			t.Errorf("Levels[%d] = %v, want %v", i, levels[i], want[i])
		}
	}
}

func TestTableAddLookup(t *testing.T) {
	q, err := NewQuantizer([]float64{0}, []float64{10}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	tab, err := NewTable(q, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Two observations in the same cell are averaged.
	if err := tab.Add([]float64{3.1}, []float64{10, 1}); err != nil {
		t.Fatal(err)
	}
	if err := tab.Add([]float64{2.9}, []float64{20, 3}); err != nil {
		t.Fatal(err)
	}
	got, ok, err := tab.Lookup([]float64{3.0})
	if err != nil || !ok {
		t.Fatalf("Lookup: ok=%v err=%v", ok, err)
	}
	if got[0] != 15 || got[1] != 2 {
		t.Errorf("Lookup = %v, want [15 2]", got)
	}
	// Empty cell misses.
	if _, ok, err := tab.Lookup([]float64{9}); err != nil || ok {
		t.Errorf("empty cell: ok=%v err=%v, want miss", ok, err)
	}
	if tab.Cells() != 1 {
		t.Errorf("Cells = %d, want 1", tab.Cells())
	}
	// Output width enforced.
	if err := tab.Add([]float64{1}, []float64{1}); err == nil {
		t.Error("short output: want error")
	}
}

func TestTableNegativeCells(t *testing.T) {
	q, err := NewQuantizer([]float64{-10}, []float64{10}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	tab, err := NewTable(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Add([]float64{-7}, []float64{42}); err != nil {
		t.Fatal(err)
	}
	got, ok, err := tab.Lookup([]float64{-7.2})
	if err != nil || !ok || got[0] != 42 {
		t.Errorf("Lookup = %v ok=%v err=%v, want [42] true nil", got, ok, err)
	}
}

func TestTableSamplesRoundTrip(t *testing.T) {
	q, err := NewQuantizer([]float64{0, 0}, []float64{4, 4}, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	tab, err := NewTable(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Add([]float64{1, 2}, []float64{7}); err != nil {
		t.Fatal(err)
	}
	if err := tab.Add([]float64{3, 0}, []float64{9}); err != nil {
		t.Fatal(err)
	}
	samples, err := tab.Samples(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 2 {
		t.Fatalf("got %d samples, want 2", len(samples))
	}
	seen := map[string]float64{}
	for _, s := range samples {
		seen[fmt.Sprintf("%v", s.X)] = s.Y
	}
	if seen["[1 2]"] != 7 || seen["[3 0]"] != 9 {
		t.Errorf("samples = %v", seen)
	}
	if _, err := tab.Samples(5); err == nil {
		t.Error("bad column: want error")
	}
}

func TestFitTreeValidation(t *testing.T) {
	if _, err := FitTree(nil, TreeConfig{}); err == nil {
		t.Error("no samples: want error")
	}
	if _, err := FitTree([]Sample{{X: nil, Y: 1}}, TreeConfig{}); err == nil {
		t.Error("zero-dim: want error")
	}
	bad := []Sample{{X: []float64{1}, Y: 1}, {X: []float64{1, 2}, Y: 2}}
	if _, err := FitTree(bad, TreeConfig{}); err == nil {
		t.Error("ragged dims: want error")
	}
}

func TestTreeRecoversPiecewiseConstant(t *testing.T) {
	// y = 1 for x < 0.5, y = 5 for x >= 0.5: one split suffices.
	var samples []Sample
	for i := 0; i < 100; i++ {
		x := float64(i) / 100
		y := 1.0
		if x >= 0.5 {
			y = 5.0
		}
		samples = append(samples, Sample{X: []float64{x}, Y: y})
	}
	tree, err := FitTree(samples, TreeConfig{MaxDepth: 3, MinLeaf: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct{ x, want float64 }{{0.1, 1}, {0.4, 1}, {0.6, 5}, {0.99, 5}} {
		got, err := tree.Predict([]float64{c.x})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Predict(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	rmse, err := tree.TrainingRMSE(samples)
	if err != nil {
		t.Fatal(err)
	}
	if rmse > 1e-9 {
		t.Errorf("training RMSE = %v, want ~0 for recoverable function", rmse)
	}
}

func TestTreeHandlesConstantTarget(t *testing.T) {
	samples := make([]Sample, 20)
	for i := range samples {
		samples[i] = Sample{X: []float64{float64(i)}, Y: 3}
	}
	tree, err := FitTree(samples, TreeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Nodes() != 1 {
		t.Errorf("constant target grew %d nodes, want 1", tree.Nodes())
	}
	got, err := tree.Predict([]float64{100})
	if err != nil || got != 3 {
		t.Errorf("Predict = %v/%v, want 3", got, err)
	}
}

func TestTreePredictionWithinTrainingRange(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	f := func(n uint8) bool {
		count := int(n%100) + 20
		samples := make([]Sample, count)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range samples {
			y := rng.NormFloat64() * 10
			lo = math.Min(lo, y)
			hi = math.Max(hi, y)
			samples[i] = Sample{X: []float64{rng.Float64() * 5, rng.Float64() * 5}, Y: y}
		}
		tree, err := FitTree(samples, TreeConfig{MaxDepth: 6, MinLeaf: 2})
		if err != nil {
			return false
		}
		for i := 0; i < 50; i++ {
			p, err := tree.Predict([]float64{rng.Float64() * 8, rng.Float64() * 8})
			if err != nil || p < lo-1e-9 || p > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestTreeMinLeafRespected(t *testing.T) {
	var samples []Sample
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 64; i++ {
		samples = append(samples, Sample{X: []float64{float64(i)}, Y: rng.Float64() * 100})
	}
	tree, err := FitTree(samples, TreeConfig{MaxDepth: 20, MinLeaf: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range tree.nodes {
		if n.left < 0 && n.count < 8 {
			t.Errorf("leaf with %d samples, want >= 8", n.count)
		}
	}
}

func TestDeeperTreeFitsBetter(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var samples []Sample
	for i := 0; i < 400; i++ {
		x := rng.Float64() * 10
		samples = append(samples, Sample{X: []float64{x}, Y: math.Sin(x) + rng.NormFloat64()*0.05})
	}
	shallow, err := FitTree(samples, TreeConfig{MaxDepth: 2, MinLeaf: 2})
	if err != nil {
		t.Fatal(err)
	}
	deep, err := FitTree(samples, TreeConfig{MaxDepth: 8, MinLeaf: 2})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := shallow.TrainingRMSE(samples)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := deep.TrainingRMSE(samples)
	if err != nil {
		t.Fatal(err)
	}
	if rd >= rs {
		t.Errorf("deep RMSE %v not better than shallow %v", rd, rs)
	}
	if deep.Depth() <= shallow.Depth() {
		t.Errorf("deep depth %d <= shallow %d", deep.Depth(), shallow.Depth())
	}
	if deep.Leaves() <= shallow.Leaves() {
		t.Errorf("deep leaves %d <= shallow %d", deep.Leaves(), shallow.Leaves())
	}
}

func TestTreePredictDimsChecked(t *testing.T) {
	tree, err := FitTree([]Sample{{X: []float64{1}, Y: 1}, {X: []float64{2}, Y: 2}}, TreeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tree.Predict([]float64{1, 2}); err == nil {
		t.Error("wrong dims: want error")
	}
}

func TestGridEnumeratesCartesianProduct(t *testing.T) {
	levels := [][]float64{{0, 1}, {10, 20, 30}}
	var got [][]float64
	err := Grid(levels, func(p []float64) error {
		cp := make([]float64, len(p))
		copy(cp, p)
		got = append(got, cp)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 {
		t.Fatalf("visited %d points, want 6", len(got))
	}
	if GridSize(levels) != 6 {
		t.Errorf("GridSize = %d, want 6", GridSize(levels))
	}
	if got[0][0] != 0 || got[0][1] != 10 || got[5][0] != 1 || got[5][1] != 30 {
		t.Errorf("grid order unexpected: %v", got)
	}
}

func TestGridErrors(t *testing.T) {
	if err := Grid(nil, func([]float64) error { return nil }); err == nil {
		t.Error("empty grid: want error")
	}
	if err := Grid([][]float64{{}}, func([]float64) error { return nil }); err == nil {
		t.Error("empty dimension: want error")
	}
	boom := fmt.Errorf("boom")
	err := Grid([][]float64{{1, 2}}, func([]float64) error { return boom })
	if err != boom {
		t.Errorf("visit error not propagated: %v", err)
	}
	if GridSize(nil) != 0 {
		t.Error("GridSize(nil) != 0")
	}
}

func TestLearnBuildsSamples(t *testing.T) {
	levels := [][]float64{{1, 2}, {3, 4}}
	samples, err := Learn(levels, func(p []float64) (float64, error) {
		return p[0] * p[1], nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 4 {
		t.Fatalf("got %d samples, want 4", len(samples))
	}
	for _, s := range samples {
		if s.Y != s.X[0]*s.X[1] {
			t.Errorf("sample %v: Y != X0*X1", s)
		}
	}
	// Samples own their X (the grid buffer is reused).
	if &samples[0].X[0] == &samples[1].X[0] {
		t.Error("samples share feature storage")
	}
	if _, err := Learn(levels, func(p []float64) (float64, error) {
		return 0, fmt.Errorf("sim failed")
	}); err == nil {
		t.Error("f error not propagated")
	}
}
