package approx

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestTreeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var samples []Sample
	for i := 0; i < 200; i++ {
		x := []float64{rng.Float64() * 10, rng.Float64() * 5}
		samples = append(samples, Sample{X: x, Y: x[0]*2 + x[1]})
	}
	tree, err := FitTree(samples, TreeConfig{MaxDepth: 8, MinLeaf: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tree.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadTree(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Nodes() != tree.Nodes() || loaded.Depth() != tree.Depth() {
		t.Errorf("shape changed: %d/%d nodes, %d/%d depth",
			loaded.Nodes(), tree.Nodes(), loaded.Depth(), tree.Depth())
	}
	for i := 0; i < 100; i++ {
		x := []float64{rng.Float64() * 12, rng.Float64() * 6}
		a, err := tree.Predict(x)
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.Predict(x)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("prediction diverged at %v: %v vs %v", x, a, b)
		}
	}
}

func TestTableRoundTrip(t *testing.T) {
	q, err := NewQuantizer([]float64{0, 0}, []float64{10, 10}, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	tab, err := NewTable(q, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Add([]float64{3, 4}, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := tab.Add([]float64{3, 4}, []float64{3, 4}); err != nil {
		t.Fatal(err)
	}
	if err := tab.Add([]float64{7, 8}, []float64{5, 6}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tab.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Cells() != tab.Cells() {
		t.Fatalf("cells = %d, want %d", loaded.Cells(), tab.Cells())
	}
	for _, probe := range [][]float64{{3, 4}, {7, 8}} {
		a, okA, err := tab.Lookup(probe)
		if err != nil || !okA {
			t.Fatal(err)
		}
		b, okB, err := loaded.Lookup(probe)
		if err != nil || !okB {
			t.Fatal(err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("lookup %v diverged: %v vs %v", probe, a, b)
			}
		}
	}
	// Unpopulated cells still miss.
	if _, ok, err := loaded.Lookup([]float64{0, 0}); err != nil || ok {
		t.Error("empty cell should miss after round trip")
	}
}

func TestReadGarbage(t *testing.T) {
	if _, err := ReadTree(strings.NewReader("not a gob stream")); err == nil {
		t.Error("garbage tree: want error")
	}
	if _, err := ReadTable(strings.NewReader("not a gob stream")); err == nil {
		t.Error("garbage table: want error")
	}
}
