package approx

import (
	"encoding/gob"
	"fmt"
	"io"
)

// Serialization uses encoding/gob over explicit DTOs so the unexported
// internals stay free to change without breaking saved artifacts beyond a
// version bump.

const persistVersion = 1

type treeDTO struct {
	Version int
	Dims    int
	Nodes   []nodeDTO
}

type nodeDTO struct {
	Dim       int
	Threshold float64
	Left      int
	Right     int
	Value     float64
	Count     int
}

// Save serializes the tree.
func (t *RegressionTree) Save(w io.Writer) error {
	dto := treeDTO{Version: persistVersion, Dims: t.dims, Nodes: make([]nodeDTO, len(t.nodes))}
	for i, n := range t.nodes {
		dto.Nodes[i] = nodeDTO{Dim: n.dim, Threshold: n.threshold, Left: n.left, Right: n.right, Value: n.value, Count: n.count}
	}
	if err := gob.NewEncoder(w).Encode(dto); err != nil {
		return fmt.Errorf("approx: encode tree: %w", err)
	}
	return nil
}

// ReadTree deserializes a tree written by Save.
func ReadTree(r io.Reader) (*RegressionTree, error) {
	var dto treeDTO
	if err := gob.NewDecoder(r).Decode(&dto); err != nil {
		return nil, fmt.Errorf("approx: decode tree: %w", err)
	}
	if dto.Version != persistVersion {
		return nil, fmt.Errorf("approx: tree artifact version %d, want %d", dto.Version, persistVersion)
	}
	if dto.Dims < 1 || len(dto.Nodes) == 0 {
		return nil, fmt.Errorf("approx: tree artifact malformed")
	}
	t := &RegressionTree{dims: dto.Dims, nodes: make([]treeNode, len(dto.Nodes))}
	for i, n := range dto.Nodes {
		if n.Left >= len(dto.Nodes) || n.Right >= len(dto.Nodes) {
			return nil, fmt.Errorf("approx: tree artifact node %d references out of range", i)
		}
		t.nodes[i] = treeNode{dim: n.Dim, threshold: n.Threshold, left: n.Left, right: n.Right, value: n.Value, count: n.Count}
	}
	return t, nil
}

type tableDTO struct {
	Version int
	Min     []float64
	Max     []float64
	Step    []float64
	Width   int
	Keys    []string
	Sums    [][]float64
	Counts  []int
}

// Save serializes the table (quantizer grid plus populated cells). The
// on-disk format is the historical string-keyed one regardless of the
// in-memory representation — packed tables re-encode each cell key as the
// fixed-width int32 string — so artifacts written before the packed-key
// rework reload unchanged and vice versa.
func (t *Table) Save(w io.Writer) error {
	dto := tableDTO{
		Version: persistVersion,
		Min:     t.quant.Min, Max: t.quant.Max, Step: t.quant.Step,
		Width: t.width,
	}
	// Cells are written in sorted key order: map iteration order is
	// randomized per run, and a Save that depended on it produced
	// byte-different artifacts for identical tables (caught by the
	// maprange analyzer, pinned by TestTableSaveDeterministic).
	if t.packed {
		for _, k := range t.sortedPackedKeys() {
			c := t.cells[k]
			dto.Keys = append(dto.Keys, cellKey(t.unpackKey(k)))
			dto.Sums = append(dto.Sums, c.sum)
			dto.Counts = append(dto.Counts, c.n)
		}
	} else {
		for _, k := range t.sortedWideKeys() {
			c := t.wide[k]
			dto.Keys = append(dto.Keys, k)
			dto.Sums = append(dto.Sums, c.sum)
			dto.Counts = append(dto.Counts, c.n)
		}
	}
	if err := gob.NewEncoder(w).Encode(dto); err != nil {
		return fmt.Errorf("approx: encode table: %w", err)
	}
	return nil
}

// ReadTable deserializes a table written by Save.
func ReadTable(r io.Reader) (*Table, error) {
	var dto tableDTO
	if err := gob.NewDecoder(r).Decode(&dto); err != nil {
		return nil, fmt.Errorf("approx: decode table: %w", err)
	}
	if dto.Version != persistVersion {
		return nil, fmt.Errorf("approx: table artifact version %d, want %d", dto.Version, persistVersion)
	}
	quant, err := NewQuantizer(dto.Min, dto.Max, dto.Step)
	if err != nil {
		return nil, fmt.Errorf("approx: table artifact quantizer: %w", err)
	}
	t, err := NewTable(quant, dto.Width)
	if err != nil {
		return nil, err
	}
	if len(dto.Keys) != len(dto.Sums) || len(dto.Keys) != len(dto.Counts) {
		return nil, fmt.Errorf("approx: table artifact cell arrays misaligned")
	}
	for i, k := range dto.Keys {
		if len(dto.Sums[i]) != dto.Width || dto.Counts[i] < 1 || len(k) != 4*quant.Dims() {
			return nil, fmt.Errorf("approx: table artifact cell %d malformed", i)
		}
		c := &cell{sum: dto.Sums[i], n: dto.Counts[i]}
		if t.packed {
			idx := decodeKey(k)
			for d, v := range idx {
				if v < 0 || v > quant.maxIndex(d) {
					return nil, fmt.Errorf("approx: table artifact cell %d index %d outside grid", i, d)
				}
			}
			t.cells[t.packCell(idx)] = c
		} else {
			t.wide[k] = c
		}
	}
	return t, nil
}
