package approx

import (
	"bytes"
	"math/rand"
	"testing"
)

// fillTable populates tab with enough cells that any map-order-dependent
// iteration is near-certain to differ between two passes.
func fillTable(t *testing.T, tab *Table, dims int) {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 400; i++ {
		x := make([]float64, dims)
		for d := range x {
			x[d] = rng.Float64() * 10
		}
		if err := tab.Add(x, []float64{rng.Float64(), rng.Float64()}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestTableSaveDeterministic pins the fix for a real nondeterminism bug:
// Save used to iterate the cell map directly, so identical tables
// serialized to different bytes from run to run (Go randomizes map
// iteration order). Cells are now written in sorted key order, on both
// the packed and the wide keying paths.
func TestTableSaveDeterministic(t *testing.T) {
	cases := []struct {
		name string
		min  []float64
		max  []float64
		step []float64
	}{
		// 3 dims × ~4 bits each packs into a uint64.
		{"packed", []float64{0, 0, 0}, []float64{10, 10, 10}, []float64{1, 1, 1}},
		// 5 dims × ~20 bits each overflows 64 bits: wide string keys.
		{"wide", make([]float64, 5), []float64{1e6, 1e6, 1e6, 1e6, 1e6}, []float64{1e-5, 1e-5, 1e-5, 1e-5, 1e-5}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q, err := NewQuantizer(tc.min, tc.max, tc.step)
			if err != nil {
				t.Fatal(err)
			}
			tab, err := NewTable(q, 2)
			if err != nil {
				t.Fatal(err)
			}
			if wantPacked := tc.name == "packed"; tab.Packed() != wantPacked {
				t.Fatalf("Packed() = %v, want %v (test grid no longer exercises this path)", tab.Packed(), wantPacked)
			}
			fillTable(t, tab, q.Dims())
			var a, b bytes.Buffer
			if err := tab.Save(&a); err != nil {
				t.Fatal(err)
			}
			if err := tab.Save(&b); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a.Bytes(), b.Bytes()) {
				t.Fatalf("two Saves of the same %d-cell table differ (%d vs %d bytes)", tab.Cells(), a.Len(), b.Len())
			}
		})
	}
}

// TestTableSamplesDeterministic pins the companion fix: Samples feeds the
// regression-tree fitter, whose tie-breaking is input-order-sensitive, so
// the export must not follow map order either.
func TestTableSamplesDeterministic(t *testing.T) {
	q, err := NewQuantizer([]float64{0, 0, 0}, []float64{10, 10, 10}, []float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	tab, err := NewTable(q, 2)
	if err != nil {
		t.Fatal(err)
	}
	fillTable(t, tab, q.Dims())
	first, err := tab.Samples(1)
	if err != nil {
		t.Fatal(err)
	}
	second, err := tab.Samples(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != len(second) {
		t.Fatalf("sample counts differ: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i].Y != second[i].Y {
			t.Fatalf("sample %d differs across exports: %v vs %v", i, first[i], second[i])
		}
		for d := range first[i].X {
			if first[i].X[d] != second[i].X[d] {
				t.Fatalf("sample %d centroid differs across exports", i)
			}
		}
	}
}
