package approx

import (
	"fmt"
	"math"
	"sort"
)

// Sample is one training observation for the regression tree.
type Sample struct {
	// X is the feature vector.
	X []float64
	// Y is the regression target.
	Y float64
}

// TreeConfig bounds regression-tree growth.
type TreeConfig struct {
	// MaxDepth limits tree depth (root = depth 0). Values < 1 default
	// to 12.
	MaxDepth int
	// MinLeaf is the minimum number of samples in a leaf. Values < 1
	// default to 4.
	MinLeaf int
}

func (c TreeConfig) withDefaults() TreeConfig {
	if c.MaxDepth < 1 {
		c.MaxDepth = 12
	}
	if c.MinLeaf < 1 {
		c.MinLeaf = 4
	}
	return c
}

// RegressionTree is a CART-style binary regression tree (Breiman et al.,
// the paper's reference [11]) fitted by variance-reduction splitting. The
// L2 controller uses one as its compact approximation J̃ of module cost.
// Construct with FitTree.
type RegressionTree struct {
	nodes []treeNode
	dims  int
}

type treeNode struct {
	// Leaf nodes have left == -1 and carry value.
	dim       int
	threshold float64
	left      int
	right     int
	value     float64
	count     int
}

// FitTree grows a regression tree on the samples. All samples must share
// the same feature dimensionality.
func FitTree(samples []Sample, cfg TreeConfig) (*RegressionTree, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("approx: no training samples")
	}
	dims := len(samples[0].X)
	if dims == 0 {
		return nil, fmt.Errorf("approx: zero-dimensional samples")
	}
	for i, s := range samples {
		if len(s.X) != dims {
			return nil, fmt.Errorf("approx: sample %d has %d dims, want %d", i, len(s.X), dims)
		}
	}
	cfg = cfg.withDefaults()
	t := &RegressionTree{dims: dims}
	idx := make([]int, len(samples))
	for i := range idx {
		idx[i] = i
	}
	t.grow(samples, idx, 0, cfg)
	return t, nil
}

// grow builds the subtree over samples[idx] and returns its node index.
func (t *RegressionTree) grow(samples []Sample, idx []int, depth int, cfg TreeConfig) int {
	mean, sse := meanSSE(samples, idx)
	node := treeNode{left: -1, right: -1, value: mean, count: len(idx)}
	nodeIdx := len(t.nodes)
	t.nodes = append(t.nodes, node)

	if depth >= cfg.MaxDepth || len(idx) < 2*cfg.MinLeaf || sse <= 1e-12 {
		return nodeIdx
	}
	bestDim, bestThr, bestGain := -1, 0.0, 0.0
	sorted := make([]int, len(idx))
	for d := 0; d < t.dims; d++ {
		copy(sorted, idx)
		sort.Slice(sorted, func(a, b int) bool { return samples[sorted[a]].X[d] < samples[sorted[b]].X[d] })
		// Prefix sums for O(1) left/right SSE at each split position.
		var sumL, sqL float64
		sumT, sqT := 0.0, 0.0
		for _, i := range sorted {
			sumT += samples[i].Y
			sqT += samples[i].Y * samples[i].Y
		}
		n := float64(len(sorted))
		for pos := 0; pos < len(sorted)-1; pos++ {
			y := samples[sorted[pos]].Y
			sumL += y
			sqL += y * y
			nl := float64(pos + 1)
			nr := n - nl
			if int(nl) < cfg.MinLeaf || int(nr) < cfg.MinLeaf {
				continue
			}
			// Skip ties: can't split between equal feature values.
			if samples[sorted[pos]].X[d] == samples[sorted[pos+1]].X[d] {
				continue
			}
			sseL := sqL - sumL*sumL/nl
			sumR := sumT - sumL
			sseR := (sqT - sqL) - sumR*sumR/nr
			gain := sse - (sseL + sseR)
			if gain > bestGain+1e-12 {
				bestGain = gain
				bestDim = d
				bestThr = (samples[sorted[pos]].X[d] + samples[sorted[pos+1]].X[d]) / 2
			}
		}
	}
	if bestDim < 0 {
		return nodeIdx
	}
	var leftIdx, rightIdx []int
	for _, i := range idx {
		if samples[i].X[bestDim] <= bestThr {
			leftIdx = append(leftIdx, i)
		} else {
			rightIdx = append(rightIdx, i)
		}
	}
	if len(leftIdx) == 0 || len(rightIdx) == 0 {
		return nodeIdx
	}
	left := t.grow(samples, leftIdx, depth+1, cfg)
	right := t.grow(samples, rightIdx, depth+1, cfg)
	t.nodes[nodeIdx].dim = bestDim
	t.nodes[nodeIdx].threshold = bestThr
	t.nodes[nodeIdx].left = left
	t.nodes[nodeIdx].right = right
	return nodeIdx
}

func meanSSE(samples []Sample, idx []int) (mean, sse float64) {
	for _, i := range idx {
		mean += samples[i].Y
	}
	mean /= float64(len(idx))
	for _, i := range idx {
		d := samples[i].Y - mean
		sse += d * d
	}
	return mean, sse
}

// Predict returns the tree's estimate at x. Feature vectors of the wrong
// dimensionality are an error.
func (t *RegressionTree) Predict(x []float64) (float64, error) {
	if len(x) != t.dims {
		return 0, fmt.Errorf("approx: point has %d dims, tree has %d", len(x), t.dims)
	}
	i := 0
	for {
		n := t.nodes[i]
		if n.left < 0 {
			return n.value, nil
		}
		if x[n.dim] <= n.threshold {
			i = n.left
		} else {
			i = n.right
		}
	}
}

// Nodes returns the number of nodes — the paper's "compact" criterion.
func (t *RegressionTree) Nodes() int { return len(t.nodes) }

// Leaves returns the number of leaf nodes.
func (t *RegressionTree) Leaves() int {
	n := 0
	for _, nd := range t.nodes {
		if nd.left < 0 {
			n++
		}
	}
	return n
}

// Depth returns the maximum depth of the tree (root = 0).
func (t *RegressionTree) Depth() int {
	var walk func(i, d int) int
	walk = func(i, d int) int {
		n := t.nodes[i]
		if n.left < 0 {
			return d
		}
		return max(walk(n.left, d+1), walk(n.right, d+1))
	}
	if len(t.nodes) == 0 {
		return 0
	}
	return walk(0, 0)
}

// TrainingRMSE evaluates the tree against a sample set.
func (t *RegressionTree) TrainingRMSE(samples []Sample) (float64, error) {
	if len(samples) == 0 {
		return 0, nil
	}
	sse := 0.0
	for _, s := range samples {
		p, err := t.Predict(s.X)
		if err != nil {
			return 0, err
		}
		d := p - s.Y
		sse += d * d
	}
	return math.Sqrt(sse / float64(len(samples))), nil
}
