// Package approx implements the paper's function-approximation substrate
// (§3, §4.2, §5.1): higher-level controllers cannot afford detailed models
// of the closed-loop components below them, so they consult learned
// abstractions instead —
//
//   - Table: the quantized hash-table abstraction map g used by the L1
//     controller to predict per-computer cost and behaviour, "obtained
//     off-line by simulating the L0 controller" (§4.2);
//   - RegressionTree: the compact CART regression tree the L2 controller
//     uses to approximate module cost J̃, "trained from a large lookup
//     table" produced by simulation-based learning (§5.1);
//   - Grid / Learn: the simulation-based learning harness that sweeps the
//     quantized input domains and produces training samples.
//
// Invariant: learned artifacts serialize (persist.go) and reload
// byte-faithfully, and lookups after a reload answer identically — the
// property the artifact cache (core.Config.ArtifactDir) and the fleet's
// event-sourced snapshots build on.
package approx

import (
	"fmt"
	"math"
)

// Quantizer maps continuous feature vectors onto a regular grid so they can
// key a lookup table. Each dimension d is clamped to [Min[d], Max[d]] and
// snapped to multiples of Step[d].
type Quantizer struct {
	Min, Max, Step []float64
}

// NewQuantizer validates and returns a quantizer. All three slices must
// have the same length, with Min ≤ Max and Step > 0 per dimension.
func NewQuantizer(min, max, step []float64) (*Quantizer, error) {
	if len(min) == 0 || len(min) != len(max) || len(min) != len(step) {
		return nil, fmt.Errorf("approx: quantizer dims %d/%d/%d mismatch or empty", len(min), len(max), len(step))
	}
	for d := range min {
		if max[d] < min[d] {
			return nil, fmt.Errorf("approx: dim %d max %v < min %v", d, max[d], min[d])
		}
		if step[d] <= 0 {
			return nil, fmt.Errorf("approx: dim %d step %v <= 0", d, step[d])
		}
	}
	return &Quantizer{Min: min, Max: max, Step: step}, nil
}

// Dims returns the number of feature dimensions.
func (q *Quantizer) Dims() int { return len(q.Min) }

// Cell returns the grid indices of x (clamped into range).
func (q *Quantizer) Cell(x []float64) ([]int, error) {
	if len(x) != q.Dims() {
		return nil, fmt.Errorf("approx: point has %d dims, quantizer has %d", len(x), q.Dims())
	}
	cell := make([]int, len(x))
	for d, v := range x {
		if v < q.Min[d] {
			v = q.Min[d]
		}
		if v > q.Max[d] {
			v = q.Max[d]
		}
		cell[d] = int(math.Round((v - q.Min[d]) / q.Step[d]))
	}
	return cell, nil
}

// Centroid returns the representative point of the given cell.
func (q *Quantizer) Centroid(cell []int) []float64 {
	out := make([]float64, len(cell))
	for d, c := range cell {
		v := q.Min[d] + float64(c)*q.Step[d]
		if v > q.Max[d] {
			v = q.Max[d]
		}
		out[d] = v
	}
	return out
}

// Levels returns the grid values of dimension d from Min to Max inclusive,
// the sweep set used by the learning harness.
func (q *Quantizer) Levels(d int) []float64 {
	var out []float64
	for v := q.Min[d]; v <= q.Max[d]+1e-9; v += q.Step[d] {
		out = append(out, math.Min(v, q.Max[d]))
	}
	return out
}

func cellKey(cell []int) string {
	// Fixed-width little-endian int32 encoding: compact, collision-free.
	buf := make([]byte, 0, len(cell)*4)
	for _, c := range cell {
		u := uint32(int32(c))
		buf = append(buf, byte(u), byte(u>>8), byte(u>>16), byte(u>>24))
	}
	return string(buf)
}

// Table is the quantized abstraction map g: a hash table from quantized
// (state, environment, control) tuples to learned outputs — the paper
// stores the approximate cost and aggregate behaviour of a computer under
// its L0 controller. Multiple observations falling in one cell are
// averaged. Construct with NewTable.
type Table struct {
	quant  *Quantizer
	sums   map[string][]float64
	counts map[string]int
	width  int
}

// NewTable builds an empty table over the quantizer's grid with the given
// output width (number of learned values per cell, ≥ 1).
func NewTable(quant *Quantizer, outputWidth int) (*Table, error) {
	if quant == nil {
		return nil, fmt.Errorf("approx: nil quantizer")
	}
	if outputWidth < 1 {
		return nil, fmt.Errorf("approx: output width %d < 1", outputWidth)
	}
	return &Table{
		quant:  quant,
		sums:   make(map[string][]float64),
		counts: make(map[string]int),
		width:  outputWidth,
	}, nil
}

// Add folds an observation into the cell containing x.
func (t *Table) Add(x []float64, outputs []float64) error {
	if len(outputs) != t.width {
		return fmt.Errorf("approx: %d outputs, table width %d", len(outputs), t.width)
	}
	cell, err := t.quant.Cell(x)
	if err != nil {
		return err
	}
	k := cellKey(cell)
	sum, ok := t.sums[k]
	if !ok {
		sum = make([]float64, t.width)
		t.sums[k] = sum
	}
	for i, v := range outputs {
		sum[i] += v
	}
	t.counts[k]++
	return nil
}

// Lookup returns the cell average for the cell containing x, and whether
// the cell has any observations.
func (t *Table) Lookup(x []float64) ([]float64, bool, error) {
	cell, err := t.quant.Cell(x)
	if err != nil {
		return nil, false, err
	}
	k := cellKey(cell)
	n := t.counts[k]
	if n == 0 {
		return nil, false, nil
	}
	out := make([]float64, t.width)
	for i, v := range t.sums[k] {
		out[i] = v / float64(n)
	}
	return out, true, nil
}

// Cells returns the number of populated cells.
func (t *Table) Cells() int { return len(t.counts) }

// Samples exports the populated cells as training samples (cell centroid →
// first output average), the "large lookup table … then used to train a
// regression tree" step of §5.1. Output column col selects which learned
// value becomes the target.
func (t *Table) Samples(col int) ([]Sample, error) {
	if col < 0 || col >= t.width {
		return nil, fmt.Errorf("approx: column %d outside [0, %d)", col, t.width)
	}
	out := make([]Sample, 0, len(t.counts))
	for k, n := range t.counts {
		cell := decodeKey(k)
		out = append(out, Sample{
			X: t.quant.Centroid(cell),
			Y: t.sums[k][col] / float64(n),
		})
	}
	return out, nil
}

func decodeKey(k string) []int {
	cell := make([]int, len(k)/4)
	for i := range cell {
		u := uint32(k[4*i]) | uint32(k[4*i+1])<<8 | uint32(k[4*i+2])<<16 | uint32(k[4*i+3])<<24
		cell[i] = int(int32(u))
	}
	return cell
}
