// Package approx implements the paper's function-approximation substrate
// (§3, §4.2, §5.1): higher-level controllers cannot afford detailed models
// of the closed-loop components below them, so they consult learned
// abstractions instead —
//
//   - Table: the quantized hash-table abstraction map g used by the L1
//     controller to predict per-computer cost and behaviour, "obtained
//     off-line by simulating the L0 controller" (§4.2);
//   - RegressionTree: the compact CART regression tree the L2 controller
//     uses to approximate module cost J̃, "trained from a large lookup
//     table" produced by simulation-based learning (§5.1);
//   - Grid / Learn: the simulation-based learning harness that sweeps the
//     quantized input domains and produces training samples.
//
// Invariant: learned artifacts serialize (persist.go) and reload
// byte-faithfully, and lookups after a reload answer identically — the
// property the artifact cache (core.Config.ArtifactDir) and the fleet's
// event-sourced snapshots build on.
//
// Invariant: the steady-state lookup path is allocation-free. Table keys
// cells by a single packed uint64 of quantized indices (one hash probe per
// Add/Lookup), and the *Into APIs (Quantizer.CellInto, Table.LookupInto)
// write into caller-owned scratch — TestTableLookupIntoZeroAlloc and
// TestQuantizerCellIntoZeroAlloc pin both at 0 allocs/op. Grids whose
// index ranges overflow 64 packed bits fall back to the historical
// string-keyed cells (see NewTable); the fallback answers identically but
// allocates one key per probe.
package approx

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
)

// Quantizer maps continuous feature vectors onto a regular grid so they can
// key a lookup table. Each dimension d is clamped to [Min[d], Max[d]] and
// snapped to multiples of Step[d].
type Quantizer struct {
	Min, Max, Step []float64
}

// NewQuantizer validates and returns a quantizer. All three slices must
// have the same length, with Min ≤ Max and Step > 0 per dimension.
func NewQuantizer(min, max, step []float64) (*Quantizer, error) {
	if len(min) == 0 || len(min) != len(max) || len(min) != len(step) {
		return nil, fmt.Errorf("approx: quantizer dims %d/%d/%d mismatch or empty", len(min), len(max), len(step))
	}
	for d := range min {
		if max[d] < min[d] {
			return nil, fmt.Errorf("approx: dim %d max %v < min %v", d, max[d], min[d])
		}
		if step[d] <= 0 {
			return nil, fmt.Errorf("approx: dim %d step %v <= 0", d, step[d])
		}
	}
	return &Quantizer{Min: min, Max: max, Step: step}, nil
}

// Dims returns the number of feature dimensions.
func (q *Quantizer) Dims() int { return len(q.Min) }

// index returns the grid index of v along dimension d (clamped into
// range). Every keying path funnels through this one expression so packed
// and string-keyed lookups agree bit-for-bit.
func (q *Quantizer) index(d int, v float64) int {
	if v < q.Min[d] {
		v = q.Min[d]
	}
	if v > q.Max[d] {
		v = q.Max[d]
	}
	return int(math.Round((v - q.Min[d]) / q.Step[d]))
}

// maxIndex returns the largest index reachable along dimension d (the
// index of v = Max[d]).
func (q *Quantizer) maxIndex(d int) int { return q.index(d, q.Max[d]) }

// Cell returns the grid indices of x (clamped into range).
func (q *Quantizer) Cell(x []float64) ([]int, error) {
	return q.CellInto(nil, x)
}

// CellInto is Cell writing into dst: when cap(dst) ≥ Dims() the returned
// slice aliases dst and the call performs no allocation (pinned by
// TestQuantizerCellIntoZeroAlloc); otherwise a fresh slice is allocated.
//
//hpm:hotpath
func (q *Quantizer) CellInto(dst []int, x []float64) ([]int, error) {
	if len(x) != q.Dims() {
		return nil, fmt.Errorf("approx: point has %d dims, quantizer has %d", len(x), q.Dims())
	}
	if cap(dst) < len(x) {
		dst = make([]int, len(x)) //hpm:alloc fallback when caller scratch is too small; the *Into contract
	}
	dst = dst[:len(x)]
	for d, v := range x {
		dst[d] = q.index(d, v)
	}
	return dst, nil
}

// Centroid returns the representative point of the given cell.
func (q *Quantizer) Centroid(cell []int) []float64 {
	out := make([]float64, len(cell))
	for d, c := range cell {
		v := q.Min[d] + float64(c)*q.Step[d]
		if v > q.Max[d] {
			v = q.Max[d]
		}
		out[d] = v
	}
	return out
}

// Levels returns the grid values of dimension d from Min to Max inclusive,
// the sweep set used by the learning harness.
func (q *Quantizer) Levels(d int) []float64 {
	var out []float64
	for v := q.Min[d]; v <= q.Max[d]+1e-9; v += q.Step[d] {
		out = append(out, math.Min(v, q.Max[d]))
	}
	return out
}

func cellKey(cell []int) string {
	// Fixed-width little-endian int32 encoding: compact, collision-free.
	buf := make([]byte, 0, len(cell)*4)
	for _, c := range cell {
		u := uint32(int32(c))
		buf = append(buf, byte(u), byte(u>>8), byte(u>>16), byte(u>>24))
	}
	return string(buf)
}

// cell is one populated table entry: running output sums and the
// observation count, held behind a single map probe.
type cell struct {
	sum []float64
	n   int
}

// Table is the quantized abstraction map g: a hash table from quantized
// (state, environment, control) tuples to learned outputs — the paper
// stores the approximate cost and aggregate behaviour of a computer under
// its L0 controller. Multiple observations falling in one cell are
// averaged. Construct with NewTable.
//
// Cells are keyed by a single packed uint64 of the quantized indices
// (bitWidth[d] bits per dimension), so Add and Lookup cost one hash probe
// and build no intermediate slice or string. Grids too large to pack —
// Σ_d bits(maxIndex[d]) > 64 — keep the historical string-keyed map
// instead (Packed reports which); answers are identical either way.
type Table struct {
	quant *Quantizer
	width int

	// Packed representation (packed == true): shift[d]/bitsPerDim[d]
	// place dimension d's index inside the uint64 key.
	packed bool
	shift  []uint
	nbits  []uint
	cells  map[uint64]*cell

	// Fallback representation for overflowing grids.
	wide map[string]*cell
}

// NewTable builds an empty table over the quantizer's grid with the given
// output width (number of learned values per cell, ≥ 1).
func NewTable(quant *Quantizer, outputWidth int) (*Table, error) {
	if quant == nil {
		return nil, fmt.Errorf("approx: nil quantizer")
	}
	if outputWidth < 1 {
		return nil, fmt.Errorf("approx: output width %d < 1", outputWidth)
	}
	t := &Table{quant: quant, width: outputWidth}
	total := uint(0)
	nbits := make([]uint, quant.Dims())
	for d := range nbits {
		b := uint(bits.Len(uint(quant.maxIndex(d))))
		if b == 0 {
			b = 1 // single-level dimension still owns one bit
		}
		nbits[d] = b
		total += b
	}
	if total <= 64 {
		t.packed = true
		t.nbits = nbits
		t.shift = make([]uint, len(nbits))
		at := uint(0)
		for d, b := range nbits {
			t.shift[d] = at
			at += b
		}
		t.cells = make(map[uint64]*cell)
	} else {
		t.wide = make(map[string]*cell)
	}
	return t, nil
}

// Packed reports whether the table uses the packed-uint64 cell keys (false
// only for grids whose index ranges overflow 64 bits — see NewTable).
func (t *Table) Packed() bool { return t.packed }

// packKey computes the packed cell key of x without materializing the
// index slice. Only valid when t.packed.
func (t *Table) packKey(x []float64) uint64 {
	k := uint64(0)
	for d, v := range x {
		k |= uint64(t.quant.index(d, v)) << t.shift[d]
	}
	return k
}

// packCell packs an explicit index vector (used when unpacking persisted
// string keys).
func (t *Table) packCell(idx []int) uint64 {
	k := uint64(0)
	for d, c := range idx {
		k |= uint64(c) << t.shift[d]
	}
	return k
}

// unpackKey recovers the index vector from a packed key.
func (t *Table) unpackKey(k uint64) []int {
	idx := make([]int, t.quant.Dims())
	for d := range idx {
		idx[d] = int((k >> t.shift[d]) & (1<<t.nbits[d] - 1))
	}
	return idx
}

// lookupCell returns the populated cell containing x, or nil. The packed
// path performs no allocation; the wide fallback builds one string key.
func (t *Table) lookupCell(x []float64) (*cell, error) {
	if len(x) != t.quant.Dims() {
		return nil, fmt.Errorf("approx: point has %d dims, quantizer has %d", len(x), t.quant.Dims())
	}
	if t.packed {
		return t.cells[t.packKey(x)], nil
	}
	idx, err := t.quant.Cell(x)
	if err != nil {
		return nil, err
	}
	return t.wide[cellKey(idx)], nil
}

// Add folds an observation into the cell containing x.
func (t *Table) Add(x []float64, outputs []float64) error {
	if len(outputs) != t.width {
		return fmt.Errorf("approx: %d outputs, table width %d", len(outputs), t.width)
	}
	c, err := t.lookupCell(x)
	if err != nil {
		return err
	}
	if c == nil {
		c = &cell{sum: make([]float64, t.width)}
		if t.packed {
			t.cells[t.packKey(x)] = c
		} else {
			idx, err := t.quant.Cell(x)
			if err != nil {
				return err
			}
			t.wide[cellKey(idx)] = c
		}
	}
	for i, v := range outputs {
		c.sum[i] += v
	}
	c.n++
	return nil
}

// Lookup returns the cell average for the cell containing x, and whether
// the cell has any observations.
func (t *Table) Lookup(x []float64) ([]float64, bool, error) {
	return t.LookupInto(nil, x)
}

// LookupInto is Lookup writing the averages into dst: when cap(dst) ≥ the
// table's output width the returned slice aliases dst and a hit performs
// no allocation — one hash probe, no intermediate cell slice or key
// string (pinned by TestTableLookupIntoZeroAlloc; the wide-grid fallback
// additionally builds one key string per probe). On a miss dst is left
// untouched and the returned slice is nil.
//
//hpm:hotpath
func (t *Table) LookupInto(dst []float64, x []float64) ([]float64, bool, error) {
	c, err := t.lookupCell(x)
	if err != nil {
		return nil, false, err
	}
	if c == nil {
		return nil, false, nil
	}
	if cap(dst) < t.width {
		dst = make([]float64, t.width) //hpm:alloc fallback when caller scratch is too small; the *Into contract
	}
	dst = dst[:t.width]
	// Per-output division (not multiply-by-reciprocal): cell averages must
	// stay bit-identical to the historical implementation.
	n := float64(c.n)
	for i, v := range c.sum {
		dst[i] = v / n
	}
	return dst, true, nil
}

// Width returns the number of learned values per cell.
func (t *Table) Width() int { return t.width }

// Cells returns the number of populated cells.
func (t *Table) Cells() int {
	if t.packed {
		return len(t.cells)
	}
	return len(t.wide)
}

// Samples exports the populated cells as training samples (cell centroid →
// first output average), the "large lookup table … then used to train a
// regression tree" step of §5.1. Output column col selects which learned
// value becomes the target.
func (t *Table) Samples(col int) ([]Sample, error) {
	if col < 0 || col >= t.width {
		return nil, fmt.Errorf("approx: column %d outside [0, %d)", col, t.width)
	}
	// Samples are emitted in sorted key order: the regression-tree
	// fitter's tie-breaking is input-order-sensitive, so exporting in
	// map order could train different trees from identical tables.
	out := make([]Sample, 0, t.Cells())
	if t.packed {
		for _, k := range t.sortedPackedKeys() {
			out = append(out, Sample{
				X: t.quant.Centroid(t.unpackKey(k)),
				Y: t.cells[k].sum[col] / float64(t.cells[k].n),
			})
		}
		return out, nil
	}
	for _, k := range t.sortedWideKeys() {
		out = append(out, Sample{
			X: t.quant.Centroid(decodeKey(k)),
			Y: t.wide[k].sum[col] / float64(t.wide[k].n),
		})
	}
	return out, nil
}

// sortedPackedKeys returns the packed-cell keys in ascending order —
// the deterministic iteration order for serialization and export.
func (t *Table) sortedPackedKeys() []uint64 {
	keys := make([]uint64, 0, len(t.cells))
	for k := range t.cells {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// sortedWideKeys returns the wide-grid string keys in ascending order.
func (t *Table) sortedWideKeys() []string {
	keys := make([]string, 0, len(t.wide))
	for k := range t.wide {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func decodeKey(k string) []int {
	cell := make([]int, len(k)/4)
	for i := range cell {
		u := uint32(k[4*i]) | uint32(k[4*i+1])<<8 | uint32(k[4*i+2])<<16 | uint32(k[4*i+3])<<24
		cell[i] = int(int32(u))
	}
	return cell
}
