package series

import (
	"strings"
	"testing"
)

func TestSubSteps(t *testing.T) {
	cases := []struct {
		name    string
		binStep float64
		period  float64
		want    int
		wantErr bool
	}{
		{name: "exact multiple", binStep: 90, period: 30, want: 3},
		{name: "equal widths", binStep: 30, period: 30, want: 1},
		{name: "unit period", binStep: 7, period: 1, want: 7},
		{name: "fractional widths", binStep: 1.5, period: 0.5, want: 3},
		{name: "residue within tolerance", binStep: 90 + 5e-7, period: 30, want: 3},
		{name: "residue below tolerance", binStep: 90 - 5e-7, period: 30, want: 3},
		{name: "residue past tolerance", binStep: 90 + 2e-6, period: 30, wantErr: true},
		{name: "negative residue past tolerance", binStep: 90 - 2e-6, period: 30, wantErr: true},
		{name: "bin narrower than period", binStep: 15, period: 30, wantErr: true},
		{name: "non-integer ratio", binStep: 45, period: 30, wantErr: true},
		{name: "zero bin", binStep: 0, period: 30, wantErr: true},
		{name: "zero period", binStep: 90, period: 0, wantErr: true},
		{name: "negative period", binStep: 90, period: -30, wantErr: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := SubSteps(tc.binStep, tc.period)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("SubSteps(%v, %v) = %d, want error", tc.binStep, tc.period, got)
				}
				if !strings.Contains(err.Error(), "series:") {
					t.Errorf("error %q does not carry the package prefix", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("SubSteps(%v, %v): %v", tc.binStep, tc.period, err)
			}
			if got != tc.want {
				t.Errorf("SubSteps(%v, %v) = %d, want %d", tc.binStep, tc.period, got, tc.want)
			}
		})
	}
}
