package series

import (
	"fmt"
	"math"
)

// SubSteps returns how many control periods of width period tile one
// observation bin of width binStep — the bin-to-grid check every
// closed-loop runner performs before stepping a trace. The widths need not
// divide exactly in floating point: a residue up to 1e-6 seconds is
// tolerated (trace files round-trip through decimal text), anything larger
// is an error. The period must be positive and no wider than the bin.
func SubSteps(binStep, period float64) (int, error) {
	if period <= 0 {
		return 0, fmt.Errorf("series: control period %vs is not positive", period)
	}
	sub := int(binStep/period + 0.5)
	if sub < 1 || math.Abs(float64(sub)*period-binStep) > 1e-6 {
		return 0, fmt.Errorf("series: bin width %vs is not a multiple of control period %vs", binStep, period)
	}
	return sub, nil
}
