package series

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV writes the series as rows of "time,value" with a header line.
func (s *Series) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time_s", "value"}); err != nil {
		return fmt.Errorf("series: write header: %w", err)
	}
	for i, v := range s.Values {
		rec := []string{
			strconv.FormatFloat(s.TimeAt(i), 'g', -1, 64),
			strconv.FormatFloat(v, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("series: write row %d: %w", i, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("series: flush: %w", err)
	}
	return nil
}

// ReadCSV parses a series written by WriteCSV. The step is inferred from the
// first two rows; a single-row file gets step 1.
func ReadCSV(r io.Reader) (*Series, error) {
	cr := csv.NewReader(r)
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("series: read csv: %w", err)
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("series: empty csv")
	}
	rows := recs[1:] // skip header
	s := &Series{Step: 1}
	times := make([]float64, 0, len(rows))
	for i, rec := range rows {
		if len(rec) < 2 {
			return nil, fmt.Errorf("series: row %d has %d fields, want 2", i, len(rec))
		}
		t, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			return nil, fmt.Errorf("series: row %d time: %w", i, err)
		}
		v, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("series: row %d value: %w", i, err)
		}
		times = append(times, t)
		s.Values = append(s.Values, v)
	}
	if len(times) > 0 {
		s.Start = times[0]
	}
	if len(times) > 1 {
		s.Step = times[1] - times[0]
	}
	return s, nil
}
