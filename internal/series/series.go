// Package series provides uniformly sampled time-series containers and the
// small set of transformations the workload generators, forecasters, and
// reporting code need: rebinning, smoothing, scaling, noise injection,
// summary statistics, CSV persistence, and ASCII plotting for the figure
// reproductions.
//
// A Series is a value sampled at a fixed step starting at time Start.
// All times are simulation seconds.
//
// Invariant: ReadCSV(WriteCSV(s)) reproduces s value-for-value (times are
// serialized at full float64 precision), which is what makes recorded
// traces replayable as first-class workload scenarios
// ("tracefile:<path>", see internal/workload).
package series

import (
	"fmt"
	"math"
	"math/rand"
)

// Series is a uniformly sampled time series. The i-th sample covers the
// half-open interval [Start+i*Step, Start+(i+1)*Step).
//
// The zero value is an empty series and is ready to use.
type Series struct {
	// Start is the time of the first sample, in seconds.
	Start float64
	// Step is the sampling interval, in seconds. Must be > 0 for a
	// non-empty series.
	Step float64
	// Values holds one sample per interval.
	Values []float64
}

// New returns a zero-filled series with n samples at the given step.
func New(start, step float64, n int) *Series {
	return &Series{Start: start, Step: step, Values: make([]float64, n)}
}

// FromValues wraps the given samples in a Series. The slice is copied so the
// caller retains ownership of vals.
func FromValues(start, step float64, vals []float64) *Series {
	v := make([]float64, len(vals))
	copy(v, vals)
	return &Series{Start: start, Step: step, Values: v}
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Values) }

// End returns the time just past the last sample.
func (s *Series) End() float64 { return s.Start + float64(len(s.Values))*s.Step }

// TimeAt returns the start time of sample i.
func (s *Series) TimeAt(i int) float64 { return s.Start + float64(i)*s.Step }

// IndexOf returns the sample index covering time t, clamped to the valid
// range. It returns 0 for an empty series.
func (s *Series) IndexOf(t float64) int {
	if len(s.Values) == 0 {
		return 0
	}
	i := int(math.Floor((t - s.Start) / s.Step))
	if i < 0 {
		i = 0
	}
	if i >= len(s.Values) {
		i = len(s.Values) - 1
	}
	return i
}

// At returns the sample value covering time t (piecewise-constant
// interpolation), clamping t to the series extent.
func (s *Series) At(t float64) float64 {
	if len(s.Values) == 0 {
		return 0
	}
	return s.Values[s.IndexOf(t)]
}

// Clone returns a deep copy.
func (s *Series) Clone() *Series {
	return FromValues(s.Start, s.Step, s.Values)
}

// Scale multiplies every sample by k in place and returns the receiver.
func (s *Series) Scale(k float64) *Series {
	for i := range s.Values {
		s.Values[i] *= k
	}
	return s
}

// Shift adds k to every sample in place and returns the receiver.
func (s *Series) Shift(k float64) *Series {
	for i := range s.Values {
		s.Values[i] += k
	}
	return s
}

// ClampMin raises every sample below lo to lo, in place, and returns the
// receiver. Workload counts use this to stay non-negative after noise.
func (s *Series) ClampMin(lo float64) *Series {
	for i, v := range s.Values {
		if v < lo {
			s.Values[i] = lo
		}
	}
	return s
}

// AddGaussianNoise adds independent N(0, sigma²) noise to samples in
// [from, to) using rng, in place, and returns the receiver. Indices are
// clamped to the valid range; an inverted range is a no-op.
func (s *Series) AddGaussianNoise(rng *rand.Rand, sigma float64, from, to int) *Series {
	if from < 0 {
		from = 0
	}
	if to > len(s.Values) {
		to = len(s.Values)
	}
	for i := from; i < to; i++ {
		s.Values[i] += rng.NormFloat64() * sigma
	}
	return s
}

// Smooth returns a new series produced by a centred moving average with the
// given window (forced odd by rounding up). Edges use the available samples,
// so the result has the same length as the input.
func (s *Series) Smooth(window int) *Series {
	if window < 1 {
		window = 1
	}
	if window%2 == 0 {
		window++
	}
	half := window / 2
	out := New(s.Start, s.Step, len(s.Values))
	for i := range s.Values {
		lo, hi := i-half, i+half
		if lo < 0 {
			lo = 0
		}
		if hi >= len(s.Values) {
			hi = len(s.Values) - 1
		}
		sum := 0.0
		for j := lo; j <= hi; j++ {
			sum += s.Values[j]
		}
		out.Values[i] = sum / float64(hi-lo+1)
	}
	return out
}

// Rebin aggregates consecutive groups of factor samples into one sample of a
// new series whose step is factor times larger. Aggregation is by sum when
// sum is true (appropriate for counts) and by mean otherwise (appropriate
// for rates). A trailing partial group is aggregated over the samples it has.
func (s *Series) Rebin(factor int, sum bool) (*Series, error) {
	if factor < 1 {
		return nil, fmt.Errorf("series: rebin factor %d < 1", factor)
	}
	n := (len(s.Values) + factor - 1) / factor
	out := New(s.Start, s.Step*float64(factor), n)
	for i := 0; i < n; i++ {
		lo := i * factor
		hi := lo + factor
		if hi > len(s.Values) {
			hi = len(s.Values)
		}
		acc := 0.0
		for j := lo; j < hi; j++ {
			acc += s.Values[j]
		}
		if !sum {
			acc /= float64(hi - lo)
		}
		out.Values[i] = acc
	}
	return out, nil
}

// Slice returns a copy of samples [from, to), clamped to the valid range.
func (s *Series) Slice(from, to int) *Series {
	if from < 0 {
		from = 0
	}
	if to > len(s.Values) {
		to = len(s.Values)
	}
	if from > to {
		from = to
	}
	return FromValues(s.TimeAt(from), s.Step, s.Values[from:to])
}

// Sum returns the sum of all samples.
func (s *Series) Sum() float64 {
	sum := 0.0
	for _, v := range s.Values {
		sum += v
	}
	return sum
}

// Mean returns the arithmetic mean, or 0 for an empty series.
func (s *Series) Mean() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	return s.Sum() / float64(len(s.Values))
}

// Max returns the largest sample, or 0 for an empty series.
func (s *Series) Max() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	m := s.Values[0]
	for _, v := range s.Values[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the smallest sample, or 0 for an empty series.
func (s *Series) Min() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	m := s.Values[0]
	for _, v := range s.Values[1:] {
		if v < m {
			m = v
		}
	}
	return m
}
