package series

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestNewZeroFilled(t *testing.T) {
	s := New(10, 2, 5)
	if s.Len() != 5 {
		t.Fatalf("Len = %d, want 5", s.Len())
	}
	for i, v := range s.Values {
		if v != 0 {
			t.Errorf("Values[%d] = %v, want 0", i, v)
		}
	}
	if s.End() != 20 {
		t.Errorf("End = %v, want 20", s.End())
	}
}

func TestFromValuesCopies(t *testing.T) {
	src := []float64{1, 2, 3}
	s := FromValues(0, 1, src)
	src[0] = 99
	if s.Values[0] != 1 {
		t.Errorf("FromValues did not copy: got %v", s.Values[0])
	}
}

func TestTimeAtAndIndexOf(t *testing.T) {
	s := FromValues(100, 30, []float64{1, 2, 3, 4})
	if got := s.TimeAt(2); got != 160 {
		t.Errorf("TimeAt(2) = %v, want 160", got)
	}
	cases := []struct {
		t    float64
		want int
	}{
		{99, 0}, {100, 0}, {129.9, 0}, {130, 1}, {219, 3}, {500, 3},
	}
	for _, c := range cases {
		if got := s.IndexOf(c.t); got != c.want {
			t.Errorf("IndexOf(%v) = %d, want %d", c.t, got, c.want)
		}
	}
}

func TestAtPiecewiseConstant(t *testing.T) {
	s := FromValues(0, 10, []float64{5, 7, 9})
	if got := s.At(15); got != 7 {
		t.Errorf("At(15) = %v, want 7", got)
	}
	if got := s.At(-3); got != 5 {
		t.Errorf("At(-3) = %v, want clamp to first = 5", got)
	}
	if got := s.At(1e9); got != 9 {
		t.Errorf("At(big) = %v, want clamp to last = 9", got)
	}
	var empty Series
	if got := empty.At(1); got != 0 {
		t.Errorf("empty At = %v, want 0", got)
	}
}

func TestScaleShiftClamp(t *testing.T) {
	s := FromValues(0, 1, []float64{-1, 0, 2})
	s.Scale(3).Shift(1).ClampMin(0)
	want := []float64{0, 1, 7}
	for i, w := range want {
		if s.Values[i] != w {
			t.Errorf("Values[%d] = %v, want %v", i, s.Values[i], w)
		}
	}
}

func TestSmoothConstantIsIdentity(t *testing.T) {
	s := FromValues(0, 1, []float64{4, 4, 4, 4, 4})
	out := s.Smooth(3)
	for i, v := range out.Values {
		if !almostEqual(v, 4, 1e-12) {
			t.Errorf("Smooth const [%d] = %v, want 4", i, v)
		}
	}
}

func TestSmoothReducesVariance(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := New(0, 1, 500)
	for i := range s.Values {
		s.Values[i] = rng.NormFloat64()
	}
	variance := func(v []float64) float64 {
		mean, sum := 0.0, 0.0
		for _, x := range v {
			mean += x
		}
		mean /= float64(len(v))
		for _, x := range v {
			sum += (x - mean) * (x - mean)
		}
		return sum / float64(len(v))
	}
	if vs, vo := variance(s.Values), variance(s.Smooth(9).Values); vo >= vs {
		t.Errorf("Smooth did not reduce variance: %v >= %v", vo, vs)
	}
}

func TestRebinSum(t *testing.T) {
	s := FromValues(0, 1, []float64{1, 2, 3, 4, 5})
	out, err := s.Rebin(2, true)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 7, 5}
	if out.Step != 2 {
		t.Errorf("Step = %v, want 2", out.Step)
	}
	for i, w := range want {
		if out.Values[i] != w {
			t.Errorf("Rebin sum [%d] = %v, want %v", i, out.Values[i], w)
		}
	}
}

func TestRebinMean(t *testing.T) {
	s := FromValues(0, 1, []float64{2, 4, 6, 8})
	out, err := s.Rebin(2, false)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 7}
	for i, w := range want {
		if out.Values[i] != w {
			t.Errorf("Rebin mean [%d] = %v, want %v", i, out.Values[i], w)
		}
	}
}

func TestRebinInvalidFactor(t *testing.T) {
	s := FromValues(0, 1, []float64{1})
	if _, err := s.Rebin(0, true); err == nil {
		t.Error("Rebin(0) error = nil, want error")
	}
}

func TestRebinSumPreservesTotal(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(n uint16, factorSeed uint8) bool {
		raw := make([]float64, int(n%300)+1)
		for i := range raw {
			raw[i] = rng.NormFloat64() * 1e4
		}
		factor := int(factorSeed%7) + 1
		s := FromValues(0, 1, raw)
		out, err := s.Rebin(factor, true)
		if err != nil {
			return false
		}
		return almostEqual(out.Sum(), s.Sum(), 1e-6*(1+math.Abs(s.Sum())))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSliceClamps(t *testing.T) {
	s := FromValues(0, 1, []float64{0, 1, 2, 3})
	out := s.Slice(-5, 99)
	if out.Len() != 4 {
		t.Errorf("Slice full len = %d, want 4", out.Len())
	}
	out = s.Slice(1, 3)
	if out.Len() != 2 || out.Values[0] != 1 || out.Start != 1 {
		t.Errorf("Slice(1,3) = %+v, want values [1 2] start 1", out)
	}
	if got := s.Slice(3, 1).Len(); got != 0 {
		t.Errorf("inverted Slice len = %d, want 0", got)
	}
}

func TestSummaryStats(t *testing.T) {
	s := FromValues(0, 1, []float64{3, -1, 4, 2})
	if s.Sum() != 8 {
		t.Errorf("Sum = %v, want 8", s.Sum())
	}
	if s.Mean() != 2 {
		t.Errorf("Mean = %v, want 2", s.Mean())
	}
	if s.Max() != 4 {
		t.Errorf("Max = %v, want 4", s.Max())
	}
	if s.Min() != -1 {
		t.Errorf("Min = %v, want -1", s.Min())
	}
	var empty Series
	if empty.Mean() != 0 || empty.Max() != 0 || empty.Min() != 0 {
		t.Error("empty series stats should be 0")
	}
}

func TestAddGaussianNoiseRange(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := New(0, 1, 10)
	s.AddGaussianNoise(rng, 1.0, 3, 6)
	for i, v := range s.Values {
		inRange := i >= 3 && i < 6
		if !inRange && v != 0 {
			t.Errorf("noise leaked to index %d: %v", i, v)
		}
	}
	// Out-of-range indices are clamped, not a panic.
	s.AddGaussianNoise(rng, 1.0, -10, 100)
}

func TestCSVRoundTrip(t *testing.T) {
	s := FromValues(5, 2.5, []float64{1.5, -2, 0, 1e6})
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Start != s.Start || got.Step != s.Step || got.Len() != s.Len() {
		t.Fatalf("round trip meta = %+v, want %+v", got, s)
	}
	for i := range s.Values {
		if got.Values[i] != s.Values[i] {
			t.Errorf("Values[%d] = %v, want %v", i, got.Values[i], s.Values[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty input: want error")
	}
	if _, err := ReadCSV(strings.NewReader("time_s,value\nabc,1\n")); err == nil {
		t.Error("bad time: want error")
	}
	if _, err := ReadCSV(strings.NewReader("time_s,value\n1,xyz\n")); err == nil {
		t.Error("bad value: want error")
	}
}

func TestASCIIPlotShape(t *testing.T) {
	s := FromValues(0, 1, []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	out := s.ASCIIPlot("ramp", 10, 4)
	if !strings.Contains(out, "ramp") {
		t.Error("plot missing title")
	}
	if !strings.Contains(out, "*") {
		t.Error("plot missing data markers")
	}
	var empty Series
	if got := empty.ASCIIPlot("none", 10, 4); !strings.Contains(got, "empty") {
		t.Errorf("empty plot = %q, want note", got)
	}
}

func TestCloneIndependent(t *testing.T) {
	s := FromValues(0, 1, []float64{1, 2})
	c := s.Clone()
	c.Values[0] = 42
	if s.Values[0] != 1 {
		t.Error("Clone shares backing array")
	}
}
