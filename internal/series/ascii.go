package series

import (
	"fmt"
	"math"
	"strings"
)

// ASCIIPlot renders the series as a compact ASCII chart with the given
// width (columns of samples, series is downsampled by mean) and height
// (rows). It is used by the figure-regeneration tool to show the shape of a
// reproduced figure in a terminal. An empty series renders as a note line.
func (s *Series) ASCIIPlot(title string, width, height int) string {
	if width < 8 {
		width = 8
	}
	if height < 2 {
		height = 2
	}
	if len(s.Values) == 0 {
		return fmt.Sprintf("%s\n(empty series)\n", title)
	}
	// Downsample to width columns by averaging.
	cols := make([]float64, width)
	per := float64(len(s.Values)) / float64(width)
	if per < 1 {
		per = 1
		width = len(s.Values)
		cols = cols[:width]
	}
	for i := 0; i < width; i++ {
		lo := int(float64(i) * per)
		hi := int(float64(i+1) * per)
		if hi <= lo {
			hi = lo + 1
		}
		if hi > len(s.Values) {
			hi = len(s.Values)
		}
		sum := 0.0
		for j := lo; j < hi; j++ {
			sum += s.Values[j]
		}
		cols[i] = sum / float64(hi-lo)
	}
	lo, hi := cols[0], cols[0]
	for _, v := range cols {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if hi == lo {
		hi = lo + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for c, v := range cols {
		level := int((v - lo) / (hi - lo) * float64(height-1))
		row := height - 1 - level
		for r := height - 1; r >= row; r-- {
			ch := byte('.')
			if r == row {
				ch = '*'
			}
			grid[r][c] = ch
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  [min=%.4g max=%.4g]\n", title, lo, hi)
	for r, line := range grid {
		label := "        "
		if r == 0 {
			label = fmt.Sprintf("%7.3g ", hi)
		} else if r == height-1 {
			label = fmt.Sprintf("%7.3g ", lo)
		}
		b.WriteString(label)
		b.WriteString("|")
		b.Write(line)
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "        +%s\n", strings.Repeat("-", width))
	fmt.Fprintf(&b, "         t=%.4gs ... t=%.4gs (step %.4gs)\n", s.Start, s.End(), s.Step)
	return b.String()
}
