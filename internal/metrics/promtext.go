package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"strconv"
	"strings"
)

// This file is a strict line-format linter for the Prometheus text
// exposition format (v0.0.4), used three ways: the registry's own tests
// lint WriteText output, the hpmserve handler tests lint /metrics, and
// cmd/hpmlint pipes a live scrape through it in CI. It is deliberately
// stricter than a Prometheus scraper: every sample must belong to a
// family announced by a preceding `# TYPE` line, each family's lines
// must be contiguous, and histogram invariants (cumulative buckets,
// +Inf == count) are checked.

var (
	sampleLineRE = regexp.MustCompile(
		`^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{([^}]*)\})? ([^ ]+)$`)
	labelPairRE = regexp.MustCompile(
		`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$`)
)

type lintFamily struct {
	kind     string
	sawHelp  bool
	closed   bool // a later family started; more lines are an interleave error
	seen     map[string]bool
	hist     map[string]*lintHist // histograms: base label key -> bucket state
	nSamples int
}

type lintHist struct {
	prev   float64 // previous bucket's cumulative count
	prevLe float64 // previous le bound
	inf    float64 // +Inf bucket value, NaN until seen
	hasInf bool
	count  float64
	hasCnt bool
}

// LintPromText reads a Prometheus text exposition and returns an error
// describing the first violation: malformed lines, samples without a
// TYPE, duplicate HELP/TYPE or series, interleaved families,
// non-cumulative histogram buckets, or a histogram whose +Inf bucket
// disagrees with its _count.
func LintPromText(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	fams := map[string]*lintFamily{}
	var current string
	lineNo := 0
	enter := func(name string) *lintFamily {
		if name != current {
			if cur, ok := fams[current]; ok {
				cur.closed = true
			}
			current = name
		}
		f := fams[name]
		if f == nil {
			f = &lintFamily{seen: map[string]bool{}, hist: map[string]*lintHist{}}
			fams[name] = f
		}
		return f
	}
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		fail := func(format string, args ...any) error {
			return fmt.Errorf("line %d: %s", lineNo, fmt.Sprintf(format, args...))
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || fields[0] != "#" || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return fail("malformed comment %q (only # HELP and # TYPE are allowed)", line)
			}
			name := fields[2]
			f := enter(name)
			if f.closed {
				return fail("family %q reopened after another family started", name)
			}
			switch fields[1] {
			case "HELP":
				if f.sawHelp {
					return fail("duplicate # HELP for %q", name)
				}
				if len(fields) < 4 || fields[3] == "" {
					return fail("# HELP %s has no help text", name)
				}
				f.sawHelp = true
			case "TYPE":
				if f.kind != "" {
					return fail("duplicate # TYPE for %q", name)
				}
				if f.nSamples > 0 {
					return fail("# TYPE for %q after its samples", name)
				}
				if len(fields) != 4 {
					return fail("malformed # TYPE line %q", line)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
					f.kind = fields[3]
				default:
					return fail("unknown type %q for %q", fields[3], name)
				}
			}
			continue
		}
		m := sampleLineRE.FindStringSubmatch(line)
		if m == nil {
			return fail("malformed sample line %q", line)
		}
		name, labels, valStr := m[1], m[2], m[3]
		value, err := strconv.ParseFloat(strings.TrimPrefix(valStr, "+"), 64)
		if err != nil {
			return fail("unparseable value %q: %v", valStr, err)
		}
		var le string
		var hasLe bool
		var baseLabels []string
		if labels != "" {
			for _, pair := range splitLabelPairs(labels) {
				lm := labelPairRE.FindStringSubmatch(pair)
				if lm == nil {
					return fail("malformed label pair %q in %q", pair, line)
				}
				if lm[1] == "le" {
					if hasLe {
						return fail("duplicate le label in %q", line)
					}
					le, hasLe = lm[2], true
				} else {
					baseLabels = append(baseLabels, pair)
				}
			}
		}
		famName := name
		suffix := ""
		for _, s := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, s)
			if base != name {
				if bf, ok := fams[base]; ok && bf.kind == "histogram" {
					famName, suffix = base, s
				}
				break
			}
		}
		f := enter(famName)
		if f.kind == "" {
			return fail("sample %q has no preceding # TYPE", name)
		}
		if f.closed {
			return fail("family %q reopened after another family started", famName)
		}
		if f.kind == "histogram" && suffix == "" {
			return fail("bare sample %q for histogram family %q", name, famName)
		}
		if hasLe && suffix != "_bucket" {
			return fail("le label on non-bucket sample %q", name)
		}
		seriesKey := name + "{" + labels + "}"
		if f.seen[seriesKey] {
			return fail("duplicate series %s", seriesKey)
		}
		f.seen[seriesKey] = true
		f.nSamples++
		if f.kind == "histogram" {
			baseKey := strings.Join(baseLabels, ",")
			h := f.hist[baseKey]
			if h == nil {
				h = &lintHist{prevLe: math.Inf(-1)}
				f.hist[baseKey] = h
			}
			switch suffix {
			case "_bucket":
				if !hasLe {
					return fail("histogram bucket %q missing le label", line)
				}
				bound, err := parseLe(le)
				if err != nil {
					return fail("bad le %q: %v", le, err)
				}
				if bound <= h.prevLe {
					return fail("histogram %q buckets out of order (le %q)", famName, le)
				}
				if value < h.prev {
					return fail("histogram %q buckets not cumulative at le %q", famName, le)
				}
				h.prev, h.prevLe = value, bound
				if isInfStr(le) {
					h.inf, h.hasInf = value, true
				}
			case "_count":
				h.count, h.hasCnt = value, true
			}
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("read: %w", err)
	}
	for name, f := range fams {
		if f.kind == "histogram" {
			for key, h := range f.hist {
				if !h.hasInf {
					return fmt.Errorf("histogram %q series {%s} missing +Inf bucket", name, key)
				}
				if !h.hasCnt {
					return fmt.Errorf("histogram %q series {%s} missing _count", name, key)
				}
				if h.inf != h.count {
					return fmt.Errorf("histogram %q series {%s}: +Inf bucket %g != _count %g", name, key, h.inf, h.count)
				}
			}
		}
	}
	return nil
}

// splitLabelPairs splits `a="x",b="y"` on commas outside quotes.
func splitLabelPairs(s string) []string {
	var pairs []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if depth {
				i++
			}
		case '"':
			depth = !depth
		case ',':
			if !depth {
				pairs = append(pairs, s[start:i])
				start = i + 1
			}
		}
	}
	return append(pairs, s[start:])
}

func parseLe(le string) (float64, error) {
	if isInfStr(le) {
		return math.Inf(1), nil
	}
	return strconv.ParseFloat(le, 64)
}

func isInfStr(le string) bool { return le == "+Inf" || le == "Inf" }
