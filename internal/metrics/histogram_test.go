package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestNewHistogramValidation(t *testing.T) {
	cases := []struct {
		base, growth float64
		buckets      int
	}{
		{0, 1.5, 10}, {1, 1, 10}, {1, 0.5, 10}, {1, 1.5, 0},
	}
	for _, c := range cases {
		if _, err := NewHistogram(c.base, c.growth, c.buckets); err == nil {
			t.Errorf("NewHistogram(%v, %v, %d): want error", c.base, c.growth, c.buckets)
		}
	}
	if _, err := NewHistogram(0.001, 1.2, 64); err != nil {
		t.Error(err)
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	h := DefaultLatencyHistogram()
	rng := rand.New(rand.NewSource(3))
	var xs []float64
	for i := 0; i < 100000; i++ {
		// Lognormal-ish latencies between ~1 ms and ~20 s.
		x := math.Exp(rng.NormFloat64()*1.2 - 2)
		xs = append(xs, x)
		h.Observe(x)
	}
	sort.Float64s(xs)
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		exact := xs[int(q*float64(len(xs)))-1]
		got := h.Quantile(q)
		if rel := math.Abs(got-exact) / exact; rel > 0.16 {
			t.Errorf("q=%v: got %v, exact %v (rel err %.2f, want <= growth-1)", q, got, exact, rel)
		}
	}
	if h.Count() != 100000 {
		t.Errorf("Count = %d", h.Count())
	}
	// Exact mean and max.
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	if math.Abs(h.Mean()-sum/100000) > 1e-9 {
		t.Errorf("Mean = %v, want %v", h.Mean(), sum/100000)
	}
	if h.Max() != xs[len(xs)-1] {
		t.Errorf("Max = %v, want %v", h.Max(), xs[len(xs)-1])
	}
}

func TestHistogramEdges(t *testing.T) {
	h, err := NewHistogram(1, 2, 4) // buckets [1,2) [2,4) [4,8) [8,16)
	if err != nil {
		t.Fatal(err)
	}
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile != 0")
	}
	h.Observe(0.1)  // under base
	h.Observe(-5)   // clamped
	h.Observe(3)    // bucket 1
	h.Observe(1000) // clamps to last bucket
	if h.Count() != 4 {
		t.Errorf("Count = %d, want 4", h.Count())
	}
	// Quantile below the base maps to base/2.
	if got := h.Quantile(0.25); got != 0.5 {
		t.Errorf("under-base quantile = %v, want 0.5", got)
	}
	// Max is exact even when bucketed at the top.
	if h.Max() != 1000 {
		t.Errorf("Max = %v", h.Max())
	}
	if got := h.Quantile(1); got < 8 {
		t.Errorf("top quantile = %v, want within last bucket", got)
	}
	// Quantile args clamped.
	if h.Quantile(-1) != h.Quantile(0.0000001) {
		t.Error("negative q not clamped")
	}
}

func TestHistogramMerge(t *testing.T) {
	a := DefaultLatencyHistogram()
	b := DefaultLatencyHistogram()
	for i := 0; i < 1000; i++ {
		a.Observe(0.01)
		b.Observe(1.0)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 2000 {
		t.Errorf("merged Count = %d", a.Count())
	}
	med := a.Quantile(0.5)
	if med < 0.005 || med > 0.02 {
		t.Errorf("median = %v, want ≈0.01", med)
	}
	p99 := a.Quantile(0.99)
	if p99 < 0.8 || p99 > 1.3 {
		t.Errorf("p99 = %v, want ≈1.0", p99)
	}
	// Incompatible histograms refuse to merge.
	c, err := NewHistogram(1, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(c); err == nil {
		t.Error("incompatible merge: want error")
	}
}
