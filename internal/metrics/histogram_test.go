package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestNewHistogramValidation(t *testing.T) {
	cases := []struct {
		base, growth float64
		buckets      int
	}{
		{0, 1.5, 10}, {1, 1, 10}, {1, 0.5, 10}, {1, 1.5, 0},
	}
	for _, c := range cases {
		if _, err := NewHistogram(c.base, c.growth, c.buckets); err == nil {
			t.Errorf("NewHistogram(%v, %v, %d): want error", c.base, c.growth, c.buckets)
		}
	}
	if _, err := NewHistogram(0.001, 1.2, 64); err != nil {
		t.Error(err)
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	h := DefaultLatencyHistogram()
	rng := rand.New(rand.NewSource(3))
	var xs []float64
	for i := 0; i < 100000; i++ {
		// Lognormal-ish latencies between ~1 ms and ~20 s.
		x := math.Exp(rng.NormFloat64()*1.2 - 2)
		xs = append(xs, x)
		h.Observe(x)
	}
	sort.Float64s(xs)
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		exact := xs[int(q*float64(len(xs)))-1]
		got := h.Quantile(q)
		if rel := math.Abs(got-exact) / exact; rel > 0.16 {
			t.Errorf("q=%v: got %v, exact %v (rel err %.2f, want <= growth-1)", q, got, exact, rel)
		}
	}
	if h.Count() != 100000 {
		t.Errorf("Count = %d", h.Count())
	}
	// Exact mean and max.
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	if math.Abs(h.Mean()-sum/100000) > 1e-9 {
		t.Errorf("Mean = %v, want %v", h.Mean(), sum/100000)
	}
	if h.Max() != xs[len(xs)-1] {
		t.Errorf("Max = %v, want %v", h.Max(), xs[len(xs)-1])
	}
}

func TestHistogramEdges(t *testing.T) {
	h, err := NewHistogram(1, 2, 4) // buckets [1,2) [2,4) [4,8) [8,16)
	if err != nil {
		t.Fatal(err)
	}
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile != 0")
	}
	h.Observe(0.1)  // under base
	h.Observe(-5)   // clamped
	h.Observe(3)    // bucket 1
	h.Observe(1000) // clamps to last bucket
	if h.Count() != 4 {
		t.Errorf("Count = %d, want 4", h.Count())
	}
	// Quantile below the base maps to base/2.
	if got := h.Quantile(0.25); got != 0.5 {
		t.Errorf("under-base quantile = %v, want 0.5", got)
	}
	// Max is exact even when bucketed at the top.
	if h.Max() != 1000 {
		t.Errorf("Max = %v", h.Max())
	}
	if got := h.Quantile(1); got < 8 {
		t.Errorf("top quantile = %v, want within last bucket", got)
	}
	// Quantile args clamped.
	if h.Quantile(-1) != h.Quantile(0.0000001) {
		t.Error("negative q not clamped")
	}
}

func TestHistogramMerge(t *testing.T) {
	a := DefaultLatencyHistogram()
	b := DefaultLatencyHistogram()
	for i := 0; i < 1000; i++ {
		a.Observe(0.01)
		b.Observe(1.0)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 2000 {
		t.Errorf("merged Count = %d", a.Count())
	}
	med := a.Quantile(0.5)
	if med < 0.005 || med > 0.02 {
		t.Errorf("median = %v, want ≈0.01", med)
	}
	p99 := a.Quantile(0.99)
	if p99 < 0.8 || p99 > 1.3 {
		t.Errorf("p99 = %v, want ≈1.0", p99)
	}
	// Incompatible histograms refuse to merge.
	c, err := NewHistogram(1, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(c); err == nil {
		t.Error("incompatible merge: want error")
	}
}

// Satellite coverage: the degenerate shapes the general tests skip —
// fully empty, a single observation, and mass past the top bucket.

func TestHistogramEmpty(t *testing.T) {
	h, err := NewHistogram(1, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatalf("empty histogram reports Count=%d Mean=%v Max=%v, want zeros",
			h.Count(), h.Mean(), h.Max())
	}
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}
	// Merging two empties stays empty and error-free.
	o, err := NewHistogram(1, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Merge(o); err != nil {
		t.Fatal(err)
	}
	if h.Count() != 0 {
		t.Fatalf("empty merge Count = %d", h.Count())
	}
}

func TestHistogramSingleSample(t *testing.T) {
	h, err := NewHistogram(1, 2, 4) // buckets [1,2) [2,4) [4,8) [8,16)
	if err != nil {
		t.Fatal(err)
	}
	h.Observe(3)
	if h.Count() != 1 || h.Mean() != 3 || h.Max() != 3 {
		t.Fatalf("single sample: Count=%d Mean=%v Max=%v", h.Count(), h.Mean(), h.Max())
	}
	// Every quantile of a one-sample histogram is that sample's bucket
	// midpoint: 2·√2 for [2,4).
	want := 2 * math.Sqrt2
	for _, q := range []float64{0.001, 0.5, 1} {
		if got := h.Quantile(q); math.Abs(got-want) > 1e-12 {
			t.Errorf("single-sample Quantile(%v) = %v, want %v", q, got, want)
		}
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h, err := NewHistogram(1, 2, 4) // top bucket [8,16)
	if err != nil {
		t.Fatal(err)
	}
	// All mass far beyond the covered range: clamped into the top bucket,
	// with Max and Mean staying exact.
	for i := 0; i < 10; i++ {
		h.Observe(1e6)
	}
	if h.Count() != 10 || h.Max() != 1e6 || h.Mean() != 1e6 {
		t.Fatalf("overflow: Count=%d Max=%v Mean=%v", h.Count(), h.Max(), h.Mean())
	}
	// The quantile estimate is the top bucket's midpoint — bounded, not
	// the wild out-of-range value.
	want := 8 * math.Sqrt2
	if got := h.Quantile(0.5); math.Abs(got-want) > 1e-12 {
		t.Errorf("overflow Quantile(0.5) = %v, want top-bucket midpoint %v", got, want)
	}
	// Exactly-at-top-edge observations land in the top bucket too (the
	// index computation may round onto len(buckets)).
	h2, err := NewHistogram(1, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	h2.Observe(16)
	h2.Observe(15.999)
	if h2.Count() != 2 {
		t.Fatalf("edge Count = %d", h2.Count())
	}
	if got := h2.Quantile(1); math.Abs(got-8*math.Sqrt2) > 1e-12 {
		t.Errorf("edge Quantile(1) = %v, want %v", got, 8*math.Sqrt2)
	}
}
