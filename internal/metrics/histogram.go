package metrics

import (
	"fmt"
	"math"
)

// Histogram is a log-bucketed latency histogram: bucket i covers
// [Base·Growth^i, Base·Growth^(i+1)). It supports quantile estimation with
// bounded relative error (Growth−1) using constant memory, which lets the
// plant track per-request response percentiles over tens of millions of
// requests. The zero value is not usable; construct with NewHistogram.
type Histogram struct {
	base   float64
	growth float64
	// logGrowth caches math.Log(growth): Observe sits on the simulator's
	// per-request path, and the cached divisor is bit-identical to
	// recomputing the Log each call.
	logGrowth float64
	buckets   []int64
	under     int64 // observations below base
	count     int64
	sum       float64
	max       float64
}

// NewHistogram returns a histogram with the given lowest bucket bound
// (base > 0), per-bucket growth factor (> 1), and bucket count. With
// base 1 ms, growth 1.15 and 96 buckets the range spans 1 ms to ~8 h with
// ≤ 15% relative quantile error.
func NewHistogram(base, growth float64, buckets int) (*Histogram, error) {
	if base <= 0 {
		return nil, fmt.Errorf("metrics: histogram base %v <= 0", base)
	}
	if growth <= 1 {
		return nil, fmt.Errorf("metrics: histogram growth %v <= 1", growth)
	}
	if buckets < 1 {
		return nil, fmt.Errorf("metrics: histogram needs >= 1 bucket, got %d", buckets)
	}
	return &Histogram{base: base, growth: growth, logGrowth: math.Log(growth), buckets: make([]int64, buckets)}, nil
}

// DefaultLatencyHistogram covers 1 ms .. ~9 h at ≤ 15% relative error —
// suitable for the simulator's response times.
func DefaultLatencyHistogram() *Histogram {
	h, err := NewHistogram(0.001, 1.15, 120)
	if err != nil {
		// Parameters are compile-time constants; this cannot fail.
		panic(err)
	}
	return h
}

// Observe folds one sample in. Negative samples are clamped to zero
// (counted below base).
func (h *Histogram) Observe(x float64) {
	h.count++
	if x > 0 {
		h.sum += x
	}
	if x > h.max {
		h.max = x
	}
	if x < h.base {
		h.under++
		return
	}
	i := int(math.Log(x/h.base) / h.logGrowth)
	if i >= len(h.buckets) {
		i = len(h.buckets) - 1
	}
	h.buckets[i]++
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count }

// Mean returns the sample mean (exact, not bucketed).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Max returns the largest observation (exact).
func (h *Histogram) Max() float64 { return h.max }

// Quantile returns an estimate of the q-th quantile (0 < q ≤ 1) using
// the geometric midpoint of the containing bucket; it returns 0 with no
// observations.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		q = 1e-9
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(h.count)))
	if rank <= h.under {
		return h.base / 2
	}
	seen := h.under
	for i, c := range h.buckets {
		seen += c
		if seen >= rank {
			lo := h.base * math.Pow(h.growth, float64(i))
			return lo * math.Sqrt(h.growth) // geometric midpoint
		}
	}
	return h.max
}

// Merge folds another histogram with identical parameters into h.
func (h *Histogram) Merge(o *Histogram) error {
	if o.base != h.base || o.growth != h.growth || len(o.buckets) != len(h.buckets) {
		return fmt.Errorf("metrics: merging incompatible histograms")
	}
	for i, c := range o.buckets {
		h.buckets[i] += c
	}
	h.under += o.under
	h.count += o.count
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
	return nil
}
