package metrics

import (
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// This file is a minimal Prometheus text-exposition registry — counters,
// gauges and fixed-bucket histograms with labels, rendered in the v0.0.4
// text format — so hpmserve can expose labeled series without pulling in
// a client library. It deliberately supports only what the repo needs:
// registration-time validation, label vectors keyed by value tuples, and
// a single WriteText renderer that emits `# HELP` and `# TYPE` exactly
// once per family with escaped help text and label values.
//
// Concurrency: a Registry and its instruments are safe for concurrent
// use. WriteText takes the same locks, so a scrape sees a consistent
// point-in-time view of each family (not across families, which
// Prometheus does not require).

var (
	metricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRE  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

type familyKind int

const (
	counterKind familyKind = iota
	gaugeKind
	histogramKind
)

func (k familyKind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labeled member of a family. Counter/gauge use value;
// histograms use buckets/count/sum (buckets holds per-bucket counts for
// the family's bounds; observations above the last bound only appear in
// count and sum, i.e. the implicit +Inf bucket).
type series struct {
	labelValues []string
	value       float64
	buckets     []uint64
	count       uint64
	sum         float64
}

// family is one metric family: a name, a kind, a label schema, and the
// labeled series seen so far.
type family struct {
	name   string
	help   string
	kind   familyKind
	labels []string
	bounds []float64 // histogram upper bounds, strictly increasing

	mu     sync.Mutex
	series map[string]*series
}

// Registry holds metric families and renders them in the Prometheus
// text format. Construct with NewRegistry; register each family once at
// startup.
type Registry struct {
	mu       sync.Mutex
	families []*family
	names    map[string]bool // reserved sample names, incl. histogram suffixes
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: map[string]bool{}}
}

func (r *Registry) register(name, help string, kind familyKind, labels []string, bounds []float64) (*family, error) {
	if !metricNameRE.MatchString(name) {
		return nil, fmt.Errorf("metrics: invalid metric name %q", name)
	}
	if strings.TrimSpace(help) == "" {
		return nil, fmt.Errorf("metrics: metric %q needs non-empty help text", name)
	}
	seen := map[string]bool{}
	for _, l := range labels {
		if !labelNameRE.MatchString(l) || strings.HasPrefix(l, "__") {
			return nil, fmt.Errorf("metrics: invalid label name %q on %q", l, name)
		}
		if l == "le" && kind == histogramKind {
			return nil, fmt.Errorf("metrics: label %q on histogram %q is reserved", l, name)
		}
		if seen[l] {
			return nil, fmt.Errorf("metrics: duplicate label %q on %q", l, name)
		}
		seen[l] = true
	}
	reserved := []string{name}
	if kind == histogramKind {
		if len(bounds) == 0 {
			return nil, fmt.Errorf("metrics: histogram %q needs at least one bucket bound", name)
		}
		for i := 1; i < len(bounds); i++ {
			if !(bounds[i] > bounds[i-1]) {
				return nil, fmt.Errorf("metrics: histogram %q bounds not strictly increasing at %d", name, i)
			}
		}
		if math.IsInf(bounds[len(bounds)-1], 1) {
			return nil, fmt.Errorf("metrics: histogram %q: +Inf bound is implicit, do not list it", name)
		}
		reserved = append(reserved, name+"_bucket", name+"_sum", name+"_count")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, res := range reserved {
		if r.names[res] {
			return nil, fmt.Errorf("metrics: metric name %q already registered", res)
		}
	}
	for _, res := range reserved {
		r.names[res] = true
	}
	f := &family{
		name:   name,
		help:   help,
		kind:   kind,
		labels: append([]string(nil), labels...),
		bounds: append([]float64(nil), bounds...),
		series: map[string]*series{},
	}
	r.families = append(r.families, f)
	return f, nil
}

// Counter registers a monotonically increasing family. labels names the
// label schema; a family with no labels has exactly one series.
func (r *Registry) Counter(name, help string, labels ...string) (*CounterVec, error) {
	f, err := r.register(name, help, counterKind, labels, nil)
	if err != nil {
		return nil, err
	}
	return &CounterVec{vec{f}}, nil
}

// Gauge registers a family whose series can go up and down.
func (r *Registry) Gauge(name, help string, labels ...string) (*GaugeVec, error) {
	f, err := r.register(name, help, gaugeKind, labels, nil)
	if err != nil {
		return nil, err
	}
	return &GaugeVec{vec{f}}, nil
}

// Histogram registers a fixed-bucket histogram family with the given
// strictly increasing upper bounds (the +Inf bucket is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) (*HistogramVec, error) {
	f, err := r.register(name, help, histogramKind, labels, bounds)
	if err != nil {
		return nil, err
	}
	return &HistogramVec{vec{f}}, nil
}

// vec is the shared label-resolution core of the typed vectors.
type vec struct{ fam *family }

// resolve returns the series for the given label values, creating it on
// first use. It panics on label-arity mismatch — like a wrong printf
// verb, that is a programming error at an instrumentation site, not a
// runtime condition.
func (v vec) resolve(values []string) *series {
	f := v.fam
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %s: got %d label values for %d labels", f.name, len(values), len(f.labels)))
	}
	key := strings.Join(values, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	s := f.series[key]
	if s == nil {
		s = &series{labelValues: append([]string(nil), values...)}
		if f.kind == histogramKind {
			s.buckets = make([]uint64, len(f.bounds))
		}
		f.series[key] = s
	}
	return s
}

// Reset drops every series in the family. Scrape handlers that rebuild
// state-derived per-tenant series each scrape call this first, so
// deleted tenants don't linger.
func (v vec) Reset() {
	v.fam.mu.Lock()
	defer v.fam.mu.Unlock()
	v.fam.series = map[string]*series{}
}

// Delete drops the series with the given label values, if present.
func (v vec) Delete(values ...string) {
	v.fam.mu.Lock()
	defer v.fam.mu.Unlock()
	delete(v.fam.series, strings.Join(values, "\xff"))
}

// CounterVec is a counter family; With resolves one labeled counter.
type CounterVec struct{ vec }

// With returns the counter for the given label values (created at
// first use). Panics if the number of values doesn't match the schema.
func (c *CounterVec) With(values ...string) Counter {
	return Counter{c.fam, c.resolve(values)}
}

// Counter is one monotonically increasing series.
type Counter struct {
	fam *family
	s   *series
}

// Add increases the counter; negative deltas are ignored (counters are
// monotonic by contract).
func (c Counter) Add(delta float64) {
	if delta < 0 {
		return
	}
	c.fam.mu.Lock()
	c.s.value += delta
	c.fam.mu.Unlock()
}

// Inc adds 1.
func (c Counter) Inc() { c.Add(1) }

// SetTotal sets the counter to an externally maintained running total
// (e.g. an atomic counter owned by the fleet). Decreases are ignored,
// preserving monotonicity.
func (c Counter) SetTotal(total float64) {
	c.fam.mu.Lock()
	if total > c.s.value {
		c.s.value = total
	}
	c.fam.mu.Unlock()
}

// GaugeVec is a gauge family; With resolves one labeled gauge.
type GaugeVec struct{ vec }

// With returns the gauge for the given label values (created at first
// use). Panics if the number of values doesn't match the schema.
func (g *GaugeVec) With(values ...string) Gauge {
	return Gauge{g.fam, g.resolve(values)}
}

// Gauge is one series that can move in either direction.
type Gauge struct {
	fam *family
	s   *series
}

// Set stores the value.
func (g Gauge) Set(v float64) {
	g.fam.mu.Lock()
	g.s.value = v
	g.fam.mu.Unlock()
}

// Add shifts the value by delta (may be negative).
func (g Gauge) Add(delta float64) {
	g.fam.mu.Lock()
	g.s.value += delta
	g.fam.mu.Unlock()
}

// HistogramVec is a fixed-bucket histogram family; With resolves one
// labeled histogram.
type HistogramVec struct{ vec }

// With returns the histogram for the given label values (created at
// first use). Panics if the number of values doesn't match the schema.
func (h *HistogramVec) With(values ...string) FixedHistogram {
	return FixedHistogram{h.fam, h.resolve(values)}
}

// FixedHistogram is one labeled fixed-bucket histogram series.
type FixedHistogram struct {
	fam *family
	s   *series
}

// Observe records x: the first bucket whose upper bound is >= x gains a
// count; values above the last bound land only in the implicit +Inf
// bucket. NaN observations are dropped.
func (h FixedHistogram) Observe(x float64) {
	if math.IsNaN(x) {
		return
	}
	h.fam.mu.Lock()
	for i, b := range h.fam.bounds {
		if x <= b {
			h.s.buckets[i]++
			break
		}
	}
	h.s.count++
	h.s.sum += x
	h.fam.mu.Unlock()
}

// escapeHelp escapes a HELP string per the text format: backslash and
// newline only.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabelValue escapes a label value per the text format:
// backslash, double quote and newline.
func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelPairs renders {k1="v1",k2="v2"} for the series, with an optional
// extra pair appended (used for histogram le=). Empty schema and no
// extra renders "".
func labelPairs(names []string, s *series, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, n, escapeLabelValue(s.labelValues[i]))
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, extraName, extraValue)
	}
	b.WriteByte('}')
	return b.String()
}

// WriteText renders every family in registration order: `# HELP` and
// `# TYPE` exactly once each, then the family's series sorted by label
// values. Families with no series yet still emit their headers, so a
// scraper sees the full catalog from the first scrape.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	var b strings.Builder
	for _, f := range fams {
		f.mu.Lock()
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			switch f.kind {
			case counterKind, gaugeKind:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, labelPairs(f.labels, s, "", ""), formatValue(s.value))
			case histogramKind:
				cum := uint64(0)
				for i, bound := range f.bounds {
					cum += s.buckets[i]
					fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, labelPairs(f.labels, s, "le", formatValue(bound)), cum)
				}
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, labelPairs(f.labels, s, "le", "+Inf"), s.count)
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, labelPairs(f.labels, s, "", ""), formatValue(s.sum))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name, labelPairs(f.labels, s, "", ""), s.count)
			}
		}
		f.mu.Unlock()
	}
	_, err := io.WriteString(w, b.String())
	return err
}
