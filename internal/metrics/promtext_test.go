package metrics

import (
	"strings"
	"testing"
)

func lint(s string) error { return LintPromText(strings.NewReader(s)) }

func TestLintPromTextAccepts(t *testing.T) {
	good := []string{
		"",
		"# HELP a_total things\n# TYPE a_total counter\na_total 5\n",
		"# TYPE a_total counter\na_total{x=\"1\",y=\"two\"} 5\na_total{x=\"2\"} 1e-05\n",
		"# TYPE g gauge\ng -2.5\n",
		"# TYPE h histogram\n" +
			"h_bucket{le=\"0.1\"} 1\nh_bucket{le=\"+Inf\"} 3\nh_sum 4.2\nh_count 3\n",
		"# TYPE h histogram\n" +
			"h_bucket{t=\"a\",le=\"1\"} 1\nh_bucket{t=\"a\",le=\"+Inf\"} 2\nh_sum{t=\"a\"} 2\nh_count{t=\"a\"} 2\n" +
			"h_bucket{t=\"b\",le=\"1\"} 0\nh_bucket{t=\"b\",le=\"+Inf\"} 0\nh_sum{t=\"b\"} 0\nh_count{t=\"b\"} 0\n",
		"# TYPE esc gauge\nesc{v=\"a\\\\b\\\"c\\nd\"} 1\n",
	}
	for i, s := range good {
		if err := lint(s); err != nil {
			t.Errorf("good[%d] rejected: %v\n%s", i, err, s)
		}
	}
}

func TestLintPromTextRejects(t *testing.T) {
	bad := map[string]string{
		"sample without TYPE":    "a_total 5\n",
		"duplicate TYPE":         "# TYPE a counter\n# TYPE a counter\na 1\n",
		"duplicate HELP":         "# HELP a x\n# HELP a y\n# TYPE a counter\na 1\n",
		"TYPE after samples":     "# TYPE a counter\na 1\n# TYPE b counter\n# TYPE a counter\n",
		"unknown type":           "# TYPE a widget\na 1\n",
		"empty help":             "# HELP a\n# TYPE a counter\na 1\n",
		"malformed comment":      "# NOTE a counter\n",
		"malformed sample":       "# TYPE a counter\na{ 1\n",
		"bad value":              "# TYPE a counter\na five\n",
		"bad label name":         "# TYPE a counter\na{0x=\"1\"} 5\n",
		"unquoted label value":   "# TYPE a counter\na{x=1} 5\n",
		"duplicate series":       "# TYPE a counter\na{x=\"1\"} 5\na{x=\"1\"} 6\n",
		"interleaved families":   "# TYPE a counter\na 1\n# TYPE b counter\nb 1\na 2\n",
		"reopened header":        "# TYPE a counter\na 1\n# TYPE b counter\n# HELP a again\n",
		"bare histogram sample":  "# TYPE h histogram\nh 1\n",
		"bucket without le":      "# TYPE h histogram\nh_bucket 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 0\nh_count 1\n",
		"le on counter":          "# TYPE a counter\na{le=\"1\"} 5\n",
		"buckets out of order":   "# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 0\nh_count 1\n",
		"non-cumulative buckets": "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 0\nh_count 5\n",
		"missing +Inf bucket":    "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 0\nh_count 1\n",
		"missing count":          "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_sum 0\n",
		"+Inf bucket != count":   "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 0\nh_count 3\n",
		"duplicate le":           "# TYPE h histogram\nh_bucket{le=\"1\",le=\"2\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 0\nh_count 1\n",
		"timestamped sample":     "# TYPE a counter\na 1 1700000000\n",
	}
	for name, s := range bad {
		if err := lint(s); err == nil {
			t.Errorf("%s: accepted\n%s", name, s)
		}
	}
}
