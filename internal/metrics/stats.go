// Package metrics provides the statistics and reporting substrate used by
// the simulator and the experiment harness: streaming moments (Welford),
// percentiles, error measures for forecast evaluation, time-weighted
// averages for power accounting, and plain-text table rendering.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Welford accumulates count, mean, and variance of a stream in a single
// pass using Welford's algorithm. The zero value is ready to use.
type Welford struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds x into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Count returns the number of samples added.
func (w *Welford) Count() int64 { return w.n }

// Mean returns the sample mean, or 0 with no samples.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance, or 0 with < 2 samples.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the unbiased sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Min returns the smallest sample, or 0 with no samples.
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest sample, or 0 with no samples.
func (w *Welford) Max() float64 { return w.max }

// Merge folds another accumulator into w (parallel Welford combination).
func (w *Welford) Merge(o *Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = *o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	w.mean += d * float64(o.n) / float64(n)
	if o.min < w.min {
		w.min = o.min
	}
	if o.max > w.max {
		w.max = o.max
	}
	w.n = n
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation between closest ranks. It returns 0 for an empty slice.
// The input is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// RMSE returns the root-mean-square error between two equal-length slices.
func RMSE(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("metrics: RMSE length mismatch %d vs %d", len(a), len(b))
	}
	if len(a) == 0 {
		return 0, nil
	}
	sum := 0.0
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(a))), nil
}

// MAE returns the mean absolute error between two equal-length slices.
func MAE(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("metrics: MAE length mismatch %d vs %d", len(a), len(b))
	}
	if len(a) == 0 {
		return 0, nil
	}
	sum := 0.0
	for i := range a {
		sum += math.Abs(a[i] - b[i])
	}
	return sum / float64(len(a)), nil
}

// TimeWeighted accumulates the time integral of a piecewise-constant signal,
// e.g. instantaneous power into energy. The zero value is ready to use;
// the first Observe call only records the starting point.
type TimeWeighted struct {
	lastT   float64
	lastV   float64
	total   float64
	started bool
}

// Observe records that the signal took value v from the previous
// observation time up to time t. Calls must have non-decreasing t.
func (tw *TimeWeighted) Observe(t, v float64) {
	if tw.started && t > tw.lastT {
		tw.total += tw.lastV * (t - tw.lastT)
	}
	tw.lastT, tw.lastV, tw.started = t, v, true
}

// FinishAt closes the integral at time t using the last observed value and
// returns the total. Further Observe calls continue from t.
func (tw *TimeWeighted) FinishAt(t float64) float64 {
	tw.Observe(t, tw.lastV)
	return tw.total
}

// Total returns the integral accumulated so far.
func (tw *TimeWeighted) Total() float64 { return tw.total }

// Mean returns the time-weighted mean over [first observation, last], or 0
// if less than two observations were made.
func (tw *TimeWeighted) Mean(start float64) float64 {
	if !tw.started || tw.lastT <= start {
		return 0
	}
	return tw.total / (tw.lastT - start)
}
