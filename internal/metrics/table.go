package metrics

import (
	"fmt"
	"strings"
)

// Table renders aligned plain-text tables for experiment reports. Columns
// are sized to the widest cell. The zero value is not usable; construct with
// NewTable.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row. Cells are formatted with %v; rows shorter than the
// header are padded with empty cells, longer rows are truncated.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(t.header))
	for i := range row {
		if i < len(cells) {
			switch v := cells[i].(type) {
			case float64:
				row[i] = fmt.Sprintf("%.4g", v)
			case float32:
				row[i] = fmt.Sprintf("%.4g", v)
			default:
				row[i] = fmt.Sprintf("%v", v)
			}
		}
	}
	t.rows = append(t.rows, row)
}

// Len returns the number of data rows.
func (t *Table) Len() int { return len(t.rows) }

// String renders the table with a separator line under the header.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	total := 0
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(len(widths)-1)))
	b.WriteString("\n")
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
