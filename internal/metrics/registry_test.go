package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func mustCounter(t *testing.T, r *Registry, name, help string, labels ...string) *CounterVec {
	t.Helper()
	c, err := r.Counter(name, help, labels...)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func mustGauge(t *testing.T, r *Registry, name, help string, labels ...string) *GaugeVec {
	t.Helper()
	g, err := r.Gauge(name, help, labels...)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func mustHistogram(t *testing.T, r *Registry, name, help string, bounds []float64, labels ...string) *HistogramVec {
	t.Helper()
	h, err := r.Histogram(name, help, bounds, labels...)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestRegistryValidation(t *testing.T) {
	r := NewRegistry()
	cases := []func() error{
		func() error { _, err := r.Counter("0bad", "help"); return err },
		func() error { _, err := r.Counter("ok_name", ""); return err },
		func() error { _, err := r.Counter("ok_name2", "h", "0bad"); return err },
		func() error { _, err := r.Counter("ok_name3", "h", "__reserved"); return err },
		func() error { _, err := r.Counter("ok_name4", "h", "a", "a"); return err },
		func() error { _, err := r.Histogram("h1", "h", nil); return err },
		func() error { _, err := r.Histogram("h2", "h", []float64{1, 1}); return err },
		func() error { _, err := r.Histogram("h3", "h", []float64{1, math.Inf(1)}); return err },
		func() error { _, err := r.Histogram("h4", "h", []float64{1}, "le"); return err },
	}
	for i, fn := range cases {
		if fn() == nil {
			t.Errorf("case %d: invalid registration accepted", i)
		}
	}
	if _, err := r.Counter("dup", "h"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Gauge("dup", "h"); err == nil {
		t.Error("duplicate family name accepted")
	}
	// Histogram suffixes are reserved names too.
	if _, err := r.Histogram("lat", "h", []float64{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Counter("lat_bucket", "h"); err == nil {
		t.Error("histogram suffix collision accepted")
	}
}

func TestRegistryWriteTextFormat(t *testing.T) {
	r := NewRegistry()
	up := mustGauge(t, r, "up_seconds", `uptime with \ backslash and
newline`)
	up.With().Set(12.5)
	reqs := mustCounter(t, r, "reqs_total", "requests", "tenant", "code")
	reqs.With("a", "200").Add(3)
	reqs.With("a", "500").Inc()
	reqs.With(`we"ird\`+"\n", "200").Inc()
	lat := mustHistogram(t, r, "lat_seconds", "latency", []float64{0.1, 1}, "tenant")
	lat.With("a").Observe(0.05)
	lat.With("a").Observe(0.5)
	lat.With("a").Observe(99) // above last bound: only +Inf
	empty := mustCounter(t, r, "quiet_total", "no series yet")
	_ = empty

	out := render(t, r)
	for _, want := range []string{
		`# HELP up_seconds uptime with \\ backslash and\nnewline`,
		"# TYPE up_seconds gauge",
		"up_seconds 12.5",
		"# TYPE reqs_total counter",
		`reqs_total{tenant="a",code="200"} 3`,
		`reqs_total{tenant="a",code="500"} 1`,
		`reqs_total{tenant="we\"ird\\\n",code="200"} 1`,
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{tenant="a",le="0.1"} 1`,
		`lat_seconds_bucket{tenant="a",le="1"} 2`,
		`lat_seconds_bucket{tenant="a",le="+Inf"} 3`,
		`lat_seconds_sum{tenant="a"} 99.55`,
		`lat_seconds_count{tenant="a"} 3`,
		"# HELP quiet_total no series yet",
		"# TYPE quiet_total counter",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("output missing line %q\n--- got ---\n%s", want, out)
		}
	}
	if n := strings.Count(out, "# TYPE reqs_total"); n != 1 {
		t.Errorf("# TYPE reqs_total emitted %d times, want exactly 1", n)
	}
	// The rendered text must satisfy our own strict linter.
	if err := LintPromText(strings.NewReader(out)); err != nil {
		t.Errorf("WriteText output fails lint: %v\n%s", err, out)
	}
}

func TestRegistryCounterSemantics(t *testing.T) {
	r := NewRegistry()
	c := mustCounter(t, r, "c_total", "h").With()
	c.Add(5)
	c.Add(-3) // ignored: counters are monotonic
	c.SetTotal(10)
	c.SetTotal(4) // ignored: decrease
	out := render(t, r)
	if !strings.Contains(out, "c_total 10\n") {
		t.Fatalf("counter semantics broken:\n%s", out)
	}
	g := mustGauge(t, r, "g", "h").With()
	g.Set(5)
	g.Add(-7)
	if out := render(t, r); !strings.Contains(out, "g -2\n") {
		t.Fatalf("gauge semantics broken:\n%s", out)
	}
}

func TestRegistryResetAndDelete(t *testing.T) {
	r := NewRegistry()
	g := mustGauge(t, r, "bins", "h", "tenant")
	g.With("a").Set(1)
	g.With("b").Set(2)
	g.Delete("a")
	out := render(t, r)
	if strings.Contains(out, `tenant="a"`) || !strings.Contains(out, `tenant="b"`) {
		t.Fatalf("Delete broken:\n%s", out)
	}
	g.Reset()
	if out := render(t, r); strings.Contains(out, `tenant="b"`) {
		t.Fatalf("Reset broken:\n%s", out)
	}
}

func TestRegistryWithArityPanics(t *testing.T) {
	r := NewRegistry()
	c := mustCounter(t, r, "c_total", "h", "tenant")
	defer func() {
		if recover() == nil {
			t.Fatal("label-arity mismatch did not panic")
		}
	}()
	c.With("a", "b")
}

func TestRegistryHistogramObserve(t *testing.T) {
	r := NewRegistry()
	h := mustHistogram(t, r, "h", "h", []float64{1, 2, 4}).With()
	for _, x := range []float64{0.5, 1.5, 3, 100, math.NaN()} {
		h.Observe(x)
	}
	out := render(t, r)
	for _, want := range []string{
		`h_bucket{le="1"} 1`,
		`h_bucket{le="2"} 2`,
		`h_bucket{le="4"} 3`,
		`h_bucket{le="+Inf"} 4`,
		"h_count 4",
		"h_sum 105",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

// A scrape racing instrument updates must neither corrupt state nor
// trip the race detector.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	c := mustCounter(t, r, "c_total", "h", "w")
	hv := mustHistogram(t, r, "h", "h", []float64{1, 10}, "w")
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lbl := strings.Repeat("w", w+1)
			for i := 0; i < 200; i++ {
				c.With(lbl).Inc()
				hv.With(lbl).Observe(float64(i))
			}
		}(w)
	}
	for i := 0; i < 20; i++ {
		_ = render(t, r)
	}
	wg.Wait()
	out := render(t, r)
	if err := LintPromText(strings.NewReader(out)); err != nil {
		t.Fatalf("concurrent output fails lint: %v", err)
	}
	if !strings.Contains(out, `c_total{w="w"} 200`) {
		t.Fatalf("lost counter increments:\n%s", out)
	}
}
