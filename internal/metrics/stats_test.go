package metrics

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestWelfordBasics(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.Count() != 8 {
		t.Errorf("Count = %d, want 8", w.Count())
	}
	if got := w.Mean(); math.Abs(got-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", got)
	}
	// Population variance of this classic set is 4; unbiased = 4*8/7.
	if got, want := w.Variance(), 32.0/7.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("Variance = %v, want %v", got, want)
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", w.Min(), w.Max())
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.StdDev() != 0 {
		t.Error("empty Welford stats should be 0")
	}
	w.Add(3)
	if w.Variance() != 0 {
		t.Errorf("single-sample Variance = %v, want 0", w.Variance())
	}
	if w.Mean() != 3 {
		t.Errorf("Mean = %v, want 3", w.Mean())
	}
}

func TestWelfordMergeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(na, nb uint8) bool {
		a := make([]float64, na%64)
		b := make([]float64, nb%64)
		for i := range a {
			a[i] = rng.NormFloat64() * 100
		}
		for i := range b {
			b[i] = rng.NormFloat64() * 100
		}
		var wa, wb, all Welford
		for _, x := range a {
			wa.Add(x)
			all.Add(x)
		}
		for _, x := range b {
			wb.Add(x)
			all.Add(x)
		}
		wa.Merge(&wb)
		if wa.Count() != all.Count() {
			return false
		}
		if all.Count() == 0 {
			return true
		}
		scale := 1 + math.Abs(all.Mean())
		return math.Abs(wa.Mean()-all.Mean()) < 1e-9*scale &&
			math.Abs(wa.Variance()-all.Variance()) < 1e-6*(1+all.Variance())
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct {
		p, want float64
	}{
		{0, 15}, {100, 50}, {50, 35}, {25, 20}, {-5, 15}, {200, 50},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(nil) = %v, want 0", got)
	}
	// Input must not be reordered.
	in := []float64{3, 1, 2}
	Percentile(in, 50)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestPercentileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	if got := Percentile(xs, 50); got != 5 {
		t.Errorf("Percentile 50 of {0,10} = %v, want 5", got)
	}
}

func TestRMSEAndMAE(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{1, 4, 3}
	rmse, err := RMSE(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if want := math.Sqrt(4.0 / 3.0); math.Abs(rmse-want) > 1e-12 {
		t.Errorf("RMSE = %v, want %v", rmse, want)
	}
	mae, err := MAE(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2.0 / 3.0; math.Abs(mae-want) > 1e-12 {
		t.Errorf("MAE = %v, want %v", mae, want)
	}
	if _, err := RMSE(a, b[:2]); err == nil {
		t.Error("RMSE length mismatch: want error")
	}
	if _, err := MAE(a, b[:2]); err == nil {
		t.Error("MAE length mismatch: want error")
	}
	zeroR, _ := RMSE(nil, nil)
	zeroM, _ := MAE(nil, nil)
	if zeroR != 0 || zeroM != 0 {
		t.Error("empty RMSE/MAE should be 0")
	}
}

func TestTimeWeightedIntegral(t *testing.T) {
	var tw TimeWeighted
	tw.Observe(0, 2)                       // 2 from t=0
	tw.Observe(5, 4)                       // contributes 2*5=10
	tw.Observe(10, 0)                      // contributes 4*5=20
	if got := tw.FinishAt(20); got != 30 { // 0 over [10,20]
		t.Errorf("integral = %v, want 30", got)
	}
	if got := tw.Mean(0); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("Mean = %v, want 1.5", got)
	}
}

func TestTimeWeightedEdge(t *testing.T) {
	var tw TimeWeighted
	if tw.Mean(0) != 0 {
		t.Error("no observations: Mean should be 0")
	}
	tw.Observe(5, 10)
	if tw.Total() != 0 {
		t.Error("single observation should contribute nothing yet")
	}
	tw.Observe(5, 20) // same timestamp: no accumulation
	if tw.Total() != 0 {
		t.Errorf("same-time observation accumulated %v, want 0", tw.Total())
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("name", "value", "unit")
	tab.AddRow("alpha", 3.14159, "s")
	tab.AddRow("beta-long-name", 42, "")
	out := tab.String()
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "beta-long-name") {
		t.Errorf("table missing rows:\n%s", out)
	}
	if !strings.Contains(out, "3.142") {
		t.Errorf("float not compactly formatted:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Errorf("table has %d lines, want 4:\n%s", len(lines), out)
	}
	if tab.Len() != 2 {
		t.Errorf("Len = %d, want 2", tab.Len())
	}
}

func TestTableRowPadding(t *testing.T) {
	tab := NewTable("a", "b")
	tab.AddRow("only")           // short row padded
	tab.AddRow("x", "y", "drop") // long row truncated
	out := tab.String()
	if strings.Contains(out, "drop") {
		t.Errorf("extra cell not truncated:\n%s", out)
	}
}
