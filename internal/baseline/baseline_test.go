package baseline

import (
	"math"
	"math/rand"
	"testing"

	"hierctl/internal/cluster"
	"hierctl/internal/power"
	"hierctl/internal/series"
	"hierctl/internal/workload"
)

func testComputer(name string) cluster.ComputerSpec {
	return cluster.ComputerSpec{
		Name:             name,
		FrequenciesHz:    []float64{0.5e9, 1e9, 1.5e9, 2e9},
		SpeedFactor:      1,
		Power:            power.DefaultModel(),
		BootDelaySeconds: 120,
	}
}

func testSpec(n int) cluster.Spec {
	ms := cluster.ModuleSpec{Name: "M1"}
	for j := 0; j < n; j++ {
		ms.Computers = append(ms.Computers, testComputer("c"+string(rune('0'+j))))
	}
	return cluster.Spec{Modules: []cluster.ModuleSpec{ms}}
}

func testStore(t *testing.T) *workload.Store {
	t.Helper()
	cfg := workload.DefaultStoreConfig()
	cfg.Objects = 300
	cfg.PopularCount = 30
	s, err := workload.NewStore(rand.New(rand.NewSource(2)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func steady(bins int, perBin float64) *series.Series {
	s := series.New(0, 30, bins)
	for i := range s.Values {
		s.Values[i] = perBin
	}
	return s
}

func TestPolicyDecisions(t *testing.T) {
	always := AlwaysOn{}
	a := always.Decide(Observation{Operational: 2, Total: 8})
	if a.Operational != 8 || a.PhiTarget != 0 {
		t.Errorf("AlwaysOn = %+v, want all on at full speed", a)
	}
	th, err := NewThreshold(0.3, 0.75, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := th.Decide(Observation{Operational: 2, Total: 4, Utilization: 0.9}); got.Operational != 3 {
		t.Errorf("high util: on = %d, want 3", got.Operational)
	}
	if got := th.Decide(Observation{Operational: 2, Total: 4, Utilization: 0.1}); got.Operational != 1 {
		t.Errorf("low util: on = %d, want 1", got.Operational)
	}
	if got := th.Decide(Observation{Operational: 1, Total: 4, Utilization: 0.1}); got.Operational != 1 {
		t.Errorf("min-on: on = %d, want 1", got.Operational)
	}
	if got := th.Decide(Observation{Operational: 4, Total: 4, Utilization: 0.99}); got.Operational != 4 {
		t.Errorf("saturated: on = %d, want 4", got.Operational)
	}
	dv, err := NewThresholdDVFS(0.3, 0.75, 1, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if got := dv.Decide(Observation{Operational: 2, Total: 4, Utilization: 0.5}); got.PhiTarget != 0.8 {
		t.Errorf("DVFS PhiTarget = %v, want 0.8", got.PhiTarget)
	}
}

func TestPolicyValidation(t *testing.T) {
	if _, err := NewThreshold(0.8, 0.3, 1); err == nil {
		t.Error("inverted watermarks: want error")
	}
	if _, err := NewThreshold(0.3, 1.5, 1); err == nil {
		t.Error("high >= 1: want error")
	}
	if _, err := NewThreshold(0.3, 0.8, 0); err == nil {
		t.Error("min-on 0: want error")
	}
	if _, err := NewThresholdDVFS(0.3, 0.8, 1, 1.5); err == nil {
		t.Error("bad util target: want error")
	}
}

func TestPhiFor(t *testing.T) {
	ladder := []float64{0.25, 0.5, 0.75, 1}
	// λ=20, c=0.02, speed=1 → util at φ: 0.4/φ. Target 0.9 → φ=0.5.
	if got := phiFor(ladder, 20, 0.02, 1, 0.9); got != 1 {
		t.Errorf("phiFor = %d, want index 1 (φ=0.5)", got)
	}
	// Unattainable: returns max.
	if got := phiFor(ladder, 1000, 0.02, 1, 0.9); got != 3 {
		t.Errorf("overload phiFor = %d, want 3", got)
	}
	// Target ≤ 0: full speed.
	if got := phiFor(ladder, 1, 0.02, 1, 0); got != 3 {
		t.Errorf("no-target phiFor = %d, want 3", got)
	}
}

func TestRunnerValidation(t *testing.T) {
	spec := testSpec(2)
	store := testStore(t)
	tr := steady(8, 100)
	cfg := DefaultRunnerConfig()
	if _, err := Run(spec, nil, tr, store, cfg); err == nil {
		t.Error("nil policy: want error")
	}
	if _, err := Run(spec, AlwaysOn{}, nil, store, cfg); err == nil {
		t.Error("nil trace: want error")
	}
	bad := cfg
	bad.PeriodSeconds = 0
	if _, err := Run(spec, AlwaysOn{}, tr, store, bad); err == nil {
		t.Error("bad config: want error")
	}
	misaligned := series.New(0, 45, 8)
	for i := range misaligned.Values {
		misaligned.Values[i] = 10
	}
	if _, err := Run(spec, AlwaysOn{}, misaligned, store, cfg); err == nil {
		t.Error("misaligned trace: want error")
	}
}

func TestAlwaysOnServesEverything(t *testing.T) {
	spec := testSpec(4)
	tr := steady(40, 900) // 30 req/s
	res, err := Run(spec, AlwaysOn{}, tr, testStore(t), DefaultRunnerConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "always-on" {
		t.Errorf("Policy = %q", res.Policy)
	}
	total := int64(tr.Sum())
	if res.Completed < total*99/100 {
		t.Errorf("completed %d of %d", res.Completed, total)
	}
	if res.MeanResponse > 4 {
		t.Errorf("all-on mean response %v above 4 s at trivial load", res.MeanResponse)
	}
	// All computers stay on the whole time.
	if res.Operational.Min() != 4 {
		t.Errorf("operational min = %v, want 4", res.Operational.Min())
	}
}

func TestThresholdSavesEnergyVsAlwaysOn(t *testing.T) {
	spec := testSpec(4)
	tr := steady(60, 450) // 15 req/s — one computer suffices
	store := testStore(t)
	cfg := DefaultRunnerConfig()
	th, err := NewThreshold(0.35, 0.8, 1)
	if err != nil {
		t.Fatal(err)
	}
	resTh, err := Run(spec, th, tr, store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	resOn, err := Run(spec, AlwaysOn{}, tr, testStore(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if resTh.Energy >= resOn.Energy {
		t.Errorf("threshold energy %v not below always-on %v", resTh.Energy, resOn.Energy)
	}
	total := int64(tr.Sum())
	if resTh.Completed < total*95/100 {
		t.Errorf("threshold completed %d of %d", resTh.Completed, total)
	}
	// Low load → scaled down.
	if last := resTh.Operational.Values[resTh.Operational.Len()-1]; last > 2 {
		t.Errorf("threshold still running %v computers at 15 req/s", last)
	}
}

func TestThresholdDVFSSavesAtFixedMachineCount(t *testing.T) {
	// With the machine count pinned (MinOn = Total), frequency scaling
	// strictly shaves the dynamic φ² term. (At a floating machine count
	// DVFS can legitimately cost MORE than consolidation because the
	// base cost dominates — the coordination failure the paper's
	// hierarchical optimization addresses.)
	spec := testSpec(4)
	tr := steady(60, 900) // 30 req/s
	store := testStore(t)
	cfg := DefaultRunnerConfig()
	th, err := NewThreshold(0.35, 0.8, 4)
	if err != nil {
		t.Fatal(err)
	}
	dv, err := NewThresholdDVFS(0.35, 0.8, 4, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	resTh, err := Run(spec, th, tr, store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	resDv, err := Run(spec, dv, tr, testStore(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if resDv.Energy >= resTh.Energy {
		t.Errorf("threshold+dvfs energy %v not below threshold %v at fixed count", resDv.Energy, resTh.Energy)
	}
}

func TestThresholdScalesWithStepLoad(t *testing.T) {
	spec := testSpec(4)
	tr := series.New(0, 30, 90)
	for i := range tr.Values {
		if i >= 30 && i < 60 {
			tr.Values[i] = 3600 // 120 req/s
		} else {
			tr.Values[i] = 150 // 5 req/s
		}
	}
	th, err := NewThreshold(0.35, 0.8, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(spec, th, tr, testStore(t), DefaultRunnerConfig())
	if err != nil {
		t.Fatal(err)
	}
	ops := res.Operational.Values
	n := len(ops)
	third := n / 3
	meanOf := func(lo, hi int) float64 {
		s := 0.0
		for _, v := range ops[lo:hi] {
			s += v
		}
		return s / float64(hi-lo)
	}
	low1 := meanOf(third/2, third)
	high := meanOf(third+1, 2*third)
	if high <= low1 {
		t.Errorf("threshold did not scale up: low %v, high %v", low1, high)
	}
	if math.IsNaN(res.MeanResponse) || res.MeanResponse <= 0 {
		t.Errorf("mean response = %v", res.MeanResponse)
	}
}
