package baseline

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"hierctl/internal/cluster"
	"hierctl/internal/des"
	"hierctl/internal/series"
	"hierctl/internal/workload"
)

// legacyRun is the package's pre-engine private step loop, kept verbatim
// as the equivalence oracle for the engine-backed Run. Do not modify it:
// the whole point is that Run must keep producing bit-identical results
// against an independent implementation of the mechanics.
func legacyRun(spec cluster.Spec, policy Policy, trace *series.Series, store *workload.Store, cfg RunnerConfig) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if policy == nil {
		return nil, fmt.Errorf("baseline: nil policy")
	}
	if trace == nil || trace.Len() == 0 {
		return nil, fmt.Errorf("baseline: empty trace")
	}
	sub := int(trace.Step/cfg.PeriodSeconds + 0.5)
	if sub < 1 || math.Abs(float64(sub)*cfg.PeriodSeconds-trace.Step) > 1e-6 {
		return nil, fmt.Errorf("baseline: trace bin %vs not a multiple of period %vs", trace.Step, cfg.PeriodSeconds)
	}
	plant, err := cluster.NewPlant(spec, des.RNG(cfg.Seed, "baseline-dispatch"))
	if err != nil {
		return nil, err
	}
	gen, err := workload.NewGenerator(trace, store, des.RNG(cfg.Seed, "baseline-workload"))
	if err != nil {
		return nil, err
	}

	// Flatten the cluster: policies are module-agnostic.
	type slot struct{ i, j int }
	var slots []slot
	preroll := 0.0
	for i := range spec.Modules {
		for j := range spec.Modules[i].Computers {
			slots = append(slots, slot{i, j})
			if d := spec.Modules[i].Computers[j].BootDelaySeconds; d > preroll {
				preroll = d
			}
		}
	}
	total := len(slots)

	// Start everything on at full speed (same warm start as the
	// hierarchy).
	for _, s := range slots {
		if err := plant.PowerOn(s.i, s.j); err != nil {
			return nil, err
		}
		comp, err := plant.Computer(s.i, s.j)
		if err != nil {
			return nil, err
		}
		if err := comp.SetFrequencyIndex(len(comp.Spec().FrequenciesHz) - 1); err != nil {
			return nil, err
		}
	}
	if preroll > 0 {
		if err := plant.Advance(preroll); err != nil {
			return nil, err
		}
		for i := range spec.Modules {
			if _, _, err := plant.ModuleIntervalStats(i); err != nil {
				return nil, err
			}
		}
	}

	steps := trace.Len() * sub
	adaptEvery := int(cfg.AdaptEverySeconds/cfg.PeriodSeconds + 0.5)
	res := &Result{
		Policy:       policy.Name(),
		Operational:  series.New(preroll, cfg.AdaptEverySeconds, 0),
		ResponseMean: series.New(preroll, cfg.PeriodSeconds, 0),
	}
	wantOn := total
	cHat := cfg.DefaultCHat
	lastRate := 0.0
	lastUtil := 0.0
	violations, respBins := 0, 0

	var pending [][]workload.Request
	pending = make([][]workload.Request, steps)

	failAt := cluster.FailureSteps(cfg.Failures, cfg.PeriodSeconds)

	for k := 0; k < steps; k++ {
		t := preroll + float64(k)*cfg.PeriodSeconds
		if err := plant.ApplyPlannedFailures(cfg.Failures, failAt, k); err != nil {
			return nil, err
		}
		if k%sub == 0 {
			bin, reqs, ok := gen.NextBin()
			if !ok {
				return nil, fmt.Errorf("baseline: trace exhausted at step %d", k)
			}
			binStart := trace.TimeAt(bin)
			for _, req := range reqs {
				idx := k + int((req.Arrival-binStart)/cfg.PeriodSeconds)
				if idx >= steps {
					idx = steps - 1
				}
				req.Arrival += preroll - trace.Start
				pending[idx] = append(pending[idx], req)
			}
		}

		// Adaptation: on/off per the policy's watermark rule.
		if k%adaptEvery == 0 {
			act := policy.Decide(Observation{
				Operational: plant.OperationalComputers(),
				Total:       total,
				Utilization: lastUtil,
				ArrivalRate: lastRate,
				CHat:        cHat,
			})
			want := act.Operational
			if want < 1 {
				want = 1
			}
			if want > total {
				want = total
			}
			wantOn = want
			on := 0
			for _, s := range slots {
				comp, err := plant.Computer(s.i, s.j)
				if err != nil {
					return nil, err
				}
				operational := comp.State() == cluster.PowerOn || comp.State() == cluster.Booting
				switch {
				case on < wantOn && !operational && comp.State() != cluster.Failed:
					if err := plant.PowerOn(s.i, s.j); err != nil {
						return nil, err
					}
					on++
				case on < wantOn && operational:
					on++
				case on >= wantOn && operational:
					if err := plant.PowerOff(s.i, s.j); err != nil {
						return nil, err
					}
				}
			}
			res.Operational.Values = append(res.Operational.Values, float64(plant.OperationalComputers()))
			// Frequency targets for the coming period.
			perComp := lastRate / math.Max(1, float64(plant.OperationalComputers()))
			for _, s := range slots {
				comp, err := plant.Computer(s.i, s.j)
				if err != nil {
					return nil, err
				}
				if !comp.Serving() && comp.State() != cluster.Booting {
					continue
				}
				spec := comp.Spec()
				idx := phiFor(spec.PhiLadder(), perComp, cHat, spec.SpeedFactor, act.PhiTarget)
				if err := comp.SetFrequencyIndex(idx); err != nil {
					return nil, err
				}
			}
		}

		// Dispatch uniformly across fully-on computers.
		if len(pending[k]) > 0 {
			gm := make([]float64, len(spec.Modules))
			gc := make([][]float64, len(spec.Modules))
			for i := range spec.Modules {
				gc[i] = make([]float64, len(spec.Modules[i].Computers))
			}
			for _, s := range slots {
				comp, err := plant.Computer(s.i, s.j)
				if err != nil {
					return nil, err
				}
				if comp.State() == cluster.PowerOn {
					gc[s.i][s.j] = 1
					gm[s.i]++
				}
			}
			if err := plant.Dispatch(pending[k], gm, gc); err != nil {
				return nil, err
			}
			pending[k] = nil
		}

		if err := plant.Advance(t + cfg.PeriodSeconds); err != nil {
			return nil, err
		}

		// Harvest.
		arrived, completed := 0, 0
		respSum, busySum, demandSum := 0.0, 0.0, 0.0
		busyN := 0
		for i := range spec.Modules {
			agg, _, err := plant.ModuleIntervalStats(i)
			if err != nil {
				return nil, err
			}
			arrived += agg.Arrived
			completed += agg.Completed
			if agg.Completed > 0 {
				respSum += agg.MeanResponse * float64(agg.Completed)
				demandSum += agg.MeanDemand * float64(agg.Completed)
			}
			busySum += agg.Busy * float64(len(spec.Modules[i].Computers))
			busyN += len(spec.Modules[i].Computers)
		}
		lastRate = float64(arrived) / cfg.PeriodSeconds
		if op := plant.OperationalComputers(); op > 0 && busyN > 0 {
			// Utilization over operational computers only.
			lastUtil = busySum / float64(op)
			if lastUtil > 1 {
				lastUtil = 1
			}
		}
		mean := 0.0
		if completed > 0 {
			mean = respSum / float64(completed)
			cHat = 0.9*cHat + 0.1*demandSum/float64(completed)
			respBins++
			if mean > cfg.TargetResponse {
				violations++
			}
		}
		res.ResponseMean.Values = append(res.ResponseMean.Values, mean)
	}

	// Events quantized exactly to the final boundary still fire before
	// the drain, matching the hierarchical engine.
	if err := plant.ApplyPlannedFailures(cfg.Failures, failAt, steps); err != nil {
		return nil, err
	}
	end := preroll + float64(steps)*cfg.PeriodSeconds
	if err := plant.Advance(end + cfg.DrainSeconds); err != nil {
		return nil, err
	}
	plant.FinishAccounting()
	res.Energy = plant.Accountant().TotalEnergy()
	res.Switches = plant.Accountant().TotalSwitches()
	var respAll float64
	var respCount int64
	for _, s := range slots {
		comp, err := plant.Computer(s.i, s.j)
		if err != nil {
			return nil, err
		}
		res.Completed += comp.TotalCompleted()
		res.Dropped += comp.TotalDropped()
		respAll += comp.LifetimeResponse().Mean() * float64(comp.LifetimeResponse().Count())
		respCount += comp.LifetimeResponse().Count()
	}
	if respCount > 0 {
		res.MeanResponse = respAll / float64(respCount)
	}
	res.ResponseP95 = plant.Latencies().Quantile(0.95)
	if respBins > 0 {
		res.ViolationFrac = float64(violations) / float64(respBins)
	}
	return res, nil
}

// TestRunMatchesLegacyOracle pins the engine migration: the engine-backed
// Run must reproduce the legacy step loop bit-for-bit — every scalar and
// every recorded series — across the scenario registry, multiple seeds,
// and both threshold policies, failure plans included.
func TestRunMatchesLegacyOracle(t *testing.T) {
	module, err := cluster.StandardModule("M1", "c")
	if err != nil {
		t.Fatal(err)
	}
	spec := cluster.Spec{Modules: []cluster.ModuleSpec{module}}

	for _, sc := range workload.Scenarios() {
		if sc.NeedsArg {
			continue
		}
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			for seed := int64(1); seed <= 5; seed++ {
				trace, err := sc.Trace(seed)
				if err != nil {
					t.Fatal(err)
				}
				sc.ScaleToCluster(trace, 4)
				if trace.Len() > 48 {
					trace = trace.Slice(0, 48)
				}
				plan := sc.FailurePlan(trace)
				store, err := workload.NewStore(rand.New(rand.NewSource(seed)), sc.StoreConfig())
				if err != nil {
					t.Fatal(err)
				}

				var pol Policy
				if seed%2 == 0 {
					pol, err = NewThresholdDVFS(0.35, 0.8, 1, 0.7)
				} else {
					pol, err = NewThreshold(0.35, 0.8, 1)
				}
				if err != nil {
					t.Fatal(err)
				}

				cfg := DefaultRunnerConfig()
				cfg.Seed = seed
				cfg.Failures = plan

				want, err := legacyRun(spec, pol, trace, store, cfg)
				if err != nil {
					t.Fatalf("seed %d: legacy: %v", seed, err)
				}
				// Policies are stateless between runs at the same
				// watermarks, but rebuild anyway so neither path sees
				// shared state.
				if seed%2 == 0 {
					pol, err = NewThresholdDVFS(0.35, 0.8, 1, 0.7)
				} else {
					pol, err = NewThreshold(0.35, 0.8, 1)
				}
				if err != nil {
					t.Fatal(err)
				}
				store2, err := workload.NewStore(rand.New(rand.NewSource(seed)), sc.StoreConfig())
				if err != nil {
					t.Fatal(err)
				}
				got, err := Run(spec, pol, trace, store2, cfg)
				if err != nil {
					t.Fatalf("seed %d: engine: %v", seed, err)
				}

				// The oracle predates spill accounting; align the new
				// field before the bit-identical comparison.
				want.Spilled = got.Spilled
				if !reflect.DeepEqual(want, got) {
					t.Errorf("seed %d: engine run diverges from legacy oracle\nlegacy: %+v\nengine: %+v", seed, want, got)
				}
			}
		})
	}
}
