package baseline

import (
	"testing"

	"hierctl/internal/workload"
)

// TestRunWithFailurePlan exercises the scenario failure-injection path: a
// correlated mid-run failure must reduce serving capacity (visible as a
// different run record), repairs must restore it, out-of-range plan
// entries must be skipped, and the run must stay deterministic per seed.
func TestRunWithFailurePlan(t *testing.T) {
	spec := testSpec(3)
	trace := steady(40, 600)
	cfg := DefaultRunnerConfig()
	cfg.Seed = 7
	span := trace.End() - trace.Start
	cfg.Failures = []workload.FailureEvent{
		{At: 0.3 * span, Module: 0, Comp: 0},
		{At: 0.3 * span, Module: 0, Comp: 1},
		{At: 0.7 * span, Module: 0, Comp: 0, Repair: true},
		{At: 0.7 * span, Module: 0, Comp: 1, Repair: true},
		{At: 0.3 * span, Module: 9, Comp: 0}, // no such module: skipped
		{At: 0.3 * span, Module: 0, Comp: 9}, // no such computer: skipped
	}
	pol, err := NewThreshold(0.3, 0.8, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(spec, pol, trace, testStore(t), cfg)
	if err != nil {
		t.Fatal(err)
	}

	// The failure window must show fewer operational computers than the
	// healthy tail after the repairs.
	minOp := res.Operational.Values[0]
	for _, v := range res.Operational.Values {
		if v < minOp {
			minOp = v
		}
	}
	if minOp > 1 {
		t.Errorf("operational never dropped to 1 during the two-failure window (min %v)", minOp)
	}
	if res.Completed == 0 {
		t.Fatal("nothing completed")
	}

	// Deterministic per seed.
	res2, err := Run(spec, pol, trace, testStore(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Energy != res2.Energy || res.Completed != res2.Completed || res.Dropped != res2.Dropped {
		t.Errorf("failure-plan run not deterministic: (%v,%d,%d) vs (%v,%d,%d)",
			res.Energy, res.Completed, res.Dropped, res2.Energy, res2.Completed, res2.Dropped)
	}

	// A failure-free run of the same configuration must differ (the plan
	// actually did something).
	cfg.Failures = nil
	clean, err := Run(spec, pol, trace, testStore(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Energy == res.Energy && clean.Completed == res.Completed {
		t.Error("failure plan had no observable effect on the run")
	}
}
