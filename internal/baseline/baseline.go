// Package baseline implements the comparator policies the paper positions
// itself against (§1): threshold-driven heuristics in the style of
// Pinheiro et al. [25] (power a computer on/off when utilization crosses
// fixed watermarks) and Elnozahy et al. [14] (the same plus dynamic
// voltage scaling), and a static all-on/full-speed configuration. All three
// run against the same request-level plant as the hierarchical controller,
// so energy and response comparisons are apples-to-apples.
package baseline

import (
	"fmt"
)

// Observation is what a policy sees each control period: aggregate
// cluster-level measurements (baselines are flat — they ignore module
// structure).
type Observation struct {
	// Operational is the number of computers currently on or booting.
	Operational int
	// Total is the cluster size.
	Total int
	// Utilization is the mean busy fraction of serving computers over
	// the last period.
	Utilization float64
	// ArrivalRate is the measured arrival rate (requests/second).
	ArrivalRate float64
	// CHat is the processing-time estimate (seconds at full speed).
	CHat float64
}

// Action is a policy's command for the next period.
type Action struct {
	// Operational is the desired number of powered computers.
	Operational int
	// PhiTarget is the desired per-computer utilization the frequency
	// picker should aim for; implementations select the lowest DVFS
	// point whose utilization stays below it. ≤ 0 means "run at full
	// speed".
	PhiTarget float64
}

// Policy decides cluster sizing each adaptation period.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Decide maps an observation to the next action.
	Decide(obs Observation) Action
}

// AlwaysOn keeps every computer on at full speed — the no-management
// reference configuration.
type AlwaysOn struct{}

// Name implements Policy.
func (AlwaysOn) Name() string { return "always-on" }

// Decide implements Policy.
func (AlwaysOn) Decide(obs Observation) Action {
	return Action{Operational: obs.Total, PhiTarget: 0}
}

// Threshold powers computers on and off on utilization watermarks, running
// survivors at full speed (Pinheiro et al.-style load unbalancing).
type Threshold struct {
	// High and Low are the utilization watermarks: above High a computer
	// is added, below Low one is removed.
	High, Low float64
	// MinOn floors the number of powered computers.
	MinOn int
}

// NewThreshold returns a Threshold policy with validated watermarks.
func NewThreshold(low, high float64, minOn int) (*Threshold, error) {
	if low <= 0 || high <= low || high >= 1 {
		return nil, fmt.Errorf("baseline: watermarks (%v, %v) must satisfy 0 < low < high < 1", low, high)
	}
	if minOn < 1 {
		return nil, fmt.Errorf("baseline: min-on %d < 1", minOn)
	}
	return &Threshold{High: high, Low: low, MinOn: minOn}, nil
}

// Name implements Policy.
func (t *Threshold) Name() string { return "threshold" }

// Decide implements Policy.
func (t *Threshold) Decide(obs Observation) Action {
	n := obs.Operational
	if obs.Utilization > t.High && n < obs.Total {
		n++
	} else if obs.Utilization < t.Low && n > t.MinOn {
		n--
	}
	if n < t.MinOn {
		n = t.MinOn
	}
	return Action{Operational: n, PhiTarget: 0}
}

// ThresholdDVFS combines the watermark on/off rule with frequency scaling:
// survivors run at the lowest DVFS point keeping estimated per-computer
// utilization under UtilTarget (Elnozahy et al.-style).
type ThresholdDVFS struct {
	Threshold
	// UtilTarget is the per-computer utilization the frequency picker
	// aims under (e.g. 0.8).
	UtilTarget float64
}

// NewThresholdDVFS returns a ThresholdDVFS policy.
func NewThresholdDVFS(low, high float64, minOn int, utilTarget float64) (*ThresholdDVFS, error) {
	base, err := NewThreshold(low, high, minOn)
	if err != nil {
		return nil, err
	}
	if utilTarget <= 0 || utilTarget >= 1 {
		return nil, fmt.Errorf("baseline: utilization target %v outside (0, 1)", utilTarget)
	}
	return &ThresholdDVFS{Threshold: *base, UtilTarget: utilTarget}, nil
}

// Name implements Policy.
func (t *ThresholdDVFS) Name() string { return "threshold+dvfs" }

// Decide implements Policy.
func (t *ThresholdDVFS) Decide(obs Observation) Action {
	a := t.Threshold.Decide(obs)
	a.PhiTarget = t.UtilTarget
	return a
}

// phiFor picks the lowest scaling factor from the ladder that keeps
// utilization lambda·c/(φ·speed) below target; it returns the top of the
// ladder when nothing suffices.
func phiFor(ladder []float64, lambda, c, speed, target float64) int {
	if target <= 0 {
		return len(ladder) - 1
	}
	for i, phi := range ladder {
		if lambda*c/(phi*speed) < target {
			return i
		}
	}
	return len(ladder) - 1
}
