package baseline

import (
	"fmt"
	"math"

	"hierctl/internal/cluster"
	"hierctl/internal/des"
	"hierctl/internal/series"
	"hierctl/internal/workload"
)

// RunnerConfig parameterizes a baseline run.
type RunnerConfig struct {
	// PeriodSeconds is the measurement/frequency period (match T_L0).
	PeriodSeconds float64
	// AdaptEverySeconds is the on/off adaptation period (match T_L1 so
	// the comparison to the hierarchy is fair under the same boot
	// dead-time).
	AdaptEverySeconds float64
	// TargetResponse is r*, used only for violation accounting.
	TargetResponse float64
	// DefaultCHat seeds the processing-time estimate.
	DefaultCHat float64
	// Seed drives dispatch and workload randomness.
	Seed int64
	// DrainSeconds extends the run so in-flight work completes.
	DrainSeconds float64
	// Failures is an optional injection plan (scenario failure plans):
	// events are quantized to the next measurement-period boundary and
	// fire ahead of the policy, matching the hierarchical engine's
	// ordering; entries whose (Module, Comp) indices are not in the
	// cluster are skipped.
	Failures []workload.FailureEvent
}

// DefaultRunnerConfig matches the hierarchy's cadences for fair
// comparison.
func DefaultRunnerConfig() RunnerConfig {
	return RunnerConfig{
		PeriodSeconds:     30,
		AdaptEverySeconds: 120,
		TargetResponse:    4,
		DefaultCHat:       0.0175,
		Seed:              1,
		DrainSeconds:      300,
	}
}

// Validate reports whether the configuration is usable.
func (c RunnerConfig) Validate() error {
	if c.PeriodSeconds <= 0 {
		return fmt.Errorf("baseline: period %v <= 0", c.PeriodSeconds)
	}
	if c.AdaptEverySeconds < c.PeriodSeconds {
		return fmt.Errorf("baseline: adaptation period %v below measurement period %v", c.AdaptEverySeconds, c.PeriodSeconds)
	}
	if c.TargetResponse <= 0 {
		return fmt.Errorf("baseline: target response %v <= 0", c.TargetResponse)
	}
	if c.DefaultCHat <= 0 {
		return fmt.Errorf("baseline: default c-hat %v <= 0", c.DefaultCHat)
	}
	if c.DrainSeconds < 0 {
		return fmt.Errorf("baseline: drain %v < 0", c.DrainSeconds)
	}
	return nil
}

// Result summarizes a baseline run with the same quantities the
// hierarchical Record reports, so EXT1 tables can be built side by side.
type Result struct {
	Policy       string
	Energy       float64
	Switches     int
	Completed    int64
	Dropped      int64
	MeanResponse float64
	// ResponseP95 is the per-request 95th-percentile latency.
	ResponseP95   float64
	ViolationFrac float64
	Operational   *series.Series // per adaptation period
	ResponseMean  *series.Series // per measurement period
}

// Run simulates the policy against the plant for the whole trace. The
// trace bin width must be an integer multiple of the measurement period.
// Computers are powered in spec order; dispatch is uniform across serving
// computers (the flat policies have no notion of per-computer fractions).
func Run(spec cluster.Spec, policy Policy, trace *series.Series, store *workload.Store, cfg RunnerConfig) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if policy == nil {
		return nil, fmt.Errorf("baseline: nil policy")
	}
	if trace == nil || trace.Len() == 0 {
		return nil, fmt.Errorf("baseline: empty trace")
	}
	sub := int(trace.Step/cfg.PeriodSeconds + 0.5)
	if sub < 1 || math.Abs(float64(sub)*cfg.PeriodSeconds-trace.Step) > 1e-6 {
		return nil, fmt.Errorf("baseline: trace bin %vs not a multiple of period %vs", trace.Step, cfg.PeriodSeconds)
	}
	plant, err := cluster.NewPlant(spec, des.RNG(cfg.Seed, "baseline-dispatch"))
	if err != nil {
		return nil, err
	}
	gen, err := workload.NewGenerator(trace, store, des.RNG(cfg.Seed, "baseline-workload"))
	if err != nil {
		return nil, err
	}

	// Flatten the cluster: policies are module-agnostic.
	type slot struct{ i, j int }
	var slots []slot
	preroll := 0.0
	for i := range spec.Modules {
		for j := range spec.Modules[i].Computers {
			slots = append(slots, slot{i, j})
			if d := spec.Modules[i].Computers[j].BootDelaySeconds; d > preroll {
				preroll = d
			}
		}
	}
	total := len(slots)

	// Start everything on at full speed (same warm start as the
	// hierarchy).
	for _, s := range slots {
		if err := plant.PowerOn(s.i, s.j); err != nil {
			return nil, err
		}
		comp, err := plant.Computer(s.i, s.j)
		if err != nil {
			return nil, err
		}
		if err := comp.SetFrequencyIndex(len(comp.Spec().FrequenciesHz) - 1); err != nil {
			return nil, err
		}
	}
	if preroll > 0 {
		if err := plant.Advance(preroll); err != nil {
			return nil, err
		}
		for i := range spec.Modules {
			if _, _, err := plant.ModuleIntervalStats(i); err != nil {
				return nil, err
			}
		}
	}

	steps := trace.Len() * sub
	adaptEvery := int(cfg.AdaptEverySeconds/cfg.PeriodSeconds + 0.5)
	res := &Result{
		Policy:       policy.Name(),
		Operational:  series.New(preroll, cfg.AdaptEverySeconds, 0),
		ResponseMean: series.New(preroll, cfg.PeriodSeconds, 0),
	}
	wantOn := total
	cHat := cfg.DefaultCHat
	lastRate := 0.0
	lastUtil := 0.0
	violations, respBins := 0, 0

	var pending [][]workload.Request
	pending = make([][]workload.Request, steps)

	failAt := cluster.FailureSteps(cfg.Failures, cfg.PeriodSeconds)

	for k := 0; k < steps; k++ {
		t := preroll + float64(k)*cfg.PeriodSeconds
		if err := plant.ApplyPlannedFailures(cfg.Failures, failAt, k); err != nil {
			return nil, err
		}
		if k%sub == 0 {
			bin, reqs, ok := gen.NextBin()
			if !ok {
				return nil, fmt.Errorf("baseline: trace exhausted at step %d", k)
			}
			binStart := trace.TimeAt(bin)
			for _, req := range reqs {
				idx := k + int((req.Arrival-binStart)/cfg.PeriodSeconds)
				if idx >= steps {
					idx = steps - 1
				}
				req.Arrival += preroll - trace.Start
				pending[idx] = append(pending[idx], req)
			}
		}

		// Adaptation: on/off per the policy's watermark rule.
		if k%adaptEvery == 0 {
			act := policy.Decide(Observation{
				Operational: plant.OperationalComputers(),
				Total:       total,
				Utilization: lastUtil,
				ArrivalRate: lastRate,
				CHat:        cHat,
			})
			want := act.Operational
			if want < 1 {
				want = 1
			}
			if want > total {
				want = total
			}
			wantOn = want
			on := 0
			for _, s := range slots {
				comp, err := plant.Computer(s.i, s.j)
				if err != nil {
					return nil, err
				}
				operational := comp.State() == cluster.PowerOn || comp.State() == cluster.Booting
				switch {
				case on < wantOn && !operational && comp.State() != cluster.Failed:
					if err := plant.PowerOn(s.i, s.j); err != nil {
						return nil, err
					}
					on++
				case on < wantOn && operational:
					on++
				case on >= wantOn && operational:
					if err := plant.PowerOff(s.i, s.j); err != nil {
						return nil, err
					}
				}
			}
			res.Operational.Values = append(res.Operational.Values, float64(plant.OperationalComputers()))
			// Frequency targets for the coming period.
			perComp := lastRate / math.Max(1, float64(plant.OperationalComputers()))
			for _, s := range slots {
				comp, err := plant.Computer(s.i, s.j)
				if err != nil {
					return nil, err
				}
				if !comp.Serving() && comp.State() != cluster.Booting {
					continue
				}
				spec := comp.Spec()
				idx := phiFor(spec.PhiLadder(), perComp, cHat, spec.SpeedFactor, act.PhiTarget)
				if err := comp.SetFrequencyIndex(idx); err != nil {
					return nil, err
				}
			}
		}

		// Dispatch uniformly across fully-on computers.
		if len(pending[k]) > 0 {
			gm := make([]float64, len(spec.Modules))
			gc := make([][]float64, len(spec.Modules))
			for i := range spec.Modules {
				gc[i] = make([]float64, len(spec.Modules[i].Computers))
			}
			for _, s := range slots {
				comp, err := plant.Computer(s.i, s.j)
				if err != nil {
					return nil, err
				}
				if comp.State() == cluster.PowerOn {
					gc[s.i][s.j] = 1
					gm[s.i]++
				}
			}
			if err := plant.Dispatch(pending[k], gm, gc); err != nil {
				return nil, err
			}
			pending[k] = nil
		}

		if err := plant.Advance(t + cfg.PeriodSeconds); err != nil {
			return nil, err
		}

		// Harvest.
		arrived, completed := 0, 0
		respSum, busySum, demandSum := 0.0, 0.0, 0.0
		busyN := 0
		for i := range spec.Modules {
			agg, _, err := plant.ModuleIntervalStats(i)
			if err != nil {
				return nil, err
			}
			arrived += agg.Arrived
			completed += agg.Completed
			if agg.Completed > 0 {
				respSum += agg.MeanResponse * float64(agg.Completed)
				demandSum += agg.MeanDemand * float64(agg.Completed)
			}
			busySum += agg.Busy * float64(len(spec.Modules[i].Computers))
			busyN += len(spec.Modules[i].Computers)
		}
		lastRate = float64(arrived) / cfg.PeriodSeconds
		if op := plant.OperationalComputers(); op > 0 && busyN > 0 {
			// Utilization over operational computers only.
			lastUtil = busySum / float64(op)
			if lastUtil > 1 {
				lastUtil = 1
			}
		}
		mean := 0.0
		if completed > 0 {
			mean = respSum / float64(completed)
			cHat = 0.9*cHat + 0.1*demandSum/float64(completed)
			respBins++
			if mean > cfg.TargetResponse {
				violations++
			}
		}
		res.ResponseMean.Values = append(res.ResponseMean.Values, mean)
	}

	// Events quantized exactly to the final boundary still fire before
	// the drain, matching the hierarchical engine.
	if err := plant.ApplyPlannedFailures(cfg.Failures, failAt, steps); err != nil {
		return nil, err
	}
	end := preroll + float64(steps)*cfg.PeriodSeconds
	if err := plant.Advance(end + cfg.DrainSeconds); err != nil {
		return nil, err
	}
	plant.FinishAccounting()
	res.Energy = plant.Accountant().TotalEnergy()
	res.Switches = plant.Accountant().TotalSwitches()
	var respAll float64
	var respCount int64
	for _, s := range slots {
		comp, err := plant.Computer(s.i, s.j)
		if err != nil {
			return nil, err
		}
		res.Completed += comp.TotalCompleted()
		res.Dropped += comp.TotalDropped()
		respAll += comp.LifetimeResponse().Mean() * float64(comp.LifetimeResponse().Count())
		respCount += comp.LifetimeResponse().Count()
	}
	if respCount > 0 {
		res.MeanResponse = respAll / float64(respCount)
	}
	res.ResponseP95 = plant.Latencies().Quantile(0.95)
	if respBins > 0 {
		res.ViolationFrac = float64(violations) / float64(respBins)
	}
	return res, nil
}
