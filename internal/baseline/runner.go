package baseline

import (
	"fmt"
	"math"

	"hierctl/internal/chaos"
	"hierctl/internal/cluster"
	"hierctl/internal/engine"
	"hierctl/internal/series"
	"hierctl/internal/workload"
)

// RunnerConfig parameterizes a baseline run.
type RunnerConfig struct {
	// PeriodSeconds is the measurement/frequency period (match T_L0).
	PeriodSeconds float64
	// AdaptEverySeconds is the on/off adaptation period (match T_L1 so
	// the comparison to the hierarchy is fair under the same boot
	// dead-time).
	AdaptEverySeconds float64
	// TargetResponse is r*, used only for violation accounting.
	TargetResponse float64
	// DefaultCHat seeds the processing-time estimate.
	DefaultCHat float64
	// Seed drives dispatch and workload randomness.
	Seed int64
	// DrainSeconds extends the run so in-flight work completes.
	DrainSeconds float64
	// Failures is an optional injection plan (scenario failure plans):
	// events are quantized to the next measurement-period boundary and
	// fire ahead of the policy, matching the hierarchical engine's
	// ordering; entries whose (Module, Comp) indices are not in the
	// cluster are skipped.
	Failures []workload.FailureEvent
	// Chaos is an optional sensor-fault plan (see internal/chaos): its
	// faults corrupt what the policy observes, never the plant, and its
	// availability events merge into Failures. DecisionBudget is ignored
	// — the threshold policies run no lookahead search. An empty plan is
	// bit-identical to no plan.
	Chaos chaos.Plan
}

// DefaultRunnerConfig matches the hierarchy's cadences for fair
// comparison.
func DefaultRunnerConfig() RunnerConfig {
	return RunnerConfig{
		PeriodSeconds:     30,
		AdaptEverySeconds: 120,
		TargetResponse:    4,
		DefaultCHat:       0.0175,
		Seed:              1,
		DrainSeconds:      300,
	}
}

// Validate reports whether the configuration is usable.
func (c RunnerConfig) Validate() error {
	if c.PeriodSeconds <= 0 {
		return fmt.Errorf("baseline: period %v <= 0", c.PeriodSeconds)
	}
	if c.AdaptEverySeconds < c.PeriodSeconds {
		return fmt.Errorf("baseline: adaptation period %v below measurement period %v", c.AdaptEverySeconds, c.PeriodSeconds)
	}
	if c.TargetResponse <= 0 {
		return fmt.Errorf("baseline: target response %v <= 0", c.TargetResponse)
	}
	if c.DefaultCHat <= 0 {
		return fmt.Errorf("baseline: default c-hat %v <= 0", c.DefaultCHat)
	}
	if c.DrainSeconds < 0 {
		return fmt.Errorf("baseline: drain %v < 0", c.DrainSeconds)
	}
	return nil
}

// Result summarizes a baseline run with the same quantities the
// hierarchical Record reports, so EXT1 tables can be built side by side.
type Result struct {
	Policy       string
	Energy       float64
	Switches     int
	Completed    int64
	Dropped      int64
	MeanResponse float64
	// ResponseP95 is the per-request 95th-percentile latency.
	ResponseP95   float64
	ViolationFrac float64
	// Spilled counts requests whose arrival offset landed past the run's
	// final measurement period and were folded into it (a float-rounding
	// edge at the trace end; see engine.Harness.Spilled). Almost always 0.
	Spilled int64
	// StaleObservations and SanitizedRejects are the engine sanitizer's
	// degraded-input counters (module-ticks; zero on healthy runs).
	StaleObservations int64
	SanitizedRejects  int64
	Operational       *series.Series // per adaptation period
	ResponseMean      *series.Series // per measurement period
}

// runner adapts a flat Policy onto the shared simulation engine: it keeps
// the measurement state the policy observes (utilization, arrival rate,
// c-hat) and performs the actuation — power toggles and frequency picks —
// the legacy step loop did, in the same order.
type runner struct {
	spec   cluster.Spec
	cfg    RunnerConfig
	policy Policy

	plant      *cluster.Plant
	slots      []slot
	total      int
	adaptEvery int

	cHat     float64
	lastRate float64
	lastUtil float64

	violations int
	respBins   int

	// budget caps operational computers when a cross-cluster L3 layer
	// imposes one (engine.Budgeted); 0 means uncapped.
	budget int

	res *Result
}

type slot struct{ i, j int }

// Name implements engine.Policy.
func (r *runner) Name() string { return r.policy.Name() }

// SetBudget implements engine.Budgeted: an L3 layer caps how many
// computers this cluster may keep operational.
func (r *runner) SetBudget(maxOperational int) { r.budget = maxOperational }

// Init implements engine.Policy: the plant arrives warm (all-on at full
// speed, pre-roll done); the adapter flattens the cluster — the policies
// are module-agnostic — and seeds the result series on the pre-roll.
func (r *runner) Init(p *cluster.Plant) error {
	r.plant = p
	preroll := 0.0
	for i := range r.spec.Modules {
		for j := range r.spec.Modules[i].Computers {
			r.slots = append(r.slots, slot{i, j})
			if d := r.spec.Modules[i].Computers[j].BootDelaySeconds; d > preroll {
				preroll = d
			}
		}
	}
	r.total = len(r.slots)
	r.adaptEvery = int(r.cfg.AdaptEverySeconds/r.cfg.PeriodSeconds + 0.5)
	r.res = &Result{
		Policy:       r.policy.Name(),
		Operational:  series.New(preroll, r.cfg.AdaptEverySeconds, 0),
		ResponseMean: series.New(preroll, r.cfg.PeriodSeconds, 0),
	}
	r.cHat = r.cfg.DefaultCHat
	return nil
}

// Decide implements engine.Policy: adaptation (on/off per the policy's
// watermark rule plus frequency targets) at the adaptation cadence, and
// uniform dispatch fractions across fully-on computers for the tick's
// arrivals.
func (r *runner) Decide(k int, obs engine.TickObs) (engine.Settings, error) {
	if k%r.adaptEvery == 0 {
		act := r.policy.Decide(Observation{
			Operational: r.plant.OperationalComputers(),
			Total:       r.total,
			Utilization: r.lastUtil,
			ArrivalRate: r.lastRate,
			CHat:        r.cHat,
		})
		want := act.Operational
		if want < 1 {
			want = 1
		}
		if want > r.total {
			want = r.total
		}
		if r.budget > 0 && want > r.budget {
			want = r.budget
		}
		wantOn := want
		on := 0
		for _, s := range r.slots {
			comp, err := r.plant.Computer(s.i, s.j)
			if err != nil {
				return engine.Settings{}, err
			}
			operational := comp.State() == cluster.PowerOn || comp.State() == cluster.Booting
			switch {
			case on < wantOn && !operational && comp.State() != cluster.Failed:
				if err := r.plant.PowerOn(s.i, s.j); err != nil {
					return engine.Settings{}, err
				}
				on++
			case on < wantOn && operational:
				on++
			case on >= wantOn && operational:
				if err := r.plant.PowerOff(s.i, s.j); err != nil {
					return engine.Settings{}, err
				}
			}
		}
		r.res.Operational.Values = append(r.res.Operational.Values, float64(r.plant.OperationalComputers()))
		// Frequency targets for the coming period.
		perComp := r.lastRate / math.Max(1, float64(r.plant.OperationalComputers()))
		for _, s := range r.slots {
			comp, err := r.plant.Computer(s.i, s.j)
			if err != nil {
				return engine.Settings{}, err
			}
			if !comp.Serving() && comp.State() != cluster.Booting {
				continue
			}
			spec := comp.Spec()
			idx := phiFor(spec.PhiLadder(), perComp, r.cHat, spec.SpeedFactor, act.PhiTarget)
			if err := comp.SetFrequencyIndex(idx); err != nil {
				return engine.Settings{}, err
			}
		}
	}

	if obs.PendingRequests == 0 {
		return engine.Settings{}, nil
	}
	// Dispatch uniformly across fully-on computers.
	gm := make([]float64, len(r.spec.Modules))
	gc := make([][]float64, len(r.spec.Modules))
	for i := range r.spec.Modules {
		gc[i] = make([]float64, len(r.spec.Modules[i].Computers))
	}
	for _, s := range r.slots {
		comp, err := r.plant.Computer(s.i, s.j)
		if err != nil {
			return engine.Settings{}, err
		}
		if comp.State() == cluster.PowerOn {
			gc[s.i][s.j] = 1
			gm[s.i]++
		}
	}
	return engine.Settings{GammaModules: gm, GammaComputers: gc}, nil
}

// Observe implements engine.Policy: fold the period's harvest into the
// measurement state (arrival rate, utilization, c-hat EWMA) and the
// violation accounting.
func (r *runner) Observe(k int, stats []engine.ModuleStats) error {
	arrived, completed := 0, 0
	respSum, busySum, demandSum := 0.0, 0.0, 0.0
	busyN := 0
	for i, st := range stats {
		agg := st.Agg
		arrived += agg.Arrived
		completed += agg.Completed
		if agg.Completed > 0 {
			respSum += agg.MeanResponse * float64(agg.Completed)
			demandSum += agg.MeanDemand * float64(agg.Completed)
		}
		busySum += agg.Busy * float64(len(r.spec.Modules[i].Computers))
		busyN += len(r.spec.Modules[i].Computers)
	}
	r.lastRate = float64(arrived) / r.cfg.PeriodSeconds
	if op := r.plant.OperationalComputers(); op > 0 && busyN > 0 {
		// Utilization over operational computers only.
		r.lastUtil = busySum / float64(op)
		if r.lastUtil > 1 {
			r.lastUtil = 1
		}
	}
	mean := 0.0
	if completed > 0 {
		mean = respSum / float64(completed)
		r.cHat = 0.9*r.cHat + 0.1*demandSum/float64(completed)
		r.respBins++
		if mean > r.cfg.TargetResponse {
			r.violations++
		}
	}
	r.res.ResponseMean.Values = append(r.res.ResponseMean.Values, mean)
	return nil
}

// Run simulates the policy against the plant for the whole trace. The
// trace bin width must be an integer multiple of the measurement period.
// Computers are powered in spec order; dispatch is uniform across serving
// computers (the flat policies have no notion of per-computer fractions).
//
// Run is a thin adapter over the shared simulation engine: the harness
// owns the clock, pre-roll, request feed, failure schedule, and step loop,
// and calls back into the runner above. Results are bit-identical to the
// package's historical private loop, which survives as the test oracle in
// legacy_oracle_test.go.
func Run(spec cluster.Spec, policy Policy, trace *series.Series, store *workload.Store, cfg RunnerConfig) (*Result, error) {
	h, finalize, err := PrepareEngine(spec, policy, trace, store, cfg)
	if err != nil {
		return nil, err
	}
	if err := h.RunTrace(trace); err != nil {
		return nil, err
	}
	return finalize()
}

// PrepareEngine builds the engine harness for a baseline run without
// advancing it, for shared-clock drivers (engine.MultiCluster) that
// interleave several clusters and impose budgets mid-run; Run is
// PrepareEngine + Harness.RunTrace + finalize. The returned finalize
// assembles the Result once the harness has finished.
func PrepareEngine(spec cluster.Spec, policy Policy, trace *series.Series, store *workload.Store, cfg RunnerConfig) (*engine.Harness, func() (*Result, error), error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	if policy == nil {
		return nil, nil, fmt.Errorf("baseline: nil policy")
	}
	if trace == nil || trace.Len() == 0 {
		return nil, nil, fmt.Errorf("baseline: empty trace")
	}
	r := &runner{spec: spec, cfg: cfg, policy: policy}
	h, err := engine.New(engine.Config{
		Spec:           spec,
		Seed:           cfg.Seed,
		DispatchStream: "baseline-dispatch",
		WorkloadStream: "baseline-workload",
		PeriodSeconds:  cfg.PeriodSeconds,
		BinSeconds:     trace.Step,
		Start:          trace.Start,
		TotalBins:      trace.Len(),
		DrainSeconds:   cfg.DrainSeconds,
		Failures:       cfg.Failures,
		Chaos:          cfg.Chaos,
		Spread:         engine.SpreadRunArray,
	}, store, r)
	if err != nil {
		return nil, nil, err
	}
	finalize := func() (*Result, error) {
		tot, err := h.Totals()
		if err != nil {
			return nil, err
		}
		res := r.res
		res.Energy = tot.Energy
		res.Switches = tot.Switches
		res.Completed = tot.Completed
		res.Dropped = tot.Dropped
		res.MeanResponse = tot.MeanResponse
		res.ResponseP95 = tot.ResponseP95
		res.Spilled = h.Spilled()
		res.StaleObservations = h.StaleObservations()
		res.SanitizedRejects = h.SanitizedRejects()
		if r.respBins > 0 {
			res.ViolationFrac = float64(r.violations) / float64(r.respBins)
		}
		return res, nil
	}
	return h, finalize, nil
}
