package llc

import (
	"fmt"
	"math"
)

// This file preserves the original recursive, unpruned search engine as a
// test oracle: the branch-and-bound engine must reproduce its decisions
// bit-for-bit (inputs, states, cost, feasibility) and, when pruning and
// parallelism are off, its exact Explored count and evaluation order.

type refSearch[S, U any] struct {
	m        Model[S, U]
	envs     []([]Env)
	penalty  float64
	inputsAt func(s S, level int, prev U) []U
	seed     U
	explored int
}

func referenceExhaustive[S, U any](m Model[S, U], x0 S, envs []([]Env), opt Options) (Result[S, U], error) {
	if err := checkEnvs(envs); err != nil {
		return Result[S, U]{}, err
	}
	s := &refSearch[S, U]{m: m, envs: envs, penalty: opt.penalty(), inputsAt: func(st S, _ int, _ U) []U {
		return m.Inputs(st)
	}}
	return s.run(x0)
}

func referenceBounded[S, U any](m Model[S, U], x0 S, prev U, neighbours func(prev U, s S, level int) []U, envs []([]Env), opt Options) (Result[S, U], error) {
	if err := checkEnvs(envs); err != nil {
		return Result[S, U]{}, err
	}
	s := &refSearch[S, U]{m: m, envs: envs, penalty: opt.penalty(), inputsAt: func(st S, level int, prevU U) []U {
		return neighbours(prevU, st, level)
	}, seed: prev}
	return s.run(x0)
}

func (s *refSearch[S, U]) run(x0 S) (Result[S, U], error) {
	best, err := s.expand(x0, s.seed, 0)
	if err != nil {
		return Result[S, U]{}, err
	}
	best.Explored = s.explored
	refReverse(best.Inputs)
	refReverse(best.States)
	best.Feasible = true
	for _, st := range best.States {
		if !s.m.Feasible(st) {
			best.Feasible = false
			break
		}
	}
	return best, nil
}

func (s *refSearch[S, U]) expand(x S, prev U, level int) (Result[S, U], error) {
	samples := s.envs[level]
	nominal := samples[len(samples)/2]
	candidates := s.inputsAt(x, level, prev)
	if len(candidates) == 0 {
		return Result[S, U]{}, fmt.Errorf("%w (level %d)", ErrNoInputs, level)
	}
	best := Result[S, U]{Cost: math.Inf(1)}
	found := false
	for _, u := range candidates {
		stage := 0.0
		for _, env := range samples {
			next := s.m.Step(x, u, env)
			s.explored++
			c := s.m.Cost(next, u, env)
			if !s.m.Feasible(next) {
				c += s.penalty
			}
			stage += c
		}
		stage /= float64(len(samples))

		nominalNext := s.m.Step(x, u, nominal)
		total := stage
		var suffix Result[S, U]
		if level+1 < len(s.envs) {
			var err error
			suffix, err = s.expand(nominalNext, u, level+1)
			if err != nil {
				return Result[S, U]{}, err
			}
			total += suffix.Cost
		}
		if total < best.Cost {
			best.Cost = total
			best.Inputs = append(suffix.Inputs, u)
			best.States = append(suffix.States, nominalNext)
			found = true
		}
	}
	if !found {
		return Result[S, U]{}, fmt.Errorf("llc: no finite-cost trajectory at level %d", level)
	}
	return best, nil
}

func refReverse[T any](xs []T) {
	for i, j := 0, len(xs)-1; i < j; i, j = i+1, j-1 {
		xs[i], xs[j] = xs[j], xs[i]
	}
}
