// Package llc implements the paper's primary contribution as a reusable
// framework: limited-lookahead control (LLC) of switching hybrid systems —
// systems with finite input sets and hybrid discrete/continuous dynamics
// for which classical feedback maps cannot be derived (§2.3).
//
// At every control step the framework constructs the tree of future states
// reachable from the current state over a prediction horizon N, evaluates
// the cumulative cost of each trajectory against forecast environment
// inputs, and returns the first input of the best trajectory (Eq. 4). Two
// search strategies are provided, matching the paper's §3:
//
//   - Exhaustive: explore every admissible input sequence (used by the L0
//     controller, whose input set — processor frequencies — is small).
//   - Bounded: explore only a caller-defined neighbourhood of the previous
//     input at each tree level (used by the L1/L2 controllers, whose input
//     spaces are combinatorial).
//
// Uncertainty in environment forecasts is handled as in §4.2: each horizon
// step may carry several sampled environment vectors (e.g. λ̂−δ, λ̂, λ̂+δ)
// and the stage cost is the average over the samples, which damps
// controller chattering. The nominal sample — the one at index
// ⌊len(samples)/2⌋, i.e. the middle sample for odd counts and the upper of
// the two middle samples for even counts — drives the state recursion.
// Callers that want a different convention (e.g. the lower-middle sample)
// should order their sample sets accordingly.
//
// # Search engine
//
// Both strategies run on a shared branch-and-bound engine: an iterative
// depth-first walk over preallocated per-level buffers (no recursion, no
// per-node allocation) that keeps the best trajectory found so far as an
// incumbent. Under the Options.NonNegativeCosts contract the engine prunes
// any partial trajectory whose accumulated cost already matches or exceeds
// the incumbent — such a trajectory can only tie, and ties never displace
// the incumbent, so the returned decision is bit-identical to the
// unpruned search while Result.Explored (the paper's §4.3
// controller-overhead metric) shrinks. Options.Parallelism additionally
// fans the level-0 candidates out across worker goroutines that share the
// incumbent bound through an atomic; per-worker results are merged in
// candidate order, so the decision stays bit-identical at any worker
// count (Explored then depends on pruning timing and may vary run to run).
package llc

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
)

// Env is one sampled environment vector ω̂(q) — e.g. {arrival rate,
// processing time} for the cluster case study. The framework treats it as
// opaque and passes it to the model.
type Env []float64

// Model describes a switching hybrid system to the controller: the state
// recursion x(k+1) = f(x(k), u(k), ω(k)) (Eq. 1), the admissible input set
// U(x), the stage cost J(x, u), and the hard operating constraints
// H(x) ≤ 0.
//
// S is the state type and U the input type; both are opaque to the
// framework. Methods must be pure functions of their arguments: the search
// may evaluate them in any order, and with Options.Parallelism > 1 from
// several goroutines at once.
type Model[S, U any] interface {
	// Step predicts the successor state from s under input u and
	// environment sample env.
	Step(s S, u U, env Env) S
	// Cost returns the stage cost of the transition into next (from
	// applying u in the predecessor), including any soft-constraint
	// slack penalties (§4.1).
	Cost(next S, u U, env Env) float64
	// Feasible reports whether s satisfies the hard constraints
	// H(s) ≤ 0. Infeasible states are heavily penalized, which keeps
	// trajectories inside the admissible region whenever one exists.
	Feasible(s S) bool
	// Inputs returns the admissible control set U(s) in state s. It must
	// be non-empty for every state the search can reach.
	Inputs(s S) []U
}

// Options tunes a search. The zero value selects sensible defaults and
// reproduces the naive engine: no pruning, sequential exploration.
//
// One deliberate difference from the historical recursive engine at any
// setting: a subtree none of whose completions has a finite, comparable
// cost (every trajectory +Inf or NaN) no longer aborts the whole search —
// the engine keeps the best trajectory from the remaining candidates and
// errors only when no trajectory anywhere has finite cost. The old
// behavior turned one degenerate branch into a controller-wide failure
// even when other branches held perfectly good decisions.
type Options struct {
	// InfeasiblePenalty is added to the stage cost of states failing
	// Model.Feasible. Default 1e12; it must dwarf any legitimate cost so
	// feasible trajectories always win when they exist, while the search
	// still returns a least-bad action under unavoidable infeasibility.
	InfeasiblePenalty float64

	// NonNegativeCosts declares that Model.Cost never returns a negative
	// value (the infeasible penalty is always positive, so it never
	// breaks the contract). Under this contract the accumulated cost of
	// a partial trajectory is a lower bound on every completion, and the
	// engine branch-and-bound prunes partial trajectories that already
	// meet the incumbent best: the selected trajectory, its cost and its
	// feasibility are bit-identical to the unpruned search — a pruned
	// trajectory could at best tie, and ties never displace the
	// incumbent under the first-best-in-candidate-order rule — but
	// Result.Explored shrinks. Setting this with a model that can return
	// negative stage costs voids the equivalence guarantee.
	//
	// Error surfacing is best-effort under pruning: a subtree that
	// cannot improve the incumbent is skipped without calling
	// Model.Inputs (or the neighbourhood function) on its states, so an
	// ErrNoInputs that the naive search would have hit deep inside such
	// a subtree may not surface — and with Parallelism > 1, whether it
	// surfaces can depend on when other workers publish the shared
	// bound. The bit-identical guarantee covers the returned decision;
	// models should not rely on the search to probe states that cannot
	// win.
	NonNegativeCosts bool

	// Parallelism bounds the workers that fan out the level-0 candidate
	// subtrees; values <= 1 run the classic sequential walk. Workers
	// share the incumbent cost through an atomic bound (pruning requires
	// NonNegativeCosts) and merge per-worker bests in candidate order,
	// so the decision is bit-identical at any setting. Explored is
	// deterministic at <= 1; with more workers it depends on how early
	// each worker publishes its incumbent and may vary run to run.
	// Unlike the application-level Parallelism knobs, 0 here means
	// sequential, not one-per-CPU: the search is usually nested inside
	// outer worker pools that already own the CPUs, so parallel search
	// must be an explicit choice.
	Parallelism int

	// MaxExplored caps the state evaluations one search may perform — the
	// deterministic analogue of a wall-clock decision deadline,
	// denominated in the paper's own §4.3 overhead metric so the trip
	// point is identical on every machine and every run. A search that
	// exhausts the budget aborts with ErrBudget; callers fall back to
	// safe settings for the tick and retry next period. 0 = unlimited.
	// A positive budget forces the sequential walk (Parallelism is
	// ignored): with parallel walkers the explored count at the trip
	// point would depend on scheduling, breaking reproducibility.
	MaxExplored int
}

func (o Options) penalty() float64 {
	if o.InfeasiblePenalty <= 0 {
		return 1e12
	}
	return o.InfeasiblePenalty
}

// Result is the outcome of a lookahead search.
type Result[S, U any] struct {
	// Inputs is the best input sequence found, one entry per horizon
	// step; Inputs[0] is the action to apply now.
	Inputs []U
	// States is the nominal predicted state trajectory, aligned with
	// Inputs (States[q] results from applying Inputs[q]).
	States []S
	// Cost is the expected cumulative cost of the best trajectory.
	Cost float64
	// Explored counts state evaluations performed during the search —
	// the paper's controller-overhead metric (§4.3). Branch-and-bound
	// pruning (Options.NonNegativeCosts) lowers it without changing the
	// decision.
	Explored int
	// Feasible reports whether the entire nominal trajectory satisfies
	// the hard constraints.
	Feasible bool
}

// ErrNoInputs is returned when the model offers no admissible inputs at
// some state the search must expand.
var ErrNoInputs = errors.New("llc: model returned no admissible inputs")

// ErrBudget is returned when a search exhausts Options.MaxExplored (or a
// controller its configured explored-state budget) before completing.
// Callers treat it as the decision deadline expiring: apply deterministic
// fallback settings for this tick and search again next tick.
var ErrBudget = errors.New("llc: decision budget exhausted")

// Exhaustive runs the full tree search of §4.1: every admissible input
// sequence over the horizon is evaluated (or provably pruned — see
// Options.NonNegativeCosts). envs[q] holds the environment samples for
// horizon step q; the horizon is len(envs) and must be ≥ 1. With |U|
// inputs the naive search evaluates Σ_{q=1..N} |U|^q states, so keep
// horizons short — the paper uses N ≤ 3 with ≤ 10 inputs.
func Exhaustive[S, U any](m Model[S, U], x0 S, envs []([]Env), opt Options) (Result[S, U], error) {
	sr, err := NewSearcher(m, opt)
	if err != nil {
		return Result[S, U]{}, err
	}
	return sr.Exhaustive(x0, envs)
}

// Bounded runs the bounded neighbourhood search of §4.2: at each tree
// level the candidate inputs are neighbours(prev, state, level) — typically
// a small perturbation set around the previous decision, since environment
// parameters rarely change drastically within one sampling period. prev
// seeds the neighbourhood at level 0.
func Bounded[S, U any](m Model[S, U], x0 S, prev U, neighbours func(prev U, s S, level int) []U, envs []([]Env), opt Options) (Result[S, U], error) {
	sr, err := NewSearcher(m, opt)
	if err != nil {
		return Result[S, U]{}, err
	}
	return sr.Bounded(x0, prev, neighbours, envs)
}

func checkEnvs(envs []([]Env)) error {
	if len(envs) == 0 {
		return errors.New("llc: empty horizon")
	}
	for q, samples := range envs {
		if len(samples) == 0 {
			return fmt.Errorf("llc: horizon step %d has no environment samples", q)
		}
	}
	return nil
}

// nominal returns the sample that drives the state recursion at one
// horizon step: index ⌊len/2⌋ — the middle sample for odd counts, the
// upper of the two middle samples for even counts (pinned by tests; see
// the package doc).
func nominal(samples []Env) Env { return samples[len(samples)/2] }

// search carries the shared engine configuration for both strategies.
type search[S, U any] struct {
	m          Model[S, U]
	envs       []([]Env)
	opt        Options
	neighbours func(prev U, s S, level int) []U
	seed       U
}

// inputsAt returns the candidate inputs at one tree level: the bounded
// neighbourhood when one is installed, the model's full input set
// otherwise. A plain method (not a per-call closure) so reusing a
// Searcher allocates nothing.
func (s *search[S, U]) inputsAt(st S, level int, prev U) []U {
	if s.neighbours != nil {
		return s.neighbours(prev, st, level)
	}
	return s.m.Inputs(st)
}

// finish merges per-walker incumbents (and errors) in candidate order and
// assembles the Result exactly as the sequential walk would have.
func (s *search[S, U]) finish(walkers []*walker[S, U]) (Result[S, U], error) {
	var firstErr error
	errRoot := -1
	explored := 0
	var best *walker[S, U]
	for _, w := range walkers {
		explored += w.explored
		if w.err != nil && (errRoot < 0 || w.errRoot < errRoot) {
			firstErr, errRoot = w.err, w.errRoot
		}
		if !w.bestSet {
			continue
		}
		if best == nil || w.bestCost < best.bestCost ||
			(w.bestCost == best.bestCost && w.bestRoot < best.bestRoot) {
			best = w
		}
	}
	if firstErr != nil {
		return Result[S, U]{}, firstErr
	}
	if best == nil {
		return Result[S, U]{}, errors.New("llc: no finite-cost trajectory")
	}
	res := Result[S, U]{
		Inputs:   best.bestInputs,
		States:   best.bestStates,
		Cost:     best.bestCost,
		Explored: explored,
		Feasible: true,
	}
	for _, st := range res.States {
		if !s.m.Feasible(st) {
			res.Feasible = false
			break
		}
	}
	return res, nil
}

// frame is one level of the iterative DFS: the state it expands from and
// the candidate cursor.
type frame[S, U any] struct {
	x     S
	cands []U
	idx   int
}

// walker owns the preallocated buffers for one depth-first exploration of
// a subset of the level-0 candidates.
type walker[S, U any] struct {
	s  *search[S, U]
	x0 S

	roots  []U // all level-0 candidates (shared, read-only)
	first  int // first root index owned by this walker
	stride int // owned roots are first, first+stride, ...

	frames []frame[S, U] // per-level cursors, frames[0] unused for cands
	inputs []U           // current path: input chosen per level
	states []S           // current path: nominal successor per level
	stage  []float64     // current path: expected stage cost per level

	bestSet    bool
	bestCost   float64
	bestRoot   int // level-0 candidate index of the incumbent
	bestInputs []U
	bestStates []S

	explored int
	err      error
	errRoot  int // root index being explored when err was hit
}

// reset (re)arms the walker for one exploration: per-level buffers are
// reallocated only when the horizon changed, so a Searcher reusing its
// walkers performs no steady-state allocation.
func (w *walker[S, U]) reset(x0 S, roots []U, first, stride int) {
	if n := len(w.s.envs); len(w.frames) != n {
		w.frames = make([]frame[S, U], n)
		w.inputs = make([]U, n)
		w.states = make([]S, n)
		w.stage = make([]float64, n)
		w.bestInputs = make([]U, n)
		w.bestStates = make([]S, n)
	}
	w.x0 = x0
	w.roots = roots
	w.first = first
	w.stride = stride
	w.bestSet = false
	w.bestCost = math.Inf(1)
	w.bestRoot = 0
	w.explored = 0
	w.err = nil
	w.errRoot = 0
}

// load reads the shared bound as a float64.
func load(shared *atomic.Uint64) float64 { return math.Float64frombits(shared.Load()) }

// publish CAS-mins cost into the shared bound.
func publish(shared *atomic.Uint64, cost float64) {
	for {
		cur := shared.Load()
		if !(cost < math.Float64frombits(cur)) {
			return
		}
		if shared.CompareAndSwap(cur, math.Float64bits(cost)) {
			return
		}
	}
}

// run explores every owned root subtree depth-first. The expected stage
// cost of the node entered at each level is accumulated in stage[];
// trajectory costs are folded leaf-to-root (bound(), matching the original
// recursive engine's summation order exactly), and under the
// NonNegativeCosts contract the fold over the current prefix lower-bounds
// every completion, enabling incumbent pruning.
//
//hpm:hotpath
func (w *walker[S, U]) run(shared *atomic.Uint64) {
	s := w.s
	last := len(s.envs) - 1
	prune := s.opt.NonNegativeCosts
	penalty := s.opt.penalty()
	maxExplored := s.opt.MaxExplored
	for root := w.first; root < len(w.roots); root += w.stride {
		w.frames[0].x = w.x0
		lv := 0
		rootDone := false
		for !rootDone {
			f := &w.frames[lv]
			var u U
			if lv == 0 {
				// Level 0 holds exactly the single owned root; deeper
				// levels iterate their own candidate lists.
				u = w.roots[root]
			} else {
				if f.idx >= len(f.cands) {
					lv--
					if lv == 0 {
						rootDone = true
					}
					continue
				}
				u = f.cands[f.idx]
				f.idx++
			}

			// Expected stage cost over the uncertainty samples (§4.2):
			// each sample yields its own successor; the cost is their
			// average. The nominal sample drives the state recursion.
			samples := s.envs[lv]
			stage := 0.0
			for _, env := range samples {
				next := s.m.Step(f.x, u, env)
				w.explored++
				if maxExplored > 0 && w.explored > maxExplored {
					// Deterministic decision deadline: the budget is
					// denominated in explored states, so the trip point
					// is identical across runs and machines.
					w.err = ErrBudget
					w.errRoot = root
					return
				}
				c := s.m.Cost(next, u, env)
				if !s.m.Feasible(next) {
					c += penalty
				}
				stage += c
			}
			stage /= float64(len(samples))
			nominalNext := s.m.Step(f.x, u, nominal(samples))
			w.inputs[lv] = u
			w.states[lv] = nominalNext
			w.stage[lv] = stage

			b := w.bound(lv)
			if prune && (b >= w.bestCost || (shared != nil && b > load(shared))) {
				// Every completion costs at least b: it cannot strictly
				// beat the incumbent, and ties never displace it. The
				// strict > against the shared bound keeps equal-cost
				// trajectories from lower candidate indices alive so the
				// candidate-order merge stays bit-identical.
				if lv == 0 {
					rootDone = true
				}
				continue
			}
			if lv == last {
				// b is the exact leaf-to-root cost of the full path.
				if b < w.bestCost {
					w.bestSet = true
					w.bestCost = b
					w.bestRoot = root
					copy(w.bestInputs, w.inputs)
					copy(w.bestStates, w.states)
					if shared != nil {
						publish(shared, b)
					}
				}
				if lv == 0 {
					rootDone = true
				}
				continue
			}
			nf := &w.frames[lv+1]
			nf.x = nominalNext
			nf.cands = s.inputsAt(nominalNext, lv+1, u)
			nf.idx = 0
			if len(nf.cands) == 0 {
				w.err = fmt.Errorf("%w (level %d)", ErrNoInputs, lv+1)
				w.errRoot = root
				return
			}
			lv++
		}
	}
}

// bound folds stage[0..lv] leaf-to-root: at a leaf it is the exact
// trajectory cost in the same summation order the recursive engine used;
// at an interior level it lower-bounds every completion of the prefix
// under the NonNegativeCosts contract (appending non-negative suffix terms
// inside the fold can only round upward, never below the prefix fold).
//
//hpm:hotpath
func (w *walker[S, U]) bound(lv int) float64 {
	acc := w.stage[lv]
	for l := lv - 1; l >= 0; l-- {
		acc = w.stage[l] + acc
	}
	return acc
}
