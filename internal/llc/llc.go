// Package llc implements the paper's primary contribution as a reusable
// framework: limited-lookahead control (LLC) of switching hybrid systems —
// systems with finite input sets and hybrid discrete/continuous dynamics
// for which classical feedback maps cannot be derived (§2.3).
//
// At every control step the framework constructs the tree of future states
// reachable from the current state over a prediction horizon N, evaluates
// the cumulative cost of each trajectory against forecast environment
// inputs, and returns the first input of the best trajectory (Eq. 4). Two
// search strategies are provided, matching the paper's §3:
//
//   - Exhaustive: explore every admissible input sequence (used by the L0
//     controller, whose input set — processor frequencies — is small).
//   - Bounded: explore only a caller-defined neighbourhood of the previous
//     input at each tree level (used by the L1/L2 controllers, whose input
//     spaces are combinatorial).
//
// Uncertainty in environment forecasts is handled as in §4.2: each horizon
// step may carry several sampled environment vectors (e.g. λ̂−δ, λ̂, λ̂+δ)
// and the stage cost is the average over the samples, which damps
// controller chattering. The nominal (middle) sample drives the state
// recursion.
package llc

import (
	"errors"
	"fmt"
	"math"
)

// Env is one sampled environment vector ω̂(q) — e.g. {arrival rate,
// processing time} for the cluster case study. The framework treats it as
// opaque and passes it to the model.
type Env []float64

// Model describes a switching hybrid system to the controller: the state
// recursion x(k+1) = f(x(k), u(k), ω(k)) (Eq. 1), the admissible input set
// U(x), the stage cost J(x, u), and the hard operating constraints
// H(x) ≤ 0.
//
// S is the state type and U the input type; both are opaque to the
// framework.
type Model[S, U any] interface {
	// Step predicts the successor state from s under input u and
	// environment sample env.
	Step(s S, u U, env Env) S
	// Cost returns the stage cost of the transition into next (from
	// applying u in the predecessor), including any soft-constraint
	// slack penalties (§4.1).
	Cost(next S, u U, env Env) float64
	// Feasible reports whether s satisfies the hard constraints
	// H(s) ≤ 0. Infeasible states are heavily penalized, which keeps
	// trajectories inside the admissible region whenever one exists.
	Feasible(s S) bool
	// Inputs returns the admissible control set U(s) in state s. It must
	// be non-empty for every state the search can reach.
	Inputs(s S) []U
}

// Options tunes a search. The zero value selects sensible defaults.
type Options struct {
	// InfeasiblePenalty is added to the stage cost of states failing
	// Model.Feasible. Default 1e12; it must dwarf any legitimate cost so
	// feasible trajectories always win when they exist, while the search
	// still returns a least-bad action under unavoidable infeasibility.
	InfeasiblePenalty float64
}

func (o Options) penalty() float64 {
	if o.InfeasiblePenalty <= 0 {
		return 1e12
	}
	return o.InfeasiblePenalty
}

// Result is the outcome of a lookahead search.
type Result[S, U any] struct {
	// Inputs is the best input sequence found, one entry per horizon
	// step; Inputs[0] is the action to apply now.
	Inputs []U
	// States is the nominal predicted state trajectory, aligned with
	// Inputs (States[q] results from applying Inputs[q]).
	States []S
	// Cost is the expected cumulative cost of the best trajectory.
	Cost float64
	// Explored counts state evaluations performed during the search —
	// the paper's controller-overhead metric (§4.3).
	Explored int
	// Feasible reports whether the entire nominal trajectory satisfies
	// the hard constraints.
	Feasible bool
}

// ErrNoInputs is returned when the model offers no admissible inputs at
// some state the search must expand.
var ErrNoInputs = errors.New("llc: model returned no admissible inputs")

// Exhaustive runs the full tree search of §4.1: every admissible input
// sequence over the horizon is evaluated. envs[q] holds the environment
// samples for horizon step q; the horizon is len(envs) and must be ≥ 1.
// With |U| inputs the search evaluates Σ_{q=1..N} |U|^q states, so keep
// horizons short — the paper uses N ≤ 3 with ≤ 10 inputs.
func Exhaustive[S, U any](m Model[S, U], x0 S, envs []([]Env), opt Options) (Result[S, U], error) {
	if err := checkEnvs(envs); err != nil {
		return Result[S, U]{}, err
	}
	s := &search[S, U]{m: m, envs: envs, penalty: opt.penalty(), inputsAt: func(st S, _ int, _ U) []U {
		return m.Inputs(st)
	}}
	return s.run(x0)
}

// Bounded runs the bounded neighbourhood search of §4.2: at each tree
// level the candidate inputs are neighbours(prev, state, level) — typically
// a small perturbation set around the previous decision, since environment
// parameters rarely change drastically within one sampling period. prev
// seeds the neighbourhood at level 0.
func Bounded[S, U any](m Model[S, U], x0 S, prev U, neighbours func(prev U, s S, level int) []U, envs []([]Env), opt Options) (Result[S, U], error) {
	if err := checkEnvs(envs); err != nil {
		return Result[S, U]{}, err
	}
	if neighbours == nil {
		return Result[S, U]{}, errors.New("llc: nil neighbourhood function")
	}
	s := &search[S, U]{m: m, envs: envs, penalty: opt.penalty(), inputsAt: func(st S, level int, prevU U) []U {
		return neighbours(prevU, st, level)
	}, seeded: true, seed: prev}
	return s.run(x0)
}

func checkEnvs(envs []([]Env)) error {
	if len(envs) == 0 {
		return errors.New("llc: empty horizon")
	}
	for q, samples := range envs {
		if len(samples) == 0 {
			return fmt.Errorf("llc: horizon step %d has no environment samples", q)
		}
	}
	return nil
}

// search carries the shared recursion for both strategies.
type search[S, U any] struct {
	m        Model[S, U]
	envs     []([]Env)
	penalty  float64
	inputsAt func(s S, level int, prev U) []U
	seeded   bool
	seed     U
	explored int
}

func (s *search[S, U]) run(x0 S) (Result[S, U], error) {
	prev := s.seed
	best, err := s.expand(x0, prev, 0)
	if err != nil {
		return Result[S, U]{}, err
	}
	best.Explored = s.explored
	// Reverse the sequences accumulated leaf-to-root.
	reverse(best.Inputs)
	reverse(best.States)
	best.Feasible = true
	for _, st := range best.States {
		if !s.m.Feasible(st) {
			best.Feasible = false
			break
		}
	}
	return best, nil
}

// expand returns the best suffix trajectory from state x at the given
// tree level. Inputs/States in the result are ordered leaf-to-root; run
// reverses them once at the end.
func (s *search[S, U]) expand(x S, prev U, level int) (Result[S, U], error) {
	samples := s.envs[level]
	nominal := samples[len(samples)/2]
	candidates := s.inputsAt(x, level, prev)
	if len(candidates) == 0 {
		return Result[S, U]{}, fmt.Errorf("%w (level %d)", ErrNoInputs, level)
	}
	best := Result[S, U]{Cost: math.Inf(1)}
	found := false
	for _, u := range candidates {
		// Expected stage cost over the uncertainty samples (§4.2): each
		// sample yields its own successor; the cost is their average.
		stage := 0.0
		for _, env := range samples {
			next := s.m.Step(x, u, env)
			s.explored++
			c := s.m.Cost(next, u, env)
			if !s.m.Feasible(next) {
				c += s.penalty
			}
			stage += c
		}
		stage /= float64(len(samples))

		nominalNext := s.m.Step(x, u, nominal)
		total := stage
		var suffix Result[S, U]
		if level+1 < len(s.envs) {
			var err error
			suffix, err = s.expand(nominalNext, u, level+1)
			if err != nil {
				return Result[S, U]{}, err
			}
			total += suffix.Cost
		}
		if total < best.Cost {
			best.Cost = total
			best.Inputs = append(suffix.Inputs, u)
			best.States = append(suffix.States, nominalNext)
			found = true
		}
	}
	if !found {
		return Result[S, U]{}, fmt.Errorf("llc: no finite-cost trajectory at level %d", level)
	}
	return best, nil
}

func reverse[T any](xs []T) {
	for i, j := 0, len(xs)-1; i < j; i, j = i+1, j-1 {
		xs[i], xs[j] = xs[j], xs[i]
	}
}
