package llc

import "math"

// Weights are the user-defined weights Q, R, S of the norm-based operating
// cost of Eq. 3:
//
//	J(x, u) = ‖x − x*‖_Q + ‖u‖_R + ‖Δu‖_S
//
// Q prioritizes reaching the set-point, R the magnitude of the control
// input (e.g. power), and S the transient cost of changing inputs (e.g.
// switching a computer on). Any weight may be zero to drop its term.
type Weights struct {
	Q, R, S float64
}

// Cost evaluates Eq. 3 on scalar norms supplied by the caller: stateDev is
// ‖x − x*‖, inputMag is ‖u‖, and inputDelta is ‖Δu‖ = ‖u(k) − u(k−1)‖.
func (w Weights) Cost(stateDev, inputMag, inputDelta float64) float64 {
	return w.Q*math.Abs(stateDev) + w.R*math.Abs(inputMag) + w.S*math.Abs(inputDelta)
}

// Slack returns the soft-constraint slack variable of §4.1: zero while
// val ≤ limit and the violation magnitude otherwise. Penalizing the slack
// heavily in the cost gives the controller "a strong incentive to keep
// [it] at zero if possible" without making the optimization infeasible.
func Slack(val, limit float64) float64 {
	if val <= limit {
		return 0
	}
	return val - limit
}

// PrunePartialMean is the branch-and-bound predicate for flat
// candidate × sample loops whose score is the mean per-sample cost (the
// L1/L2 controllers and the centralized baseline): it reports whether a
// candidate can be abandoned after accumulating sum over the first si+1
// of n samples. With non-negative per-sample costs the partial mean
// sum/n lower-bounds the final mean (and any non-negative terms added
// afterwards), so once it meets the incumbent the candidate can at best
// tie — and ties never displace the incumbent under the
// first-best-in-candidate-order rule, keeping the selected candidate
// bit-identical to the unpruned loop. The check is skipped on the last
// sample, where abandoning saves nothing.
func PrunePartialMean(sum float64, n, si int, incumbent float64) bool {
	return si+1 < n && sum/float64(n) >= incumbent
}
