package llc

import "math"

// Weights are the user-defined weights Q, R, S of the norm-based operating
// cost of Eq. 3:
//
//	J(x, u) = ‖x − x*‖_Q + ‖u‖_R + ‖Δu‖_S
//
// Q prioritizes reaching the set-point, R the magnitude of the control
// input (e.g. power), and S the transient cost of changing inputs (e.g.
// switching a computer on). Any weight may be zero to drop its term.
type Weights struct {
	Q, R, S float64
}

// Cost evaluates Eq. 3 on scalar norms supplied by the caller: stateDev is
// ‖x − x*‖, inputMag is ‖u‖, and inputDelta is ‖Δu‖ = ‖u(k) − u(k−1)‖.
func (w Weights) Cost(stateDev, inputMag, inputDelta float64) float64 {
	return w.Q*math.Abs(stateDev) + w.R*math.Abs(inputMag) + w.S*math.Abs(inputDelta)
}

// Slack returns the soft-constraint slack variable of §4.1: zero while
// val ≤ limit and the violation magnitude otherwise. Penalizing the slack
// heavily in the cost gives the controller "a strong incentive to keep
// [it] at zero if possible" without making the optimization infeasible.
func Slack(val, limit float64) float64 {
	if val <= limit {
		return 0
	}
	return val - limit
}
