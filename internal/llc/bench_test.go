package llc_test

// Benchmarks of the branch-and-bound LLC engine on the paper's §4.3
// configuration (computer C4 under the default L0 settings: horizon 3,
// three uncertainty samples per step, eight operating frequencies).
// Run with -cpu 1,4,8: the parallel variant follows GOMAXPROCS, so the
// -cpu 1 column is the sequential engine and the others its speedup.
//
// Custom metric: explored/decide — states evaluated per decision, the
// paper's §4.3 controller-overhead metric. Pruned variants must report
// fewer than the naive Σ|U|^q count at an identical decision.

import (
	"math"
	"runtime"
	"testing"

	"hierctl/internal/cluster"
	"hierctl/internal/controller"
	"hierctl/internal/llc"
	"hierctl/internal/queue"
)

func benchModel(b *testing.B) llc.Model[queue.State, int] {
	b.Helper()
	spec, err := cluster.StandardComputer(3, "C4")
	if err != nil {
		b.Fatal(err)
	}
	m, err := controller.NewL0Model(controller.DefaultL0Config(), spec)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

func benchEnvs(d int) []([]llc.Env) {
	const cHat, delta = 0.0175, 8.0
	lam := 40 + 30*math.Sin(float64(d)/9)
	envs := make([]([]llc.Env), 3)
	for q := range envs {
		l := lam + 2*float64(q)
		lo := math.Max(0, l-delta)
		envs[q] = []llc.Env{{lo, cHat}, {l, cHat}, {l + delta, cHat}}
	}
	return envs
}

func benchLLC(b *testing.B, opt llc.Options) {
	m := benchModel(b)
	explored := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := llc.Exhaustive[queue.State, int](m, queue.State{Q: float64((i * 7) % 200)}, benchEnvs(i), opt)
		if err != nil {
			b.Fatal(err)
		}
		explored += res.Explored
	}
	b.ReportMetric(float64(explored)/float64(b.N), "explored/decide")
}

// BenchmarkLLCNaive is the unpruned sequential engine — the original
// recursive search's exploration, Σ|U|^q states per decision.
func BenchmarkLLCNaive(b *testing.B) {
	benchLLC(b, llc.Options{})
}

// BenchmarkLLCPruned is the branch-and-bound engine (bit-identical
// decisions, fewer explored states).
func BenchmarkLLCPruned(b *testing.B) {
	benchLLC(b, llc.Options{NonNegativeCosts: true})
}

// BenchmarkLLCPrunedParallel additionally fans the level-0 candidates
// across one worker per CPU (per the -cpu flag).
func BenchmarkLLCPrunedParallel(b *testing.B) {
	benchLLC(b, llc.Options{NonNegativeCosts: true, Parallelism: runtime.GOMAXPROCS(0)})
}

// BenchmarkLLCBoundedPruned measures the bounded neighbourhood strategy
// (the L1/L2-style search) under pruning.
func BenchmarkLLCBoundedPruned(b *testing.B) {
	m := benchModel(b)
	neighbours := func(prev int, _ queue.State, _ int) []int {
		out := make([]int, 0, 3)
		for _, u := range []int{prev - 1, prev, prev + 1} {
			if u >= 0 && u < 8 {
				out = append(out, u)
			}
		}
		return out
	}
	explored := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := llc.Bounded[queue.State, int](m, queue.State{Q: float64((i * 7) % 200)}, 4, neighbours, benchEnvs(i), llc.Options{NonNegativeCosts: true})
		if err != nil {
			b.Fatal(err)
		}
		explored += res.Explored
	}
	b.ReportMetric(float64(explored)/float64(b.N), "explored/decide")
}
