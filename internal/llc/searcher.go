package llc

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"hierctl/internal/par"
)

// Searcher is a reusable lookahead engine: it owns the walkers and their
// per-level buffers, so driving many receding-horizon decisions through
// one Searcher performs no steady-state allocation (the buffers are
// reallocated only when the horizon length changes). The one-shot
// Exhaustive/Bounded package functions construct a fresh Searcher per
// call; controllers that decide every period hold one instead — the L0
// controller and the receding-horizon Controller both do.
//
// A Searcher is NOT safe for concurrent use: its buffers are shared
// across calls (Options.Parallelism > 1 still fans one call's level-0
// candidates across goroutines internally). Result.Inputs and
// Result.States returned by a Searcher alias those reused buffers and are
// valid only until the next call on the same Searcher; copy them if
// retained. Construct with NewSearcher.
type Searcher[S, U any] struct {
	s    search[S, U]
	seq  *walker[S, U]   // sequential walker, reused across calls
	pool []*walker[S, U] // parallel walkers, reused across calls
	one  [1]*walker[S, U]
}

// NewSearcher returns a reusable engine over the model with fixed search
// options.
func NewSearcher[S, U any](m Model[S, U], opt Options) (*Searcher[S, U], error) {
	if m == nil {
		return nil, errors.New("llc: nil model")
	}
	sr := &Searcher[S, U]{}
	sr.s = search[S, U]{m: m, opt: opt}
	return sr, nil
}

// SetMaxExplored replaces the decision budget for subsequent searches
// (see Options.MaxExplored); n <= 0 removes it. It lets a runtime chaos
// plan squeeze the budget of an already-constructed controller.
func (sr *Searcher[S, U]) SetMaxExplored(n int) {
	if n < 0 {
		n = 0
	}
	sr.s.opt.MaxExplored = n
}

// Exhaustive runs the full tree search of §4.1 from x0 (see the package
// function of the same name for semantics).
func (sr *Searcher[S, U]) Exhaustive(x0 S, envs []([]Env)) (Result[S, U], error) {
	if err := checkEnvs(envs); err != nil {
		return Result[S, U]{}, err
	}
	sr.s.envs = envs
	sr.s.neighbours = nil
	var zero U
	sr.s.seed = zero
	return sr.run(x0)
}

// Bounded runs the bounded neighbourhood search of §4.2 from x0, seeding
// the level-0 neighbourhood with prev (see the package function of the
// same name for semantics).
func (sr *Searcher[S, U]) Bounded(x0 S, prev U, neighbours func(prev U, s S, level int) []U, envs []([]Env)) (Result[S, U], error) {
	if err := checkEnvs(envs); err != nil {
		return Result[S, U]{}, err
	}
	if neighbours == nil {
		return Result[S, U]{}, errors.New("llc: nil neighbourhood function")
	}
	sr.s.envs = envs
	sr.s.neighbours = neighbours
	sr.s.seed = prev
	return sr.run(x0)
}

// run fans the level-0 candidates across the reused walkers and merges
// their results in candidate order.
//
//hpm:hotpath
func (sr *Searcher[S, U]) run(x0 S) (Result[S, U], error) {
	s := &sr.s
	roots := s.inputsAt(x0, 0, s.seed)
	if len(roots) == 0 {
		return Result[S, U]{}, fmt.Errorf("%w (level 0)", ErrNoInputs)
	}
	workers := s.opt.Parallelism
	if workers > len(roots) {
		workers = len(roots)
	}
	if s.opt.MaxExplored > 0 {
		// A decision budget demands a deterministic trip point; parallel
		// walkers would make the explored count at the trip depend on
		// scheduling (see Options.MaxExplored).
		workers = 1
	}
	if workers <= 1 {
		if sr.seq == nil {
			sr.seq = &walker[S, U]{s: s} //hpm:alloc one-time sequential-walker warm-up; reused across decisions
		}
		sr.seq.reset(x0, roots, 0, 1)
		sr.seq.run(nil)
		sr.one[0] = sr.seq
		return s.finish(sr.one[:])
	}

	// Shared incumbent bound: float64 bits in an atomic. Non-negative
	// IEEE floats order identically to their bit patterns, and the bound
	// only ever holds +Inf or a published trajectory cost, so a simple
	// CAS-min over bits implements min-of-floats.
	var shared atomic.Uint64
	shared.Store(math.Float64bits(math.Inf(1)))
	var sharedPtr *atomic.Uint64
	if s.opt.NonNegativeCosts {
		sharedPtr = &shared
	}
	for len(sr.pool) < workers {
		sr.pool = append(sr.pool, &walker[S, U]{s: s}) //hpm:alloc pool warm-up to the configured parallelism; reused across decisions
	}
	walkers := sr.pool[:workers]
	// Static stride partition: worker w owns roots w, w+W, w+2W, ... so
	// each walker sees strictly increasing candidate indices and the
	// merge can restore the sequential first-best-in-order rule.
	_ = par.For(workers, workers, func(w int) error { //hpm:alloc fan-out closure; the parallel path trades a per-call alloc for wall-clock
		walkers[w].reset(x0, roots, w, workers)
		walkers[w].run(sharedPtr)
		return nil
	})
	return s.finish(walkers)
}
