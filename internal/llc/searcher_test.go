package llc

// Searcher reuse pins: a Searcher driven across many decisions must answer
// exactly like a fresh search per call, and its warm steady-state decide
// must not allocate (the zero-allocation half of the §4.3 overhead story).

import (
	"math"
	"math/rand"
	"testing"
)

// reusedVsFresh drives one Searcher and per-call fresh searches over the
// same decision sequence and requires identical results.
func TestSearcherReuseMatchesFreshSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, opt := range []Options{
		{},
		{NonNegativeCosts: true},
		{NonNegativeCosts: true, Parallelism: 3},
	} {
		m := scalarModel{target: 5, inputs: []int{-2, -1, 0, 1, 2}, inputWeight: 0.01}
		sr, err := NewSearcher[float64, int](m, opt)
		if err != nil {
			t.Fatal(err)
		}
		for d := 0; d < 120; d++ {
			// Vary the horizon occasionally so buffer regrowth is covered.
			h := 2 + d%2
			envs := make([]([]Env), h)
			for q := range envs {
				w := math.Round(rng.Float64()*4 - 2)
				envs[q] = []Env{{w - 1}, {w}, {w + 1}}
			}
			x0 := rng.Float64()*20 - 10
			got, err := sr.Exhaustive(x0, envs)
			if err != nil {
				t.Fatal(err)
			}
			want, err := Exhaustive[float64, int](m, x0, envs, opt)
			if err != nil {
				t.Fatal(err)
			}
			if got.Cost != want.Cost || got.Feasible != want.Feasible {
				t.Fatalf("decision %d (opt %+v): cost/feasible %v/%v, want %v/%v",
					d, opt, got.Cost, got.Feasible, want.Cost, want.Feasible)
			}
			for i := range want.Inputs {
				if got.Inputs[i] != want.Inputs[i] {
					t.Fatalf("decision %d (opt %+v): inputs %v, want %v", d, opt, got.Inputs, want.Inputs)
				}
			}
			if opt.Parallelism <= 1 && got.Explored != want.Explored {
				t.Fatalf("decision %d (opt %+v): explored %d, want %d", d, opt, got.Explored, want.Explored)
			}
		}
	}
}

func TestSearcherBoundedReuseMatchesFreshSearch(t *testing.T) {
	m := scalarModel{target: 0, inputs: []int{-3, -2, -1, 0, 1, 2, 3}, inputWeight: 0.05}
	neighbours := func(prev int, _ float64, _ int) []int {
		return []int{prev - 1, prev, prev + 1}
	}
	opt := Options{NonNegativeCosts: true}
	sr, err := NewSearcher[float64, int](m, opt)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0
	x := 7.0
	for d := 0; d < 60; d++ {
		envs := nominalEnvs(3, math.Sin(float64(d)/5))
		got, err := sr.Bounded(x, prev, neighbours, envs)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Bounded[float64, int](m, x, prev, neighbours, envs, opt)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cost != want.Cost || got.Inputs[0] != want.Inputs[0] || got.Explored != want.Explored {
			t.Fatalf("decision %d: (%v, %d, %d) vs fresh (%v, %d, %d)",
				d, got.Cost, got.Inputs[0], got.Explored, want.Cost, want.Inputs[0], want.Explored)
		}
		prev = got.Inputs[0]
		x = m.Step(x, prev, envs[0][0])
	}
}

// TestSearcherWarmDecideZeroAlloc pins a warm sequential Searcher decide
// at zero allocations per call: the walker buffers, candidate cursors and
// result slices are all reused.
func TestSearcherWarmDecideZeroAlloc(t *testing.T) {
	m := scalarModel{target: 5, inputs: []int{-2, -1, 0, 1, 2}, inputWeight: 0.01}
	sr, err := NewSearcher[float64, int](m, Options{NonNegativeCosts: true})
	if err != nil {
		t.Fatal(err)
	}
	envs := make([]([]Env), 3)
	store := make([]Env, 9)
	backing := make([]float64, 9)
	for q := range envs {
		for s := 0; s < 3; s++ {
			store[q*3+s] = backing[q*3+s : q*3+s+1]
		}
		envs[q] = store[q*3 : q*3+3]
	}
	setEnvs := func(d int) {
		for q := 0; q < 3; q++ {
			w := math.Round(3 * math.Sin(float64(d)/7))
			backing[q*3] = w - 1
			backing[q*3+1] = w
			backing[q*3+2] = w + 1
		}
	}
	// Warm up: buffer growth happens on the first calls.
	for d := 0; d < 10; d++ {
		setEnvs(d)
		if _, err := sr.Exhaustive(float64(d%7), envs); err != nil {
			t.Fatal(err)
		}
	}
	d := 0
	allocs := testing.AllocsPerRun(200, func() {
		setEnvs(d)
		d++
		if _, err := sr.Exhaustive(float64(d%7), envs); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm Searcher.Exhaustive allocated %v/op, want 0", allocs)
	}
}
