package llc

import (
	"errors"
	"fmt"
)

// Controller packages a model, a search strategy, and the receding-horizon
// protocol of §2.3 into a reusable object: at every step it runs the
// lookahead from the current state against the supplied environment
// forecasts, applies the first input of the best trajectory, and remembers
// it so bounded searches can seed their neighbourhoods. Construct with
// NewController.
type Controller[S, U any] struct {
	// searcher owns the walkers and their per-level buffers, reused
	// across steps so the steady-state receding-horizon loop does not
	// allocate.
	searcher *Searcher[S, U]

	// neighbours enables bounded search when non-nil.
	neighbours func(prev U, s S, level int) []U
	prev       U
	hasPrev    bool

	steps    int
	explored int
}

// NewController returns a receding-horizon controller using exhaustive
// search over Model.Inputs.
func NewController[S, U any](m Model[S, U], opts Options) (*Controller[S, U], error) {
	sr, err := NewSearcher(m, opts)
	if err != nil {
		return nil, err
	}
	return &Controller[S, U]{searcher: sr}, nil
}

// NewBoundedController returns a receding-horizon controller using bounded
// neighbourhood search seeded from the previous applied input (seed for
// the very first step).
func NewBoundedController[S, U any](m Model[S, U], seed U, neighbours func(prev U, s S, level int) []U, opts Options) (*Controller[S, U], error) {
	sr, err := NewSearcher(m, opts)
	if err != nil {
		return nil, err
	}
	if neighbours == nil {
		return nil, errors.New("llc: nil neighbourhood function")
	}
	return &Controller[S, U]{searcher: sr, neighbours: neighbours, prev: seed, hasPrev: true}, nil
}

// Step runs one receding-horizon iteration from state x against the
// environment forecasts (one sample set per horizon level) and returns the
// input to apply now along with the full search result. Result.Inputs and
// Result.States alias the controller's reused search buffers and are valid
// only until the next Step; copy them if retained.
func (c *Controller[S, U]) Step(x S, envs []([]Env)) (U, Result[S, U], error) {
	var res Result[S, U]
	var err error
	if c.neighbours != nil {
		res, err = c.searcher.Bounded(x, c.prev, c.neighbours, envs)
	} else {
		res, err = c.searcher.Exhaustive(x, envs)
	}
	if err != nil {
		var zero U
		return zero, Result[S, U]{}, fmt.Errorf("llc: step %d: %w", c.steps, err)
	}
	c.prev = res.Inputs[0]
	c.hasPrev = true
	c.steps++
	c.explored += res.Explored
	return res.Inputs[0], res, nil
}

// Last returns the most recently applied input and whether one exists.
func (c *Controller[S, U]) Last() (U, bool) { return c.prev, c.hasPrev }

// Steps returns the number of receding-horizon iterations performed.
func (c *Controller[S, U]) Steps() int { return c.steps }

// Explored returns the cumulative states examined across all steps.
func (c *Controller[S, U]) Explored() int { return c.explored }
