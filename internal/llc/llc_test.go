package llc

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

// scalarModel is a toy switching hybrid system for tests: the state chases
// a target under integer inputs while disturbed by the environment.
//
//	x' = x + u − env[0]
//	J  = |x' − target| + inputWeight·|u|
type scalarModel struct {
	target      float64
	inputs      []int
	inputWeight float64
	feasibleMax float64 // states above this are infeasible; 0 = unbounded
}

func (m scalarModel) Step(x float64, u int, env Env) float64 { return x + float64(u) - env[0] }
func (m scalarModel) Cost(next float64, u int, env Env) float64 {
	return math.Abs(next-m.target) + m.inputWeight*math.Abs(float64(u))
}
func (m scalarModel) Feasible(x float64) bool {
	return m.feasibleMax == 0 || x <= m.feasibleMax
}
func (m scalarModel) Inputs(x float64) []int { return m.inputs }

var _ Model[float64, int] = scalarModel{}

func nominalEnvs(h int, w float64) []([]Env) {
	envs := make([]([]Env), h)
	for i := range envs {
		envs[i] = []Env{{w}}
	}
	return envs
}

func TestExhaustivePicksCostMinimizingInput(t *testing.T) {
	m := scalarModel{target: 5, inputs: []int{-1, 0, 1, 2}, inputWeight: 0.01}
	res, err := Exhaustive[float64, int](m, 0, nominalEnvs(3, 0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Fastest approach to 5 within 3 steps: apply +2 every step.
	if res.Inputs[0] != 2 {
		t.Errorf("Inputs[0] = %d, want 2", res.Inputs[0])
	}
	if len(res.Inputs) != 3 || len(res.States) != 3 {
		t.Errorf("trajectory lengths = %d/%d, want 3/3", len(res.Inputs), len(res.States))
	}
	if !res.Feasible {
		t.Error("trajectory should be feasible")
	}
}

func TestExhaustiveExploredCount(t *testing.T) {
	m := scalarModel{target: 0, inputs: []int{-1, 0, 1}, inputWeight: 0}
	// One env sample per step: explored = Σ_{q=1..N} |U|^q = 3+9+27.
	res, err := Exhaustive[float64, int](m, 0, nominalEnvs(3, 0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if want := 3 + 9 + 27; res.Explored != want {
		t.Errorf("Explored = %d, want %d", res.Explored, want)
	}
	// With 3 samples per step, each expansion costs 3 evaluations plus
	// the recursion still follows only the nominal branch.
	envs := make([]([]Env), 2)
	for i := range envs {
		envs[i] = []Env{{-1}, {0}, {1}}
	}
	res, err = Exhaustive[float64, int](m, 0, envs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if want := 3 * (3 + 9); res.Explored != want {
		t.Errorf("Explored with samples = %d, want %d", res.Explored, want)
	}
}

func TestExhaustiveCompensatesForecastDisturbance(t *testing.T) {
	// Environment removes 2 per step; holding the set-point requires
	// u = +2 even though the state starts at the target.
	m := scalarModel{target: 0, inputs: []int{0, 1, 2}, inputWeight: 0.001}
	res, err := Exhaustive[float64, int](m, 0, nominalEnvs(2, 2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inputs[0] != 2 {
		t.Errorf("Inputs[0] = %d, want 2 (compensate disturbance)", res.Inputs[0])
	}
}

func TestInfeasiblePenaltySteersAway(t *testing.T) {
	// Greedy cost favours +2 (overshoot then settle), but states above
	// 1.5 are infeasible, so the controller must go slowly.
	m := scalarModel{target: 10, inputs: []int{0, 1, 2}, inputWeight: 0, feasibleMax: 1.5}
	res, err := Exhaustive[float64, int](m, 0, nominalEnvs(2, 0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inputs[0] != 1 {
		t.Errorf("Inputs[0] = %d, want 1 (avoid infeasible region)", res.Inputs[0])
	}
	if !res.Feasible {
		t.Error("chosen trajectory should be feasible")
	}
}

func TestInfeasibleEverywhereStillDecides(t *testing.T) {
	m := scalarModel{target: 0, inputs: []int{1, 2}, inputWeight: 0, feasibleMax: -100}
	res, err := Exhaustive[float64, int](m, 0, nominalEnvs(1, 0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Error("Feasible = true, want false")
	}
	// Least-bad action: +1 lands closer to target.
	if res.Inputs[0] != 1 {
		t.Errorf("Inputs[0] = %d, want 1", res.Inputs[0])
	}
	if res.Cost < 1e12 {
		t.Errorf("Cost = %v, want penalty-dominated", res.Cost)
	}
}

func TestUncertaintySamplesChangeDecision(t *testing.T) {
	// Asymmetric-risk system: cost explodes when the state goes negative.
	// Nominal forecast says env=0 so u=0 holds x at 0 (cost 0); but the
	// uncertainty band includes env=+2 which would drive x' to −2. The
	// sampled expectation prefers the hedge u=1.
	m := asymmetricModel{}
	nominal := []([]Env){{{0}}}
	res, err := Exhaustive[float64, int](m, 0, nominal, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inputs[0] != 0 {
		t.Fatalf("nominal decision = %d, want 0", res.Inputs[0])
	}
	banded := []([]Env){{{-2}, {0}, {2}}}
	res, err = Exhaustive[float64, int](m, 0, banded, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inputs[0] != 1 {
		t.Errorf("banded decision = %d, want 1 (hedge against band)", res.Inputs[0])
	}
}

// asymmetricModel penalizes negative states 100× harder than positive ones.
type asymmetricModel struct{}

func (asymmetricModel) Step(x float64, u int, env Env) float64 { return x + float64(u) - env[0] }
func (asymmetricModel) Cost(next float64, u int, env Env) float64 {
	if next < 0 {
		return 100 * -next
	}
	return next
}
func (asymmetricModel) Feasible(float64) bool { return true }
func (asymmetricModel) Inputs(float64) []int  { return []int{0, 1} }

func TestBoundedRespectsNeighbourhood(t *testing.T) {
	m := scalarModel{target: 100, inputs: []int{-5, 0, 5}, inputWeight: 0}
	// Neighbourhood only allows moving ±1 from the previous input.
	neighbours := func(prev int, _ float64, _ int) []int {
		return []int{prev - 1, prev, prev + 1}
	}
	res, err := Bounded[float64, int](m, 0, 0, neighbours, nominalEnvs(3, 0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Level 0 candidates are {-1, 0, 1}; chasing 100 picks +1, then +2, +3.
	want := []int{1, 2, 3}
	for i, w := range want {
		if res.Inputs[i] != w {
			t.Errorf("Inputs[%d] = %d, want %d", i, res.Inputs[i], w)
		}
	}
}

func TestBoundedNeverBeatsExhaustive(t *testing.T) {
	// With neighbourhoods ⊆ the full input set, bounded search cost is
	// always ≥ exhaustive cost on the same model and horizon.
	f := func(x0Seed int8, wSeed uint8) bool {
		m := scalarModel{target: 3, inputs: []int{-2, -1, 0, 1, 2}, inputWeight: 0.1}
		x0 := float64(x0Seed % 10)
		w := float64(wSeed%5) - 2
		envs := nominalEnvs(2, w)
		ex, err := Exhaustive[float64, int](m, x0, envs, Options{})
		if err != nil {
			return false
		}
		neighbours := func(prev int, _ float64, _ int) []int {
			out := []int{}
			for _, u := range []int{prev - 1, prev, prev + 1} {
				if u >= -2 && u <= 2 {
					out = append(out, u)
				}
			}
			return out
		}
		bd, err := Bounded[float64, int](m, x0, 0, neighbours, envs, Options{})
		if err != nil {
			return false
		}
		return bd.Cost >= ex.Cost-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestErrorCases(t *testing.T) {
	m := scalarModel{inputs: []int{0}}
	if _, err := Exhaustive[float64, int](m, 0, nil, Options{}); err == nil {
		t.Error("empty horizon: want error")
	}
	if _, err := Exhaustive[float64, int](m, 0, []([]Env){{}}, Options{}); err == nil {
		t.Error("empty sample set: want error")
	}
	empty := scalarModel{inputs: nil}
	_, err := Exhaustive[float64, int](empty, 0, nominalEnvs(1, 0), Options{})
	if !errors.Is(err, ErrNoInputs) {
		t.Errorf("no inputs: err = %v, want ErrNoInputs", err)
	}
	if _, err := Bounded[float64, int](m, 0, 0, nil, nominalEnvs(1, 0), Options{}); err == nil {
		t.Error("nil neighbourhood: want error")
	}
}

func TestLongerHorizonNeverWorseOnDeterministicModel(t *testing.T) {
	// On a deterministic model, per-step average cost with a longer
	// horizon should not be worse for reaching a fixed target.
	m := scalarModel{target: 4, inputs: []int{0, 1, 2}, inputWeight: 0}
	short, err := Exhaustive[float64, int](m, 0, nominalEnvs(1, 0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	long, err := Exhaustive[float64, int](m, 0, nominalEnvs(3, 0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// First action should be identical here (greedy +2), and the longer
	// horizon must see at least the short horizon's first-stage cost.
	if short.Inputs[0] != long.Inputs[0] {
		t.Errorf("first actions differ: %d vs %d", short.Inputs[0], long.Inputs[0])
	}
}

func TestWeightsCost(t *testing.T) {
	w := Weights{Q: 100, R: 1, S: 8}
	got := w.Cost(0.5, 2, 1)
	if want := 100*0.5 + 1*2 + 8*1; got != want {
		t.Errorf("Cost = %v, want %v", got, want)
	}
	// Absolute values are taken.
	if w.Cost(-0.5, -2, -1) != got {
		t.Error("Cost not symmetric in sign")
	}
	zero := Weights{}
	if zero.Cost(1, 1, 1) != 0 {
		t.Error("zero weights should cost 0")
	}
}

func TestSlack(t *testing.T) {
	if got := Slack(3, 4); got != 0 {
		t.Errorf("Slack(3,4) = %v, want 0", got)
	}
	if got := Slack(4, 4); got != 0 {
		t.Errorf("Slack(4,4) = %v, want 0", got)
	}
	if got := Slack(6.5, 4); got != 2.5 {
		t.Errorf("Slack(6.5,4) = %v, want 2.5", got)
	}
}

func TestStatesAlignWithInputs(t *testing.T) {
	m := scalarModel{target: 2, inputs: []int{0, 1}, inputWeight: 0}
	res, err := Exhaustive[float64, int](m, 0, nominalEnvs(3, 0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	x := 0.0
	for q := range res.Inputs {
		x = m.Step(x, res.Inputs[q], Env{0})
		if res.States[q] != x {
			t.Errorf("States[%d] = %v, want %v", q, res.States[q], x)
		}
	}
}
