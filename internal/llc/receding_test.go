package llc

import (
	"math"
	"testing"
)

func TestControllerRecedingHorizonConverges(t *testing.T) {
	m := scalarModel{target: 10, inputs: []int{-2, -1, 0, 1, 2}, inputWeight: 0.01}
	ctl, err := NewController[float64, int](m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	x := 0.0
	for i := 0; i < 20; i++ {
		u, res, err := ctl.Step(x, nominalEnvs(3, 0))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Inputs) != 3 {
			t.Fatalf("horizon result has %d inputs", len(res.Inputs))
		}
		x = m.Step(x, u, Env{0})
	}
	if math.Abs(x-10) > 0.5 {
		t.Errorf("state after 20 receding steps = %v, want ≈10", x)
	}
	if ctl.Steps() != 20 {
		t.Errorf("Steps = %d, want 20", ctl.Steps())
	}
	if ctl.Explored() == 0 {
		t.Error("no exploration recorded")
	}
	if u, ok := ctl.Last(); !ok || u < -2 || u > 2 {
		t.Errorf("Last = %v, %v", u, ok)
	}
}

func TestControllerHoldsSetpointUnderDisturbance(t *testing.T) {
	m := scalarModel{target: 5, inputs: []int{0, 1, 2, 3}, inputWeight: 0.001}
	ctl, err := NewController[float64, int](m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	x := 5.0
	// Constant disturbance −2 per step, forecast correctly.
	for i := 0; i < 15; i++ {
		u, _, err := ctl.Step(x, nominalEnvs(2, 2))
		if err != nil {
			t.Fatal(err)
		}
		x = m.Step(x, u, Env{2})
	}
	if math.Abs(x-5) > 1.1 {
		t.Errorf("state under disturbance = %v, want ≈5", x)
	}
}

func TestBoundedControllerSeedsFromPrevious(t *testing.T) {
	m := scalarModel{target: 100, inputs: nil, inputWeight: 0}
	neighbours := func(prev int, _ float64, _ int) []int {
		return []int{prev - 1, prev, prev + 1}
	}
	ctl, err := NewBoundedController[float64, int](m, 0, neighbours, Options{})
	if err != nil {
		t.Fatal(err)
	}
	x := 0.0
	var lastU int
	for i := 0; i < 5; i++ {
		u, _, err := ctl.Step(x, nominalEnvs(1, 0))
		if err != nil {
			t.Fatal(err)
		}
		// Ratcheting: each step can move at most one from the previous.
		if i > 0 && abs(u-lastU) > 1 {
			t.Fatalf("step %d jumped from %d to %d", i, lastU, u)
		}
		lastU = u
		x = m.Step(x, u, Env{0})
	}
	if lastU != 5 {
		t.Errorf("after 5 ratcheting steps input = %d, want 5", lastU)
	}
}

func TestControllerConstructorValidation(t *testing.T) {
	if _, err := NewController[float64, int](nil, Options{}); err == nil {
		t.Error("nil model: want error")
	}
	if _, err := NewBoundedController[float64, int](nil, 0, nil, Options{}); err == nil {
		t.Error("nil model: want error")
	}
	m := scalarModel{inputs: []int{0}}
	if _, err := NewBoundedController[float64, int](m, 0, nil, Options{}); err == nil {
		t.Error("nil neighbours: want error")
	}
}

func TestControllerStepErrorPropagates(t *testing.T) {
	m := scalarModel{inputs: nil} // no admissible inputs
	ctl, err := NewController[float64, int](m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ctl.Step(0, nominalEnvs(1, 0)); err == nil {
		t.Error("no inputs: want error")
	}
	if _, ok := ctl.Last(); ok {
		t.Error("failed step must not record an input")
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
