package llc

import (
	"math"
	"math/rand"
	"testing"
)

// propModel is a randomized switching hybrid system with strictly positive,
// continuous stage costs (satisfying the NonNegativeCosts contract) whose
// cost surface is wrinkled by a sin term so that distinct trajectories
// essentially never collide in cost — the regime in which the branch-and-
// bound engine must be bit-identical to the naive recursive search.
type propModel struct {
	inputs      []int
	target      float64
	decay       float64
	costWeight  float64
	noiseWeight float64
	inputGain   float64
	feasibleMax float64 // 0 = unbounded
}

func (m propModel) Step(x float64, u int, env Env) float64 {
	return m.decay*x + m.inputGain*float64(u) - env[0]
}

func (m propModel) Cost(next float64, u int, env Env) float64 {
	return m.costWeight*math.Abs(next-m.target) +
		m.noiseWeight*(1.5+math.Sin(next*13.37+float64(u)*3.11+env[0]*0.71))
}

func (m propModel) Feasible(x float64) bool {
	return m.feasibleMax == 0 || x <= m.feasibleMax
}

func (m propModel) Inputs(float64) []int { return m.inputs }

var _ Model[float64, int] = propModel{}

func randomPropModel(rng *rand.Rand) propModel {
	n := 2 + rng.Intn(5)
	inputs := make([]int, n)
	for i := range inputs {
		inputs[i] = rng.Intn(9) - 4
	}
	m := propModel{
		inputs:      inputs,
		target:      rng.Float64()*10 - 5,
		decay:       0.5 + rng.Float64()*0.5,
		costWeight:  0.1 + rng.Float64()*3,
		noiseWeight: rng.Float64() * 2,
		inputGain:   0.5 + rng.Float64()*1.5,
	}
	if rng.Intn(3) == 0 {
		m.feasibleMax = rng.Float64() * 4
	}
	return m
}

func randomEnvs(rng *rand.Rand) []([]Env) {
	horizon := 1 + rng.Intn(4)
	envs := make([]([]Env), horizon)
	for q := range envs {
		samples := 1 + rng.Intn(4)
		envs[q] = make([]Env, samples)
		for i := range envs[q] {
			envs[q][i] = Env{rng.Float64()*6 - 3}
		}
	}
	return envs
}

func assertSameDecision(t *testing.T, label string, want, got Result[float64, int]) {
	t.Helper()
	if len(want.Inputs) != len(got.Inputs) {
		t.Fatalf("%s: horizon %d vs %d", label, len(want.Inputs), len(got.Inputs))
	}
	for q := range want.Inputs {
		if want.Inputs[q] != got.Inputs[q] {
			t.Fatalf("%s: Inputs[%d] = %d, want %d", label, q, got.Inputs[q], want.Inputs[q])
		}
		if want.States[q] != got.States[q] {
			t.Fatalf("%s: States[%d] = %v, want %v", label, q, got.States[q], want.States[q])
		}
	}
	if want.Cost != got.Cost {
		t.Fatalf("%s: Cost = %v, want %v (bit-identical)", label, got.Cost, want.Cost)
	}
	if want.Feasible != got.Feasible {
		t.Fatalf("%s: Feasible = %v, want %v", label, got.Feasible, want.Feasible)
	}
}

// TestPrunedParallelBitIdenticalToNaiveExhaustive is the tentpole pin:
// across randomized models, horizons, sample counts and worker counts, the
// branch-and-bound engine (pruned, pruned+parallel, parallel-only) returns
// the exact trajectory, cost and feasibility of the original recursive
// exhaustive search; engines without pruning also reproduce its exact
// Explored count.
func TestPrunedParallelBitIdenticalToNaiveExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		m := randomPropModel(rng)
		envs := randomEnvs(rng)
		x0 := rng.Float64()*10 - 5

		ref, err := referenceExhaustive[float64, int](m, x0, envs, Options{})
		if err != nil {
			t.Fatalf("trial %d: reference: %v", trial, err)
		}
		naive, err := Exhaustive[float64, int](m, x0, envs, Options{})
		if err != nil {
			t.Fatalf("trial %d: naive: %v", trial, err)
		}
		assertSameDecision(t, "naive", ref, naive)
		if naive.Explored != ref.Explored {
			t.Fatalf("trial %d: naive Explored = %d, want %d", trial, naive.Explored, ref.Explored)
		}

		pruned, err := Exhaustive[float64, int](m, x0, envs, Options{NonNegativeCosts: true})
		if err != nil {
			t.Fatalf("trial %d: pruned: %v", trial, err)
		}
		assertSameDecision(t, "pruned", ref, pruned)
		if pruned.Explored > ref.Explored {
			t.Fatalf("trial %d: pruned Explored = %d exceeds naive %d", trial, pruned.Explored, ref.Explored)
		}

		for _, workers := range []int{2, 3, 8} {
			par, err := Exhaustive[float64, int](m, x0, envs, Options{NonNegativeCosts: true, Parallelism: workers})
			if err != nil {
				t.Fatalf("trial %d: parallel(%d): %v", trial, workers, err)
			}
			assertSameDecision(t, "pruned-parallel", ref, par)
		}
		parOnly, err := Exhaustive[float64, int](m, x0, envs, Options{Parallelism: 3})
		if err != nil {
			t.Fatalf("trial %d: parallel-unpruned: %v", trial, err)
		}
		assertSameDecision(t, "parallel-unpruned", ref, parOnly)
		if parOnly.Explored != ref.Explored {
			t.Fatalf("trial %d: parallel-unpruned Explored = %d, want %d", trial, parOnly.Explored, ref.Explored)
		}
	}
}

// TestPrunedParallelBitIdenticalToNaiveBounded is the same pin for the
// bounded neighbourhood strategy used by the L1/L2-style searches.
func TestPrunedParallelBitIdenticalToNaiveBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	neighbours := func(prev int, _ float64, _ int) []int {
		return []int{prev - 1, prev, prev + 1}
	}
	for trial := 0; trial < 300; trial++ {
		m := randomPropModel(rng)
		envs := randomEnvs(rng)
		x0 := rng.Float64()*10 - 5
		seed := rng.Intn(5) - 2

		ref, err := referenceBounded[float64, int](m, x0, seed, neighbours, envs, Options{})
		if err != nil {
			t.Fatalf("trial %d: reference: %v", trial, err)
		}
		for _, opt := range []Options{
			{},
			{NonNegativeCosts: true},
			{NonNegativeCosts: true, Parallelism: 2},
			{NonNegativeCosts: true, Parallelism: 8},
			{Parallelism: 4},
		} {
			got, err := Bounded[float64, int](m, x0, seed, neighbours, envs, opt)
			if err != nil {
				t.Fatalf("trial %d (%+v): %v", trial, opt, err)
			}
			assertSameDecision(t, "bounded", ref, got)
			if !opt.NonNegativeCosts && got.Explored != ref.Explored {
				t.Fatalf("trial %d (%+v): Explored = %d, want %d", trial, opt, got.Explored, ref.Explored)
			}
			if opt.NonNegativeCosts && opt.Parallelism <= 1 && got.Explored > ref.Explored {
				t.Fatalf("trial %d: pruned Explored = %d exceeds naive %d", trial, got.Explored, ref.Explored)
			}
		}
	}
}

// TestPruningStrictlyReducesExplored asserts the §4.3 overhead win: on a
// configuration where an early candidate is optimal, branch-and-bound
// visits strictly fewer states than the naive search while returning the
// identical decision.
func TestPruningStrictlyReducesExplored(t *testing.T) {
	m := scalarModel{target: 0, inputs: []int{0, 10, -10}, inputWeight: 1}
	envs := nominalEnvs(3, 0)
	naive, err := Exhaustive[float64, int](m, 0, envs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if want := 3 + 9 + 27; naive.Explored != want {
		t.Fatalf("naive Explored = %d, want %d", naive.Explored, want)
	}
	pruned, err := Exhaustive[float64, int](m, 0, envs, Options{NonNegativeCosts: true})
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Explored >= naive.Explored {
		t.Errorf("pruned Explored = %d, want strictly below naive %d", pruned.Explored, naive.Explored)
	}
	if pruned.Inputs[0] != naive.Inputs[0] || pruned.Cost != naive.Cost {
		t.Errorf("pruned decision (%d, %v) diverged from naive (%d, %v)",
			pruned.Inputs[0], pruned.Cost, naive.Inputs[0], naive.Cost)
	}
}

// TestNominalSampleIsUpperMiddleForEvenCounts pins the documented nominal
// rule: the sample at index ⌊len/2⌋ drives the state recursion — the
// middle sample for odd counts, the upper of the two middle samples for
// even counts.
func TestNominalSampleIsUpperMiddleForEvenCounts(t *testing.T) {
	m := scalarModel{target: 0, inputs: []int{1}, inputWeight: 0}
	cases := []struct {
		samples []Env
		want    float64 // expected States[0] = x0 + u − nominal
	}{
		{[]Env{{0.5}}, 1 - 0.5},
		{[]Env{{-1}, {3}}, 1 - 3},            // even: upper of the two middles
		{[]Env{{-1}, {0.25}, {3}}, 1 - 0.25}, // odd: true middle
		{[]Env{{-2}, {-1}, {3}, {4}}, 1 - 3}, // even: index 2 of 4
	}
	for i, c := range cases {
		res, err := Exhaustive[float64, int](m, 0, []([]Env){c.samples}, Options{})
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if res.States[0] != c.want {
			t.Errorf("case %d: nominal successor = %v, want %v", i, res.States[0], c.want)
		}
	}
}

// TestParallelismClampsToCandidates checks worker counts beyond the
// level-0 candidate count degrade gracefully.
func TestParallelismClampsToCandidates(t *testing.T) {
	m := scalarModel{target: 5, inputs: []int{0, 1}, inputWeight: 0}
	res, err := Exhaustive[float64, int](m, 0, nominalEnvs(2, 0), Options{Parallelism: 64})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := referenceExhaustive[float64, int](m, 0, nominalEnvs(2, 0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertSameDecision(t, "clamped", ref, res)
}

// infSubtreeModel prices every trajectory through input 0 at +Inf and the
// rest finitely — the degenerate-branch case whose handling deliberately
// diverges from the historical recursive engine (see Options' doc).
type infSubtreeModel struct{}

func (infSubtreeModel) Step(x float64, u int, env Env) float64 { return x + float64(u) }
func (infSubtreeModel) Cost(next float64, u int, env Env) float64 {
	if u == 0 {
		return math.Inf(1)
	}
	return math.Abs(next)
}
func (infSubtreeModel) Feasible(float64) bool { return true }
func (infSubtreeModel) Inputs(float64) []int  { return []int{0, 1} }

// TestDegenerateSubtreeNoLongerAbortsSearch pins the documented
// divergence from the historical engine: an all-+Inf subtree is skipped
// rather than failing the whole search, and the error survives only when
// no finite-cost trajectory exists anywhere.
func TestDegenerateSubtreeNoLongerAbortsSearch(t *testing.T) {
	envs := nominalEnvs(2, 0)
	for _, opt := range []Options{{}, {NonNegativeCosts: true}, {NonNegativeCosts: true, Parallelism: 2}} {
		res, err := Exhaustive[float64, int](infSubtreeModel{}, 0, envs, opt)
		if err != nil {
			t.Fatalf("%+v: %v (degenerate branch must not abort the search)", opt, err)
		}
		if res.Inputs[0] != 1 || math.IsInf(res.Cost, 1) {
			t.Errorf("%+v: decision (%d, %v), want the finite branch (1, finite)", opt, res.Inputs[0], res.Cost)
		}
	}
	// All-degenerate: the error remains.
	all := scalarModel{target: 0, inputs: []int{1}, inputWeight: math.Inf(1)}
	if _, err := Exhaustive[float64, int](all, 0, envs, Options{}); err == nil {
		t.Error("all-Inf search: want error")
	}
}
