// Package chaos provides deterministic sensor-fault injection for the
// simulation engine: named, per-seed fault plans that corrupt what the
// controllers *observe* — dropped observation bins, NaN/negative/spiked
// counts, delayed delivery, duplicated observations — plus availability
// flapping expressed as ordinary workload failure events, so a chaos plan
// composes with a scenario's own failure plan.
//
// Faults are planned in workload-clock seconds and quantized onto engine
// ticks exactly like cluster.FailureSteps quantizes failure plans
// (ceil(At/period)), so a plan serves any control cadence. The injector
// never touches the plant: arrivals, completions, and energy accounting
// stay truthful; only the policy-visible interval statistics are
// perturbed. An empty plan is a guaranteed no-op — runs with a zero-fault
// plan are bit-identical to runs with no plan at all (pinned by the chaos
// equivalence suite).
//
// Invariant: plan builders must be deterministic per seed — two Build
// calls with the same seed and span return identical plans. Everything
// downstream (the committed BENCH_chaos.json matrix, the CLI runs) relies
// on it.
package chaos

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"hierctl/internal/workload"
)

// Kind enumerates the sensor-fault actions an injector can apply to one
// module's interval observation.
type Kind uint8

const (
	// KindDrop suppresses the module's observation for Ticks consecutive
	// ticks: the sanitizer holds the last good value and counts staleness.
	KindDrop Kind = iota
	// KindNaN corrupts the observation's counts and response with NaN —
	// the sanitizer must reject it and hold the last good value.
	KindNaN
	// KindNegative corrupts the observation with negative counts —
	// rejected by the sanitizer like NaN.
	KindNegative
	// KindSpike multiplies the observed arrival count by Factor (default
	// 1000). The numbers stay finite and non-negative, so the spike
	// passes sanitization — it probes graceful degradation of the
	// estimator chain, not input validation.
	KindSpike
	// KindDelay withholds the tick's observation and delivers it Ticks
	// ticks late, superseding that tick's fresh observation; the tick it
	// was taken from reads as dropped.
	KindDelay
	// KindDupe re-delivers the tick's observation on the following tick,
	// superseding the fresh one.
	KindDupe
)

var kindNames = [...]string{"drop", "nan", "negative", "spike", "delay", "dupe"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Fault is one planned sensor fault: module Module's observation is
// perturbed per Kind at workload-clock time At seconds past the trace
// start. Runners quantize At to the next control boundary; Module == -1
// targets every module, and module indices not present in the cluster
// under test are skipped, so one plan serves clusters of any shape.
type Fault struct {
	At     float64
	Module int
	Kind   Kind
	// Ticks extends KindDrop over consecutive ticks and sets the
	// KindDelay delivery lag; 0 means 1.
	Ticks int
	// Factor scales the observed arrivals for KindSpike; 0 means 1000.
	Factor float64
}

// Plan is a deterministic sensor-fault plan: sensor faults, optional
// availability flapping (ordinary failure events, appended to the
// scenario's own plan by the engine), and an optional LLC decision
// budget. The zero value is the empty plan.
type Plan struct {
	// Name identifies the plan in matrices and reports.
	Name string
	// Faults are the sensor faults, applied in plan order within a tick.
	Faults []Fault
	// Failures is availability flapping: fail/repair events composed with
	// the scenario failure plan and fired by the engine's usual
	// quantize-to-tick injection path.
	Failures []workload.FailureEvent
	// DecisionBudget caps the LLC controllers' explored states per
	// decision (0 = unlimited). A squeezed budget is injectable chaos
	// like any sensor fault: searches that exhaust it trip the
	// deterministic deadline fallback.
	DecisionBudget int
}

// Empty reports whether the plan injects nothing (an empty plan is
// pinned bit-identical to running with no plan at all).
func (p Plan) Empty() bool {
	return len(p.Faults) == 0 && len(p.Failures) == 0 && p.DecisionBudget == 0
}

// Action is one tick-quantized injector instruction: Fault minus the
// timing, resolved to a concrete module.
type Action struct {
	Module int
	Kind   Kind
	Ticks  int
	Factor float64
}

// Schedule maps engine ticks to the actions firing on them. Build one per
// run with Plan.Schedule; a nil *Schedule is a valid, empty schedule.
type Schedule struct {
	at map[int][]Action
}

// Schedule quantizes the plan's faults onto control ticks of the given
// period (ceil(At/period), matching cluster.FailureSteps) for a cluster
// of the given module count. Module == -1 fans out to every module;
// out-of-range module indices are dropped here, mirroring the failure
// injector's skip semantics.
func (p Plan) Schedule(periodSeconds float64, modules int) (*Schedule, error) {
	if periodSeconds <= 0 {
		return nil, fmt.Errorf("chaos: period %v <= 0", periodSeconds)
	}
	if len(p.Faults) == 0 {
		return nil, nil
	}
	s := &Schedule{at: map[int][]Action{}}
	for i, f := range p.Faults {
		if f.At < 0 {
			return nil, fmt.Errorf("chaos: fault %d at %v < 0", i, f.At)
		}
		if int(f.Kind) >= len(kindNames) {
			return nil, fmt.Errorf("chaos: fault %d has unknown kind %d", i, f.Kind)
		}
		ticks := f.Ticks
		if ticks <= 0 {
			ticks = 1
		}
		factor := f.Factor
		if factor == 0 {
			factor = 1000
		}
		k := int(math.Ceil(f.At / periodSeconds))
		lo, hi := f.Module, f.Module
		if f.Module < 0 {
			lo, hi = 0, modules-1
		}
		for m := lo; m <= hi; m++ {
			if m < 0 || m >= modules {
				continue
			}
			s.at[k] = append(s.at[k], Action{Module: m, Kind: f.Kind, Ticks: ticks, Factor: factor})
		}
	}
	if len(s.at) == 0 {
		return nil, nil
	}
	return s, nil
}

// ActionsAt returns the actions firing on tick k, in plan order. Safe on
// a nil schedule.
func (s *Schedule) ActionsAt(k int) []Action {
	if s == nil {
		return nil
	}
	return s.at[k]
}

// Spec is one registered chaos plan builder. Build must be deterministic
// per (seed, span): the chaos matrix snapshot is committed byte-for-byte.
type Spec struct {
	// Name is the registry key (lowercase, no spaces or colons).
	Name string
	// Description is a one-line summary for listings and docs.
	Description string
	// Build materializes the plan for a run spanning span workload-clock
	// seconds (trace end minus start), seeded deterministically.
	Build func(seed int64, span float64) Plan
}

var (
	regMu sync.RWMutex
	reg   = map[string]Spec{}
)

// Register adds a chaos plan spec to the registry. Names must be unique,
// non-empty, and free of reserved separators.
func Register(s Spec) error {
	if s.Name == "" {
		return fmt.Errorf("chaos: spec with empty name")
	}
	if strings.ContainsAny(s.Name, ": \t\n") {
		return fmt.Errorf("chaos: spec name %q contains reserved characters", s.Name)
	}
	if s.Build == nil {
		return fmt.Errorf("chaos: spec %q has no builder", s.Name)
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := reg[s.Name]; dup {
		return fmt.Errorf("chaos: spec %q already registered", s.Name)
	}
	reg[s.Name] = s
	return nil
}

func mustRegister(s Spec) {
	if err := Register(s); err != nil {
		panic(err)
	}
}

// Specs returns every registered spec sorted by name.
func Specs() []Spec {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Spec, 0, len(reg))
	for _, s := range reg {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names returns the sorted registered plan names.
func Names() []string {
	specs := Specs()
	names := make([]string, 0, len(specs))
	for _, s := range specs {
		names = append(names, s.Name)
	}
	return names
}

// Lookup resolves a registered spec by name, erroring with the full list
// so CLI callers get an actionable message.
func Lookup(name string) (Spec, error) {
	regMu.RLock()
	s, ok := reg[name]
	regMu.RUnlock()
	if !ok {
		return Spec{}, fmt.Errorf("chaos: unknown plan %q (registered: %s)",
			name, strings.Join(Names(), ", "))
	}
	return s, nil
}
