package chaos

import (
	"math/rand"

	"hierctl/internal/workload"
)

// Built-in chaos plans. Fault times are placed at fractions of the run's
// span with small seed-derived jitter, so every plan is deterministic per
// (seed, span) yet not phase-locked to scenario structure across seeds.
// Module targets use -1 (every module) or low indices; runs on smaller
// clusters skip what they don't have, mirroring failure-plan semantics.

// jitter returns a deterministic offset in [-frac, +frac] of span.
func jitter(rng *rand.Rand, span, frac float64) float64 {
	return (2*rng.Float64() - 1) * frac * span
}

func dropPlan(seed int64, span float64) Plan {
	rng := rand.New(rand.NewSource(seed ^ 0x64726f70)) // "drop"
	p := Plan{Name: "drop-bins"}
	for _, at := range []float64{0.20, 0.45, 0.70} {
		p.Faults = append(p.Faults, Fault{
			At:     at*span + jitter(rng, span, 0.02),
			Module: -1,
			Kind:   KindDrop,
			Ticks:  2 + rng.Intn(3),
		})
	}
	return p
}

func corruptPlan(seed int64, span float64) Plan {
	rng := rand.New(rand.NewSource(seed ^ 0x636f7272)) // "corr"
	return Plan{Name: "corrupt-counts", Faults: []Fault{
		{At: 0.25*span + jitter(rng, span, 0.02), Module: -1, Kind: KindNaN},
		{At: 0.45*span + jitter(rng, span, 0.02), Module: -1, Kind: KindNegative},
		{At: 0.65*span + jitter(rng, span, 0.02), Module: -1, Kind: KindSpike, Factor: 1000},
	}}
}

func delayDupePlan(seed int64, span float64) Plan {
	rng := rand.New(rand.NewSource(seed ^ 0x64656c61)) // "dela"
	return Plan{Name: "delay-dupe", Faults: []Fault{
		{At: 0.30*span + jitter(rng, span, 0.02), Module: -1, Kind: KindDelay, Ticks: 2},
		{At: 0.55*span + jitter(rng, span, 0.02), Module: -1, Kind: KindDupe},
		{At: 0.75*span + jitter(rng, span, 0.02), Module: -1, Kind: KindDelay, Ticks: 3},
	}}
}

// flapPlan flaps computer 0 of module 0: three fail/repair pairs spread
// over the middle of the run, each outage lasting ~4% of the span.
func flapPlan(seed int64, span float64) Plan {
	rng := rand.New(rand.NewSource(seed ^ 0x666c6170)) // "flap"
	p := Plan{Name: "flap"}
	for _, at := range []float64{0.30, 0.50, 0.70} {
		fail := at*span + jitter(rng, span, 0.02)
		p.Failures = append(p.Failures,
			workload.FailureEvent{At: fail, Module: 0, Comp: 0},
			workload.FailureEvent{At: fail + 0.04*span, Module: 0, Comp: 0, Repair: true},
		)
	}
	return p
}

// deadlinePlan injects no sensor faults; it squeezes the LLC decision
// budget so searches trip the deterministic deadline fallback under load.
func deadlinePlan(int64, float64) Plan {
	return Plan{Name: "deadline", DecisionBudget: 48}
}

func mixedPlan(seed int64, span float64) Plan {
	p := Plan{Name: "mixed"}
	d := dropPlan(seed, span)
	c := corruptPlan(seed, span)
	f := flapPlan(seed, span)
	p.Faults = append(append(p.Faults, d.Faults...), c.Faults...)
	p.Failures = append(p.Failures, f.Failures...)
	return p
}

func init() {
	mustRegister(Spec{
		Name:        "none",
		Description: "empty plan — pinned bit-identical to running without chaos",
		Build:       func(int64, float64) Plan { return Plan{Name: "none"} },
	})
	mustRegister(Spec{
		Name:        "drop-bins",
		Description: "three multi-tick observation blackouts across all modules (sanitizer hold probe)",
		Build:       dropPlan,
	})
	mustRegister(Spec{
		Name:        "corrupt-counts",
		Description: "NaN, negative, and x1000-spiked observation counts (sanitizer reject + estimator stress)",
		Build:       corruptPlan,
	})
	mustRegister(Spec{
		Name:        "delay-dupe",
		Description: "delayed (2-3 ticks) and duplicated observation delivery (ordering stress)",
		Build:       delayDupePlan,
	})
	mustRegister(Spec{
		Name:        "flap",
		Description: "computer 0 of module 0 flaps three times (~4% of span per outage)",
		Build:       flapPlan,
	})
	mustRegister(Spec{
		Name:        "deadline",
		Description: "LLC decision budget squeezed to 48 explored states per decision (fallback probe)",
		Build:       deadlinePlan,
	})
	mustRegister(Spec{
		Name:        "mixed",
		Description: "drop-bins + corrupt-counts + flap combined",
		Build:       mixedPlan,
	})
}
