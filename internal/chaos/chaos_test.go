package chaos

import (
	"reflect"
	"testing"
)

func TestScheduleQuantization(t *testing.T) {
	p := Plan{Faults: []Fault{
		{At: 0, Module: 0, Kind: KindDrop},      // ceil(0/30) = 0
		{At: 29.9, Module: 0, Kind: KindNaN},    // ceil -> 1
		{At: 30, Module: 0, Kind: KindNegative}, // exact boundary -> 1
		{At: 61, Module: 0, Kind: KindSpike},    // ceil -> 3
	}}
	s, err := p.Schedule(30, 2)
	if err != nil {
		t.Fatal(err)
	}
	wantTicks := map[int][]Kind{
		0: {KindDrop},
		1: {KindNaN, KindNegative},
		3: {KindSpike},
	}
	for k, kinds := range wantTicks {
		acts := s.ActionsAt(k)
		if len(acts) != len(kinds) {
			t.Fatalf("tick %d: %d actions, want %d", k, len(acts), len(kinds))
		}
		for i, want := range kinds {
			if acts[i].Kind != want {
				t.Errorf("tick %d action %d: kind %v, want %v", k, i, acts[i].Kind, want)
			}
		}
	}
	if acts := s.ActionsAt(2); acts != nil {
		t.Errorf("tick 2 has %d actions, want none", len(acts))
	}
}

func TestScheduleDefaultsAndFanout(t *testing.T) {
	p := Plan{Faults: []Fault{
		{At: 10, Module: -1, Kind: KindDrop},              // fans out to all modules
		{At: 10, Module: 5, Kind: KindNaN},                // out of range: skipped
		{At: 40, Module: 1, Kind: KindSpike},              // Factor 0 -> 1000
		{At: 40, Module: 1, Kind: KindDelay, Ticks: 0},    // Ticks 0 -> 1
		{At: 70, Module: 0, Kind: KindSpike, Factor: 2.5}, // explicit factor kept
	}}
	s, err := p.Schedule(30, 3)
	if err != nil {
		t.Fatal(err)
	}
	first := s.ActionsAt(1)
	if len(first) != 3 {
		t.Fatalf("module -1 fan-out produced %d actions, want 3 (out-of-range fault skipped)", len(first))
	}
	for i, a := range first {
		if a.Module != i || a.Kind != KindDrop || a.Ticks != 1 {
			t.Errorf("fan-out action %d = %+v", i, a)
		}
	}
	second := s.ActionsAt(2)
	if len(second) != 2 || second[0].Factor != 1000 || second[1].Ticks != 1 {
		t.Errorf("defaults not applied: %+v", second)
	}
	if got := s.ActionsAt(3); len(got) != 1 || got[0].Factor != 2.5 {
		t.Errorf("explicit factor lost: %+v", got)
	}
}

// TestScheduleEmptyIsNil pins the no-op guarantee: a plan that injects no
// sensor faults schedules to nil, the exact representation of "no chaos",
// and a nil schedule answers safely.
func TestScheduleEmptyIsNil(t *testing.T) {
	for name, p := range map[string]Plan{
		"zero value":       {},
		"failures only":    {Failures: flapPlan(1, 1000).Failures},
		"budget only":      {DecisionBudget: 48},
		"all out of range": {Faults: []Fault{{At: 10, Module: 7, Kind: KindDrop}}},
	} {
		s, err := p.Schedule(30, 2)
		if err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if s != nil {
			t.Errorf("%s: schedule is non-nil", name)
		}
	}
	var nilSched *Schedule
	if nilSched.ActionsAt(0) != nil {
		t.Error("nil schedule returned actions")
	}
	if !(Plan{}).Empty() {
		t.Error("zero plan is not Empty")
	}
	if (Plan{DecisionBudget: 1}).Empty() {
		t.Error("budget-only plan claims Empty")
	}
}

func TestScheduleValidation(t *testing.T) {
	if _, err := (Plan{Faults: []Fault{{At: 1}}}).Schedule(0, 2); err == nil {
		t.Error("period 0 accepted")
	}
	if _, err := (Plan{Faults: []Fault{{At: -1}}}).Schedule(30, 2); err == nil {
		t.Error("negative fault time accepted")
	}
	if _, err := (Plan{Faults: []Fault{{At: 1, Kind: Kind(99)}}}).Schedule(30, 2); err == nil {
		t.Error("unknown fault kind accepted")
	}
}

func TestRegistry(t *testing.T) {
	names := Names()
	if len(names) < 7 {
		t.Fatalf("registry holds %d plans, want >= 7: %v", len(names), names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
	for _, want := range []string{"none", "drop-bins", "corrupt-counts", "delay-dupe", "flap", "deadline", "mixed"} {
		if _, err := Lookup(want); err != nil {
			t.Errorf("built-in plan %q missing: %v", want, err)
		}
	}
	if _, err := Lookup("no-such-plan"); err == nil {
		t.Error("Lookup accepted an unknown name")
	}
	if err := Register(Spec{Name: "none", Build: func(int64, float64) Plan { return Plan{} }}); err == nil {
		t.Error("duplicate registration accepted")
	}
	if err := Register(Spec{Name: "", Build: func(int64, float64) Plan { return Plan{} }}); err == nil {
		t.Error("empty name accepted")
	}
	if err := Register(Spec{Name: "bad name", Build: func(int64, float64) Plan { return Plan{} }}); err == nil {
		t.Error("name with space accepted")
	}
	if err := Register(Spec{Name: "nobuild"}); err == nil {
		t.Error("spec without builder accepted")
	}
}

// TestBuildersDeterministic pins the per-seed determinism contract every
// committed matrix relies on: same (seed, span) -> identical plan; a
// different seed must move at least one non-trivial plan.
func TestBuildersDeterministic(t *testing.T) {
	const span = 4800.0
	changed := false
	for _, spec := range Specs() {
		a := spec.Build(3, span)
		b := spec.Build(3, span)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("plan %q: same seed built different plans", spec.Name)
		}
		if !reflect.DeepEqual(a, spec.Build(4, span)) {
			changed = true
		}
		// Every planned fault must land inside the run.
		for i, f := range a.Faults {
			if f.At < 0 || f.At > span {
				t.Errorf("plan %q fault %d at %v outside [0, %v]", spec.Name, i, f.At, span)
			}
		}
		if _, err := a.Schedule(30, 4); err != nil {
			t.Errorf("plan %q does not schedule: %v", spec.Name, err)
		}
	}
	if !changed {
		t.Error("no plan varied with the seed")
	}
	if p, _ := Lookup("none"); !p.Build(1, span).Empty() {
		t.Error(`plan "none" is not empty`)
	}
}
