package core

import (
	"os"
	"path/filepath"
	"testing"

	"hierctl/internal/cluster"
)

func TestArtifactCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := fastConfig()
	cfg.ArtifactDir = dir
	spec := cluster.Spec{Modules: []cluster.ModuleSpec{
		moduleOf("M1", 2), moduleOf("M2", 2),
	}}

	// First manager learns and saves.
	m1, err := NewManager(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	// One distinct hardware (all testComputers identical) + one module
	// composition.
	var gmaps, trees int
	for _, e := range entries {
		switch {
		case filepath.Ext(e.Name()) != ".gob":
			t.Errorf("unexpected file %s", e.Name())
		case e.Name()[:4] == "gmap":
			gmaps++
		case e.Name()[:5] == "jtree":
			trees++
		}
	}
	if gmaps != 1 || trees != 1 {
		t.Fatalf("artifacts = %d gmaps, %d trees; want 1 and 1", gmaps, trees)
	}

	// Second manager loads; behaviour must be identical.
	m2, err := NewManager(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	trace := steadyTrace(16, 600)
	r1, err := m1.Run(trace, testStore(t))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := m2.Run(trace, testStore(t))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Completed != r2.Completed || r1.Energy != r2.Energy || r1.Switches != r2.Switches {
		t.Errorf("loaded artifacts changed behaviour: (%d, %v, %d) vs (%d, %v, %d)",
			r1.Completed, r1.Energy, r1.Switches, r2.Completed, r2.Energy, r2.Switches)
	}
}

func TestArtifactCacheKeyedByConfig(t *testing.T) {
	dir := t.TempDir()
	cfg := fastConfig()
	cfg.ArtifactDir = dir
	spec := cluster.Spec{Modules: []cluster.ModuleSpec{moduleOf("M1", 2)}}
	if _, err := NewManager(spec, cfg); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	// A different learning grid must produce a different artifact, not
	// reuse the old one.
	cfg2 := cfg
	cfg2.GMap.QStep = 50
	if _, err := NewManager(spec, cfg2); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) <= len(before) {
		t.Errorf("changed config reused artifacts: %d files before, %d after", len(before), len(after))
	}
}

func TestArtifactCorruptFallsBackToLearning(t *testing.T) {
	dir := t.TempDir()
	cfg := fastConfig()
	cfg.ArtifactDir = dir
	spec := cluster.Spec{Modules: []cluster.ModuleSpec{moduleOf("M1", 2)}}
	if _, err := NewManager(spec, cfg); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if err := os.WriteFile(filepath.Join(dir, e.Name()), []byte("garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Corrupted artifacts are relearned, not fatal.
	mgr, err := NewManager(spec, cfg)
	if err != nil {
		t.Fatalf("corrupt artifacts should be relearned: %v", err)
	}
	if mgr == nil {
		t.Fatal("nil manager")
	}
}

func TestArtifactDirMissingErrors(t *testing.T) {
	cfg := fastConfig()
	cfg.ArtifactDir = filepath.Join(t.TempDir(), "does-not-exist")
	spec := cluster.Spec{Modules: []cluster.ModuleSpec{moduleOf("M1", 2)}}
	if _, err := NewManager(spec, cfg); err == nil {
		t.Error("missing artifact dir: want error")
	}
}
