package core

import (
	"math/rand"
	"reflect"
	"testing"

	"hierctl/internal/cluster"
	"hierctl/internal/obs"
	"hierctl/internal/workload"
)

// TestManagerRecorderEquivalence is the recorder equivalence suite: the
// flight recorder must be observe-only. Randomized over the scenario
// registry, seeds, and the L1 planning fan-out, a run with the recorder
// attached must reproduce the unrecorded run bit-for-bit — decisions,
// QoS accounting, energy, explored counts. Wall-clock overhead fields
// are the only nondeterministic ones and are zeroed before comparing.
// CI runs this suite under -race (the parallel L1 fan-out writes the
// ring concurrently).
func TestManagerRecorderEquivalence(t *testing.T) {
	spec := cluster.Spec{Modules: []cluster.ModuleSpec{moduleOf("M1", 2), moduleOf("M2", 2)}}
	scenarios := workload.Scenarios()
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 6; trial++ {
		sc := scenarios[rng.Intn(len(scenarios))]
		for sc.NeedsArg {
			sc = scenarios[rng.Intn(len(scenarios))]
		}
		seed := int64(1 + rng.Intn(100))
		parallelism := 1 + rng.Intn(4)
		t.Run(sc.Name, func(t *testing.T) {
			trace, err := sc.Trace(seed)
			if err != nil {
				t.Fatal(err)
			}
			sc.ScaleToCluster(trace, 4)
			if trace.Len() > 20 {
				trace = trace.Slice(0, 20)
			}
			plan := sc.FailurePlan(trace)
			cfg := fastConfig()
			cfg.Seed = seed
			cfg.Parallelism = parallelism
			newStore := func() *workload.Store {
				s, err := workload.NewStore(rand.New(rand.NewSource(seed)), sc.StoreConfig())
				if err != nil {
					t.Fatal(err)
				}
				return s
			}
			runOnce := func(rec *obs.Recorder) *Record {
				mgr, err := NewManager(spec, cfg)
				if err != nil {
					t.Fatal(err)
				}
				mgr.SetRecorder(rec)
				mgr.InjectPlan(plan)
				r, err := mgr.Run(trace, newStore())
				if err != nil {
					t.Fatal(err)
				}
				r.LearnTime, r.L0Time, r.L1Time, r.L2Time = 0, 0, 0, 0
				return r
			}
			rec, err := obs.NewRecorder(1 << 14)
			if err != nil {
				t.Fatal(err)
			}
			want := runOnce(nil)
			got := runOnce(rec)
			if !reflect.DeepEqual(want, got) {
				t.Errorf("seed %d parallelism %d: recorded run diverges\nplain:    %+v\nrecorded: %+v",
					seed, parallelism, want, got)
			}

			// The recorder actually saw the hierarchy: tick records for
			// every engine tick plus controller records at every level.
			counts := map[obs.Level]int{}
			ticks := int64(-1)
			for _, r := range rec.Window(nil, 0) {
				counts[r.Level]++
				if r.Tick > ticks {
					ticks = r.Tick
				}
			}
			if counts[obs.LevelTick] == 0 || counts[obs.LevelL0] == 0 ||
				counts[obs.LevelL1] == 0 || counts[obs.LevelL2] == 0 {
				t.Errorf("level coverage incomplete: %v (total %d)", counts, rec.Total())
			}
			if ticks < 1 {
				t.Errorf("tick stamps did not advance (max %d)", ticks)
			}
		})
	}
}
