package core

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"hierctl/internal/cluster"
	"hierctl/internal/des"
	"hierctl/internal/engine"
	"hierctl/internal/forecast"
	"hierctl/internal/par"
	"hierctl/internal/series"
	"hierctl/internal/workload"
)

// legacyMechanicsRun reproduces the package's pre-engine session mechanics
// verbatim — own plant and feed, pending ring indexed by step mod sub,
// ceil-quantized failure schedule, dispatch/advance/harvest loop — while
// driving the same policy hooks (initPolicy, Decide, Observe, finish) the
// engine harness calls. It is the equivalence oracle for the engine
// migration: Manager.Run must keep producing bit-identical Records against
// an independent implementation of the mechanics. Do not modify it.
func legacyMechanicsRun(m *Manager, trace *series.Series, store *workload.Store) (*Record, error) {
	binStep, start0 := trace.Step, trace.Start
	tl0 := m.cfg.L0.PeriodSeconds
	sub := int(binStep/tl0 + 0.5)
	if sub < 1 || math.Abs(float64(sub)*tl0-binStep) > 1e-6 {
		return nil, fmt.Errorf("mechanics oracle: trace bin %vs is not a multiple of T_L0 %vs", binStep, tl0)
	}
	r := &run{
		m:       m,
		trace:   trace,
		sub:     sub,
		tl0:     tl0,
		binStep: binStep,
		start0:  start0,
		l1Every: int(m.cfg.L1.PeriodSeconds/tl0 + 0.5),
		l2Every: int(m.cfg.L2.PeriodSeconds/tl0 + 0.5),
		workers: par.Workers(m.cfg.Parallelism),
	}
	r.totalSteps = trace.Len() * sub

	plant, err := cluster.NewPlant(m.spec, des.RNG(m.cfg.Seed, "dispatch"))
	if err != nil {
		return nil, err
	}
	feed, err := workload.NewFeed(start0, binStep, store, des.RNG(m.cfg.Seed, "workload"))
	if err != nil {
		return nil, err
	}

	// Kalman tuning and estimator resets, as NewSession performs them.
	prefixBins := int(float64(trace.Len()) * m.cfg.TunePrefixFrac)
	cal := trace.Values[:prefixBins]
	ql, qt, ro := 1.0, 0.1, 10.0
	if len(cal) >= 8 {
		tuned, _, err := forecast.TuneKalman(cal)
		if err != nil {
			return nil, err
		}
		ql, qt, ro = tuned.Params()
	}
	newKalman := func() (*forecast.Kalman, error) { return forecast.NewKalman(ql, qt, ro) }
	for _, asm := range m.modules {
		if asm.kalman0, err = newKalman(); err != nil {
			return nil, err
		}
		if asm.kalman1, err = newKalman(); err != nil {
			return nil, err
		}
		asm.lastPer = make([]cluster.IntervalStats, len(asm.specs))
		asm.lastAgg = cluster.IntervalStats{}
		asm.arrivedTL1 = 0
		asm.hasPredicted = false
		asm.pendingRatio = 1
		asm.l0Ratio = 1
	}
	if m.kalmanG, err = newKalman(); err != nil {
		return nil, err
	}
	if m.bandG, err = forecast.NewBand(m.cfg.BandSmoothing); err != nil {
		return nil, err
	}

	// Warm start all-on at full speed, then pre-roll through the boot.
	for i, asm := range m.modules {
		for j := range asm.specs {
			if err := plant.PowerOn(i, j); err != nil {
				return nil, err
			}
			if err := plant.SetFrequency(i, j, len(asm.specs[j].FrequenciesHz)-1); err != nil {
				return nil, err
			}
		}
	}
	preroll := m.maxBootDelay()
	if preroll > 0 {
		if err := plant.Advance(preroll); err != nil {
			return nil, err
		}
		for i := range m.modules {
			if _, _, err := plant.ModuleIntervalStats(i); err != nil {
				return nil, err
			}
		}
	}
	if err := r.initPolicy(plant); err != nil {
		return nil, err
	}

	// Legacy mechanics state: the pending ring, the quantized failure
	// schedule, and the step index.
	pending := make([][]workload.Request, sub)
	failAt := make([]int, len(m.failures))
	for idx, f := range m.failures {
		failAt[idx] = int(math.Ceil(f.at / tl0))
	}
	applyFailures := func(k int) error {
		for idx, f := range m.failures {
			if failAt[idx] != k {
				continue
			}
			var err error
			if f.isRepair {
				err = plant.Repair(f.module, f.comp)
			} else {
				err = plant.Fail(f.module, f.comp)
			}
			if err != nil {
				return err
			}
		}
		return nil
	}

	stepIdx := 0
	steps := trace.Len() * sub
	for _, count := range trace.Values {
		bin, reqs := feed.Push(count)
		binStart := start0 + float64(bin)*binStep
		for _, req := range reqs {
			d := int((req.Arrival - binStart) / tl0)
			if d < 0 {
				d = 0
			}
			if d >= sub {
				d = sub - 1
			}
			req.Arrival += preroll - start0
			slot := (stepIdx + d) % sub
			pending[slot] = append(pending[slot], req)
		}
		for dstep := 0; dstep < sub; dstep++ {
			k := stepIdx
			t := preroll + float64(k)*tl0
			if err := applyFailures(k); err != nil {
				return nil, err
			}
			slot := k % sub
			set, err := r.Decide(k, engine.TickObs{
				Time:            t,
				PendingRequests: len(pending[slot]),
				NewBin:          dstep == 0,
				Bin:             bin,
				BinCount:        count,
			})
			if err != nil {
				return nil, err
			}
			if batch := pending[slot]; len(batch) > 0 {
				pending[slot] = nil
				if err := plant.Dispatch(batch, set.GammaModules, set.GammaComputers); err != nil {
					return nil, err
				}
			}
			if err := plant.Advance(t + tl0); err != nil {
				return nil, err
			}
			stats := make([]engine.ModuleStats, len(m.modules))
			for i := range m.modules {
				agg, per, err := plant.ModuleIntervalStats(i)
				if err != nil {
					return nil, err
				}
				stats[i] = engine.ModuleStats{Agg: agg, Per: per}
			}
			if err := r.Observe(k, stats); err != nil {
				return nil, err
			}
			stepIdx++
		}
	}
	if err := applyFailures(stepIdx); err != nil {
		return nil, err
	}
	end := preroll + float64(steps)*tl0
	if err := plant.Advance(end + m.cfg.DrainSeconds); err != nil {
		return nil, err
	}
	plant.FinishAccounting()
	return r.finish()
}

// TestRunMatchesLegacyMechanics pins the engine migration for the
// hierarchy: the harness-backed Manager.Run must reproduce the legacy
// session mechanics bit-for-bit across the scenario registry, multiple
// seeds, and both sequential and fanned-out L1 planning. Wall-clock
// overhead fields are the only nondeterministic ones and are zeroed.
func TestRunMatchesLegacyMechanics(t *testing.T) {
	spec := cluster.Spec{Modules: []cluster.ModuleSpec{moduleOf("M1", 2), moduleOf("M2", 2)}}

	for _, sc := range workload.Scenarios() {
		if sc.NeedsArg {
			continue
		}
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			for seed := int64(1); seed <= 5; seed++ {
				trace, err := sc.Trace(seed)
				if err != nil {
					t.Fatal(err)
				}
				sc.ScaleToCluster(trace, 4)
				if trace.Len() > 24 {
					trace = trace.Slice(0, 24)
				}
				plan := sc.FailurePlan(trace)
				cfg := fastConfig()
				cfg.Seed = seed
				// Sweep the L1 planning fan-out: the plans are applied in
				// module order regardless, so results must not depend on it.
				cfg.Parallelism = 1
				if seed%2 == 0 {
					cfg.Parallelism = 4
				}

				newStore := func() *workload.Store {
					s, err := workload.NewStore(rand.New(rand.NewSource(seed)), sc.StoreConfig())
					if err != nil {
						t.Fatal(err)
					}
					return s
				}
				mgrA, err := NewManager(spec, cfg)
				if err != nil {
					t.Fatal(err)
				}
				mgrA.InjectPlan(plan)
				want, err := legacyMechanicsRun(mgrA, trace, newStore())
				if err != nil {
					t.Fatalf("seed %d: legacy mechanics: %v", seed, err)
				}
				mgrB, err := NewManager(spec, cfg)
				if err != nil {
					t.Fatal(err)
				}
				mgrB.InjectPlan(plan)
				got, err := mgrB.Run(trace, newStore())
				if err != nil {
					t.Fatalf("seed %d: engine: %v", seed, err)
				}

				want.LearnTime, got.LearnTime = 0, 0
				want.L0Time, got.L0Time = 0, 0
				want.L1Time, got.L1Time = 0, 0
				want.L2Time, got.L2Time = 0, 0
				if !reflect.DeepEqual(want, got) {
					t.Errorf("seed %d: engine run diverges from legacy mechanics\nlegacy: %+v\nengine: %+v", seed, want, got)
				}
			}
		})
	}
}
