package core

import (
	"fmt"
	"time"

	"hierctl/internal/chaos"
	"hierctl/internal/cluster"
	"hierctl/internal/controller"
	"hierctl/internal/forecast"
	"hierctl/internal/obs"
	"hierctl/internal/par"
	"hierctl/internal/workload"
)

// Config bundles the hierarchy's tunables. Use DefaultConfig for the
// paper's settings.
type Config struct {
	// L0, L1 and L2 configure the three controller levels.
	L0 controller.L0Config
	L1 controller.L1Config
	L2 controller.L2Config
	// GMap configures the offline learning grid for the abstraction
	// maps g, and ModuleSim the grid for the L2 regression trees.
	GMap      controller.GMapConfig
	ModuleSim controller.ModuleSimConfig
	// Seed drives every random stream of the run (dispatching, request
	// generation noise); runs are reproducible per seed.
	Seed int64
	// DefaultCHat is the processing-time prior used until the EWMA
	// filter has observations (seconds).
	DefaultCHat float64
	// CHatSmoothing is the EWMA constant π (paper: 0.1).
	CHatSmoothing float64
	// BandSmoothing is the uncertainty-band EWMA constant.
	BandSmoothing float64
	// TunePrefixFrac is the fraction of the trace used to tune the
	// Kalman filters before the run (§4.3).
	TunePrefixFrac float64
	// DrainSeconds extends the simulation past the trace end so
	// in-flight requests complete into the aggregate statistics.
	DrainSeconds float64
	// RecordFrequencies enables the per-computer frequency series
	// (Fig. 5); large clusters may disable it to save memory.
	RecordFrequencies bool
	// ArtifactDir, when non-empty, caches the offline learning results
	// (abstraction maps g, module trees J̃) as files keyed by
	// configuration fingerprint: a second manager with the same
	// hardware and learning configuration loads them instead of
	// relearning. The directory must exist and be writable; artifacts
	// that fail to load are relearned and overwritten.
	ArtifactDir string
	// OracleForecast replaces the Kalman arrival forecasts with the
	// true future trace counts (scaled by each module's current share).
	// This is not a realizable controller — it measures the value of
	// perfect information, bounding how much of the remaining QoS gap
	// is attributable to forecast error (EXT2 ablation).
	OracleForecast bool
	// Parallelism bounds the worker pool that fans out the per-module L1
	// decisions and the offline learning of abstraction maps and module
	// trees. 0 (the default) uses one worker per available CPU; 1
	// reproduces the sequential engine exactly. Decisions are
	// deterministic given observations, so any value produces
	// bit-identical run records — Parallelism only changes wall-clock
	// time. A further, orthogonal knob — L0.SearchParallelism — fans out
	// the candidates inside each L0 lookahead search; it too keeps
	// decisions bit-identical, but it makes the explored-state overhead
	// counters depend on branch-and-bound pruning timing, so leave it at
	// the sequential default when comparing overhead records.
	Parallelism int
}

// DefaultConfig returns the paper's parameter set (§4.3, §5.2).
func DefaultConfig() Config {
	return Config{
		L0:                controller.DefaultL0Config(),
		L1:                controller.DefaultL1Config(),
		L2:                controller.DefaultL2Config(),
		GMap:              controller.DefaultGMapConfig(),
		ModuleSim:         controller.DefaultModuleSimConfig(),
		Seed:              1,
		DefaultCHat:       0.0175,
		CHatSmoothing:     0.1,
		BandSmoothing:     0.25,
		TunePrefixFrac:    0.15,
		DrainSeconds:      300,
		RecordFrequencies: true,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if err := c.L0.Validate(); err != nil {
		return err
	}
	if err := c.L1.Validate(); err != nil {
		return err
	}
	if err := c.L2.Validate(); err != nil {
		return err
	}
	if err := c.GMap.Validate(); err != nil {
		return err
	}
	if err := c.ModuleSim.Validate(); err != nil {
		return err
	}
	if c.DefaultCHat <= 0 {
		return fmt.Errorf("core: default c-hat %v <= 0", c.DefaultCHat)
	}
	if c.CHatSmoothing <= 0 || c.CHatSmoothing > 1 {
		return fmt.Errorf("core: c-hat smoothing %v outside (0, 1]", c.CHatSmoothing)
	}
	if c.BandSmoothing <= 0 || c.BandSmoothing > 1 {
		return fmt.Errorf("core: band smoothing %v outside (0, 1]", c.BandSmoothing)
	}
	if c.TunePrefixFrac < 0 || c.TunePrefixFrac > 0.9 {
		return fmt.Errorf("core: tune prefix fraction %v outside [0, 0.9]", c.TunePrefixFrac)
	}
	if c.DrainSeconds < 0 {
		return fmt.Errorf("core: drain seconds %v < 0", c.DrainSeconds)
	}
	if c.Parallelism < 0 {
		return fmt.Errorf("core: parallelism %d < 0", c.Parallelism)
	}
	if c.L1.PeriodSeconds < c.L0.PeriodSeconds ||
		modRem(c.L1.PeriodSeconds, c.L0.PeriodSeconds) != 0 {
		return fmt.Errorf("core: T_L1 %v must be a multiple of T_L0 %v", c.L1.PeriodSeconds, c.L0.PeriodSeconds)
	}
	if c.L2.PeriodSeconds < c.L1.PeriodSeconds ||
		modRem(c.L2.PeriodSeconds, c.L1.PeriodSeconds) != 0 {
		return fmt.Errorf("core: T_L2 %v must be a multiple of T_L1 %v", c.L2.PeriodSeconds, c.L1.PeriodSeconds)
	}
	return nil
}

func modRem(a, b float64) float64 {
	n := int(a/b + 0.5)
	r := a - float64(n)*b
	if r < 1e-9 && r > -1e-9 {
		return 0
	}
	return r
}

// moduleAsm bundles one module's controllers and estimators.
type moduleAsm struct {
	specs []cluster.ComputerSpec
	gmaps []*controller.GMap
	l1    *controller.L1
	l0s   []*controller.L0

	kalman0 *forecast.Kalman // module arrivals per T_L0 bin
	kalman1 *forecast.Kalman // module arrivals per T_L1 bin
	band    *forecast.Band   // δ at T_L1 granularity
	band0   *forecast.Band   // δ at T_L0 granularity (L0 burst hedging)
	cEst    *forecast.EWMA

	alpha []bool
	gamma []float64

	lastPer []cluster.IntervalStats
	lastAgg cluster.IntervalStats

	arrivedTL1   int
	predictedTL1 float64
	hasPredicted bool

	// pendingRatio rescales the module's own arrival forecast right
	// after the L2 reallocates fractions: the module filter has only
	// seen arrivals under the old γ_i, but λ_i = γ_i·λ_g (Fig. 2b), so
	// the known new share adjusts the forecast until the filter catches
	// up. 1 means no pending reallocation.
	pendingRatio float64
	// l0Ratio carries the same correction down to the L0 frequency
	// controllers for the remainder of the L1 period, since their
	// per-T_L0 filter lags reallocations just the same.
	l0Ratio float64

	// Observation scratch, reused across control periods: the
	// controllers read their observation slices and never retain them,
	// and each module is planned by a single goroutine, so the decision
	// loop stays allocation-free (the tick invariant — see the
	// controller package doc).
	obsQueues []float64
	obsAvail  []bool
	l0Lambda  []float64
}

// Manager owns one experiment: the plant, the controller hierarchy, the
// estimators, and the learned approximations. Construct with NewManager,
// then call Run (batch replay) or NewSession (incremental stepping).
type Manager struct {
	cfg     Config
	spec    cluster.Spec
	modules []*moduleAsm
	l2      *controller.L2
	kalmanG *forecast.Kalman // cluster arrivals per T_L2 bin
	bandG   *forecast.Band   // δ at T_L2 granularity

	artifacts ArtifactSet

	learnTime time.Duration

	failures []failureEvent

	// chaos is the injected sensor-fault plan (see InjectChaos); the zero
	// plan injects nothing.
	chaos chaos.Plan

	// l1Failpoint is a test seam invoked at the top of every L1 planning
	// call (see SetL1Failpoint). Never serialized; nil in production.
	l1Failpoint func(module, tick int)

	// recorder is the attached decision flight recorder (nil = off); it
	// feeds every controller and the sessions built afterwards.
	recorder *obs.Recorder
}

// SetRecorder attaches a decision flight recorder to the whole hierarchy
// — the L2, every module's L1, every L0 — and to sessions created
// afterwards (which add the engine's per-tick records). A nil recorder
// detaches. Recording is observe-only: runs are bit-identical with it on
// or off (pinned by TestManagerRecorderEquivalence); under parallel
// planning only the interleaving of same-tick records varies.
func (m *Manager) SetRecorder(r *obs.Recorder) {
	m.recorder = r
	for i, asm := range m.modules {
		asm.l1.SetRecorder(r, i)
		for j, l0 := range asm.l0s {
			l0.SetRecorder(r, i, j)
		}
	}
	if m.l2 != nil {
		m.l2.SetRecorder(r)
	}
}

// Recorder returns the attached flight recorder (nil when disabled).
func (m *Manager) Recorder() *obs.Recorder { return m.recorder }

// ArtifactSet holds the offline learning results — the abstraction maps g
// per distinct hardware and the regression trees J̃ per distinct module
// composition — keyed by the manager's configuration fingerprints. A set
// is only valid for the exact Config and cluster hardware it was learned
// under; snapshot formats pair it with that configuration.
type ArtifactSet struct {
	GMaps map[string]*controller.GMap
	Trees map[string]*controller.TreeJTilde
}

// Artifacts returns the manager's learned approximations. The maps are
// copied but the artifacts themselves are shared; they are read-only
// during decision making.
func (m *Manager) Artifacts() ArtifactSet {
	out := ArtifactSet{
		GMaps: make(map[string]*controller.GMap, len(m.artifacts.GMaps)),
		Trees: make(map[string]*controller.TreeJTilde, len(m.artifacts.Trees)),
	}
	for k, v := range m.artifacts.GMaps {
		out.GMaps[k] = v
	}
	for k, v := range m.artifacts.Trees {
		out.Trees[k] = v
	}
	return out
}

type failureEvent struct {
	at       float64
	module   int
	comp     int
	isRepair bool
}

// NewManager builds the hierarchy for the given cluster: it learns the
// abstraction map g for every distinct computer hardware (§4.2) and, when
// the cluster has more than one module, the regression-tree J̃ for every
// distinct module composition (§5.1). Learning results are shared across
// identical hardware, which is what keeps the approach scalable.
func NewManager(spec cluster.Spec, cfg Config) (*Manager, error) {
	return NewManagerWithArtifacts(spec, cfg, nil)
}

// NewManagerWithArtifacts is NewManager with pre-learned approximations: a
// hardware or module composition found in art skips the offline learning
// entirely and uses the supplied artifact, which is what makes restoring a
// snapshotted controller cheap and exact. Entries are matched by the same
// fingerprints NewManager shares learning under; missing entries are
// learned as usual. The artifacts must have been learned under an
// identical Config — the set carries no provenance of its own.
func NewManagerWithArtifacts(spec cluster.Spec, cfg Config, art *ArtifactSet) (*Manager, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	m := &Manager{cfg: cfg, spec: spec}
	learnStart := time.Now() //hpm:wallclock one-time learning-phase duration report; observe-only
	workers := par.Workers(cfg.Parallelism)

	// Learn the abstraction map g once per distinct hardware, fanning the
	// distinct kinds across the worker pool. Keys are collected in
	// first-seen order and results land in indexed slots, so the cache
	// contents are identical to the sequential walk's.
	var gmapKeys []string
	gmapSpec := map[string]cluster.ComputerSpec{}
	for _, ms := range spec.Modules {
		for _, cs := range ms.Computers {
			key := hardwareKey(cs)
			if _, ok := gmapSpec[key]; !ok {
				gmapSpec[key] = cs
				gmapKeys = append(gmapKeys, key)
			}
		}
	}
	gmapSlots := make([]*controller.GMap, len(gmapKeys))
	if err := par.For(workers, len(gmapKeys), func(i int) error {
		key := gmapKeys[i]
		cs := gmapSpec[key]
		if art != nil && art.GMaps[key] != nil {
			gmapSlots[i] = art.GMaps[key]
			return nil
		}
		g, err := loadOrLearnGMap(cfg, key, func() (*controller.GMap, error) {
			return controller.LearnGMap(cfg.L0, cs, cfg.GMap)
		})
		if err != nil {
			return fmt.Errorf("core: learning g for %s: %w", cs.Name, err)
		}
		gmapSlots[i] = g
		return nil
	}); err != nil {
		return nil, err
	}
	gmapCache := make(map[string]*controller.GMap, len(gmapKeys))
	for i, key := range gmapKeys {
		gmapCache[key] = gmapSlots[i]
	}
	m.artifacts = ArtifactSet{GMaps: gmapCache, Trees: map[string]*controller.TreeJTilde{}}

	for _, ms := range spec.Modules {
		asm := &moduleAsm{}
		for _, cs := range ms.Computers {
			asm.specs = append(asm.specs, cs)
			asm.gmaps = append(asm.gmaps, gmapCache[hardwareKey(cs)])
		}
		l1, err := controller.NewL1(cfg.L1, asm.gmaps)
		if err != nil {
			return nil, err
		}
		asm.l1 = l1
		for _, cs := range ms.Computers {
			l0, err := controller.NewL0(cfg.L0, cs)
			if err != nil {
				return nil, err
			}
			asm.l0s = append(asm.l0s, l0)
		}
		asm.cEst, err = forecast.NewEWMA(cfg.CHatSmoothing)
		if err != nil {
			return nil, err
		}
		asm.band, err = forecast.NewBand(cfg.BandSmoothing)
		if err != nil {
			return nil, err
		}
		asm.band0, err = forecast.NewBand(cfg.BandSmoothing)
		if err != nil {
			return nil, err
		}
		asm.alpha = make([]bool, len(ms.Computers))
		asm.gamma = make([]float64, len(ms.Computers))
		m.modules = append(m.modules, asm)
	}

	if len(spec.Modules) > 1 {
		// Same scheme for the per-composition J̃ trees: one learning task
		// per distinct module composition, fanned across the pool.
		var treeKeys []string
		treeModule := map[string]int{}
		for i := range m.modules {
			key := moduleKey(spec.Modules[i])
			if _, ok := treeModule[key]; !ok {
				treeModule[key] = i
				treeKeys = append(treeKeys, key)
			}
		}
		treeSlots := make([]*controller.TreeJTilde, len(treeKeys))
		if err := par.For(workers, len(treeKeys), func(ti int) error {
			key := treeKeys[ti]
			i := treeModule[key]
			asm := m.modules[i]
			if art != nil && art.Trees[key] != nil {
				treeSlots[ti] = art.Trees[key]
				return nil
			}
			jt, err := loadOrLearnTree(cfg, key, func() (*controller.TreeJTilde, error) {
				return controller.LearnModuleTree(cfg.L0, cfg.L1, asm.gmaps, cfg.ModuleSim)
			})
			if err != nil {
				return fmt.Errorf("core: learning J̃ for module %s: %w", spec.Modules[i].Name, err)
			}
			treeSlots[ti] = jt
			return nil
		}); err != nil {
			return nil, err
		}
		treeCache := make(map[string]*controller.TreeJTilde, len(treeKeys))
		for ti, key := range treeKeys {
			treeCache[key] = treeSlots[ti]
		}
		m.artifacts.Trees = treeCache
		jtildes := make([]controller.JTilde, len(spec.Modules))
		for i := range m.modules {
			jtildes[i] = treeCache[moduleKey(spec.Modules[i])]
		}
		l2, err := controller.NewL2(cfg.L2, jtildes)
		if err != nil {
			return nil, err
		}
		m.l2 = l2
	}
	m.learnTime = time.Since(learnStart) //hpm:wallclock one-time learning-phase duration report; observe-only
	return m, nil
}

// hardwareKey fingerprints the control-relevant hardware of a computer
// (everything except its name).
func hardwareKey(cs cluster.ComputerSpec) string {
	return fmt.Sprintf("%v|%v|%v|%v", cs.FrequenciesHz, cs.SpeedFactor, cs.Power, cs.BootDelaySeconds)
}

// moduleKey fingerprints a module's composition.
func moduleKey(ms cluster.ModuleSpec) string {
	key := ""
	for _, cs := range ms.Computers {
		key += hardwareKey(cs) + ";"
	}
	return key
}

// Spec returns the cluster specification.
func (m *Manager) Spec() cluster.Spec { return m.spec }

// LearnTime returns the offline learning duration.
func (m *Manager) LearnTime() time.Duration { return m.learnTime }

// InjectFailure schedules computer comp of module mod to fail at the given
// simulation time (quantized to the next T_L0 boundary). Call before Run.
func (m *Manager) InjectFailure(at float64, mod, comp int) {
	m.failures = append(m.failures, failureEvent{at: at, module: mod, comp: comp})
}

// InjectRepair schedules a repair (the computer returns to the Off state
// and may be powered on again by the hierarchy).
func (m *Manager) InjectRepair(at float64, mod, comp int) {
	m.failures = append(m.failures, failureEvent{at: at, module: mod, comp: comp, isRepair: true})
}

// InjectPlan schedules a scenario failure plan, skipping entries whose
// (Module, Comp) indices are not in the cluster — the same contract the
// baseline and centralized runners apply via cluster.ApplyPlannedFailures,
// so one plan drives every policy identically. Call before Run/NewSession.
func (m *Manager) InjectPlan(plan []workload.FailureEvent) {
	for _, f := range plan {
		if f.Module < 0 || f.Module >= len(m.spec.Modules) {
			continue
		}
		if f.Comp < 0 || f.Comp >= len(m.spec.Modules[f.Module].Computers) {
			continue
		}
		if f.Repair {
			m.InjectRepair(f.At, f.Module, f.Comp)
		} else {
			m.InjectFailure(f.At, f.Module, f.Comp)
		}
	}
}

// InjectChaos schedules a sensor-fault chaos plan for sessions created
// afterwards: its sensor faults corrupt what the controllers observe (the
// plant and its accounting stay truthful), its availability events merge
// with the scenario failure plan, and a positive DecisionBudget caps the
// explored states of every LLC search — searches that exhaust it trip the
// deterministic degraded-tick fallback. An empty plan is a no-op: runs
// stay bit-identical to never calling InjectChaos. Call before
// Run/NewSession.
func (m *Manager) InjectChaos(p chaos.Plan) {
	m.chaos = p
	if p.DecisionBudget > 0 {
		for _, asm := range m.modules {
			asm.l1.SetMaxExplored(p.DecisionBudget)
			for _, l0 := range asm.l0s {
				l0.SetMaxExplored(p.DecisionBudget)
			}
		}
		if m.l2 != nil {
			m.l2.SetMaxExplored(p.DecisionBudget)
		}
	}
}

// SetL1Failpoint installs a test hook invoked at the top of every L1
// planning call with the module index and tick; a panicking hook
// exercises the degraded-tick recovery path. Nil (the default) disables
// it. Test seam only — never serialized, never set in production.
func (m *Manager) SetL1Failpoint(fn func(module, tick int)) { m.l1Failpoint = fn }

// maxBootDelay returns the longest boot delay in the cluster — the
// pre-roll the run uses to start from a warm, all-on configuration.
func (m *Manager) maxBootDelay() float64 {
	max := 0.0
	for _, ms := range m.spec.Modules {
		for _, cs := range ms.Computers {
			if cs.BootDelaySeconds > max {
				max = cs.BootDelaySeconds
			}
		}
	}
	return max
}
