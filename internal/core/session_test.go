package core

import (
	"math"
	"testing"

	"hierctl/internal/cluster"
	"hierctl/internal/series"
)

func seriesIdentical(t *testing.T, name string, a, b *series.Series) {
	t.Helper()
	if (a == nil) != (b == nil) {
		t.Fatalf("%s: nil mismatch", name)
	}
	if a == nil {
		return
	}
	if a.Len() != b.Len() {
		t.Fatalf("%s: length %d vs %d", name, a.Len(), b.Len())
	}
	for i := range a.Values {
		if a.Values[i] != b.Values[i] {
			t.Fatalf("%s: value %d diverged: %v vs %v", name, i, a.Values[i], b.Values[i])
		}
	}
}

func recordsIdentical(t *testing.T, batch, online *Record) {
	t.Helper()
	if batch.Completed != online.Completed || batch.Dropped != online.Dropped {
		t.Errorf("requests diverged: (%d, %d) vs (%d, %d)", batch.Completed, batch.Dropped, online.Completed, online.Dropped)
	}
	if batch.Energy != online.Energy {
		t.Errorf("energy diverged: %v vs %v", batch.Energy, online.Energy)
	}
	if batch.Switches != online.Switches || batch.Misroutes != online.Misroutes {
		t.Errorf("switches/misroutes diverged: (%d, %d) vs (%d, %d)", batch.Switches, batch.Misroutes, online.Switches, online.Misroutes)
	}
	if batch.ViolationFrac != online.ViolationFrac {
		t.Errorf("violation fraction diverged: %v vs %v", batch.ViolationFrac, online.ViolationFrac)
	}
	if batch.MeanResponse() != online.MeanResponse() {
		t.Errorf("mean response diverged: %v vs %v", batch.MeanResponse(), online.MeanResponse())
	}
	if batch.ResponseP50 != online.ResponseP50 || batch.ResponseP95 != online.ResponseP95 ||
		batch.ResponseP99 != online.ResponseP99 || batch.ResponseMax != online.ResponseMax {
		t.Error("latency percentiles diverged")
	}
	if batch.L0Explored != online.L0Explored || batch.L1Explored != online.L1Explored || batch.L2Explored != online.L2Explored {
		t.Error("explored counts diverged")
	}
	if batch.L0Decisions != online.L0Decisions || batch.L1Decisions != online.L1Decisions || batch.L2Decisions != online.L2Decisions {
		t.Error("decision counts diverged")
	}
	seriesIdentical(t, "Trace", batch.Trace, online.Trace)
	seriesIdentical(t, "PredictedL1", batch.PredictedL1, online.PredictedL1)
	seriesIdentical(t, "ActualL1", batch.ActualL1, online.ActualL1)
	seriesIdentical(t, "Operational", batch.Operational, online.Operational)
	seriesIdentical(t, "ResponseMean", batch.ResponseMean, online.ResponseMean)
	if len(batch.GammaModules) != len(online.GammaModules) {
		t.Fatalf("gamma series count %d vs %d", len(batch.GammaModules), len(online.GammaModules))
	}
	for i := range batch.GammaModules {
		seriesIdentical(t, "GammaModules", batch.GammaModules[i], online.GammaModules[i])
	}
	if len(batch.FreqByComputer) != len(online.FreqByComputer) {
		t.Fatalf("frequency series count %d vs %d", len(batch.FreqByComputer), len(online.FreqByComputer))
	}
	for name, s := range batch.FreqByComputer {
		seriesIdentical(t, "FreqByComputer["+name+"]", s, online.FreqByComputer[name])
	}
}

// TestStreamingSessionMatchesBatchRun pins the online engine to the batch
// one: a session that never sees the trace — only the streamed counts plus
// the same calibration prefix the batch run tunes on — must reproduce the
// batch record bit for bit. Failure injections ride along to cover the
// event-calendar ordering.
func TestStreamingSessionMatchesBatchRun(t *testing.T) {
	spec := cluster.Spec{Modules: []cluster.ModuleSpec{
		moduleOf("M1", 2), moduleOf("M2", 2),
	}}
	cfg := fastConfig()
	trace := series.New(0, 30, 60)
	for i := range trace.Values {
		trace.Values[i] = 900 + 600*math.Sin(float64(i)/5)
	}

	batchMgr, err := NewManager(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	batchMgr.InjectFailure(600, 0, 0)
	batchMgr.InjectRepair(1200, 0, 0)
	batch, err := batchMgr.Run(trace, testStore(t))
	if err != nil {
		t.Fatal(err)
	}

	onlineMgr, err := NewManager(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	onlineMgr.InjectFailure(600, 0, 0)
	onlineMgr.InjectRepair(1200, 0, 0)
	prefix := int(float64(trace.Len()) * cfg.TunePrefixFrac)
	sess, err := onlineMgr.NewSession(testStore(t), SessionConfig{
		BinSeconds:  trace.Step,
		Start:       trace.Start,
		Calibration: trace.Values[:prefix],
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, count := range trace.Values {
		if _, err := sess.ObserveBin(count); err != nil {
			t.Fatal(err)
		}
	}
	online, err := sess.Finish()
	if err != nil {
		t.Fatal(err)
	}
	recordsIdentical(t, batch, online)
}

func TestSessionBinDecisionShape(t *testing.T) {
	spec := cluster.Spec{Modules: []cluster.ModuleSpec{
		moduleOf("M1", 2), moduleOf("M2", 2),
	}}
	mgr, err := NewManager(spec, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	sess, err := mgr.NewSession(testStore(t), SessionConfig{BinSeconds: 30})
	if err != nil {
		t.Fatal(err)
	}
	var dec BinDecision
	for bin := 0; bin < 8; bin++ {
		dec, err = sess.ObserveBin(1200)
		if err != nil {
			t.Fatal(err)
		}
		if dec.Bin != bin {
			t.Fatalf("bin index %d, want %d", dec.Bin, bin)
		}
	}
	if dec.Time != 8*30 {
		t.Errorf("decision time %v, want 240", dec.Time)
	}
	if len(dec.Modules) != 2 {
		t.Fatalf("module decisions %d, want 2", len(dec.Modules))
	}
	if len(dec.GammaModules) != 2 {
		t.Fatalf("cluster shares %d, want 2 (L2 active)", len(dec.GammaModules))
	}
	if sum := dec.GammaModules[0] + dec.GammaModules[1]; math.Abs(sum-1) > 1e-9 {
		t.Errorf("Σγ_i = %v, want 1", sum)
	}
	for i, md := range dec.Modules {
		if len(md.Alpha) != 2 || len(md.Gamma) != 2 || len(md.FreqIdx) != 2 || len(md.FreqHz) != 2 {
			t.Fatalf("module %d decision lengths: %+v", i, md)
		}
		for j := range md.FreqIdx {
			on := md.FreqIdx[j] >= 0
			if on != (md.FreqHz[j] > 0) {
				t.Errorf("module %d computer %d: idx %d vs hz %v", i, j, md.FreqIdx[j], md.FreqHz[j])
			}
		}
	}
	if dec.Operational < 1 {
		t.Error("no operational computers under load")
	}
	bins, steps, simTime := sess.Progress()
	if bins != 8 || steps != 8 {
		t.Errorf("progress (%d, %d), want (8, 8)", bins, steps)
	}
	if simTime <= 0 {
		t.Error("sim time not advancing")
	}
	if _, err := sess.Finish(); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.ObserveBin(100); err == nil {
		t.Error("observe after finish: want error")
	}
	if _, err := sess.Finish(); err == nil {
		t.Error("double finish: want error")
	}
}

func TestSessionValidation(t *testing.T) {
	spec := cluster.Spec{Modules: []cluster.ModuleSpec{moduleOf("M1", 2)}}
	mgr, err := NewManager(spec, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	store := testStore(t)
	if _, err := mgr.NewSession(nil, SessionConfig{BinSeconds: 30}); err == nil {
		t.Error("nil store: want error")
	}
	if _, err := mgr.NewSession(store, SessionConfig{BinSeconds: 45}); err == nil {
		t.Error("misaligned bin width: want error")
	}
	if _, err := mgr.NewSession(store, SessionConfig{}); err == nil {
		t.Error("zero bin width and no trace: want error")
	}

	oracleCfg := fastConfig()
	oracleCfg.OracleForecast = true
	oracleMgr, err := NewManager(spec, oracleCfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := oracleMgr.NewSession(store, SessionConfig{BinSeconds: 30}); err == nil {
		t.Error("oracle without trace: want error")
	}

	// A session primed with a trace refuses to run past it.
	sess, err := mgr.NewSession(store, SessionConfig{Trace: steadyTrace(2, 100)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := sess.ObserveBin(100); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sess.ObserveBin(100); err == nil {
		t.Error("observe past the trace: want error")
	}
}

// TestManagerWithArtifactsSkipsLearning verifies a manager rebuilt from
// another's artifacts shares the learned objects and decides identically.
func TestManagerWithArtifactsSkipsLearning(t *testing.T) {
	spec := cluster.Spec{Modules: []cluster.ModuleSpec{
		moduleOf("M1", 2), moduleOf("M2", 2),
	}}
	cfg := fastConfig()
	first, err := NewManager(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	art := first.Artifacts()
	if len(art.GMaps) == 0 {
		t.Fatal("no gmaps retained")
	}
	if len(art.Trees) == 0 {
		t.Fatal("no module trees retained (multi-module cluster)")
	}
	second, err := NewManagerWithArtifacts(spec, cfg, &art)
	if err != nil {
		t.Fatal(err)
	}
	for key, g := range art.GMaps {
		if second.artifacts.GMaps[key] != g {
			t.Error("gmap relearned despite supplied artifact")
		}
	}
	for key, jt := range art.Trees {
		if second.artifacts.Trees[key] != jt {
			t.Error("module tree relearned despite supplied artifact")
		}
	}
	trace := steadyTrace(20, 900)
	a, err := first.Run(trace, testStore(t))
	if err != nil {
		t.Fatal(err)
	}
	b, err := second.Run(trace, testStore(t))
	if err != nil {
		t.Fatal(err)
	}
	recordsIdentical(t, a, b)
}
