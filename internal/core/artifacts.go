package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"hierctl/internal/controller"
)

// Artifact cache: offline learning results are keyed by a fingerprint of
// everything that shaped them (hardware + learning configuration), so a
// stale or foreign artifact can never be loaded for the wrong setup —
// a changed configuration simply hashes to a different file name.

func artifactName(kind, key string) string {
	sum := sha256.Sum256([]byte(key))
	return kind + "-" + hex.EncodeToString(sum[:8]) + ".gob"
}

// loadOrLearnGMap returns a cached abstraction map when ArtifactDir holds
// one for this configuration, otherwise learns and caches it.
func loadOrLearnGMap(cfg Config, hardware string, learn func() (*controller.GMap, error)) (*controller.GMap, error) {
	if cfg.ArtifactDir == "" {
		return learn()
	}
	key := fmt.Sprintf("%+v|%+v|%s", cfg.L0, cfg.GMap, hardware)
	path := filepath.Join(cfg.ArtifactDir, artifactName("gmap", key))
	if f, err := os.Open(path); err == nil {
		g, err := controller.ReadGMap(f)
		closeErr := f.Close()
		if err == nil && closeErr == nil {
			return g, nil
		}
		// Unreadable artifact: fall through to relearn and overwrite.
	}
	g, err := learn()
	if err != nil {
		return nil, err
	}
	if err := writeArtifact(path, g.Save); err != nil {
		return nil, err
	}
	return g, nil
}

// loadOrLearnTree is loadOrLearnGMap for module cost trees.
func loadOrLearnTree(cfg Config, module string, learn func() (*controller.TreeJTilde, error)) (*controller.TreeJTilde, error) {
	if cfg.ArtifactDir == "" {
		return learn()
	}
	key := fmt.Sprintf("%+v|%+v|%+v|%+v|%s", cfg.L0, cfg.L1, cfg.GMap, cfg.ModuleSim, module)
	path := filepath.Join(cfg.ArtifactDir, artifactName("jtree", key))
	if f, err := os.Open(path); err == nil {
		jt, err := controller.ReadTreeJTilde(f)
		closeErr := f.Close()
		if err == nil && closeErr == nil {
			return jt, nil
		}
	}
	jt, err := learn()
	if err != nil {
		return nil, err
	}
	if err := writeArtifact(path, jt.Save); err != nil {
		return nil, err
	}
	return jt, nil
}

// writeArtifact writes via a temp file and rename so a crashed run never
// leaves a truncated artifact behind.
func writeArtifact(path string, write func(w io.Writer) error) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("core: create artifact: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := write(tmp); err != nil {
		tmp.Close()
		return fmt.Errorf("core: write artifact %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("core: close artifact %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("core: commit artifact %s: %w", path, err)
	}
	return nil
}
