package core

import (
	"errors"
	"fmt"
	"math"

	"hierctl/internal/cluster"
	"hierctl/internal/controller"
	"hierctl/internal/engine"
	"hierctl/internal/llc"
	"hierctl/internal/par"
	"hierctl/internal/series"
	"hierctl/internal/workload"
)

// errPanic wraps a panic recovered from a controller's search so the
// degraded-tick fallback can treat it like an exhausted decision budget.
// Any other error still aborts the run.
var errPanic = errors.New("core: recovered controller panic")

// degradable reports whether a controller error may be absorbed by the
// deterministic fallback path instead of aborting the run: an exhausted
// decision budget (llc.ErrBudget) or a recovered panic.
func degradable(err error) bool {
	return errors.Is(err, llc.ErrBudget) || errors.Is(err, errPanic)
}

// Run simulates the hierarchy against the plant for the whole trace and
// returns the recorded results. The trace's bin width must be an integer
// multiple of T_L0. The run is deterministic for a given (spec, config,
// trace, store) tuple.
//
// Run is the batch replay built on the incremental session engine: it
// opens a session primed with the full trace and streams the trace's bins
// through it, so batch replays and online operation share one code path.
func (m *Manager) Run(trace *series.Series, store *workload.Store) (*Record, error) {
	if trace == nil || trace.Len() == 0 {
		return nil, fmt.Errorf("core: empty trace")
	}
	s, err := m.NewSession(store, SessionConfig{Trace: trace})
	if err != nil {
		return nil, err
	}
	for _, count := range trace.Values {
		if _, err := s.ObserveBin(count); err != nil {
			return nil, err
		}
	}
	return s.Finish()
}

// run is the hierarchy's engine.Policy adapter: the shared harness
// (internal/engine) owns the clock, request feed, failure schedule,
// dispatch, and plant advance; run owns the L2/L1/L0 control flow and the
// record. Decide runs the three levels at their cadences and returns the
// dispatch fractions; Observe folds the harvested interval back into the
// estimators.
type run struct {
	m       *Manager
	trace   *series.Series // full trace when known up front; nil when streaming
	sub     int            // T_L0 bins per observation bin
	tl0     float64
	binStep float64 // observation bin width in seconds
	start0  float64 // workload-clock time of the first bin
	l1Every int
	l2Every int
	workers int // L1 fan-out width

	// totalSteps is trace.Len()*sub when the trace is known (bounds the
	// oracle lookups); 0 when streaming.
	totalSteps int

	plant   *cluster.Plant // set by the harness via initPolicy
	preroll float64

	rec *Record
	// observed collects the ingested arrival counts when no trace was
	// given up front; it then serves as Record.Trace.
	observed *series.Series

	// freqIdx is the last L0 frequency decision per computer (-1 while
	// off or failed), captured for the per-bin decision payload.
	freqIdx [][]int

	gammaModules []float64
	// lambdaGRate is the cluster arrival-rate forecast at the last L2
	// boundary (requests/second), used as a floor for module forecasts
	// right after reallocations.
	lambdaGRate float64
	// predActual collects (predicted, actual) L1-level arrival pairs,
	// one per module per T_L1 boundary, for the Fig. 4 series.
	predActual [][2]float64

	arrivedTL2   int
	violations   int
	responseBins int

	// L2 observation scratch, reused across periods (the controller
	// reads, never retains it).
	l2QAvg  []float64
	l2CHat  []float64
	l2Avail []bool
}

// capacities returns relative capacity weights used for seed allocations.
func capacities(specs []cluster.ComputerSpec) []float64 {
	out := make([]float64, len(specs))
	for j, s := range specs {
		out[j] = s.SpeedFactor
	}
	return out
}

// Name implements engine.Policy.
func (r *run) Name() string { return "hierarchical-llc" }

// Init implements engine.Policy (see initPolicy in session.go: the L1
// state seeding and record construction live next to NewSession, whose
// estimator setup they complete).
func (r *run) Init(p *cluster.Plant) error { return r.initPolicy(p) }

// Decide implements engine.Policy: one T_L0 control period at step index
// k. The failure schedule has already fired for this boundary (the
// harness applies it ahead of the controllers, matching the event
// calendar's replay order); the returned fractions dispatch this step's
// arrivals.
func (r *run) Decide(k int, obs engine.TickObs) (engine.Settings, error) {
	m := r.m
	degraded := false

	// (1) L2: redistribute load across modules. A budget trip or panic
	// leaves the previous split in force (decideL2 errors before it
	// mutates L2 state); the fallback only re-appends the series sample
	// so the record cadence is preserved.
	if m.l2 != nil && k%r.l2Every == 0 {
		if err := r.decideL2Guarded(k); err != nil {
			if !degradable(err) {
				return engine.Settings{}, err
			}
			r.fallbackL2()
			degraded = true
		}
	}

	// (2) L1 per module: operating states and within-module fractions.
	// The modules' searches are independent (§3's decomposition), so the
	// planning fans out across the worker pool; plant mutations and
	// record appends are applied sequentially in module order afterwards,
	// keeping the run bit-identical to the sequential engine. Errors are
	// captured in the plans — the closures always return nil, so par.For
	// never early-exits and every module's estimator folds still run.
	if k%r.l1Every == 0 {
		plans := make([]l1Plan, len(m.modules))
		_ = par.For(r.workers, len(m.modules), func(i int) error {
			plans[i] = r.planL1Guarded(i, k)
			return nil
		})
		for i := range m.modules {
			if plans[i].err != nil {
				if !degradable(plans[i].err) {
					return engine.Settings{}, plans[i].err
				}
				// Deterministic safe fallback: every non-failed computer
				// powered, capacity-proportional split — a pure function
				// of the module's plant state, so degraded runs stay
				// reproducible.
				dec, err := r.fallbackL1(i)
				if err != nil {
					return engine.Settings{}, err
				}
				plans[i].dec = dec
				plans[i].err = nil
				degraded = true
			}
			if err := r.applyL1(i, plans[i]); err != nil {
				return engine.Settings{}, err
			}
		}
		r.rec.Operational.Values = append(r.rec.Operational.Values, float64(r.plant.OperationalComputers()))
	}

	// (3) L0 per computer: frequency for the next period. Budget trips
	// and panics degrade to full speed per computer inside decideL0.
	for i, asm := range m.modules {
		deg, err := r.decideL0(i, asm, k)
		if err != nil {
			return engine.Settings{}, err
		}
		degraded = degraded || deg
	}

	// (4) Dispatch fractions for this step's arrivals. Only computers that
	// are fully on receive weight — booting machines would sit on requests
	// for up to the boot delay; the plant renormalizes the rest.
	if obs.PendingRequests == 0 {
		return engine.Settings{Degraded: degraded}, nil
	}
	gm := r.gammaModules
	if gm == nil {
		gm = make([]float64, len(m.modules))
		for i := range gm {
			gm[i] = 1 / float64(len(gm))
		}
	}
	gc := make([][]float64, len(m.modules))
	for i, asm := range m.modules {
		weights := make([]float64, len(asm.specs))
		for j := range asm.specs {
			comp, err := r.plant.Computer(i, j)
			if err != nil {
				return engine.Settings{}, err
			}
			if comp.State() == cluster.PowerOn {
				weights[j] = asm.gamma[j]
			}
		}
		gc[i] = weights
	}
	return engine.Settings{GammaModules: gm, GammaComputers: gc, Degraded: degraded}, nil
}

// decideL2Guarded is decideL2 with panic recovery: a panicking search is
// absorbed into the degraded-tick fallback like an exhausted budget.
func (r *run) decideL2Guarded(k int) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = fmt.Errorf("%w: L2: %v", errPanic, v)
		}
	}()
	return r.decideL2(k)
}

// fallbackL2 is the L2 deterministic safe fallback: the previous split
// (equal shares before any decision) stays in force, re-appended to the
// record series so the per-boundary cadence is preserved.
func (r *run) fallbackL2() {
	m := r.m
	if r.gammaModules == nil {
		gm := make([]float64, len(m.modules))
		for i := range gm {
			gm[i] = 1 / float64(len(gm))
		}
		r.gammaModules = gm
	}
	for i := range m.modules {
		r.rec.GammaModules[i].Values = append(r.rec.GammaModules[i].Values, r.gammaModules[i])
	}
}

// fallbackL1 computes module i's deterministic threshold-style safe
// decision: every non-failed computer powered, capacity-proportional
// quantized split (all-off when nothing is available, mirroring the L1's
// own degraded path). The result is a pure function of the module's
// plant state, and it reseeds the L1's bounded search so the next
// healthy tick resumes from a coherent previous decision.
func (r *run) fallbackL1(i int) (controller.L1Decision, error) {
	asm := r.m.modules[i]
	alpha := make([]bool, len(asm.specs))
	avail := 0
	for j := range asm.specs {
		c, err := r.plant.Computer(i, j)
		if err != nil {
			return controller.L1Decision{}, err
		}
		if c.State() != cluster.Failed {
			alpha[j] = true
			avail++
		}
	}
	gamma := make([]float64, len(asm.specs))
	if avail > 0 {
		g, err := controller.SnapSimplex(capacities(asm.specs), alpha, r.m.cfg.L1.Quantum)
		if err != nil {
			return controller.L1Decision{}, err
		}
		gamma = g
	}
	if err := asm.l1.SetState(alpha, gamma); err != nil {
		return controller.L1Decision{}, err
	}
	return controller.L1Decision{Alpha: alpha, Gamma: gamma}, nil
}

// decideL2 runs the cluster-level controller and stores its fractions.
func (r *run) decideL2(k int) error {
	m := r.m
	// Fold the completed T_L2 interval into the cluster filter and band.
	if k > 0 {
		prior := m.kalmanG.Observe(float64(r.arrivedTL2))
		if m.kalmanG.Steps() > 1 {
			m.bandG.Observe(prior, float64(r.arrivedTL2))
		}
		r.arrivedTL2 = 0
	}
	lambdaG := math.Max(0, m.kalmanG.Forecast(1))
	deltaG := m.bandG.Delta()
	if m.cfg.OracleForecast {
		mean, peak := r.futureProfile(k, r.l2Every)
		lambdaG = mean * float64(r.l2Every)
		deltaG = (peak - mean) * float64(r.l2Every)
	}
	// Reused observation scratch (the L2 reads, never retains it).
	if r.l2QAvg == nil {
		r.l2QAvg = make([]float64, len(m.modules))
		r.l2CHat = make([]float64, len(m.modules))
		r.l2Avail = make([]bool, len(m.modules))
	}
	obs := controller.L2Observation{
		QAvg:      r.l2QAvg,
		LambdaHat: lambdaG / m.cfg.L2.PeriodSeconds,
		Delta:     deltaG / m.cfg.L2.PeriodSeconds,
		CHat:      r.l2CHat,
		Available: r.l2Avail,
	}
	for i, asm := range m.modules {
		obs.QAvg[i] = float64(asm.lastAgg.QueueLen) / float64(len(asm.specs))
		obs.CHat[i] = r.cHat(asm)
		obs.Available[i] = moduleAvailable(r.plant, i)
	}
	dec, err := m.l2.Decide(obs)
	if err != nil {
		return err
	}
	// Propagate the reallocation to the module forecasts: λ_i = γ_i·λ_g,
	// so a module whose share changed expects arrivals scaled by the
	// share ratio until its own filter has seen the new regime.
	for i, asm := range m.modules {
		ratio := 1.0
		switch {
		case r.gammaModules != nil && r.gammaModules[i] > 0.01:
			ratio = dec.Gamma[i] / r.gammaModules[i]
		case dec.Gamma[i] > 0:
			ratio = 5 // from (near) zero share: trust the γ_i·λ_g floor
		}
		asm.pendingRatio = math.Min(5, math.Max(0.2, ratio))
	}
	r.lambdaGRate = obs.LambdaHat
	for i := range m.modules {
		r.rec.GammaModules[i].Values = append(r.rec.GammaModules[i].Values, dec.Gamma[i])
	}
	r.gammaModules = dec.Gamma
	return nil
}

// l1Plan is one module's L1 outcome, computed in parallel and applied to
// the shared plant and record sequentially in module order.
type l1Plan struct {
	dec controller.L1Decision
	// predActual is the (predicted, actual) pair for the Fig. 4 series;
	// hasPredActual marks boundaries where the module had a forecast.
	predActual    [2]float64
	hasPredActual bool
	// err is the planning failure, captured here instead of returned
	// through par.For so the fan-out never early-exits (which would make
	// which sibling modules folded their estimators depend on timing).
	err error
}

// planL1Guarded is planL1 with panic recovery and in-plan error capture.
func (r *run) planL1Guarded(i, k int) (plan l1Plan) {
	defer func() {
		if v := recover(); v != nil {
			plan.err = fmt.Errorf("%w: L1 module %d: %v", errPanic, i, v)
		}
	}()
	var err error
	plan, err = r.planL1(i, k)
	plan.err = err
	return plan
}

// planL1 runs one module's L1 controller. It touches only module i's own
// estimators and reads (never mutates) the shared plant, so plans for
// different modules may run concurrently.
func (r *run) planL1(i int, k int) (l1Plan, error) {
	m := r.m
	asm := m.modules[i]
	var plan l1Plan

	// Fold the completed T_L1 interval into the module filter and band;
	// asm.predictedTL1 still holds the forecast made at the previous
	// boundary at this point.
	if k > 0 {
		asm.kalman1.Observe(float64(asm.arrivedTL1))
		if asm.hasPredicted {
			asm.band.Observe(asm.predictedTL1, float64(asm.arrivedTL1))
			plan.predActual = [2]float64{asm.predictedTL1, float64(asm.arrivedTL1)}
			plan.hasPredActual = true
		}
		asm.arrivedTL1 = 0
	}
	asm.predictedTL1 = math.Max(0, asm.kalman1.Forecast(1))
	var oracleDelta float64
	if m.cfg.OracleForecast {
		mean, peak := r.futureProfile(k, r.l1Every)
		asm.predictedTL1 = r.moduleShare(i) * mean * float64(r.l1Every)
		// Perfect information includes the within-period profile: hedge
		// the decision against the true peak sub-period, not a guess.
		oracleDelta = r.moduleShare(i) * (peak - mean) / r.tl0
	}
	asm.hasPredicted = true

	if asm.obsQueues == nil {
		asm.obsQueues = make([]float64, len(asm.specs))
		asm.obsAvail = make([]bool, len(asm.specs))
	}
	queues, avail := asm.obsQueues, asm.obsAvail
	for j := range asm.specs {
		queues[j] = float64(asm.lastPer[j].QueueLen)
		comp, err := r.plant.Computer(i, j)
		if err != nil {
			return plan, err
		}
		avail[j] = comp.State() != cluster.Failed
	}
	own := asm.predictedTL1 / m.cfg.L1.PeriodSeconds
	lambdaHat := asm.pendingRatio * own
	if m.l2 != nil && r.gammaModules != nil && !m.cfg.OracleForecast {
		// λ_i = γ_i·λ_g floor right after a reallocation (Fig. 2b).
		if floor := r.gammaModules[i] * r.lambdaGRate; floor > lambdaHat {
			lambdaHat = floor
		}
	}
	if m.cfg.OracleForecast {
		lambdaHat = own
	}
	asm.pendingRatio = 1
	// Carry the correction down to the L0 filters for this L1 period.
	asm.l0Ratio = 1
	if own > 1e-9 {
		asm.l0Ratio = math.Min(5, math.Max(0.2, lambdaHat/own))
	}
	delta := asm.band.Delta() / m.cfg.L1.PeriodSeconds
	if m.cfg.OracleForecast {
		delta = oracleDelta
	}
	obs := controller.L1Observation{
		QueueLens: queues,
		LambdaHat: lambdaHat,
		Delta:     delta,
		CHat:      r.cHat(asm),
		Available: avail,
	}
	if m.l1Failpoint != nil {
		m.l1Failpoint(i, k)
	}
	dec, err := asm.l1.Decide(obs)
	if err != nil {
		return plan, err
	}
	plan.dec = dec
	return plan, nil
}

// applyL1 commits one module's planned decision: the Fig. 4 sample, the
// plant's on/off switches, and the module's dispatch fractions. Called
// sequentially in module order.
func (r *run) applyL1(i int, plan l1Plan) error {
	asm := r.m.modules[i]
	if plan.hasPredActual {
		r.predActual = append(r.predActual, plan.predActual)
	}
	dec := plan.dec
	for j := range asm.specs {
		if dec.Alpha[j] && !r.isOperational(i, j) {
			if err := r.plant.PowerOn(i, j); err != nil {
				return err
			}
		}
		if !dec.Alpha[j] && r.isOperational(i, j) {
			if err := r.plant.PowerOff(i, j); err != nil {
				return err
			}
		}
	}
	asm.alpha = dec.Alpha
	asm.gamma = dec.Gamma
	return nil
}

// isOperational reports whether computer (i, j) is on or booting.
func (r *run) isOperational(i, j int) bool {
	c, err := r.plant.Computer(i, j)
	if err != nil {
		return false
	}
	return c.State() == cluster.PowerOn || c.State() == cluster.Booting
}

// decideL0 runs the frequency controllers of module i at step k. A
// computer whose search trips the decision budget or panics degrades to
// full speed — the threshold-safe setting — and the tick is flagged; any
// other error aborts.
func (r *run) decideL0(i int, asm *moduleAsm, k int) (degraded bool, err error) {
	m := r.m
	cHat := r.cHat(asm)
	if cap(asm.l0Lambda) < m.cfg.L0.Horizon {
		asm.l0Lambda = make([]float64, m.cfg.L0.Horizon)
	}
	for j := range asm.specs {
		comp, err := r.plant.Computer(i, j)
		if err != nil {
			return degraded, err
		}
		if comp.State() == cluster.Failed || comp.State() == cluster.PowerOff {
			r.freqIdx[i][j] = -1
			r.recordFreq(asm.specs[j].Name, 0)
			continue
		}
		lambda := asm.l0Lambda[:m.cfg.L0.Horizon]
		for h := range lambda {
			var forecastCount float64
			if m.cfg.OracleForecast {
				forecastCount = r.moduleShare(i) * r.futureCount(k+h, 1)
			} else {
				forecastCount = asm.l0Ratio * math.Max(0, asm.kalman0.Forecast(h+1))
			}
			lambda[h] = asm.gamma[j] * forecastCount / r.tl0
		}
		delta := asm.gamma[j] * asm.band0.Delta() / r.tl0
		if m.cfg.OracleForecast {
			delta = 0
		}
		idx, err := decideBandedGuarded(asm.l0s[j], float64(asm.lastPer[j].QueueLen), lambda, delta, cHat)
		if err != nil {
			if !degradable(err) {
				return degraded, err
			}
			idx = len(asm.specs[j].FrequenciesHz) - 1
			degraded = true
		}
		if err := r.plant.SetFrequency(i, j, idx); err != nil {
			return degraded, err
		}
		r.freqIdx[i][j] = idx
		r.recordFreq(asm.specs[j].Name, asm.specs[j].FrequenciesHz[idx])
	}
	return degraded, nil
}

// decideBandedGuarded is L0.DecideBanded with panic recovery.
func decideBandedGuarded(l0 *controller.L0, queueLen float64, lambda []float64, delta, cHat float64) (idx int, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = fmt.Errorf("%w: L0: %v", errPanic, v)
		}
	}()
	return l0.DecideBanded(queueLen, lambda, delta, cHat)
}

func (r *run) recordFreq(name string, hz float64) {
	if s, ok := r.rec.FreqByComputer[name]; ok {
		s.Values = append(s.Values, hz)
	}
}

// Observe implements engine.Policy: fold the plant interval the harness
// just harvested into the estimators and records.
func (r *run) Observe(k int, stats []engine.ModuleStats) error {
	m := r.m
	var respSum float64
	var respN int
	for i, asm := range m.modules {
		agg, per := stats[i].Agg, stats[i].Per
		asm.lastAgg = agg
		asm.lastPer = per
		prior := asm.kalman0.Observe(float64(agg.Arrived))
		if asm.kalman0.Steps() > 1 {
			asm.band0.Observe(prior, float64(agg.Arrived))
		}
		asm.arrivedTL1 += agg.Arrived
		r.arrivedTL2 += agg.Arrived
		if agg.Completed > 0 {
			asm.cEst.Observe(agg.MeanDemand)
			respSum += agg.MeanResponse * float64(agg.Completed)
			respN += agg.Completed
		}
	}
	mean := 0.0
	if respN > 0 {
		mean = respSum / float64(respN)
		r.responseBins++
		if mean > m.cfg.L0.TargetResponse {
			r.violations++
		}
	}
	r.rec.ResponseMean.Values = append(r.rec.ResponseMean.Values, mean)
	return nil
}

// futureCount returns the true request count arriving in steps [k, k+n),
// read straight from the trace — the oracle forecast.
func (r *run) futureCount(k, n int) float64 {
	total := 0.0
	for s := k; s < k+n && s < r.totalSteps; s++ {
		total += r.trace.Values[s/r.sub] / float64(r.sub)
	}
	return total
}

// futureProfile returns the mean and peak per-step request counts over
// steps [k, k+n) — the oracle's within-period profile.
func (r *run) futureProfile(k, n int) (mean, peak float64) {
	count := 0
	for s := k; s < k+n && s < r.totalSteps; s++ {
		v := r.trace.Values[s/r.sub] / float64(r.sub)
		mean += v
		if v > peak {
			peak = v
		}
		count++
	}
	if count > 0 {
		mean /= float64(count)
	}
	return mean, peak
}

// moduleShare returns module i's current fraction of the global arrivals.
func (r *run) moduleShare(i int) float64 {
	if r.gammaModules != nil {
		return r.gammaModules[i]
	}
	return 1 / float64(len(r.m.modules))
}

// cHat returns the module's processing-time estimate.
func (r *run) cHat(asm *moduleAsm) float64 {
	if asm.cEst.Started() {
		return asm.cEst.Value()
	}
	return r.m.cfg.DefaultCHat
}

func moduleAvailable(p *cluster.Plant, i int) bool {
	for j := 0; j < p.ModuleSize(i); j++ {
		c, err := p.Computer(i, j)
		if err != nil {
			return false
		}
		if c.State() != cluster.Failed {
			return true
		}
	}
	return false
}

// finish assembles the Record. The harness has already drained in-flight
// work and closed the energy accounting.
func (r *run) finish() (*Record, error) {
	m := r.m
	rec := r.rec

	// Assemble the Fig. 4 prediction series: per T_L1 boundary, sum the
	// per-module predictions and actuals.
	per := len(m.modules)
	for i := 0; i+per <= len(r.predActual); i += per {
		var p, a float64
		for j := 0; j < per; j++ {
			p += r.predActual[i+j][0]
			a += r.predActual[i+j][1]
		}
		rec.PredictedL1.Values = append(rec.PredictedL1.Values, p)
		rec.ActualL1.Values = append(rec.ActualL1.Values, a)
	}

	rec.Energy = r.plant.Accountant().TotalEnergy()
	rec.Switches = r.plant.Accountant().TotalSwitches()
	rec.Misroutes = r.plant.Misroutes()
	lat := r.plant.Latencies()
	rec.ResponseP50 = lat.Quantile(0.50)
	rec.ResponseP95 = lat.Quantile(0.95)
	rec.ResponseP99 = lat.Quantile(0.99)
	rec.ResponseMax = lat.Max()
	for i := range m.modules {
		for j := 0; j < r.plant.ModuleSize(i); j++ {
			c, err := r.plant.Computer(i, j)
			if err != nil {
				return nil, err
			}
			rec.Completed += c.TotalCompleted()
			rec.Dropped += c.TotalDropped()
			rec.ResponseStats.Merge(c.LifetimeResponse())
		}
	}
	if r.responseBins > 0 {
		rec.ViolationFrac = float64(r.violations) / float64(r.responseBins)
	}
	for _, asm := range m.modules {
		for _, l0 := range asm.l0s {
			e, d, ct := l0.Overhead()
			rec.L0Explored += e
			rec.L0Decisions += d
			rec.L0Time += ct
		}
		e, d, ct := asm.l1.Overhead()
		rec.L1Explored += e
		rec.L1Decisions += d
		rec.L1Time += ct
	}
	if m.l2 != nil {
		e, d, ct := m.l2.Overhead()
		rec.L2Explored = e
		rec.L2Decisions = d
		rec.L2Time = ct
	}
	return rec, nil
}
