package core

import (
	"fmt"
	"math"

	"hierctl/internal/cluster"
	"hierctl/internal/controller"
	"hierctl/internal/des"
	"hierctl/internal/forecast"
	"hierctl/internal/par"
	"hierctl/internal/series"
	"hierctl/internal/workload"
)

// Run simulates the hierarchy against the plant for the whole trace and
// returns the recorded results. The trace's bin width must be an integer
// multiple of T_L0. The run is deterministic for a given (spec, config,
// trace, store) tuple.
func (m *Manager) Run(trace *series.Series, store *workload.Store) (*Record, error) {
	if trace == nil || trace.Len() == 0 {
		return nil, fmt.Errorf("core: empty trace")
	}
	if store == nil {
		return nil, fmt.Errorf("core: nil store")
	}
	tl0 := m.cfg.L0.PeriodSeconds
	sub := int(trace.Step/tl0 + 0.5)
	if sub < 1 || math.Abs(float64(sub)*tl0-trace.Step) > 1e-6 {
		return nil, fmt.Errorf("core: trace bin %vs is not a multiple of T_L0 %vs", trace.Step, tl0)
	}
	r := &run{
		m:       m,
		trace:   trace,
		sub:     sub,
		tl0:     tl0,
		l1Every: int(m.cfg.L1.PeriodSeconds/tl0 + 0.5),
		l2Every: int(m.cfg.L2.PeriodSeconds/tl0 + 0.5),
		workers: par.Workers(m.cfg.Parallelism),
	}
	if err := r.prepare(store); err != nil {
		return nil, err
	}
	if err := r.execute(); err != nil {
		return nil, err
	}
	return r.finish()
}

// run carries the state of one simulation.
type run struct {
	m                *Manager
	trace            *series.Series
	sub              int // T_L0 bins per trace bin
	tl0              float64
	l1Every, l2Every int
	workers          int // L1 fan-out width

	plant   *cluster.Plant
	gen     *workload.Generator
	preroll float64
	steps   int

	rec *Record

	// pending holds request batches awaiting dispatch, one per T_L0 step.
	pending [][]workload.Request

	gammaModules []float64
	// lambdaGRate is the cluster arrival-rate forecast at the last L2
	// boundary (requests/second), used as a floor for module forecasts
	// right after reallocations.
	lambdaGRate float64
	// predActual collects (predicted, actual) L1-level arrival pairs,
	// one per module per T_L1 boundary, for the Fig. 4 series.
	predActual [][2]float64

	arrivedTL2   int
	violations   int
	responseBins int
}

// prepare builds the plant, tunes the Kalman filters on the trace prefix,
// and pre-rolls the boot so the trace starts against a warm cluster.
func (r *run) prepare(store *workload.Store) error {
	m := r.m
	plant, err := cluster.NewPlant(m.spec, des.RNG(m.cfg.Seed, "dispatch"))
	if err != nil {
		return err
	}
	r.plant = plant
	r.gen, err = workload.NewGenerator(r.trace, store, des.RNG(m.cfg.Seed, "workload"))
	if err != nil {
		return err
	}

	// Tune Kalman noise parameters on the trace prefix (§4.3). The same
	// tuned parameters serve all levels: the filter gain depends on the
	// Q/R ratios, which are scale-invariant across aggregation levels.
	prefixBins := int(float64(r.trace.Len()) * m.cfg.TunePrefixFrac)
	ql, qt, ro := 1.0, 0.1, 10.0 // fallback prior
	if prefixBins >= 8 {
		tuned, _, err := forecast.TuneKalman(r.trace.Values[:prefixBins])
		if err != nil {
			return err
		}
		ql, qt, ro = tuned.Params()
	}
	newKalman := func() (*forecast.Kalman, error) { return forecast.NewKalman(ql, qt, ro) }
	for _, asm := range m.modules {
		if asm.kalman0, err = newKalman(); err != nil {
			return err
		}
		if asm.kalman1, err = newKalman(); err != nil {
			return err
		}
		asm.lastPer = make([]cluster.IntervalStats, len(asm.specs))
		asm.lastAgg = cluster.IntervalStats{}
		asm.arrivedTL1 = 0
		asm.hasPredicted = false
		asm.pendingRatio = 1
		asm.l0Ratio = 1
	}
	if m.kalmanG, err = newKalman(); err != nil {
		return err
	}
	if m.bandG, err = forecast.NewBand(m.cfg.BandSmoothing); err != nil {
		return err
	}

	// Pre-roll: boot every computer at t = 0 at full frequency; the
	// controllers scale down immediately if the load does not justify it.
	r.preroll = m.maxBootDelay()
	for i, asm := range m.modules {
		allOn := make([]bool, len(asm.specs))
		for j := range asm.specs {
			if err := plant.PowerOn(i, j); err != nil {
				return err
			}
			if err := plant.SetFrequency(i, j, len(asm.specs[j].FrequenciesHz)-1); err != nil {
				return err
			}
			allOn[j] = true
		}
		gamma, err := controller.SnapSimplex(capacities(asm.specs), allOn, m.cfg.L1.Quantum)
		if err != nil {
			return err
		}
		asm.alpha = allOn
		asm.gamma = gamma
		if err := asm.l1.SetState(allOn, gamma); err != nil {
			return err
		}
	}
	if r.preroll > 0 {
		if err := plant.Advance(r.preroll); err != nil {
			return err
		}
		for i := range m.modules {
			// Discard boot-interval stats.
			if _, _, err := plant.ModuleIntervalStats(i); err != nil {
				return err
			}
		}
	}

	r.steps = r.trace.Len() * r.sub
	r.rec = &Record{
		Trace:          r.trace,
		PredictedL1:    series.New(r.preroll+m.cfg.L1.PeriodSeconds, m.cfg.L1.PeriodSeconds, 0),
		ActualL1:       series.New(r.preroll+m.cfg.L1.PeriodSeconds, m.cfg.L1.PeriodSeconds, 0),
		Operational:    series.New(r.preroll, m.cfg.L1.PeriodSeconds, 0),
		ResponseMean:   series.New(r.preroll, r.tl0, 0),
		FreqByComputer: map[string]*series.Series{},
		TargetResponse: m.cfg.L0.TargetResponse,
		LearnTime:      m.learnTime,
	}
	if m.l2 != nil {
		r.rec.GammaModules = make([]*series.Series, len(m.modules))
		for i := range r.rec.GammaModules {
			r.rec.GammaModules[i] = series.New(r.preroll, m.cfg.L2.PeriodSeconds, 0)
		}
	}
	if m.cfg.RecordFrequencies {
		for _, ms := range m.spec.Modules {
			for _, cs := range ms.Computers {
				r.rec.FreqByComputer[cs.Name] = series.New(r.preroll, r.tl0, 0)
			}
		}
	}
	r.pending = make([][]workload.Request, r.steps)
	return nil
}

// capacities returns relative capacity weights used for seed allocations.
func capacities(specs []cluster.ComputerSpec) []float64 {
	out := make([]float64, len(specs))
	for j, s := range specs {
		out[j] = s.SpeedFactor
	}
	return out
}

// execute schedules the per-step control events and failure injections on
// the DES kernel and runs it to the end of the trace plus the drain tail.
func (r *run) execute() error {
	sim := des.New()
	var firstErr error
	fail := func(err error) {
		if firstErr == nil {
			firstErr = err
		}
		sim.Stop()
	}

	// Failure injections are quantized to T_L0 boundaries and scheduled
	// ahead of the step handler at the same instant (insertion order
	// breaks the tie).
	for _, f := range r.m.failures {
		f := f
		stepIdx := int(math.Ceil(f.at / r.tl0))
		at := r.preroll + float64(stepIdx)*r.tl0
		if _, err := sim.Schedule(at, func(*des.Simulator) {
			var err error
			if f.isRepair {
				err = r.plant.Repair(f.module, f.comp)
			} else {
				err = r.plant.Fail(f.module, f.comp)
			}
			if err != nil {
				fail(err)
			}
		}); err != nil {
			return err
		}
	}

	for k := 0; k < r.steps; k++ {
		k := k
		at := r.preroll + float64(k)*r.tl0
		if _, err := sim.Schedule(at, func(*des.Simulator) {
			if err := r.step(k); err != nil {
				fail(err)
			}
		}); err != nil {
			return err
		}
	}
	end := r.preroll + float64(r.steps)*r.tl0
	sim.Run(end + 1)
	if firstErr != nil {
		return firstErr
	}
	// Drain tail: let in-flight work complete into the aggregates.
	return r.plant.Advance(end + r.m.cfg.DrainSeconds)
}

// step runs one T_L0 control period starting at step index k.
func (r *run) step(k int) error {
	m := r.m
	t := r.preroll + float64(k)*r.tl0

	// (1) Pull the next trace bin into per-step batches when due.
	if k%r.sub == 0 {
		if err := r.pullBin(k); err != nil {
			return err
		}
	}

	// (2) L2: redistribute load across modules.
	if m.l2 != nil && k%r.l2Every == 0 {
		if err := r.decideL2(k); err != nil {
			return err
		}
	}

	// (3) L1 per module: operating states and within-module fractions.
	// The modules' searches are independent (§3's decomposition), so the
	// planning fans out across the worker pool; plant mutations and
	// record appends are applied sequentially in module order afterwards,
	// keeping the run bit-identical to the sequential engine.
	if k%r.l1Every == 0 {
		plans := make([]l1Plan, len(m.modules))
		if err := par.For(r.workers, len(m.modules), func(i int) error {
			var err error
			plans[i], err = r.planL1(i, k)
			return err
		}); err != nil {
			return err
		}
		for i := range m.modules {
			if err := r.applyL1(i, plans[i]); err != nil {
				return err
			}
		}
		r.rec.Operational.Values = append(r.rec.Operational.Values, float64(r.plant.OperationalComputers()))
	}

	// (4) L0 per computer: frequency for the next period.
	for i, asm := range m.modules {
		if err := r.decideL0(i, asm, k); err != nil {
			return err
		}
	}

	// (5) Dispatch this step's arrivals under the current fractions.
	if err := r.dispatch(k); err != nil {
		return err
	}

	// (6) Advance the plant through the period and harvest observations.
	if err := r.plant.Advance(t + r.tl0); err != nil {
		return err
	}
	return r.observe()
}

// pullBin generates the requests of the current trace bin and splits them
// into per-T_L0-step batches (arrival times are shifted by the pre-roll).
func (r *run) pullBin(k int) error {
	bin, reqs, ok := r.gen.NextBin()
	if !ok {
		return fmt.Errorf("core: trace exhausted at step %d", k)
	}
	binStart := r.trace.TimeAt(bin)
	for _, req := range reqs {
		offset := req.Arrival - binStart
		idx := k + int(offset/r.tl0)
		if idx >= r.steps {
			idx = r.steps - 1
		}
		// Rebase onto the simulation clock: trace time zero is the end
		// of the pre-roll (traces sliced mid-day have non-zero Start).
		req.Arrival += r.preroll - r.trace.Start
		r.pending[idx] = append(r.pending[idx], req)
	}
	return nil
}

// decideL2 runs the cluster-level controller and stores its fractions.
func (r *run) decideL2(k int) error {
	m := r.m
	// Fold the completed T_L2 interval into the cluster filter and band.
	if k > 0 {
		prior := m.kalmanG.Observe(float64(r.arrivedTL2))
		if m.kalmanG.Steps() > 1 {
			m.bandG.Observe(prior, float64(r.arrivedTL2))
		}
		r.arrivedTL2 = 0
	}
	lambdaG := math.Max(0, m.kalmanG.Forecast(1))
	deltaG := m.bandG.Delta()
	if m.cfg.OracleForecast {
		mean, peak := r.futureProfile(k, r.l2Every)
		lambdaG = mean * float64(r.l2Every)
		deltaG = (peak - mean) * float64(r.l2Every)
	}
	obs := controller.L2Observation{
		QAvg:      make([]float64, len(m.modules)),
		LambdaHat: lambdaG / m.cfg.L2.PeriodSeconds,
		Delta:     deltaG / m.cfg.L2.PeriodSeconds,
		CHat:      make([]float64, len(m.modules)),
		Available: make([]bool, len(m.modules)),
	}
	for i, asm := range m.modules {
		obs.QAvg[i] = float64(asm.lastAgg.QueueLen) / float64(len(asm.specs))
		obs.CHat[i] = r.cHat(asm)
		obs.Available[i] = moduleAvailable(r.plant, i)
	}
	dec, err := m.l2.Decide(obs)
	if err != nil {
		return err
	}
	// Propagate the reallocation to the module forecasts: λ_i = γ_i·λ_g,
	// so a module whose share changed expects arrivals scaled by the
	// share ratio until its own filter has seen the new regime.
	for i, asm := range m.modules {
		ratio := 1.0
		switch {
		case r.gammaModules != nil && r.gammaModules[i] > 0.01:
			ratio = dec.Gamma[i] / r.gammaModules[i]
		case dec.Gamma[i] > 0:
			ratio = 5 // from (near) zero share: trust the γ_i·λ_g floor
		}
		asm.pendingRatio = math.Min(5, math.Max(0.2, ratio))
	}
	r.lambdaGRate = obs.LambdaHat
	for i := range m.modules {
		r.rec.GammaModules[i].Values = append(r.rec.GammaModules[i].Values, dec.Gamma[i])
	}
	r.gammaModules = dec.Gamma
	return nil
}

// l1Plan is one module's L1 outcome, computed in parallel and applied to
// the shared plant and record sequentially in module order.
type l1Plan struct {
	dec controller.L1Decision
	// predActual is the (predicted, actual) pair for the Fig. 4 series;
	// hasPredActual marks boundaries where the module had a forecast.
	predActual    [2]float64
	hasPredActual bool
}

// planL1 runs one module's L1 controller. It touches only module i's own
// estimators and reads (never mutates) the shared plant, so plans for
// different modules may run concurrently.
func (r *run) planL1(i int, k int) (l1Plan, error) {
	m := r.m
	asm := m.modules[i]
	var plan l1Plan

	// Fold the completed T_L1 interval into the module filter and band;
	// asm.predictedTL1 still holds the forecast made at the previous
	// boundary at this point.
	if k > 0 {
		asm.kalman1.Observe(float64(asm.arrivedTL1))
		if asm.hasPredicted {
			asm.band.Observe(asm.predictedTL1, float64(asm.arrivedTL1))
			plan.predActual = [2]float64{asm.predictedTL1, float64(asm.arrivedTL1)}
			plan.hasPredActual = true
		}
		asm.arrivedTL1 = 0
	}
	asm.predictedTL1 = math.Max(0, asm.kalman1.Forecast(1))
	var oracleDelta float64
	if m.cfg.OracleForecast {
		mean, peak := r.futureProfile(k, r.l1Every)
		asm.predictedTL1 = r.moduleShare(i) * mean * float64(r.l1Every)
		// Perfect information includes the within-period profile: hedge
		// the decision against the true peak sub-period, not a guess.
		oracleDelta = r.moduleShare(i) * (peak - mean) / r.tl0
	}
	asm.hasPredicted = true

	queues := make([]float64, len(asm.specs))
	avail := make([]bool, len(asm.specs))
	for j := range asm.specs {
		queues[j] = float64(asm.lastPer[j].QueueLen)
		comp, err := r.plant.Computer(i, j)
		if err != nil {
			return plan, err
		}
		avail[j] = comp.State() != cluster.Failed
	}
	own := asm.predictedTL1 / m.cfg.L1.PeriodSeconds
	lambdaHat := asm.pendingRatio * own
	if m.l2 != nil && r.gammaModules != nil && !m.cfg.OracleForecast {
		// λ_i = γ_i·λ_g floor right after a reallocation (Fig. 2b).
		if floor := r.gammaModules[i] * r.lambdaGRate; floor > lambdaHat {
			lambdaHat = floor
		}
	}
	if m.cfg.OracleForecast {
		lambdaHat = own
	}
	asm.pendingRatio = 1
	// Carry the correction down to the L0 filters for this L1 period.
	asm.l0Ratio = 1
	if own > 1e-9 {
		asm.l0Ratio = math.Min(5, math.Max(0.2, lambdaHat/own))
	}
	delta := asm.band.Delta() / m.cfg.L1.PeriodSeconds
	if m.cfg.OracleForecast {
		delta = oracleDelta
	}
	obs := controller.L1Observation{
		QueueLens: queues,
		LambdaHat: lambdaHat,
		Delta:     delta,
		CHat:      r.cHat(asm),
		Available: avail,
	}
	dec, err := asm.l1.Decide(obs)
	if err != nil {
		return plan, err
	}
	plan.dec = dec
	return plan, nil
}

// applyL1 commits one module's planned decision: the Fig. 4 sample, the
// plant's on/off switches, and the module's dispatch fractions. Called
// sequentially in module order.
func (r *run) applyL1(i int, plan l1Plan) error {
	asm := r.m.modules[i]
	if plan.hasPredActual {
		r.predActual = append(r.predActual, plan.predActual)
	}
	dec := plan.dec
	for j := range asm.specs {
		if dec.Alpha[j] && !r.isOperational(i, j) {
			if err := r.plant.PowerOn(i, j); err != nil {
				return err
			}
		}
		if !dec.Alpha[j] && r.isOperational(i, j) {
			if err := r.plant.PowerOff(i, j); err != nil {
				return err
			}
		}
	}
	asm.alpha = dec.Alpha
	asm.gamma = dec.Gamma
	return nil
}

// isOperational reports whether computer (i, j) is on or booting.
func (r *run) isOperational(i, j int) bool {
	c, err := r.plant.Computer(i, j)
	if err != nil {
		return false
	}
	return c.State() == cluster.PowerOn || c.State() == cluster.Booting
}

// decideL0 runs the frequency controllers of module i at step k.
func (r *run) decideL0(i int, asm *moduleAsm, k int) error {
	m := r.m
	cHat := r.cHat(asm)
	for j := range asm.specs {
		comp, err := r.plant.Computer(i, j)
		if err != nil {
			return err
		}
		if comp.State() == cluster.Failed || comp.State() == cluster.PowerOff {
			r.recordFreq(asm.specs[j].Name, 0)
			continue
		}
		lambda := make([]float64, m.cfg.L0.Horizon)
		for h := range lambda {
			var forecastCount float64
			if m.cfg.OracleForecast {
				forecastCount = r.moduleShare(i) * r.futureCount(k+h, 1)
			} else {
				forecastCount = asm.l0Ratio * math.Max(0, asm.kalman0.Forecast(h+1))
			}
			lambda[h] = asm.gamma[j] * forecastCount / r.tl0
		}
		delta := asm.gamma[j] * asm.band0.Delta() / r.tl0
		if m.cfg.OracleForecast {
			delta = 0
		}
		idx, err := asm.l0s[j].DecideBanded(float64(asm.lastPer[j].QueueLen), lambda, delta, cHat)
		if err != nil {
			return err
		}
		if err := r.plant.SetFrequency(i, j, idx); err != nil {
			return err
		}
		r.recordFreq(asm.specs[j].Name, asm.specs[j].FrequenciesHz[idx])
	}
	return nil
}

func (r *run) recordFreq(name string, hz float64) {
	if s, ok := r.rec.FreqByComputer[name]; ok {
		s.Values = append(s.Values, hz)
	}
}

// dispatch routes this step's arrivals. Only computers that are fully on
// receive weight — booting machines would sit on requests for up to the
// boot delay; the plant renormalizes the remaining fractions.
func (r *run) dispatch(k int) error {
	reqs := r.pending[k]
	r.pending[k] = nil
	if len(reqs) == 0 {
		return nil
	}
	gm := r.gammaModules
	if gm == nil {
		gm = make([]float64, len(r.m.modules))
		for i := range gm {
			gm[i] = 1 / float64(len(gm))
		}
	}
	gc := make([][]float64, len(r.m.modules))
	for i, asm := range r.m.modules {
		weights := make([]float64, len(asm.specs))
		for j := range asm.specs {
			comp, err := r.plant.Computer(i, j)
			if err != nil {
				return err
			}
			if comp.State() == cluster.PowerOn {
				weights[j] = asm.gamma[j]
			}
		}
		gc[i] = weights
	}
	return r.plant.Dispatch(reqs, gm, gc)
}

// observe harvests the plant interval that just completed and updates the
// estimators and records.
func (r *run) observe() error {
	m := r.m
	var respSum float64
	var respN int
	for i, asm := range m.modules {
		agg, per, err := r.plant.ModuleIntervalStats(i)
		if err != nil {
			return err
		}
		asm.lastAgg = agg
		asm.lastPer = per
		prior := asm.kalman0.Observe(float64(agg.Arrived))
		if asm.kalman0.Steps() > 1 {
			asm.band0.Observe(prior, float64(agg.Arrived))
		}
		asm.arrivedTL1 += agg.Arrived
		r.arrivedTL2 += agg.Arrived
		if agg.Completed > 0 {
			asm.cEst.Observe(agg.MeanDemand)
			respSum += agg.MeanResponse * float64(agg.Completed)
			respN += agg.Completed
		}
	}
	mean := 0.0
	if respN > 0 {
		mean = respSum / float64(respN)
		r.responseBins++
		if mean > m.cfg.L0.TargetResponse {
			r.violations++
		}
	}
	r.rec.ResponseMean.Values = append(r.rec.ResponseMean.Values, mean)
	return nil
}

// futureCount returns the true request count arriving in steps [k, k+n),
// read straight from the trace — the oracle forecast.
func (r *run) futureCount(k, n int) float64 {
	total := 0.0
	for s := k; s < k+n && s < r.steps; s++ {
		total += r.trace.Values[s/r.sub] / float64(r.sub)
	}
	return total
}

// futureProfile returns the mean and peak per-step request counts over
// steps [k, k+n) — the oracle's within-period profile.
func (r *run) futureProfile(k, n int) (mean, peak float64) {
	count := 0
	for s := k; s < k+n && s < r.steps; s++ {
		v := r.trace.Values[s/r.sub] / float64(r.sub)
		mean += v
		if v > peak {
			peak = v
		}
		count++
	}
	if count > 0 {
		mean /= float64(count)
	}
	return mean, peak
}

// moduleShare returns module i's current fraction of the global arrivals.
func (r *run) moduleShare(i int) float64 {
	if r.gammaModules != nil {
		return r.gammaModules[i]
	}
	return 1 / float64(len(r.m.modules))
}

// cHat returns the module's processing-time estimate.
func (r *run) cHat(asm *moduleAsm) float64 {
	if asm.cEst.Started() {
		return asm.cEst.Value()
	}
	return r.m.cfg.DefaultCHat
}

func moduleAvailable(p *cluster.Plant, i int) bool {
	for j := 0; j < p.ModuleSize(i); j++ {
		c, err := p.Computer(i, j)
		if err != nil {
			return false
		}
		if c.State() != cluster.Failed {
			return true
		}
	}
	return false
}

// finish assembles the Record.
func (r *run) finish() (*Record, error) {
	m := r.m
	r.plant.FinishAccounting()
	rec := r.rec

	// Assemble the Fig. 4 prediction series: per T_L1 boundary, sum the
	// per-module predictions and actuals.
	per := len(m.modules)
	for i := 0; i+per <= len(r.predActual); i += per {
		var p, a float64
		for j := 0; j < per; j++ {
			p += r.predActual[i+j][0]
			a += r.predActual[i+j][1]
		}
		rec.PredictedL1.Values = append(rec.PredictedL1.Values, p)
		rec.ActualL1.Values = append(rec.ActualL1.Values, a)
	}

	rec.Energy = r.plant.Accountant().TotalEnergy()
	rec.Switches = r.plant.Accountant().TotalSwitches()
	rec.Misroutes = r.plant.Misroutes()
	lat := r.plant.Latencies()
	rec.ResponseP50 = lat.Quantile(0.50)
	rec.ResponseP95 = lat.Quantile(0.95)
	rec.ResponseP99 = lat.Quantile(0.99)
	rec.ResponseMax = lat.Max()
	for i := range m.modules {
		for j := 0; j < r.plant.ModuleSize(i); j++ {
			c, err := r.plant.Computer(i, j)
			if err != nil {
				return nil, err
			}
			rec.Completed += c.TotalCompleted()
			rec.Dropped += c.TotalDropped()
			rec.ResponseStats.Merge(c.LifetimeResponse())
		}
	}
	if r.responseBins > 0 {
		rec.ViolationFrac = float64(r.violations) / float64(r.responseBins)
	}
	for _, asm := range m.modules {
		for _, l0 := range asm.l0s {
			e, d, ct := l0.Overhead()
			rec.L0Explored += e
			rec.L0Decisions += d
			rec.L0Time += ct
		}
		e, d, ct := asm.l1.Overhead()
		rec.L1Explored += e
		rec.L1Decisions += d
		rec.L1Time += ct
	}
	if m.l2 != nil {
		e, d, ct := m.l2.Overhead()
		rec.L2Explored = e
		rec.L2Decisions = d
		rec.L2Time = ct
	}
	return rec, nil
}
