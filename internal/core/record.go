// Package core composes the paper's full system (Fig. 2): the plant from
// internal/cluster, the L0/L1/L2 controllers from internal/controller, the
// Kalman/EWMA estimators from internal/forecast, and the offline learning
// of abstraction maps and regression trees from internal/approx — all
// driven by the discrete-event kernel in internal/des on the multi-rate
// schedule T_L0 ≤ T_L1 ≤ T_L2.
//
// Invariants:
//
//   - A run is deterministic for a given (spec, config, trace, store)
//     tuple: every random stream derives from Config.Seed.
//   - Config.Parallelism only changes wall-clock time — the per-module L1
//     fan-out plans in parallel and applies sequentially in module order,
//     so run records are bit-identical at any worker count (pinned by
//     parallel_test.go at the repo root).
//   - Manager.Run is a thin replay over the incremental Session engine:
//     a Session fed a trace's bins in order produces the identical
//     Record, which is what lets the online control plane (internal/
//     fleet) and the batch experiments share one code path.
package core

import (
	"time"

	"hierctl/internal/metrics"
	"hierctl/internal/series"
)

// Record holds everything a run captures for the paper's figures and
// tables. Series are sampled at the cadence noted on each field.
type Record struct {
	// Trace is the offered load in requests per trace bin.
	Trace *series.Series
	// PredictedL1 is the sum over modules of the L1-level Kalman
	// one-step forecasts, per T_L1 bin (Fig. 4 top), aligned with
	// ActualL1, the realized arrivals.
	PredictedL1 *series.Series
	ActualL1    *series.Series
	// Operational is the number of operational computers per T_L1 bin
	// (Figs. 4 and 6 bottom).
	Operational *series.Series
	// ResponseMean is the cluster mean response time of requests
	// completed in each T_L0 bin (Fig. 5 bottom), 0 for empty bins.
	ResponseMean *series.Series
	// FreqByComputer maps computer name to its operating frequency in
	// Hz per T_L0 bin (Fig. 5 top).
	FreqByComputer map[string]*series.Series
	// GammaModules[i] is module i's load fraction per T_L2 bin (Fig. 7).
	GammaModules []*series.Series

	// Aggregates.
	Energy        float64 // total energy, abstract units
	Switches      int     // power-on count
	Completed     int64   // requests completed
	Dropped       int64   // requests lost to failures
	Misroutes     int64   // dispatcher fallbacks
	ResponseStats metrics.Welford
	// ResponseP50/P95/P99 are per-request latency percentiles over the
	// whole run (log-bucketed histogram, ≤ 15% relative error);
	// ResponseMax is exact.
	ResponseP50, ResponseP95, ResponseP99, ResponseMax float64
	ViolationFrac                                      float64 // fraction of T_L0 bins violating r*
	TargetResponse                                     float64

	// Degraded-mode accounting (zero on healthy runs).
	DegradedTicks     int   // ticks decided via the deterministic fallback
	StaleObservations int64 // module observations held at last good value
	SanitizedRejects  int64 // module observations rejected as invalid

	// Overhead (per level, summed over the run).
	L0Explored, L1Explored, L2Explored    int
	L0Decisions, L1Decisions, L2Decisions int
	L0Time, L1Time, L2Time                time.Duration
	// LearnTime is the offline phase (maps g + trees J̃).
	LearnTime time.Duration
}

// MeanResponse returns the run's mean response time over completed
// requests.
func (r *Record) MeanResponse() float64 { return r.ResponseStats.Mean() }

// ExploredPerL1Decision returns the paper's §4.3 overhead metric: average
// states examined per L1 sampling period (including the L0 searches that
// ran within that module in the same period).
func (r *Record) ExploredPerL1Decision() float64 {
	if r.L1Decisions == 0 {
		return 0
	}
	return float64(r.L1Explored) / float64(r.L1Decisions)
}

// DecisionTimePerPeriod returns the mean online computation time spent per
// L1 period across the whole hierarchy (the §4.3/§5.2 execution-time
// metric).
func (r *Record) DecisionTimePerPeriod() time.Duration {
	if r.L1Decisions == 0 {
		return 0
	}
	total := r.L0Time + r.L1Time + r.L2Time
	return total / time.Duration(r.L1Decisions)
}
