package core

import (
	"math"
	"math/rand"
	"testing"

	"hierctl/internal/approx"
	"hierctl/internal/cluster"
	"hierctl/internal/controller"
	"hierctl/internal/power"
	"hierctl/internal/series"
	"hierctl/internal/workload"
)

// fastConfig returns a configuration with coarse learning grids and a
// short horizon so integration tests stay fast while exercising the whole
// pipeline.
func fastConfig() Config {
	cfg := DefaultConfig()
	cfg.L0.Horizon = 2
	cfg.GMap = controller.GMapConfig{
		QMax: 200, QStep: 25,
		LambdaMax: 150, LambdaStep: 15,
		CMin: 0.014, CMax: 0.022, CStep: 0.004,
		SubSteps: 2,
	}
	cfg.ModuleSim = controller.ModuleSimConfig{
		QLevels:      []float64{0, 50},
		LambdaLevels: []float64{0, 30, 60, 120, 200},
		CLevels:      []float64{0.018},
		Tree:         approx.TreeConfig{MaxDepth: 6, MinLeaf: 1},
	}
	cfg.DrainSeconds = 120
	return cfg
}

// testComputer returns a 4-point DVFS computer.
func testComputer(name string) cluster.ComputerSpec {
	return cluster.ComputerSpec{
		Name:             name,
		FrequenciesHz:    []float64{0.5e9, 1e9, 1.5e9, 2e9},
		SpeedFactor:      1,
		Power:            power.DefaultModel(),
		BootDelaySeconds: 120,
	}
}

func moduleOf(name string, n int) cluster.ModuleSpec {
	ms := cluster.ModuleSpec{Name: name}
	for j := 0; j < n; j++ {
		ms.Computers = append(ms.Computers, testComputer(name+"-c"+string(rune('0'+j))))
	}
	return ms
}

func testStore(t *testing.T) *workload.Store {
	t.Helper()
	cfg := workload.DefaultStoreConfig()
	cfg.Objects = 500
	cfg.PopularCount = 50
	s, err := workload.NewStore(rand.New(rand.NewSource(3)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func steadyTrace(bins int, perBin float64) *series.Series {
	s := series.New(0, 30, bins)
	for i := range s.Values {
		s.Values[i] = perBin
	}
	return s
}

func TestConfigValidate(t *testing.T) {
	cfg := fastConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("fast config: %v", err)
	}
	bad := cfg
	bad.DefaultCHat = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero default c-hat: want error")
	}
	bad = cfg
	bad.L1.PeriodSeconds = 45 // not a multiple of 30
	if err := bad.Validate(); err == nil {
		t.Error("misaligned T_L1: want error")
	}
	bad = cfg
	bad.L2.PeriodSeconds = 60 // below T_L1
	if err := bad.Validate(); err == nil {
		t.Error("T_L2 < T_L1: want error")
	}
	bad = cfg
	bad.TunePrefixFrac = 0.95
	if err := bad.Validate(); err == nil {
		t.Error("tune prefix too large: want error")
	}
}

func TestSingleModuleSteadyLoadMeetsTarget(t *testing.T) {
	spec := cluster.Spec{Modules: []cluster.ModuleSpec{moduleOf("M1", 4)}}
	mgr, err := NewManager(spec, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 900 requests per 30 s bin ≈ 30 req/s — well within one or two
	// computers' capacity.
	trace := steadyTrace(40, 900)
	rec, err := mgr.Run(trace, testStore(t))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Completed == 0 {
		t.Fatal("no requests completed")
	}
	total := int64(trace.Sum())
	if rec.Completed+rec.Dropped < total*95/100 {
		t.Errorf("completed %d of %d requests", rec.Completed, total)
	}
	if rec.Dropped != 0 {
		t.Errorf("dropped %d requests without failures", rec.Dropped)
	}
	if got := rec.MeanResponse(); got > rec.TargetResponse {
		t.Errorf("mean response %v above target %v", got, rec.TargetResponse)
	}
	if rec.ViolationFrac > 0.25 {
		t.Errorf("violation fraction %v too high for a steady load", rec.ViolationFrac)
	}
	if rec.Energy <= 0 {
		t.Error("no energy recorded")
	}
	// Steady 30 req/s should not need all four computers.
	if mean := rec.Operational.Mean(); mean >= 3.5 {
		t.Errorf("mean operational computers %v, want < 3.5 (energy saving)", mean)
	}
	if rec.L0Decisions == 0 || rec.L1Decisions == 0 {
		t.Error("controller decisions not recorded")
	}
	if rec.L2Decisions != 0 {
		t.Error("single-module run should not use L2")
	}
}

func TestStepLoadScalesUpAndDown(t *testing.T) {
	spec := cluster.Spec{Modules: []cluster.ModuleSpec{moduleOf("M1", 4)}}
	mgr, err := NewManager(spec, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 40 bins low (150/bin = 5 r/s), 40 bins high (3600/bin = 120 r/s),
	// then 40 bins low again.
	trace := series.New(0, 30, 120)
	for i := range trace.Values {
		if i >= 40 && i < 80 {
			trace.Values[i] = 3600
		} else {
			trace.Values[i] = 150
		}
	}
	rec, err := mgr.Run(trace, testStore(t))
	if err != nil {
		t.Fatal(err)
	}
	ops := rec.Operational.Values
	if len(ops) < 25 {
		t.Fatalf("operational series too short: %d", len(ops))
	}
	// Compare mean operational computers across the three phases (L1
	// periods: 120 bins of 30 s = 30 L1 periods; phases of 10).
	phase := func(lo, hi int) float64 {
		sum := 0.0
		for _, v := range ops[lo:hi] {
			sum += v
		}
		return sum / float64(hi-lo)
	}
	n := len(ops)
	third := n / 3
	low1 := phase(third/2, third) // skip initial scale-down transient
	high := phase(third+2, 2*third)
	low2 := phase(2*third+2, n)
	if high <= low1 {
		t.Errorf("high-load phase %v not above first low phase %v", high, low1)
	}
	if low2 >= high {
		t.Errorf("final low phase %v not below high phase %v", low2, high)
	}
}

func TestMultiModuleClusterWithL2(t *testing.T) {
	spec := cluster.Spec{Modules: []cluster.ModuleSpec{
		moduleOf("M1", 2), moduleOf("M2", 2),
	}}
	mgr, err := NewManager(spec, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	trace := steadyTrace(40, 1500) // 50 req/s across 4 computers
	rec, err := mgr.Run(trace, testStore(t))
	if err != nil {
		t.Fatal(err)
	}
	if rec.L2Decisions == 0 {
		t.Fatal("L2 made no decisions")
	}
	if len(rec.GammaModules) != 2 {
		t.Fatalf("GammaModules has %d series, want 2", len(rec.GammaModules))
	}
	bins := rec.GammaModules[0].Len()
	if bins == 0 {
		t.Fatal("no γ_i samples recorded")
	}
	for b := 0; b < bins; b++ {
		sum := rec.GammaModules[0].Values[b] + rec.GammaModules[1].Values[b]
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("Σγ at bin %d = %v, want 1", b, sum)
		}
	}
	if rec.Completed == 0 {
		t.Error("no requests completed")
	}
	if got := rec.MeanResponse(); got > 2*rec.TargetResponse {
		t.Errorf("mean response %v far above target %v", got, rec.TargetResponse)
	}
}

func TestFailureInjectionRecovers(t *testing.T) {
	spec := cluster.Spec{Modules: []cluster.ModuleSpec{moduleOf("M1", 4)}}
	mgr, err := NewManager(spec, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Fail one computer mid-run; repair near the end.
	mgr.InjectFailure(600, 0, 0)
	mgr.InjectRepair(1500, 0, 0)
	trace := steadyTrace(60, 1800) // 60 req/s
	rec, err := mgr.Run(trace, testStore(t))
	if err != nil {
		t.Fatal(err)
	}
	total := int64(trace.Sum())
	// The failed computer drops its queue; the rest must absorb the load.
	if rec.Completed < total*9/10 {
		t.Errorf("completed %d of %d with one failure", rec.Completed, total)
	}
	if got := rec.MeanResponse(); got > 3*rec.TargetResponse {
		t.Errorf("mean response %v did not recover (target %v)", got, rec.TargetResponse)
	}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	spec := cluster.Spec{Modules: []cluster.ModuleSpec{moduleOf("M1", 2)}}
	runOnce := func() *Record {
		mgr, err := NewManager(spec, fastConfig())
		if err != nil {
			t.Fatal(err)
		}
		rec, err := mgr.Run(steadyTrace(20, 600), testStore(t))
		if err != nil {
			t.Fatal(err)
		}
		return rec
	}
	a, b := runOnce(), runOnce()
	if a.Completed != b.Completed {
		t.Errorf("completed differ: %d vs %d", a.Completed, b.Completed)
	}
	if a.Energy != b.Energy {
		t.Errorf("energy differs: %v vs %v", a.Energy, b.Energy)
	}
	if a.Switches != b.Switches {
		t.Errorf("switches differ: %d vs %d", a.Switches, b.Switches)
	}
}

func TestRunValidation(t *testing.T) {
	spec := cluster.Spec{Modules: []cluster.ModuleSpec{moduleOf("M1", 2)}}
	mgr, err := NewManager(spec, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	store := testStore(t)
	if _, err := mgr.Run(nil, store); err == nil {
		t.Error("nil trace: want error")
	}
	if _, err := mgr.Run(steadyTrace(10, 100), nil); err == nil {
		t.Error("nil store: want error")
	}
	bad := series.New(0, 45, 10) // 45 s bins are not a multiple of 30 s
	for i := range bad.Values {
		bad.Values[i] = 100
	}
	if _, err := mgr.Run(bad, store); err == nil {
		t.Error("misaligned trace bins: want error")
	}
}

func TestRecordSeriesShapes(t *testing.T) {
	spec := cluster.Spec{Modules: []cluster.ModuleSpec{moduleOf("M1", 2)}}
	mgr, err := NewManager(spec, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	trace := steadyTrace(16, 300)
	rec, err := mgr.Run(trace, testStore(t))
	if err != nil {
		t.Fatal(err)
	}
	// 16 bins of 30 s = 16 T_L0 steps = 4 T_L1 periods.
	if got := rec.ResponseMean.Len(); got != 16 {
		t.Errorf("ResponseMean bins = %d, want 16", got)
	}
	if got := rec.Operational.Len(); got != 4 {
		t.Errorf("Operational bins = %d, want 4", got)
	}
	// Predictions start after the first boundary: 3 pairs.
	if got := rec.PredictedL1.Len(); got != 3 {
		t.Errorf("PredictedL1 bins = %d, want 3", got)
	}
	if rec.PredictedL1.Len() != rec.ActualL1.Len() {
		t.Error("prediction/actual series misaligned")
	}
	for name, s := range rec.FreqByComputer {
		if s.Len() != 16 {
			t.Errorf("frequency series %s has %d bins, want 16", name, s.Len())
		}
	}
	if rec.ExploredPerL1Decision() <= 0 {
		t.Error("ExploredPerL1Decision not positive")
	}
	if rec.DecisionTimePerPeriod() <= 0 {
		t.Error("DecisionTimePerPeriod not positive")
	}
}

func TestManagerLearningShared(t *testing.T) {
	// Identical hardware across modules must not multiply learning work:
	// learn time for 4 identical modules should be far below 4× one
	// module's (coarse proxy: it completes quickly and the manager holds
	// shared maps).
	spec := cluster.Spec{Modules: []cluster.ModuleSpec{
		moduleOf("M1", 2), moduleOf("M2", 2), moduleOf("M3", 2), moduleOf("M4", 2),
	}}
	mgr, err := NewManager(spec, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(mgr.modules) != 4 {
		t.Fatalf("modules = %d, want 4", len(mgr.modules))
	}
	// All computers share one hardware key, so all gmaps must be the
	// same object.
	first := mgr.modules[0].gmaps[0]
	for _, asm := range mgr.modules {
		for _, g := range asm.gmaps {
			if g != first {
				t.Fatal("identical hardware got distinct abstraction maps")
			}
		}
	}
}
