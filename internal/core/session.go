package core

import (
	"fmt"

	"hierctl/internal/cluster"
	"hierctl/internal/controller"
	"hierctl/internal/engine"
	"hierctl/internal/forecast"
	"hierctl/internal/par"
	"hierctl/internal/series"
	"hierctl/internal/workload"
)

// SessionConfig parameterizes an incremental run of the hierarchy.
//
// Online operation supplies BinSeconds (the cadence observations will
// arrive at) and, optionally, a Calibration prefix of arrival counts used
// to tune the Kalman filters before the first observation. Batch replays
// supply Trace instead: the bin width and calibration prefix then come
// from the trace, and oracle forecasts (Config.OracleForecast) become
// possible because the future is known.
type SessionConfig struct {
	// BinSeconds is the observation bin width in seconds; it must be an
	// integer multiple of T_L0. Ignored when Trace is set.
	BinSeconds float64
	// Start is the workload-clock time of the first bin (0 for online
	// sessions). Ignored when Trace is set.
	Start float64
	// Calibration is an optional arrival-count history used to tune the
	// Kalman filters (§4.3); fewer than 8 bins falls back to the prior.
	// When nil and Trace is set, the trace's TunePrefixFrac prefix is
	// used, matching the batch engine.
	Calibration []float64
	// Trace, when set, fixes the whole workload plan up front: ObserveBin
	// must then be fed the trace's values in order. Required for
	// Config.OracleForecast.
	Trace *series.Series
}

// Session advances one hierarchy incrementally: each ObserveBin ingests
// the next arrival-count bin, steps the plant and the L0/L1/L2 controllers
// through the bin's T_L0 periods, and reports the decisions taken. Finish
// drains in-flight work and assembles the same Record a batch Run
// produces. A session fed a trace's bins in order is bit-identical to
// Manager.Run over that trace.
//
// The mechanics — clock, pre-roll, request feed, failure schedule,
// dispatch, plant advance, harvest — live in the shared simulation engine
// (internal/engine); the session's run adapter implements engine.Policy
// and owns only the hierarchy's control flow. The pre-engine mechanics
// survive verbatim as the test oracle in legacy_mechanics_test.go.
//
// A Manager supports one live session at a time — NewSession resets the
// hierarchy's estimator state. Sessions are not safe for concurrent use.
type Session struct {
	r        *run
	h        *engine.Harness
	finished bool
}

// BinDecision is the controller output for one observation bin: the
// provisioning (on/off), load-sharing, and frequency settings in force
// after the bin's control periods ran.
type BinDecision struct {
	// Bin is the observation bin index this decision closes.
	Bin int
	// Time is the workload-clock time at the end of the bin.
	Time float64
	// GammaModules is the cluster-level load split γ_i (nil for
	// single-module hierarchies, which have no L2).
	GammaModules []float64
	// Modules holds the per-module operating decisions.
	Modules []ModuleDecision
	// MeanResponse is the mean response time over the bin's completed
	// T_L0 intervals (0 when nothing completed).
	MeanResponse float64
	// Operational is the number of operational computers at bin end.
	Operational int
}

// ModuleDecision is one module's operating state after a control period.
type ModuleDecision struct {
	// Alpha marks which computers the L1 controller keeps powered.
	Alpha []bool
	// Gamma is the within-module dispatch split γ_ij.
	Gamma []float64
	// FreqIdx is each computer's operating-frequency index (-1 while the
	// computer is off or failed); FreqHz is the same in Hz (0 when off).
	FreqIdx []int
	FreqHz  []float64
}

// NewSession builds the runtime state for an incremental run: the plant is
// booted and pre-rolled by the engine harness, the Kalman filters are
// tuned on the calibration prefix, and the request feed is seeded. See
// SessionConfig for the online vs batch modes.
func (m *Manager) NewSession(store *workload.Store, sc SessionConfig) (*Session, error) {
	if store == nil {
		return nil, fmt.Errorf("core: nil store")
	}
	binStep, start0 := sc.BinSeconds, sc.Start
	if sc.Trace != nil {
		if sc.Trace.Len() == 0 {
			return nil, fmt.Errorf("core: empty trace")
		}
		binStep, start0 = sc.Trace.Step, sc.Trace.Start
	}
	tl0 := m.cfg.L0.PeriodSeconds
	sub, err := series.SubSteps(binStep, tl0)
	if err != nil {
		return nil, fmt.Errorf("core: trace bin %vs is not a multiple of T_L0 %vs", binStep, tl0)
	}
	if m.cfg.OracleForecast && sc.Trace == nil {
		return nil, fmt.Errorf("core: oracle forecasts need the full trace up front")
	}
	r := &run{
		m:       m,
		trace:   sc.Trace,
		sub:     sub,
		tl0:     tl0,
		binStep: binStep,
		start0:  start0,
		l1Every: int(m.cfg.L1.PeriodSeconds/tl0 + 0.5),
		l2Every: int(m.cfg.L2.PeriodSeconds/tl0 + 0.5),
		workers: par.Workers(m.cfg.Parallelism),
	}
	totalBins := 0
	if sc.Trace != nil {
		totalBins = sc.Trace.Len()
		r.totalSteps = totalBins * sub
	}

	// Tune Kalman noise parameters on the calibration prefix (§4.3). The
	// same tuned parameters serve all levels: the filter gain depends on
	// the Q/R ratios, which are scale-invariant across aggregation levels.
	cal := sc.Calibration
	if cal == nil && sc.Trace != nil {
		prefixBins := int(float64(sc.Trace.Len()) * m.cfg.TunePrefixFrac)
		cal = sc.Trace.Values[:prefixBins]
	}
	ql, qt, ro := 1.0, 0.1, 10.0 // fallback prior
	if len(cal) >= 8 {
		tuned, _, err := forecast.TuneKalman(cal)
		if err != nil {
			return nil, err
		}
		ql, qt, ro = tuned.Params()
	}
	newKalman := func() (*forecast.Kalman, error) { return forecast.NewKalman(ql, qt, ro) }
	for _, asm := range m.modules {
		if asm.kalman0, err = newKalman(); err != nil {
			return nil, err
		}
		if asm.kalman1, err = newKalman(); err != nil {
			return nil, err
		}
		asm.lastPer = make([]cluster.IntervalStats, len(asm.specs))
		asm.lastAgg = cluster.IntervalStats{}
		asm.arrivedTL1 = 0
		asm.hasPredicted = false
		asm.pendingRatio = 1
		asm.l0Ratio = 1
	}
	if m.kalmanG, err = newKalman(); err != nil {
		return nil, err
	}
	if m.bandG, err = forecast.NewBand(m.cfg.BandSmoothing); err != nil {
		return nil, err
	}

	// The failure schedule, quantized to T_L0 boundaries, goes to the
	// harness as a scenario plan (InjectPlan and the harness skip invalid
	// indices identically).
	plan := make([]workload.FailureEvent, len(m.failures))
	for idx, f := range m.failures {
		plan[idx] = workload.FailureEvent{At: f.at, Module: f.module, Comp: f.comp, Repair: f.isRepair}
	}

	h, err := engine.New(engine.Config{
		Spec:           m.spec,
		Seed:           m.cfg.Seed,
		DispatchStream: "dispatch",
		WorkloadStream: "workload",
		PeriodSeconds:  tl0,
		BinSeconds:     binStep,
		Start:          start0,
		TotalBins:      totalBins,
		DrainSeconds:   m.cfg.DrainSeconds,
		Failures:       plan,
		Chaos:          m.chaos,
		Spread:         engine.SpreadBinRing,
		Recorder:       m.recorder,
		QoSTarget:      m.cfg.L0.TargetResponse,
	}, store, r)
	if err != nil {
		return nil, err
	}
	if sc.Trace == nil {
		// Streaming: collect the ingested counts so the record still
		// carries the workload it ran against.
		r.observed = series.New(start0, binStep, 0)
		r.rec.Trace = r.observed
	}
	return &Session{r: r, h: h}, nil
}

// initPolicy is the engine.Policy Init hook: the plant arrives warm
// (all-on at full frequency, pre-roll advanced). It seeds the L1
// controllers' state to the all-on configuration and builds the record.
func (r *run) initPolicy(plant *cluster.Plant) error {
	m := r.m
	r.plant = plant
	r.preroll = m.maxBootDelay()
	for _, asm := range m.modules {
		allOn := make([]bool, len(asm.specs))
		for j := range allOn {
			allOn[j] = true
		}
		gamma, err := controller.SnapSimplex(capacities(asm.specs), allOn, m.cfg.L1.Quantum)
		if err != nil {
			return err
		}
		asm.alpha = allOn
		asm.gamma = gamma
		if err := asm.l1.SetState(allOn, gamma); err != nil {
			return err
		}
	}

	r.rec = &Record{
		Trace:          r.trace,
		PredictedL1:    series.New(r.preroll+m.cfg.L1.PeriodSeconds, m.cfg.L1.PeriodSeconds, 0),
		ActualL1:       series.New(r.preroll+m.cfg.L1.PeriodSeconds, m.cfg.L1.PeriodSeconds, 0),
		Operational:    series.New(r.preroll, m.cfg.L1.PeriodSeconds, 0),
		ResponseMean:   series.New(r.preroll, r.tl0, 0),
		FreqByComputer: map[string]*series.Series{},
		TargetResponse: m.cfg.L0.TargetResponse,
		LearnTime:      m.learnTime,
	}
	if m.l2 != nil {
		r.rec.GammaModules = make([]*series.Series, len(m.modules))
		for i := range r.rec.GammaModules {
			r.rec.GammaModules[i] = series.New(r.preroll, m.cfg.L2.PeriodSeconds, 0)
		}
	}
	if m.cfg.RecordFrequencies {
		for _, ms := range m.spec.Modules {
			for _, cs := range ms.Computers {
				r.rec.FreqByComputer[cs.Name] = series.New(r.preroll, r.tl0, 0)
			}
		}
	}
	r.freqIdx = make([][]int, len(m.modules))
	for i, asm := range m.modules {
		r.freqIdx[i] = make([]int, len(asm.specs))
		for j := range r.freqIdx[i] {
			r.freqIdx[i][j] = -1
		}
	}
	return nil
}

// ObserveBin ingests the next observation bin's arrival count, advances
// the hierarchy through the bin's T_L0 control periods against the
// synthesized requests, and returns the decisions now in force.
func (s *Session) ObserveBin(count float64) (BinDecision, error) {
	if s.finished {
		return BinDecision{}, fmt.Errorf("core: session already finished")
	}
	r := s.r
	if r.trace != nil && s.h.Bins() >= r.trace.Len() {
		return BinDecision{}, fmt.Errorf("core: trace exhausted at bin %d", s.h.Bins())
	}
	if err := s.h.PushBin(count); err != nil {
		return BinDecision{}, err
	}
	if r.observed != nil {
		r.observed.Values = append(r.observed.Values, count)
	}
	for d := 0; d < r.sub; d++ {
		if err := s.h.Tick(); err != nil {
			return BinDecision{}, err
		}
	}
	return r.binDecision(s.h.Bins() - 1), nil
}

// Progress reports how far the session has advanced: observation bins
// ingested, T_L0 steps run, and the simulation clock (which includes the
// boot pre-roll).
func (s *Session) Progress() (bins, steps int, simTime float64) {
	return s.h.Bins(), s.h.Ticks(), s.h.NextTickTime()
}

// Finish drains in-flight work past the last observed bin and assembles
// the run's Record. The session cannot be used afterwards.
func (s *Session) Finish() (*Record, error) {
	if s.finished {
		return nil, fmt.Errorf("core: session already finished")
	}
	s.finished = true
	// The harness fires failures quantized exactly to the final boundary,
	// drains in-flight work, and closes the energy accounting.
	if err := s.h.Finish(); err != nil {
		return nil, err
	}
	rec, err := s.r.finish()
	if err != nil {
		return nil, err
	}
	rec.DegradedTicks = s.h.DegradedTicks()
	rec.StaleObservations = s.h.StaleObservations()
	rec.SanitizedRejects = s.h.SanitizedRejects()
	return rec, nil
}

// binDecision assembles the decision payload after a bin's steps ran.
func (r *run) binDecision(bin int) BinDecision {
	m := r.m
	d := BinDecision{
		Bin:         bin,
		Time:        r.start0 + float64(bin+1)*r.binStep,
		Operational: r.plant.OperationalComputers(),
		Modules:     make([]ModuleDecision, len(m.modules)),
	}
	if r.gammaModules != nil {
		d.GammaModules = append([]float64(nil), r.gammaModules...)
	}
	for i, asm := range m.modules {
		md := ModuleDecision{
			Alpha:   append([]bool(nil), asm.alpha...),
			Gamma:   append([]float64(nil), asm.gamma...),
			FreqIdx: append([]int(nil), r.freqIdx[i]...),
			FreqHz:  make([]float64, len(asm.specs)),
		}
		for j, idx := range md.FreqIdx {
			if idx >= 0 {
				md.FreqHz[j] = asm.specs[j].FrequenciesHz[idx]
			}
		}
		d.Modules[i] = md
	}
	// Mean response over the bin's completed T_L0 intervals.
	vals := r.rec.ResponseMean.Values
	n := r.sub
	if len(vals) < n {
		n = len(vals)
	}
	sum, cnt := 0.0, 0
	for _, v := range vals[len(vals)-n:] {
		if v > 0 {
			sum += v
			cnt++
		}
	}
	if cnt > 0 {
		d.MeanResponse = sum / float64(cnt)
	}
	return d
}
