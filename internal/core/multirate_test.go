package core

import (
	"testing"

	"hierctl/internal/cluster"
)

// TestMultiRateCadences exercises §3's "controllers at various levels of
// the hierarchy can operate at different time scales": T_L2 = 2·T_L1.
func TestMultiRateCadences(t *testing.T) {
	cfg := fastConfig()
	cfg.L2.PeriodSeconds = 240 // T_L1 = 120, T_L2 = 240
	spec := cluster.Spec{Modules: []cluster.ModuleSpec{
		moduleOf("M1", 2), moduleOf("M2", 2),
	}}
	mgr, err := NewManager(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	trace := steadyTrace(32, 900) // 32 T_L0 steps = 8 T_L1 = 4 T_L2
	rec, err := mgr.Run(trace, testStore(t))
	if err != nil {
		t.Fatal(err)
	}
	if rec.L1Decisions != 8*2 { // per module
		t.Errorf("L1 decisions = %d, want 16", rec.L1Decisions)
	}
	if rec.L2Decisions != 4 {
		t.Errorf("L2 decisions = %d, want 4", rec.L2Decisions)
	}
	if got := rec.GammaModules[0].Len(); got != 4 {
		t.Errorf("γ samples = %d, want 4", got)
	}
	if rec.GammaModules[0].Step != 240 {
		t.Errorf("γ series step = %v, want 240", rec.GammaModules[0].Step)
	}
}

// TestMisalignedL2Rejected verifies T_L2 must be a multiple of T_L1.
func TestMisalignedL2Rejected(t *testing.T) {
	cfg := fastConfig()
	cfg.L2.PeriodSeconds = 180 // not a multiple of 120
	if err := cfg.Validate(); err == nil {
		t.Error("T_L2 = 1.5 T_L1: want error")
	}
}

// TestRecordFrequenciesDisabled covers the memory-saving path for large
// clusters.
func TestRecordFrequenciesDisabled(t *testing.T) {
	cfg := fastConfig()
	cfg.RecordFrequencies = false
	spec := cluster.Spec{Modules: []cluster.ModuleSpec{moduleOf("M1", 2)}}
	mgr, err := NewManager(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := mgr.Run(steadyTrace(16, 300), testStore(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.FreqByComputer) != 0 {
		t.Errorf("frequency series recorded despite being disabled: %d", len(rec.FreqByComputer))
	}
	if rec.Completed == 0 {
		t.Error("run did not complete requests")
	}
}

// TestAllComputersFailedModule drives one module to total failure and
// verifies the hierarchy routes around it.
func TestAllComputersFailedModule(t *testing.T) {
	cfg := fastConfig()
	spec := cluster.Spec{Modules: []cluster.ModuleSpec{
		moduleOf("M1", 2), moduleOf("M2", 2),
	}}
	mgr, err := NewManager(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mgr.InjectFailure(300, 0, 0)
	mgr.InjectFailure(300, 0, 1) // module 0 fully dead
	trace := steadyTrace(40, 900)
	rec, err := mgr.Run(trace, testStore(t))
	if err != nil {
		t.Fatal(err)
	}
	total := int64(trace.Sum())
	if rec.Completed+rec.Dropped < total*95/100 {
		t.Errorf("completed+dropped %d of %d", rec.Completed+rec.Dropped, total)
	}
	// Module 2 must have carried the load after the failure: its share
	// of completions dominates.
	if rec.Completed < total/2 {
		t.Errorf("completed %d of %d — surviving module did not absorb load", rec.Completed, total)
	}
}

// TestOracleForecastImprovesOrMatchesQoS checks the value-of-perfect-
// information ablation: with the true future arrivals instead of Kalman
// forecasts, the controller's violation fraction must not get worse on a
// volatile load.
func TestOracleForecastImprovesOrMatchesQoS(t *testing.T) {
	spec := cluster.Spec{Modules: []cluster.ModuleSpec{moduleOf("M1", 4)}}
	// A volatile step load where forecasting genuinely matters.
	trace := steadyTrace(60, 300)
	for i := range trace.Values {
		if (i/5)%2 == 1 {
			trace.Values[i] = 2400
		}
	}
	runWith := func(oracle bool) *Record {
		cfg := fastConfig()
		cfg.OracleForecast = oracle
		mgr, err := NewManager(spec, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := mgr.Run(trace, testStore(t))
		if err != nil {
			t.Fatal(err)
		}
		return rec
	}
	kalman := runWith(false)
	oracle := runWith(true)
	if oracle.ViolationFrac > kalman.ViolationFrac+0.02 {
		t.Errorf("oracle violations %v worse than kalman %v", oracle.ViolationFrac, kalman.ViolationFrac)
	}
	if oracle.Completed != kalman.Completed {
		t.Errorf("completed differ: %d vs %d", oracle.Completed, kalman.Completed)
	}
}

// TestMidDayTraceSlice guards the arrival-rebasing fix: a trace sliced
// from the middle of a day (non-zero Start) must still be served — the
// request arrival times are rebased onto the simulation clock.
func TestMidDayTraceSlice(t *testing.T) {
	spec := cluster.Spec{Modules: []cluster.ModuleSpec{moduleOf("M1", 2)}}
	mgr, err := NewManager(spec, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	full := steadyTrace(100, 600)
	slice := full.Slice(50, 80) // Start = 1500 s
	if slice.Start == 0 {
		t.Fatal("test premise broken: slice should not start at 0")
	}
	rec, err := mgr.Run(slice, testStore(t))
	if err != nil {
		t.Fatal(err)
	}
	total := int64(slice.Sum())
	if rec.Completed != total {
		t.Errorf("completed %d of %d from mid-day slice", rec.Completed, total)
	}
	if rec.MeanResponse() <= 0 {
		t.Error("no responses recorded from mid-day slice")
	}
}

// TestLongDrainCompletesBacklog checks the drain tail finishes in-flight
// work after the trace ends.
func TestLongDrainCompletesBacklog(t *testing.T) {
	cfg := fastConfig()
	cfg.DrainSeconds = 600
	spec := cluster.Spec{Modules: []cluster.ModuleSpec{moduleOf("M1", 2)}}
	mgr, err := NewManager(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Heavy final bins leave a backlog at trace end.
	trace := steadyTrace(16, 600)
	for i := 12; i < 16; i++ {
		trace.Values[i] = 3000
	}
	rec, err := mgr.Run(trace, testStore(t))
	if err != nil {
		t.Fatal(err)
	}
	total := int64(trace.Sum())
	if rec.Completed != total {
		t.Errorf("completed %d of %d after drain", rec.Completed, total)
	}
}
