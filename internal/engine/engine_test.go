package engine

import (
	"math/rand"
	"strings"
	"testing"

	"hierctl/internal/cluster"
	flight "hierctl/internal/obs"
	"hierctl/internal/series"
	"hierctl/internal/workload"
)

// stubPolicy records the harness's callbacks and dispatches uniformly.
type stubPolicy struct {
	plant   *cluster.Plant
	inits   int
	decides []TickObs
	observe int
}

func (s *stubPolicy) Name() string { return "stub" }

func (s *stubPolicy) Init(p *cluster.Plant) error {
	s.plant = p
	s.inits++
	return nil
}

func (s *stubPolicy) Decide(tick int, obs TickObs) (Settings, error) {
	s.decides = append(s.decides, obs)
	gm := make([]float64, s.plant.Modules())
	gc := make([][]float64, s.plant.Modules())
	for i := range gc {
		gc[i] = make([]float64, s.plant.ModuleSize(i))
		for j := range gc[i] {
			gc[i][j] = 1
			gm[i]++
		}
	}
	return Settings{GammaModules: gm, GammaComputers: gc}, nil
}

func (s *stubPolicy) Observe(tick int, stats []ModuleStats) error {
	s.observe++
	return nil
}

func testSpec(t *testing.T) cluster.Spec {
	t.Helper()
	m, err := cluster.StandardModule("M1", "c")
	if err != nil {
		t.Fatal(err)
	}
	return cluster.Spec{Modules: []cluster.ModuleSpec{m}}
}

func testStore(t *testing.T) *workload.Store {
	t.Helper()
	s, err := workload.NewStore(rand.New(rand.NewSource(2)), workload.DefaultStoreConfig())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func testConfig(spec cluster.Spec, bins int, mode SpreadMode) Config {
	return Config{
		Spec:           spec,
		Seed:           1,
		DispatchStream: "test-dispatch",
		WorkloadStream: "test-workload",
		PeriodSeconds:  30,
		BinSeconds:     60,
		TotalBins:      bins,
		DrainSeconds:   60,
		Spread:         mode,
	}
}

func TestHarnessLifecycle(t *testing.T) {
	spec := testSpec(t)
	pol := &stubPolicy{}
	h, err := New(testConfig(spec, 3, SpreadRunArray), testStore(t), pol)
	if err != nil {
		t.Fatal(err)
	}
	if pol.inits != 1 {
		t.Fatalf("Init called %d times, want 1", pol.inits)
	}
	if got := h.SubSteps(); got != 2 {
		t.Fatalf("SubSteps = %d, want 2", got)
	}
	// The warm start boots every computer; the pre-roll is the longest
	// boot delay and the first tick starts there.
	if h.Preroll() <= 0 {
		t.Fatalf("Preroll = %v, want > 0", h.Preroll())
	}
	if got := h.NextTickTime(); got != h.Preroll() {
		t.Fatalf("NextTickTime = %v before any tick, want preroll %v", got, h.Preroll())
	}
	if op := h.Plant().OperationalComputers(); op != 4 {
		t.Fatalf("warm start left %d computers operational, want 4", op)
	}

	// Ticking before any bin is ingested must fail, not deadlock.
	if err := h.Tick(); err == nil || !strings.Contains(err.Error(), "outruns") {
		t.Fatalf("Tick without a bin: %v, want outrun error", err)
	}
	if err := h.PushBin(40); err != nil {
		t.Fatal(err)
	}
	// A second push before the bin's ticks ran is a cadence bug.
	if err := h.PushBin(40); err == nil || !strings.Contains(err.Error(), "mid-bin") {
		t.Fatalf("mid-bin push: %v, want mid-bin error", err)
	}
	if err := h.Tick(); err != nil {
		t.Fatal(err)
	}
	if err := h.Tick(); err != nil {
		t.Fatal(err)
	}
	if err := h.PushBin(40); err != nil {
		t.Fatal(err)
	}
	if want := h.Preroll() + 2*30; h.NextTickTime() != want {
		t.Fatalf("NextTickTime = %v after 2 ticks, want %v", h.NextTickTime(), want)
	}

	// Decide saw the bin boundaries: tick 0 opened bin 0, tick 1 did not.
	if len(pol.decides) != 2 || pol.observe != 2 {
		t.Fatalf("decides %d observes %d, want 2 and 2", len(pol.decides), pol.observe)
	}
	if !pol.decides[0].NewBin || pol.decides[0].Bin != 0 {
		t.Fatalf("tick 0 obs = %+v, want NewBin for bin 0", pol.decides[0])
	}
	if pol.decides[1].NewBin {
		t.Fatalf("tick 1 obs = %+v, want mid-bin", pol.decides[1])
	}

	if h.Done() {
		t.Fatal("Done before the trace is consumed")
	}
	if err := h.Tick(); err != nil {
		t.Fatal(err)
	}
	if err := h.Tick(); err != nil {
		t.Fatal(err)
	}
	if err := h.PushBin(40); err != nil {
		t.Fatal(err)
	}
	if err := h.Tick(); err != nil {
		t.Fatal(err)
	}
	if err := h.Tick(); err != nil {
		t.Fatal(err)
	}
	if !h.Done() {
		t.Fatal("not Done after consuming the whole trace")
	}
	// The trace length is fixed: a fourth bin must be refused.
	if err := h.PushBin(40); err == nil || !strings.Contains(err.Error(), "exhausted") {
		t.Fatalf("push past TotalBins: %v, want exhausted error", err)
	}
	if err := h.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := h.Finish(); err == nil {
		t.Fatal("second Finish succeeded, want error")
	}
	if err := h.Tick(); err == nil {
		t.Fatal("Tick after Finish succeeded, want error")
	}
	tot, err := h.Totals()
	if err != nil {
		t.Fatal(err)
	}
	if tot.Completed == 0 || tot.Energy <= 0 {
		t.Fatalf("Totals = %+v, want completions and energy", tot)
	}
	arrived, completed, _ := h.WindowTotals()
	if arrived == 0 || completed == 0 {
		t.Fatalf("WindowTotals arrived %d completed %d, want both > 0", arrived, completed)
	}
}

// TestRunArraySpillIsCounted pins the fix for the historically silent
// index clamp: a request whose arrival offset lands past the final tick of
// a fixed-length run is folded into the last tick AND counted in Spilled.
func TestRunArraySpillIsCounted(t *testing.T) {
	spec := testSpec(t)
	h, err := New(testConfig(spec, 2, SpreadRunArray), testStore(t), &stubPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	// Bin 1 spans workload time [60, 120) and is pushed at tick 2; its
	// last tick is index 3. An arrival stamped exactly at the bin's right
	// edge — the float-rounding edge traces can produce — offsets one
	// period past the grid.
	h.tick = 2
	h.spread(1, []workload.Request{
		{Arrival: 60, Demand: 0.01},  // first tick of bin 1 → index 2
		{Arrival: 120, Demand: 0.01}, // past the end → folded into index 3
	})
	if got := h.Spilled(); got != 1 {
		t.Fatalf("Spilled = %d, want 1", got)
	}
	if n := len(h.flat[2]); n != 1 {
		t.Fatalf("tick 2 holds %d requests, want 1", n)
	}
	if n := len(h.flat[3]); n != 1 {
		t.Fatalf("final tick holds %d requests, want the spilled 1", n)
	}
}

// TestBinRingSpreadFoldsWithinBin pins the hierarchical semantics: offsets
// clamp within the request's own bin and never spill.
func TestBinRingSpreadFoldsWithinBin(t *testing.T) {
	spec := testSpec(t)
	h, err := New(testConfig(spec, 0, SpreadBinRing), testStore(t), &stubPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	h.spread(0, []workload.Request{
		{Arrival: -5, Demand: 0.01},  // before the bin → first tick
		{Arrival: 0, Demand: 0.01},   // first tick
		{Arrival: 45, Demand: 0.01},  // second tick
		{Arrival: 500, Demand: 0.01}, // past the bin → clamped to its last tick
	})
	if got := h.Spilled(); got != 0 {
		t.Fatalf("Spilled = %d in ring mode, want 0", got)
	}
	if n := len(h.ring[0]); n != 2 {
		t.Fatalf("ring slot 0 holds %d, want 2", n)
	}
	if n := len(h.ring[1]); n != 2 {
		t.Fatalf("ring slot 1 holds %d, want 2", n)
	}
}

func TestConfigValidation(t *testing.T) {
	spec := testSpec(t)
	store := testStore(t)
	base := testConfig(spec, 2, SpreadRunArray)

	bad := base
	bad.PeriodSeconds = 45
	if _, err := New(bad, store, &stubPolicy{}); err == nil {
		t.Fatal("non-tiling period accepted")
	}
	bad = base
	bad.TotalBins = 0
	if _, err := New(bad, store, &stubPolicy{}); err == nil {
		t.Fatal("run-array spreading without TotalBins accepted")
	}
	bad = base
	bad.WorkloadStream = ""
	if _, err := New(bad, store, &stubPolicy{}); err == nil {
		t.Fatal("missing RNG stream name accepted")
	}
	bad = base
	bad.DrainSeconds = -1
	if _, err := New(bad, store, &stubPolicy{}); err == nil {
		t.Fatal("negative drain accepted")
	}
	if _, err := New(base, store, nil); err == nil {
		t.Fatal("nil policy accepted")
	}
}

// TestRunTraceMatchesManualStepping pins RunTrace as pure sugar over
// PushBin/Tick/Finish: both drives produce identical totals.
func TestRunTraceMatchesManualStepping(t *testing.T) {
	spec := testSpec(t)
	trace := series.New(0, 60, 0)
	for i := 0; i < 6; i++ {
		trace.Values = append(trace.Values, 40+10*float64(i%3))
	}

	batch, err := New(testConfig(spec, trace.Len(), SpreadRunArray), testStore(t), &stubPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if err := batch.RunTrace(trace); err != nil {
		t.Fatal(err)
	}
	bt, err := batch.Totals()
	if err != nil {
		t.Fatal(err)
	}

	man, err := New(testConfig(spec, trace.Len(), SpreadRunArray), testStore(t), &stubPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	for !man.Done() {
		if man.Bins()*man.SubSteps() == man.Ticks() {
			if err := man.PushBin(trace.Values[man.Bins()]); err != nil {
				t.Fatal(err)
			}
		}
		if err := man.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if err := man.Finish(); err != nil {
		t.Fatal(err)
	}
	mt, err := man.Totals()
	if err != nil {
		t.Fatal(err)
	}
	if bt != mt {
		t.Fatalf("batch totals %+v != manual totals %+v", bt, mt)
	}
}

// TestHarnessTickRecords pins the engine's flight-recorder contract: one
// LevelTick record per tick carrying the whole-decision latency, the
// interval mean response, and a QoS flag judged against cfg.QoSTarget —
// and an unchanged run when the recorder is nil.
func TestHarnessTickRecords(t *testing.T) {
	spec := testSpec(t)
	cfg := testConfig(spec, 3, SpreadRunArray)
	cfg.QoSTarget = 1e-9 // any completed interval violates
	rec, err := flight.NewRecorder(64)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Recorder = rec
	h, err := New(cfg, testStore(t), &stubPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	for bin := 0; bin < 3; bin++ {
		if err := h.PushBin(60); err != nil {
			t.Fatal(err)
		}
		for s := 0; s < h.SubSteps(); s++ {
			if err := h.Tick(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := h.Finish(); err != nil {
		t.Fatal(err)
	}
	recs := rec.Window(nil, 0)
	if len(recs) != h.Ticks() {
		t.Fatalf("%d tick records for %d ticks", len(recs), h.Ticks())
	}
	sawCompleted := false
	for i, r := range recs {
		if r.Level != flight.LevelTick || r.Tick != int64(i) || r.Module != -1 || r.Comp != -1 {
			t.Fatalf("record %d = %+v", i, r)
		}
		if r.DecideNs < 0 {
			t.Fatalf("record %d: negative decide latency", i)
		}
		if r.Resp > 0 {
			sawCompleted = true
			if !r.QoS {
				t.Fatalf("record %d: resp %v above target yet QoS flag unset", i, r.Resp)
			}
		}
	}
	if !sawCompleted {
		t.Fatal("no tick saw completions; the QoS path went unexercised")
	}
}
