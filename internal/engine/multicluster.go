package engine

import (
	"fmt"
	"math"
	"sort"

	"hierctl/internal/series"
)

// MultiCluster advances N harnesses under one shared clock and runs a
// cross-cluster L3 layer on top of them: every L3 period it observes each
// cluster's completed window (arrivals, completions, response) and
// reallocates a shared operational-computer budget across the clusters,
// pushing the per-cluster caps down through engine.Budgeted.
//
// This is the layer the paper's hierarchy stops short of: L2 balances
// modules inside one cluster; L3 balances whole clusters inside a shared
// power/capacity envelope. It exists because all three policies now run on
// the same harness — any Budgeted policy can be a member.
//
// Determinism: members advance strictly in (NextTickTime, member index)
// order, every member pauses at each L3 boundary before the reallocation
// runs, and each member keeps its own RNG streams — so a MultiCluster run
// is reproducible for a given (members, policy, budget, period) tuple, and
// each member's results are independent of the others except through the
// budgets the L3 policy assigns.
type MultiCluster struct {
	members []Member
	l3      L3Policy
	budget  int
	l3Every []int // member ticks per L3 period

	prevArrived   []int64
	prevCompleted []int64
	prevRespSum   []float64

	events []L3Event
	ran    bool
}

// Member is one cluster under the shared clock: a harness and the trace
// feeding it. The member's policy (Harness.Policy) receives the L3 budget
// when it implements Budgeted; members whose policies do not are still
// advanced and observed but keep their own provisioning.
type Member struct {
	// Name identifies the cluster in observations and events.
	Name string
	// Harness is the cluster's simulation, not yet advanced past Init.
	Harness *Harness
	// Trace is the member's full workload plan; its bins are pushed as the
	// shared clock reaches them.
	Trace *series.Series
}

// L3Obs is what the L3 policy sees about one cluster at a reallocation
// boundary: the window since the previous boundary plus capacity state.
type L3Obs struct {
	Name string
	// Arrived and Completed count the window's requests; MeanResponse is
	// the window's completion-weighted mean response time (0 when nothing
	// completed).
	Arrived      int64
	Completed    int64
	MeanResponse float64
	// Operational and Computers are the cluster's current on/booting count
	// and its total size.
	Operational int
	Computers   int
	// Done marks members whose trace is exhausted (their budget share can
	// be released to the others).
	Done bool
}

// L3Policy decides the cross-cluster budget split at each L3 boundary.
type L3Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Allocate splits budget operational computers across the observed
	// clusters; the returned slice is index-aligned with obs.
	Allocate(round int, budget int, obs []L3Obs) ([]int, error)
}

// L3Event records one reallocation for inspection and tests.
type L3Event struct {
	// Round counts L3 boundaries from 1; Time is the boundary on the
	// shared control clock (round × L3 period, pre-roll excluded).
	Round int
	Time  float64
	// Arrived holds each cluster's window arrivals (the allocation input);
	// Budgets holds the resulting per-cluster caps, index-aligned with the
	// members.
	Arrived []int64
	Budgets []int
}

// NewMultiCluster validates the members against the shared L3 cadence:
// every member's control period must tile l3PeriodSeconds exactly, so all
// members pause on the same boundary.
func NewMultiCluster(members []Member, l3 L3Policy, budget int, l3PeriodSeconds float64) (*MultiCluster, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("engine: no clusters")
	}
	if l3 == nil {
		return nil, fmt.Errorf("engine: nil L3 policy")
	}
	if budget < 1 {
		return nil, fmt.Errorf("engine: budget %d < 1", budget)
	}
	mc := &MultiCluster{
		members:       members,
		l3:            l3,
		budget:        budget,
		l3Every:       make([]int, len(members)),
		prevArrived:   make([]int64, len(members)),
		prevCompleted: make([]int64, len(members)),
		prevRespSum:   make([]float64, len(members)),
	}
	for idx, mem := range members {
		if mem.Harness == nil {
			return nil, fmt.Errorf("engine: cluster %q has no harness", mem.Name)
		}
		if mem.Trace == nil || mem.Trace.Len() == 0 {
			return nil, fmt.Errorf("engine: cluster %q has an empty trace", mem.Name)
		}
		every, err := series.SubSteps(l3PeriodSeconds, mem.Harness.cfg.PeriodSeconds)
		if err != nil {
			return nil, fmt.Errorf("engine: cluster %q: L3 period %vs is not a multiple of its control period %vs",
				mem.Name, l3PeriodSeconds, mem.Harness.cfg.PeriodSeconds)
		}
		mc.l3Every[idx] = every
	}
	return mc, nil
}

// Run advances all members to completion under the shared clock,
// reallocating the budget at every L3 boundary, then finishes each
// harness (drain + final accounting). Results are read per member
// afterwards (Harness.Totals or the policy's own record).
func (mc *MultiCluster) Run() error {
	if mc.ran {
		return fmt.Errorf("engine: multi-cluster already ran")
	}
	mc.ran = true
	for round := 1; ; round++ {
		// Advance every live member to this round's boundary, one tick at a
		// time, always picking the earliest (NextTickTime, index) next —
		// the shared-clock merge of the members' event streams.
		for {
			best := -1
			var bestT float64
			for idx, mem := range mc.members {
				h := mem.Harness
				if h.Done() || h.Ticks() >= round*mc.l3Every[idx] {
					continue
				}
				if t := h.NextTickTime(); best == -1 || t < bestT {
					best, bestT = idx, t
				}
			}
			if best == -1 {
				break
			}
			h := mc.members[best].Harness
			if h.Bins()*h.SubSteps() == h.Ticks() {
				if err := h.PushBin(mc.members[best].Trace.Values[h.Bins()]); err != nil {
					return fmt.Errorf("engine: cluster %q: %w", mc.members[best].Name, err)
				}
			}
			if err := h.Tick(); err != nil {
				return fmt.Errorf("engine: cluster %q: %w", mc.members[best].Name, err)
			}
		}
		allDone := true
		for _, mem := range mc.members {
			if !mem.Harness.Done() {
				allDone = false
				break
			}
		}
		if allDone {
			break
		}

		// Every live member is paused at the boundary: observe the windows
		// and reallocate.
		obs := make([]L3Obs, len(mc.members))
		arrived := make([]int64, len(mc.members))
		for idx, mem := range mc.members {
			a, c, rs := mem.Harness.WindowTotals()
			da, dc, dr := a-mc.prevArrived[idx], c-mc.prevCompleted[idx], rs-mc.prevRespSum[idx]
			mc.prevArrived[idx], mc.prevCompleted[idx], mc.prevRespSum[idx] = a, c, rs
			mean := 0.0
			if dc > 0 {
				mean = dr / float64(dc)
			}
			plant := mem.Harness.Plant()
			total := 0
			for i := 0; i < plant.Modules(); i++ {
				total += plant.ModuleSize(i)
			}
			arrived[idx] = da
			obs[idx] = L3Obs{
				Name:         mem.Name,
				Arrived:      da,
				Completed:    dc,
				MeanResponse: mean,
				Operational:  plant.OperationalComputers(),
				Computers:    total,
				Done:         mem.Harness.Done(),
			}
		}
		budgets, err := mc.l3.Allocate(round, mc.budget, obs)
		if err != nil {
			return err
		}
		if len(budgets) != len(mc.members) {
			return fmt.Errorf("engine: L3 policy returned %d budgets for %d clusters", len(budgets), len(mc.members))
		}
		for idx, mem := range mc.members {
			if b, ok := mem.Harness.Policy().(Budgeted); ok {
				b.SetBudget(budgets[idx])
			}
		}
		period := mc.members[0].Harness.cfg.PeriodSeconds * float64(mc.l3Every[0])
		mc.events = append(mc.events, L3Event{
			Round:   round,
			Time:    float64(round) * period,
			Arrived: arrived,
			Budgets: budgets,
		})
	}
	for _, mem := range mc.members {
		if err := mem.Harness.Finish(); err != nil {
			return fmt.Errorf("engine: cluster %q: %w", mem.Name, err)
		}
	}
	return nil
}

// Events returns the reallocation history in boundary order.
func (mc *MultiCluster) Events() []L3Event { return mc.events }

// ProportionalShare is the reference L3 policy: the budget is split
// proportionally to each window's arrivals by the largest-remainder
// method, with a guaranteed floor per live cluster and each share capped
// at the cluster's size. Clusters whose traces are exhausted get 0 — their
// share flows back to the live ones. Ties break on member index, so the
// split is deterministic.
type ProportionalShare struct {
	// MinPerCluster is the floor each live cluster keeps regardless of
	// load (default 1) — a cluster starved to zero could never observe
	// arrivals and win budget back.
	MinPerCluster int
}

// Name implements L3Policy.
func (p ProportionalShare) Name() string { return "proportional-share" }

// Allocate implements L3Policy.
func (p ProportionalShare) Allocate(round int, budget int, obs []L3Obs) ([]int, error) {
	n := len(obs)
	if n == 0 {
		return nil, fmt.Errorf("engine: proportional share over no clusters")
	}
	floor := p.MinPerCluster
	if floor < 1 {
		floor = 1
	}
	out := make([]int, n)
	caps := make([]int, n)
	remaining := budget
	// Floors first, in index order while the budget lasts.
	for i, o := range obs {
		caps[i] = o.Computers
		if o.Done {
			caps[i] = 0
		}
		f := floor
		if f > caps[i] {
			f = caps[i]
		}
		if f > remaining {
			f = remaining
		}
		out[i] = f
		remaining -= f
	}
	if remaining <= 0 {
		return out, nil
	}
	weights := make([]float64, n)
	wsum := 0.0
	for i, o := range obs {
		if caps[i] > 0 {
			weights[i] = float64(o.Arrived)
			wsum += weights[i]
		}
	}
	if wsum == 0 {
		// No load anywhere: split the remainder evenly over live clusters.
		for i := range weights {
			if caps[i] > 0 {
				weights[i] = 1
				wsum++
			}
		}
		if wsum == 0 {
			return out, nil
		}
	}
	// Largest remainder over the extra budget, respecting the caps; when a
	// cap truncates a quota the leftover cascades to the next pass.
	for remaining > 0 {
		type quota struct {
			i    int
			frac float64
		}
		var quotas []quota
		granted := 0
		for i := range obs {
			room := caps[i] - out[i]
			if room <= 0 || weights[i] == 0 {
				continue
			}
			ideal := float64(remaining) * weights[i] / wsum
			g := int(math.Floor(ideal))
			if g > room {
				g = room
			}
			out[i] += g
			granted += g
			if g < room {
				quotas = append(quotas, quota{i, ideal - math.Floor(ideal)})
			}
		}
		remaining -= granted
		if remaining <= 0 {
			break
		}
		if len(quotas) == 0 {
			// Every live cluster is saturated; the rest stays unassigned.
			break
		}
		sort.SliceStable(quotas, func(a, b int) bool { return quotas[a].frac > quotas[b].frac })
		progressed := false
		for _, q := range quotas {
			if remaining == 0 {
				break
			}
			if out[q.i] < caps[q.i] {
				out[q.i]++
				remaining--
				progressed = true
			}
		}
		if !progressed {
			break
		}
		// Recompute the live weight mass for the next pass.
		wsum = 0
		for i := range obs {
			if caps[i]-out[i] > 0 {
				wsum += weights[i]
			}
		}
		if wsum == 0 {
			for i := range obs {
				if caps[i]-out[i] > 0 {
					weights[i] = 1
					wsum++
				} else {
					weights[i] = 0
				}
			}
			if wsum == 0 {
				break
			}
		}
	}
	return out, nil
}
