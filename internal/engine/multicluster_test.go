package engine_test

import (
	"math/rand"
	"reflect"
	"testing"

	"hierctl/internal/baseline"
	"hierctl/internal/cluster"
	"hierctl/internal/engine"
	"hierctl/internal/series"
	"hierctl/internal/workload"
)

// farm builds a two-cluster L3 arrangement: cluster A under heavy load,
// cluster B under light load, threshold policies on both, a shared budget
// of 5 operational computers (of 8), reallocated every 240 s.
func farm(t *testing.T) (*engine.MultiCluster, []func() (*baseline.Result, error)) {
	t.Helper()
	loads := []float64{240, 20}
	names := []string{"A", "B"}
	members := make([]engine.Member, 2)
	finals := make([]func() (*baseline.Result, error), 2)
	for idx := range members {
		module, err := cluster.StandardModule("M1", "c")
		if err != nil {
			t.Fatal(err)
		}
		spec := cluster.Spec{Modules: []cluster.ModuleSpec{module}}
		trace := series.New(0, 60, 24)
		for i := range trace.Values {
			trace.Values[i] = loads[idx]
		}
		store, err := workload.NewStore(rand.New(rand.NewSource(int64(idx+1))), workload.DefaultStoreConfig())
		if err != nil {
			t.Fatal(err)
		}
		pol, err := baseline.NewThreshold(0.35, 0.8, 1)
		if err != nil {
			t.Fatal(err)
		}
		cfg := baseline.DefaultRunnerConfig()
		cfg.Seed = int64(idx + 1)
		h, finalize, err := baseline.PrepareEngine(spec, pol, trace, store, cfg)
		if err != nil {
			t.Fatal(err)
		}
		members[idx] = engine.Member{Name: names[idx], Harness: h, Trace: trace}
		finals[idx] = finalize
	}
	mc, err := engine.NewMultiCluster(members, engine.ProportionalShare{}, 5, 240)
	if err != nil {
		t.Fatal(err)
	}
	return mc, finals
}

// TestMultiClusterReallocatesTowardLoad drives two clusters under one
// shared clock and checks the L3 layer's contract: boundaries fire on
// schedule, the budget split follows the observed arrivals, and the
// starved cluster's provisioning is actually capped.
func TestMultiClusterReallocatesTowardLoad(t *testing.T) {
	mc, finals := farm(t)
	if err := mc.Run(); err != nil {
		t.Fatal(err)
	}
	if err := mc.Run(); err == nil {
		t.Fatal("second Run succeeded, want error")
	}
	events := mc.Events()
	// 24 bins × 60 s = 1440 s of trace; boundaries every 240 s with the
	// final one coinciding with the end of the run (all members Done).
	if len(events) != 5 {
		t.Fatalf("got %d L3 events, want 5: %+v", len(events), events)
	}
	for _, ev := range events {
		if ev.Time != float64(ev.Round)*240 {
			t.Errorf("round %d at time %v, want %v", ev.Round, ev.Time, float64(ev.Round)*240)
		}
		sum := 0
		for _, b := range ev.Budgets {
			if b < 1 {
				t.Errorf("round %d: budget %v includes a starved cluster", ev.Round, ev.Budgets)
			}
			sum += b
		}
		if sum != 5 {
			t.Errorf("round %d: budgets %v sum to %d, want the full 5", ev.Round, ev.Budgets, sum)
		}
		if ev.Arrived[0] <= ev.Arrived[1] {
			t.Errorf("round %d: window arrivals %v, want cluster A heavier", ev.Round, ev.Arrived)
		}
		if ev.Budgets[0] <= ev.Budgets[1] {
			t.Errorf("round %d: budgets %v, want the heavy cluster favoured", ev.Round, ev.Budgets)
		}
	}

	resA, err := finals[0]()
	if err != nil {
		t.Fatal(err)
	}
	resB, err := finals[1]()
	if err != nil {
		t.Fatal(err)
	}
	if resA.Completed == 0 || resB.Completed == 0 {
		t.Fatalf("completions A=%d B=%d, want both > 0", resA.Completed, resB.Completed)
	}
	// The light cluster's cap binds after the first boundary: its last
	// adaptation decisions may keep at most its final budget operational.
	lastBudgetB := events[len(events)-1].Budgets[1]
	vals := resB.Operational.Values
	if len(vals) == 0 {
		t.Fatal("cluster B recorded no adaptation periods")
	}
	if got := vals[len(vals)-1]; got > float64(lastBudgetB) {
		t.Errorf("cluster B ends with %v operational, above its budget %d", got, lastBudgetB)
	}
}

// TestMultiClusterDeterministic pins the shared-clock merge: two identical
// arrangements produce identical reallocation histories and results.
func TestMultiClusterDeterministic(t *testing.T) {
	mc1, finals1 := farm(t)
	if err := mc1.Run(); err != nil {
		t.Fatal(err)
	}
	mc2, finals2 := farm(t)
	if err := mc2.Run(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(mc1.Events(), mc2.Events()) {
		t.Errorf("reallocation histories diverge:\n%+v\n%+v", mc1.Events(), mc2.Events())
	}
	for idx := range finals1 {
		r1, err := finals1[idx]()
		if err != nil {
			t.Fatal(err)
		}
		r2, err := finals2[idx]()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(r1, r2) {
			t.Errorf("cluster %d results diverge:\n%+v\n%+v", idx, r1, r2)
		}
	}
}

// TestProportionalShareAllocate pins the reference L3 policy's arithmetic:
// floors, proportionality, caps, exhausted members, and determinism.
func TestProportionalShareAllocate(t *testing.T) {
	p := engine.ProportionalShare{}
	cases := []struct {
		name   string
		budget int
		obs    []engine.L3Obs
		want   []int
	}{
		{
			name:   "proportional split",
			budget: 6,
			obs: []engine.L3Obs{
				{Arrived: 300, Computers: 4},
				{Arrived: 100, Computers: 4},
			},
			want: []int{4, 2}, // floors 1+1, extras 4 split 3:1
		},
		{
			name:   "cap at cluster size",
			budget: 10,
			obs: []engine.L3Obs{
				{Arrived: 1000, Computers: 4},
				{Arrived: 1, Computers: 4},
			},
			want: []int{4, 4}, // heavy saturates, leftover flows to light; 2 unassignable
		},
		{
			name:   "no load splits evenly",
			budget: 4,
			obs: []engine.L3Obs{
				{Arrived: 0, Computers: 4},
				{Arrived: 0, Computers: 4},
			},
			want: []int{2, 2},
		},
		{
			name:   "done cluster releases its share",
			budget: 5,
			obs: []engine.L3Obs{
				{Arrived: 100, Computers: 4},
				{Arrived: 100, Computers: 4, Done: true},
			},
			want: []int{4, 0},
		},
		{
			name:   "budget below floors",
			budget: 1,
			obs: []engine.L3Obs{
				{Arrived: 10, Computers: 4},
				{Arrived: 10, Computers: 4},
			},
			want: []int{1, 0}, // index order when the budget cannot cover floors
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := p.Allocate(1, tc.budget, tc.obs)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Errorf("Allocate(%d, %+v) = %v, want %v", tc.budget, tc.obs, got, tc.want)
			}
		})
	}
}
