// Package engine is the shared-clock simulation engine under every
// closed-loop policy runner. One Harness owns the mechanics a runner needs
// — the simulation clock and control-tick cadence, the boot pre-roll, the
// push-driven request feed (workload.Feed), the quantized failure-plan
// schedule (cluster.FailureSteps / ApplyPlannedFailures), request spreading
// and dispatch, plant advancement, and the per-tick interval harvest —
// and calls back into a small Policy interface that the hierarchical,
// threshold, and centralized controllers implement.
//
// The harness's tick loop mirrors the step-primitive decomposition of the
// des kernel (HasPendingEvents / PeekNextEventTime / ProcessNextEvent):
// Tick advances exactly one control period, NextTickTime peeks the clock,
// and Done reports exhaustion — which is what lets MultiCluster interleave
// several harnesses in global timestamp order behind one clock and layer a
// cross-cluster L3 optimizer on top.
//
// Invariant: a policy rewritten from a private step loop onto the harness
// produces bit-identical results — decisions, QoS violations, energy,
// explored counts — to its pre-engine runner. The legacy loops survive
// verbatim as test oracles (legacy_oracle_test.go in internal/baseline and
// internal/central, mechanics oracle in internal/core) and the committed
// BENCH_scenarios.json regenerates byte-identically through the engine
// path; both pins run under -race in CI.
package engine

import (
	"fmt"
	"time"

	"hierctl/internal/chaos"
	"hierctl/internal/cluster"
	"hierctl/internal/des"
	// Aliased: Tick's per-tick observation local is conventionally named obs.
	flight "hierctl/internal/obs"
	"hierctl/internal/series"
	"hierctl/internal/workload"
)

// SpreadMode selects how a bin's arrivals map onto control ticks.
type SpreadMode int

const (
	// SpreadBinRing folds each request into one of its own bin's ticks
	// (offset clamped to the bin), buffered in a ring of one slot per
	// tick of the bin — the hierarchical engine's historical semantics,
	// and the only mode available to open-ended streaming runs.
	SpreadBinRing SpreadMode = iota
	// SpreadRunArray indexes each request onto the absolute tick grid of
	// a fixed-length run — the flat runners' historical semantics.
	// Requests whose offset lands past the final tick (a float-rounding
	// edge at the trace end) are folded into the last tick and counted in
	// Spilled, so the accounting is no longer silent. Requires TotalBins.
	SpreadRunArray
)

// Config parameterizes a Harness. PeriodSeconds is the control-tick width
// (the finest cadence any level of the policy decides at); BinSeconds must
// be an integer multiple of it.
type Config struct {
	// Spec is the cluster the plant simulates.
	Spec cluster.Spec
	// Seed drives the run's random streams.
	Seed int64
	// DispatchStream and WorkloadStream name the des.RNG streams for the
	// plant's dispatcher and the request feed. Each policy keeps its
	// historical stream names so runs stay bit-identical across the
	// engine migration.
	DispatchStream string
	WorkloadStream string
	// PeriodSeconds is the control-tick width in seconds.
	PeriodSeconds float64
	// BinSeconds is the observation-bin width; Start the workload-clock
	// time of the first bin.
	BinSeconds float64
	Start      float64
	// TotalBins fixes the run length when the trace is known up front
	// (PushBin then refuses extra bins); 0 leaves the run open-ended.
	TotalBins int
	// DrainSeconds extends the run past the last tick so in-flight
	// requests complete into the aggregate statistics.
	DrainSeconds float64
	// Failures is the scenario injection plan, quantized onto the tick
	// grid (ceil(At/PeriodSeconds)) and fired ahead of the policy at each
	// boundary — and once more at the final boundary before the drain.
	Failures []workload.FailureEvent
	// Chaos is the sensor-fault injection plan. Its sensor faults corrupt
	// what the policy observes — never the plant, so QoS and energy
	// accounting stay truthful — and are quantized onto the tick grid the
	// same ceil(At/PeriodSeconds) way as Failures; its availability
	// events are merged into Failures at construction. An empty plan is
	// pinned bit-identical to no plan at all.
	Chaos chaos.Plan
	// Spread selects the bin-to-tick request mapping.
	Spread SpreadMode
	// Recorder, when non-nil, receives one flight-recorder record per
	// tick (whole-decision latency, interval mean response, QoS flag) and
	// carries the tick stamp the controllers' own records pick up.
	// Recording is observe-only: runs are bit-identical with it on or
	// off.
	Recorder *flight.Recorder
	// QoSTarget is the mean-response target (seconds) the tick records'
	// QoS-violation flag is judged against; 0 disables the flag.
	QoSTarget float64
}

// Harness owns one closed-loop run's mechanics and drives a Policy.
// Construct with New, then either RunTrace for a batch replay or
// PushBin/Tick/Finish for incremental stepping.
type Harness struct {
	cfg    Config
	policy Policy
	plant  *cluster.Plant
	feed   *workload.Feed

	sub     int // ticks per observation bin
	steps   int // TotalBins*sub; 0 when open-ended
	preroll float64
	tick    int
	failAt  []int

	ring [][]workload.Request // SpreadBinRing: one slot per tick of a bin
	flat [][]workload.Request // SpreadRunArray: one slot per tick of the run

	stats    []ModuleStats
	spilled  int64
	finished bool

	chaos    *chaos.Schedule
	inj      []injectorState
	san      []sanitizerState
	degraded int
	stale    int64
	rejects  int64

	// Lifetime arrival/completion counters for cross-cluster observation
	// windows (MultiCluster snapshots deltas between L3 boundaries).
	cumArrived   int64
	cumCompleted int64
	cumRespSum   float64 // sum of interval mean response × completions
}

// New builds the harness: the plant is constructed and warm-started (every
// computer on at full frequency), the boot pre-roll is advanced with its
// interval statistics discarded, and the policy is initialized against the
// warmed plant.
func New(cfg Config, store *workload.Store, p Policy) (*Harness, error) {
	if p == nil {
		return nil, fmt.Errorf("engine: nil policy")
	}
	sub, err := series.SubSteps(cfg.BinSeconds, cfg.PeriodSeconds)
	if err != nil {
		return nil, err
	}
	if cfg.Spread == SpreadRunArray && cfg.TotalBins <= 0 {
		return nil, fmt.Errorf("engine: run-array spreading needs TotalBins")
	}
	if cfg.TotalBins < 0 {
		return nil, fmt.Errorf("engine: total bins %d < 0", cfg.TotalBins)
	}
	if cfg.DrainSeconds < 0 {
		return nil, fmt.Errorf("engine: drain %v < 0", cfg.DrainSeconds)
	}
	if cfg.DispatchStream == "" || cfg.WorkloadStream == "" {
		return nil, fmt.Errorf("engine: dispatch and workload RNG stream names are required")
	}
	plant, err := cluster.NewPlant(cfg.Spec, des.RNG(cfg.Seed, cfg.DispatchStream))
	if err != nil {
		return nil, err
	}
	feed, err := workload.NewFeed(cfg.Start, cfg.BinSeconds, store, des.RNG(cfg.Seed, cfg.WorkloadStream))
	if err != nil {
		return nil, err
	}
	h := &Harness{
		cfg:    cfg,
		policy: p,
		plant:  plant,
		feed:   feed,
		sub:    sub,
		steps:  cfg.TotalBins * sub,
		stats:  make([]ModuleStats, len(cfg.Spec.Modules)),
	}
	if cfg.Spread == SpreadBinRing {
		h.ring = make([][]workload.Request, sub)
	} else {
		h.flat = make([][]workload.Request, h.steps)
	}
	if len(cfg.Chaos.Failures) > 0 {
		// Merge the chaos plan's availability events into the scenario
		// failure plan without mutating the caller's slice.
		merged := make([]workload.FailureEvent, 0, len(cfg.Failures)+len(cfg.Chaos.Failures))
		merged = append(merged, cfg.Failures...)
		merged = append(merged, cfg.Chaos.Failures...)
		h.cfg.Failures = merged
	}
	sched, err := cfg.Chaos.Schedule(cfg.PeriodSeconds, len(cfg.Spec.Modules))
	if err != nil {
		return nil, err
	}
	h.chaos = sched
	h.initSanitizer()
	h.failAt = cluster.FailureSteps(h.cfg.Failures, cfg.PeriodSeconds)

	// Warm start: boot every computer at full frequency; the policy scales
	// down immediately if the load does not justify it.
	for i := range cfg.Spec.Modules {
		for j := range cfg.Spec.Modules[i].Computers {
			if err := plant.PowerOn(i, j); err != nil {
				return nil, err
			}
			if err := plant.SetFrequency(i, j, len(cfg.Spec.Modules[i].Computers[j].FrequenciesHz)-1); err != nil {
				return nil, err
			}
			if d := cfg.Spec.Modules[i].Computers[j].BootDelaySeconds; d > h.preroll {
				h.preroll = d
			}
		}
	}
	if h.preroll > 0 {
		if err := plant.Advance(h.preroll); err != nil {
			return nil, err
		}
		for i := range cfg.Spec.Modules {
			// Discard boot-interval stats.
			if _, _, err := plant.ModuleIntervalStats(i); err != nil {
				return nil, err
			}
		}
	}
	if err := p.Init(plant); err != nil {
		return nil, err
	}
	return h, nil
}

// Plant returns the simulated cluster.
func (h *Harness) Plant() *cluster.Plant { return h.plant }

// Policy returns the policy the harness drives — the handle a
// cross-cluster layer uses to reach capabilities like Budgeted.
func (h *Harness) Policy() Policy { return h.policy }

// Preroll returns the boot pre-roll in seconds (the longest boot delay).
func (h *Harness) Preroll() float64 { return h.preroll }

// SubSteps returns the number of control ticks per observation bin.
func (h *Harness) SubSteps() int { return h.sub }

// Ticks returns the number of control ticks completed.
func (h *Harness) Ticks() int { return h.tick }

// Bins returns the number of observation bins ingested.
func (h *Harness) Bins() int { return h.feed.Bins() }

// NextTickTime returns the simulation time the next tick starts at — the
// harness-level analogue of des.Simulator.PeekNextEventTime, used by
// shared-clock drivers to pick which harness advances next.
func (h *Harness) NextTickTime() float64 {
	return h.preroll + float64(h.tick)*h.cfg.PeriodSeconds
}

// Done reports whether a fixed-length run has consumed its trace and run
// every tick (always false for open-ended runs until Finish).
func (h *Harness) Done() bool {
	return h.finished || (h.cfg.TotalBins > 0 && h.tick >= h.steps)
}

// Spilled reports how many requests were folded into the final tick
// because their arrival offset landed past the end of a fixed-length run —
// the float-rounding edge at the trace end that used to be clamped
// silently. Always 0 in SpreadBinRing mode, where offsets fold within
// their own bin instead.
func (h *Harness) Spilled() int64 { return h.spilled }

// DegradedTicks reports how many ticks the policy decided through its
// deterministic fallback path (Settings.Degraded).
func (h *Harness) DegradedTicks() int { return h.degraded }

// StaleObservations reports how many module observations the sanitizer
// held at the last good value (module-ticks, cumulative).
func (h *Harness) StaleObservations() int64 { return h.stale }

// SanitizedRejects reports how many module observations the sanitizer
// rejected for carrying non-finite or negative values (module-ticks,
// cumulative). Rejected observations are also counted stale.
func (h *Harness) SanitizedRejects() int64 { return h.rejects }

// PushBin ingests the next observation bin's arrival count: the bin's
// requests are synthesized through the feed and spread onto the tick grid.
// It does not advance the clock — call Tick (SubSteps times per bin) to
// run the control loop, or use RunTrace for the batch loop.
func (h *Harness) PushBin(count float64) error {
	if h.finished {
		return fmt.Errorf("engine: harness already finished")
	}
	if h.cfg.TotalBins > 0 && h.feed.Bins() >= h.cfg.TotalBins {
		return fmt.Errorf("engine: trace exhausted at bin %d", h.feed.Bins())
	}
	if h.feed.Bins()*h.sub != h.tick {
		return fmt.Errorf("engine: bin %d pushed mid-bin at tick %d", h.feed.Bins(), h.tick)
	}
	bin, reqs := h.feed.Push(count)
	h.spread(bin, reqs)
	return nil
}

// spread maps one bin's requests onto the tick grid, rebasing arrival
// times onto the simulation clock (workload time zero is the end of the
// boot pre-roll; traces sliced mid-day have a non-zero Start).
func (h *Harness) spread(bin int, reqs []workload.Request) {
	binStart := h.cfg.Start + float64(bin)*h.cfg.BinSeconds
	for _, req := range reqs {
		d := int((req.Arrival - binStart) / h.cfg.PeriodSeconds)
		req.Arrival += h.preroll - h.cfg.Start
		if h.cfg.Spread == SpreadBinRing {
			if d < 0 {
				d = 0
			}
			if d >= h.sub {
				d = h.sub - 1
			}
			slot := (h.tick + d) % h.sub
			h.ring[slot] = append(h.ring[slot], req)
			continue
		}
		idx := h.tick + d
		if idx >= h.steps {
			idx = h.steps - 1
			h.spilled++
		}
		h.flat[idx] = append(h.flat[idx], req)
	}
}

// pending returns the request batch queued for tick k without consuming it.
func (h *Harness) pending(k int) []workload.Request {
	if h.cfg.Spread == SpreadBinRing {
		return h.ring[k%h.sub]
	}
	return h.flat[k]
}

// clearPending consumes tick k's batch. Ring slots keep their capacity —
// Dispatch copies requests into the computer queues, so the batch never
// escapes, and a long-running session would otherwise reallocate the
// slot's backing array every bin. Flat slots are one-shot per run and are
// released so a batch run's memory falls as it drains.
func (h *Harness) clearPending(k int) {
	if h.cfg.Spread == SpreadBinRing {
		h.ring[k%h.sub] = h.ring[k%h.sub][:0]
		return
	}
	h.flat[k] = nil
}

// Tick advances one control period: planned failures fire at the boundary,
// the policy decides, the tick's arrivals dispatch under the returned
// fractions, the plant advances through the period, and the harvested
// interval statistics go back to the policy.
func (h *Harness) Tick() error {
	if h.finished {
		return fmt.Errorf("engine: harness already finished")
	}
	k := h.tick
	if k >= h.feed.Bins()*h.sub {
		return fmt.Errorf("engine: tick %d outruns the %d ingested bins", k, h.feed.Bins())
	}
	t := h.preroll + float64(k)*h.cfg.PeriodSeconds
	if err := h.plant.ApplyPlannedFailures(h.cfg.Failures, h.failAt, k); err != nil {
		return err
	}
	obs := TickObs{
		Time:            t,
		PendingRequests: len(h.pending(k)),
	}
	if k%h.sub == 0 {
		obs.NewBin = true
		obs.Bin = k / h.sub
	}
	rec := h.cfg.Recorder
	rec.SetTick(int64(k))
	var decideStart time.Time
	if rec.Enabled() {
		decideStart = time.Now() //hpm:wallclock decide-latency telemetry; observe-only, never a decision input
	}
	st, err := h.policy.Decide(k, obs)
	if err != nil {
		return err
	}
	var decideNs int64
	if rec.Enabled() {
		decideNs = time.Since(decideStart).Nanoseconds() //hpm:wallclock decide-latency telemetry; observe-only, never a decision input
	}
	if reqs := h.pending(k); len(reqs) > 0 {
		if err := h.plant.Dispatch(reqs, st.GammaModules, st.GammaComputers); err != nil {
			return err
		}
	}
	h.clearPending(k)
	if err := h.plant.Advance(t + h.cfg.PeriodSeconds); err != nil {
		return err
	}
	completedBefore, respBefore := h.cumCompleted, h.cumRespSum
	for i := range h.stats {
		agg, per, err := h.plant.ModuleIntervalStats(i)
		if err != nil {
			return err
		}
		h.stats[i] = ModuleStats{Agg: agg, Per: per}
		h.cumArrived += int64(agg.Arrived)
		h.cumCompleted += int64(agg.Completed)
		if agg.Completed > 0 {
			h.cumRespSum += agg.MeanResponse * float64(agg.Completed)
		}
	}
	// Sensor faults and sanitization sit between the harvest and the
	// policy's Observe: the plant's accounting above is already truthful,
	// and only the policy's view of the interval is corrupted or healed.
	staleNow := h.injectAndSanitize(k)
	if st.Degraded {
		h.degraded++
	}
	if rec.Enabled() {
		// One tick record after the harvest: the interval's mean response
		// across modules, judged against the configured QoS target.
		completed := h.cumCompleted - completedBefore
		mean := 0.0
		if completed > 0 {
			mean = (h.cumRespSum - respBefore) / float64(completed)
		}
		rec.Record(flight.Record{
			Level:    flight.LevelTick,
			Module:   -1,
			Comp:     -1,
			FreqIdx:  -1,
			DecideNs: decideNs,
			Resp:     mean,
			QoS:      h.cfg.QoSTarget > 0 && completed > 0 && mean > h.cfg.QoSTarget,
			Degraded: st.Degraded,
			Stale:    int16(staleNow),
		})
	}
	h.tick++
	return h.policy.Observe(k, h.stats)
}

// Finish fires failures quantized exactly to the final boundary, drains
// in-flight work, and closes the energy accounting. The harness cannot be
// stepped afterwards.
func (h *Harness) Finish() error {
	if h.finished {
		return fmt.Errorf("engine: harness already finished")
	}
	h.finished = true
	if err := h.plant.ApplyPlannedFailures(h.cfg.Failures, h.failAt, h.tick); err != nil {
		return err
	}
	end := h.preroll + float64(h.tick)*h.cfg.PeriodSeconds
	if err := h.plant.Advance(end + h.cfg.DrainSeconds); err != nil {
		return err
	}
	h.plant.FinishAccounting()
	return nil
}

// RunTrace is the batch loop: every trace bin is pushed and ticked through,
// then the run finishes. The trace must match the configured bin grid (its
// Step and Start are the caller's responsibility — they seed Config).
func (h *Harness) RunTrace(trace *series.Series) error {
	for _, count := range trace.Values {
		if err := h.PushBin(count); err != nil {
			return err
		}
		for d := 0; d < h.sub; d++ {
			if err := h.Tick(); err != nil {
				return err
			}
		}
	}
	return h.Finish()
}

// Totals aggregates the plant's lifetime accounting in module-major
// computer order — the order and arithmetic every legacy runner used, so
// results summed through the harness stay bit-identical.
type Totals struct {
	Energy       float64
	Switches     int
	Completed    int64
	Dropped      int64
	MeanResponse float64
	ResponseP95  float64
}

// Totals reads the run's aggregate outcomes; call after Finish.
func (h *Harness) Totals() (Totals, error) {
	var out Totals
	out.Energy = h.plant.Accountant().TotalEnergy()
	out.Switches = h.plant.Accountant().TotalSwitches()
	var respAll float64
	var respCount int64
	for i := 0; i < h.plant.Modules(); i++ {
		for j := 0; j < h.plant.ModuleSize(i); j++ {
			c, err := h.plant.Computer(i, j)
			if err != nil {
				return Totals{}, err
			}
			out.Completed += c.TotalCompleted()
			out.Dropped += c.TotalDropped()
			respAll += c.LifetimeResponse().Mean() * float64(c.LifetimeResponse().Count())
			respCount += c.LifetimeResponse().Count()
		}
	}
	if respCount > 0 {
		out.MeanResponse = respAll / float64(respCount)
	}
	out.ResponseP95 = h.plant.Latencies().Quantile(0.95)
	return out, nil
}

// WindowTotals returns the lifetime arrival/completion counters and the
// response-time mass (interval mean × completions, summed). Shared-clock
// drivers snapshot these at L3 boundaries and difference them to observe a
// cluster's recent window.
func (h *Harness) WindowTotals() (arrived, completed int64, respSum float64) {
	return h.cumArrived, h.cumCompleted, h.cumRespSum
}
