package engine

import (
	"math"

	"hierctl/internal/chaos"
	"hierctl/internal/cluster"
)

// injectorState is one module's sensor-fault injector: the pending drop
// window, a one-shot corruption, and a stashed observation awaiting late
// (KindDelay) or duplicated (KindDupe) delivery. All buffers are owned by
// the harness and reused across ticks.
type injectorState struct {
	dropUntil  int
	corrupt    chaos.Kind
	factor     float64
	hasCorrupt bool
	stash      ModuleStats
	stashDue   int // tick the stash delivers on; -1 = none
}

// sanitizerState is one module's last-good observation, held out to the
// policy whenever the fresh one is dropped or rejected. It starts zeroed:
// a fault before the first good harvest holds the module at an empty
// interval, which is still deterministic.
type sanitizerState struct {
	good ModuleStats
}

func (h *Harness) initSanitizer() {
	n := len(h.cfg.Spec.Modules)
	h.inj = make([]injectorState, n)
	h.san = make([]sanitizerState, n)
	for i := range h.san {
		size := len(h.cfg.Spec.Modules[i].Computers)
		h.san[i].good.Per = make([]cluster.IntervalStats, size)
		h.inj[i].stash.Per = make([]cluster.IntervalStats, size)
		h.inj[i].stashDue = -1
	}
}

func (in *injectorState) stashStats(src ModuleStats) {
	in.stash.Agg = src.Agg
	in.stash.Per = in.stash.Per[:len(src.Per)]
	copy(in.stash.Per, src.Per)
}

// injectAndSanitize runs after the tick's harvest and before the policy's
// Observe: planned sensor faults perturb h.stats in place, then the
// always-on sanitizer rejects non-finite or negative observations and
// holds dropped or rejected modules at their last good value. It returns
// how many modules were held stale this tick. With no chaos schedule and
// clean plant statistics it never modifies h.stats, so fault-free runs
// stay bit-identical to runs without the sanitizer in the path.
//
//hpm:hotpath
func (h *Harness) injectAndSanitize(k int) int {
	for _, a := range h.chaos.ActionsAt(k) {
		in := &h.inj[a.Module]
		switch a.Kind {
		case chaos.KindDrop:
			in.dropUntil = k + a.Ticks
		case chaos.KindNaN, chaos.KindNegative, chaos.KindSpike:
			in.corrupt, in.factor, in.hasCorrupt = a.Kind, a.Factor, true
		case chaos.KindDelay:
			// Withhold this tick's observation and deliver it late; the
			// tick it was taken from reads as dropped.
			in.stashStats(h.stats[a.Module])
			in.stashDue = k + a.Ticks
			in.dropUntil = k + 1
		case chaos.KindDupe:
			// This tick delivers normally; its copy supersedes the next
			// tick's fresh observation.
			in.stashStats(h.stats[a.Module])
			in.stashDue = k + 1
		}
	}
	stale := 0
	for i := range h.stats {
		in := &h.inj[i]
		dropped := false
		switch {
		case in.stashDue == k:
			h.stats[i] = ModuleStats{Agg: in.stash.Agg, Per: in.stash.Per}
			in.stashDue = -1
		case k < in.dropUntil:
			dropped = true
		case in.hasCorrupt:
			corruptStats(&h.stats[i], in.corrupt, in.factor)
			in.hasCorrupt = false
		}
		sa := &h.san[i]
		if dropped || !statsValid(h.stats[i]) {
			if !dropped {
				h.rejects++
			}
			h.stats[i] = ModuleStats{Agg: sa.good.Agg, Per: sa.good.Per}
			h.stale++
			stale++
			continue
		}
		// Valid: refresh the last-good copy in place. The buffers were
		// sized at construction, so this never allocates.
		sa.good.Agg = h.stats[i].Agg
		sa.good.Per = sa.good.Per[:len(h.stats[i].Per)]
		copy(sa.good.Per, h.stats[i].Per)
	}
	return stale
}

// corruptStats applies a one-shot corruption to the module's harvested
// interval. The harvest buffers are harness-owned until the next tick, so
// in-place mutation never leaks into the plant.
func corruptStats(st *ModuleStats, kind chaos.Kind, factor float64) {
	switch kind {
	case chaos.KindNaN:
		nan := math.NaN()
		st.Agg.MeanResponse = nan
		st.Agg.MeanDemand = nan
		st.Agg.Busy = nan
	case chaos.KindNegative:
		st.Agg.Arrived = -st.Agg.Arrived - 1
		st.Agg.Completed = -st.Agg.Completed - 1
		st.Agg.QueueLen = -st.Agg.QueueLen - 1
	case chaos.KindSpike:
		// Finite and non-negative: the spike passes sanitization by
		// design, probing the estimator chain rather than validation.
		st.Agg.Arrived = int(float64(st.Agg.Arrived)*factor) + int(factor)
		for j := range st.Per {
			st.Per[j].Arrived = int(float64(st.Per[j].Arrived) * factor)
		}
	}
}

// statsValid reports whether a module observation is fit to show the
// policy: all counts non-negative and all rates finite and non-negative.
func statsValid(st ModuleStats) bool {
	if !intervalValid(st.Agg) {
		return false
	}
	for _, c := range st.Per {
		if !intervalValid(c) {
			return false
		}
	}
	return true
}

func intervalValid(s cluster.IntervalStats) bool {
	if s.Arrived < 0 || s.Completed < 0 || s.Dropped < 0 || s.QueueLen < 0 {
		return false
	}
	return nonNegFinite(s.MeanResponse) && nonNegFinite(s.MaxResponse) &&
		nonNegFinite(s.MeanDemand) && nonNegFinite(s.Busy)
}

func nonNegFinite(x float64) bool {
	return x >= 0 && !math.IsInf(x, 1)
}
