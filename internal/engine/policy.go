package engine

import (
	"hierctl/internal/cluster"
)

// Settings is what a policy wants in force for the tick being decided: the
// dispatch fractions the harness routes the tick's arrivals under. Power
// and frequency actuation happen inside Decide through the plant handle —
// the ordering of those plant calls is part of each policy's contract with
// its historical runner, so the harness does not mediate them.
type Settings struct {
	// GammaModules is the module-level dispatch split γ_i.
	GammaModules []float64
	// GammaComputers is the within-module split γ_ij per module.
	GammaComputers [][]float64
	// Degraded marks a tick the policy decided through its deterministic
	// fallback path (decision budget exhausted or a recovered controller
	// panic) instead of its lookahead search. The harness counts these
	// ticks and stamps the flag onto the tick flight record.
	Degraded bool
}

// ModuleStats is one module's harvested plant interval: the aggregate and
// the per-computer statistics, in module order. Slices are owned by the
// harness until the next tick's harvest; policies that retain them across
// ticks must copy (the per-computer slice is freshly allocated each
// harvest, matching the plant's contract).
type ModuleStats struct {
	Agg cluster.IntervalStats
	Per []cluster.IntervalStats
}

// TickObs is the harness's payload for one Decide call.
type TickObs struct {
	// Time is the simulation clock at the start of the tick (the boot
	// pre-roll included).
	Time float64
	// PendingRequests is how many requests are queued for dispatch this
	// tick; when it is zero the returned Settings are not used.
	PendingRequests int
	// NewBin marks the first tick after an observation bin was ingested;
	// Bin and BinCount then identify it.
	NewBin   bool
	Bin      int
	BinCount float64
}

// Policy is the control side of a closed-loop run. The harness owns the
// mechanics — clock, pre-roll, workload feed, failure schedule, dispatch,
// plant advance, and interval harvest — and calls back into the policy:
//
//	Init    once, after the warm start and boot pre-roll
//	Decide  at the start of every control tick (failures already applied)
//	Observe after the plant advanced through the tick, with the harvest
//
// The hierarchical (internal/core), threshold (internal/baseline), and
// centralized (internal/central) controllers each implement Policy; the
// shared loop is what makes their event accounting apples-to-apples and
// lets cross-cluster layers observe any of them mid-run.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Init prepares policy state against the warmed plant (every computer
	// on at full speed, boot pre-roll completed).
	Init(p *cluster.Plant) error
	// Decide runs the policy's controllers for tick (deciding at its own
	// cadence) and returns the dispatch fractions for the tick's arrivals.
	Decide(tick int, obs TickObs) (Settings, error)
	// Observe folds the tick's harvested plant statistics into the
	// policy's estimators and records.
	Observe(tick int, stats []ModuleStats) error
}

// Budgeted is implemented by policies that honour an externally-imposed
// cap on operational computers — the lever a cross-cluster L3 layer pulls
// when it reallocates a shared power budget (see MultiCluster).
type Budgeted interface {
	// SetBudget caps the number of computers the policy may keep
	// operational; 0 or negative removes the cap.
	SetBudget(maxOperational int)
}
