package fleet

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"hierctl/internal/core"
)

var errCrash = errors.New("injected crash")

func journalPath(t *testing.T) string {
	return filepath.Join(t.TempDir(), "fleet.journal")
}

// TestJournalAppendCompactCycle drives the journal through its whole
// life: base on open, deltas on append, removes for closed tenants, a
// policy-triggered compaction, and a reopen that restores the end state.
func TestJournalAppendCompactCycle(t *testing.T) {
	dir := t.TempDir()
	path := journalPath(t)
	f := New(Config{Shards: 2})
	defer f.Close()
	for _, id := range []string{"a", "b"} {
		if err := f.CreateTenant(id, batchTenantConfig(dir, 1)); err != nil {
			t.Fatal(err)
		}
	}
	j, err := OpenJournal(f, path, JournalConfig{MaxAppends: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	st := j.Stats()
	if st.BaseBytes == 0 || st.TailBytes != 0 || st.Compactions != 1 {
		t.Fatalf("after open: %+v", st)
	}

	for i := 0; i < 4; i++ {
		if _, err := f.Observe("a", 200); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Append(); err != nil {
		t.Fatal(err)
	}
	if st := j.Stats(); st.TailBytes == 0 || st.Appends != 1 {
		t.Fatalf("delta append not recorded: %+v", st)
	}
	// An append with nothing new writes nothing (but still ages).
	if err := j.Append(); err != nil {
		t.Fatal(err)
	}
	tail := j.Stats().TailBytes
	if got := j.Stats(); got.Appends != 2 || got.TailBytes != tail {
		t.Fatalf("empty append changed the log: %+v", got)
	}

	// Close a tenant and create another: remove + base frames.
	if _, err := f.CloseTenant("b"); err != nil {
		t.Fatal(err)
	}
	if err := f.CreateTenant("c", batchTenantConfig(dir, 2)); err != nil {
		t.Fatal(err)
	}
	// Third append hits MaxAppends and compacts.
	if err := j.Append(); err != nil {
		t.Fatal(err)
	}
	if st := j.Stats(); st.Compactions != 2 || st.TailBytes != 0 || st.Appends != 0 {
		t.Fatalf("age-triggered compaction missing: %+v", st)
	}

	// Reopen into a fresh fleet: a with 4 bins, c with 0, no b.
	f2 := New(Config{Shards: 2})
	defer f2.Close()
	j2, err := OpenJournal(f2, path, JournalConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got := f2.Tenants(); !reflect.DeepEqual(got, []string{"a", "c"}) {
		t.Fatalf("restored tenants %v, want [a c]", got)
	}
	sta, err := f2.State("a")
	if err != nil {
		t.Fatal(err)
	}
	if sta.Bins != 4 {
		t.Fatalf("tenant a restored at %d bins, want 4", sta.Bins)
	}
}

// TestJournalSizeTriggeredCompaction: a tail outgrowing
// CompactFactor × base forces a rewrite.
func TestJournalSizeTriggeredCompaction(t *testing.T) {
	f := New(Config{Shards: 1})
	defer f.Close()
	if err := f.CreateTenant("a", batchTenantConfig(t.TempDir(), 1)); err != nil {
		t.Fatal(err)
	}
	// A tiny factor means the first non-empty delta exceeds the bound.
	j, err := OpenJournal(f, journalPath(t), JournalConfig{CompactFactor: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if _, err := f.Observe("a", 200); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(); err != nil {
		t.Fatal(err)
	}
	if st := j.Stats(); st.Compactions != 2 || st.TailBytes != 0 {
		t.Fatalf("size-triggered compaction missing: %+v", st)
	}
}

// TestJournalCloseRecreateSameID: closing a tenant and recreating one
// under the same id between two Appends is a new incarnation, not growth
// of the old one — the journal must retire the old state (remove frame)
// and re-base, never graft the new observation log onto the old base.
// The new incarnation's log is deliberately shorter than the old mark,
// the case an id-keyed journal would skip entirely.
func TestJournalCloseRecreateSameID(t *testing.T) {
	dir := t.TempDir()
	path := journalPath(t)
	f := New(Config{Shards: 1})
	defer f.Close()
	if err := f.CreateTenant("a", batchTenantConfig(dir, 1)); err != nil {
		t.Fatal(err)
	}
	j, err := OpenJournal(f, path, JournalConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []float64{200, 250, 150} {
		if _, err := f.Observe("a", c); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Append(); err != nil {
		t.Fatal(err)
	}

	// New incarnation under the same id: different store seed, one bin —
	// shorter than the old incarnation's journaled three.
	if _, err := f.CloseTenant("a"); err != nil {
		t.Fatal(err)
	}
	if err := f.CreateTenant("a", batchTenantConfig(dir, 9)); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Observe("a", 300); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(); err != nil {
		t.Fatal(err)
	}
	j.Close()

	f2 := New(Config{Shards: 1})
	defer f2.Close()
	j2, err := OpenJournal(f2, path, JournalConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	st, err := f2.State("a")
	if err != nil {
		t.Fatal(err)
	}
	if st.Bins != 1 {
		t.Fatalf("recovered %d bins, want the new incarnation's 1", st.Bins)
	}
	// The restored tenant must be the *new* incarnation (config and all):
	// its next decision matches the survivor's.
	want, err := f.Observe("a", 225)
	if err != nil {
		t.Fatal(err)
	}
	got, err := f2.Observe("a", 225)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-recovery decision diverged:\nsurvivor %+v\nrecovered %+v", want, got)
	}
}

// TestJournalFailedAppendTruncates: a write failure mid-append must not
// leave garbage in the middle of the log — the file is truncated back to
// its pre-append offset, the marks stay put, and the next successful
// Append re-sends (and durably lands) the same observations.
func TestJournalFailedAppendTruncates(t *testing.T) {
	path := journalPath(t)
	f := New(Config{Shards: 1})
	defer f.Close()
	if err := f.CreateTenant("a", batchTenantConfig(t.TempDir(), 1)); err != nil {
		t.Fatal(err)
	}
	j, err := OpenJournal(f, path, JournalConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []float64{200, 250} {
		if _, err := f.Observe("a", c); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Append(); err != nil {
		t.Fatal(err)
	}
	before, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := f.Observe("a", 150); err != nil {
		t.Fatal(err)
	}
	j.hookAfterFrames = func() error { return errCrash } // frames written, not yet synced
	if err := j.Append(); !errors.Is(err, errCrash) {
		t.Fatalf("append: got %v, want injected failure", err)
	}
	j.hookAfterFrames = nil
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() != before.Size() {
		t.Fatalf("failed append left %d bytes, want truncation back to %d", after.Size(), before.Size())
	}

	// The journal stays usable: the un-journaled bin lands on retry and a
	// reopen restores all three.
	if err := j.Append(); err != nil {
		t.Fatal(err)
	}
	j.Close()
	f2 := New(Config{Shards: 1})
	defer f2.Close()
	j2, err := OpenJournal(f2, path, JournalConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	st, err := f2.State("a")
	if err != nil {
		t.Fatal(err)
	}
	if st.Bins != 3 {
		t.Fatalf("recovered %d bins, want 3", st.Bins)
	}
}

// TestJournalCrashAfterAppendRestores is the crash invariant's pin: the
// process dies after a delta append but before the next compaction, and
// recovery must hold exactly the appended observations — none lost, none
// double-applied — with the restored fleet's next decisions bit-identical
// to the survivor's.
func TestJournalCrashAfterAppendRestores(t *testing.T) {
	dir := t.TempDir()
	path := journalPath(t)
	f := New(Config{Shards: 1})
	defer f.Close()
	if err := f.CreateTenant("a", batchTenantConfig(dir, 1)); err != nil {
		t.Fatal(err)
	}
	j, err := OpenJournal(f, path, JournalConfig{})
	if err != nil {
		t.Fatal(err)
	}
	counts := []float64{200, 250, 150, 300, 225, 175}
	for _, c := range counts[:4] {
		if _, err := f.Observe("a", c); err != nil {
			t.Fatal(err)
		}
	}
	j.hookAfterAppend = func() error { return errCrash } // die before the compaction check
	if err := j.Append(); !errors.Is(err, errCrash) {
		t.Fatalf("append: got %v, want injected crash", err)
	}
	j.Close()

	// Bins 4 and 5 happen only on the survivor, after the last durable
	// append — the restored fleet must reproduce their decisions from
	// the same counts.
	var want []core.BinDecision
	for _, c := range counts[4:] {
		dec, err := f.Observe("a", c)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, dec)
	}

	f2 := New(Config{Shards: 1})
	defer f2.Close()
	j2, err := OpenJournal(f2, path, JournalConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	st, err := f2.State("a")
	if err != nil {
		t.Fatal(err)
	}
	if st.Bins != 4 {
		t.Fatalf("recovered %d bins, want exactly the 4 appended", st.Bins)
	}
	for i, c := range counts[4:] {
		dec, err := f2.Observe("a", c)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(dec, want[i]) {
			t.Fatalf("post-recovery decision %d diverged:\nsurvivor %+v\nrecovered %+v", i, want[i], dec)
		}
	}
}

// TestJournalCrashDuringCompactKeepsOldLog: a crash after the new base
// is written but before the rename swap must leave the old log — base
// plus its deltas — fully restorable.
func TestJournalCrashDuringCompactKeepsOldLog(t *testing.T) {
	path := journalPath(t)
	f := New(Config{Shards: 1})
	defer f.Close()
	if err := f.CreateTenant("a", batchTenantConfig(t.TempDir(), 1)); err != nil {
		t.Fatal(err)
	}
	j, err := OpenJournal(f, path, JournalConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := f.Observe("a", 200); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Append(); err != nil {
		t.Fatal(err)
	}
	j.hookBeforeSwap = func() error { return errCrash }
	if err := j.Compact(); !errors.Is(err, errCrash) {
		t.Fatalf("compact: got %v, want injected crash", err)
	}
	j.Close()

	f2 := New(Config{Shards: 1})
	defer f2.Close()
	j2, err := OpenJournal(f2, path, JournalConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	st, err := f2.State("a")
	if err != nil {
		t.Fatal(err)
	}
	if st.Bins != 3 {
		t.Fatalf("recovered %d bins, want 3", st.Bins)
	}
}

// TestJournalTornTailRecovers: a log truncated mid-frame (torn final
// write) recovers to the last complete frame on the journal path, while
// strict Restore rejects it.
func TestJournalTornTailRecovers(t *testing.T) {
	path := journalPath(t)
	f := New(Config{Shards: 1})
	defer f.Close()
	if err := f.CreateTenant("a", batchTenantConfig(t.TempDir(), 1)); err != nil {
		t.Fatal(err)
	}
	j, err := OpenJournal(f, path, JournalConfig{})
	if err != nil {
		t.Fatal(err)
	}
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := f.Observe("a", 200); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Append(); err != nil {
		t.Fatal(err)
	}
	j.Close()
	grown, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(grown) <= len(whole) {
		t.Fatal("append grew nothing")
	}
	// Tear the delta frame: cut inside the appended suffix.
	torn := grown[:len(whole)+(len(grown)-len(whole))/2]
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	if err := New(Config{Shards: 1}).Restore(bytes.NewReader(torn)); err == nil ||
		!strings.Contains(err.Error(), "truncated") {
		t.Fatalf("strict restore of torn log: got %v, want truncation error", err)
	}

	f2 := New(Config{Shards: 1})
	defer f2.Close()
	j2, err := OpenJournal(f2, path, JournalConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	st, err := f2.State("a")
	if err != nil {
		t.Fatal(err)
	}
	if st.Bins != 0 {
		t.Fatalf("torn tail leaked %d bins into recovery, want 0", st.Bins)
	}
}

// TestJournalReplayedDeltaIsIdempotent: a delta frame re-sent after a
// crash between the durable write and the mark update overlaps the
// assembled log; replay must apply the overlap once.
func TestJournalReplayedDeltaIsIdempotent(t *testing.T) {
	f := New(Config{Shards: 1})
	defer f.Close()
	if err := f.CreateTenant("a", batchTenantConfig(t.TempDir(), 1)); err != nil {
		t.Fatal(err)
	}
	for _, c := range []float64{200, 250, 150} {
		if _, err := f.Observe("a", c); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := f.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	// Re-send bins 1-2 (already in the base) plus a new bin 3.
	if _, err := writeFrame(&buf, &logFrame{
		Kind: frameDelta, ID: "a", From: 1, Counts: []float64{250, 150, 300},
	}); err != nil {
		t.Fatal(err)
	}
	f2 := New(Config{Shards: 1})
	defer f2.Close()
	if err := f2.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	st, err := f2.State("a")
	if err != nil {
		t.Fatal(err)
	}
	if st.Bins != 4 {
		t.Fatalf("overlapping delta replayed to %d bins, want 4", st.Bins)
	}

	// A gap, by contrast, means lost frames: hard error.
	var gapped bytes.Buffer
	if err := f2.Snapshot(&gapped); err != nil {
		t.Fatal(err)
	}
	if _, err := writeFrame(&gapped, &logFrame{
		Kind: frameDelta, ID: "a", From: 9, Counts: []float64{100},
	}); err != nil {
		t.Fatal(err)
	}
	if err := New(Config{Shards: 1}).Restore(bytes.NewReader(gapped.Bytes())); err == nil ||
		!strings.Contains(err.Error(), "gap") {
		t.Fatalf("gapped delta: got %v, want gap error", err)
	}
}

// TestSnapshotBytesDeterministic: identical fleet state must snapshot to
// identical bytes — the property that makes snapshot sizes CI-diffable
// and journal appends reproducible.
func TestSnapshotBytesDeterministic(t *testing.T) {
	dir := t.TempDir()
	build := func() []byte {
		f := New(Config{Shards: 2})
		defer f.Close()
		for i, id := range []string{"a", "b", "c"} {
			if err := f.CreateTenant(id, batchTenantConfig(dir, int64(i+1))); err != nil {
				t.Fatal(err)
			}
			for b := 0; b < 3; b++ {
				if _, err := f.Observe(id, 150+50*float64(b)); err != nil {
					t.Fatal(err)
				}
			}
		}
		var buf bytes.Buffer
		if err := f.Snapshot(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := build(), build()
	if !bytes.Equal(a, b) {
		t.Fatalf("snapshot bytes nondeterministic: %d vs %d bytes", len(a), len(b))
	}
}
