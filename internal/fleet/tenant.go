package fleet

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"hierctl/internal/cluster"
	"hierctl/internal/core"
	"hierctl/internal/obs"
	"hierctl/internal/workload"
)

// TenantConfig describes one tenant cluster and its observation cadence.
type TenantConfig struct {
	// Spec is the tenant's cluster hardware.
	Spec cluster.Spec
	// Core configures the tenant's controller hierarchy. Seed drives all
	// of the tenant's random streams; ArtifactDir (optional) shares the
	// offline learning across tenants with identical hardware.
	Core core.Config
	// Store parameterizes the tenant's virtual object store, built from
	// StoreSeed. Every tenant owns a private store: its temporal-locality
	// state mutates as requests are sampled.
	Store     workload.StoreConfig
	StoreSeed int64
	// BinSeconds is the observation bin width (an integer multiple of
	// T_L0); Start is the workload-clock time of the first bin.
	BinSeconds float64
	Start      float64
	// Calibration is an optional arrival-count history used to tune the
	// Kalman filters before the first observation (≥ 8 bins to engage).
	Calibration []float64
	// Failures is an optional injection plan (scenario failure plans,
	// times relative to the first observation bin): events are quantized
	// to T_L0 boundaries by the session engine; entries whose (Module,
	// Comp) indices are not in Spec are skipped. The plan is part of the
	// tenant's configuration, so snapshots persist it and restores replay
	// it deterministically.
	Failures []workload.FailureEvent
	// TelemetryRecords sizes the tenant's decision flight recorder (the
	// retained window of per-tick and per-controller records served by
	// Fleet.Telemetry); 0 disables recording. Part of the configuration,
	// so snapshots persist it; the ring itself is ephemeral — a restore
	// re-fills it by replaying the observation log.
	TelemetryRecords int
}

// TenantState is the progress report served by Fleet.State.
type TenantState struct {
	ID        string
	Computers int
	Bins      int
	Steps     int
	SimTime   float64
	// Quarantined marks a tenant whose controller stack panicked: its
	// stepping operations return ErrTenantQuarantined until it is closed.
	Quarantined bool
	// LastDecision is the most recent observation's decision (nil before
	// the first observation).
	LastDecision *core.BinDecision
}

// tenant pairs one manager hierarchy with its live session. All fields
// are owned by the tenant's home shard after registration; the fleet
// only reads the immutable id and home pointers.
type tenant struct {
	id   string
	cfg  TenantConfig
	mgr  *core.Manager
	sess *core.Session
	home *shard
	sub  int // T_L0 steps per observation bin
	// gen is the fleet-wide registration generation, assigned when the
	// tenant is registered and immutable after. It distinguishes
	// incarnations of the same id (close + recreate) for the journal's
	// per-tenant marks; it is process-local and never persisted.
	gen uint64

	// observations is the event-sourcing log: the exact count stream fed
	// so far. Snapshots persist it; restores replay it (runs are
	// deterministic per seed, so replay reconstructs the exact state).
	// Known limitation: the log grows one float per bin for the tenant's
	// lifetime, so snapshot size and restore replay time grow with
	// uptime; very long-lived tenants will want periodic compaction
	// (close + recreate, or a future checkpoint format).
	observations []float64
	lastDecision *core.BinDecision

	// quarantined latches true when a panic was recovered while stepping
	// this tenant (see Fleet.stepTenant). Atomic because readers off the
	// home shard (Fleet.Stats, pre-exec fast paths) may inspect it while
	// the shard is mid-job; it never resets — a quarantined tenant's only
	// exit is CloseTenant.
	quarantined atomic.Bool
}

// newTenant builds a tenant's manager and session. A non-nil artifact set
// (from a snapshot) skips the offline learning.
func newTenant(id string, tc TenantConfig, art *core.ArtifactSet) (*tenant, error) {
	if tc.TelemetryRecords < 0 {
		return nil, fmt.Errorf("fleet: tenant %s: telemetry records %d < 0", id, tc.TelemetryRecords)
	}
	mgr, err := core.NewManagerWithArtifacts(tc.Spec, tc.Core, art)
	if err != nil {
		return nil, fmt.Errorf("fleet: tenant %s: %w", id, err)
	}
	if tc.TelemetryRecords > 0 {
		rec, err := obs.NewRecorder(tc.TelemetryRecords)
		if err != nil {
			return nil, fmt.Errorf("fleet: tenant %s: %w", id, err)
		}
		// Attach before NewSession so the engine harness records ticks.
		mgr.SetRecorder(rec)
	}
	mgr.InjectPlan(tc.Failures)
	store, err := workload.NewStore(rand.New(rand.NewSource(tc.StoreSeed)), tc.Store)
	if err != nil {
		return nil, fmt.Errorf("fleet: tenant %s: %w", id, err)
	}
	sess, err := mgr.NewSession(store, core.SessionConfig{
		BinSeconds:  tc.BinSeconds,
		Start:       tc.Start,
		Calibration: tc.Calibration,
	})
	if err != nil {
		return nil, fmt.Errorf("fleet: tenant %s: %w", id, err)
	}
	return &tenant{
		id:   id,
		cfg:  tc,
		mgr:  mgr,
		sess: sess,
		sub:  int(tc.BinSeconds/tc.Core.L0.PeriodSeconds + 0.5),
	}, nil
}

func (t *tenant) observe(count float64) (core.BinDecision, error) {
	dec, err := t.sess.ObserveBin(count)
	if err != nil {
		return core.BinDecision{}, err
	}
	t.observations = append(t.observations, count)
	held := dec
	t.lastDecision = &held
	return dec, nil
}

func (t *tenant) state() TenantState {
	bins, steps, simTime := t.sess.Progress()
	st := TenantState{
		ID:          t.id,
		Computers:   t.cfg.Spec.Computers(),
		Bins:        bins,
		Steps:       steps,
		SimTime:     simTime,
		Quarantined: t.quarantined.Load(),
	}
	if t.lastDecision != nil {
		held := *t.lastDecision
		st.LastDecision = &held
	}
	return st
}
