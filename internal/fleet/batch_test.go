package fleet

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"hierctl/internal/cluster"
)

// batchTenantConfig builds a batch-test tenant: coarse grids, serial
// decision pipeline (so replicas across fleets are comparable), and a
// shared artifact cache so only the first tenant pays offline learning.
func batchTenantConfig(artifactDir string, storeSeed int64) TenantConfig {
	cfg := fastCore()
	cfg.Parallelism = 1
	cfg.RecordFrequencies = false
	cfg.ArtifactDir = artifactDir
	return TenantConfig{
		Spec:       cluster.Spec{Modules: []cluster.ModuleSpec{moduleOf("M1", 2)}},
		Core:       cfg,
		Store:      testStoreConfig(),
		StoreSeed:  storeSeed,
		BinSeconds: 30,
	}
}

// splitChunks chops a count stream into random-length runs (1–3 bins),
// preserving order — the shapes a batching client would produce.
func splitChunks(rng *rand.Rand, counts []float64) [][]float64 {
	var chunks [][]float64
	for i := 0; i < len(counts); {
		n := 1 + rng.Intn(3)
		if i+n > len(counts) {
			n = len(counts) - i
		}
		chunks = append(chunks, counts[i:i+n])
		i += n
	}
	return chunks
}

// TestObserveBatchEquivalence is the batch≡sequential property test: for
// random chunkings and interleavings of per-tenant count streams — across
// seeds, shard counts, and client parallelism — a fleet fed through
// ObserveBatch finishes with records bit-identical to a fleet fed the
// same streams one bin at a time through Observe. Batches mix entries
// from different tenants, repeat a tenant within one batch, and at
// parallelism 4 arrive from concurrent goroutines (disjoint tenant sets,
// so per-tenant order stays defined).
func TestObserveBatchEquivalence(t *testing.T) {
	const tenants = 4
	const bins = 8
	dir := t.TempDir()
	counts := make([][]float64, tenants)
	for i := range counts {
		counts[i] = make([]float64, bins)
		for b := range counts[i] {
			counts[i][b] = 150 + 50*float64((i*7+b*3)%5)
		}
	}
	ids := make([]string, tenants)
	for i := range ids {
		ids[i] = string(rune('a' + i))
	}

	cases := []struct {
		seed        int64
		shards, par int
	}{
		{1, 1, 1}, {2, 3, 1}, {3, 1, 4}, {4, 3, 4}, {5, 3, 1}, {6, 3, 4},
	}
	for _, c := range cases {
		t.Run(fmt.Sprintf("seed%d_shards%d_par%d", c.seed, c.shards, c.par), func(t *testing.T) {
			// Reference: the same streams, one bin at a time.
			seq := New(Config{Shards: c.shards})
			defer seq.Close()
			for i, id := range ids {
				if err := seq.CreateTenant(id, batchTenantConfig(dir, int64(i+1))); err != nil {
					t.Fatal(err)
				}
				for _, count := range counts[i] {
					if _, err := seq.Observe(id, count); err != nil {
						t.Fatal(err)
					}
				}
			}

			bf := New(Config{Shards: c.shards})
			defer bf.Close()
			for i, id := range ids {
				if err := bf.CreateTenant(id, batchTenantConfig(dir, int64(i+1))); err != nil {
					t.Fatal(err)
				}
			}

			checkResults := func(results []BatchResult, err error) error {
				if err != nil {
					return err
				}
				for _, r := range results {
					if r.Err != nil {
						return fmt.Errorf("entry for %s: %w", r.Tenant, r.Err)
					}
					if r.LastDecision == nil {
						return fmt.Errorf("entry for %s: no decision", r.Tenant)
					}
				}
				return nil
			}

			if c.par == 1 {
				// One client: random interleaving of every tenant's
				// chunks into mixed batches, per-tenant chunk order kept.
				rng := rand.New(rand.NewSource(c.seed))
				queues := make([][][]float64, tenants)
				remaining := 0
				for i := range queues {
					queues[i] = splitChunks(rng, counts[i])
					remaining += len(queues[i])
				}
				var batch []BatchEntry
				for remaining > 0 {
					i := rng.Intn(tenants)
					if len(queues[i]) == 0 {
						continue
					}
					batch = append(batch, BatchEntry{Tenant: ids[i], Counts: queues[i][0]})
					queues[i] = queues[i][1:]
					remaining--
					if rng.Intn(3) == 0 || remaining == 0 {
						results, err := bf.ObserveBatch(batch)
						if err := checkResults(results, err); err != nil {
							t.Fatal(err)
						}
						batch = batch[:0]
					}
				}
			} else {
				// Concurrent clients, one tenant each: batches from
				// different goroutines race on the shards, but each
				// tenant's chunks arrive in order.
				errc := make(chan error, tenants)
				for i := 0; i < tenants; i++ {
					go func(i int) {
						rng := rand.New(rand.NewSource(c.seed*100 + int64(i)))
						for _, chunk := range splitChunks(rng, counts[i]) {
							results, err := bf.ObserveBatch([]BatchEntry{{Tenant: ids[i], Counts: chunk}})
							if err := checkResults(results, err); err != nil {
								errc <- err
								return
							}
						}
						errc <- nil
					}(i)
				}
				for i := 0; i < tenants; i++ {
					if err := <-errc; err != nil {
						t.Fatal(err)
					}
				}
			}

			for _, id := range ids {
				want, err := seq.CloseTenant(id)
				if err != nil {
					t.Fatal(err)
				}
				got, err := bf.CloseTenant(id)
				if err != nil {
					t.Fatal(err)
				}
				recordsIdentical(t, want, got)
			}
		})
	}
}

// TestObserveBatchErrors covers the per-entry error contract: an unknown
// tenant mid-batch fails only its own entry, empty entries are validated
// no-ops (unknown ids still fail), results stay index-aligned, and a
// closed fleet fails the whole call.
func TestObserveBatchErrors(t *testing.T) {
	f := New(Config{Shards: 2})
	defer f.Close()
	if err := f.CreateTenant("x", batchTenantConfig(t.TempDir(), 1)); err != nil {
		t.Fatal(err)
	}
	results, err := f.ObserveBatch([]BatchEntry{
		{Tenant: "x", Counts: []float64{200, 250}},
		{Tenant: "ghost", Counts: []float64{100}},
		{Tenant: "x", Counts: nil},
		{Tenant: "x", Counts: []float64{300}},
		{Tenant: "ghost", Counts: nil},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("got %d results, want 5", len(results))
	}
	if results[0].Err != nil || results[0].Applied != 2 || results[0].LastDecision == nil {
		t.Errorf("entry 0: %+v", results[0])
	}
	if !errors.Is(results[1].Err, ErrNotFound) {
		t.Errorf("unknown tenant mid-batch: got %v, want ErrNotFound", results[1].Err)
	}
	if results[2].Err != nil || results[2].Applied != 0 {
		t.Errorf("empty entry: %+v", results[2])
	}
	if results[3].Err != nil || results[3].Applied != 1 {
		t.Errorf("entry after failed entry: %+v", results[3])
	}
	// Empty entries are still validated: an unknown tenant with no bins
	// fails like any other, it is not a silent success.
	if !errors.Is(results[4].Err, ErrNotFound) {
		t.Errorf("empty entry for unknown tenant: got %v, want ErrNotFound", results[4].Err)
	}
	st, err := f.State("x")
	if err != nil {
		t.Fatal(err)
	}
	if st.Bins != 3 {
		t.Errorf("tenant at %d bins, want 3", st.Bins)
	}

	f.Close()
	if _, err := f.ObserveBatch([]BatchEntry{{Tenant: "x", Counts: []float64{100}}}); !errors.Is(err, ErrClosed) {
		t.Errorf("batch after close: got %v, want ErrClosed", err)
	}
}

// TestObserveBatchQueueFull pins the backpressure boundary: with the
// shard wedged and its queue at QueueDepth, entries fail fast with
// ErrQueueFull — including later same-tenant entries even as slots free
// up (applying them would gap the tenant's stream) — nothing is applied,
// the reject counter advances, and the same entries succeed on retry.
func TestObserveBatchQueueFull(t *testing.T) {
	f := New(Config{Shards: 1, QueueDepth: 1})
	defer f.Close()
	if err := f.CreateTenant("x", batchTenantConfig(t.TempDir(), 1)); err != nil {
		t.Fatal(err)
	}

	// Wedge the shard on a job we control, then fill the queue's single
	// slot; the next enqueue cannot succeed until both are released.
	release := make(chan struct{})
	wedged := make(chan struct{})
	f.shards[0].jobs <- func() { close(wedged); <-release }
	<-wedged
	drained := make(chan struct{})
	f.shards[0].jobs <- func() { close(drained) }

	entries := []BatchEntry{
		{Tenant: "x", Counts: []float64{200}},
		{Tenant: "x", Counts: []float64{250}},
	}
	results, err := f.ObserveBatch(entries)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if !errors.Is(r.Err, ErrQueueFull) {
			t.Errorf("entry %d: got %v, want ErrQueueFull", i, r.Err)
		}
		if r.Applied != 0 {
			t.Errorf("entry %d applied %d bins through a full queue", i, r.Applied)
		}
	}
	if got := f.Stats().QueueRejects; got != 2 {
		t.Errorf("queue rejects = %d, want 2", got)
	}
	close(release)
	<-drained
	st, err := f.State("x")
	if err != nil {
		t.Fatal(err)
	}
	if st.Bins != 0 {
		t.Errorf("rejected entries reached the tenant: %d bins", st.Bins)
	}

	// Retry after drain: the same entries apply cleanly, in order.
	results, err = f.ObserveBatch(entries)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil || r.Applied != 1 {
			t.Errorf("retry entry %d: %+v", i, r)
		}
	}
	st, err = f.State("x")
	if err != nil {
		t.Fatal(err)
	}
	if st.Bins != 2 {
		t.Errorf("tenant at %d bins after retry, want 2", st.Bins)
	}
}

// TestObserveBatchStress hammers ObserveBatch from concurrent clients
// while snapshots, state listings, stats, and queue-depth reads run
// against the same fleet — the -race pin for the ingest layer. Outcomes
// are checked loosely (every submitted bin lands); bit-identical replay
// is TestObserveBatchEquivalence's job.
func TestObserveBatchStress(t *testing.T) {
	const clients = 4
	const batches = 12
	dir := t.TempDir()
	f := New(Config{Shards: 2})
	defer f.Close()
	ids := make([]string, clients)
	for i := range ids {
		ids[i] = string(rune('a' + i))
		if err := f.CreateTenant(ids[i], batchTenantConfig(dir, int64(i+1))); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var buf bytes.Buffer
			if err := f.Snapshot(&buf); err != nil {
				t.Error(err)
				return
			}
			f.States()
			f.Stats()
			f.QueueDepths()
		}
	}()

	errc := make(chan error, clients)
	for i := 0; i < clients; i++ {
		go func(i int) {
			for b := 0; b < batches; b++ {
				entries := []BatchEntry{
					{Tenant: ids[i], Counts: []float64{150, 200}},
					{Tenant: ids[(i+1)%clients], Counts: nil},
					{Tenant: ids[i], Counts: []float64{250}},
				}
				results, err := f.ObserveBatch(entries)
				if err != nil {
					errc <- err
					return
				}
				for _, r := range results {
					if r.Err != nil {
						errc <- fmt.Errorf("batch %d entry %s: %w", b, r.Tenant, r.Err)
						return
					}
				}
			}
			errc <- nil
		}(i)
	}
	for i := 0; i < clients; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	readers.Wait()

	for _, id := range ids {
		st, err := f.State(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.Bins != batches*3 {
			t.Errorf("tenant %s at %d bins, want %d", id, st.Bins, batches*3)
		}
	}
	stats := f.Stats()
	if stats.Observations < int64(clients*batches*3) {
		t.Errorf("observations = %d, want >= %d", stats.Observations, clients*batches*3)
	}
}
