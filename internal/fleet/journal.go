package fleet

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"hierctl/internal/par"
)

// JournalConfig tunes the incremental snapshot journal's compaction
// policy. Zero values select the defaults.
type JournalConfig struct {
	// CompactFactor triggers compaction when the delta tail exceeds this
	// multiple of the last full snapshot's size — the classic log/base
	// size trade: a bigger factor appends longer between full rewrites,
	// a smaller one keeps recovery replay short. <= 0 = 1.0.
	CompactFactor float64
	// MaxAppends triggers compaction after this many Append calls since
	// the last full snapshot regardless of size — the age bound that
	// keeps a low-traffic journal's recovery path from accumulating
	// months of tiny frames. <= 0 = 256.
	MaxAppends int
}

const (
	defaultCompactFactor = 1.0
	defaultMaxAppends    = 256
)

// Journal maintains an incremental on-disk snapshot of a fleet: a frame
// log (see snapshot.go) holding one full base snapshot plus the delta
// frames appended since. Append writes only what changed — new tenants
// as base frames, grown tenants as observation deltas, closed tenants as
// removes — so steady-state persistence cost is proportional to new
// observations, not fleet size. When the delta tail outgrows the base
// (CompactFactor) or ages out (MaxAppends), the journal compacts: a
// fresh full snapshot is written to a temp file, fsynced, and renamed
// over the log, so a crash at any instant leaves either the old log
// (with its deltas) or the new one — never a half-written base.
//
// Recovery is OpenJournal on the same path: an existing log is streamed
// back into the fleet (tolerating a torn final frame — the signature of
// a crash mid-append) and a fresh base is compacted before the journal
// accepts new appends. The crash invariant — every observation whose
// append completed is restored exactly once — is pinned by the failpoint
// tests in journal_test.go.
//
// Construct with OpenJournal. Methods are safe for concurrent use with
// each other and with fleet ingestion; captures serialize on the
// tenants' home shards like Snapshot.
type Journal struct {
	mu   sync.Mutex
	fl   *Fleet
	path string
	file *os.File
	// marks records, per tenant incarnation, how many observations the
	// log already holds; Append journals past the mark and advances it
	// only after the frames are durably written, so a crash between the
	// two re-sends an idempotent overlap instead of losing a suffix.
	marks       map[string]journalMark
	baseBytes   int64
	tailBytes   int64
	appends     int
	compactions int64
	cfg         JournalConfig
	// broken poisons the journal after a failed append whose garbage
	// tail could not be truncated away: further Appends refuse until a
	// Compact rewrites the log wholesale. Without it, later fsynced
	// frames would land after the garbage and be acknowledged, yet
	// torn-tolerant recovery stops at the garbage and drops them.
	broken bool

	// failpoints: when non-nil, invoked at the matching point and the
	// operation aborts with the returned error — the crash injection
	// seam for the recovery tests.
	hookAfterAppend func() error
	hookAfterFrames func() error
	hookBeforeSwap  func() error
}

// journalMark is the log's high-water mark for one tenant incarnation:
// obs counts the observations journaled so far, gen is the tenant's
// registration generation. A close+recreate under the same id bumps the
// generation, which Append detects to retire the old incarnation
// (remove frame) and re-base the new one — keyed by id alone, the new
// tenant's log would be grafted onto the old tenant's base.
type journalMark struct {
	obs int
	gen uint64
	// quar mirrors the tenant's quarantine latch as of the last journaled
	// frame. A transition (always false→true) changes no observation
	// count, so without this Append would journal nothing and a recovery
	// would resurrect the tenant un-quarantined; instead the transition
	// forces a one-time re-base.
	quar bool
}

// JournalStats reports the journal's live size and compaction counters
// for the metrics endpoint.
type JournalStats struct {
	BaseBytes   int64 // size of the last full snapshot
	TailBytes   int64 // delta frames appended since
	Appends     int   // Append calls since the last compaction
	Compactions int64 // full-snapshot rewrites over the journal's life
}

// OpenJournal opens (or creates) the incremental snapshot journal at
// path for fl. An existing non-empty log is first restored into the
// fleet — tolerating a torn final frame, so a journal cut off by a crash
// recovers to the last durable append — and in all cases a fresh full
// snapshot is compacted before the journal is returned, bounding every
// future recovery to one base plus the newest deltas.
func OpenJournal(fl *Fleet, path string, cfg JournalConfig) (*Journal, error) {
	if cfg.CompactFactor <= 0 {
		cfg.CompactFactor = defaultCompactFactor
	}
	if cfg.MaxAppends <= 0 {
		cfg.MaxAppends = defaultMaxAppends
	}
	if prior, err := os.Open(path); err == nil {
		st, serr := prior.Stat()
		if serr == nil && st.Size() > 0 {
			if rerr := fl.restoreLog(prior, true); rerr != nil {
				prior.Close()
				return nil, fmt.Errorf("fleet: recover journal %s: %w", path, rerr)
			}
		}
		prior.Close()
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("fleet: open journal: %w", err)
	}
	j := &Journal{fl: fl, path: path, marks: map[string]journalMark{}, cfg: cfg}
	if err := j.Compact(); err != nil {
		return nil, err
	}
	return j, nil
}

// Append journals everything that changed since the last Append or
// compaction: base frames for tenants the log has never seen, delta
// frames for grown observation logs, remove frames for closed tenants.
// A tenant closed and recreated under the same id (detected by its
// registration generation) is retired and re-based — a remove frame then
// a fresh base — never mistaken for growth of the old incarnation.
// Frames are fsynced before the marks advance. Triggers compaction per
// the configured policy after a successful append.
func (j *Journal) Append() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.file == nil {
		return fmt.Errorf("fleet: journal closed")
	}
	if j.broken {
		return fmt.Errorf("fleet: journal poisoned by a failed append; Compact to recover")
	}
	ids := j.fl.Tenants()
	type change struct {
		frame *logFrame
		mark  journalMark
		// stale flags a mark left by an older incarnation of this id
		// (tenant closed and recreated between Appends): a remove frame
		// precedes the fresh base so recovery retires the old state.
		stale bool
	}
	// Captures fan out across the home shards like Snapshot's; frame
	// order follows the sorted id listing, so identical change sets
	// append identical bytes.
	changes, err := par.MapCtx(j.fl.ctx, len(j.fl.shards), len(ids), func(i int) (change, error) {
		t, err := j.fl.tenant(ids[i])
		if err != nil {
			return change{}, nil // closed since the listing: removed next Append
		}
		mark, marked := j.marks[ids[i]]
		known := marked && mark.gen == t.gen
		var c change
		var serr error
		if err := j.fl.exec(t, func() {
			switch {
			case !known, t.quarantined.Load() != mark.quar:
				// Never journaled under this incarnation, or the
				// quarantine latch flipped since the last frame: write a
				// full base (a later base frame for the same id replaces
				// the assembled state wholesale, so no remove is needed
				// for the quarantine re-base).
				var snap tenantSnap
				snap, serr = t.snapshot()
				if serr == nil {
					c = change{
						frame: &logFrame{Kind: frameBase, Base: &snap},
						mark:  journalMark{obs: len(snap.Observations), gen: t.gen, quar: snap.Quarantined},
						stale: marked && !known,
					}
				}
			case len(t.observations) > mark.obs:
				counts := append([]float64(nil), t.observations[mark.obs:]...)
				c = change{
					frame: &logFrame{Kind: frameDelta, ID: t.id, From: mark.obs, Counts: counts},
					mark:  journalMark{obs: mark.obs + len(counts), gen: t.gen, quar: mark.quar},
				}
			}
		}); err != nil {
			return change{}, err
		}
		return c, serr
	})
	if err != nil {
		return err
	}
	live := make(map[string]bool, len(ids))
	for _, id := range ids {
		live[id] = true
	}
	var removed []string
	for id := range j.marks {
		if !live[id] {
			removed = append(removed, id)
		}
	}
	sort.Strings(removed)

	// The pre-append end of the log: on any write or sync failure the
	// file is truncated back here, so a torn frame never sits in the
	// middle of frames a later Append fsyncs.
	offset := j.baseBytes + j.tailBytes
	var written int64
	for i, c := range changes {
		if c.frame == nil {
			continue
		}
		if c.stale {
			n, err := writeFrame(j.file, &logFrame{Kind: frameRemove, ID: ids[i]})
			if err != nil {
				return j.failAppend(offset, err)
			}
			written += n
		}
		n, err := writeFrame(j.file, c.frame)
		if err != nil {
			return j.failAppend(offset, err)
		}
		written += n
	}
	for _, id := range removed {
		n, err := writeFrame(j.file, &logFrame{Kind: frameRemove, ID: id})
		if err != nil {
			return j.failAppend(offset, err)
		}
		written += n
	}
	if written > 0 {
		if j.hookAfterFrames != nil {
			if err := j.hookAfterFrames(); err != nil {
				return j.failAppend(offset, err)
			}
		}
		if err := j.file.Sync(); err != nil {
			return j.failAppend(offset, fmt.Errorf("fleet: sync journal: %w", err))
		}
	}
	// The frames are durable; only now may the marks move past them.
	for i, c := range changes {
		if c.frame != nil {
			j.marks[ids[i]] = c.mark
		}
	}
	for _, id := range removed {
		delete(j.marks, id)
	}
	j.tailBytes += written
	j.appends++
	if j.hookAfterAppend != nil {
		if err := j.hookAfterAppend(); err != nil {
			return err
		}
	}
	if j.tailBytes > int64(j.cfg.CompactFactor*float64(j.baseBytes)) || j.appends >= j.cfg.MaxAppends {
		return j.compactLocked()
	}
	return nil
}

// failAppend cleans up after a write/sync failure mid-Append: the tail
// past offset may hold a torn frame, and because the marks never
// advanced, leaving it in place would let later successful Appends fsync
// acknowledged frames *after* garbage that torn-tolerant recovery stops
// at. Truncating back to the pre-append offset removes the garbage and
// keeps the journal usable; if even the truncate fails, the journal is
// poisoned — Append refuses until a Compact rewrites the log wholesale.
func (j *Journal) failAppend(offset int64, werr error) error {
	if terr := j.file.Truncate(offset); terr != nil {
		j.broken = true
		return fmt.Errorf("fleet: journal append failed (%v); truncate to %d failed (%v); journal poisoned until Compact", werr, offset, terr)
	}
	return werr
}

// syncDir fsyncs a directory, making a just-renamed file's directory
// entry durable. Without it a power loss shortly after compaction can
// revert to the old log file while subsequent deltas were appended to
// the (lost) new inode.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	if cerr := d.Close(); serr == nil {
		serr = cerr
	}
	return serr
}

// Compact rewrites the journal as one fresh full snapshot, replacing the
// accumulated base + delta history. The new log is written to a temp
// file, fsynced, and atomically renamed over the old one (with the
// parent directory fsynced so the swap survives power loss).
func (j *Journal) Compact() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.compactLocked()
}

func (j *Journal) compactLocked() error {
	snaps, err := j.fl.captureAll()
	if err != nil {
		return err
	}
	tmp := j.path + ".tmp"
	file, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("fleet: compact journal: %w", err)
	}
	var written int64
	_, werr := file.WriteString(snapshotMagic)
	if werr == nil {
		written = int64(len(snapshotMagic))
		for i := range snaps {
			n, err := writeFrame(file, &logFrame{Kind: frameBase, Base: &snaps[i]})
			if err != nil {
				werr = err
				break
			}
			written += n
		}
	}
	if werr == nil {
		werr = file.Sync()
	}
	if cerr := file.Close(); werr == nil && cerr != nil {
		werr = cerr
	}
	if werr == nil && j.hookBeforeSwap != nil {
		werr = j.hookBeforeSwap()
	}
	if werr != nil {
		os.Remove(tmp)
		return fmt.Errorf("fleet: compact journal: %w", werr)
	}
	if err := os.Rename(tmp, j.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("fleet: compact journal: %w", err)
	}
	if err := syncDir(filepath.Dir(j.path)); err != nil {
		// The swap may not be durable and the open handle still points at
		// the replaced inode, so appends could land on a file a crash
		// reverts away. Poison until a Compact retry succeeds.
		j.broken = true
		return fmt.Errorf("fleet: sync journal dir: %w", err)
	}
	if j.file != nil {
		j.file.Close()
	}
	j.file, err = os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("fleet: reopen journal: %w", err)
	}
	marks := make(map[string]journalMark, len(snaps))
	for i := range snaps {
		marks[snaps[i].ID] = journalMark{obs: len(snaps[i].Observations), gen: snaps[i].gen, quar: snaps[i].Quarantined}
	}
	j.marks = marks
	j.baseBytes = written
	j.tailBytes = 0
	j.appends = 0
	j.broken = false
	j.compactions++
	j.fl.snapshots.Add(1)
	return nil
}

// Stats reports the journal's size and compaction counters.
func (j *Journal) Stats() JournalStats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JournalStats{
		BaseBytes:   j.baseBytes,
		TailBytes:   j.tailBytes,
		Appends:     j.appends,
		Compactions: j.compactions,
	}
}

// Close releases the journal's file handle. The log on disk stays valid;
// reopen with OpenJournal. Callers wanting the newest observations
// persisted should Append (or Compact) first.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.file == nil {
		return nil
	}
	err := j.file.Close()
	j.file = nil
	return err
}
