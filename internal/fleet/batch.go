package fleet

import (
	"time"

	"hierctl/internal/core"
)

// BatchEntry is one tenant's slice of a batched ingest call: Counts are
// consecutive observation bins, applied in order.
type BatchEntry struct {
	Tenant string
	Counts []float64
}

// BatchResult reports one entry's outcome, index-aligned with the entries
// passed to ObserveBatch.
type BatchResult struct {
	Tenant string
	// Applied is the number of bins stepped (may be short of len(Counts)
	// when a bin errored mid-entry; bins before the error stay applied).
	Applied int
	// LastDecision is the decision in force after the entry's final
	// applied bin (nil when nothing was applied).
	LastDecision *core.BinDecision
	// Err is nil on full application; ErrNotFound, ErrQueueFull,
	// ErrClosed, or the session error that stopped the entry otherwise.
	Err error
}

// batchOut is the shard-side result cell of one entry's job. The job owns
// it until its done channel closes; the caller reads it only after that,
// so a job abandoned by fleet shutdown can still write it harmlessly.
type batchOut struct {
	applied int
	last    *core.BinDecision
	err     error
}

// ObserveBatch feeds many observation bins across many tenants in one
// call. Entries fan out to their tenants' home shards as one job per
// entry; a tenant's bins are applied in entry order (shard queues are
// FIFO), so per-tenant ordering is deterministic and the resulting
// records are bit-identical to delivering the same counts one-by-one via
// Observe — the batch≡sequential invariant pinned by
// TestObserveBatchEquivalence. Distinct tenants step concurrently.
//
// Enqueueing is non-blocking: an entry whose home shard's ingest queue is
// full fails with ErrQueueFull, and so do the batch's later entries for
// the same tenant (applying them would reorder that tenant's stream).
// Entries with no Counts are validated no-ops — the tenant id must still
// resolve (ErrNotFound otherwise), but nothing is enqueued and the
// same-tenant blocking above does not apply.
// Other tenants are unaffected — this is the backpressure boundary that
// keeps a slow shard from stalling the network accept path. The call then
// waits for the entries it did enqueue, so results are final on return.
//
// The error return is reserved for whole-call failures (ErrClosed);
// per-entry failures ride in the results.
func (f *Fleet) ObserveBatch(entries []BatchEntry) ([]BatchResult, error) {
	if err := f.ctx.Err(); err != nil {
		return nil, ErrClosed
	}
	results := make([]BatchResult, len(entries))
	outs := make([]*batchOut, len(entries))
	dones := make([]chan struct{}, len(entries))
	var blocked map[string]bool
	for i := range entries {
		e := &entries[i]
		results[i].Tenant = e.Tenant
		t, err := f.tenant(e.Tenant)
		if err != nil {
			// Unknown tenants fail even with no bins to apply, matching
			// Observe — an empty entry is a validated no-op, not a skip.
			results[i].Err = err
			continue
		}
		if len(e.Counts) == 0 {
			continue
		}
		if blocked[e.Tenant] {
			results[i].Err = ErrQueueFull
			f.queueRejects.Add(1)
			continue
		}
		out := &batchOut{}
		done := make(chan struct{})
		counts := e.Counts
		job := func() {
			defer close(done)
			start := time.Now()
			for _, c := range counts {
				dec, err := f.stepTenant(t, c)
				if err != nil {
					out.err = err
					break
				}
				out.applied++
				held := dec
				out.last = &held
			}
			f.observations.Add(int64(out.applied))
			f.ticks.Add(int64(out.applied * t.sub))
			f.decideNanos.Add(time.Since(start).Nanoseconds())
		}
		select {
		case t.home.jobs <- job:
			outs[i], dones[i] = out, done
		default:
			results[i].Err = ErrQueueFull
			f.queueRejects.Add(1)
			if blocked == nil {
				blocked = map[string]bool{}
			}
			blocked[e.Tenant] = true
		}
	}
	for i, done := range dones {
		if done == nil {
			continue
		}
		select {
		case <-done:
		case <-f.ctx.Done():
			// Both may be ready at once; prefer done so a job that did
			// run is never reported as closed.
			select {
			case <-done:
			default:
				// The job is either still queued (it will never run —
				// the shard loops exited) or mid-flight on a shard that
				// outlives the cancellation; either way its cell cannot
				// be read safely, so the entry reports ErrClosed.
				results[i].Err = ErrClosed
				continue
			}
		}
		results[i].Applied = outs[i].applied
		results[i].LastDecision = outs[i].last
		results[i].Err = outs[i].err
	}
	return results, nil
}

// QueueDepths reports each shard's pending ingest-queue length — the
// live backlog behind the ObserveBatch backpressure boundary, exported
// per shard on /metrics.
func (f *Fleet) QueueDepths() []int {
	depths := make([]int, len(f.shards))
	for i, s := range f.shards {
		depths[i] = len(s.jobs)
	}
	return depths
}
