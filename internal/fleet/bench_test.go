package fleet

import (
	"fmt"
	"runtime"
	"testing"

	"hierctl/internal/cluster"
	"hierctl/internal/controller"
	"hierctl/internal/core"
	"hierctl/internal/par"
)

// benchCore is an even coarser configuration than fastCore: the benchmark
// measures the fleet's stepping throughput, not learning quality.
func benchCore(dir string, seed int64) core.Config {
	cfg := fastCore()
	cfg.Seed = seed
	cfg.Parallelism = 1 // shards provide the parallelism, not the tenants
	cfg.RecordFrequencies = false
	cfg.GMap = controller.GMapConfig{
		QMax: 100, QStep: 50,
		LambdaMax: 100, LambdaStep: 50,
		CMin: 0.016, CMax: 0.02, CStep: 0.004,
		SubSteps: 2,
	}
	cfg.ArtifactDir = dir // identical hardware: learn once, load 63 times
	return cfg
}

// BenchmarkFleet64Tenants steps 64 concurrent tenant hierarchies in one
// process and reports tenant-ticks/sec (one tick = one T_L0 control
// period of one tenant). Run with -cpu 1,4,8 for the scaling curve:
//
//	go test ./internal/fleet/ -run xx -bench Fleet64 -cpu 1,4,8
func BenchmarkFleet64Tenants(b *testing.B) {
	const tenants = 64
	dir := b.TempDir()
	f := New(Config{})
	defer f.Close()
	spec := cluster.Spec{Modules: []cluster.ModuleSpec{moduleOf("M1", 2)}}
	ids := make([]string, tenants)
	for i := range ids {
		ids[i] = fmt.Sprintf("t%02d", i)
		if err := f.CreateTenant(ids[i], TenantConfig{
			Spec:       spec,
			Core:       benchCore(dir, int64(i+1)),
			Store:      testStoreConfig(),
			StoreSeed:  int64(i + 1),
			BinSeconds: 30,
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	err := par.For(runtime.GOMAXPROCS(0), tenants, func(i int) error {
		for n := 0; n < b.N; n++ {
			if _, err := f.Observe(ids[i], 400); err != nil {
				return err
			}
		}
		return nil
	})
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(tenants*b.N)/b.Elapsed().Seconds(), "tenant-ticks/sec")
}
