package fleet

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"hierctl/internal/cluster"
	"hierctl/internal/obs"
)

func telemetryTenantConfig(records int) TenantConfig {
	return TenantConfig{
		Spec:             cluster.Spec{Modules: []cluster.ModuleSpec{moduleOf("M1", 2), moduleOf("M2", 2)}},
		Core:             fastCore(),
		Store:            testStoreConfig(),
		StoreSeed:        7,
		BinSeconds:       30,
		TelemetryRecords: records,
	}
}

// TestFleetTelemetry drives a recording tenant and reads its window back
// through the shard-synchronized accessors: records cover every level,
// the cursor advances monotonically, and TelemetrySince resumes exactly
// where Telemetry left off.
func TestFleetTelemetry(t *testing.T) {
	f := New(Config{Shards: 2})
	defer f.Close()
	if err := f.CreateTenant("rec", telemetryTenantConfig(1<<12)); err != nil {
		t.Fatal(err)
	}
	counts := func(i int) float64 { return 700 + 400*math.Sin(float64(i)/3) }
	for i := 0; i < 6; i++ {
		if _, err := f.Observe("rec", counts(i)); err != nil {
			t.Fatal(err)
		}
	}

	recs, cursor, err := f.Telemetry("rec", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("recording tenant returned an empty telemetry window")
	}
	if cursor != uint64(len(recs)) {
		t.Fatalf("cursor %d != records written %d (ring has not wrapped)", cursor, len(recs))
	}
	levels := map[obs.Level]int{}
	lastTick := int64(-1)
	for i, r := range recs {
		levels[r.Level]++
		if r.Tick < lastTick {
			t.Fatalf("record %d out of order: tick %d after %d", i, r.Tick, lastTick)
		}
		lastTick = r.Tick
	}
	for _, lv := range []obs.Level{obs.LevelTick, obs.LevelL0, obs.LevelL1, obs.LevelL2} {
		if levels[lv] == 0 {
			t.Errorf("no %s records in telemetry window (%v)", lv, levels)
		}
	}

	// A bounded read returns the newest max records.
	tail, cur2, err := f.Telemetry("rec", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tail) != 3 || cur2 != cursor {
		t.Fatalf("bounded read: %d records cursor %d, want 3 records cursor %d", len(tail), cur2, cursor)
	}
	if tail[2] != recs[len(recs)-1] {
		t.Error("bounded read did not return the newest records")
	}

	// Incremental polling: nothing new yet, then exactly the new bins' worth.
	got, next, err := f.TelemetrySince("rec", cursor)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 || next != cursor {
		t.Fatalf("no new records expected, got %d (next %d)", len(got), next)
	}
	if _, err := f.Observe("rec", counts(6)); err != nil {
		t.Fatal(err)
	}
	got, next, err = f.TelemetrySince("rec", cursor)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || next <= cursor {
		t.Fatalf("expected fresh records after another bin, got %d (next %d)", len(got), next)
	}
	for _, r := range got {
		if r.Tick < lastTick {
			t.Errorf("incremental record regressed to tick %d (window ended at %d)", r.Tick, lastTick)
		}
	}
}

// TestFleetTelemetryDisabled covers the default-off path: no recorder is
// allocated, reads return an empty window, and negative sizes are
// rejected at tenant creation.
func TestFleetTelemetryDisabled(t *testing.T) {
	f := New(Config{Shards: 1})
	defer f.Close()
	if err := f.CreateTenant("off", telemetryTenantConfig(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Observe("off", 500); err != nil {
		t.Fatal(err)
	}
	recs, cursor, err := f.Telemetry("off", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 || cursor != 0 {
		t.Fatalf("disabled tenant returned %d records cursor %d", len(recs), cursor)
	}
	if _, _, err := f.TelemetrySince("off", 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.Telemetry("ghost", 0); err == nil {
		t.Error("telemetry for unknown tenant did not error")
	}

	err = f.CreateTenant("neg", telemetryTenantConfig(-1))
	if err == nil || !strings.Contains(err.Error(), "telemetry records") {
		t.Fatalf("negative TelemetryRecords accepted: %v", err)
	}
}

// TestFleetTelemetrySurvivesRestore pins the snapshot contract: the
// recorder size is configuration (persisted), the ring is state
// (ephemeral) — but because restores replay the observation log, the
// restored tenant's ring is rebuilt with the same record stream.
func TestFleetTelemetrySurvivesRestore(t *testing.T) {
	f1 := New(Config{Shards: 1})
	defer f1.Close()
	if err := f1.CreateTenant("a", telemetryTenantConfig(1<<12)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := f1.Observe("a", 600+50*float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	want, wantCur, err := f1.Telemetry("a", 0)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := f1.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	f2 := New(Config{Shards: 1})
	defer f2.Close()
	if err := f2.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	got, gotCur, err := f2.Telemetry("a", 0)
	if err != nil {
		t.Fatal(err)
	}
	if gotCur != wantCur {
		t.Fatalf("restored cursor %d, want %d", gotCur, wantCur)
	}
	if len(got) != len(want) {
		t.Fatalf("restored window has %d records, want %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		// Wall-clock decide latency is the only nondeterministic field.
		w.DecideNs, g.DecideNs = 0, 0
		if w != g {
			t.Fatalf("record %d diverged after restore:\noriginal %+v\nrestored %+v", i, want[i], got[i])
		}
	}
}
