package fleet

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// buildVerifyJournal writes a journal with two tenants, a delta append, a
// remove frame, and one quarantined tenant, and returns its path plus the
// expected live observation total.
func buildVerifyJournal(t *testing.T) (path string, wantObs int64) {
	t.Helper()
	path = filepath.Join(t.TempDir(), "fleet.log")
	f := panicFleet(t, 2)
	j, err := OpenJournal(f, path, JournalConfig{})
	if err != nil {
		t.Fatal(err)
	}
	tc := quarantineTenantConfig()
	for _, id := range []string{"a", "b", "gone"} {
		if err := f.CreateTenant(id, tc); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		for _, id := range []string{"a", "b", "gone"} {
			if _, err := f.Observe(id, 400); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := j.Append(); err != nil { // base frames for all three
		t.Fatal(err)
	}
	if _, err := f.Observe("a", 450); err != nil { // delta for a
		t.Fatal(err)
	}
	if _, err := f.Observe("b", panicCount); !errors.Is(err, ErrTenantQuarantined) {
		t.Fatal("tenant b did not quarantine")
	}
	if _, err := f.CloseTenant("gone"); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(); err != nil { // delta + quarantine re-base + remove
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	return path, 3 + 1 + 3 // a: 4 bins, b: 3 clean bins, gone: removed
}

func TestVerifyJournalClean(t *testing.T) {
	path, wantObs := buildVerifyJournal(t)
	rep, err := VerifyJournalFile(path)
	if err != nil {
		t.Fatalf("verify of a clean journal failed: %v", err)
	}
	if rep.TornTail {
		t.Error("clean journal reported a torn tail")
	}
	if rep.Tenants != 2 {
		t.Errorf("live tenants = %d, want 2", rep.Tenants)
	}
	if rep.Observations != wantObs {
		t.Errorf("observations = %d, want %d", rep.Observations, wantObs)
	}
	if rep.Quarantined != 1 {
		t.Errorf("quarantined = %d, want 1", rep.Quarantined)
	}
	if rep.RemoveFrames != 1 {
		t.Errorf("remove frames = %d, want 1", rep.RemoveFrames)
	}
	if rep.BaseFrames < 4 { // 3 initial bases + b's quarantine re-base
		t.Errorf("base frames = %d, want >= 4", rep.BaseFrames)
	}
	if rep.Frames != rep.BaseFrames+rep.DeltaFrames+rep.RemoveFrames {
		t.Errorf("frame counts don't add up: %+v", rep)
	}

	// The verified log must still recover: verify is a preflight for the
	// same structure OpenJournal replays.
	f2 := New(Config{Shards: 2})
	defer f2.Close()
	j2, err := OpenJournal(f2, path, JournalConfig{})
	if err != nil {
		t.Fatalf("recovery of verified journal: %v", err)
	}
	defer j2.Close()
	if got := len(f2.Tenants()); got != rep.Tenants {
		t.Errorf("recovery found %d tenants, verify reported %d", got, rep.Tenants)
	}
}

func TestVerifyJournalTornTail(t *testing.T) {
	path, _ := buildVerifyJournal(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut the final frame short, as a crash mid-append would.
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := VerifyJournalFile(path)
	if err != nil {
		t.Fatalf("torn tail must be reported, not fatal: %v", err)
	}
	if !rep.TornTail {
		t.Error("truncated journal did not report a torn tail")
	}
}

func TestVerifyJournalCorruption(t *testing.T) {
	path, _ := buildVerifyJournal(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte in the middle of the log: the frame is still
	// complete, so this must surface as a checksum error, not a torn tail.
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := VerifyJournalFile(path)
	if err == nil {
		t.Fatalf("verify accepted a corrupted journal: %+v", rep)
	}
	if rep.TornTail {
		t.Error("mid-log corruption misreported as a torn tail")
	}
}

func TestVerifyJournalBadMagic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not-a-journal")
	if err := os.WriteFile(path, []byte("definitely not a snapshot log"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyJournalFile(path); err == nil {
		t.Error("verify accepted a file without the snapshot magic")
	}
}
