package fleet

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// fuzzSeedLogs builds the seed inputs for FuzzSnapshotRestore: valid
// snapshot and journal-shaped logs plus characteristic damage (torn
// tail, flipped byte, bad magic). The same generator writes the
// committed corpus under testdata/fuzz (see TestWriteFuzzCorpus).
func fuzzSeedLogs(t testing.TB) [][]byte {
	f := New(Config{Shards: 1})
	defer f.Close()
	for i, id := range []string{"a", "b"} {
		// No ArtifactDir: the embedded config must be self-contained so
		// a fuzz-time restore rebuilds from the snapshot's own artifact
		// blobs instead of erroring on a vanished cache directory.
		tc := batchTenantConfig("", int64(i+1))
		if err := f.CreateTenant(id, tc); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range []float64{200, 250, 150} {
		if _, err := f.Observe("a", c); err != nil {
			t.Fatal(err)
		}
	}
	var snap bytes.Buffer
	if err := f.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}

	// Journal-shaped: base frames plus a delta and a remove.
	journal := bytes.NewBuffer(append([]byte(nil), snap.Bytes()...))
	for _, fr := range []logFrame{
		{Kind: frameDelta, ID: "a", From: 3, Counts: []float64{300, 175}},
		{Kind: frameRemove, ID: "b"},
	} {
		if _, err := writeFrame(journal, &fr); err != nil {
			t.Fatal(err)
		}
	}

	valid := snap.Bytes()
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x40
	return [][]byte{
		valid,
		journal.Bytes(),
		valid[:len(valid)-9], // torn final frame
		flipped,              // checksum mismatch mid-log
		[]byte(snapshotMagic),
		[]byte("HPMSNAP1 not a log"),
		{},
	}
}

// fuzzSafeShape bounds the work a decoded snapshot may demand before the
// fuzz target rebuilds it: the decoder itself must hold on any input,
// but a full restore replays offline learning and per-bin simulation
// whose cost is attacker-chosen via the embedded config (grid sizes,
// arrival counts, drain windows). Inputs outside these bounds still
// exercise decode; they just skip the rebuild.
func fuzzSafeShape(s tenantSnap) bool {
	finite := func(vs ...float64) bool {
		for _, v := range vs {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return true
	}
	boundedCounts := func(vs []float64, n int) bool {
		if len(vs) > n {
			return false
		}
		for _, v := range vs {
			if !finite(v) || v < 0 || v > 2000 {
				return false
			}
		}
		return true
	}
	c := s.Config
	if !boundedCounts(s.Observations, 48) || !boundedCounts(c.Calibration, 48) {
		return false
	}
	if len(c.Spec.Modules) > 2 || c.Spec.Computers() > 4 {
		return false
	}
	for _, m := range c.Spec.Modules {
		for _, comp := range m.Computers {
			if len(comp.FrequenciesHz) > 8 {
				return false
			}
		}
	}
	if !finite(c.BinSeconds, c.Start, c.Core.L0.PeriodSeconds, c.Core.DrainSeconds) {
		return false
	}
	if c.Core.L0.PeriodSeconds > 0 && c.BinSeconds/c.Core.L0.PeriodSeconds > 8 {
		return false
	}
	if c.Core.L0.Horizon > 3 || c.Core.DrainSeconds > 900 || c.Core.L0.SearchParallelism > 2 {
		return false
	}
	g := c.Core.GMap
	if !finite(g.QMax, g.QStep, g.LambdaMax, g.LambdaStep, g.CMin, g.CMax, g.CStep) {
		return false
	}
	if g.QMax > 1000 || g.LambdaMax > 500 || g.SubSteps > 4 {
		return false
	}
	// Bound the learning grid's cell count (steps are validated > 0 by
	// the manager; guard the division anyway).
	cells := func(max, step float64) float64 {
		if step <= 0 {
			return 1
		}
		return max/step + 1
	}
	if cells(g.QMax, g.QStep)*cells(g.LambdaMax, g.LambdaStep)*cells(g.CMax-g.CMin, g.CStep) > 4096 {
		return false
	}
	ms := c.Core.ModuleSim
	// MaxDepth < 1 defaults to 12 inside approx — cap the effective
	// depth, not just the literal field value.
	if len(ms.QLevels)*len(ms.LambdaLevels)*len(ms.CLevels) > 64 || ms.Tree.MaxDepth > 8 || ms.Tree.MaxDepth < 1 {
		return false
	}
	for _, v := range ms.LambdaLevels {
		if !finite(v) || v < 0 || v > 500 {
			return false
		}
	}
	for _, v := range ms.QLevels {
		if !finite(v) || v < 0 || v > 2000 {
			return false
		}
	}
	if c.Store.Objects > 5000 || c.Store.HistoryCap > 65536 || c.TelemetryRecords > 4096 || len(c.Failures) > 16 {
		return false
	}
	return true
}

// FuzzSnapshotRestore is the snapshot subsystem's safety pin: the frame
// decoder must never panic on arbitrary bytes (both the strict and the
// torn-tolerant paths), and any log the decoder accepts within the cost
// bounds must rebuild into a fleet that replays deterministically — a
// snapshot of the restored fleet restores again to a fleet producing
// bit-identical next decisions.
func FuzzSnapshotRestore(f *testing.F) {
	for _, seed := range fuzzSeedLogs(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if _, err := assembleLog(bytes.NewReader(data), true); err != nil {
			// Tolerant and strict decode agree except for torn tails;
			// nothing decodable, nothing to rebuild.
			return
		}
		snaps, err := assembleLog(bytes.NewReader(data), false)
		if err != nil {
			return
		}
		for _, s := range snaps {
			if !fuzzSafeShape(s) {
				return
			}
		}
		fl := New(Config{Shards: 1})
		defer fl.Close()
		if err := fl.Restore(bytes.NewReader(data)); err != nil {
			return // rejected at rebuild (invalid config): fine, no panic
		}
		// Accepted: the restored fleet must round-trip deterministically.
		var buf bytes.Buffer
		if err := fl.Snapshot(&buf); err != nil {
			t.Fatalf("snapshot of restored fleet: %v", err)
		}
		fl2 := New(Config{Shards: 1})
		defer fl2.Close()
		if err := fl2.Restore(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("re-restore of accepted snapshot: %v", err)
		}
		for _, id := range fl.Tenants() {
			for k := 0; k < 2; k++ {
				want, err1 := fl.Observe(id, 120)
				got, err2 := fl2.Observe(id, 120)
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("tenant %s bin %d: errors diverged: %v vs %v", id, k, err1, err2)
				}
				if err1 != nil {
					break
				}
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("tenant %s bin %d: decisions diverged after round-trip", id, k)
				}
			}
		}
	})
}

// TestWriteFuzzCorpus regenerates the committed seed corpus under
// testdata/fuzz/FuzzSnapshotRestore. Gated so a normal run never
// rewrites checked-in files:
//
//	HPM_WRITE_FUZZ_CORPUS=1 go test ./internal/fleet -run TestWriteFuzzCorpus
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("HPM_WRITE_FUZZ_CORPUS") == "" {
		t.Skip("corpus generator; set HPM_WRITE_FUZZ_CORPUS=1 to write testdata/fuzz")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzSnapshotRestore")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, seed := range fuzzSeedLogs(t) {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", seed)
		name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
