// Package fleet is the online control plane: it hosts many independent
// tenant clusters — each a full core.Manager hierarchy with its own
// plant, forecasters, and learned GMap/J̃ state — inside one process,
// sharded across worker goroutines. Tenants are advanced by streamed
// arrival observations (core.Session.ObserveBin) instead of batch trace
// replays, which is what a long-running controller daemon needs.
//
// Concurrency model: every tenant has a home shard, and all operations on
// a tenant execute serially on that shard's goroutine — per-tenant
// ordering is total, distinct tenants step concurrently, and the tenant
// state needs no locks. The shard loops run under the context-aware
// fan-out in internal/par, so closing the fleet stops them promptly.
//
// Invariants:
//
//   - Online equals batch: a tenant stepped over a trace's bins is
//     record-for-record identical to core's batch Manager.Run on that
//     trace (pinned by TestFleetOnlineMatchesBatchRun).
//   - Snapshots are event-sourced (config + learned artifacts +
//     observation log); a restore replays the log deterministically, so
//     the next K decisions after a restore are bit-identical to an
//     uninterrupted run (pinned by the snapshot tests). Scenario failure
//     plans ride in TenantConfig, so restores re-inject them.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hierctl/internal/core"
	"hierctl/internal/obs"
	"hierctl/internal/par"
)

// Config parameterizes a fleet.
type Config struct {
	// Shards is the number of worker goroutines tenants are distributed
	// over (round-robin at creation). 0 = one shard per available CPU.
	Shards int
	// QueueDepth bounds each shard's ingest queue — the number of pending
	// jobs a shard accepts before ObserveBatch starts rejecting entries
	// with ErrQueueFull. 0 = DefaultQueueDepth.
	QueueDepth int
	// ObserveFailpoint, when non-nil, runs on the tenant's home shard
	// immediately before every observation bin is applied — the fault
	// injection seam the quarantine tests use to panic a chosen tenant at
	// a chosen bin. Process-local only: Config is never serialized, so
	// snapshots and journals carry no trace of it.
	ObserveFailpoint func(id string, count float64)
}

// DefaultQueueDepth is the per-shard ingest-queue bound when
// Config.QueueDepth is zero.
const DefaultQueueDepth = 1024

var (
	// ErrClosed is returned by every operation after Close.
	ErrClosed = errors.New("fleet: closed")
	// ErrNotFound is returned for operations on unknown tenant ids.
	ErrNotFound = errors.New("fleet: tenant not found")
	// ErrExists is returned when creating a tenant under a taken id.
	ErrExists = errors.New("fleet: tenant already exists")
	// ErrQueueFull is returned per-entry by ObserveBatch when the target
	// tenant's home-shard ingest queue is at QueueDepth. The entry was not
	// applied; callers should back off and retry.
	ErrQueueFull = errors.New("fleet: shard ingest queue full")
	// ErrTenantQuarantined is returned for stepping operations on a tenant
	// whose controller stack panicked. The panic is recovered on the home
	// shard (siblings keep running); the tenant's observation log holds
	// only the bins applied before the fault, so snapshots and journal
	// frames stay consistent. Reads (State, Telemetry) still work, and
	// CloseTenant removes the tenant without attempting a drain.
	ErrTenantQuarantined = errors.New("fleet: tenant quarantined after panic")
)

// Fleet is a sharded multi-tenant controller host. Construct with New;
// all methods are safe for concurrent use.
type Fleet struct {
	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}
	shards []*shard

	mu        sync.RWMutex
	tenants   map[string]*tenant
	nextShard int
	nextGen   uint64 // registration generations; see tenant.gen

	observations atomic.Int64
	ticks        atomic.Int64
	decideNanos  atomic.Int64
	snapshots    atomic.Int64
	restores     atomic.Int64
	queueRejects atomic.Int64
	panics       atomic.Int64

	failpoint func(id string, count float64)
}

// shard executes the jobs of its assigned tenants serially.
type shard struct {
	jobs chan func()
}

func (s *shard) run(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		case job := <-s.jobs:
			job()
		}
	}
}

// New starts a fleet with the configured number of shards.
func New(cfg Config) *Fleet {
	n := par.Workers(cfg.Shards)
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = DefaultQueueDepth
	}
	f := &Fleet{
		tenants:   map[string]*tenant{},
		shards:    make([]*shard, n),
		done:      make(chan struct{}),
		failpoint: cfg.ObserveFailpoint,
	}
	f.ctx, f.cancel = context.WithCancel(context.Background())
	for i := range f.shards {
		f.shards[i] = &shard{jobs: make(chan func(), depth)}
	}
	go func() { //hpm:goroutine single long-lived supervisor; the fan-out inside is the bounded par pool
		defer close(f.done)
		// One long-running task per shard; the context-aware fan-out
		// stops scheduling (and the loops return) on cancellation.
		_ = par.ForCtx(f.ctx, n, n, func(i int) error {
			f.shards[i].run(f.ctx)
			return nil
		})
	}()
	return f
}

// Close shuts the fleet down: shard loops stop promptly and every
// subsequent operation returns ErrClosed. Tenants are not finished —
// snapshot first if their state should survive.
func (f *Fleet) Close() {
	f.cancel()
	<-f.done
}

// exec runs fn on t's home shard and waits for it, bailing out with
// ErrClosed if the fleet shuts down first.
func (f *Fleet) exec(t *tenant, fn func()) error {
	done := make(chan struct{})
	job := func() { defer close(done); fn() }
	select {
	case t.home.jobs <- job:
	case <-f.ctx.Done():
		return ErrClosed
	}
	select {
	case <-done:
		return nil
	case <-f.ctx.Done():
		// Both channels may be ready at once; prefer done so a job that
		// did run (and mutated tenant state) is never reported as closed.
		select {
		case <-done:
			return nil
		default:
			return ErrClosed
		}
	}
}

// stepTenant applies one observation bin to t with panic containment.
// Runs on t's home shard. A panic anywhere in the tenant's controller
// stack is recovered here — before the frame unwinds into the shard
// loop, so sibling tenants (including same-shard ones) are unaffected —
// and the tenant is quarantined: this bin and every later stepping
// operation return ErrTenantQuarantined. The observation log gains an
// entry only after a bin applies cleanly, so a quarantined tenant's
// snapshot/journal state is exactly the pre-fault state.
func (f *Fleet) stepTenant(t *tenant, count float64) (dec core.BinDecision, err error) {
	if t.quarantined.Load() {
		return core.BinDecision{}, ErrTenantQuarantined
	}
	defer func() {
		if v := recover(); v != nil {
			t.quarantined.Store(true)
			f.panics.Add(1)
			dec = core.BinDecision{}
			err = fmt.Errorf("%w: %v", ErrTenantQuarantined, v)
		}
	}()
	if f.failpoint != nil {
		f.failpoint(t.id, count)
	}
	return t.observe(count)
}

func (f *Fleet) tenant(id string) (*tenant, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	t, ok := f.tenants[id]
	if !ok {
		return nil, ErrNotFound
	}
	return t, nil
}

// register adds a built tenant to the map and assigns its home shard.
func (f *Fleet) register(t *tenant) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.tenants[t.id]; ok {
		return ErrExists
	}
	t.home = f.shards[f.nextShard%len(f.shards)]
	f.nextShard++
	f.nextGen++
	t.gen = f.nextGen
	f.tenants[t.id] = t
	return nil
}

// CreateTenant builds a tenant's hierarchy (including the offline
// learning, unless Core.ArtifactDir caches it) and registers it. The id
// must be unique and non-empty.
func (f *Fleet) CreateTenant(id string, tc TenantConfig) error {
	if err := f.ctx.Err(); err != nil {
		return ErrClosed
	}
	if id == "" {
		return fmt.Errorf("fleet: empty tenant id")
	}
	f.mu.RLock()
	_, taken := f.tenants[id]
	f.mu.RUnlock()
	if taken {
		return ErrExists
	}
	t, err := newTenant(id, tc, nil)
	if err != nil {
		return err
	}
	return f.register(t)
}

// Observe feeds one arrival-count bin to the tenant and returns the
// frequency/provisioning decisions now in force. Calls for the same
// tenant serialize on its home shard; calls for different tenants run
// concurrently.
func (f *Fleet) Observe(id string, count float64) (core.BinDecision, error) {
	t, err := f.tenant(id)
	if err != nil {
		return core.BinDecision{}, err
	}
	var dec core.BinDecision
	var oerr error
	var decided time.Duration
	if err := f.exec(t, func() {
		// Time inside the shard job so the counter measures stepping,
		// not shard-queue wait.
		start := time.Now()
		dec, oerr = f.stepTenant(t, count)
		decided = time.Since(start)
	}); err != nil {
		return core.BinDecision{}, err
	}
	if oerr != nil {
		return core.BinDecision{}, oerr
	}
	f.observations.Add(1)
	f.ticks.Add(int64(t.sub))
	f.decideNanos.Add(decided.Nanoseconds())
	return dec, nil
}

// State reports a tenant's progress and last decision.
func (f *Fleet) State(id string) (TenantState, error) {
	t, err := f.tenant(id)
	if err != nil {
		return TenantState{}, err
	}
	var st TenantState
	if err := f.exec(t, func() { st = t.state() }); err != nil {
		return TenantState{}, err
	}
	return st, nil
}

// Telemetry returns up to max of the tenant's most recent flight-recorder
// records (oldest first) plus the cursor one past the newest record — the
// value to hand TelemetrySince to resume from here. max <= 0 means the
// whole retained window. Tenants configured with TelemetryRecords == 0
// return an empty window and cursor 0. The ring read executes on the
// tenant's home shard, so it never races the tenant's own writers.
func (f *Fleet) Telemetry(id string, max int) ([]obs.Record, uint64, error) {
	t, err := f.tenant(id)
	if err != nil {
		return nil, 0, err
	}
	var recs []obs.Record
	var cursor uint64
	if err := f.exec(t, func() {
		rec := t.mgr.Recorder()
		recs = rec.Window(nil, max)
		cursor = rec.Total()
	}); err != nil {
		return nil, 0, err
	}
	return recs, cursor, nil
}

// TelemetrySince returns the tenant's flight-recorder records written at or
// after cursor (oldest first) and the next cursor. If the ring wrapped past
// the cursor the gap is skipped: the oldest retained record is returned
// next, so pollers lose records rather than block — the recorder is a
// bounded window, not a durable log.
func (f *Fleet) TelemetrySince(id string, cursor uint64) ([]obs.Record, uint64, error) {
	t, err := f.tenant(id)
	if err != nil {
		return nil, 0, err
	}
	var recs []obs.Record
	var next uint64
	if err := f.exec(t, func() {
		recs, next = t.mgr.Recorder().Since(nil, cursor)
	}); err != nil {
		return nil, 0, err
	}
	return recs, next, nil
}

// CloseTenant finishes the tenant's session (draining in-flight work),
// removes it from the fleet, and returns its full run record. A
// quarantined tenant is removed without a drain — its post-panic session
// state cannot be trusted to finish — and the call returns
// ErrTenantQuarantined with a nil record; a panic during the drain
// itself quarantines the same way, with the tenant still removed.
func (f *Fleet) CloseTenant(id string) (*core.Record, error) {
	t, err := f.tenant(id)
	if err != nil {
		return nil, err
	}
	var rec *core.Record
	var ferr error
	if err := f.exec(t, func() {
		if t.quarantined.Load() {
			ferr = ErrTenantQuarantined
			return
		}
		defer func() {
			if v := recover(); v != nil {
				t.quarantined.Store(true)
				f.panics.Add(1)
				rec = nil
				ferr = fmt.Errorf("%w: %v", ErrTenantQuarantined, v)
			}
		}()
		rec, ferr = t.sess.Finish()
	}); err != nil {
		return nil, err
	}
	f.mu.Lock()
	delete(f.tenants, id)
	f.mu.Unlock()
	if ferr != nil {
		return nil, ferr
	}
	return rec, nil
}

// States reports every tenant's state. Per-tenant reads fan out across
// the shards, so a caller (e.g. a metrics scrape) waits for at most the
// busiest shard's queue rather than the sum of every tenant's; tenants
// removed mid-listing are skipped.
func (f *Fleet) States() []TenantState {
	ids := f.Tenants()
	states, err := par.MapCtx(f.ctx, len(f.shards), len(ids), func(i int) (TenantState, error) {
		st, err := f.State(ids[i])
		if err != nil {
			return TenantState{}, nil // removed or closing: skip
		}
		return st, nil
	})
	if err != nil {
		return nil
	}
	kept := states[:0]
	for _, st := range states {
		if st.ID != "" {
			kept = append(kept, st)
		}
	}
	return kept
}

// Tenants returns the registered tenant ids in sorted order.
func (f *Fleet) Tenants() []string {
	f.mu.RLock()
	ids := make([]string, 0, len(f.tenants))
	for id := range f.tenants {
		ids = append(ids, id)
	}
	f.mu.RUnlock()
	sort.Strings(ids)
	return ids
}

// Stats summarizes fleet-level counters for the metrics endpoint.
type Stats struct {
	Tenants       int
	Shards        int
	Observations  int64   // bins ingested across all tenants
	Ticks         int64   // T_L0 control periods stepped
	DecideSeconds float64 // wall-clock spent inside tenant stepping
	Snapshots     int64
	Restores      int64
	QueueRejects  int64 // batch entries refused with ErrQueueFull
	Panics        int64 // tenant panics recovered over the fleet's life
	Quarantined   int   // currently registered tenants under quarantine
}

// Stats returns a snapshot of the fleet counters.
func (f *Fleet) Stats() Stats {
	f.mu.RLock()
	n := len(f.tenants)
	q := 0
	for _, t := range f.tenants {
		if t.quarantined.Load() {
			q++
		}
	}
	f.mu.RUnlock()
	return Stats{
		Tenants:       n,
		Shards:        len(f.shards),
		Observations:  f.observations.Load(),
		Ticks:         f.ticks.Load(),
		DecideSeconds: float64(f.decideNanos.Load()) / 1e9,
		Snapshots:     f.snapshots.Load(),
		Restores:      f.restores.Load(),
		QueueRejects:  f.queueRejects.Load(),
		Panics:        f.panics.Load(),
		Quarantined:   q,
	}
}
