package fleet

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"hierctl/internal/approx"
	"hierctl/internal/cluster"
	"hierctl/internal/controller"
	"hierctl/internal/core"
	"hierctl/internal/power"
	"hierctl/internal/series"
	"hierctl/internal/workload"
)

// fastCore mirrors the coarse-grid test configuration the core package
// uses: the whole pipeline runs, just with small learning grids.
func fastCore() core.Config {
	cfg := core.DefaultConfig()
	cfg.L0.Horizon = 2
	cfg.GMap = controller.GMapConfig{
		QMax: 200, QStep: 25,
		LambdaMax: 150, LambdaStep: 15,
		CMin: 0.014, CMax: 0.022, CStep: 0.004,
		SubSteps: 2,
	}
	cfg.ModuleSim = controller.ModuleSimConfig{
		QLevels:      []float64{0, 50},
		LambdaLevels: []float64{0, 30, 60, 120, 200},
		CLevels:      []float64{0.018},
		Tree:         approx.TreeConfig{MaxDepth: 6, MinLeaf: 1},
	}
	cfg.DrainSeconds = 120
	return cfg
}

func testComputer(name string) cluster.ComputerSpec {
	return cluster.ComputerSpec{
		Name:             name,
		FrequenciesHz:    []float64{0.5e9, 1e9, 1.5e9, 2e9},
		SpeedFactor:      1,
		Power:            power.DefaultModel(),
		BootDelaySeconds: 120,
	}
}

func moduleOf(name string, n int) cluster.ModuleSpec {
	ms := cluster.ModuleSpec{Name: name}
	for j := 0; j < n; j++ {
		ms.Computers = append(ms.Computers, testComputer(name+"-c"+string(rune('0'+j))))
	}
	return ms
}

func testStoreConfig() workload.StoreConfig {
	cfg := workload.DefaultStoreConfig()
	cfg.Objects = 500
	cfg.PopularCount = 50
	return cfg
}

func seriesIdentical(t *testing.T, name string, a, b *series.Series) {
	t.Helper()
	if (a == nil) != (b == nil) {
		t.Fatalf("%s: nil mismatch", name)
	}
	if a == nil {
		return
	}
	if a.Len() != b.Len() {
		t.Fatalf("%s: length %d vs %d", name, a.Len(), b.Len())
	}
	for i := range a.Values {
		if a.Values[i] != b.Values[i] {
			t.Fatalf("%s: value %d diverged: %v vs %v", name, i, a.Values[i], b.Values[i])
		}
	}
}

func recordsIdentical(t *testing.T, batch, online *core.Record) {
	t.Helper()
	if batch.Completed != online.Completed || batch.Dropped != online.Dropped {
		t.Errorf("requests diverged: (%d, %d) vs (%d, %d)", batch.Completed, batch.Dropped, online.Completed, online.Dropped)
	}
	if batch.Energy != online.Energy {
		t.Errorf("energy diverged: %v vs %v", batch.Energy, online.Energy)
	}
	if batch.Switches != online.Switches || batch.Misroutes != online.Misroutes {
		t.Error("switches/misroutes diverged")
	}
	if batch.ViolationFrac != online.ViolationFrac {
		t.Errorf("violation fraction diverged: %v vs %v", batch.ViolationFrac, online.ViolationFrac)
	}
	if batch.MeanResponse() != online.MeanResponse() {
		t.Errorf("mean response diverged: %v vs %v", batch.MeanResponse(), online.MeanResponse())
	}
	if batch.ResponseP50 != online.ResponseP50 || batch.ResponseP95 != online.ResponseP95 ||
		batch.ResponseP99 != online.ResponseP99 || batch.ResponseMax != online.ResponseMax {
		t.Error("latency percentiles diverged")
	}
	if batch.L0Explored != online.L0Explored || batch.L1Explored != online.L1Explored || batch.L2Explored != online.L2Explored {
		t.Error("explored counts diverged")
	}
	if batch.L0Decisions != online.L0Decisions || batch.L1Decisions != online.L1Decisions || batch.L2Decisions != online.L2Decisions {
		t.Error("decision counts diverged")
	}
	seriesIdentical(t, "Trace", batch.Trace, online.Trace)
	seriesIdentical(t, "PredictedL1", batch.PredictedL1, online.PredictedL1)
	seriesIdentical(t, "ActualL1", batch.ActualL1, online.ActualL1)
	seriesIdentical(t, "Operational", batch.Operational, online.Operational)
	seriesIdentical(t, "ResponseMean", batch.ResponseMean, online.ResponseMean)
	if len(batch.GammaModules) != len(online.GammaModules) {
		t.Fatalf("gamma series count %d vs %d", len(batch.GammaModules), len(online.GammaModules))
	}
	for i := range batch.GammaModules {
		seriesIdentical(t, "GammaModules", batch.GammaModules[i], online.GammaModules[i])
	}
	if len(batch.FreqByComputer) != len(online.FreqByComputer) {
		t.Fatalf("frequency series count %d vs %d", len(batch.FreqByComputer), len(online.FreqByComputer))
	}
	for name, s := range batch.FreqByComputer {
		seriesIdentical(t, "FreqByComputer["+name+"]", s, online.FreqByComputer[name])
	}
}

// TestFleetOnlineMatchesBatchRun is the control plane's equivalence pin:
// a tenant stepped online through the fleet over the §4.3 synthetic trace
// produces a record identical to the batch Manager.Run on the same trace
// and seed. The tenant never sees the trace — only the streamed counts
// and the same calibration prefix the batch engine tunes on.
func TestFleetOnlineMatchesBatchRun(t *testing.T) {
	syn := workload.DefaultSyntheticConfig()
	syn.Seed = 1
	full, err := workload.Synthetic(syn)
	if err != nil {
		t.Fatal(err)
	}
	trace := full.Slice(0, 90) // §4.3 shape, trimmed to keep the test quick
	cfg := fastCore()
	spec := cluster.Spec{Modules: []cluster.ModuleSpec{moduleOf("M1", 4)}}
	storeCfg := testStoreConfig()

	batchMgr, err := core.NewManager(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	batchStore, err := workload.NewStore(rand.New(rand.NewSource(3)), storeCfg)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := batchMgr.Run(trace, batchStore)
	if err != nil {
		t.Fatal(err)
	}

	f := New(Config{Shards: 4})
	defer f.Close()
	prefix := int(float64(trace.Len()) * cfg.TunePrefixFrac)
	if err := f.CreateTenant("t1", TenantConfig{
		Spec:        spec,
		Core:        cfg,
		Store:       storeCfg,
		StoreSeed:   3,
		BinSeconds:  trace.Step,
		Start:       trace.Start,
		Calibration: trace.Values[:prefix],
	}); err != nil {
		t.Fatal(err)
	}
	for _, count := range trace.Values {
		if _, err := f.Observe("t1", count); err != nil {
			t.Fatal(err)
		}
	}
	st, err := f.State("t1")
	if err != nil {
		t.Fatal(err)
	}
	if st.Bins != trace.Len() {
		t.Fatalf("tenant ingested %d bins, want %d", st.Bins, trace.Len())
	}
	if st.LastDecision == nil {
		t.Fatal("no last decision recorded")
	}
	online, err := f.CloseTenant("t1")
	if err != nil {
		t.Fatal(err)
	}
	recordsIdentical(t, batch, online)
	if _, err := f.State("t1"); !errors.Is(err, ErrNotFound) {
		t.Errorf("closed tenant still visible: %v", err)
	}
}

// TestSnapshotRestoreDecisionsBitIdentical drives the persistence
// round-trip through the fleet snapshot path: snapshot a running tenant,
// restore into a fresh fleet, and the next K decisions must be
// bit-identical. The multi-module tenant exercises both artifact kinds
// (abstraction maps and module trees) through the controller/approx
// persistence layers.
func TestSnapshotRestoreDecisionsBitIdentical(t *testing.T) {
	spec := cluster.Spec{Modules: []cluster.ModuleSpec{
		moduleOf("M1", 2), moduleOf("M2", 2),
	}}
	tc := TenantConfig{
		Spec:       spec,
		Core:       fastCore(),
		Store:      testStoreConfig(),
		StoreSeed:  5,
		BinSeconds: 30,
	}
	counts := func(i int) float64 { return 800 + 500*math.Sin(float64(i)/4) }

	f1 := New(Config{Shards: 2})
	defer f1.Close()
	if err := f1.CreateTenant("a", tc); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if _, err := f1.Observe("a", counts(i)); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := f1.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	f2 := New(Config{Shards: 2})
	defer f2.Close()
	if err := f2.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	st, err := f2.State("a")
	if err != nil {
		t.Fatal(err)
	}
	if st.Bins != 12 {
		t.Fatalf("restored tenant at %d bins, want 12", st.Bins)
	}
	if st.LastDecision == nil {
		t.Fatal("restored tenant lost its last decision")
	}

	const K = 8
	for i := 12; i < 12+K; i++ {
		want, err := f1.Observe("a", counts(i))
		if err != nil {
			t.Fatal(err)
		}
		got, err := f2.Observe("a", counts(i))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("decision %d diverged after restore:\noriginal %+v\nrestored %+v", i, want, got)
		}
	}

	// The final records agree too: replay + continuation is the same run.
	a, err := f1.CloseTenant("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := f2.CloseTenant("a")
	if err != nil {
		t.Fatal(err)
	}
	recordsIdentical(t, a, b)
}

func TestFleetTenantLifecycleErrors(t *testing.T) {
	f := New(Config{Shards: 2})
	defer f.Close()
	tc := TenantConfig{
		Spec:       cluster.Spec{Modules: []cluster.ModuleSpec{moduleOf("M1", 2)}},
		Core:       fastCore(),
		Store:      testStoreConfig(),
		StoreSeed:  1,
		BinSeconds: 30,
	}
	if err := f.CreateTenant("", tc); err == nil {
		t.Error("empty id: want error")
	}
	if _, err := f.Observe("ghost", 100); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown tenant: got %v, want ErrNotFound", err)
	}
	if err := f.CreateTenant("x", tc); err != nil {
		t.Fatal(err)
	}
	if err := f.CreateTenant("x", tc); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate id: got %v, want ErrExists", err)
	}
	bad := tc
	bad.BinSeconds = 45 // not a multiple of T_L0
	if err := f.CreateTenant("y", bad); err == nil {
		t.Error("misaligned bin width: want error")
	}
	if got := f.Tenants(); len(got) != 1 || got[0] != "x" {
		t.Errorf("tenants = %v, want [x]", got)
	}
	if _, err := f.Observe("x", 200); err != nil {
		t.Fatal(err)
	}
	stats := f.Stats()
	if stats.Tenants != 1 || stats.Observations != 1 || stats.Ticks != 1 {
		t.Errorf("stats = %+v", stats)
	}
}

// TestFleetCloseIsPrompt pins the shutdown path: Close returns quickly
// and everything afterwards reports ErrClosed.
func TestFleetCloseIsPrompt(t *testing.T) {
	f := New(Config{Shards: 4})
	tc := TenantConfig{
		Spec:       cluster.Spec{Modules: []cluster.ModuleSpec{moduleOf("M1", 2)}},
		Core:       fastCore(),
		Store:      testStoreConfig(),
		StoreSeed:  1,
		BinSeconds: 30,
	}
	if err := f.CreateTenant("x", tc); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	f.Close()
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("Close took %v", d)
	}
	if _, err := f.Observe("x", 100); !errors.Is(err, ErrClosed) {
		t.Errorf("observe after close: got %v, want ErrClosed", err)
	}
	if err := f.CreateTenant("y", tc); !errors.Is(err, ErrClosed) {
		t.Errorf("create after close: got %v, want ErrClosed", err)
	}
	if err := f.Snapshot(&bytes.Buffer{}); err == nil {
		t.Error("snapshot after close: want error")
	}
}

// TestFleetConcurrentTenantsDeterministic steps many tenants from many
// goroutines and checks each tenant's outcome equals its solo replay —
// shard scheduling must never leak state across tenants.
func TestFleetConcurrentTenantsDeterministic(t *testing.T) {
	const n = 6
	cfg := fastCore()
	cfg.Parallelism = 1
	cfg.RecordFrequencies = false
	mkCfg := func(i int) TenantConfig {
		return TenantConfig{
			Spec:       cluster.Spec{Modules: []cluster.ModuleSpec{moduleOf("M1", 2)}},
			Core:       cfg,
			Store:      testStoreConfig(),
			StoreSeed:  int64(i + 1),
			BinSeconds: 30,
		}
	}
	bins := 10
	counts := func(tenant, bin int) float64 { return 300 + 100*float64((tenant+bin)%4) }

	f := New(Config{Shards: 3})
	defer f.Close()
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		ids[i] = string(rune('a' + i))
		if err := f.CreateTenant(ids[i], mkCfg(i)); err != nil {
			t.Fatal(err)
		}
	}
	errc := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			for b := 0; b < bins; b++ {
				if _, err := f.Observe(ids[i], counts(i, b)); err != nil {
					errc <- err
					return
				}
			}
			errc <- nil
		}(i)
	}
	for i := 0; i < n; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		got, err := f.CloseTenant(ids[i])
		if err != nil {
			t.Fatal(err)
		}
		// Solo replay of the same tenant.
		solo := New(Config{Shards: 1})
		if err := solo.CreateTenant("solo", mkCfg(i)); err != nil {
			t.Fatal(err)
		}
		for b := 0; b < bins; b++ {
			if _, err := solo.Observe("solo", counts(i, b)); err != nil {
				t.Fatal(err)
			}
		}
		want, err := solo.CloseTenant("solo")
		solo.Close()
		if err != nil {
			t.Fatal(err)
		}
		if got.Completed != want.Completed || got.Energy != want.Energy || got.Switches != want.Switches {
			t.Errorf("tenant %s diverged from solo replay: (%d, %v, %d) vs (%d, %v, %d)",
				ids[i], got.Completed, got.Energy, got.Switches, want.Completed, want.Energy, want.Switches)
		}
	}
}

// TestRestoreIsAllOrNothing: an id clash during restore must register
// none of the snapshot's tenants.
func TestRestoreIsAllOrNothing(t *testing.T) {
	tc := TenantConfig{
		Spec:       cluster.Spec{Modules: []cluster.ModuleSpec{moduleOf("M1", 2)}},
		Core:       fastCore(),
		Store:      testStoreConfig(),
		StoreSeed:  1,
		BinSeconds: 30,
	}
	f1 := New(Config{Shards: 1})
	defer f1.Close()
	for _, id := range []string{"a", "b"} {
		if err := f1.CreateTenant(id, tc); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := f1.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	f2 := New(Config{Shards: 1})
	defer f2.Close()
	if err := f2.CreateTenant("b", tc); err != nil {
		t.Fatal(err)
	}
	if err := f2.Restore(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrExists) {
		t.Fatalf("restore over live id: got %v, want ErrExists", err)
	}
	if got := f2.Tenants(); len(got) != 1 || got[0] != "b" {
		t.Errorf("partial restore leaked tenants: %v, want [b]", got)
	}
}
