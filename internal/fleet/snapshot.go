package fleet

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"hierctl/internal/controller"
	"hierctl/internal/core"
	"hierctl/internal/par"
)

// Snapshot format v2: an event-sourced frame log. Mid-run plant state
// (queues, in-flight requests, RNG positions) is never serialized —
// instead the log captures, per tenant, (a) the configuration, (b) the
// learned artifacts via the controller/approx persistence layers (the
// expensive offline phase), and (c) the observation log. Because runs
// are deterministic per seed, restoring = rebuild from artifacts +
// replay the log, which reconstructs bit-identical controller state:
// the next K decisions after a restore equal the original's.
//
// The container is a magic header followed by self-contained frames:
//
//	[u32 payload length][u32 crc32(payload)][gob(logFrame)]
//
// Each payload is encoded by a fresh gob encoder, so any frame decodes
// without the stream state of its predecessors. A full snapshot is a log
// of base frames only (one per tenant, sorted by id); the Journal
// appends delta frames (counts since the tenant's last frame) and remove
// frames to the same container, which is what makes an interrupted
// journal restorable by the same reader. A torn final frame — the
// signature of a crash mid-append — is tolerated on the journal recovery
// path and rejected by strict Restore; a checksum mismatch on a complete
// frame is corruption and always an error.
//
// Frame bytes are deterministic: tenant artifacts ride as key-sorted
// slices (gob map encoding is randomized), so identical fleet state
// snapshots to identical bytes — the property that lets CI diff
// regenerated snapshot sizes.
const snapshotMagic = "HPMSNAP2"

const (
	frameBase byte = iota + 1
	frameDelta
	frameRemove
)

// maxFramePayload bounds a single frame (64 MiB) so a corrupt or
// hostile length header cannot drive an arbitrary allocation.
const maxFramePayload = 64 << 20

// errTornFrame marks a frame cut short by EOF — recoverable crash
// damage, unlike a checksum failure.
var errTornFrame = errors.New("fleet: torn snapshot frame")

// artifactBlob is one serialized learning artifact. Slices sorted by Key
// replace maps so frame bytes are deterministic.
type artifactBlob struct {
	Key  string
	Data []byte
}

type tenantSnap struct {
	ID           string
	Config       TenantConfig
	Observations []float64
	// Quarantined persists the panic-quarantine latch: a restored tenant
	// that was quarantined stays quarantined (its observation log ends at
	// the last clean bin, so the replayed state is consistent — but the
	// fault that tripped it is in the config/workload, not the log, and
	// un-quarantining by restore would invite a re-panic). Decoded as
	// false from frames written before the field existed.
	Quarantined bool
	// GMaps and Trees hold the serialized learning artifacts keyed by the
	// manager's configuration fingerprints (controller.GMap.Save /
	// TreeJTilde.Save framing), sorted by key.
	GMaps []artifactBlob
	Trees []artifactBlob
	// gen carries the captured tenant's registration generation to the
	// journal's marks. Unexported, so gob never serializes it — the
	// generation is process-local.
	gen uint64
}

// logFrame is one frame of the snapshot/journal log.
type logFrame struct {
	Kind byte
	// Base carries a tenant's full state (Kind == frameBase).
	Base *tenantSnap
	// ID names the tenant of a delta or remove frame.
	ID string
	// From is the observation-log index of Counts[0]; replay appends
	// only the counts past the assembled log's length, so re-sent
	// frames (crash between write and mark update) are idempotent.
	From   int
	Counts []float64
}

// writeFrame encodes fr as one framed payload and reports bytes written.
func writeFrame(w io.Writer, fr *logFrame) (int64, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(fr); err != nil {
		return 0, fmt.Errorf("fleet: encode frame: %w", err)
	}
	payload := buf.Bytes()
	if len(payload) > maxFramePayload {
		return 0, fmt.Errorf("fleet: frame payload %d exceeds %d", len(payload), maxFramePayload)
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, fmt.Errorf("fleet: write frame: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return 0, fmt.Errorf("fleet: write frame: %w", err)
	}
	return int64(len(hdr) + len(payload)), nil
}

// readFrame decodes the next frame. io.EOF marks a clean end at a frame
// boundary; errTornFrame marks a truncated header or payload.
func readFrame(r io.Reader) (logFrame, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return logFrame{}, io.EOF
		}
		return logFrame{}, errTornFrame
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n == 0 || n > maxFramePayload {
		return logFrame{}, fmt.Errorf("fleet: frame payload length %d outside (0, %d]", n, maxFramePayload)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return logFrame{}, errTornFrame
	}
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(hdr[4:]); got != want {
		return logFrame{}, fmt.Errorf("fleet: frame checksum %08x, want %08x", got, want)
	}
	var fr logFrame
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&fr); err != nil {
		return logFrame{}, fmt.Errorf("fleet: decode frame: %w", err)
	}
	return fr, nil
}

// assembleLog streams the frame log from r and folds it into per-tenant
// end states, in order of first appearance. tolerateTorn stops cleanly
// at a truncated final frame (journal crash recovery) instead of
// erroring (strict restore).
func assembleLog(r io.Reader, tolerateTorn bool) ([]tenantSnap, error) {
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(r, magic); err != nil || string(magic) != snapshotMagic {
		return nil, fmt.Errorf("fleet: not a v2 snapshot log (bad magic)")
	}
	states := map[string]*tenantSnap{}
	var order []string
	for {
		fr, err := readFrame(r)
		if err == io.EOF {
			break
		}
		if errors.Is(err, errTornFrame) {
			if tolerateTorn {
				break
			}
			return nil, fmt.Errorf("fleet: truncated snapshot log")
		}
		if err != nil {
			return nil, err
		}
		switch fr.Kind {
		case frameBase:
			if fr.Base == nil || fr.Base.ID == "" {
				return nil, fmt.Errorf("fleet: base frame without tenant")
			}
			s := *fr.Base
			if _, seen := states[s.ID]; !seen {
				order = append(order, s.ID)
			}
			states[s.ID] = &s
		case frameDelta:
			st, ok := states[fr.ID]
			if !ok {
				return nil, fmt.Errorf("fleet: delta frame for unknown tenant %q", fr.ID)
			}
			// skip counts the frame's overlap with the assembled log
			// (re-sent after a crash between frame write and mark
			// update); a positive gap means lost frames — corrupt.
			skip := len(st.Observations) - fr.From
			if skip < 0 {
				return nil, fmt.Errorf("fleet: delta gap for tenant %q: log at %d, frame from %d", fr.ID, len(st.Observations), fr.From)
			}
			if skip < len(fr.Counts) {
				st.Observations = append(st.Observations, fr.Counts[skip:]...)
			}
		case frameRemove:
			delete(states, fr.ID)
		default:
			return nil, fmt.Errorf("fleet: unknown frame kind %d", fr.Kind)
		}
	}
	out := make([]tenantSnap, 0, len(states))
	for _, id := range order {
		if st, ok := states[id]; ok {
			out = append(out, *st)
			delete(states, id)
		}
	}
	return out, nil
}

// captureAll snapshots every tenant, sorted by id. Per-tenant captures
// run on the tenants' home shards (so they serialize against in-flight
// observations) and fan out across shards concurrently; tenants removed
// mid-capture are skipped.
func (f *Fleet) captureAll() ([]tenantSnap, error) {
	ids := f.Tenants()
	snaps, err := par.MapCtx(f.ctx, len(f.shards), len(ids), func(i int) (tenantSnap, error) {
		t, err := f.tenant(ids[i])
		if err != nil {
			// Removed since the listing: skip (marked by the empty id).
			return tenantSnap{}, nil
		}
		var snap tenantSnap
		var serr error
		if err := f.exec(t, func() { snap, serr = t.snapshot() }); err != nil {
			return tenantSnap{}, err
		}
		return snap, serr
	})
	if err != nil {
		return nil, err
	}
	kept := snaps[:0]
	for _, s := range snaps {
		if s.ID != "" {
			kept = append(kept, s)
		}
	}
	return kept, nil
}

// Snapshot serializes every tenant's controller state to w as a log of
// base frames (sorted by tenant id — identical fleet state yields
// identical bytes).
func (f *Fleet) Snapshot(w io.Writer) error {
	snaps, err := f.captureAll()
	if err != nil {
		return err
	}
	if _, err := io.WriteString(w, snapshotMagic); err != nil {
		return fmt.Errorf("fleet: write snapshot: %w", err)
	}
	for i := range snaps {
		if _, err := writeFrame(w, &logFrame{Kind: frameBase, Base: &snaps[i]}); err != nil {
			return err
		}
	}
	f.snapshots.Add(1)
	return nil
}

// Restore rebuilds the tenants of a frame log written by Snapshot or a
// Journal and registers them. Restores fan out across tenants; each
// rebuild loads the learned artifacts (skipping the offline learning)
// and replays the observation log to reconstruct the exact controller
// state. Strict: a truncated log is an error (use OpenJournal for
// crash-tolerant recovery).
func (f *Fleet) Restore(r io.Reader) error {
	return f.restoreLog(r, false)
}

func (f *Fleet) restoreLog(r io.Reader, tolerateTorn bool) error {
	if err := f.ctx.Err(); err != nil {
		return ErrClosed
	}
	snaps, err := assembleLog(r, tolerateTorn)
	if err != nil {
		return err
	}
	tenants, err := par.MapCtx(f.ctx, par.Workers(0), len(snaps), func(i int) (*tenant, error) {
		return restoreTenant(snaps[i])
	})
	if err != nil {
		return err
	}
	if err := f.registerAll(tenants); err != nil {
		return err
	}
	f.restores.Add(1)
	return nil
}

// registerAll registers the restored tenants all-or-nothing: an id clash
// (with a live tenant or within the snapshot) registers none of them.
func (f *Fleet) registerAll(tenants []*tenant) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	seen := map[string]bool{}
	for _, t := range tenants {
		if _, ok := f.tenants[t.id]; ok || seen[t.id] {
			return fmt.Errorf("fleet: restore tenant %s: %w", t.id, ErrExists)
		}
		seen[t.id] = true
	}
	for _, t := range tenants {
		t.home = f.shards[f.nextShard%len(f.shards)]
		f.nextShard++
		f.nextGen++
		t.gen = f.nextGen
		f.tenants[t.id] = t
	}
	return nil
}

// snapshot captures one tenant. Runs on the tenant's home shard.
func (t *tenant) snapshot() (tenantSnap, error) {
	snap := tenantSnap{
		ID:           t.id,
		Config:       t.cfg,
		Observations: append([]float64(nil), t.observations...),
		Quarantined:  t.quarantined.Load(),
		gen:          t.gen,
	}
	art := t.mgr.Artifacts()
	for key, g := range art.GMaps {
		var buf bytes.Buffer
		if err := g.Save(&buf); err != nil {
			return snap, fmt.Errorf("fleet: tenant %s gmap: %w", t.id, err)
		}
		snap.GMaps = append(snap.GMaps, artifactBlob{Key: key, Data: buf.Bytes()})
	}
	for key, jt := range art.Trees {
		var buf bytes.Buffer
		if err := jt.Save(&buf); err != nil {
			return snap, fmt.Errorf("fleet: tenant %s tree: %w", t.id, err)
		}
		snap.Trees = append(snap.Trees, artifactBlob{Key: key, Data: buf.Bytes()})
	}
	sortBlobs(snap.GMaps)
	sortBlobs(snap.Trees)
	return snap, nil
}

func sortBlobs(blobs []artifactBlob) {
	for i := 1; i < len(blobs); i++ {
		b := blobs[i]
		j := i - 1
		for j >= 0 && blobs[j].Key > b.Key {
			blobs[j+1] = blobs[j]
			j--
		}
		blobs[j+1] = b
	}
}

// restoreTenant rebuilds one tenant from its snapshot.
func restoreTenant(s tenantSnap) (*tenant, error) {
	art := &core.ArtifactSet{
		GMaps: make(map[string]*controller.GMap, len(s.GMaps)),
		Trees: make(map[string]*controller.TreeJTilde, len(s.Trees)),
	}
	for _, b := range s.GMaps {
		g, err := controller.ReadGMap(bytes.NewReader(b.Data))
		if err != nil {
			return nil, fmt.Errorf("fleet: tenant %s gmap: %w", s.ID, err)
		}
		art.GMaps[b.Key] = g
	}
	for _, b := range s.Trees {
		jt, err := controller.ReadTreeJTilde(bytes.NewReader(b.Data))
		if err != nil {
			return nil, fmt.Errorf("fleet: tenant %s tree: %w", s.ID, err)
		}
		art.Trees[b.Key] = jt
	}
	t, err := newTenant(s.ID, s.Config, art)
	if err != nil {
		return nil, err
	}
	for _, count := range s.Observations {
		if _, err := t.observe(count); err != nil {
			return nil, fmt.Errorf("fleet: tenant %s replay: %w", s.ID, err)
		}
	}
	if s.Quarantined {
		t.quarantined.Store(true)
	}
	return t, nil
}
