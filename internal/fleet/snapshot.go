package fleet

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"hierctl/internal/controller"
	"hierctl/internal/core"
	"hierctl/internal/par"
)

// Snapshot format: event-sourced controller state. Mid-run plant state
// (queues, in-flight requests, RNG positions) is never serialized —
// instead a snapshot captures, per tenant, (a) the configuration, (b) the
// learned artifacts via the controller/approx persistence layers (the
// expensive offline phase), and (c) the observation log. Because runs are
// deterministic per seed, restoring = rebuild from artifacts + replay the
// log, which reconstructs bit-identical controller state: the next K
// decisions after a restore equal the original's.

const snapshotVersion = 1

type tenantSnap struct {
	ID           string
	Config       TenantConfig
	Observations []float64
	// GMaps and Trees hold the serialized learning artifacts keyed by the
	// manager's configuration fingerprints (controller.GMap.Save /
	// TreeJTilde.Save framing).
	GMaps map[string][]byte
	Trees map[string][]byte
}

type fleetSnap struct {
	Version int
	Tenants []tenantSnap
}

// Snapshot serializes every tenant's controller state to w. Per-tenant
// captures run on the tenants' home shards (so they serialize against
// in-flight observations) and fan out across shards concurrently.
func (f *Fleet) Snapshot(w io.Writer) error {
	ids := f.Tenants()
	snaps, err := par.MapCtx(f.ctx, len(f.shards), len(ids), func(i int) (tenantSnap, error) {
		t, err := f.tenant(ids[i])
		if err != nil {
			// Removed since the listing: skip (marked by the empty id).
			return tenantSnap{}, nil
		}
		var snap tenantSnap
		var serr error
		if err := f.exec(t, func() { snap, serr = t.snapshot() }); err != nil {
			return tenantSnap{}, err
		}
		return snap, serr
	})
	if err != nil {
		return err
	}
	kept := snaps[:0]
	for _, s := range snaps {
		if s.ID != "" {
			kept = append(kept, s)
		}
	}
	if err := gob.NewEncoder(w).Encode(fleetSnap{Version: snapshotVersion, Tenants: kept}); err != nil {
		return fmt.Errorf("fleet: encode snapshot: %w", err)
	}
	f.snapshots.Add(1)
	return nil
}

// Restore rebuilds the tenants of a snapshot written by Snapshot and
// registers them. Restores fan out across tenants; each rebuild loads the
// learned artifacts (skipping the offline learning) and replays the
// observation log to reconstruct the exact controller state.
func (f *Fleet) Restore(r io.Reader) error {
	if err := f.ctx.Err(); err != nil {
		return ErrClosed
	}
	var snap fleetSnap
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("fleet: decode snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return fmt.Errorf("fleet: snapshot version %d, want %d", snap.Version, snapshotVersion)
	}
	tenants, err := par.MapCtx(f.ctx, par.Workers(0), len(snap.Tenants), func(i int) (*tenant, error) {
		return restoreTenant(snap.Tenants[i])
	})
	if err != nil {
		return err
	}
	if err := f.registerAll(tenants); err != nil {
		return err
	}
	f.restores.Add(1)
	return nil
}

// registerAll registers the restored tenants all-or-nothing: an id clash
// (with a live tenant or within the snapshot) registers none of them.
func (f *Fleet) registerAll(tenants []*tenant) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	seen := map[string]bool{}
	for _, t := range tenants {
		if _, ok := f.tenants[t.id]; ok || seen[t.id] {
			return fmt.Errorf("fleet: restore tenant %s: %w", t.id, ErrExists)
		}
		seen[t.id] = true
	}
	for _, t := range tenants {
		t.home = f.shards[f.nextShard%len(f.shards)]
		f.nextShard++
		f.tenants[t.id] = t
	}
	return nil
}

// snapshot captures one tenant. Runs on the tenant's home shard.
func (t *tenant) snapshot() (tenantSnap, error) {
	snap := tenantSnap{
		ID:           t.id,
		Config:       t.cfg,
		Observations: append([]float64(nil), t.observations...),
		GMaps:        map[string][]byte{},
		Trees:        map[string][]byte{},
	}
	art := t.mgr.Artifacts()
	for key, g := range art.GMaps {
		var buf bytes.Buffer
		if err := g.Save(&buf); err != nil {
			return snap, fmt.Errorf("fleet: tenant %s gmap: %w", t.id, err)
		}
		snap.GMaps[key] = buf.Bytes()
	}
	for key, jt := range art.Trees {
		var buf bytes.Buffer
		if err := jt.Save(&buf); err != nil {
			return snap, fmt.Errorf("fleet: tenant %s tree: %w", t.id, err)
		}
		snap.Trees[key] = buf.Bytes()
	}
	return snap, nil
}

// restoreTenant rebuilds one tenant from its snapshot.
func restoreTenant(s tenantSnap) (*tenant, error) {
	art := &core.ArtifactSet{
		GMaps: make(map[string]*controller.GMap, len(s.GMaps)),
		Trees: make(map[string]*controller.TreeJTilde, len(s.Trees)),
	}
	for key, b := range s.GMaps {
		g, err := controller.ReadGMap(bytes.NewReader(b))
		if err != nil {
			return nil, fmt.Errorf("fleet: tenant %s gmap: %w", s.ID, err)
		}
		art.GMaps[key] = g
	}
	for key, b := range s.Trees {
		jt, err := controller.ReadTreeJTilde(bytes.NewReader(b))
		if err != nil {
			return nil, fmt.Errorf("fleet: tenant %s tree: %w", s.ID, err)
		}
		art.Trees[key] = jt
	}
	t, err := newTenant(s.ID, s.Config, art)
	if err != nil {
		return nil, err
	}
	for _, count := range s.Observations {
		if _, err := t.observe(count); err != nil {
			return nil, fmt.Errorf("fleet: tenant %s replay: %w", s.ID, err)
		}
	}
	return t, nil
}
