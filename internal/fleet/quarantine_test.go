package fleet

import (
	"bytes"
	"errors"
	"path/filepath"
	"sync"
	"testing"

	"hierctl/internal/cluster"
)

// panicCount is the magic observation count the test failpoint panics on.
const panicCount = 123456

func quarantineTenantConfig() TenantConfig {
	return TenantConfig{
		Spec:       cluster.Spec{Modules: []cluster.ModuleSpec{moduleOf("M1", 2)}},
		Core:       fastCore(),
		Store:      testStoreConfig(),
		StoreSeed:  7,
		BinSeconds: 30,
	}
}

// panicFleet builds a fleet whose ObserveFailpoint panics on the magic
// count, simulating a tenant-local controller fault.
func panicFleet(t *testing.T, shards int) *Fleet {
	t.Helper()
	f := New(Config{Shards: shards, ObserveFailpoint: func(id string, count float64) {
		if count == panicCount {
			panic("injected tenant fault")
		}
	}})
	t.Cleanup(f.Close)
	return f
}

// TestQuarantineIsolatesTenant is the fault-isolation pin: a tenant whose
// controller stack panics is quarantined — subsequent stepping returns
// ErrTenantQuarantined, reads still work, close removes it — while
// sibling tenants, including ones on the same shard, keep stepping. Run
// under -race: the sibling observations race the panic on purpose.
func TestQuarantineIsolatesTenant(t *testing.T) {
	// 2 shards for 3 tenants forces at least one healthy tenant to share
	// the faulting tenant's shard goroutine.
	f := panicFleet(t, 2)
	tc := quarantineTenantConfig()
	for _, id := range []string{"bad", "good1", "good2"} {
		if err := f.CreateTenant(id, tc); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range []string{"bad", "good1", "good2"} {
		if _, err := f.Observe(id, 400); err != nil {
			t.Fatal(err)
		}
	}

	// Siblings step concurrently with the panic.
	var wg sync.WaitGroup
	for _, id := range []string{"good1", "good2"} {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				if _, err := f.Observe(id, 500); err != nil {
					t.Errorf("sibling %s: %v", id, err)
					return
				}
			}
		}(id)
	}
	if _, err := f.Observe("bad", panicCount); !errors.Is(err, ErrTenantQuarantined) {
		t.Fatalf("panicking observation returned %v, want ErrTenantQuarantined", err)
	}
	wg.Wait()

	// The quarantine latch holds: stepping keeps failing without another
	// panic being counted, and the panicking bin was never logged.
	if _, err := f.Observe("bad", 400); !errors.Is(err, ErrTenantQuarantined) {
		t.Fatalf("post-quarantine observation returned %v, want ErrTenantQuarantined", err)
	}
	st, err := f.State("bad")
	if err != nil {
		t.Fatalf("State on quarantined tenant: %v", err)
	}
	if !st.Quarantined {
		t.Error("state does not report quarantine")
	}
	if st.Bins != 1 {
		t.Errorf("quarantined tenant logged %d bins, want 1 (the clean bin only)", st.Bins)
	}
	stats := f.Stats()
	if stats.Panics != 1 {
		t.Errorf("Stats.Panics = %d, want 1", stats.Panics)
	}
	if stats.Quarantined != 1 {
		t.Errorf("Stats.Quarantined = %d, want 1", stats.Quarantined)
	}

	// Batch entries on the quarantined tenant fail with the sentinel;
	// entries for healthy tenants in the same call apply.
	results, err := f.ObserveBatch([]BatchEntry{
		{Tenant: "bad", Counts: []float64{300}},
		{Tenant: "good1", Counts: []float64{300, 300}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(results[0].Err, ErrTenantQuarantined) || results[0].Applied != 0 {
		t.Errorf("batch entry on quarantined tenant: applied %d err %v", results[0].Applied, results[0].Err)
	}
	if results[1].Err != nil || results[1].Applied != 2 {
		t.Errorf("batch entry on healthy sibling: applied %d err %v", results[1].Applied, results[1].Err)
	}

	// Close works: the tenant is removed (no drain, no record).
	rec, err := f.CloseTenant("bad")
	if !errors.Is(err, ErrTenantQuarantined) {
		t.Fatalf("CloseTenant returned %v, want ErrTenantQuarantined", err)
	}
	if rec != nil {
		t.Error("CloseTenant returned a record for an undrained tenant")
	}
	if _, err := f.State("bad"); !errors.Is(err, ErrNotFound) {
		t.Errorf("quarantined tenant still registered after close: %v", err)
	}
	if got := f.Stats().Quarantined; got != 0 {
		t.Errorf("Stats.Quarantined = %d after close, want 0", got)
	}

	// The healthy siblings were never disturbed.
	for _, id := range []string{"good1", "good2"} {
		if _, err := f.Observe(id, 450); err != nil {
			t.Errorf("sibling %s after close: %v", id, err)
		}
	}
}

// TestQuarantineMidBatch pins the batch semantics: a panic mid-entry
// stops the entry at the bins already applied, reports the sentinel, and
// the tenant's observation log holds exactly the clean prefix.
func TestQuarantineMidBatch(t *testing.T) {
	f := panicFleet(t, 1)
	if err := f.CreateTenant("a", quarantineTenantConfig()); err != nil {
		t.Fatal(err)
	}
	results, err := f.ObserveBatch([]BatchEntry{
		{Tenant: "a", Counts: []float64{400, panicCount, 400}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(results[0].Err, ErrTenantQuarantined) {
		t.Fatalf("mid-batch panic reported %v, want ErrTenantQuarantined", results[0].Err)
	}
	if results[0].Applied != 1 {
		t.Errorf("entry applied %d bins, want 1 (the bin before the fault)", results[0].Applied)
	}
	st, err := f.State("a")
	if err != nil {
		t.Fatal(err)
	}
	if st.Bins != 1 || !st.Quarantined {
		t.Errorf("state bins=%d quarantined=%v, want 1/true", st.Bins, st.Quarantined)
	}
}

// TestQuarantineSnapshotRoundTrip pins persistence consistency: a
// quarantined tenant snapshots cleanly (its log ends at the last clean
// bin) and restores still quarantined, so a restart cannot resurrect a
// tenant the fault plan would re-panic.
func TestQuarantineSnapshotRoundTrip(t *testing.T) {
	f1 := panicFleet(t, 2)
	if err := f1.CreateTenant("a", quarantineTenantConfig()); err != nil {
		t.Fatal(err)
	}
	const cleanBins = 5
	for i := 0; i < cleanBins; i++ {
		if _, err := f1.Observe("a", 400); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f1.Observe("a", panicCount); !errors.Is(err, ErrTenantQuarantined) {
		t.Fatal("tenant did not quarantine")
	}
	var buf bytes.Buffer
	if err := f1.Snapshot(&buf); err != nil {
		t.Fatalf("snapshot of quarantined tenant: %v", err)
	}

	f2 := New(Config{Shards: 2})
	defer f2.Close()
	if err := f2.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	st, err := f2.State("a")
	if err != nil {
		t.Fatal(err)
	}
	if !st.Quarantined {
		t.Error("restored tenant lost its quarantine latch")
	}
	if st.Bins != cleanBins {
		t.Errorf("restored tenant at %d bins, want %d", st.Bins, cleanBins)
	}
	if _, err := f2.Observe("a", 400); !errors.Is(err, ErrTenantQuarantined) {
		t.Errorf("restored tenant accepted stepping: %v", err)
	}
	if got := f2.Stats().Quarantined; got != 1 {
		t.Errorf("restored Stats.Quarantined = %d, want 1", got)
	}
}

// TestQuarantineJournalRecovery pins the journal path: the quarantine
// transition changes no observation count, so it must force a re-base —
// otherwise recovery would resurrect the tenant un-quarantined.
func TestQuarantineJournalRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.log")
	f1 := panicFleet(t, 1)
	j, err := OpenJournal(f1, path, JournalConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := f1.CreateTenant("a", quarantineTenantConfig()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := f1.Observe("a", 400); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Append(); err != nil {
		t.Fatal(err)
	}
	if _, err := f1.Observe("a", panicCount); !errors.Is(err, ErrTenantQuarantined) {
		t.Fatal("tenant did not quarantine")
	}
	// The transition alone must be journaled even with zero new bins.
	if err := j.Append(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	f2 := New(Config{Shards: 1})
	defer f2.Close()
	j2, err := OpenJournal(f2, path, JournalConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	st, err := f2.State("a")
	if err != nil {
		t.Fatal(err)
	}
	if !st.Quarantined {
		t.Error("journal recovery lost the quarantine latch")
	}
	if st.Bins != 4 {
		t.Errorf("recovered tenant at %d bins, want 4", st.Bins)
	}
}
