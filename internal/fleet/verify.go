package fleet

import (
	"errors"
	"fmt"
	"io"
	"os"
)

// VerifyReport summarizes a read-only integrity scan of a snapshot or
// journal log (see VerifyJournal).
type VerifyReport struct {
	// Frames is the number of complete, checksum-clean frames scanned.
	Frames int
	// BaseFrames/DeltaFrames/RemoveFrames break Frames down by kind.
	BaseFrames, DeltaFrames, RemoveFrames int
	// Tenants is the number of tenants live at the end of the log.
	Tenants int
	// Observations is the total observation-log length across live
	// tenants after folding every delta.
	Observations int64
	// Quarantined counts live tenants whose persisted quarantine latch is
	// set.
	Quarantined int
	// TornTail reports a final frame cut short by EOF — the signature of
	// a crash mid-append. Recoverable damage: OpenJournal restores up to
	// the last durable frame, so a torn tail is reported, not an error.
	TornTail bool
}

// VerifyJournal scans a snapshot/journal log and checks every integrity
// property the restore path relies on — the magic header, each frame's
// length bound and CRC, base frames naming a tenant, delta frames
// referencing a known tenant with no gap past the assembled log — without
// building any tenant (no artifact decode, no replay), so it is cheap
// enough to run against a large journal before trusting it. The scan is
// read-only: the log is never modified.
//
// A torn final frame is recoverable crash damage: it sets
// VerifyReport.TornTail and the scan stops cleanly. Any other defect — a
// checksum mismatch, an out-of-range length, a structural violation — is
// corruption the recovery path would also refuse, returned as an error
// alongside the report of everything scanned up to that point.
func VerifyJournal(r io.Reader) (*VerifyReport, error) {
	rep := &VerifyReport{}
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(r, magic); err != nil || string(magic) != snapshotMagic {
		return rep, fmt.Errorf("fleet: not a v2 snapshot log (bad magic)")
	}
	// live folds the log the way assembleLog does, but keeps only the
	// observation-log length and quarantine latch per tenant.
	type tenantCheck struct {
		obs  int
		quar bool
	}
	live := map[string]tenantCheck{}
	for {
		fr, err := readFrame(r)
		if err == io.EOF {
			break
		}
		if errors.Is(err, errTornFrame) {
			rep.TornTail = true
			break
		}
		if err != nil {
			return rep, err
		}
		rep.Frames++
		switch fr.Kind {
		case frameBase:
			rep.BaseFrames++
			if fr.Base == nil || fr.Base.ID == "" {
				return rep, fmt.Errorf("fleet: frame %d: base frame without tenant", rep.Frames)
			}
			live[fr.Base.ID] = tenantCheck{obs: len(fr.Base.Observations), quar: fr.Base.Quarantined}
		case frameDelta:
			rep.DeltaFrames++
			st, ok := live[fr.ID]
			if !ok {
				return rep, fmt.Errorf("fleet: frame %d: delta frame for unknown tenant %q", rep.Frames, fr.ID)
			}
			skip := st.obs - fr.From
			if skip < 0 {
				return rep, fmt.Errorf("fleet: frame %d: delta gap for tenant %q: log at %d, frame from %d", rep.Frames, fr.ID, st.obs, fr.From)
			}
			if skip < len(fr.Counts) {
				st.obs += len(fr.Counts) - skip
				live[fr.ID] = st
			}
		case frameRemove:
			rep.RemoveFrames++
			delete(live, fr.ID)
		default:
			return rep, fmt.Errorf("fleet: frame %d: unknown frame kind %d", rep.Frames, fr.Kind)
		}
	}
	rep.Tenants = len(live)
	for _, st := range live {
		rep.Observations += int64(st.obs)
		if st.quar {
			rep.Quarantined++
		}
	}
	return rep, nil
}

// VerifyJournalFile opens path read-only and runs VerifyJournal on it.
func VerifyJournalFile(path string) (*VerifyReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("fleet: verify journal: %w", err)
	}
	defer f.Close()
	return VerifyJournal(f)
}
